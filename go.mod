module transputer

go 1.22
