// Configured demonstrates occam configuration: ONE source file whose
// outermost process is PLACED PAR, compiled into one image per
// PROCESSOR and run on a four-transputer pipeline.  This is the
// paper's development model: "once the logical behaviour of the
// program has been verified, the program may be configured for
// execution by a single transputer (low cost), or for execution by a
// network of transputers (high performance)."
//
//	go run ./examples/configured
package main

import (
	"fmt"
	"os"

	"transputer"
)

// A four-stage pipeline: generate, square, accumulate, report.  Each
// PROCESSOR block names its transputer; channels crossing processor
// boundaries are PLACEd on link addresses.
const program = `DEF n = 8:
PROC stage(CHAN in, CHAN out, VALUE rounds) =
  VAR v:
  SEQ i = [0 FOR rounds]
    SEQ
      in ? v
      out ! v * v
:
PLACED PAR
  PROCESSOR 0
    CHAN out:
    PLACE out AT LINK1OUT:
    SEQ i = [1 FOR n]
      out ! i
  PROCESSOR 1
    CHAN in, out:
    PLACE in AT LINK0IN:
    PLACE out AT LINK1OUT:
    stage(in, out, n)
  PROCESSOR 2
    CHAN in, out:
    PLACE in AT LINK0IN:
    PLACE out AT LINK1OUT:
    VAR v, sum:
    SEQ
      sum := 0
      SEQ i = [0 FOR n]
        SEQ
          in ? v
          sum := sum + v
      out ! sum
  PROCESSOR 3
    CHAN in, screen:
    PLACE in AT LINK0IN:
    PLACE screen AT LINK1OUT:
    VAR total:
    SEQ
      in ? total
      screen ! 2
      screen ! total
      screen ! 4
`

func main() {
	images, err := transputer.CompileOccamConfigured(program, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	fmt.Printf("configured %d processors from one source file\n", len(images))

	sys := transputer.NewSystem()
	nodes := make([]*transputer.Node, 4)
	for i := range nodes {
		nodes[i] = sys.MustAddTransputer(fmt.Sprintf("p%d", i), transputer.T424().WithMemory(64*1024))
	}
	// The pipeline wiring: each stage's link 1 feeds the next stage's
	// link 0; the last stage's link 1 talks to the host.
	for i := 0; i < 3; i++ {
		sys.MustConnect(nodes[i], 1, nodes[i+1], 0)
	}
	host, err := sys.AttachHost(nodes[3], 1, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for id, img := range images {
		if err := nodes[id].Load(img); err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
	}

	rep := sys.Run(transputer.Second)
	if !rep.Settled || !host.Done {
		fmt.Fprintf(os.Stderr, "pipeline did not complete: %+v\n", rep)
		os.Exit(1)
	}
	want := int64(0)
	for i := int64(1); i <= 8; i++ {
		want += i * i
	}
	fmt.Printf("sum of squares 1..8 = %d (expected %d), in %v of simulated time\n",
		host.Values[0], want, rep.Time)
	if host.Values[0] != want {
		os.Exit(1)
	}
}
