// Dbsearch runs the paper's concurrent database search (section 4.2,
// figures 7 and 8): a grid of transputers each holding part of a
// database, with search requests flooded from one corner and answers
// merged back.
//
//	go run ./examples/dbsearch            # the 4x4 array of figure 8
//	go run ./examples/dbsearch -board     # the 128-transputer board of figure 7
package main

import (
	"flag"
	"fmt"
	"os"

	"transputer/internal/apps/dbsearch"
	"transputer/internal/sim"
)

func main() {
	board := flag.Bool("board", false, "use the 128-transputer board (8x16) instead of the 4x4 array")
	queries := flag.Int("queries", 8, "number of search requests to pipeline")
	flag.Parse()

	p := dbsearch.Defaults16()
	if *board {
		p = dbsearch.Defaults128()
	}
	fmt.Printf("array: %dx%d transputers, %d records each (%d total), longest path %d links\n",
		p.Rows, p.Cols, p.RecordsPerNode, p.TotalRecords(), p.LongestPathLinks())

	s, err := dbsearch.Build(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	keys := make([]int64, *queries)
	for i := range keys {
		keys[i] = int64((i * 13) % p.KeySpace)
	}
	counts, rep := s.RunSearches(keys, 10*sim.Second)
	if !rep.Settled || !s.Results.Done {
		fmt.Fprintf(os.Stderr, "search did not complete: %+v\n", rep)
		os.Exit(1)
	}

	ok := true
	for i, k := range keys {
		want := dbsearch.Reference(p, k)
		status := "ok"
		if counts[i] != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
			ok = false
		}
		fmt.Printf("  key %2d -> %3d matching records   %s\n", k, counts[i], status)
	}
	fmt.Printf("searched %d records x %d queries in %v of simulated time\n",
		p.TotalRecords(), len(keys), rep.Time)
	perQuery := rep.Time / sim.Time(len(keys))
	fmt.Printf("pipelined throughput: one full-database search per %v\n", perQuery)
	fmt.Println("(the paper's analysis: a whole search of 25,000 records in under 1.3 ms)")
	if !ok {
		os.Exit(1)
	}
}
