// Quickstart: compile a small occam program, run it on one simulated
// T424, and print its host output and execution statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"transputer"
)

// The program computes the squares of 1..10 with a producer and a
// consumer running in parallel over an internal channel, then prints
// them through the host link — the same process structure that could
// be configured across two transputers.
const program = `CHAN screen:
PLACE screen AT LINK0OUT:
PROC squares(CHAN out, VALUE n) =
  SEQ i = [1 FOR n]
    out ! i * i
:
PROC display(CHAN in, CHAN to.host, VALUE n) =
  VAR v:
  SEQ
    SEQ i = [1 FOR n]
      SEQ
        in ? v
        to.host ! 2
        to.host ! v
    to.host ! 4
:
DEF n = 10:
CHAN c:
PAR
  squares(c, n)
  display(c, screen, n)
`

func main() {
	img, err := transputer.CompileOccam(program, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	fmt.Printf("compiled: %d bytes of transputer code\n\n", len(img.Code))

	sys := transputer.NewSystem()
	node := sys.MustAddTransputer("main", transputer.T424().WithMemory(64*1024))
	host, err := sys.AttachHost(node, 0, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := node.Load(img); err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}

	rep := sys.Run(transputer.Second)
	st := node.M.Stats()
	fmt.Printf("\nsimulated time  %v (program exit: %v)\n", rep.Time, host.Done)
	fmt.Printf("instructions    %d\n", st.Instructions)
	fmt.Printf("cycles          %d (%.2f MIPS at 20 MHz)\n", st.Cycles, st.MIPS(50))
	fmt.Printf("single byte     %.1f%% of executed instructions\n", 100*st.SingleByteFraction())
	fmt.Printf("messages        %d sent, %d received\n", st.MessagesOut, st.MessagesIn)
}
