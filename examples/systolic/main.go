// Systolic runs a matrix-vector product on a linear systolic array of
// transputers — the signal-processing style of the paper's cited
// applications (its references 21 and 22).  The input vector streams
// through the chain while every cell accumulates its dot product
// concurrently.
//
//	go run ./examples/systolic [-n 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"transputer/internal/apps/systolic"
	"transputer/internal/sim"
)

func main() {
	n := flag.Int("n", 8, "matrix dimension (one transputer per row)")
	flag.Parse()

	p := systolic.Params{N: *n, MemBytes: 64 * 1024}
	s, err := systolic.Build(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("systolic array: feeder -> %d cells -> collector (%d transputers)\n",
		p.N, p.N+2)

	got, rep := s.Run(10 * sim.Second)
	if !rep.Settled || !s.Host.Done {
		fmt.Fprintf(os.Stderr, "array did not complete: %+v\n", rep)
		os.Exit(1)
	}
	want := systolic.Reference(p)
	ok := true
	for i := range want {
		status := "ok"
		if got[i] != want[i] {
			status = fmt.Sprintf("MISMATCH (want %d)", want[i])
			ok = false
		}
		fmt.Printf("  y[%d] = %6d   %s\n", i, got[i], status)
	}
	fmt.Printf("computed in %v of simulated time\n", rep.Time)
	if !ok {
		os.Exit(1)
	}
}
