// Pipeline runs a prime sieve across a chain of transputers: the
// classic communicating-process algorithm for the hardware the paper
// describes.  Each filter stage is one transputer running the same
// occam program; only the link wiring differs.
//
//	go run ./examples/pipeline [-limit 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"transputer/internal/apps/sieve"
	"transputer/internal/sim"
)

func main() {
	limit := flag.Int("limit", 50, "sieve primes up to this bound")
	flag.Parse()

	want := sieve.Primes(*limit)
	p := sieve.Params{Limit: *limit, Stages: len(want)}
	fmt.Printf("pipeline: generator -> %d filter transputers -> collector\n", p.Stages)

	s, err := sieve.Build(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	got, rep := s.Run(10 * sim.Second)
	if !rep.Settled || !s.Host.Done {
		fmt.Fprintf(os.Stderr, "sieve did not complete: %+v\n", rep)
		os.Exit(1)
	}

	fmt.Printf("primes up to %d: %v\n", *limit, got)
	ok := len(got) == len(want)
	if ok {
		for i := range want {
			if got[i] != want[i] {
				ok = false
			}
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "MISMATCH: want %v\n", want)
		os.Exit(1)
	}
	fmt.Printf("completed in %v of simulated time across %d transputers\n",
		rep.Time, len(s.Net.Nodes()))
}
