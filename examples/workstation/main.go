// Workstation runs the personal workstation of the paper's section 4.1
// (figure 6): an applications transputer calling on a disk transputer
// and a graphics transputer over standard links.
//
//	go run ./examples/workstation
package main

import (
	"fmt"
	"os"

	"transputer/internal/apps/workstation"
	"transputer/internal/sim"
)

func main() {
	s, err := workstation.BuildWithOutput(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("workstation: app + disk + graphics transputers on standard links")

	rep := s.Run(sim.Second)
	if !rep.Settled || !s.Host.Done {
		fmt.Fprintf(os.Stderr, "session did not complete: %+v\n", rep)
		os.Exit(1)
	}
	fmt.Printf("session completed in %v of simulated time\n\n", rep.Time)

	fmt.Printf("disk checksum    %8d (expected %d)\n", s.Host.Values[0], workstation.ExpectedDiskSum())
	fmt.Printf("display checksum %8d (expected %d)\n", s.Host.Values[1], workstation.ExpectedGfxSum())
	fmt.Println()
	for _, n := range s.Net.Nodes() {
		st := n.M.Stats()
		fmt.Printf("%-5s %8d instructions, %9d cycles, %5d messages out, %5d in\n",
			n.Name, st.Instructions, st.Cycles, st.MessagesOut, st.MessagesIn)
	}
	if s.Host.Values[0] != workstation.ExpectedDiskSum() ||
		s.Host.Values[1] != workstation.ExpectedGfxSum() {
		os.Exit(1)
	}
}
