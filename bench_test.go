package transputer_test

// One benchmark per table and figure of the paper, as indexed in
// DESIGN.md.  Each reports the reproduced quantity as a custom metric
// (in the paper's own units — cycles, microseconds, MIPS, Mbyte/s) and
// fails if the reproduction drifts from the paper's figure.
//
//	go test -bench=. -benchmem

import (
	"testing"
	"transputer"

	"transputer/internal/apps/dbsearch"
	"transputer/internal/apps/sieve"
	"transputer/internal/apps/systolic"
	"transputer/internal/apps/workstation"
	"transputer/internal/exp"
	"transputer/internal/sim"
)

// requirePass runs an experiment once per iteration and fails the
// benchmark if any row mismatches the paper.
func requirePass(b *testing.B, run func() exp.Result) exp.Result {
	b.Helper()
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = run()
		if !last.Pass() {
			for _, row := range last.Rows {
				if !row.OK {
					b.Fatalf("%s %q: paper %q, measured %q", last.ID, row.Label, row.Paper, row.Measured)
				}
			}
		}
	}
	return last
}

// BenchmarkTableDirectFunctions regenerates the section 3.2.6 table
// (E1): byte and cycle counts of x := 0, x := y, z := 1.
func BenchmarkTableDirectFunctions(b *testing.B) {
	requirePass(b, exp.E1DirectFunctions)
}

// BenchmarkTablePrefix754 regenerates the section 3.2.7 operand
// register trace (E2).
func BenchmarkTablePrefix754(b *testing.B) {
	requirePass(b, exp.E2Prefix754)
}

// BenchmarkTableExpressionEval regenerates the section 3.2.9 table
// (E3): x + 2 and (v+w)*(y+z) with multiply at 7+wordlength cycles.
func BenchmarkTableExpressionEval(b *testing.B) {
	requirePass(b, exp.E3ExpressionEvaluation)
}

// BenchmarkCommunicationCycles sweeps message sizes against the
// max(24, 21+8n/wordlength) formula of section 3.2.10 (E4).
func BenchmarkCommunicationCycles(b *testing.B) {
	requirePass(b, exp.E4CommunicationCycles)
}

// BenchmarkPrioritySwitchLatency measures the 58-cycle low-to-high
// bound and the 17-cycle high-to-low switch of section 3.2.4 (E5).
func BenchmarkPrioritySwitchLatency(b *testing.B) {
	requirePass(b, exp.E5PrioritySwitch)
}

// BenchmarkLinkThroughput measures one link direction against the
// "about 1 Mbyte/sec" of section 2.3.1 (E6).
func BenchmarkLinkThroughput(b *testing.B) {
	r := requirePass(b, exp.E6LinkThroughput)
	_ = r
	mbps, _ := exp.HostPairThroughput(false)
	b.ReportMetric(mbps, "Mbyte/s")
}

// BenchmarkMessageLatency4Byte measures the "about 6 microseconds"
// 4-byte inter-transputer message of section 4.2 (E7).
func BenchmarkMessageLatency4Byte(b *testing.B) {
	var t sim.Time
	for i := 0; i < b.N; i++ {
		var err error
		t, err = exp.PingLatency()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t)/1000, "µs/msg")
	if t < 4*sim.Microsecond || t > 8*sim.Microsecond {
		b.Fatalf("4-byte message took %v, paper says about 6µs", t)
	}
}

// BenchmarkDatabaseSearch16 runs the figure 8 array (E8): 4x4
// transputers, 200 records each, answers checked against a host
// reference search.
func BenchmarkDatabaseSearch16(b *testing.B) {
	benchSearch(b, dbsearch.Defaults16(), 4)
}

// BenchmarkDatabaseSearch128 runs the figure 7 single-board system
// (E9): 128 transputers and 25,600 records searched in under the
// paper's 1.3 ms per query when pipelined.
func BenchmarkDatabaseSearch128(b *testing.B) {
	perQuery := benchSearch(b, dbsearch.Defaults128(), 4)
	if perQuery >= 1300*sim.Microsecond {
		b.Fatalf("per-query period %v, paper says under 1.3ms", perQuery)
	}
}

func benchSearch(b *testing.B, p dbsearch.Params, queries int) sim.Time {
	b.Helper()
	var perQuery sim.Time
	for i := 0; i < b.N; i++ {
		s, err := dbsearch.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		keys := make([]int64, queries)
		for j := range keys {
			keys[j] = int64((13 * j) % p.KeySpace)
		}
		counts, rep := s.RunSearches(keys, 10*sim.Second)
		if !rep.Settled || len(counts) != queries {
			b.Fatalf("search failed: %+v", rep)
		}
		for j, k := range keys {
			if counts[j] != dbsearch.Reference(p, k) {
				b.Fatalf("key %d: %d != reference %d", k, counts[j], dbsearch.Reference(p, k))
			}
		}
		perQuery = rep.Time / sim.Time(queries)
	}
	b.ReportMetric(float64(perQuery)/1000, "µs/query")
	b.ReportMetric(float64(p.TotalRecords()), "records")
	return perQuery
}

// BenchmarkSearchPipelining quantifies request overlap in the array
// (E13): the pipelined per-query period against the single-query
// latency.
func BenchmarkSearchPipelining(b *testing.B) {
	requirePass(b, exp.E13SearchPipelining)
}

// BenchmarkWorkstation runs the figure 6 workstation session (E10).
func BenchmarkWorkstation(b *testing.B) {
	var t sim.Time
	for i := 0; i < b.N; i++ {
		s, err := workstation.Build()
		if err != nil {
			b.Fatal(err)
		}
		rep := s.Run(sim.Second)
		if !rep.Settled || !s.Host.Done {
			b.Fatalf("session failed: %+v", rep)
		}
		if s.Host.Values[0] != workstation.ExpectedDiskSum() ||
			s.Host.Values[1] != workstation.ExpectedGfxSum() {
			b.Fatal("checksums wrong")
		}
		t = rep.Time
	}
	b.ReportMetric(float64(t)/1000, "µs/session")
}

// BenchmarkMIPSRate measures the execution rate on the paper's typical
// instruction mix against the 15 MIPS figure of section 3.2.1 (E11).
func BenchmarkMIPSRate(b *testing.B) {
	requirePass(b, exp.E11MIPSRate)
}

// BenchmarkSingleByteFraction measures the fraction of executed
// instructions encoded in one byte (E12, paper 3.2.3).
func BenchmarkSingleByteFraction(b *testing.B) {
	requirePass(b, exp.E12SingleByteFraction)
}

// BenchmarkAggregateLinkBandwidth drives all eight half-links of a
// transputer pair (E14, paper 3.1).
func BenchmarkAggregateLinkBandwidth(b *testing.B) {
	requirePass(b, exp.E14AggregateBandwidth)
}

// BenchmarkAblationStopAndWaitLink compares the overlapped acknowledge
// against stop-and-wait (A1, figure 1's design argument).
func BenchmarkAblationStopAndWaitLink(b *testing.B) {
	requirePass(b, exp.A1StopAndWaitLink)
	over, _ := exp.HostPairThroughput(false)
	plain, _ := exp.HostPairThroughput(true)
	b.ReportMetric(over/plain, "speedup")
}

// BenchmarkAblationFixedWidthEncoding compares prefix-encoded code
// size against a fixed-width encoding (A2, paper 3.3).
func BenchmarkAblationFixedWidthEncoding(b *testing.B) {
	requirePass(b, exp.A2FixedWidthEncoding)
}

// BenchmarkAblationFetchBuffer compares cycle counts with and without
// the two-word instruction fetch buffer (A3, paper 3.2.5).
func BenchmarkAblationFetchBuffer(b *testing.B) {
	requirePass(b, exp.A3FetchBuffer)
}

// BenchmarkWordLength16vs32 runs identical program bytes on the T222
// and T424 (A4, paper 3.3).
func BenchmarkWordLength16vs32(b *testing.B) {
	requirePass(b, exp.A4WordLength)
}

// BenchmarkSievePipeline exercises a 17-transputer systolic pipeline —
// the concurrency style of the paper's cited applications.
func BenchmarkSievePipeline(b *testing.B) {
	var t sim.Time
	for i := 0; i < b.N; i++ {
		s, err := sieve.Build(sieve.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		primes, rep := s.Run(10 * sim.Second)
		if !rep.Settled || len(primes) != 15 {
			b.Fatalf("sieve failed: %v %+v", primes, rep)
		}
		t = rep.Time
	}
	b.ReportMetric(float64(t)/1000, "µs/run")
}

// BenchmarkInterruptLatency measures the stimulus-to-handler latency
// of a PRI PAR event handler (E15, paper 2.2.2).
func BenchmarkInterruptLatency(b *testing.B) {
	requirePass(b, exp.E15InterruptLatency)
}

// BenchmarkSystolicArray runs a 10-transputer systolic matrix-vector
// product (the application style of the paper's references 21/22).
func BenchmarkSystolicArray(b *testing.B) {
	p := systolic.Defaults()
	want := systolic.Reference(p)
	var t sim.Time
	for i := 0; i < b.N; i++ {
		s, err := systolic.Build(p)
		if err != nil {
			b.Fatal(err)
		}
		got, rep := s.Run(10 * sim.Second)
		if !rep.Settled || len(got) != len(want) {
			b.Fatalf("array failed: %+v", rep)
		}
		for j := range want {
			if got[j] != want[j] {
				b.Fatalf("y[%d] = %d, want %d", j, got[j], want[j])
			}
		}
		t = rep.Time
	}
	b.ReportMetric(float64(t)/1000, "µs/product")
}

// BenchmarkSimulatorSpeed measures the host-side speed of the
// simulator itself: simulated instructions per wall-clock second on a
// compute-bound loop.  (All paper-facing metrics are in simulated
// units; this one is for users sizing long runs.)
func BenchmarkSimulatorSpeed(b *testing.B) {
	img, err := transputer.AssembleSource(`
	ldc 0
	stl 1
loop:
	ldl 1
	adc 1
	stl 1
	ldl 1
	eqc 200000
	cj loop
	stopp
`, 4)
	if err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m, err := transputer.NewMachine(transputer.T424().WithMemory(64 * 1024))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Load(img); err != nil {
			b.Fatal(err)
		}
		res := transputer.Run(m, 0)
		if !res.Settled {
			b.Fatal("loop did not settle")
		}
		instrs = m.Stats().Instructions
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msim-instr/s")
}

// BenchmarkConfigurationTradeoff measures the same program on one
// transputer and on a network (E16, the paper's low-cost /
// high-performance configuration claim).
func BenchmarkConfigurationTradeoff(b *testing.B) {
	requirePass(b, exp.E16ConfigurationTradeoff)
}
