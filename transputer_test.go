package transputer_test

import (
	"bytes"
	"strings"
	"testing"

	"transputer"
)

// TestQuickstart exercises the README's quickstart path through the
// public API: compile occam, run on one transputer, read host output.
func TestQuickstart(t *testing.T) {
	src := `CHAN screen:
PLACE screen AT LINK0OUT:
VAR x:
SEQ
  x := 6 * 7
  screen ! 2; x
  screen ! 4
`
	img, err := transputer.CompileOccam(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys := transputer.NewSystem()
	n := sys.MustAddTransputer("main", transputer.T424().WithMemory(64*1024))
	var out bytes.Buffer
	host, err := sys.AttachHost(n, 0, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Load(img); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(transputer.Second)
	if !rep.Settled || !host.Done {
		t.Fatalf("rep=%+v done=%v", rep, host.Done)
	}
	if out.String() != "42\n" {
		t.Errorf("output = %q", out.String())
	}
}

// TestTwoTransputerConfiguration reproduces the paper's central claim:
// the same concurrent program structure runs within one transputer or
// across a network, with channels placed on links.
func TestTwoTransputerConfiguration(t *testing.T) {
	producer := `CHAN out:
PLACE out AT LINK1OUT:
SEQ i = [0 FOR 5]
  out ! i * i
`
	consumer := `CHAN in, screen:
PLACE in AT LINK2IN:
PLACE screen AT LINK0OUT:
VAR v, sum:
SEQ
  sum := 0
  SEQ i = [0 FOR 5]
    SEQ
      in ? v
      sum := sum + v
  screen ! 2; sum
  screen ! 4
`
	sys := transputer.NewSystem()
	a := sys.MustAddTransputer("producer", transputer.T424().WithMemory(64*1024))
	b := sys.MustAddTransputer("consumer", transputer.T424().WithMemory(64*1024))
	sys.MustConnect(a, 1, b, 2)
	host, err := sys.AttachHost(b, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for node, src := range map[*transputer.Node]string{a: producer, b: consumer} {
		img, err := transputer.CompileOccam(src, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Load(img); err != nil {
			t.Fatal(err)
		}
	}
	rep := sys.Run(10 * transputer.Millisecond)
	if !rep.Settled || !host.Done {
		t.Fatalf("rep=%+v done=%v", rep, host.Done)
	}
	if len(host.Values) != 1 || host.Values[0] != 0+1+4+9+16 {
		t.Errorf("values = %v, want [30]", host.Values)
	}
}

// TestSameProgramOneOrTwoTransputers: the logical program (producer
// and consumer) runs unchanged as a PAR on one transputer, then split
// across two, producing the same answer — "a program ultimately
// intended for a network of transputers can be compiled and executed
// efficiently by a single computer".
func TestSameProgramOneOrTwoTransputers(t *testing.T) {
	// Single transputer: internal channel.
	single := `CHAN screen:
PLACE screen AT LINK0OUT:
PROC producer(CHAN out) =
  SEQ i = [1 FOR 4]
    out ! i * 10
:
PROC consumer(CHAN in, CHAN rsp) =
  VAR v, sum:
  SEQ
    sum := 0
    SEQ i = [1 FOR 4]
      SEQ
        in ? v
        sum := sum + v
    rsp ! 2; sum
    rsp ! 4
:
CHAN c:
PAR
  producer(c)
  consumer(c, screen)
`
	img, err := transputer.CompileOccam(single, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys := transputer.NewSystem()
	n := sys.MustAddTransputer("single", transputer.T424().WithMemory(64*1024))
	host, _ := sys.AttachHost(n, 0, nil)
	if err := n.Load(img); err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * transputer.Millisecond)
	if len(host.Values) != 1 || host.Values[0] != 100 {
		t.Fatalf("single transputer: %v, want [100]", host.Values)
	}

	// Two transputers: the channel becomes a link.
	prodSrc := `CHAN c:
PLACE c AT LINK3OUT:
PROC producer(CHAN out) =
  SEQ i = [1 FOR 4]
    out ! i * 10
:
producer(c)
`
	consSrc := `CHAN c, screen:
PLACE c AT LINK1IN:
PLACE screen AT LINK0OUT:
PROC consumer(CHAN in, CHAN rsp) =
  VAR v, sum:
  SEQ
    sum := 0
    SEQ i = [1 FOR 4]
      SEQ
        in ? v
        sum := sum + v
    rsp ! 2; sum
    rsp ! 4
:
consumer(c, screen)
`
	sys2 := transputer.NewSystem()
	p := sys2.MustAddTransputer("p", transputer.T424().WithMemory(64*1024))
	cns := sys2.MustAddTransputer("c", transputer.T424().WithMemory(64*1024))
	sys2.MustConnect(p, 3, cns, 1)
	host2, _ := sys2.AttachHost(cns, 0, nil)
	for node, src := range map[*transputer.Node]string{p: prodSrc, cns: consSrc} {
		img, err := transputer.CompileOccam(src, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Load(img); err != nil {
			t.Fatal(err)
		}
	}
	sys2.Run(10 * transputer.Millisecond)
	if len(host2.Values) != 1 || host2.Values[0] != 100 {
		t.Fatalf("two transputers: %v, want [100]", host2.Values)
	}
}

func TestAssembleAndDisassemble(t *testing.T) {
	img, err := transputer.AssembleSource("\tldc #754\n\tstl 1\n\tstopp\n", 4)
	if err != nil {
		t.Fatal(err)
	}
	listing := transputer.Disassemble(img.Code)
	// The disassembler folds prefix bytes into the final instruction:
	// #754 shows as its decimal value with its 3-byte encoding.
	for _, want := range []string{"27 25 44", "load constant 1876", "store local", "stop process"} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func TestStandaloneRun(t *testing.T) {
	m, err := transputer.NewMachine(transputer.T424().WithMemory(16 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	img, err := transputer.AssembleSource("\tldc 5\n\tldc 4\n\tmul\n\tstl 1\n\tstopp\n", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	res := transputer.Run(m, transputer.Millisecond)
	if !res.Settled {
		t.Fatal("did not settle")
	}
	if m.Local(1) != 20 {
		t.Errorf("result = %d", m.Local(1))
	}
	st := m.Stats()
	if st.Instructions == 0 || st.Cycles == 0 {
		t.Error("stats not collected")
	}
}

// TestConfiguredCompile drives the PLACED PAR configuration path
// through the public API: one source file, a network of two
// transputers.
func TestConfiguredCompile(t *testing.T) {
	src := `DEF n = 3:
PLACED PAR
  PROCESSOR 0
    CHAN out:
    PLACE out AT LINK0OUT:
    SEQ i = [1 FOR n]
      out ! i * 2
  PROCESSOR 1
    CHAN in, screen:
    PLACE in AT LINK3IN:
    PLACE screen AT LINK1OUT:
    VAR v, sum:
    SEQ
      sum := 0
      SEQ i = [1 FOR n]
        SEQ
          in ? v
          sum := sum + v
      screen ! 2; sum
      screen ! 4
`
	images, err := transputer.CompileOccamConfigured(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 2 {
		t.Fatalf("images = %v", images)
	}
	sys := transputer.NewSystem()
	p0 := sys.MustAddTransputer("p0", transputer.T424().WithMemory(64*1024))
	p1 := sys.MustAddTransputer("p1", transputer.T424().WithMemory(64*1024))
	sys.MustConnect(p0, 0, p1, 3)
	host, _ := sys.AttachHost(p1, 1, nil)
	if err := p0.Load(images[0]); err != nil {
		t.Fatal(err)
	}
	if err := p1.Load(images[1]); err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(10 * transputer.Millisecond)
	if !rep.Settled || !host.Done {
		t.Fatalf("rep=%+v done=%v", rep, host.Done)
	}
	if len(host.Values) != 1 || host.Values[0] != 12 {
		t.Errorf("values = %v, want [12]", host.Values)
	}
}
