// Package transputer is a production-quality reproduction of "The
// Transputer" (Colin Whitby-Strevens, ISCA 1985): a cycle-accurate
// simulator for the IMS T424/T222 transputers, an occam-1 subset
// compiler, the bit-level inter-transputer link protocol, and a
// deterministic multi-transputer network simulator.
//
// The architecture is standardized at the level of occam: programs are
// collections of processes communicating over channels.  A program can
// run on one simulated transputer or be configured across a network of
// them, with channels placed on hardware links — the paper's central
// claim, reproducible here:
//
//	img, _ := transputer.CompileOccam(src, 4)
//	sys := transputer.NewSystem()
//	n := sys.MustAddTransputer("main", transputer.T424())
//	host, _ := sys.AttachHost(n, 0, os.Stdout)
//	n.Load(img)
//	sys.Run(0)
//
// Subpackage layout (under internal/): isa holds the I1 instruction
// set and the paper's cycle model; core is the processor with its
// two-priority scheduler, channels, timers and alternative input; link
// is the 10 Mbit/s link engine of figure 1; occam is the compiler;
// network assembles systems; sim is the event kernel.
package transputer

import (
	"transputer/internal/asm"
	"transputer/internal/core"
	"transputer/internal/isa"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// Re-exported core types.  A Machine is one transputer; an Image is a
// loadable program; Stats carries cycle and instruction counters.
type (
	Config  = core.Config
	Machine = core.Machine
	Image   = core.Image
	Stats   = core.Stats

	System = network.System
	Node   = network.Node
	Host   = network.Host
	Report = network.Report

	// Time is a simulated instant in nanoseconds.
	Time = sim.Time
)

// Simulated durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Host protocol commands understood by an attached host device.
const (
	HostCmdPutChar = network.HostCmdPutChar
	HostCmdPutWord = network.HostCmdPutWord
	HostCmdExit    = network.HostCmdExit
	HostCmdGetWord = network.HostCmdGetWord
)

// T424 returns the configuration of the 32-bit IMS T424 (4 KiB on-chip
// memory, 50 ns cycle).
func T424() Config { return core.T424() }

// T222 returns the configuration of the 16-bit IMS T222.
func T222() Config { return core.T222() }

// NewMachine builds a standalone transputer.
func NewMachine(cfg Config) (*Machine, error) { return core.New(cfg) }

// NewSystem builds an empty multi-transputer system.
func NewSystem() *System { return network.NewSystem() }

// CompileOccam compiles an occam program for the given word length in
// bytes (4 for T424, 2 for T222).
func CompileOccam(src string, wordBytes int) (Image, error) {
	c, err := occam.Compile(src, occam.Options{WordBytes: wordBytes})
	if err != nil {
		return Image{}, err
	}
	return c.Image, nil
}

// CompileOccamConfigured compiles a program whose outermost process is
// PLACED PAR (the occam configuration construct) into one image per
// PROCESSOR, keyed by processor number.  A program without PLACED PAR
// yields a single image under key 0.
func CompileOccamConfigured(src string, wordBytes int) (map[int64]Image, error) {
	procs, err := occam.CompileConfigured(src, occam.Options{WordBytes: wordBytes})
	if err != nil {
		return nil, err
	}
	out := make(map[int64]Image, len(procs))
	for _, p := range procs {
		out[p.ID] = p.Compiled.Image
	}
	return out, nil
}

// AssembleSource assembles I1 assembly text into an image.
func AssembleSource(src string, wordBytes int) (Image, error) {
	a, err := asm.Assemble(src, wordBytes)
	if err != nil {
		return Image{}, err
	}
	return a.Image, nil
}

// Disassemble renders a code image as a listing with the paper's full
// instruction names.
func Disassemble(code []byte) string { return isa.Sdisassemble(code) }

// RunResult describes why a standalone run stopped.
type RunResult = core.RunResult

// Run executes a loaded standalone machine until it quiesces or the
// limit passes (0 means run to quiescence).
func Run(m *Machine, limit Time) RunResult { return core.Run(m, limit) }
