package transputer_test

import (
	"fmt"
	"os"

	"transputer"
)

// ExampleCompileOccam compiles and runs a one-transputer occam program
// that prints through the host link.
func ExampleCompileOccam() {
	img, err := transputer.CompileOccam(`CHAN screen:
PLACE screen AT LINK0OUT:
VAR x:
SEQ
  x := 6 * 7
  screen ! 2; x
  screen ! 4
`, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	sys := transputer.NewSystem()
	node := sys.MustAddTransputer("main", transputer.T424().WithMemory(64*1024))
	host, _ := sys.AttachHost(node, 0, os.Stdout)
	if err := node.Load(img); err != nil {
		fmt.Println(err)
		return
	}
	sys.Run(transputer.Second)
	fmt.Println("exit:", host.Done)
	// Output:
	// 42
	// exit: true
}

// ExampleNewSystem builds a two-transputer system with a link between
// them: the paper's configuration model in miniature.
func ExampleNewSystem() {
	producer, _ := transputer.CompileOccam(`CHAN out:
PLACE out AT LINK2OUT:
SEQ i = [1 FOR 3]
  out ! i * 11
`, 4)
	consumer, _ := transputer.CompileOccam(`CHAN in, screen:
PLACE in AT LINK1IN:
PLACE screen AT LINK0OUT:
VAR v:
SEQ
  SEQ i = [1 FOR 3]
    SEQ
      in ? v
      screen ! 2; v
  screen ! 4
`, 4)

	sys := transputer.NewSystem()
	p := sys.MustAddTransputer("producer", transputer.T424().WithMemory(64*1024))
	c := sys.MustAddTransputer("consumer", transputer.T424().WithMemory(64*1024))
	sys.MustConnect(p, 2, c, 1)
	host, _ := sys.AttachHost(c, 0, os.Stdout)
	p.Load(producer)
	c.Load(consumer)
	rep := sys.Run(transputer.Second)
	fmt.Println("settled:", rep.Settled, "exit:", host.Done)
	// Output:
	// 11
	// 22
	// 33
	// settled: true exit: true
}

// ExampleDisassemble shows the paper's #754 prefix sequence.
func ExampleDisassemble() {
	img, _ := transputer.AssembleSource("\tldc #754\n", 4)
	fmt.Print(transputer.Disassemble(img.Code))
	// Output:
	// 000000  27 25 44          ldc 1876      load constant 1876
}

// ExampleRun executes assembly on a standalone machine.
func ExampleRun() {
	m, _ := transputer.NewMachine(transputer.T424().WithMemory(16 * 1024))
	img, _ := transputer.AssembleSource(`
	ldc 6
	ldc 7
	mul
	stl 1
	stopp
`, 4)
	m.Load(img)
	res := transputer.Run(m, 0)
	fmt.Println("settled:", res.Settled, "result:", m.Local(1))
	// Output:
	// settled: true result: 42
}
