package transputer_test

// BenchmarkSystemThroughput measures the simulator's own execution
// rate on communication-heavy multi-transputer topologies: every node
// of a ring (and of a 3x3 torus grid) circulates tokens continuously,
// so the whole network is busy for the full run.  The custom metric is
// simulated machine cycles per wall-clock second, the number that the
// sharded parallel engine exists to raise.

import (
	"fmt"
	"sync"
	"testing"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// ringSource streams `rounds` words out of each node while a parallel
// process drains the same count from the previous node, so every link
// of the ring carries continuous traffic and the network settles
// cleanly.  The sender and receiver must be concurrent: a node that
// sent before receiving would deadlock the whole synchronous ring.
const ringSource = `DEF rounds = 256:
CHAN in, out:
PLACE in AT LINK0IN:
PLACE out AT LINK1OUT:
PROC src(CHAN out, VALUE rounds) =
  SEQ i = [0 FOR rounds]
    out ! i + i
:
PROC sink(CHAN in, VALUE rounds) =
  VAR x, sum:
  SEQ
    sum := 0
    SEQ i = [0 FOR rounds]
      SEQ
        in ? x
        sum := sum + x
:
PAR
  src(out, rounds)
  sink(in, rounds)
`

// gridSource is the torus-node program: the same streaming pair run
// twice, once around the node's row and once around its column.
const gridSource = `DEF rounds = 128:
CHAN hin, hout, vin, vout:
PLACE hin AT LINK0IN:
PLACE hout AT LINK1OUT:
PLACE vin AT LINK2IN:
PLACE vout AT LINK3OUT:
PROC src(CHAN out, VALUE rounds) =
  SEQ i = [0 FOR rounds]
    out ! i + i
:
PROC sink(CHAN in, VALUE rounds) =
  VAR x, sum:
  SEQ
    sum := 0
    SEQ i = [0 FOR rounds]
      SEQ
        in ? x
        sum := sum + x
:
PAR
  src(hout, rounds)
  sink(hin, rounds)
  src(vout, rounds)
  sink(vin, rounds)
`

var throughputImages = struct {
	once       sync.Once
	ring, grid core.Image
	err        error
}{}

func compileThroughputImages(b *testing.B) (ring, grid core.Image) {
	b.Helper()
	c := &throughputImages
	c.once.Do(func() {
		r, err := occam.Compile(ringSource, occam.Options{})
		if err != nil {
			c.err = err
			return
		}
		g, err := occam.Compile(gridSource, occam.Options{})
		if err != nil {
			c.err = err
			return
		}
		c.ring, c.grid = r.Image, g.Image
	})
	if c.err != nil {
		b.Fatal(c.err)
	}
	return c.ring, c.grid
}

func throughputConfig() core.Config {
	cfg := core.T424()
	cfg.MemBytes = 16 * 1024
	return cfg
}

// buildThroughputRing wires `nodes` transputers in a unidirectional
// ring: link 1 of each node feeds link 0 of the next.
func buildThroughputRing(b *testing.B, nodes int) *network.System {
	b.Helper()
	img, _ := compileThroughputImages(b)
	s := network.NewSystem()
	ns := make([]*network.Node, nodes)
	for i := range ns {
		ns[i] = s.MustAddTransputer(fmt.Sprintf("n%d", i), throughputConfig())
		if err := ns[i].Load(img); err != nil {
			b.Fatal(err)
		}
	}
	for i := range ns {
		s.MustConnect(ns[i], 1, ns[(i+1)%nodes], 0)
	}
	return s
}

// buildThroughputGrid wires a side x side torus: link 1 feeds the
// right neighbour's link 0, link 3 feeds the lower neighbour's link 2.
func buildThroughputGrid(b *testing.B, side int) *network.System {
	b.Helper()
	_, img := compileThroughputImages(b)
	s := network.NewSystem()
	ns := make([]*network.Node, side*side)
	for i := range ns {
		ns[i] = s.MustAddTransputer(fmt.Sprintf("n%d", i), throughputConfig())
		if err := ns[i].Load(img); err != nil {
			b.Fatal(err)
		}
	}
	at := func(r, c int) *network.Node { return ns[((r+side)%side)*side+(c+side)%side] }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			s.MustConnect(at(r, c), 1, at(r, c+1), 0)
			s.MustConnect(at(r, c), 3, at(r+1, c), 2)
		}
	}
	return s
}

func runThroughput(b *testing.B, workers int, build func() *network.System) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		s := build()
		s.SetWorkers(workers)
		rep := s.Run(10 * sim.Second)
		if !rep.Settled {
			b.Fatalf("network did not settle: %+v", rep)
		}
		if len(rep.Blocked) > 0 || len(rep.Halted) > 0 {
			b.Fatalf("network finished wedged: %+v", rep)
		}
		cycles += s.TotalStats().Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSystemThroughput drives an 8-node ring and a 9-node torus
// grid with every node passing tokens continuously, once sequentially
// and once on four workers (identical simulation, different wall
// clock).
func BenchmarkSystemThroughput(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("ring8/workers=%d", w), func(b *testing.B) {
			runThroughput(b, w, func() *network.System { return buildThroughputRing(b, 8) })
		})
		b.Run(fmt.Sprintf("grid3x3/workers=%d", w), func(b *testing.B) {
			runThroughput(b, w, func() *network.System { return buildThroughputGrid(b, 3) })
		})
	}
}
