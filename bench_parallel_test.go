package transputer_test

// BenchmarkSystemThroughput measures the simulator's own execution
// rate on multi-transputer workloads: two communication-heavy
// topologies (every node of a ring and of a 3x3 torus grid circulates
// tokens continuously) and one compute-heavy ring (each node sieves
// primes locally and the links carry a single word).  The custom
// metric is simulated machine cycles per wall-clock second — the
// number the sharded parallel engine and the predecoded block cache
// exist to raise.  The workload builders live in internal/bench,
// shared with cmd/tbench.

import (
	"fmt"
	"testing"

	"transputer/internal/bench"
	"transputer/internal/sim"
)

func runThroughput(b *testing.B, workers int, workload string) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		s, err := bench.Build(workload)
		if err != nil {
			b.Fatal(err)
		}
		s.SetWorkers(workers)
		n, err := bench.Run(s, 10*sim.Second)
		if err != nil {
			b.Fatal(err)
		}
		cycles += n
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSystemThroughput drives every workload once sequentially
// and once on four workers (identical simulation, different wall
// clock).
func BenchmarkSystemThroughput(b *testing.B) {
	for _, w := range []int{1, 4} {
		for _, name := range bench.Workloads() {
			name, w := name, w
			b.Run(fmt.Sprintf("%s/workers=%d", name, w), func(b *testing.B) {
				runThroughput(b, w, name)
			})
		}
	}
}
