// Tasm assembles I1 assembly source to a code image, or disassembles
// an image.
//
// Usage:
//
//	tasm [-w words] [-o out.tix] program.tasm     assemble
//	tasm -d image.tix                             disassemble
package main

import (
	"flag"
	"fmt"
	"os"

	"transputer/internal/asm"
	"transputer/internal/isa"
	"transputer/internal/tool"
)

func main() {
	wordBytes := flag.Int("w", 4, "word length in bytes")
	out := flag.String("o", "", "output image path")
	disasm := flag.Bool("d", false, "disassemble an image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tasm [-w words] [-o out.tix] program.tasm | tasm -d image.tix")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *disasm {
		img, err := tool.ReadImage(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("; %s: %d bytes, entry %#x, data %d, workspace %d/%d\n",
			path, len(img.Code), img.Entry, img.DataBytes, img.WsBelow, img.WsAbove)
		fmt.Print(isa.Sdisassemble(img.Code))
		return
	}

	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	a, err := asm.Assemble(string(src), *wordBytes)
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = path + ".tix"
	}
	if err := tool.WriteImage(dst, a.Image); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes -> %s\n", path, len(a.Image.Code), dst)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tasm:", err)
	os.Exit(1)
}
