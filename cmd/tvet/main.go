// tvet is the repo's vet tool: a unitchecker binary serving the custom
// determinism and protocol analyzers of internal/analysis.
//
// Usage (driven by the go command):
//
//	go build -o tvet ./cmd/tvet
//	go vet -vettool=$PWD/tvet ./...
//
// Findings are suppressed per site with
// "//tvet:ignore <analyzer> <reason>"; see DESIGN.md §15.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	tvet "transputer/internal/analysis"
)

func main() {
	unitchecker.Main(tvet.All...)
}
