// Trun runs a program on one simulated transputer with a host device
// on link 0, printing the program's host output and, optionally,
// execution statistics, a Chrome-trace timeline, probe metrics and a
// sampling profile.
//
// Usage:
//
//	trun [-model t424|t222] [-mem bytes] [-limit dur] [-stats]
//	     [-timeline out.json] [-metrics] [-flows out.json] [-prof out.prof]
//	     [-profperiod us] [-in w,w,...] [-workers n] [-blockcache=false]
//	     [-enginestats] program.{occ,tasm,tix}
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/sim"
	"transputer/internal/tool"
)

func main() {
	model := flag.String("model", "t424", "transputer model (t424 or t222)")
	mem := flag.Int("mem", 64*1024, "memory size in bytes")
	limitMs := flag.Int("limit", 1000, "simulated time limit in milliseconds (0 = no limit)")
	stats := flag.Bool("stats", false, "print execution statistics")
	trace := flag.Bool("trace", false, "trace every instruction to standard error")
	timeline := flag.String("timeline", "", "write a Chrome trace-event timeline to this file")
	metrics := flag.Bool("metrics", false, "print probe metrics (utilization, run queues, links)")
	flows := flag.String("flows", "", "trace message flows and write the flow document (spans, latency histograms, critical path) to this file")
	prof := flag.String("prof", "", "sample the instruction pointer and write a profile to this file")
	profPeriod := flag.Int("profperiod", 10, "profiler sampling period in simulated microseconds")
	input := flag.String("in", "", "comma-separated words queued for host input")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads for the parallel engine (1 = sequential; output is identical at any count)")
	blockcache := flag.Bool("blockcache", true, "use the predecoded block cache (purely a simulator speed switch; output is identical either way)")
	engineStats := flag.Bool("enginestats", false, "print windowed-engine diagnostics (windows, barriers, fused vs mailbox deliveries)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: trun [flags] program.{occ,tasm,tix}")
		os.Exit(2)
	}

	cfg, err := tool.ModelConfig(*model, *mem)
	if err != nil {
		fatal(err)
	}
	img, err := tool.LoadAny(flag.Arg(0), cfg.WordBits/8)
	if err != nil {
		fatal(err)
	}

	s := network.NewSystem()
	s.SetWorkers(*workers)
	s.SetBlockCache(*blockcache)
	n, err := s.AddTransputer("main", cfg)
	if err != nil {
		fatal(err)
	}
	host, err := s.AttachHost(n, 0, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if *input != "" {
		for _, f := range strings.Split(*input, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad input word %q", f))
			}
			host.QueueInput(v)
		}
	}
	if err := n.Load(img); err != nil {
		fatal(err)
	}
	var flushTrace func() error
	if *trace {
		tw, flush := core.TraceWriter(os.Stderr)
		n.M.SetTrace(tw)
		flushTrace = flush
	}

	obs := tool.NewObserver(s)
	if *timeline != "" {
		obs.EnableTimeline(*timeline)
	}
	if *metrics {
		obs.EnableMetrics()
	}
	if *flows != "" {
		progs := []tool.Program{{Node: n, Image: img, Path: flag.Arg(0)}}
		obs.EnableFlows(*flows, tool.LineResolver(progs))
	}
	if *prof != "" {
		obs.EnableProfile(*prof, sim.Time(*profPeriod)*sim.Microsecond)
		obs.AddProfileTarget(n, img, flag.Arg(0))
	}
	obs.Start()

	rep := s.Run(sim.Time(*limitMs) * sim.Millisecond)
	if flushTrace != nil {
		flushTrace()
	}
	if err := n.M.Fault(); err != nil {
		fatal(err)
	}
	if !rep.Settled {
		fmt.Fprintf(os.Stderr, "trun: time limit reached at %v\n", rep.Time)
	}
	if rep.Settled {
		if wd := s.Watchdog(); wd != nil {
			progs := []tool.Program{{Node: n, Image: img, Path: flag.Arg(0)}}
			tool.PrintWatchdog(os.Stderr, wd, tool.LineResolver(progs))
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "simulated time: %v (host exit: %v)\n", rep.Time, host.Done)
		tool.PrintStats(os.Stderr, n.Name, n.M.Stats(), n.M.Config().CycleNs)
	}
	if obs.Active() {
		if err := obs.Finish(rep.Time, os.Stderr); err != nil {
			fatal(err)
		}
	}
	if *engineStats {
		tool.PrintEngineStats(os.Stderr, s.EngineStats())
	}
	if n.M.ErrorFlag() {
		fmt.Fprintln(os.Stderr, "trun: machine error flag set")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trun:", err)
	os.Exit(1)
}
