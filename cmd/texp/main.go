// Texp regenerates every quantitative table and figure of "The
// Transputer" (ISCA 1985) on the simulator and prints paper-vs-measured
// tables.  See DESIGN.md for the experiment index and EXPERIMENTS.md
// for a recorded run.
//
// Usage:
//
//	texp            run everything
//	texp E4 E9 A1   run selected experiments
package main

import (
	"fmt"
	"os"
	"strings"

	"transputer/internal/exp"
)

func main() {
	want := map[string]bool{}
	for _, arg := range os.Args[1:] {
		want[strings.ToUpper(arg)] = true
	}
	fmt.Println("Reproduction of \"The Transputer\" (Whitby-Strevens, ISCA 1985)")
	fmt.Println("==============================================================")
	fmt.Println()
	failures := 0
	for _, r := range exp.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		r.Fprint(os.Stdout)
		if !r.Pass() {
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("%d experiment(s) had mismatching rows\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments reproduce the paper's figures")
}
