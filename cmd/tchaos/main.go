// Tchaos runs seeded chaos campaigns against the self-healing network
// stack: random fault plans over fixed topologies, checked for the
// invariants the stack promises (exactly-once in-order delivery while
// a path survives, a clean watchdog after quiesce, byte-identical
// outcomes at any worker count).  A failing plan is shrunk to a
// minimal reproducing rule set and written as a .tnet file that
// replays the violation under tnet.
//
// Usage:
//
//	tchaos [-topo ring8|grid3x3|all] [-seeds n] [-seed s]
//	       [-workers n] [-artifacts dir] [-v]
//
// -seeds n runs seeds 1..n; -seed s runs exactly one.  The exit code
// is 0 when every scenario holds its invariants, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"transputer/internal/chaos"
)

func main() {
	topo := flag.String("topo", "all", "topology to torture: ring8, grid3x3 or all")
	seeds := flag.Int("seeds", 25, "run seeds 1..n")
	seed := flag.Uint64("seed", 0, "run exactly this seed (overrides -seeds)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker count for the determinism cross-check (1 skips it)")
	artifacts := flag.String("artifacts", "", "write shrunken failing plans as .tnet files into this directory")
	verbose := flag.Bool("v", false, "log every scenario, not just failures")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tchaos [flags]")
		os.Exit(2)
	}
	topos := chaos.Topologies()
	if *topo != "all" {
		topos = []string{*topo}
	}
	var seedList []uint64
	if *seed != 0 {
		seedList = []uint64{*seed}
	} else {
		for s := 1; s <= *seeds; s++ {
			seedList = append(seedList, uint64(s))
		}
	}
	failed := 0
	ran := 0
	for _, tp := range topos {
		for _, sd := range seedList {
			sc, err := chaos.Generate(tp, sd)
			if err != nil {
				fatal(err)
			}
			res, err := chaos.Run(sc, *workers)
			if err != nil {
				fatal(err)
			}
			ran++
			if res.Ok() {
				if *verbose {
					fmt.Printf("ok   %s seed=%d (%d rules, %d messages)\n",
						tp, sd, len(sc.Rules), len(sc.Messages))
				}
				continue
			}
			failed++
			fmt.Printf("FAIL %s seed=%d (%d rules, %d messages)\n", tp, sd, len(sc.Rules), len(sc.Messages))
			for _, f := range res.Failures {
				fmt.Printf("     %s\n", f)
			}
			if res.Shrunk != nil {
				fmt.Printf("     shrunk to %d rules\n", len(res.Shrunk.Rules))
				if *artifacts != "" {
					if err := os.MkdirAll(*artifacts, 0o755); err != nil {
						fatal(err)
					}
					path := filepath.Join(*artifacts, fmt.Sprintf("%s-seed%d.tnet", tp, sd))
					if err := os.WriteFile(path, []byte(res.Shrunk.TopologyFile()), 0o644); err != nil {
						fatal(err)
					}
					fmt.Printf("     wrote %s\n", path)
				}
			}
		}
	}
	fmt.Printf("tchaos: %d scenarios, %d failed\n", ran, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tchaos:", err)
	os.Exit(1)
}
