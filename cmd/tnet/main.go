// Tnet runs a network of transputers described by a topology file (see
// internal/network.ParseTopology for the format).  Program paths in
// the file are resolved relative to the file's directory.
//
// Usage:
//
//	tnet [-stats] network.tnet
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"transputer/internal/network"
	"transputer/internal/sim"
	"transputer/internal/tool"
)

func main() {
	stats := flag.Bool("stats", false, "print per-node statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnet [-stats] network.tnet")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	topo, err := network.ParseTopology(string(src))
	if err != nil {
		fatal(err)
	}
	base := filepath.Dir(path)

	s := network.NewSystem()
	var hosts []*network.Host
	for _, spec := range topo.Transputers {
		cfg, err := tool.ModelConfig(spec.Model, spec.MemBytes)
		if err != nil {
			fatal(err)
		}
		n, err := s.AddTransputer(spec.Name, cfg)
		if err != nil {
			fatal(err)
		}
		if spec.Program == "" {
			continue
		}
		img, err := tool.LoadAny(filepath.Join(base, spec.Program), cfg.WordBits/8)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", spec.Name, err))
		}
		if err := n.Load(img); err != nil {
			fatal(fmt.Errorf("%s: %w", spec.Name, err))
		}
	}
	for _, c := range topo.Connections {
		a, ok := s.Node(c.A)
		if !ok {
			fatal(fmt.Errorf("connect: unknown transputer %q", c.A))
		}
		b, ok := s.Node(c.B)
		if !ok {
			fatal(fmt.Errorf("connect: unknown transputer %q", c.B))
		}
		if err := s.Connect(a, c.ALink, b, c.BLink); err != nil {
			fatal(err)
		}
	}
	for _, h := range topo.Hosts {
		n, ok := s.Node(h.Node)
		if !ok {
			fatal(fmt.Errorf("host: unknown transputer %q", h.Node))
		}
		host, err := s.AttachHost(n, h.Link, os.Stdout)
		if err != nil {
			fatal(err)
		}
		for _, v := range topo.Inputs[h.Node] {
			host.QueueInput(v)
		}
		hosts = append(hosts, host)
	}

	limit := topo.RunLimit
	if limit == 0 {
		limit = sim.Second
	}
	rep := s.Run(limit)
	if !rep.Settled {
		fmt.Fprintf(os.Stderr, "tnet: time limit reached at %v (still running: %v)\n",
			rep.Time, rep.Running)
	}
	for _, name := range rep.Halted {
		n, _ := s.Node(name)
		fmt.Fprintf(os.Stderr, "tnet: %s halted: %v\n", name, n.M.Fault())
	}
	for _, name := range rep.Blocked {
		n, _ := s.Node(name)
		fmt.Fprintf(os.Stderr, "tnet: %s deadlocked: %d process(es) blocked on channels\n",
			name, n.M.WaitingProcesses())
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "simulated time: %v\n", rep.Time)
		for _, n := range s.Nodes() {
			tool.PrintStats(os.Stderr, n.Name, n.M.Stats(), n.M.Config().CycleNs)
		}
		for i, h := range hosts {
			fmt.Fprintf(os.Stderr, "host %d: exit=%v values=%v\n", i, h.Done, h.Values)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tnet:", err)
	os.Exit(1)
}
