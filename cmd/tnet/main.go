// Tnet runs a network of transputers described by a topology file (see
// internal/network.ParseTopology for the format).  Program paths in
// the file are resolved relative to the file's directory.
//
// Usage:
//
//	tnet [-stats] [-timeline out.json] [-metrics] [-flows out.json]
//	     [-prof out.prof] [-profperiod us] [-seed n] [-workers n]
//	     [-vchan n] [-blockcache=false] [-fuse mode] [-enginestats]
//	     network.tnet
//
// -seed overrides the topology file's seed directive, so one fault
// campaign file can be replayed under many seeds.  -vchan overrides
// the file's vchan directives, multiplexing n virtual channels over
// every transputer-to-transputer connection; a multiplexed wire
// refuses plain transfers, so the programs (or the routing layer)
// must address those links through their LINKnVCm channels.  -fuse
// selects the shard partition (off|topo|greedy|auto|full; results are
// byte-identical at every mode, only simulator speed changes) and
// -enginestats reports what the windowed engine did.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"transputer/internal/network"
	"transputer/internal/sim"
	"transputer/internal/tool"
)

func main() {
	stats := flag.Bool("stats", false, "print per-node statistics")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker threads for the parallel engine (1 = sequential; output is identical at any count)")
	timeline := flag.String("timeline", "", "write a Chrome trace-event timeline to this file")
	metrics := flag.Bool("metrics", false, "print probe metrics (utilization, run queues, links)")
	flows := flag.String("flows", "", "trace message flows and write the flow document (spans, latency histograms, critical path) to this file")
	prof := flag.String("prof", "", "sample every node's instruction pointer and write a profile to this file")
	profPeriod := flag.Int("profperiod", 10, "profiler sampling period in simulated microseconds")
	seed := flag.Uint64("seed", 0, "override the topology's fault-plan seed")
	vchan := flag.Int("vchan", 0, "multiplex this many virtual channels over every transputer-to-transputer connection (overrides the topology's vchan directives)")
	blockcache := flag.Bool("blockcache", true, "use the predecoded block cache (purely a simulator speed switch; output is identical either way)")
	fuse := flag.String("fuse", "topo", "shard fusion mode: "+tool.FuseModes+" (purely a simulator speed switch; output is identical at every partition)")
	engineStats := flag.Bool("enginestats", false, "print windowed-engine diagnostics (windows, barriers, fused vs mailbox deliveries); these vary with -fuse/-workers, unlike all other output")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tnet [flags] network.tnet")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	topo, err := network.ParseTopology(string(src))
	if err != nil {
		fatal(err)
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "seed" })
	if seedSet {
		topo.Seed = *seed
	}
	if *vchan > 0 {
		// The parse-time cross-checks (no faults on multiplexed wires)
		// ran against the file's own directives; re-check the override.
		if len(topo.Faults) > 0 {
			fatal(fmt.Errorf("-vchan cannot be combined with a fault campaign"))
		}
		topo.VChans = topo.VChans[:0]
		for _, c := range topo.Connections {
			topo.VChans = append(topo.VChans, network.VChanSpec{Node: c.A, Link: c.ALink, Count: *vchan})
		}
	}
	if err := tool.ResolveFusion(topo, *fuse, filepath.Dir(flag.Arg(0)), *workers); err != nil {
		fatal(err)
	}
	net, err := tool.BuildNetwork(topo, filepath.Dir(flag.Arg(0)), os.Stdout)
	if err != nil {
		fatal(err)
	}
	s := net.System
	s.SetWorkers(*workers)
	s.SetBlockCache(*blockcache)

	obs := tool.NewObserver(s)
	if *timeline != "" {
		obs.EnableTimeline(*timeline)
	}
	if *metrics {
		obs.EnableMetrics()
	}
	if *flows != "" {
		obs.EnableFlows(*flows, tool.LineResolver(net.Programs))
	}
	if *prof != "" {
		obs.EnableProfile(*prof, sim.Time(*profPeriod)*sim.Microsecond)
		for _, p := range net.Programs {
			obs.AddProfileTarget(p.Node, p.Image, p.Path)
		}
	}
	obs.Start()

	rep := tool.RunToQuiescence(net)
	if !rep.Settled {
		fmt.Fprintf(os.Stderr, "tnet: time limit reached at %v (still running: %v)\n",
			rep.Time, rep.Running)
	}
	for _, name := range rep.Halted {
		n, _ := s.Node(name)
		fmt.Fprintf(os.Stderr, "tnet: %s halted: %v\n", name, n.M.Fault())
	}
	var wd *network.WatchdogReport
	if rep.Settled {
		if wd = s.Watchdog(); wd != nil {
			tool.PrintWatchdog(os.Stderr, wd, tool.LineResolver(net.Programs))
		}
	}
	undelivered := 0
	if net.Router != nil {
		undelivered = net.Router.Undelivered()
		tool.PrintRouteSummary(os.Stderr, net.Router)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "simulated time: %v\n", rep.Time)
		for _, n := range s.Nodes() {
			tool.PrintStats(os.Stderr, n.Name, n.M.Stats(), n.M.Config().CycleNs)
			tool.PrintLinkStats(os.Stderr, n)
		}
		for i, h := range net.Hosts {
			fmt.Fprintf(os.Stderr, "host %d: exit=%v values=%v\n", i, h.Done, h.Values)
		}
	}
	if obs.Active() {
		if err := obs.Finish(rep.Time, os.Stderr); err != nil {
			fatal(err)
		}
	}
	if *engineStats {
		tool.PrintEngineStats(os.Stderr, s.EngineStats())
	}
	os.Exit(tool.Verdict(wd, undelivered))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tnet:", err)
	os.Exit(1)
}
