// Tprof renders a sampling profile saved by trun -prof or tnet -prof.
//
// Usage:
//
//	tprof [-top n] [-flame] profile.json
//
// -flame emits folded-stacks output ("target;where count" lines) for
// standard flamegraph tooling instead of the text report.
package main

import (
	"flag"
	"fmt"
	"os"

	"transputer/internal/probe"
)

func main() {
	top := flag.Int("top", 20, "rows to print per target (0 = all)")
	flame := flag.Bool("flame", false, "emit folded stacks for flamegraph tooling")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tprof [-top n] [-flame] profile.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := probe.ReadProfile(f)
	if err != nil {
		fatal(err)
	}
	if *flame {
		if err := p.WriteFolded(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	p.Report(os.Stdout, *top)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tprof:", err)
	os.Exit(1)
}
