// Occ compiles occam programs to transputer code images.
//
// Usage:
//
//	occ [-w words] [-o out.tix] [-S] program.occ
//
// With -S the listing is disassembled to standard output instead of
// writing a binary image.  The image format is the simple container
// understood by trun and tnet.
package main

import (
	"flag"
	"fmt"
	"os"

	"transputer/internal/isa"
	"transputer/internal/occam"
	"transputer/internal/tool"
)

func main() {
	wordBytes := flag.Int("w", 4, "word length in bytes (4 for T424, 2 for T222)")
	out := flag.String("o", "", "output image path (default: input with .tix)")
	listing := flag.Bool("S", false, "print a disassembly listing instead of writing an image")
	configured := flag.Bool("configured", false,
		"compile a PLACED PAR configuration: one image per PROCESSOR, named <base>.p<N>.tix")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: occ [-w words] [-o out.tix] [-S] program.occ")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if *configured {
		procs, err := occam.CompileConfigured(string(src), occam.Options{WordBytes: *wordBytes})
		if err != nil {
			fatal(err)
		}
		base := replaceExt(path, "")
		for _, p := range procs {
			dst := fmt.Sprintf("%s.p%d.tix", base, p.ID)
			if err := tool.WriteImage(dst, p.Compiled.Image); err != nil {
				fatal(err)
			}
			fmt.Printf("%s: PROCESSOR %d, %d bytes -> %s\n",
				path, p.ID, len(p.Compiled.Image.Code), dst)
		}
		return
	}
	comp, err := occam.Compile(string(src), occam.Options{WordBytes: *wordBytes})
	if err != nil {
		fatal(err)
	}
	if *listing {
		fmt.Printf("; %s: %d bytes of code, workspace %d above / %d below\n",
			path, len(comp.Image.Code), comp.Above, comp.Below)
		fmt.Print(isa.Sdisassemble(comp.Image.Code))
		return
	}
	dst := *out
	if dst == "" {
		dst = replaceExt(path, ".tix")
	}
	if err := tool.WriteImage(dst, comp.Image); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes of code -> %s\n", path, len(comp.Image.Code), dst)
}

func replaceExt(path, ext string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			return path[:i] + ext
		}
		if path[i] == '/' {
			break
		}
	}
	return path + ext
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "occ:", err)
	os.Exit(1)
}
