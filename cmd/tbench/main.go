// Tbench runs the simulator throughput benchmark outside the Go test
// harness and prints a JSON stanza in the BENCH_parallel.json stage
// format, ready to paste into the record.
//
// Usage:
//
//	tbench [-workload all|ring8|grid3x3|compute8] [-workers 1,4]
//	       [-runs n] [-blockcache=true] [-limit s]
//	       [-fuse off|greedy|auto|full] [-autofuse]
//	       [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// Each (workload, workers) pair is built fresh and run to completion
// `runs` times; the stanza reports the median wall-clock ns per run
// and the simulated-machine-cycles-per-second rate it implies.  The
// simulation itself is deterministic, so the cycle count is checked to
// be identical across runs.
//
// -fuse co-locates chattering nodes on shared shards (full = one
// shard, greedy = contract the wiring graph to the worker count, auto
// = partition by wire traffic observed in a profiling pre-run;
// -autofuse is shorthand for -fuse=auto).  Fusion never changes the
// simulated results — the deterministic cycle check still applies —
// only how fast the simulator reaches them.
//
// -cpuprofile/-memprofile write native Go pprof profiles of the
// measurement runs, for finding engine hot paths (the simulated-time
// sampler profiles the programs under simulation; these profile the
// simulator itself).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"transputer/internal/bench"
	"transputer/internal/sim"
)

type result struct {
	NsPerOp       int64 `json:"ns_per_op"`
	SimcyclesPerS int64 `json:"simcycles_per_s"`
}

func main() {
	workload := flag.String("workload", "all", "workload to run: all, or one of "+strings.Join(bench.Workloads(), ", "))
	workers := flag.String("workers", "1,4", "comma-separated worker counts")
	runs := flag.Int("runs", 5, "runs per (workload, workers) pair; the median is reported")
	blockcache := flag.Bool("blockcache", true, "use the predecoded block cache (results are identical either way)")
	limit := flag.Int("limit", 10, "per-run simulated-time limit in seconds")
	fuse := flag.String("fuse", "off", "shard fusion mode: off|greedy|auto|full (results are identical at every partition)")
	autofuse := flag.Bool("autofuse", false, "shorthand for -fuse=auto: partition by wire traffic from a profiling pre-run")
	cpuprofile := flag.String("cpuprofile", "", "write a native CPU profile of the measurement runs to this file")
	memprofile := flag.String("memprofile", "", "write a native heap profile (taken after the runs) to this file")
	flag.Parse()

	if *autofuse {
		*fuse = "auto"
	}

	var names []string
	if *workload == "all" {
		names = bench.Workloads()
	} else {
		names = strings.Split(*workload, ",")
	}
	var counts []int
	for _, f := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -workers value %q", f))
		}
		counts = append(counts, n)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	results := make(map[string]map[string]result)
	for _, name := range names {
		per := make(map[string]result)
		for _, w := range counts {
			groups, err := fuseGroups(*fuse, name, w, sim.Time(*limit)*sim.Second)
			if err != nil {
				fatal(err)
			}
			if len(groups) > 0 {
				fmt.Fprintf(os.Stderr, "%s/workers=%d: fused %v\n", name, w, groups)
			}
			r, err := measure(name, groups, w, *runs, *blockcache, sim.Time(*limit)*sim.Second)
			if err != nil {
				fatal(err)
			}
			per[fmt.Sprintf("workers%d", w)] = r
			fmt.Fprintf(os.Stderr, "%s/workers=%d: %d ns/op, %d simcycles/s\n",
				name, w, r.NsPerOp, r.SimcyclesPerS)
		}
		results[name] = per
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	stanza := map[string]any{"runs": *runs, "blockcache": *blockcache, "results": results}
	if *fuse != "off" {
		stanza["fuse"] = *fuse
	}
	out, err := json.MarshalIndent(stanza, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// fuseGroups resolves the -fuse mode into a placement for one
// (workload, workers) pair.
func fuseGroups(mode, name string, workers int, limit sim.Time) ([][]string, error) {
	switch mode {
	case "off", "":
		return nil, nil
	case "full":
		return bench.FuseGroups(name, 1)
	case "greedy":
		return bench.FuseGroups(name, workers)
	case "auto":
		return bench.AutoFuseGroups(name, workers, limit)
	default:
		return nil, fmt.Errorf("unknown fuse mode %q (want off|greedy|auto|full)", mode)
	}
}

// measure runs one (workload, workers) pair `runs` times and returns
// the median wall time and the throughput it implies.
func measure(name string, groups [][]string, workers, runs int, blockcache bool, limit sim.Time) (result, error) {
	var wall []time.Duration
	var cycles uint64
	for i := 0; i < runs; i++ {
		s, err := bench.BuildPlaced(name, groups)
		if err != nil {
			return result{}, err
		}
		s.SetWorkers(workers)
		s.SetBlockCache(blockcache)
		start := time.Now()
		c, err := bench.Run(s, limit)
		if err != nil {
			return result{}, err
		}
		wall = append(wall, time.Since(start))
		if i == 0 {
			cycles = c
		} else if c != cycles {
			return result{}, fmt.Errorf("%s: nondeterministic cycle count: run 0 simulated %d, run %d simulated %d", name, cycles, i, c)
		}
	}
	sort.Slice(wall, func(i, j int) bool { return wall[i] < wall[j] })
	med := wall[len(wall)/2]
	return result{
		NsPerOp:       med.Nanoseconds(),
		SimcyclesPerS: int64(float64(cycles) / med.Seconds()),
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tbench:", err)
	os.Exit(1)
}
