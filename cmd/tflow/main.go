// Tflow renders a message-flow document saved by trun -flows or
// tnet -flows: per-channel/per-link latency histograms, the run's
// critical path, and the slowest flows with their retry tails.
//
// Usage:
//
//	tflow [-top n] flows.json
package main

import (
	"flag"
	"fmt"
	"os"

	"transputer/internal/probe"
)

func main() {
	top := flag.Int("top", 20, "slowest flows to print (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tflow [-top n] flows.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	doc, err := probe.ReadFlowDoc(f)
	if err != nil {
		fatal(err)
	}
	doc.Report(os.Stdout, *top)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tflow:", err)
	os.Exit(1)
}
