package occam

import "fmt"

// Semantic analysis: scopes, symbol binding, constant evaluation, and
// structural checks.  The checker also creates the workspace frames:
// one for the program, one per PROC body, and one per PAR component.

type symbolKind int

const (
	symConst symbolKind = iota
	symVar
	symChan
	symProc
	symParam
	symRep   // replicator index variable
	symTable // DEF name = "string": a read-only byte table in code space
)

// symbol is a named entity bound by the checker.
type symbol struct {
	kind  symbolKind
	name  string
	pos   pos
	frame *frame

	// Variables, channels, replicators: workspace slot (word offset
	// from the frame base).
	offset int
	array  bool
	size   int // array length in words

	// Channels: placement.
	placed    bool
	placeAddr int64

	// Constants.
	value int64

	// String tables: the length-prefixed bytes, emitted into the code
	// image.
	tableData []byte

	// Procedures.
	proc *procInfo

	// Parameters.
	paramKind  paramKind
	paramIndex int
	procParams []*symbol // all parameters of the owning PROC
}

// procInfo carries everything the code generator needs about a PROC.
type procInfo struct {
	decl   *procDecl
	frame  *frame
	params []*symbol
	label  string
	// sized is set once workspace requirements are known.
	sized bool
	// emitted is set once the body has been queued for generation.
	queued bool
}

// frame is one workspace: slots 0 and 1 are reserved (scratch /
// alternative selection / end-process block), locals and replicator
// blocks follow, then expression spill temporaries, then (for PROCs)
// the slots of parameters beyond the third.
type frame struct {
	id      int
	nLocal  int // next free local slot
	maxTemp int // expression spill temporaries needed
	// Sizing results (size.go).
	above int // words at and above the frame base
	below int // words below the frame base
	sized bool
	// PROC frames: extra parameter slots reserved at the top of the
	// local area.
	extraParams int
}

const frameReserved = 2 // slots 0 and 1

func (f *frame) allocWords(n int) int {
	off := f.nLocal
	f.nLocal += n
	return off
}

// scope is a lexical scope; procBoundary scopes hide outer variables
// (occam PROCs here may reference only their parameters and global
// constants — a documented subset restriction).
type scope struct {
	parent       *scope
	names        map[string]*symbol
	frame        *frame
	procBoundary bool
}

func (s *scope) child(f *frame, boundary bool) *scope {
	if f == nil {
		f = s.frame
	}
	return &scope{parent: s, names: make(map[string]*symbol), frame: f, procBoundary: boundary}
}

func (s *scope) declare(sym *symbol) *Err {
	if _, dup := s.names[sym.name]; dup {
		return errf(sym.pos.line, sym.pos.col, "%q already declared in this scope", sym.name)
	}
	s.names[sym.name] = sym
	return nil
}

// lookup resolves a name, honouring PROC boundaries: variables and
// channels outside a PROC are invisible inside it.
func (s *scope) lookup(name string) (*symbol, bool) {
	crossed := false
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			if crossed && sym.kind != symConst && sym.kind != symProc {
				return nil, false
			}
			return sym, true
		}
		if sc.procBoundary {
			crossed = true
		}
	}
	return nil, false
}

// checker drives resolution.
type checker struct {
	wordBytes  int
	nextFrame  int
	procs      []*procInfo // all PROCs, in declaration order
	parsInfo   map[*parProc]*parInfo
	repCounts  map[*replicator]int64 // constant counts for replicated PAR
	timeGuards map[*altProc]bool
	// procEffects holds per-parameter usage summaries (usage.go).
	procEffects map[*procInfo][]paramEffects
}

// parInfo is the checker/sizer annotation for a PAR construct.
type parInfo struct {
	frames []*frame // one per component (one total when replicated)
	// deltas: word offset of each component frame base from the
	// enclosing frame base (negative).  Replicated PAR uses deltas[0]
	// for copy 0 and stride for the rest.
	deltas []int
	stride int
	count  int // replicated copy count
	// linkSlot: replicated components share code, so each copy's frame
	// holds the enclosing frame's base address in this slot.
	linkSlot int
}

func newChecker(wordBytes int) *checker {
	return &checker{
		wordBytes:  wordBytes,
		parsInfo:   make(map[*parProc]*parInfo),
		repCounts:  make(map[*replicator]int64),
		timeGuards: make(map[*altProc]bool),
	}
}

func (c *checker) newFrame() *frame {
	c.nextFrame++
	return &frame{id: c.nextFrame, nLocal: frameReserved}
}

// builtinScope declares the predefined constants: TRUE/FALSE are
// keywords; link channel addresses and integer bounds are DEFs.
func (c *checker) builtinScope() *scope {
	s := &scope{names: make(map[string]*symbol)}
	bpw := int64(c.wordBytes)
	bits := uint(c.wordBytes * 8)
	mostneg := -(int64(1) << (bits - 1))
	def := func(name string, v int64) {
		s.names[name] = &symbol{kind: symConst, name: name, value: v}
	}
	for i := int64(0); i < 4; i++ {
		def(fmt.Sprintf("LINK%dOUT", i), mostneg+i*bpw)
		def(fmt.Sprintf("LINK%dIN", i), mostneg+(4+i)*bpw)
	}
	def("EVENT", mostneg+8*bpw)
	def("MOSTNEG", mostneg)
	def("MOSTPOS", (int64(1)<<(bits-1))-1)
	// Virtual-channel words: PLACE a channel at LINK<l>VC<v>OUT/IN to
	// speak on virtual channel v of a multiplexed link l.  The block
	// sits at the most positive addresses (mirroring core's
	// VChanOutAddr/VChanInAddr), far above any realistic memory size;
	// like the link words, the addresses are pure names and are never
	// dereferenced.
	const maxVC = 32 // core.VChanMax
	vcbase := (int64(1) << (bits - 1)) - 4*maxVC*2*bpw
	for l := int64(0); l < 4; l++ {
		for v := int64(0); v < maxVC; v++ {
			def(fmt.Sprintf("LINK%dVC%dOUT", l, v), vcbase+(l*maxVC+v)*bpw)
			def(fmt.Sprintf("LINK%dVC%dIN", l, v), vcbase+((4+l)*maxVC+v)*bpw)
		}
	}
	return s
}

// run resolves the whole program, returning the root frame.
func (c *checker) run(prog process) (*frame, *Err) {
	root := c.newFrame()
	sc := c.builtinScope().child(root, false)
	if err := c.process(prog, sc); err != nil {
		return nil, err
	}
	return root, nil
}

func (c *checker) process(p process, sc *scope) *Err {
	switch v := p.(type) {
	case *skipProc, *stopProc:
		return nil
	case *declProc:
		inner := sc.child(nil, false)
		// Channels that a later PLACE in the same group pins to a link
		// address need no workspace slot.
		placed := map[string]bool{}
		for _, d := range v.decls {
			if pd, ok := d.(*placeDecl); ok {
				placed[pd.name] = true
			}
		}
		for _, d := range v.decls {
			if err := c.declare(d, inner, placed); err != nil {
				return err
			}
		}
		return c.process(v.body, inner)
	case *assignProc:
		if err := c.bindTarget(v.target, v.index, sc); err != nil {
			return err
		}
		return c.expr(v.value, sc)
	case *outputProc:
		if err := c.bindChannel(v.ch, v.chIdx, sc); err != nil {
			return err
		}
		for _, e := range v.values {
			if err := c.expr(e, sc); err != nil {
				return err
			}
		}
		return nil
	case *inputProc:
		if err := c.bindChannel(v.ch, v.chIdx, sc); err != nil {
			return err
		}
		for _, tgt := range v.targets {
			if tgt.name == nil {
				continue // ANY
			}
			if err := c.bindTarget(tgt.name, tgt.index, sc); err != nil {
				return err
			}
		}
		return nil
	case *timeInputProc:
		if v.after != nil {
			return c.expr(v.after, sc)
		}
		return c.bindTarget(v.target, v.index, sc)
	case *seqProc:
		inner := sc
		if v.rep != nil {
			var err *Err
			inner, err = c.replicator(v.rep, sc)
			if err != nil {
				return err
			}
		}
		for _, sub := range v.procs {
			if err := c.process(sub, inner); err != nil {
				return err
			}
		}
		return nil
	case *parProc:
		return c.par(v, sc)
	case *altProc:
		return c.alt(v, sc)
	case *ifProc:
		for _, br := range v.branches {
			if err := c.expr(br.cond, sc); err != nil {
				return err
			}
			if err := c.process(br.body, sc.child(nil, false)); err != nil {
				return err
			}
		}
		return nil
	case *whileProc:
		if err := c.expr(v.cond, sc); err != nil {
			return err
		}
		return c.process(v.body, sc.child(nil, false))
	case *placedPar:
		return errf(v.line, v.col, "PLACED PAR must be the outermost process (compile with CompileConfigured)")
	case *callProc:
		sym, ok := sc.lookup(v.name)
		if !ok || sym.kind != symProc {
			return errf(v.line, v.col, "%q is not a PROC", v.name)
		}
		v.sym = sym
		if len(v.args) != len(sym.proc.params) {
			return errf(v.line, v.col, "%q takes %d arguments, given %d",
				v.name, len(sym.proc.params), len(v.args))
		}
		for i, a := range v.args {
			if err := c.argument(a, sym.proc.params[i], sc); err != nil {
				return err
			}
		}
		return nil
	}
	return errf(0, 0, "checker: unhandled process %T", p)
}

func (c *checker) declare(d decl, sc *scope, placed map[string]bool) *Err {
	switch v := d.(type) {
	case *varDecl:
		return c.declareItems(v.items, symVar, sc, nil)
	case *chanDecl:
		return c.declareItems(v.items, symChan, sc, placed)
	case *defDecl:
		if v.strVal != nil {
			s := *v.strVal
			if len(s) > 255 {
				return errf(v.line, v.col, "string table longer than 255 bytes")
			}
			data := append([]byte{byte(len(s))}, s...)
			words := (len(data) + c.wordBytes - 1) / c.wordBytes
			sym := &symbol{
				kind: symTable, name: v.name, pos: v.pos,
				array: true, size: words, tableData: data,
			}
			v.sym = sym
			return sc.declare(sym)
		}
		val, err := c.constExpr(v.value, sc)
		if err != nil {
			return err
		}
		sym := &symbol{kind: symConst, name: v.name, pos: v.pos, value: val}
		v.sym = sym
		return sc.declare(sym)
	case *placeDecl:
		sym, ok := sc.lookup(v.name)
		if !ok || sym.kind != symChan {
			return errf(v.line, v.col, "PLACE needs a channel declared in scope, %q is not one", v.name)
		}
		if sym.array {
			return errf(v.line, v.col, "cannot PLACE a channel array")
		}
		addr, err := c.constExpr(v.addr, sc)
		if err != nil {
			return err
		}
		sym.placed = true
		sym.placeAddr = addr
		return nil
	case *procDecl:
		return c.declareProc(v, sc)
	}
	return errf(0, 0, "checker: unhandled declaration %T", d)
}

func (c *checker) declareItems(items []declItem, kind symbolKind, sc *scope, placed map[string]bool) *Err {
	for i := range items {
		item := &items[i]
		sym := &symbol{kind: kind, name: item.name, pos: item.pos, frame: sc.frame}
		switch {
		case placed[item.name]:
			// A link-placed channel occupies no workspace; PLACE fills
			// in the address.
			if item.size != nil {
				return errf(item.line, item.col, "cannot PLACE a channel array")
			}
		case item.size != nil:
			n, err := c.constExpr(item.size, sc)
			if err != nil {
				return err
			}
			if n <= 0 {
				return errf(item.line, item.col, "array size must be positive, got %d", n)
			}
			sym.array = true
			sym.size = int(n)
			sym.offset = sc.frame.allocWords(int(n))
		default:
			sym.offset = sc.frame.allocWords(1)
		}
		item.sym = sym
		if err := sc.declare(sym); err != nil {
			return err
		}
	}
	return nil
}

// findNestedPar returns the first PAR construct anywhere in the
// process tree, or nil.  declareProc uses it to refuse PAR inside a
// PROC body: a called PROC runs on its caller's thread with a
// statically-linked frame, and the generator's component frame layout
// assumes the spawning PAR is lexically enclosing (see gen.go), so a
// PAR reached through a call would corrupt the caller's workspace.
func findNestedPar(p process) *parProc {
	switch v := p.(type) {
	case *parProc:
		return v
	case *seqProc:
		for _, sub := range v.procs {
			if par := findNestedPar(sub); par != nil {
				return par
			}
		}
	case *declProc:
		return findNestedPar(v.body)
	case *whileProc:
		return findNestedPar(v.body)
	case *ifProc:
		for _, br := range v.branches {
			if par := findNestedPar(br.body); par != nil {
				return par
			}
		}
	case *altProc:
		for _, br := range v.branches {
			if par := findNestedPar(br.body); par != nil {
				return par
			}
		}
	}
	return nil
}

func (c *checker) declareProc(d *procDecl, sc *scope) *Err {
	if par := findNestedPar(d.body); par != nil {
		return errf(par.line, par.col,
			"PAR inside PROC %q is not supported: a PROC body runs on its caller's thread; spawn the PAR at the call site instead", d.name)
	}
	f := c.newFrame()
	info := &procInfo{decl: d, frame: f, label: fmt.Sprintf("proc.%s.%d", d.name, f.id)}
	sym := &symbol{kind: symProc, name: d.name, pos: d.pos, proc: info}
	d.sym = sym

	// The body scope sees parameters but not enclosing variables.
	body := sc.child(f, true)
	for i := range d.params {
		pm := &d.params[i]
		psym := &symbol{
			kind: symParam, name: pm.name, pos: pm.pos, frame: f,
			paramKind: pm.kind, paramIndex: i, array: pm.array,
		}
		pm.sym = psym
		info.params = append(info.params, psym)
		if err := body.declare(psym); err != nil {
			return err
		}
	}
	if err := c.process(d.body, body); err != nil {
		return err
	}
	for _, psym := range info.params {
		psym.procParams = info.params
	}
	// Parameters beyond the third occupy slots at the very top of the
	// frame (see the calling convention in gen.go).
	if extras := len(d.params) - 3; extras > 0 {
		f.extraParams = extras
	}
	c.procs = append(c.procs, info)
	// The PROC name becomes visible only after its body: occam has no
	// recursion, and this enforces it.
	return sc.declare(sym)
}

func (c *checker) replicator(rep *replicator, sc *scope) (*scope, *Err) {
	if err := c.expr(rep.base, sc); err != nil {
		return nil, err
	}
	if err := c.expr(rep.count, sc); err != nil {
		return nil, err
	}
	inner := sc.child(nil, false)
	sym := &symbol{kind: symRep, name: rep.name, pos: rep.pos, frame: sc.frame}
	// Two adjacent slots: index (the variable) and remaining count.
	sym.offset = sc.frame.allocWords(2)
	rep.sym = sym
	if err := inner.declare(sym); err != nil {
		return nil, err
	}
	return inner, nil
}

func (c *checker) par(v *parProc, sc *scope) *Err {
	info := &parInfo{}
	c.parsInfo[v] = info
	if v.rep != nil {
		// Replicated PAR needs a compile-time count: the compiler
		// performs all workspace allocation (paper, 3.2.4).
		n, err := c.constExpr(v.rep.count, sc)
		if err != nil {
			return errf(v.rep.line, v.rep.col, "replicated PAR needs a compile-time count: %s", err.Msg)
		}
		if n <= 0 {
			return errf(v.rep.line, v.rep.col, "replicated PAR count must be positive, got %d", n)
		}
		if err2 := c.expr(v.rep.base, sc); err2 != nil {
			return err2
		}
		c.repCounts[v.rep] = n
		info.count = int(n)
		f := c.newFrame()
		info.frames = []*frame{f}
		comp := sc.child(f, false)
		sym := &symbol{kind: symRep, name: v.rep.name, pos: v.rep.pos, frame: f}
		sym.offset = f.allocWords(1) // the copy's replicator value
		info.linkSlot = f.allocWords(1)
		v.rep.sym = sym
		if err2 := comp.declare(sym); err2 != nil {
			return err2
		}
		return c.process(v.procs[0], comp)
	}
	for _, sub := range v.procs {
		f := c.newFrame()
		info.frames = append(info.frames, f)
		if err := c.process(sub, sc.child(f, false)); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) alt(v *altProc, sc *scope) *Err {
	if v.rep != nil {
		// Replicated ALT: one channel guard indexed by the replicator.
		inner, err := c.replicator(v.rep, sc)
		if err != nil {
			return err
		}
		br := &v.branches[0]
		if br.cond != nil {
			if err := c.expr(br.cond, inner); err != nil {
				return err
			}
		}
		in, ok := br.input.(*inputProc)
		if !ok {
			return errf(br.line, br.col, "a replicated ALT guard must be a channel input")
		}
		if err := c.process(in, inner); err != nil {
			return err
		}
		return c.process(br.body, inner.child(nil, false))
	}
	for i := range v.branches {
		br := &v.branches[i]
		if br.cond != nil {
			if err := c.expr(br.cond, sc); err != nil {
				return err
			}
		}
		switch in := br.input.(type) {
		case *inputProc:
			if err := c.process(in, sc); err != nil {
				return err
			}
		case *timeInputProc:
			if in.after == nil {
				return errf(br.line, br.col, "a timer guard must use TIME ? AFTER")
			}
			if err := c.expr(in.after, sc); err != nil {
				return err
			}
			c.timeGuards[v] = true
		case *skipProc:
			if br.cond == nil {
				return errf(br.line, br.col, "a SKIP guard needs a boolean (use TRUE & SKIP)")
			}
		default:
			return errf(br.line, br.col, "invalid alternative guard")
		}
		if err := c.process(br.body, sc.child(nil, false)); err != nil {
			return err
		}
	}
	return nil
}

// bindTarget resolves an assignment or input target.
func (c *checker) bindTarget(name *nameExpr, index expr, sc *scope) *Err {
	sym, ok := sc.lookup(name.name)
	if !ok {
		return errf(name.line, name.col, "undeclared name %q", name.name)
	}
	name.sym = sym
	switch sym.kind {
	case symVar, symRep:
	case symParam:
		if sym.paramKind == paramChan {
			return errf(name.line, name.col, "%q is a channel parameter, not a variable", name.name)
		}
		if sym.paramKind == paramValue && !sym.array && index == nil {
			return errf(name.line, name.col, "cannot assign to VALUE parameter %q", name.name)
		}
	default:
		return errf(name.line, name.col, "%q is not a variable", name.name)
	}
	if index != nil {
		if !sym.array {
			return errf(name.line, name.col, "%q is not an array", name.name)
		}
		return c.expr(index, sc)
	}
	return nil
}

// bindChannel resolves a channel reference.
func (c *checker) bindChannel(name *nameExpr, index expr, sc *scope) *Err {
	sym, ok := sc.lookup(name.name)
	if !ok {
		return errf(name.line, name.col, "undeclared channel %q", name.name)
	}
	name.sym = sym
	switch {
	case sym.kind == symChan:
	case sym.kind == symParam && sym.paramKind == paramChan:
	default:
		return errf(name.line, name.col, "%q is not a channel", name.name)
	}
	if index != nil {
		if !sym.array {
			return errf(name.line, name.col, "%q is not a channel array", name.name)
		}
		return c.expr(index, sc)
	}
	return nil
}

// argument checks an actual against its formal.
func (c *checker) argument(a expr, formal *symbol, sc *scope) *Err {
	switch formal.paramKind {
	case paramValue:
		if formal.array {
			return c.arrayArg(a, sc, "an array")
		}
		return c.expr(a, sc)
	case paramVar:
		if formal.array {
			return c.arrayArg(a, sc, "an array")
		}
		// Need an addressable variable.
		switch v := a.(type) {
		case *nameExpr:
			return c.bindTarget(v, nil, sc)
		case *indexExpr:
			return c.bindTarget(v.base, v.index, sc)
		}
		return errf(posOfExpr(a).line, posOfExpr(a).col, "VAR argument must be a variable")
	case paramChan:
		switch v := a.(type) {
		case *nameExpr:
			if formal.array {
				if err := c.bindChannel(v, nil, sc); err != nil {
					return err
				}
				if !v.sym.array {
					return errf(v.line, v.col, "%q is not a channel array", v.name)
				}
				return nil
			}
			return c.bindChannel(v, nil, sc)
		case *indexExpr:
			return c.bindChannel(v.base, v.index, sc)
		}
		return errf(posOfExpr(a).line, posOfExpr(a).col, "CHAN argument must be a channel")
	}
	return nil
}

func (c *checker) arrayArg(a expr, sc *scope, what string) *Err {
	v, ok := a.(*nameExpr)
	if !ok {
		return errf(posOfExpr(a).line, posOfExpr(a).col, "argument must be %s name", what)
	}
	sym, found := sc.lookup(v.name)
	if !found {
		return errf(v.line, v.col, "undeclared name %q", v.name)
	}
	v.sym = sym
	if !sym.array {
		return errf(v.line, v.col, "%q is not an array", v.name)
	}
	return nil
}

// expr resolves names within an expression.
func (c *checker) expr(e expr, sc *scope) *Err {
	switch v := e.(type) {
	case *numberExpr:
		return nil
	case *nameExpr:
		sym, ok := sc.lookup(v.name)
		if !ok {
			return errf(v.line, v.col, "undeclared name %q", v.name)
		}
		v.sym = sym
		switch sym.kind {
		case symVar, symRep, symConst, symTable:
		case symParam:
			if sym.paramKind == paramChan {
				return errf(v.line, v.col, "channel %q cannot appear in an expression", v.name)
			}
		case symChan:
			return errf(v.line, v.col, "channel %q cannot appear in an expression", v.name)
		default:
			return errf(v.line, v.col, "%q cannot appear in an expression", v.name)
		}
		return nil
	case *indexExpr:
		if err := c.expr(v.base, sc); err != nil {
			return err
		}
		if !v.base.sym.array {
			return errf(v.line, v.col, "%q is not an array", v.base.name)
		}
		return c.expr(v.index, sc)
	case *unaryExpr:
		return c.expr(v.arg, sc)
	case *binaryExpr:
		if err := c.expr(v.left, sc); err != nil {
			return err
		}
		return c.expr(v.right, sc)
	}
	return errf(0, 0, "checker: unhandled expression %T", e)
}

// constExpr resolves and folds a compile-time constant.
func (c *checker) constExpr(e expr, sc *scope) (int64, *Err) {
	if err := c.expr(e, sc); err != nil {
		return 0, err
	}
	v, ok := foldConst(e)
	if !ok {
		p := posOfExpr(e)
		return 0, errf(p.line, p.col, "expression is not a compile-time constant")
	}
	return v, nil
}

// foldConst evaluates constant expressions (DEF values, literals, and
// operators over them).
func foldConst(e expr) (int64, bool) {
	switch v := e.(type) {
	case *numberExpr:
		return v.val, true
	case *nameExpr:
		if v.sym != nil && v.sym.kind == symConst {
			return v.sym.value, true
		}
	case *unaryExpr:
		a, ok := foldConst(v.arg)
		if !ok {
			return 0, false
		}
		switch v.op {
		case "-":
			return -a, true
		case "NOT":
			return boolInt(a == 0), true
		}
	case *binaryExpr:
		l, ok1 := foldConst(v.left)
		r, ok2 := foldConst(v.right)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch v.op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case "\\":
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case "/\\":
			return l & r, true
		case "\\/":
			return l | r, true
		case "><":
			return l ^ r, true
		case "<<":
			return l << uint(r&63), true
		case ">>":
			return int64(uint64(l) >> uint(r&63)), true
		case "=":
			return boolInt(l == r), true
		case "<>":
			return boolInt(l != r), true
		case "<":
			return boolInt(l < r), true
		case ">":
			return boolInt(l > r), true
		case "<=":
			return boolInt(l <= r), true
		case ">=":
			return boolInt(l >= r), true
		case "AND":
			return boolInt(l != 0 && r != 0), true
		case "OR":
			return boolInt(l != 0 || r != 0), true
		}
	}
	return 0, false
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func posOfExpr(e expr) pos {
	switch v := e.(type) {
	case *numberExpr:
		return v.pos
	case *nameExpr:
		return v.pos
	case *indexExpr:
		return v.pos
	case *unaryExpr:
		return v.pos
	case *binaryExpr:
		return v.pos
	}
	return pos{}
}
