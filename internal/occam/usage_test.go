package occam

import (
	"strings"
	"testing"
)

// Usage checking (paper 2.2.1): the static disjointness rules for PAR.

func compileErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Compile(src, Options{})
	return err
}

func mustCompile(t *testing.T, src string) {
	t.Helper()
	if err := compileErr(t, src); err != nil {
		t.Fatalf("should compile: %v", err)
	}
}

func mustReject(t *testing.T, src, wantMsg string) {
	t.Helper()
	err := compileErr(t, src)
	if err == nil {
		t.Fatalf("should be rejected:\n%s", src)
	}
	if wantMsg != "" && !strings.Contains(err.Error(), wantMsg) {
		t.Fatalf("error %q does not mention %q", err.Error(), wantMsg)
	}
}

func TestUsageVarWrittenTwice(t *testing.T) {
	mustReject(t, `VAR x:
PAR
  x := 1
  x := 2
`, "assigned in one component")
}

func TestUsageWriteVsRead(t *testing.T) {
	mustReject(t, `VAR x, y:
PAR
  x := 1
  y := x
`, "assigned in one component")
}

func TestUsageDisjointVarsOK(t *testing.T) {
	mustCompile(t, `VAR x, y, z:
SEQ
  z := 5
  PAR
    x := z
    y := z
`)
}

func TestUsageChannelTwoWriters(t *testing.T) {
	mustReject(t, `CHAN c:
VAR v:
PAR
  c ! 1
  c ! 2
  SEQ
    c ? v
    c ? v
`, "output by two components")
}

func TestUsageChannelTwoReaders(t *testing.T) {
	mustReject(t, `CHAN c:
VAR a, b:
PAR
  SEQ
    c ! 1
    c ! 2
  c ? a
  c ? b
`, "input by two components")
}

func TestUsageChannelOneEachWayOK(t *testing.T) {
	mustCompile(t, `CHAN c:
VAR v:
PAR
  c ! 1
  c ? v
`)
}

func TestUsageArrayGranularity(t *testing.T) {
	// Distinct constant subscripts are disjoint and legal.
	mustCompile(t, `VAR a[4]:
PAR
  a[0] := 1
  a[1] := 2
`)
	// The same constant element conflicts.
	mustReject(t, `VAR a[4]:
PAR
  a[2] := 1
  a[2] := 2
`, "assigned in one component")
	// A dynamic subscript overlaps every element.
	mustReject(t, `VAR a[4], i:
SEQ
  i := 0
  PAR
    a[i] := 1
    a[1] := 2
`, "assigned in one component")
	// Constant-element channel use: one writer and one reader per
	// element across components.
	mustCompile(t, `CHAN c[2]:
VAR x, y:
PAR
  c[0] ! 1
  c[1] ! 2
  SEQ
    c[0] ? x
    c[1] ? y
`)
}

func TestUsageThroughProcParams(t *testing.T) {
	// The channel direction flows through PROC summaries: put outputs,
	// take inputs, so producer/consumer over one channel is legal...
	mustCompile(t, `PROC put(CHAN c) =
  c ! 1
:
PROC take(CHAN c, VAR v) =
  c ? v
:
CHAN ch:
VAR r:
PAR
  put(ch)
  take(ch, r)
`)
	// ...but two producers on one channel are not.
	mustReject(t, `PROC put(CHAN c) =
  c ! 1
:
CHAN ch:
VAR a, b:
PAR
  put(ch)
  put(ch)
  SEQ
    ch ? a
    ch ? b
`, "output by two components")
}

func TestUsageVarParamWrite(t *testing.T) {
	mustReject(t, `PROC bump(VAR x) =
  x := x + 1
:
VAR v:
PAR
  bump(v)
  bump(v)
`, "assigned in one component")
}

func TestUsageValueParamReadOK(t *testing.T) {
	mustCompile(t, `PROC probe(VALUE x, CHAN out) =
  out ! x
:
CHAN a, b:
VAR v, r1, r2:
SEQ
  v := 9
  PAR
    probe(v, a)
    probe(v, b)
    SEQ
      a ? r1
      b ? r2
`)
}

func TestUsageAltGuardChannels(t *testing.T) {
	// Two components both ALTing on the same channel for input.
	mustReject(t, `CHAN c:
VAR x, y:
PAR
  ALT
    c ? x
      SKIP
  ALT
    c ? y
      SKIP
  c ! 1
`, "input by two components")
}

func TestUsageNestedParAggregates(t *testing.T) {
	// The inner PAR's usage propagates to the outer comparison.
	mustReject(t, `VAR x:
PAR
  PAR
    x := 1
    SKIP
  x := 2
`, "assigned in one component")
}

func TestUsageSeqSharingOK(t *testing.T) {
	// SEQ components may share freely.
	mustCompile(t, `VAR x:
SEQ
  x := 1
  x := x + 1
`)
}

func TestUsageReplicatedParSkipped(t *testing.T) {
	// Replicated PAR is not pairwise-checked (documented): indexed
	// channel use compiles.
	mustCompile(t, `DEF n = 3:
CHAN c[n]:
VAR v:
PAR
  PAR i = [0 FOR n]
    c[i] ! i
  SEQ i = [0 FOR n]
    c[i] ? v
`)
}

func TestUsageTimerTargets(t *testing.T) {
	mustReject(t, `VAR t:
PAR
  TIME ? t
  TIME ? t
`, "assigned in one component")
}
