package occam

import (
	"fmt"

	"transputer/internal/asm"
	"transputer/internal/core"
	"transputer/internal/isa"
)

// Options configures a compilation.
type Options struct {
	// WordBytes is the target word length in bytes: 4 (T424) or 2
	// (T222).  Defaults to 4.
	WordBytes int
	// ExtraWsBelow adds headroom words below the initial workspace
	// pointer, for programs loaded alongside hand-patched data.
	ExtraWsBelow int
	// NoUsageCheck disables the PAR disjointness rules (paper 2.2.1);
	// programs relying on priority-ordered access to shared state can
	// opt out, forfeiting occam's correctness guarantees.
	NoUsageCheck bool
}

// Compiled is the result of compiling an occam program.
type Compiled struct {
	Image  core.Image
	Labels map[string]int
	// Above and Below are the main frame's workspace requirements, in
	// words.
	Above, Below int
}

// Compile translates an occam program into a loadable image.  The
// program's process begins execution as a single low-priority process;
// when it terminates, the instruction stream ends with stop process,
// leaving the machine idle.
func Compile(src string, opt Options) (*Compiled, error) {
	if err := checkOptions(&opt); err != nil {
		return nil, err
	}
	prog, perr := parse(src)
	if perr != nil {
		return nil, perr
	}
	return compileProgram(prog, opt)
}

func checkOptions(opt *Options) error {
	if opt.WordBytes == 0 {
		opt.WordBytes = 4
	}
	if opt.WordBytes != 2 && opt.WordBytes != 4 {
		return fmt.Errorf("occam: unsupported word length %d bytes", opt.WordBytes)
	}
	return nil
}

// Processor is one transputer's share of a configured program.
type Processor struct {
	ID       int64
	Compiled *Compiled
}

// CompileConfigured compiles a program whose outermost process is
// PLACED PAR — the occam configuration construct the paper's model
// rests on: "externally, a collection of processes may be configured
// for a network of transputers.  Each transputer executes a component
// process, and occam channels are allocated to links."  Declarations
// preceding the PLACED PAR (DEFs and PROCs) are shared by every
// component; each PROCESSOR block is compiled to its own image, with
// its channels PLACEd on link addresses.  A program without PLACED PAR
// compiles to a single processor numbered 0.
func CompileConfigured(src string, opt Options) ([]Processor, error) {
	if err := checkOptions(&opt); err != nil {
		return nil, err
	}
	prog, perr := parse(src)
	if perr != nil {
		return nil, perr
	}
	// Peel shared declarations off the front.
	var shared []decl
	body := prog
	for {
		dp, ok := body.(*declProc)
		if !ok {
			break
		}
		shared = append(shared, dp.decls...)
		body = dp.body
	}
	pp, ok := body.(*placedPar)
	if !ok {
		comp, err := compileProgram(prog, opt)
		if err != nil {
			return nil, err
		}
		return []Processor{{ID: 0, Compiled: comp}}, nil
	}

	var out []Processor
	seen := map[int64]bool{}
	for i := range pp.components {
		comp := &pp.components[i]
		// The processor number is folded by smuggling it through a DEF
		// in the component's compilation.
		idDecl := &defDecl{pos: comp.pos, name: "configured.processor.number", value: comp.processor}
		decls := append(append([]decl{}, shared...), idDecl)
		synth := &declProc{pos: comp.pos, decls: decls, body: comp.body}
		compiled, err := compileProgram(synth, opt)
		if err != nil {
			return nil, err
		}
		if idDecl.sym == nil {
			return nil, errf(comp.line, comp.col, "PROCESSOR number is not a compile-time constant")
		}
		id := idDecl.sym.value
		if seen[id] {
			return nil, errf(comp.line, comp.col, "PROCESSOR %d configured twice", id)
		}
		seen[id] = true
		out = append(out, Processor{ID: id, Compiled: compiled})
	}
	return out, nil
}

func compileProgram(prog process, opt Options) (*Compiled, error) {
	c := newChecker(opt.WordBytes)
	root, cerr := c.run(prog)
	if cerr != nil {
		return nil, cerr
	}
	if !opt.NoUsageCheck {
		if uerr := c.checkUsage(prog); uerr != nil {
			return nil, uerr
		}
	}
	c.sizeProgram(prog, root)

	g := &gen{
		c:         c,
		b:         asm.NewBuilder(opt.WordBytes),
		wordBytes: opt.WordBytes,
		cur:       root,
		paths:     map[*frame]accessPath{root: {}},
	}
	var genErr *Err
	func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(*Err); ok {
					genErr = e
					return
				}
				panic(r)
			}
		}()
		g.process(prog)
		// Program termination: the initial process stops, leaving the
		// machine idle.
		g.b.Op(isa.OpStopp)
		for len(g.queue) > 0 {
			info := g.queue[0]
			g.queue = g.queue[1:]
			g.emitProc(info)
		}
		// String tables, word aligned after the code.
		for _, sym := range g.tableOrder {
			g.b.Align()
			g.b.MustLabel(g.tableLabels[sym])
			g.b.Bytes(sym.tableData)
		}
	}()
	if genErr != nil {
		return nil, genErr
	}

	res, err := g.b.Assemble()
	if err != nil {
		return nil, err
	}
	return &Compiled{
		Image: core.Image{
			Code:    res.Code,
			Entry:   0,
			WsBelow: root.below + opt.ExtraWsBelow,
			WsAbove: root.above,
			Marks:   res.Marks,
		},
		Labels: res.Labels,
		Above:  root.above,
		Below:  root.below,
	}, nil
}
