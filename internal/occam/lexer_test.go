package occam

import "testing"

func lexOK(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	return toks
}

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, tk := range toks {
		out[i] = tk.kind
	}
	return out
}

func TestLexIndentation(t *testing.T) {
	toks := lexOK(t, "SEQ\n  SKIP\n  SKIP\n")
	want := []tokenKind{tokKeyword, tokNewline, tokIndent, tokKeyword, tokNewline,
		tokKeyword, tokNewline, tokDedent, tokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want kind %d", i, toks[i], want[i])
		}
	}
}

func TestLexNestedDedent(t *testing.T) {
	toks := lexOK(t, "SEQ\n  SEQ\n    SKIP\nSKIP\n")
	dedents := 0
	for _, tk := range toks {
		if tk.kind == tokDedent {
			dedents++
		}
	}
	if dedents != 2 {
		t.Errorf("dedents = %d, want 2", dedents)
	}
}

func TestLexBadIndent(t *testing.T) {
	if _, err := lex("SEQ\n   SKIP\n"); err == nil {
		t.Error("three-space indent should fail")
	}
	if _, err := lex("SEQ\n\tSKIP\n"); err == nil {
		t.Error("tab indent should fail")
	}
}

func TestLexComments(t *testing.T) {
	toks := lexOK(t, "SKIP -- a comment\n-- whole line\n")
	if len(toks) != 3 { // SKIP, newline, EOF
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexOK(t, "x := #7FF + 42\n")
	var vals []int64
	for _, tk := range toks {
		if tk.kind == tokNumber {
			vals = append(vals, tk.val)
		}
	}
	if len(vals) != 2 || vals[0] != 0x7FF || vals[1] != 42 {
		t.Errorf("values = %v", vals)
	}
}

func TestLexCharLiterals(t *testing.T) {
	toks := lexOK(t, "c ! 'A'; '*n'\n")
	var vals []int64
	for _, tk := range toks {
		if tk.kind == tokChar {
			vals = append(vals, tk.val)
		}
	}
	if len(vals) != 2 || vals[0] != 'A' || vals[1] != '\n' {
		t.Errorf("chars = %v", vals)
	}
}

func TestLexSymbols(t *testing.T) {
	toks := lexOK(t, "a := (b /\\ c) >< d\n")
	var syms []string
	for _, tk := range toks {
		if tk.kind == tokSymbol {
			syms = append(syms, tk.text)
		}
	}
	want := []string{":=", "(", "/\\", ")", "><"}
	if len(syms) != len(want) {
		t.Fatalf("symbols = %v", syms)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Errorf("symbol %d = %q, want %q", i, syms[i], want[i])
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks := lexOK(t, "SEQ foo WHILE bar\n")
	if toks[0].kind != tokKeyword || toks[1].kind != tokIdent ||
		toks[2].kind != tokKeyword || toks[3].kind != tokIdent {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexDottedNames(t *testing.T) {
	toks := lexOK(t, "in.data ? x\n")
	if toks[0].kind != tokIdent || toks[0].text != "in.data" {
		t.Errorf("token = %v", toks[0])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"x := 'ab'\n", "x := #\n", "x := @\n", "s := \"abc\n"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}
