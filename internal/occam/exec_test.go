package occam_test

import (
	"strings"
	"testing"

	"transputer/internal/core"
	"transputer/internal/isa"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// runOccam compiles a program, runs it on a 64 KiB T424 with a host on
// link 0, and returns the host (Values carries every word the program
// reported with "screen ! 2; value").
func runOccam(t *testing.T, src string) (*network.Host, network.Report) {
	t.Helper()
	comp, err := occam.Compile(src, occam.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := network.NewSystem()
	n := s.MustAddTransputer("main", core.T424().WithMemory(64*1024))
	host, herr := s.AttachHost(n, 0, nil)
	if herr != nil {
		t.Fatal(herr)
	}
	if err := n.Load(comp.Image); err != nil {
		t.Fatalf("load: %v", err)
	}
	rep := s.Run(2 * sim.Second)
	if ferr := n.M.Fault(); ferr != nil {
		t.Fatalf("fault: %v", ferr)
	}
	if !rep.Settled {
		t.Fatalf("program did not settle: %+v", rep)
	}
	return host, rep
}

// values runs a program and returns the words it reported.
func values(t *testing.T, src string) []int64 {
	t.Helper()
	host, _ := runOccam(t, src)
	return host.Values
}

// report is the standard test prologue: a placed host channel.
const report = `CHAN screen:
PLACE screen AT LINK0OUT:
`

func wantValues(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("reported %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reported %v, want %v", got, want)
		}
	}
}

func TestAssignAndReport(t *testing.T) {
	got := values(t, report+`VAR x:
SEQ
  x := 42
  screen ! 2; x
`)
	wantValues(t, got, 42)
}

func TestArithmetic(t *testing.T) {
	got := values(t, report+`VAR v, w, y, z, r:
SEQ
  v := 3
  w := 4
  y := 5
  z := 6
  r := (v + w) * (y + z)
  screen ! 2; r
  screen ! 2; (100 - 1) - 9
  screen ! 2; 100 / 7
  screen ! 2; 100 \ 7
  screen ! 2; - v
  screen ! 2; (12 /\ 10)
  screen ! 2; (12 \/ 10)
  screen ! 2; (12 >< 10)
  screen ! 2; (3 << 4)
  screen ! 2; (48 >> 4)
`)
	wantValues(t, got, 77, 90, 14, 2, -3, 8, 14, 6, 48, 3)
}

func TestComparisons(t *testing.T) {
	got := values(t, report+`SEQ
  screen ! 2; (3 = 3)
  screen ! 2; (3 <> 3)
  screen ! 2; (3 < 4)
  screen ! 2; (4 < 3)
  screen ! 2; (4 > 3)
  screen ! 2; (3 >= 3)
  screen ! 2; (3 <= 2)
  screen ! 2; (TRUE AND FALSE)
  screen ! 2; (TRUE OR FALSE)
  screen ! 2; NOT TRUE
`)
	wantValues(t, got, 1, 0, 1, 0, 1, 1, 0, 0, 1, 0)
}

func TestIfAndWhile(t *testing.T) {
	got := values(t, report+`VAR x, sum:
SEQ
  x := 10
  sum := 0
  WHILE x > 0
    SEQ
      sum := sum + x
      x := x - 1
  screen ! 2; sum
  IF
    sum = 55
      screen ! 2; 1
    TRUE
      screen ! 2; 0
`)
	wantValues(t, got, 55, 1)
}

func TestReplicatedSeq(t *testing.T) {
	got := values(t, report+`VAR sum:
SEQ
  sum := 0
  SEQ i = [1 FOR 10]
    sum := sum + i
  screen ! 2; sum
  SEQ i = [5 FOR 0]
    sum := 0
  screen ! 2; sum
`)
	wantValues(t, got, 55, 55)
}

func TestArrays(t *testing.T) {
	got := values(t, report+`VAR a[8], sum:
SEQ
  SEQ i = [0 FOR 8]
    a[i] := i * i
  sum := 0
  SEQ i = [0 FOR 8]
    sum := sum + a[i]
  screen ! 2; sum
  screen ! 2; a[3]
`)
	wantValues(t, got, 140, 9)
}

func TestDefConstants(t *testing.T) {
	got := values(t, report+`DEF n = 6:
DEF m = n * 7:
screen ! 2; m
`)
	wantValues(t, got, 42)
}

func TestInternalChannelPar(t *testing.T) {
	got := values(t, report+`CHAN c:
VAR r:
SEQ
  PAR
    c ! 123
    c ? r
  screen ! 2; r
`)
	wantValues(t, got, 123)
}

func TestPipelinePar(t *testing.T) {
	// Three-stage pipeline over internal channels.
	got := values(t, report+`CHAN a, b:
VAR r:
SEQ
  PAR
    a ! 5
    VAR v:
    SEQ
      a ? v
      b ! v * v
    b ? r
  screen ! 2; r
`)
	wantValues(t, got, 25)
}

func TestReplicatedParWithChannelArray(t *testing.T) {
	// n workers each send i*10 on their own channel; a collector sums.
	got := values(t, report+`DEF n = 4:
CHAN c[n]:
VAR sum:
SEQ
  sum := 0
  PAR
    PAR i = [0 FOR n]
      c[i] ! i * 10
    VAR v:
    SEQ i = [0 FOR n]
      SEQ
        c[i] ? v
        sum := sum + v
  screen ! 2; sum
`)
	wantValues(t, got, 60)
}

func TestProcCalls(t *testing.T) {
	got := values(t, report+`PROC double(VALUE x, VAR r) =
  r := x + x
:
VAR y:
SEQ
  double(21, y)
  screen ! 2; y
`)
	wantValues(t, got, 42)
}

func TestProcWithChannelParam(t *testing.T) {
	got := values(t, report+`PROC emit(CHAN out, VALUE base) =
  SEQ i = [0 FOR 3]
    out ! base + i
:
CHAN c:
VAR a, b, d:
SEQ
  PAR
    emit(c, 100)
    SEQ
      c ? a
      c ? b
      c ? d
  screen ! 2; a + (b + d)
`)
	wantValues(t, got, 303)
}

func TestProcManyParams(t *testing.T) {
	// Five parameters: two travel in caller-stored slots.
	got := values(t, report+`PROC sum5(VALUE a, b, c, d, e, VAR r) =
  r := a + b + c + d + e
:
VAR y:
SEQ
  sum5(1, 2, 3, 4, 5, y)
  screen ! 2; y
`)
	wantValues(t, got, 15)
}

func TestProcArrayParam(t *testing.T) {
	got := values(t, report+`PROC fill(VAR a[], VALUE n) =
  SEQ i = [0 FOR n]
    a[i] := i + 1
:
PROC total(VALUE a[], n, VAR r) =
  SEQ
    r := 0
    SEQ i = [0 FOR n]
      r := r + a[i]
:
VAR buf[6], s:
SEQ
  fill(buf, 6)
  total(buf, 6, s)
  screen ! 2; s
`)
	wantValues(t, got, 21)
}

func TestNestedProcCalls(t *testing.T) {
	got := values(t, report+`PROC inc(VAR x) =
  x := x + 1
:
PROC inc2(VAR x) =
  SEQ
    inc(x)
    inc(x)
:
VAR v:
SEQ
  v := 40
  inc2(v)
  screen ! 2; v
`)
	wantValues(t, got, 42)
}

func TestAlternativeSelects(t *testing.T) {
	got := values(t, report+`CHAN a, b:
VAR r, which:
SEQ
  PAR
    b ! 9
    ALT
      a ? r
        which := 1
      b ? r
        which := 2
  screen ! 2; which
  screen ! 2; r
`)
	wantValues(t, got, 2, 9)
}

func TestAlternativeGuards(t *testing.T) {
	// The boolean guard disables the first branch even though its
	// channel is ready.
	got := values(t, report+`CHAN a:
VAR r, which:
SEQ
  PAR
    a ! 5
    ALT
      FALSE & a ? r
        which := 1
      TRUE & a ? r
        which := 2
  screen ! 2; which
`)
	wantValues(t, got, 2)
}

func TestAlternativeSkipGuard(t *testing.T) {
	got := values(t, report+`CHAN a:
VAR which:
SEQ
  ALT
    a ? which
      which := 1
    TRUE & SKIP
      which := 3
  screen ! 2; which
`)
	wantValues(t, got, 3)
}

func TestTimerDelayAndTimeout(t *testing.T) {
	// A timer guard times out a communication that never happens.
	host, rep := runOccam(t, report+`CHAN never:
VAR t, which:
SEQ
  TIME ? t
  ALT
    never ? which
      which := 1
    TIME ? AFTER t + 10
      which := 2
  screen ! 2; which
`)
	wantValues(t, host.Values, 2)
	// Ten low-priority ticks of 64 µs.
	if rep.Time < 640*sim.Microsecond {
		t.Errorf("timeout fired at %v, want >= 640µs", rep.Time)
	}
}

func TestTimeDelayedInput(t *testing.T) {
	_, rep := runOccam(t, report+`VAR t:
SEQ
  TIME ? t
  TIME ? AFTER t + 5
  screen ! 2; 1
`)
	if rep.Time < 5*64*sim.Microsecond {
		t.Errorf("delayed input completed at %v, want >= 320µs", rep.Time)
	}
}

func TestPriPar(t *testing.T) {
	// The high-priority component's message reaches the collector
	// before the low-priority one's: the collector alternates over its
	// two channels and records the arrival order.
	got := values(t, report+`CHAN h, l:
VAR first, second:
SEQ
  PRI PAR
    h ! 1
    SEQ
      ALT
        h ? first
          l ? second
        l ? first
          h ? second
    l ! 2
  screen ! 2; first
  screen ! 2; second
`)
	wantValues(t, got, 1, 2)
}

// TestPriParSharedStateRejected pins the usage rule (paper 2.2.1):
// priority does not license shared variables between PAR components.
func TestPriParSharedStateRejected(t *testing.T) {
	src := `VAR slot:
SEQ
  slot := 0
  PRI PAR
    slot := 1
    slot := 2
`
	if _, err := occam.Compile(src, occam.Options{}); err == nil {
		t.Fatal("shared assignment across PRI PAR should be rejected")
	}
	// The escape hatch compiles it anyway.
	if _, err := occam.Compile(src, occam.Options{NoUsageCheck: true}); err != nil {
		t.Fatalf("NoUsageCheck: %v", err)
	}
}

func TestStopDeadlocks(t *testing.T) {
	// STOP never proceeds: the program reports nothing and idles.
	host, rep := runOccam(t, report+`SEQ
  STOP
  screen ! 2; 1
`)
	if len(host.Values) != 0 {
		t.Errorf("STOP leaked values %v", host.Values)
	}
	if !rep.Settled {
		t.Error("machine should idle after STOP")
	}
}

func TestIfNoBranchStops(t *testing.T) {
	host, _ := runOccam(t, report+`SEQ
  IF
    FALSE
      SKIP
  screen ! 2; 1
`)
	if len(host.Values) != 0 {
		t.Error("IF with no true branch must behave like STOP")
	}
}

func TestExpressionSpill(t *testing.T) {
	// Deeply right-nested expression forces workspace temporaries.
	got := values(t, report+`VAR a, b, c, d, e:
SEQ
  a := 1
  b := 2
  c := 3
  d := 4
  e := 5
  screen ! 2; (a + (b + (c + (d + e))))
  screen ! 2; ((((a + b) + c) + d) + e)
`)
	wantValues(t, got, 15, 15)
}

func TestChannelArrayIndexExpression(t *testing.T) {
	got := values(t, report+`DEF n = 3:
CHAN c[n]:
VAR r:
SEQ
  PAR
    c[2 - 1] ! 77
    c[1] ? r
  screen ! 2; r
`)
	wantValues(t, got, 77)
}

func TestNestedPar(t *testing.T) {
	got := values(t, report+`CHAN a, b, c:
VAR x, y, z:
SEQ
  PAR
    PAR
      a ! 1
      b ! 2
    SEQ
      a ? x
      b ? y
    c ! 3
    c ? z
  screen ! 2; (x + y) + z
`)
	wantValues(t, got, 6)
}

func TestWordLengthIndependentCompile(t *testing.T) {
	src := report + `VAR x:
SEQ
  x := 1000
  screen ! 2; x + 234
`
	c32, err := occam.Compile(src, occam.Options{WordBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	c16, err := occam.Compile(src, occam.Options{WordBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The channel placement address differs by word length, but the
	// program logic compiles to the same shape; run both and compare
	// behaviour.
	run := func(comp *occam.Compiled, cfg core.Config) []int64 {
		s := network.NewSystem()
		n := s.MustAddTransputer("m", cfg)
		host, _ := s.AttachHost(n, 0, nil)
		if err := n.Load(comp.Image); err != nil {
			t.Fatal(err)
		}
		s.Run(sim.Second)
		return host.Values
	}
	v32 := run(c32, core.T424().WithMemory(32*1024))
	v16 := run(c16, core.T222().WithMemory(32*1024))
	wantValues(t, v32, 1234)
	wantValues(t, v16, 1234)
}

// TestPaperAssignmentGolden checks the compiler emits exactly the
// paper's instruction sequence for x := 0 and x := y (section 3.2.6):
// single-byte load/store instructions.
func TestPaperAssignmentGolden(t *testing.T) {
	comp, err := occam.Compile(`VAR x, y:
SEQ
  x := 0
  x := y
`, occam.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Locals x, y sit in the first sixteen workspace words, so each
	// instruction is one byte: ldc 0; stl x; ldl y; stl x; stopp.
	code := comp.Image.Code
	if len(code) < 4 {
		t.Fatalf("code too short: % X", code)
	}
	wantFns := []byte{0x40, 0xD2, 0x73, 0xD2}
	for i, w := range wantFns {
		if code[i] != w {
			t.Fatalf("code = % X, want prefix % X (ldc 0; stl x; ldl y; stl x)", code, wantFns)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"x := 1\n",                                // undeclared
		"VAR x:\nx ! 1\n",                         // not a channel
		"CHAN c:\nc := 1\n",                       // not a variable
		"VAR x:\nSEQ\n  x := y\n",                 // undeclared in expression
		"DEF n = x:\nSKIP\n",                      // non-constant DEF
		"VAR a[0]:\nSKIP\n",                       // zero-size array
		"VAR x:\nVAR x:\nSKIP\n",                  // hmm: separate scopes nest, so this is legal; replaced below
		"PROC p(VALUE a) =\n  SKIP\n:\np(1, 2)\n", // arity
		"VAR x:\nPROC p() =\n  x := 1\n:\np()\n",  // outer variable inside PROC
		"CHAN c:\nVAR v:\nALT\n  c ? v\n    SKIP\n  TIME ? v\n    SKIP\n", // timer guard must use AFTER
		"PROC p() =\n  p()\n:\np()\n",                                     // recursion
	}
	for _, src := range cases {
		if src == "VAR x:\nVAR x:\nSKIP\n" {
			continue
		}
		if _, err := occam.Compile(src, occam.Options{}); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestShadowingInNestedScopes(t *testing.T) {
	// Inner declarations shadow outer ones.
	got := values(t, report+`VAR x:
SEQ
  x := 1
  VAR y:
  SEQ
    y := 2
    screen ! 2; x + y
`)
	wantValues(t, got, 3)
}

func TestMultipleOutputsInputs(t *testing.T) {
	got := values(t, report+`CHAN c:
VAR a, b:
SEQ
  PAR
    c ! 10; 20
    c ? a; b
  screen ! 2; a
  screen ! 2; b
`)
	wantValues(t, got, 10, 20)
}

func TestArrayMessage(t *testing.T) {
	// Whole arrays travel as single messages.
	got := values(t, report+`CHAN c:
VAR src[4], dst[4], sum:
SEQ
  SEQ i = [0 FOR 4]
    src[i] := (i + 1) * 11
  PAR
    c ! src
    c ? dst
  sum := 0
  SEQ i = [0 FOR 4]
    sum := sum + dst[i]
  screen ! 2; sum
`)
	wantValues(t, got, 110)
}

func TestInputAny(t *testing.T) {
	got := values(t, report+`CHAN c:
VAR keep:
SEQ
  PAR
    c ! 1; 2; 3
    SEQ
      c ? ANY
      c ? keep
      c ? ANY
  screen ! 2; keep
`)
	wantValues(t, got, 2)
}

func TestReplicatedAlt(t *testing.T) {
	// Four senders on a channel array; a replicated ALT server takes
	// each message from whichever channel is ready.
	got := values(t, report+`DEF n = 4:
CHAN c[n]:
VAR sum, idxsum:
SEQ
  sum := 0
  idxsum := 0
  PAR
    PAR i = [0 FOR n]
      c[i] ! (i + 1) * 100
    VAR v:
    SEQ k = [0 FOR n]
      ALT i = [0 FOR n]
        c[i] ? v
          SEQ
            sum := sum + v
            idxsum := idxsum + i
  screen ! 2; sum
  screen ! 2; idxsum
`)
	wantValues(t, got, 1000, 6)
}

func TestReplicatedAltGuarded(t *testing.T) {
	got := values(t, report+`DEF n = 3:
CHAN c[n]:
VAR v, which:
SEQ
  PAR
    c[2] ! 7
    SEQ
      ALT i = [0 FOR n]
        (i = 2) & c[i] ? v
          which := i
  screen ! 2; v
  screen ! 2; which
`)
	wantValues(t, got, 7, 2)
}

func TestReplicatedAltNonZeroBase(t *testing.T) {
	got := values(t, report+`DEF n = 6:
CHAN c[n]:
VAR v, which:
SEQ
  PAR
    c[4] ! 11
    ALT i = [3 FOR 3]
      c[i] ? v
        which := i
  screen ! 2; v
  screen ! 2; which
`)
	wantValues(t, got, 11, 4)
}

func TestReplicatedAltRuntimeCount(t *testing.T) {
	// Unlike replicated PAR, a replicated ALT's count may be computed
	// at run time.
	got := values(t, report+`DEF n = 5:
CHAN c[n]:
VAR v, cnt:
SEQ
  cnt := 2 + 3
  PAR
    c[3] ! 99
    ALT i = [0 FOR cnt]
      c[i] ? v
        SKIP
  screen ! 2; v
`)
	wantValues(t, got, 99)
}

// TestPlacedPar compiles one source file into per-processor images —
// the occam configuration step of the paper ("each transputer executes
// a component process, and occam channels are allocated to links").
func TestPlacedPar(t *testing.T) {
	src := `DEF count = 5:
PROC squares(CHAN out, VALUE n) =
  SEQ i = [1 FOR n]
    out ! i * i
:
PROC show(CHAN in, CHAN to.host, VALUE n) =
  VAR v, sum:
  SEQ
    sum := 0
    SEQ i = [1 FOR n]
      SEQ
        in ? v
        sum := sum + v
    to.host ! 2; sum
    to.host ! 4
:
PLACED PAR
  PROCESSOR 0
    CHAN link:
    PLACE link AT LINK1OUT:
    squares(link, count)
  PROCESSOR 1
    CHAN link, screen:
    PLACE link AT LINK2IN:
    PLACE screen AT LINK0OUT:
    show(link, screen, count)
`
	procs, err := occam.CompileConfigured(src, occam.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2 || procs[0].ID != 0 || procs[1].ID != 1 {
		t.Fatalf("processors = %+v", procs)
	}

	s := network.NewSystem()
	p0 := s.MustAddTransputer("p0", core.T424().WithMemory(64*1024))
	p1 := s.MustAddTransputer("p1", core.T424().WithMemory(64*1024))
	s.MustConnect(p0, 1, p1, 2)
	host, _ := s.AttachHost(p1, 0, nil)
	if err := p0.Load(procs[0].Compiled.Image); err != nil {
		t.Fatal(err)
	}
	if err := p1.Load(procs[1].Compiled.Image); err != nil {
		t.Fatal(err)
	}
	rep := s.Run(10 * sim.Millisecond)
	if !rep.Settled || !host.Done {
		t.Fatalf("rep=%+v done=%v", rep, host.Done)
	}
	wantValues(t, host.Values, 1+4+9+16+25)
}

func TestPlacedParWithoutConstruct(t *testing.T) {
	// A plain program compiles as a single processor 0.
	procs, err := occam.CompileConfigured("SKIP\n", occam.Options{})
	if err != nil || len(procs) != 1 || procs[0].ID != 0 {
		t.Fatalf("%+v %v", procs, err)
	}
}

func TestPlacedParErrors(t *testing.T) {
	// Nested PLACED PAR is rejected.
	if _, err := occam.Compile("SEQ\n  PLACED PAR\n    PROCESSOR 0\n      SKIP\n", occam.Options{}); err == nil {
		t.Error("nested PLACED PAR should fail")
	}
	// Duplicate processor numbers are rejected.
	src := "PLACED PAR\n  PROCESSOR 1\n    SKIP\n  PROCESSOR 1\n    SKIP\n"
	if _, err := occam.CompileConfigured(src, occam.Options{}); err == nil {
		t.Error("duplicate processors should fail")
	}
	// Non-constant processor number is rejected.
	src2 := "VAR x:\nPLACED PAR\n  PROCESSOR x\n    SKIP\n"
	if _, err := occam.CompileConfigured(src2, occam.Options{}); err == nil {
		t.Error("non-constant processor number should fail")
	}
}

// TestPlacedParProcessorFromDef: processor numbers may use shared DEFs.
func TestPlacedParProcessorFromDef(t *testing.T) {
	src := `DEF worker = 7:
PLACED PAR
  PROCESSOR worker
    SKIP
  PROCESSOR worker + 1
    SKIP
`
	procs, err := occam.CompileConfigured(src, occam.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 2 || procs[0].ID != 7 || procs[1].ID != 8 {
		t.Fatalf("%+v", procs)
	}
}

// runOccamOn compiles and runs a program on a given machine model,
// returning the host values.
func runOccamOn(t *testing.T, src string, cfg core.Config, wordBytes int) []int64 {
	t.Helper()
	comp, err := occam.Compile(src, occam.Options{WordBytes: wordBytes})
	if err != nil {
		t.Fatalf("compile (%d-byte words): %v", wordBytes, err)
	}
	s := network.NewSystem()
	n := s.MustAddTransputer("main", cfg)
	host, herr := s.AttachHost(n, 0, nil)
	if herr != nil {
		t.Fatal(herr)
	}
	if err := n.Load(comp.Image); err != nil {
		t.Fatalf("load: %v", err)
	}
	rep := s.Run(2 * sim.Second)
	if ferr := n.M.Fault(); ferr != nil {
		t.Fatalf("fault: %v", ferr)
	}
	if !rep.Settled {
		t.Fatalf("program did not settle: %+v", rep)
	}
	return host.Values
}

// TestOccamBatteryOnT222 runs a battery of occam programs on the
// 16-bit T222 and requires the same results as the 32-bit T424 — the
// compiler's output differs only in the link placement addresses.
func TestOccamBatteryOnT222(t *testing.T) {
	programs := []string{
		report + `VAR a[6], sum:
SEQ
  SEQ i = [0 FOR 6]
    a[i] := (i + 1) * 7
  sum := 0
  SEQ i = [0 FOR 6]
    sum := sum + a[i]
  screen ! 2; sum
`,
		report + `PROC tri(VALUE n, VAR r) =
  SEQ
    r := 0
    SEQ i = [1 FOR n]
      r := r + i
:
VAR x:
SEQ
  tri(12, x)
  screen ! 2; x
`,
		report + `CHAN c:
VAR r:
SEQ
  PAR
    c ! 321
    c ? r
  screen ! 2; r
`,
		report + `CHAN a, b:
VAR r, which:
SEQ
  PAR
    b ! 55
    ALT
      a ? r
        which := 1
      b ? r
        which := 2
  screen ! 2; (which * 1000) + r
`,
	}
	for i, src := range programs {
		v32 := runOccamOn(t, src, core.T424().WithMemory(32*1024), 4)
		v16 := runOccamOn(t, src, core.T222().WithMemory(32*1024), 2)
		if len(v32) != len(v16) {
			t.Fatalf("program %d: %v vs %v", i, v32, v16)
		}
		for j := range v32 {
			if v32[j] != v16[j] {
				t.Errorf("program %d value %d: T424 %d, T222 %d", i, j, v32[j], v16[j])
			}
		}
	}
}

// TestByteSubscription exercises occam's a[BYTE i] addressing: the
// array's storage accessed byte by byte (little-endian words).
func TestByteSubscription(t *testing.T) {
	got := values(t, report+`VAR a[2], lo, packed:
SEQ
  a[0] := #11223344
  a[1] := 0
  lo := a[BYTE 0]
  screen ! 2; lo
  screen ! 2; a[BYTE 1]
  screen ! 2; a[BYTE 3]
  a[BYTE 4] := #7F
  screen ! 2; a[1]
  -- pack bytes into the second word through BYTE stores
  a[BYTE 5] := 2
  a[BYTE 6] := 3
  packed := a[1]
  screen ! 2; packed
`)
	wantValues(t, got, 0x44, 0x33, 0x11, 0x7F, 0x7F+(2<<8)+(3<<16))
}

func TestByteSubscriptionInExpressions(t *testing.T) {
	got := values(t, report+`VAR buf[4], sum:
SEQ
  SEQ i = [0 FOR 16]
    buf[BYTE i] := i + 1
  sum := 0
  SEQ i = [0 FOR 16]
    sum := sum + buf[BYTE i]
  screen ! 2; sum
`)
	wantValues(t, got, 136)
}

func TestByteSubscriptionOnChannelRejected(t *testing.T) {
	if _, err := occam.Compile("CHAN c[2]:\nc[BYTE 0] ! 1\n", occam.Options{}); err == nil {
		t.Error("BYTE subscription of a channel array should fail")
	}
}

// TestStringTables: DEF name = "string" builds a length-prefixed byte
// table (the occam-1 convention), read with BYTE subscription.
func TestStringTables(t *testing.T) {
	src := report + `DEF greeting = "hi there*n":
SEQ
  SEQ i = [1 FOR greeting[BYTE 0]]
    SEQ
      screen ! 1
      screen ! greeting[BYTE i]
  screen ! 4
`
	comp, err := occam.Compile(src, occam.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := network.NewSystem()
	n := s.MustAddTransputer("m", core.T424().WithMemory(64*1024))
	var out strings.Builder
	host, _ := s.AttachHost(n, 0, &out)
	if err := n.Load(comp.Image); err != nil {
		t.Fatal(err)
	}
	rep := s.Run(sim.Second)
	if !rep.Settled || !host.Done {
		t.Fatalf("rep=%+v done=%v", rep, host.Done)
	}
	if out.String() != "hi there\n" {
		t.Errorf("printed %q", out.String())
	}
}

func TestStringTableReadOnly(t *testing.T) {
	if _, err := occam.Compile(`DEF s = "ab":
s[BYTE 1] := 99
`, occam.Options{}); err == nil {
		t.Error("assigning into a string table should fail")
	}
}

func TestStringTableAsValueParam(t *testing.T) {
	// Tables pass to VALUE array parameters like any array base.
	src := report + `DEF msg = "abc":
PROC total(VALUE t[], VAR r) =
  SEQ
    r := 0
    SEQ i = [1 FOR t[BYTE 0]]
      r := r + t[BYTE i]
:
VAR sum:
SEQ
  total(msg, sum)
  screen ! 2; sum
`
	got := values(t, src)
	wantValues(t, got, 'a'+'b'+'c')
}

// TestCommunicationOneByteOfProgram pins the paper's claim that "a
// communication primitive communicating a block of size n bytes
// requires only one byte of program" (3.2.10): the input/output
// instructions themselves are single bytes.
func TestCommunicationOneByteOfProgram(t *testing.T) {
	comp, err := occam.Compile(`CHAN c:
VAR v, src[8], dst[8]:
PAR
  SEQ
    c ! 1
    c ! src
  SEQ
    c ? v
    c ? dst
`, occam.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ln := range isa.DisassembleAll(comp.Image.Code) {
		if ln.Instr.IsOp() {
			counts[ln.Instr.Op().Mnemonic()] += len(ln.Bytes)
		}
	}
	// outword, out, in are all operation code < 16: one byte each.
	if counts["outword"] != 1 {
		t.Errorf("outword occupies %d bytes, want 1", counts["outword"])
	}
	if counts["out"] != 1 {
		t.Errorf("out occupies %d bytes, want 1", counts["out"])
	}
	if counts["in"] != 2 { // two inputs compiled
		t.Errorf("two in instructions occupy %d bytes, want 2", counts["in"])
	}
}
