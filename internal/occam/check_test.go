package occam

import (
	"strings"
	"testing"
)

// Checker diagnostics: each bad program must fail with a message that
// names the problem.

func rejectWith(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatalf("should be rejected:\n%s", src)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err.Error(), fragment)
	}
}

func TestCheckUndeclared(t *testing.T) {
	rejectWith(t, "x := 1\n", "undeclared")
	rejectWith(t, "VAR x:\nx := y\n", "undeclared")
	rejectWith(t, "c ! 1\n", "undeclared channel")
}

func TestCheckKindMismatches(t *testing.T) {
	rejectWith(t, "VAR x:\nx ! 1\n", "not a channel")
	rejectWith(t, "VAR x:\nx ? x\n", "not a channel")
	rejectWith(t, "CHAN c:\nc := 1\n", "not a variable")
	rejectWith(t, "CHAN c:\nVAR x:\nx := c\n", "cannot appear in an expression")
	rejectWith(t, "DEF n = 3:\nn := 4\n", "not a variable")
}

func TestCheckArrayMisuse(t *testing.T) {
	rejectWith(t, "VAR x:\nSEQ\n  x[0] := 1\n", "not an array")
	rejectWith(t, "VAR a[0]:\nSKIP\n", "positive")
	rejectWith(t, "VAR n, a[n]:\nSKIP\n", "constant")
	rejectWith(t, "CHAN c:\nVAR v:\nc[0] ? v\n", "not a channel array")
}

func TestCheckProcErrors(t *testing.T) {
	rejectWith(t, "PROC p(VALUE a) =\n  SKIP\n:\np(1, 2)\n", "takes 1 arguments")
	rejectWith(t, "PROC p(VAR a) =\n  a := 1\n:\np(3)\n", "must be a variable")
	rejectWith(t, "PROC p(CHAN c) =\n  c ! 1\n:\nVAR x:\np(x)\n", "not a channel")
	rejectWith(t, "q(1)\n", "not a PROC")
	// No recursion: the PROC's own name is not in scope in its body.
	rejectWith(t, "PROC p() =\n  p()\n:\np()\n", "not a PROC")
	// A VALUE scalar parameter cannot be assigned.
	rejectWith(t, "PROC p(VALUE a) =\n  a := 1\n:\np(1)\n", "cannot assign")
}

func TestCheckProcOuterCapture(t *testing.T) {
	rejectWith(t, "VAR x:\nPROC p() =\n  x := 1\n:\np()\n", "undeclared")
	rejectWith(t, "CHAN c:\nPROC p() =\n  c ! 1\n:\np()\n", "undeclared")
	// Constants remain visible inside PROCs.
	mustCompile(t, "DEF k = 9:\nPROC p(CHAN out) =\n  out ! k\n:\nCHAN c:\nVAR v:\nPAR\n  p(c)\n  c ? v\n")
}

func TestCheckPlaceErrors(t *testing.T) {
	rejectWith(t, "VAR x:\nPLACE x AT 5:\nSKIP\n", "needs a channel")
	rejectWith(t, "CHAN c[2]:\nPLACE c AT 5:\nSKIP\n", "channel array")
	rejectWith(t, "VAR n:\nCHAN c:\nPLACE c AT n:\nc ! 1\n", "constant")
}

func TestCheckReplicatedParConstraints(t *testing.T) {
	rejectWith(t, "VAR n:\nSEQ\n  n := 2\n  PAR i = [0 FOR n]\n    SKIP\n", "compile-time count")
	rejectWith(t, "PAR i = [0 FOR 0]\n  SKIP\n", "positive")
}

func TestCheckAltConstraints(t *testing.T) {
	rejectWith(t, "CHAN c:\nVAR v:\nALT\n  c ? v\n    SKIP\n  TIME ? v\n    SKIP\n", "AFTER")
	rejectWith(t, "ALT\n  SKIP\n    SKIP\n", "boolean")
	rejectWith(t, "VAR v:\nALT i = [0 FOR 3]\n  TIME ? AFTER 0\n    SKIP\n", "channel input")
}

func TestCheckDuplicateNames(t *testing.T) {
	rejectWith(t, "VAR x, x:\nSKIP\n", "already declared")
	rejectWith(t, "PROC p(VALUE a, VALUE a) =\n  SKIP\n:\np(1, 2)\n", "already declared")
}

func TestCheckShadowingAllowedAcrossScopes(t *testing.T) {
	mustCompile(t, `VAR x:
SEQ
  x := 1
  VAR x:
  x := 2
`)
}

func TestCheckBuiltinConstants(t *testing.T) {
	// The link addresses and integer bounds resolve as constants.
	mustCompile(t, `CHAN a, b:
PLACE a AT LINK0OUT:
PLACE b AT LINK3IN:
VAR x:
SEQ
  x := MOSTNEG
  x := MOSTPOS
  x := EVENT
`)
	// The 16-bit builtins differ from the 32-bit ones.
	c16, err := Compile("VAR x:\nx := MOSTPOS\n", Options{WordBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	c32, err := Compile("VAR x:\nx := MOSTPOS\n", Options{WordBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if string(c16.Image.Code) == string(c32.Image.Code) {
		t.Error("MOSTPOS should differ between word lengths")
	}
}

func TestCheckStringTableErrors(t *testing.T) {
	long := strings.Repeat("x", 300)
	rejectWith(t, "DEF s = \""+long+"\":\nSKIP\n", "longer than 255")
}

func TestCheckConstFolding(t *testing.T) {
	// DEF chains and operators fold.
	comp, err := Compile(`DEF a = 5:
DEF b = a * 3:
DEF c = (b + 1) / 2:
VAR x:
x := c
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// c = 8: code starts ldc 8; stl.
	if comp.Image.Code[0] != 0x48 {
		t.Errorf("folded constant wrong: % X", comp.Image.Code[:2])
	}
	// Division by a zero constant is not foldable.
	rejectWith(t, "DEF z = 0:\nDEF bad = 1 / z:\nSKIP\n", "constant")
}

func TestCheckNoParInProc(t *testing.T) {
	// A PROC body runs on its caller's thread, so a nested PAR would
	// corrupt the caller's workspace; it is refused at compile time,
	// wherever it hides in the body.
	rejectWith(t, "PROC p() =\n  PAR\n    SKIP\n    SKIP\n:\np()\n",
		`PAR inside PROC "p" is not supported`)
	rejectWith(t, "PROC p() =\n  SEQ\n    SKIP\n    PAR\n      SKIP\n:\np()\n",
		`PAR inside PROC "p" is not supported`)
	rejectWith(t, "PROC p(VALUE n) =\n  WHILE n > 0\n    PAR\n      SKIP\n:\np(1)\n",
		`PAR inside PROC "p" is not supported`)
	rejectWith(t, "PROC p(VALUE n) =\n  IF\n    n > 0\n      PAR\n        SKIP\n:\np(1)\n",
		`PAR inside PROC "p" is not supported`)
	// Top-level PAR calling PROCs stays legal: that is the idiomatic
	// shape — the PAR spawns, the PROCs do the work.
	mustCompile(t, "PROC p(CHAN out) =\n  out ! 1\n:\nCHAN c:\nVAR v:\nPAR\n  p(c)\n  c ? v\n")
}
