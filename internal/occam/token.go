// Package occam compiles a subset of occam 1 — the language the
// transputer architecture is defined by (paper, section 2.2) — to I1
// instructions.
//
// The subset covers the paper's programming model: the primitive
// processes (assignment, input, output), the SEQ, PAR, ALT, IF and
// WHILE constructs with replicators, PRI PAR and PRI ALT, channel and
// variable declarations (including arrays), named constants, PROCs
// with VALUE/VAR/CHAN parameters, timers (TIME ? v, TIME ? AFTER e and
// timer guards), and channel placement on link addresses (PLACE).
// Restrictions against full occam are listed in the package README
// section of the repository documentation.
package occam

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNewline
	tokIndent
	tokDedent
	tokIdent
	tokNumber
	tokChar
	tokString
	tokKeyword
	tokSymbol
)

// token is one lexical unit with source position.
type token struct {
	kind tokenKind
	text string
	val  int64 // for numbers and characters
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNewline:
		return "end of line"
	case tokIndent:
		return "indent"
	case tokDedent:
		return "dedent"
	case tokNumber:
		return fmt.Sprintf("number %d", t.val)
	case tokChar:
		return fmt.Sprintf("character %q", rune(t.val))
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords of the subset.
var keywords = map[string]bool{
	"SEQ": true, "PAR": true, "ALT": true, "IF": true, "WHILE": true,
	"PRI": true, "SKIP": true, "STOP": true, "VAR": true, "CHAN": true,
	"DEF": true, "PROC": true, "VALUE": true, "TRUE": true, "FALSE": true,
	"NOT": true, "AND": true, "OR": true, "AFTER": true, "FOR": true,
	"TIME": true, "PLACE": true, "AT": true, "ANY": true,
	"PLACED": true, "PROCESSOR": true, "BYTE": true,
}

// Err is a compile-time diagnostic with position.
type Err struct {
	Line int
	Col  int
	Msg  string
}

func (e *Err) Error() string {
	return fmt.Sprintf("occam:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) *Err {
	return &Err{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
