package occam

import (
	"os"
	"testing"
)

// FuzzLexer throws arbitrary source at the indentation-sensitive lexer
// and checks its structural guarantees: no panic, a tokEOF terminator,
// and balanced indent/dedent pairs (the parser leans on both).
func FuzzLexer(f *testing.F) {
	f.Add("SEQ\n  SKIP\n  SKIP\n")
	f.Add("VAR x:\nPAR\n  x := 1\n  SKIP\n")
	f.Add("PROC p(CHAN c, VALUE n) =\n  c ! n + 1\n:\nCHAN out:\nVAR v:\nPAR\n  p(out, 3)\n  out ? v\n")
	f.Add("WHILE TRUE\n  ALT\n    a ? x\n      SKIP\n    b ? y\n      SKIP\n")
	f.Add("DEF msg = \"hello*c*n\":\nSKIP\n")
	f.Add("SEQ i = [0 FOR 10]\n  c ! i\n")
	f.Add("-- comment only\n")
	f.Add("\t\n  \nSKIP")
	for _, ex := range []string{
		"../../examples/quickstart/squares.occ",
		"../../examples/netdemo/ring.occ",
		"../../examples/netdemo/ring0.occ",
		"../../examples/vchan/sieve-a.occ",
		"../../examples/vchan/sieve-b.occ",
		"../../examples/faults/ring-master.occ",
	} {
		if b, err := os.ReadFile(ex); err == nil {
			f.Add(string(b))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 {
			t.Fatalf("lex accepted %q with an empty token stream", src)
		}
		if toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("lex accepted %q without a tokEOF terminator", src)
		}
		depth := 0
		for _, tk := range toks {
			switch tk.kind {
			case tokIndent:
				depth++
			case tokDedent:
				depth--
			}
			if depth < 0 {
				t.Fatalf("lex of %q dedents below the left margin", src)
			}
		}
		if depth != 0 {
			t.Fatalf("lex of %q leaves %d unbalanced indents", src, depth)
		}
	})
}
