package occam

// Recursive-descent parser over the indentation-structured token
// stream.

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (process, *Err) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var e *Err
	var proc process
	func() {
		defer func() {
			if r := recover(); r != nil {
				if pe, ok := r.(*Err); ok {
					e = pe
					return
				}
				panic(r)
			}
		}()
		proc = p.parseProcess()
		p.expect(tokEOF, "")
	}()
	return proc, e
}

// ---- token plumbing -------------------------------------------------

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) back()       { p.pos-- }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	return text == "" || t.text == text
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) token {
	t := p.peek()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = (token{kind: kind}).String()
		}
		p.fail(t, "expected %s, found %s", want, t)
	}
	return p.next()
}

func (p *parser) fail(t token, format string, args ...interface{}) {
	panic(errf(t.line, t.col, format, args...))
}

func (p *parser) posOf(t token) pos { return pos{t.line, t.col} }

// ---- processes ------------------------------------------------------

// parseProcess parses one process, including any declarations that
// prefix it.
func (p *parser) parseProcess() process {
	t := p.peek()
	if t.kind == tokKeyword {
		switch t.text {
		case "VAR", "CHAN", "DEF", "PROC", "PLACE":
			return p.parseDecls()
		}
	}
	return p.parseSimpleOrConstruct()
}

// parseDecls gathers consecutive declarations and the process they
// scope over.
func (p *parser) parseDecls() process {
	start := p.peek()
	var decls []decl
loop:
	for p.peek().kind == tokKeyword {
		switch p.peek().text {
		case "VAR":
			decls = append(decls, p.parseVarChan(false))
		case "CHAN":
			decls = append(decls, p.parseVarChan(true))
		case "DEF":
			decls = append(decls, p.parseDef())
		case "PROC":
			decls = append(decls, p.parseProc())
		case "PLACE":
			decls = append(decls, p.parsePlace())
		default:
			break loop
		}
	}
	body := p.parseProcess()
	return &declProc{pos: p.posOf(start), decls: decls, body: body}
}

func (p *parser) parseVarChan(isChan bool) decl {
	kw := p.next()
	var items []declItem
	for {
		name := p.expect(tokIdent, "")
		item := declItem{pos: p.posOf(name), name: name.text}
		if p.accept(tokSymbol, "[") {
			item.size = p.parseExpr()
			p.expect(tokSymbol, "]")
		}
		items = append(items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	p.expect(tokSymbol, ":")
	p.expect(tokNewline, "")
	if isChan {
		return &chanDecl{pos: p.posOf(kw), items: items}
	}
	return &varDecl{pos: p.posOf(kw), items: items}
}

func (p *parser) parseDef() decl {
	kw := p.next()
	name := p.expect(tokIdent, "")
	p.expect(tokSymbol, "=")
	if p.at(tokString, "") {
		s := p.next().text
		p.expect(tokSymbol, ":")
		p.expect(tokNewline, "")
		return &defDecl{pos: p.posOf(kw), name: name.text, strVal: &s}
	}
	value := p.parseExpr()
	p.expect(tokSymbol, ":")
	p.expect(tokNewline, "")
	return &defDecl{pos: p.posOf(kw), name: name.text, value: value}
}

func (p *parser) parsePlace() decl {
	kw := p.next()
	name := p.expect(tokIdent, "")
	p.expect(tokKeyword, "AT")
	addr := p.parseExpr()
	p.expect(tokSymbol, ":")
	p.expect(tokNewline, "")
	return &placeDecl{pos: p.posOf(kw), name: name.text, addr: addr}
}

func (p *parser) parseProc() decl {
	kw := p.next()
	name := p.expect(tokIdent, "")
	var params []param
	p.expect(tokSymbol, "(")
	if !p.at(tokSymbol, ")") {
		kind := paramValue
		for {
			switch {
			case p.accept(tokKeyword, "VALUE"):
				kind = paramValue
			case p.accept(tokKeyword, "VAR"):
				kind = paramVar
			case p.accept(tokKeyword, "CHAN"):
				kind = paramChan
			}
			id := p.expect(tokIdent, "")
			pm := param{pos: p.posOf(id), kind: kind, name: id.text}
			if p.accept(tokSymbol, "[") {
				p.expect(tokSymbol, "]")
				pm.array = true
			}
			params = append(params, pm)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	p.expect(tokSymbol, ")")
	p.expect(tokSymbol, "=")
	p.expect(tokNewline, "")
	p.expect(tokIndent, "")
	body := p.parseProcess()
	p.expect(tokDedent, "")
	p.expect(tokSymbol, ":")
	p.expect(tokNewline, "")
	return &procDecl{pos: p.posOf(kw), name: name.text, params: params, body: body}
}

// parseSimpleOrConstruct parses everything that is not a declaration.
func (p *parser) parseSimpleOrConstruct() process {
	t := p.peek()
	switch {
	case t.kind == tokKeyword && t.text == "SEQ":
		p.next()
		rep := p.maybeReplicator()
		procs := p.parseBody(rep != nil)
		return &seqProc{pos: p.posOf(t), rep: rep, procs: procs}
	case t.kind == tokKeyword && t.text == "PAR":
		p.next()
		rep := p.maybeReplicator()
		procs := p.parseBody(rep != nil)
		return &parProc{pos: p.posOf(t), rep: rep, procs: procs}
	case t.kind == tokKeyword && t.text == "PLACED":
		p.next()
		p.expect(tokKeyword, "PAR")
		return p.parsePlacedPar(t)
	case t.kind == tokKeyword && t.text == "PRI":
		p.next()
		switch {
		case p.accept(tokKeyword, "PAR"):
			rep := p.maybeReplicator()
			procs := p.parseBody(rep != nil)
			return &parProc{pos: p.posOf(t), pri: true, rep: rep, procs: procs}
		case p.accept(tokKeyword, "ALT"):
			return p.parseAltBody(t, true)
		}
		p.fail(p.peek(), "PRI must be followed by PAR or ALT")
	case t.kind == tokKeyword && t.text == "ALT":
		p.next()
		if rep := p.maybeReplicator(); rep != nil {
			return p.parseReplicatedAlt(t, rep)
		}
		return p.parseAltBody(t, false)
	case t.kind == tokKeyword && t.text == "IF":
		p.next()
		return p.parseIfBody(t)
	case t.kind == tokKeyword && t.text == "WHILE":
		p.next()
		cond := p.parseExpr()
		p.expect(tokNewline, "")
		p.expect(tokIndent, "")
		body := p.parseProcess()
		p.expect(tokDedent, "")
		return &whileProc{pos: p.posOf(t), cond: cond, body: body}
	case t.kind == tokKeyword && t.text == "SKIP":
		p.next()
		p.expect(tokNewline, "")
		return &skipProc{pos: p.posOf(t)}
	case t.kind == tokKeyword && t.text == "STOP":
		p.next()
		p.expect(tokNewline, "")
		return &stopProc{pos: p.posOf(t)}
	case t.kind == tokKeyword && t.text == "TIME":
		p.next()
		proc := p.parseTimeInput(t)
		p.expect(tokNewline, "")
		return proc
	case t.kind == tokIdent:
		proc := p.parseSimple()
		p.expect(tokNewline, "")
		return proc
	}
	p.fail(t, "expected a process, found %s", t)
	return nil
}

// parsePlacedPar parses the configuration construct: each component is
// introduced by a PROCESSOR line.
func (p *parser) parsePlacedPar(t token) process {
	p.expect(tokNewline, "")
	p.expect(tokIndent, "")
	pp := &placedPar{pos: p.posOf(t)}
	for !p.at(tokDedent, "") {
		start := p.expect(tokKeyword, "PROCESSOR")
		procNum := p.parseExpr()
		p.expect(tokNewline, "")
		p.expect(tokIndent, "")
		body := p.parseProcess()
		p.expect(tokDedent, "")
		pp.components = append(pp.components, placedComponent{
			pos: p.posOf(start), processor: procNum, body: body,
		})
	}
	p.expect(tokDedent, "")
	return pp
}

// parseBody parses NEWLINE INDENT components DEDENT.  A replicated
// construct has exactly one component.
func (p *parser) parseBody(replicated bool) []process {
	p.expect(tokNewline, "")
	p.expect(tokIndent, "")
	var procs []process
	for !p.at(tokDedent, "") {
		procs = append(procs, p.parseProcess())
		if replicated {
			break
		}
	}
	p.expect(tokDedent, "")
	return procs
}

func (p *parser) maybeReplicator() *replicator {
	if !p.at(tokIdent, "") {
		return nil
	}
	name := p.next()
	p.expect(tokSymbol, "=")
	p.expect(tokSymbol, "[")
	base := p.parseExpr()
	p.expect(tokKeyword, "FOR")
	count := p.parseExpr()
	p.expect(tokSymbol, "]")
	return &replicator{pos: p.posOf(name), name: name.text, base: base, count: count}
}

// parseReplicatedAlt parses "ALT i = [base FOR count]" with a single
// guarded branch.
func (p *parser) parseReplicatedAlt(t token, rep *replicator) process {
	p.expect(tokNewline, "")
	p.expect(tokIndent, "")
	br := p.parseAltBranch()
	p.expect(tokDedent, "")
	return &altProc{pos: p.posOf(t), rep: rep, branches: []altBranch{br}}
}

func (p *parser) parseAltBody(t token, pri bool) process {
	p.expect(tokNewline, "")
	p.expect(tokIndent, "")
	var branches []altBranch
	for !p.at(tokDedent, "") {
		branches = append(branches, p.parseAltBranch())
	}
	p.expect(tokDedent, "")
	return &altProc{pos: p.posOf(t), pri: pri, branches: branches}
}

// parseAltBranch parses one guard line and its indented body.
func (p *parser) parseAltBranch() altBranch {
	start := p.peek()
	br := altBranch{pos: p.posOf(start)}

	// TIME ? AFTER e  or  SKIP  or  [expr &] input.
	if p.accept(tokKeyword, "TIME") {
		br.input = p.parseTimeInput(start)
	} else if p.accept(tokKeyword, "SKIP") {
		br.input = &skipProc{pos: p.posOf(start)}
	} else {
		e := p.parseExpr()
		if p.accept(tokSymbol, "&") {
			br.cond = e
			switch {
			case p.accept(tokKeyword, "TIME"):
				br.input = p.parseTimeInput(start)
			case p.accept(tokKeyword, "SKIP"):
				br.input = &skipProc{pos: p.posOf(start)}
			default:
				br.input = p.parseInputGuard()
			}
		} else {
			// The expression must have been the channel of an input.
			br.input = p.inputFromExpr(e)
		}
	}
	p.expect(tokNewline, "")
	p.expect(tokIndent, "")
	br.body = p.parseProcess()
	p.expect(tokDedent, "")
	return br
}

// parseInputGuard parses "chan ? targets" from the start.
func (p *parser) parseInputGuard() process {
	e := p.parseExpr()
	return p.inputFromExpr(e)
}

// inputFromExpr converts an already-parsed channel expression followed
// by "? targets" into an input process.
func (p *parser) inputFromExpr(e expr) process {
	ch, chIdx, ok := channelOf(e)
	if !ok {
		p.fail(p.peek(), "expected a channel before ?")
	}
	p.expect(tokSymbol, "?")
	in := &inputProc{pos: ch.pos, ch: ch, chIdx: chIdx}
	in.targets = p.parseInputTargets()
	return in
}

func channelOf(e expr) (*nameExpr, expr, bool) {
	switch v := e.(type) {
	case *nameExpr:
		return v, nil, true
	case *indexExpr:
		return v.base, v.index, true
	}
	return nil, nil, false
}

func (p *parser) parseInputTargets() []inputTarget {
	var targets []inputTarget
	for {
		if p.accept(tokKeyword, "ANY") {
			targets = append(targets, inputTarget{})
		} else {
			name := p.expect(tokIdent, "")
			tgt := inputTarget{name: &nameExpr{pos: p.posOf(name), name: name.text}}
			if p.accept(tokSymbol, "[") {
				tgt.index = p.parseExpr()
				p.expect(tokSymbol, "]")
			}
			targets = append(targets, tgt)
		}
		if !p.accept(tokSymbol, ";") {
			break
		}
	}
	return targets
}

// parseTimeInput parses "? v" or "? AFTER e" after the TIME keyword.
func (p *parser) parseTimeInput(t token) process {
	p.expect(tokSymbol, "?")
	if p.accept(tokKeyword, "AFTER") {
		return &timeInputProc{pos: p.posOf(t), after: p.parseExpr()}
	}
	name := p.expect(tokIdent, "")
	ti := &timeInputProc{pos: p.posOf(t), target: &nameExpr{pos: p.posOf(name), name: name.text}}
	if p.accept(tokSymbol, "[") {
		ti.index = p.parseExpr()
		p.expect(tokSymbol, "]")
	}
	return ti
}

func (p *parser) parseIfBody(t token) process {
	p.expect(tokNewline, "")
	p.expect(tokIndent, "")
	var branches []ifBranch
	for !p.at(tokDedent, "") {
		start := p.peek()
		cond := p.parseExpr()
		p.expect(tokNewline, "")
		p.expect(tokIndent, "")
		body := p.parseProcess()
		p.expect(tokDedent, "")
		branches = append(branches, ifBranch{pos: p.posOf(start), cond: cond, body: body})
	}
	p.expect(tokDedent, "")
	return &ifProc{pos: p.posOf(t), branches: branches}
}

// parseSimple parses assignment, input, output or a PROC call, all of
// which begin with an identifier.
func (p *parser) parseSimple() process {
	name := p.next()
	base := &nameExpr{pos: p.posOf(name), name: name.text}

	if p.accept(tokSymbol, "(") {
		call := &callProc{pos: p.posOf(name), name: name.text}
		if !p.at(tokSymbol, ")") {
			for {
				call.args = append(call.args, p.parseExpr())
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
		}
		p.expect(tokSymbol, ")")
		return call
	}

	var index expr
	byteSel := false
	if p.accept(tokSymbol, "[") {
		byteSel = p.accept(tokKeyword, "BYTE")
		index = p.parseExpr()
		p.expect(tokSymbol, "]")
	}

	t := p.peek()
	switch {
	case p.accept(tokSymbol, ":="):
		return &assignProc{pos: p.posOf(name), target: base, index: index, byteSel: byteSel, value: p.parseExpr()}
	case p.accept(tokSymbol, "!"):
		if byteSel {
			p.fail(t, "BYTE subscription cannot select a channel")
		}
		out := &outputProc{pos: p.posOf(name), ch: base, chIdx: index}
		for {
			out.values = append(out.values, p.parseExpr())
			if !p.accept(tokSymbol, ";") {
				break
			}
		}
		return out
	case p.accept(tokSymbol, "?"):
		if byteSel {
			p.fail(t, "BYTE subscription cannot select a channel")
		}
		in := &inputProc{pos: p.posOf(name), ch: base, chIdx: index}
		in.targets = p.parseInputTargets()
		return in
	}
	p.fail(t, "expected :=, ! or ? after %q", name.text)
	return nil
}

// ---- expressions ----------------------------------------------------

var binaryOps = map[string]bool{
	"+": true, "-": true, "*": true, "/": true, "\\": true,
	"/\\": true, "\\/": true, "><": true, "<<": true, ">>": true,
	"=": true, "<>": true, "<": true, ">": true, "<=": true, ">=": true,
	"AND": true, "OR": true, "AFTER": true,
}

// parseExpr parses an operand sequence.  Occam operators have no
// relative precedence: mixing different operators requires
// parentheses, which the parser enforces.
func (p *parser) parseExpr() expr {
	left := p.parseOperand()
	firstOp := ""
	for {
		t := p.peek()
		op := ""
		if t.kind == tokSymbol && binaryOps[t.text] {
			op = t.text
		}
		if t.kind == tokKeyword && binaryOps[t.text] {
			op = t.text
		}
		if op == "" {
			return left
		}
		if firstOp == "" {
			firstOp = op
		} else if op != firstOp {
			p.fail(t, "occam operators have no precedence: parenthesize when mixing %q and %q", firstOp, op)
		}
		p.next()
		right := p.parseOperand()
		left = &binaryExpr{pos: p.posOf(t), op: op, left: left, right: right}
	}
}

func (p *parser) parseOperand() expr {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &numberExpr{pos: p.posOf(t), val: t.val}
	case t.kind == tokChar:
		p.next()
		return &numberExpr{pos: p.posOf(t), val: t.val}
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return &numberExpr{pos: p.posOf(t), val: 1}
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return &numberExpr{pos: p.posOf(t), val: 0}
	case t.kind == tokKeyword && t.text == "NOT":
		p.next()
		return &unaryExpr{pos: p.posOf(t), op: "NOT", arg: p.parseOperand()}
	case t.kind == tokSymbol && t.text == "-":
		p.next()
		return &unaryExpr{pos: p.posOf(t), op: "-", arg: p.parseOperand()}
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e := p.parseExpr()
		p.expect(tokSymbol, ")")
		return e
	case t.kind == tokIdent:
		p.next()
		base := &nameExpr{pos: p.posOf(t), name: t.text}
		if p.accept(tokSymbol, "[") {
			byteSel := p.accept(tokKeyword, "BYTE")
			idx := p.parseExpr()
			p.expect(tokSymbol, "]")
			return &indexExpr{pos: p.posOf(t), base: base, index: idx, byteSel: byteSel}
		}
		return base
	}
	p.fail(t, "expected an expression, found %s", t)
	return nil
}
