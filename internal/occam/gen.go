package occam

import (
	"fmt"

	"transputer/internal/asm"
	"transputer/internal/isa"
)

// Code generation.  Each frame's code runs with the workspace pointer
// equal to the frame base; frames are entered only via PAR component
// startup (ajw / start process) and PROC calls.
//
// Calling convention: up to three arguments travel on the evaluation
// stack and are saved by the call instruction into the new frame
// (paper, 3.2.3: the stack holds "parameters of procedure calls");
// arguments beyond three are stored by the caller below its own
// workspace where, after call and the callee's workspace adjustment,
// they appear at the top of the callee's local area.  The callee runs
// with its workspace adjusted down by its frame size and returns with
// ret after restoring the pointer.

// accessPath says how the current code reaches a frame's base.
type accessPath struct {
	indirect bool
	linkSlot int // static slot in the current frame holding a frame address
	delta    int // word offset from (current Wptr | linked frame base)
}

type gen struct {
	c         *checker
	b         *asm.Builder
	wordBytes int

	cur      *frame
	paths    map[*frame]accessPath
	tempNext int

	labelN int
	queue  []*procInfo

	// String tables referenced by the program, emitted after the code.
	tableLabels map[*symbol]string
	tableOrder  []*symbol

	err *Err
}

// tableLabel registers a string table for emission and returns its
// label.
func (g *gen) tableLabel(sym *symbol) string {
	if g.tableLabels == nil {
		g.tableLabels = make(map[*symbol]string)
	}
	if l, ok := g.tableLabels[sym]; ok {
		return l
	}
	l := g.label("table." + sym.name)
	g.tableLabels[sym] = l
	g.tableOrder = append(g.tableOrder, sym)
	return l
}

func (g *gen) fail(p pos, format string, args ...interface{}) {
	panic(errf(p.line, p.col, format, args...))
}

func (g *gen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s.%d", prefix, g.labelN)
}

// ---- temporaries ----------------------------------------------------

func (g *gen) allocTemp(p pos) int {
	off := g.cur.nLocal + g.tempNext
	g.tempNext++
	if g.tempNext > g.cur.maxTemp {
		g.fail(p, "internal: spill temporaries exceed sizing (%d > %d)", g.tempNext, g.cur.maxTemp)
	}
	return off
}

func (g *gen) freeTemp() { g.tempNext-- }

// ---- frame entry ----------------------------------------------------

// enterStatic switches generation into a frame at a static delta (in
// words) from the current frame base; restore reverses it.
func (g *gen) enterStatic(f *frame, delta int) (restore func()) {
	oldCur, oldPaths, oldTemp := g.cur, g.paths, g.tempNext
	np := make(map[*frame]accessPath, len(oldPaths)+1)
	for fr, p := range oldPaths {
		if p.indirect {
			np[fr] = accessPath{indirect: true, linkSlot: p.linkSlot - delta, delta: p.delta}
		} else {
			np[fr] = accessPath{delta: p.delta - delta}
		}
	}
	np[f] = accessPath{}
	g.cur, g.paths, g.tempNext = f, np, 0
	return func() { g.cur, g.paths, g.tempNext = oldCur, oldPaths, oldTemp }
}

// enterLinked switches into a replicated-PAR component frame whose
// linkSlot holds the enclosing frame's base address.
func (g *gen) enterLinked(f *frame, linkSlot int) (restore func()) {
	oldCur, oldPaths, oldTemp := g.cur, g.paths, g.tempNext
	np := make(map[*frame]accessPath, len(oldPaths)+1)
	for fr, p := range oldPaths {
		if p.indirect {
			// Reaching this frame would need double indirection.
			continue
		}
		np[fr] = accessPath{indirect: true, linkSlot: linkSlot, delta: p.delta}
	}
	np[f] = accessPath{}
	g.cur, g.paths, g.tempNext = f, np, 0
	return func() { g.cur, g.paths, g.tempNext = oldCur, oldPaths, oldTemp }
}

// enterProc switches into a PROC frame (no outer variable access).
func (g *gen) enterProc(f *frame) (restore func()) {
	oldCur, oldPaths, oldTemp := g.cur, g.paths, g.tempNext
	g.cur, g.paths, g.tempNext = f, map[*frame]accessPath{f: {}}, 0
	return func() { g.cur, g.paths, g.tempNext = oldCur, oldPaths, oldTemp }
}

func (g *gen) pathOf(sym *symbol, p pos) accessPath {
	path, ok := g.paths[sym.frame]
	if !ok {
		g.fail(p, "%q is not reachable here (too deeply nested across replicated PAR)", sym.name)
	}
	return path
}

// ---- symbol access --------------------------------------------------

// paramOffset returns the workspace slot of a parameter within its
// PROC frame: the first three arguments ride the evaluation stack and
// are saved by call into the frame words above the adjusted workspace;
// later arguments sit at the top of the local area.
func paramOffset(sym *symbol) int {
	f := sym.frame
	k := len(sym.procParams)
	if k > 3 {
		k = 3
	}
	j := sym.paramIndex
	if j < k {
		return f.above + (k - j)
	}
	return f.above - 1 - (j - 3)
}

// loadVar pushes a variable's value.
func (g *gen) loadVar(sym *symbol, p pos) {
	switch sym.kind {
	case symConst:
		g.b.Fn(isa.FnLdc, sym.value)
	case symVar, symRep:
		path := g.pathOf(sym, p)
		if path.indirect {
			g.b.Fn(isa.FnLdl, int64(path.linkSlot))
			g.b.Fn(isa.FnLdnl, int64(path.delta+sym.offset))
		} else {
			g.b.Fn(isa.FnLdl, int64(path.delta+sym.offset))
		}
	case symParam:
		off := int64(paramOffset(sym))
		g.b.Fn(isa.FnLdl, off)
		if sym.paramKind == paramVar && !sym.array {
			g.b.Fn(isa.FnLdnl, 0)
		}
	case symTable:
		g.fail(p, "string table %q needs a subscript", sym.name)
	default:
		g.fail(p, "%q cannot be loaded", sym.name)
	}
}

// storeVar pops the stack into a scalar variable.
func (g *gen) storeVar(sym *symbol, p pos) {
	switch sym.kind {
	case symVar, symRep:
		path := g.pathOf(sym, p)
		if path.indirect {
			g.b.Fn(isa.FnLdl, int64(path.linkSlot))
			g.b.Fn(isa.FnStnl, int64(path.delta+sym.offset))
		} else {
			g.b.Fn(isa.FnStl, int64(path.delta+sym.offset))
		}
	case symParam:
		g.b.Fn(isa.FnLdl, int64(paramOffset(sym)))
		g.b.Fn(isa.FnStnl, 0)
	default:
		g.fail(p, "%q cannot be assigned", sym.name)
	}
}

// loadAddr pushes the address of a scalar variable or channel word.
func (g *gen) loadAddr(sym *symbol, p pos) {
	switch sym.kind {
	case symVar, symChan, symRep:
		path := g.pathOf(sym, p)
		if path.indirect {
			g.b.Fn(isa.FnLdl, int64(path.linkSlot))
			g.b.Fn(isa.FnLdnlp, int64(path.delta+sym.offset))
		} else {
			g.b.Fn(isa.FnLdlp, int64(path.delta+sym.offset))
		}
	case symParam:
		g.b.Fn(isa.FnLdl, int64(paramOffset(sym)))
	default:
		g.fail(p, "%q has no address", sym.name)
	}
}

// loadBase pushes the base address of an array (variable, channel or
// string table).
func (g *gen) loadBase(sym *symbol, p pos) {
	switch sym.kind {
	case symParam:
		g.b.Fn(isa.FnLdl, int64(paramOffset(sym)))
	case symTable:
		g.b.Ldpi(g.tableLabel(sym))
	default:
		g.loadAddr(sym, p)
	}
}

// chanAddr pushes the address of a channel word.
func (g *gen) chanAddr(ch *nameExpr, idx expr) {
	sym := ch.sym
	if sym.placed {
		g.b.Fn(isa.FnLdc, sym.placeAddr)
		return
	}
	if idx != nil {
		g.evalExpr(idx)
		g.loadBase(sym, ch.pos)
		g.b.Op(isa.OpWsub)
		return
	}
	if sym.array {
		g.fail(ch.pos, "channel array %q needs a subscript", ch.name)
	}
	g.loadAddr(sym, ch.pos)
}

// ---- expressions ----------------------------------------------------

func (g *gen) evalExpr(e expr) {
	if v, ok := foldConst(e); ok {
		g.b.Fn(isa.FnLdc, v)
		return
	}
	switch v := e.(type) {
	case *numberExpr:
		g.b.Fn(isa.FnLdc, v.val)
	case *nameExpr:
		g.loadVar(v.sym, v.pos)
	case *indexExpr:
		g.evalExpr(v.index)
		g.loadBase(v.base.sym, v.pos)
		if v.byteSel {
			// a[BYTE e]: byte subscript and load byte.
			g.b.Op(isa.OpBsub)
			g.b.Op(isa.OpLb)
			return
		}
		g.b.Op(isa.OpWsub)
		g.b.Fn(isa.FnLdnl, 0)
	case *unaryExpr:
		switch v.op {
		case "-":
			g.b.Fn(isa.FnLdc, 0)
			g.evalExpr(v.arg)
			g.b.Op(isa.OpSub)
		case "NOT":
			g.evalExpr(v.arg)
			g.b.Fn(isa.FnEqc, 0)
		default:
			g.fail(v.pos, "unknown unary operator %q", v.op)
		}
	case *binaryExpr:
		ln, _ := exprShape(v.left)
		rn, _ := exprShape(v.right)
		if maxInt(ln, rn+1) > 3 {
			// Spill: right operand into a temporary.
			g.evalExpr(v.right)
			t := g.allocTemp(v.pos)
			g.b.Fn(isa.FnStl, int64(t))
			g.evalExpr(v.left)
			g.b.Fn(isa.FnLdl, int64(t))
			g.freeTemp()
		} else {
			g.evalExpr(v.left)
			g.evalExpr(v.right)
		}
		g.binaryOp(v)
	default:
		g.fail(posOfExpr(e), "unhandled expression")
	}
}

// binaryOp emits the operation for a binary expression whose operands
// are on the stack (left in B, right in A).
func (g *gen) binaryOp(v *binaryExpr) {
	switch v.op {
	case "+":
		g.b.Op(isa.OpAdd)
	case "-":
		g.b.Op(isa.OpSub)
	case "*":
		g.b.Op(isa.OpMul)
	case "/":
		g.b.Op(isa.OpDiv)
	case "\\":
		g.b.Op(isa.OpRem)
	case "/\\":
		g.b.Op(isa.OpAnd)
	case "\\/":
		g.b.Op(isa.OpOr)
	case "><":
		g.b.Op(isa.OpXor)
	case "<<":
		g.b.Op(isa.OpShl)
	case ">>":
		g.b.Op(isa.OpShr)
	case "AND":
		g.b.Op(isa.OpAnd)
	case "OR":
		g.b.Op(isa.OpOr)
	case "=":
		g.b.Op(isa.OpDiff)
		g.b.Fn(isa.FnEqc, 0)
	case "<>":
		g.b.Op(isa.OpDiff)
		g.b.Fn(isa.FnEqc, 0)
		g.b.Fn(isa.FnEqc, 0)
	case ">":
		g.b.Op(isa.OpGt)
	case "<":
		g.b.Op(isa.OpRev)
		g.b.Op(isa.OpGt)
	case ">=":
		g.b.Op(isa.OpRev)
		g.b.Op(isa.OpGt)
		g.b.Fn(isa.FnEqc, 0)
	case "<=":
		g.b.Op(isa.OpGt)
		g.b.Fn(isa.FnEqc, 0)
	case "AFTER":
		// l AFTER r  ==  (l - r) > 0, a modular comparison.
		g.b.Op(isa.OpDiff)
		g.b.Fn(isa.FnLdc, 0)
		g.b.Op(isa.OpGt)
	default:
		g.fail(v.pos, "unknown operator %q", v.op)
	}
}

// ---- processes ------------------------------------------------------

func (g *gen) process(p process) {
	// Source map for the profiler: code generated for this process node
	// derives from its source line.  Constructs that only arrange their
	// children (SEQ, declarations) still get a mark, which the next
	// child's own mark immediately supersedes at the same offset.
	if line := p.procPos().line; line > 0 {
		g.b.Mark(line)
	}
	switch v := p.(type) {
	case *skipProc:
		// SKIP has no effect and terminates.
	case *stopProc:
		// STOP never proceeds: the process stops and is never
		// rescheduled.
		g.b.Op(isa.OpStopp)
	case *declProc:
		for _, d := range v.decls {
			g.declaration(d)
		}
		g.process(v.body)
	case *assignProc:
		g.assign(v)
	case *outputProc:
		g.output(v)
	case *inputProc:
		g.input(v)
	case *timeInputProc:
		g.timeInput(v)
	case *seqProc:
		g.seq(v)
	case *whileProc:
		start := g.label("while")
		end := g.label("wend")
		g.b.MustLabel(start)
		g.evalExpr(v.cond)
		g.b.Branch(isa.FnCj, end)
		g.process(v.body)
		g.b.Branch(isa.FnJ, start)
		g.b.MustLabel(end)
	case *ifProc:
		g.ifProcess(v)
	case *parProc:
		g.par(v)
	case *altProc:
		g.alt(v)
	case *callProc:
		g.call(v)
	default:
		g.fail(p.procPos(), "unhandled process")
	}
}

func (g *gen) declaration(d decl) {
	switch v := d.(type) {
	case *chanDecl:
		// Channel words are initialised to NotProcess at declaration.
		for _, item := range v.items {
			if item.sym.placed {
				continue
			}
			n := 1
			if item.sym.array {
				n = item.sym.size
			}
			for i := 0; i < n; i++ {
				g.b.Op(isa.OpMint)
				g.storeSlot(item.sym, i, item.pos)
			}
		}
	case *procDecl:
		if !v.sym.proc.queued {
			v.sym.proc.queued = true
			g.queue = append(g.queue, v.sym.proc)
		}
	case *varDecl, *defDecl, *placeDecl:
		// No code.
	}
}

// storeSlot stores the stack top into slot offset+i of a frame symbol.
func (g *gen) storeSlot(sym *symbol, i int, p pos) {
	path := g.pathOf(sym, p)
	if path.indirect {
		g.b.Fn(isa.FnLdl, int64(path.linkSlot))
		g.b.Fn(isa.FnStnl, int64(path.delta+sym.offset+i))
	} else {
		g.b.Fn(isa.FnStl, int64(path.delta+sym.offset+i))
	}
}

func (g *gen) assign(v *assignProc) {
	g.evalExpr(v.value)
	if v.index != nil {
		g.evalExpr(v.index)
		g.loadBase(v.target.sym, v.pos)
		if v.byteSel {
			// a[BYTE e] := v: compute the byte address, then store
			// byte (A = address, B = value).
			g.b.Op(isa.OpBsub)
			g.b.Op(isa.OpSb)
			return
		}
		g.b.Op(isa.OpWsub)
		g.b.Fn(isa.FnStnl, 0)
		return
	}
	g.storeVar(v.target.sym, v.pos)
}

func (g *gen) output(v *outputProc) {
	for _, e := range v.values {
		if arr, ok := wholeArray(e); ok {
			// Send the array as one message.
			g.loadBase(arr.sym, arr.pos)
			g.chanAddr(v.ch, v.chIdx)
			g.b.Fn(isa.FnLdc, int64(arr.sym.size*g.wordBytes))
			g.b.Op(isa.OpOut)
			continue
		}
		g.evalExpr(e)
		g.chanAddr(v.ch, v.chIdx)
		g.b.Op(isa.OpOutword)
	}
}

// wholeArray reports whether an expression names an entire array.
func wholeArray(e expr) (*nameExpr, bool) {
	n, ok := e.(*nameExpr)
	if !ok || n.sym == nil || !n.sym.array {
		return nil, false
	}
	return n, true
}

func (g *gen) input(v *inputProc) {
	for _, tgt := range v.targets {
		switch {
		case tgt.name == nil:
			// c ? ANY: read one word into the scratch slot.
			g.b.Fn(isa.FnLdlp, 0)
			g.chanAddr(v.ch, v.chIdx)
			g.b.Fn(isa.FnLdc, int64(g.wordBytes))
			g.b.Op(isa.OpIn)
		case tgt.index == nil && tgt.name.sym.array:
			// Whole-array receive.
			g.loadBase(tgt.name.sym, tgt.name.pos)
			g.chanAddr(v.ch, v.chIdx)
			g.b.Fn(isa.FnLdc, int64(tgt.name.sym.size*g.wordBytes))
			g.b.Op(isa.OpIn)
		case tgt.index != nil:
			g.evalExpr(tgt.index)
			g.loadBase(tgt.name.sym, tgt.name.pos)
			g.b.Op(isa.OpWsub)
			g.chanAddr(v.ch, v.chIdx)
			g.b.Fn(isa.FnLdc, int64(g.wordBytes))
			g.b.Op(isa.OpIn)
		default:
			g.loadAddr(tgt.name.sym, tgt.name.pos)
			g.chanAddr(v.ch, v.chIdx)
			g.b.Fn(isa.FnLdc, int64(g.wordBytes))
			g.b.Op(isa.OpIn)
		}
	}
}

func (g *gen) timeInput(v *timeInputProc) {
	if v.after != nil {
		// TIME ? AFTER e: a delayed input (paper, 2.2.2).
		g.evalExpr(v.after)
		g.b.Op(isa.OpTin)
		return
	}
	g.b.Op(isa.OpLdtimer)
	if v.index != nil {
		g.evalExpr(v.index)
		g.loadBase(v.target.sym, v.pos)
		g.b.Op(isa.OpWsub)
		g.b.Fn(isa.FnStnl, 0)
		return
	}
	g.storeVar(v.target.sym, v.pos)
}

func (g *gen) seq(v *seqProc) {
	if v.rep == nil {
		for _, sub := range v.procs {
			g.process(sub)
		}
		return
	}
	// Replicated SEQ: a loop over the two-word control block (index,
	// count) using the loop end instruction.
	rep := v.rep.sym
	path := g.pathOf(rep, v.rep.pos)
	if path.indirect {
		g.fail(v.rep.pos, "internal: replicator allocated in unreachable frame")
	}
	idx := int64(path.delta + rep.offset)
	g.evalExpr(v.rep.base)
	g.b.Fn(isa.FnStl, idx)
	g.evalExpr(v.rep.count)
	g.b.Fn(isa.FnStl, idx+1)
	start := g.label("rep")
	after := g.label("repend")
	g.b.Fn(isa.FnLdl, idx+1)
	g.b.Branch(isa.FnCj, after)
	g.b.MustLabel(start)
	g.process(v.procs[0])
	g.b.Fn(isa.FnLdlp, idx)
	g.b.Diff(isa.FnLdc, after, start)
	g.b.Op(isa.OpLend)
	g.b.MustLabel(after)
}

func (g *gen) ifProcess(v *ifProc) {
	end := g.label("fi")
	for _, br := range v.branches {
		next := g.label("ifnext")
		g.evalExpr(br.cond)
		g.b.Branch(isa.FnCj, next)
		g.process(br.body)
		g.b.Branch(isa.FnJ, end)
		g.b.MustLabel(next)
	}
	// No condition true: IF behaves like STOP.
	g.b.Op(isa.OpStopp)
	g.b.MustLabel(end)
}

// ---- PAR ------------------------------------------------------------

func (g *gen) par(v *parProc) {
	if v.rep != nil {
		g.replicatedPar(v)
		return
	}
	info := g.c.parsInfo[v]
	n := len(v.procs)
	if n == 0 {
		return
	}
	if n == 1 && !v.pri {
		// Degenerate PAR: run the single component in its frame.
		restore := g.enterStatic(info.frames[0], info.deltas[0])
		delta := info.deltas[0]
		g.b.Fn(isa.FnAjw, int64(delta))
		g.process(v.procs[0])
		g.b.Fn(isa.FnAjw, int64(-delta))
		restore()
		return
	}

	cont := g.label("parcont")
	compLabels := make([]string, n)
	for i := range compLabels {
		compLabels[i] = g.label("parcomp")
	}

	// Join block: continuation address at slot 0, count at slot 1.
	g.b.Ldpi(cont)
	g.b.Fn(isa.FnStl, 0)
	g.b.Fn(isa.FnLdc, int64(n))
	g.b.Fn(isa.FnStl, 1)

	// The component the current process becomes: the first for plain
	// PAR; for PRI PAR the first component runs at high priority and
	// is started with run process, the current process becoming the
	// second component.
	inline := 0
	if v.pri {
		inline = 1
		g.startHigh(compLabels[0], info.deltas[0])
	}
	for i := 0; i < n; i++ {
		if i == inline {
			continue
		}
		if v.pri && i == 0 {
			continue // already started
		}
		afterStartp := g.label("parsp")
		g.b.Diff(isa.FnLdc, compLabels[i], afterStartp)
		g.b.Fn(isa.FnLdlp, int64(info.deltas[i]))
		g.b.Op(isa.OpStartp)
		g.b.MustLabel(afterStartp)
	}

	// Become the inline component.
	g.b.Fn(isa.FnAjw, int64(info.deltas[inline]))
	restore := g.enterStatic(info.frames[inline], info.deltas[inline])
	g.process(v.procs[inline])
	g.b.Fn(isa.FnLdlp, int64(-info.deltas[inline]))
	g.b.Op(isa.OpEndp)
	restore()

	// Out-of-line components.
	for i := 0; i < n; i++ {
		if i == inline {
			continue
		}
		g.b.MustLabel(compLabels[i])
		restore := g.enterStatic(info.frames[i], info.deltas[i])
		g.process(v.procs[i])
		g.b.Fn(isa.FnLdlp, int64(-info.deltas[i]))
		g.b.Op(isa.OpEndp)
		restore()
	}

	g.b.MustLabel(cont)
}

// startHigh starts a component at priority 0 (PRI PAR: "a parallel
// construct may be configured to prioritize its components").
func (g *gen) startHigh(label string, delta int) {
	g.b.Ldpi(label)
	g.b.Fn(isa.FnLdlp, int64(delta))
	g.b.Fn(isa.FnStnl, -1) // new process's saved Iptr
	g.b.Fn(isa.FnLdlp, int64(delta))
	g.b.Op(isa.OpRunp) // even workspace descriptor: priority 0
}

func (g *gen) replicatedPar(v *parProc) {
	info := g.c.parsInfo[v]
	comp := info.frames[0]
	n := info.count
	rep := v.rep.sym

	cont := g.label("parcont")
	body := g.label("parbody")

	g.b.Ldpi(cont)
	g.b.Fn(isa.FnStl, 0)
	g.b.Fn(isa.FnLdc, int64(n+1))
	g.b.Fn(isa.FnStl, 1)

	for k := 0; k < n; k++ {
		delta := info.deltas[0] - k*info.stride
		// Copy k's replicator value and static link.
		g.evalExpr(v.rep.base)
		if k > 0 {
			g.b.Fn(isa.FnAdc, int64(k))
		}
		g.b.Fn(isa.FnStl, int64(delta+rep.offset))
		g.b.Fn(isa.FnLdlp, 0)
		g.b.Fn(isa.FnStl, int64(delta+info.linkSlot))
		afterStartp := g.label("parsp")
		g.b.Diff(isa.FnLdc, body, afterStartp)
		g.b.Fn(isa.FnLdlp, int64(delta))
		g.b.Op(isa.OpStartp)
		g.b.MustLabel(afterStartp)
	}
	// The current process contributes the (n+1)th completion.
	g.b.Fn(isa.FnLdlp, 0)
	g.b.Op(isa.OpEndp)

	// Shared body: all copies execute the same code, reaching outer
	// frames through the static link.
	g.b.MustLabel(body)
	restore := g.enterLinked(comp, info.linkSlot)
	g.process(v.procs[0])
	// Rejoin: the parent frame base is in the link slot.
	g.b.Fn(isa.FnLdl, int64(info.linkSlot))
	g.b.Op(isa.OpEndp)
	restore()

	g.b.MustLabel(cont)
}

// ---- ALT ------------------------------------------------------------

// operandPlan arranges for a guard operand to be pushed when part of
// the evaluation stack is already occupied: an operand too deep for
// the remaining slots is evaluated into a temporary up front.
type operandPlan struct {
	temp int // -1 when pushed directly
	emit func()
}

// planOperand prepares an operand whose direct evaluation needs `need`
// slots for a position where only `avail` slots remain free.
func (g *gen) planOperand(p pos, need, avail int, emit func()) operandPlan {
	if need <= avail {
		return operandPlan{temp: -1, emit: emit}
	}
	emit()
	t := g.allocTemp(p)
	g.b.Fn(isa.FnStl, int64(t))
	return operandPlan{temp: t}
}

func (g *gen) pushOperand(pl operandPlan) {
	if pl.temp >= 0 {
		g.b.Fn(isa.FnLdl, int64(pl.temp))
		return
	}
	pl.emit()
}

func (g *gen) releaseOperand(pl operandPlan) {
	if pl.temp >= 0 {
		g.freeTemp()
	}
}

// planGuardCond prepares a guard's boolean for a context with avail
// free slots.
func (g *gen) planGuardCond(br *altBranch, avail int) operandPlan {
	if br.cond == nil {
		return operandPlan{temp: -1, emit: func() { g.b.Fn(isa.FnLdc, 1) }}
	}
	need, _ := exprShape(br.cond)
	return g.planOperand(br.pos, need, avail, func() { g.evalExpr(br.cond) })
}

// planChanAddr prepares a channel address for a context with avail
// free slots.
func (g *gen) planChanAddr(in *inputProc, avail int) operandPlan {
	need := 1
	if in.chIdx != nil {
		idxNeed, _ := exprShape(in.chIdx)
		need = maxInt(idxNeed, 2)
	}
	return g.planOperand(in.pos, need, avail, func() { g.chanAddr(in.ch, in.chIdx) })
}

// planTime prepares a timer guard's time for a context with avail free
// slots.
func (g *gen) planTime(ti *timeInputProc, avail int) operandPlan {
	need, _ := exprShape(ti.after)
	return g.planOperand(ti.pos, need, avail, func() { g.evalExpr(ti.after) })
}

func (g *gen) alt(v *altProc) {
	if v.rep != nil {
		g.replicatedAlt(v)
		return
	}
	timed := g.c.timeGuards[v]
	end := g.label("altdisp")
	done := g.label("altdone")
	branchLabels := make([]string, len(v.branches))
	for i := range branchLabels {
		branchLabels[i] = g.label("altbr")
	}

	if timed {
		g.b.Op(isa.OpTalt)
	} else {
		g.b.Op(isa.OpAlt)
	}

	// Enable each guard in textual order (which is also the priority
	// order of PRI ALT).  With the guard boolean on the stack, only
	// two slots remain for the channel address or time.
	for i := range v.branches {
		br := &v.branches[i]
		switch in := br.input.(type) {
		case *inputProc:
			chp := g.planChanAddr(in, 2)
			g.guardCond(br)
			g.pushOperand(chp)
			g.b.Op(isa.OpEnbc)
			g.releaseOperand(chp)
		case *timeInputProc:
			tp := g.planTime(in, 2)
			g.guardCond(br)
			g.pushOperand(tp)
			g.b.Op(isa.OpEnbt)
			g.releaseOperand(tp)
		case *skipProc:
			g.guardCond(br)
			g.b.Op(isa.OpEnbs)
		}
	}

	if timed {
		g.b.Op(isa.OpTaltwt)
	} else {
		g.b.Op(isa.OpAltwt)
	}

	// Disable in the same order; the first ready guard is selected.
	// The selection offset and guard occupy two slots, leaving one.
	for i := range v.branches {
		br := &v.branches[i]
		switch in := br.input.(type) {
		case *inputProc:
			chp := g.planChanAddr(in, 1)
			cp := g.planGuardCond(br, 2)
			g.b.Diff(isa.FnLdc, branchLabels[i], end)
			g.pushOperand(cp)
			g.pushOperand(chp)
			g.b.Op(isa.OpDisc)
			g.releaseOperand(cp)
			g.releaseOperand(chp)
		case *timeInputProc:
			tp := g.planTime(in, 1)
			cp := g.planGuardCond(br, 2)
			g.b.Diff(isa.FnLdc, branchLabels[i], end)
			g.pushOperand(cp)
			g.pushOperand(tp)
			g.b.Op(isa.OpDist)
			g.releaseOperand(cp)
			g.releaseOperand(tp)
		case *skipProc:
			cp := g.planGuardCond(br, 2)
			g.b.Diff(isa.FnLdc, branchLabels[i], end)
			g.pushOperand(cp)
			g.b.Op(isa.OpDiss)
			g.releaseOperand(cp)
		}
	}
	g.b.Op(isa.OpAltend)
	g.b.MustLabel(end)

	for i := range v.branches {
		br := &v.branches[i]
		g.b.MustLabel(branchLabels[i])
		if in, ok := br.input.(*inputProc); ok {
			g.input(in)
		}
		g.process(br.body)
		g.b.Branch(isa.FnJ, done)
	}
	g.b.MustLabel(done)
}

func (g *gen) guardCond(br *altBranch) {
	if br.cond != nil {
		g.evalExpr(br.cond)
		return
	}
	g.b.Fn(isa.FnLdc, 1)
}

// replicatedAlt compiles "ALT i = [base FOR count]" with one channel
// guard: the guards are enabled and disabled in runtime loops, and the
// selection offset recorded by disable channel is the guard's index
// relative to the base, so workspace slot 0 identifies the selected
// channel afterwards.
func (g *gen) replicatedAlt(v *altProc) {
	br := &v.branches[0]
	in := br.input.(*inputProc)
	rep := v.rep.sym
	path := g.pathOf(rep, v.rep.pos)
	if path.indirect {
		g.fail(v.rep.pos, "internal: replicated ALT index in unreachable frame")
	}
	idx := int64(path.delta + rep.offset)
	cnt := idx + 1

	initLoop := func() {
		g.evalExpr(v.rep.base)
		g.b.Fn(isa.FnStl, idx)
		g.evalExpr(v.rep.count)
		g.b.Fn(isa.FnStl, cnt)
	}
	advance := func() {
		g.b.Fn(isa.FnLdl, idx)
		g.b.Fn(isa.FnAdc, 1)
		g.b.Fn(isa.FnStl, idx)
		g.b.Fn(isa.FnLdl, cnt)
		g.b.Fn(isa.FnAdc, -1)
		g.b.Fn(isa.FnStl, cnt)
	}

	g.b.Op(isa.OpAlt)

	// Enable loop.
	enTop := g.label("raen")
	enDone := g.label("raend")
	initLoop()
	g.b.MustLabel(enTop)
	g.b.Fn(isa.FnLdl, cnt)
	g.b.Branch(isa.FnCj, enDone)
	chp := g.planChanAddr(in, 2)
	g.guardCond(br)
	g.pushOperand(chp)
	g.b.Op(isa.OpEnbc)
	g.releaseOperand(chp)
	advance()
	g.b.Branch(isa.FnJ, enTop)
	g.b.MustLabel(enDone)

	g.b.Op(isa.OpAltwt)

	// Disable loop: the selection offset pushed for each guard is the
	// index distance from the base.  The base is loop-invariant, so it
	// is parked in a temporary.
	tBase := g.allocTemp(v.rep.pos)
	g.evalExpr(v.rep.base)
	g.b.Fn(isa.FnStl, int64(tBase))
	disTop := g.label("radis")
	disDone := g.label("radisd")
	initLoop()
	g.b.MustLabel(disTop)
	g.b.Fn(isa.FnLdl, cnt)
	g.b.Branch(isa.FnCj, disDone)
	chp = g.planChanAddr(in, 1)
	cp := g.planGuardCond(br, 2)
	g.b.Fn(isa.FnLdl, idx)
	g.b.Fn(isa.FnLdl, int64(tBase))
	g.b.Op(isa.OpDiff) // idx - base
	g.pushOperand(cp)
	g.pushOperand(chp)
	g.b.Op(isa.OpDisc)
	g.releaseOperand(cp)
	g.releaseOperand(chp)
	advance()
	g.b.Branch(isa.FnJ, disTop)
	g.b.MustLabel(disDone)

	// Selected index: slot 0 holds (i - base); restore i and run the
	// input and body.  (No alt end: the offset is data, not a jump.)
	g.b.Fn(isa.FnLdl, 0)
	g.b.Fn(isa.FnLdl, int64(tBase))
	g.b.Op(isa.OpSum)
	g.b.Fn(isa.FnStl, idx)
	g.freeTemp()
	g.input(in)
	g.process(br.body)
}

// ---- calls ----------------------------------------------------------

func (g *gen) call(v *callProc) {
	info := v.sym.proc
	params := info.params
	n := len(v.args)
	nReg := n
	if nReg > 3 {
		nReg = 3
	}

	// Arguments beyond the third: store below the caller's workspace.
	for j := 3; j < n; j++ {
		g.evalArg(v.args[j], params[j])
		g.b.Fn(isa.FnStl, int64(-(5 + (j - 3))))
	}

	// Register arguments: simple ones load directly; otherwise park in
	// temporaries and reload so nothing is lost to stack overflow.
	allSimple := true
	for j := 0; j < nReg; j++ {
		if !simpleArg(v.args[j], params[j]) {
			allSimple = false
			break
		}
	}
	if allSimple {
		for j := 0; j < nReg; j++ {
			g.evalArg(v.args[j], params[j])
		}
	} else {
		temps := make([]int, nReg)
		for j := 0; j < nReg; j++ {
			g.evalArg(v.args[j], params[j])
			temps[j] = g.allocTemp(v.pos)
			g.b.Fn(isa.FnStl, int64(temps[j]))
		}
		for j := 0; j < nReg; j++ {
			g.b.Fn(isa.FnLdl, int64(temps[j]))
		}
		for range temps {
			g.freeTemp()
		}
	}
	g.b.Branch(isa.FnCall, info.label)
}

// simpleArg reports whether an argument compiles to a single load.
func simpleArg(a expr, formal *symbol) bool {
	if formal.paramKind == paramValue && !formal.array {
		switch v := a.(type) {
		case *numberExpr:
			return true
		case *nameExpr:
			return v.sym.kind == symConst || v.sym.kind == symRep ||
				(v.sym.kind == symVar && !v.sym.array) ||
				(v.sym.kind == symParam && v.sym.paramKind == paramValue && !v.sym.array)
		}
		return false
	}
	if _, ok := a.(*nameExpr); ok {
		return true
	}
	return false
}

// evalArg pushes one actual argument.
func (g *gen) evalArg(a expr, formal *symbol) {
	switch formal.paramKind {
	case paramValue:
		if formal.array {
			n := a.(*nameExpr)
			g.loadBase(n.sym, n.pos)
			return
		}
		g.evalExpr(a)
	case paramVar:
		if formal.array {
			n := a.(*nameExpr)
			g.loadBase(n.sym, n.pos)
			return
		}
		switch v := a.(type) {
		case *nameExpr:
			g.loadAddr(v.sym, v.pos)
		case *indexExpr:
			g.evalExpr(v.index)
			g.loadBase(v.base.sym, v.pos)
			g.b.Op(isa.OpWsub)
		}
	case paramChan:
		switch v := a.(type) {
		case *nameExpr:
			if formal.array {
				g.loadBase(v.sym, v.pos)
				return
			}
			g.chanAddr(v, nil)
		case *indexExpr:
			g.chanAddr(v.base, v.index)
		}
	}
}

// emitProc generates one PROC body as a subroutine.
func (g *gen) emitProc(info *procInfo) {
	f := info.frame
	g.b.MustLabel(info.label)
	g.b.Fn(isa.FnAjw, int64(-f.above))
	restore := g.enterProc(f)
	g.process(info.decl.body)
	restore()
	g.b.Fn(isa.FnAjw, int64(f.above))
	g.b.Op(isa.OpRet)
}
