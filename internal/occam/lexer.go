package occam

import "strings"

// lexer scans occam source into tokens.  Occam structures programs by
// indentation: each level is two spaces, and the lexer emits
// indent/dedent tokens at line starts, Python-style.
type lexer struct {
	src    string
	pos    int
	line   int
	col    int
	tokens []token
	err    *Err
}

// lex scans the whole source.  It returns the token stream or the
// first error.
func lex(src string) ([]token, *Err) {
	l := &lexer{src: src, line: 1}
	l.run()
	return l.tokens, l.err
}

func (l *lexer) run() {
	depth := 0
	lines := strings.Split(l.src, "\n")
	for i, raw := range lines {
		l.line = i + 1
		text := raw
		// Strip comments: "--" to end of line, outside quotes.
		text = stripOccamComment(text)
		trimmed := strings.TrimRight(text, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue // blank or comment-only line
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if strings.HasPrefix(trimmed[indent:], "\t") || strings.Contains(trimmed[:indent], "\t") {
			l.fail(indent+1, "tabs are not allowed in occam indentation")
			return
		}
		if indent%2 != 0 {
			l.fail(indent+1, "indentation must be a multiple of two spaces")
			return
		}
		level := indent / 2
		for depth < level {
			depth++
			l.emit(token{kind: tokIndent, line: l.line, col: 1})
		}
		for depth > level {
			depth--
			l.emit(token{kind: tokDedent, line: l.line, col: 1})
		}
		l.scanLine(trimmed[indent:], indent)
		if l.err != nil {
			return
		}
		l.emit(token{kind: tokNewline, line: l.line, col: len(trimmed) + 1})
	}
	for depth > 0 {
		depth--
		l.emit(token{kind: tokDedent, line: l.line + 1, col: 1})
	}
	l.emit(token{kind: tokEOF, line: l.line + 1, col: 1})
}

func stripOccamComment(s string) string {
	inChar := false
	inStr := false
	for i := 0; i+1 < len(s); i++ {
		switch {
		case inChar:
			if s[i] == '\'' {
				inChar = false
			}
		case inStr:
			if s[i] == '"' {
				inStr = false
			}
		case s[i] == '\'':
			inChar = true
		case s[i] == '"':
			inStr = true
		case s[i] == '-' && s[i+1] == '-':
			return s[:i]
		}
	}
	return s
}

func (l *lexer) emit(t token) { l.tokens = append(l.tokens, t) }

func (l *lexer) fail(col int, msg string) {
	if l.err == nil {
		l.err = errf(l.line, col, "%s", msg)
	}
}

// scanLine tokenizes the body of one line (indentation already
// consumed).
func (l *lexer) scanLine(s string, baseCol int) {
	i := 0
	col := func() int { return baseCol + i + 1 }
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ':
			i++
		case isLetter(c):
			start := i
			for i < len(s) && (isLetter(s[i]) || isDigit(s[i]) || s[i] == '.') {
				i++
			}
			word := s[start:i]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			l.emit(token{kind: kind, text: word, line: l.line, col: baseCol + start + 1})
		case isDigit(c):
			start := i
			v := int64(0)
			for i < len(s) && isDigit(s[i]) {
				v = v*10 + int64(s[i]-'0')
				i++
			}
			l.emit(token{kind: tokNumber, text: s[start:i], val: v, line: l.line, col: baseCol + start + 1})
		case c == '#':
			start := i
			i++
			v := int64(0)
			n := 0
			for i < len(s) && isHex(s[i]) {
				v = v*16 + int64(hexVal(s[i]))
				i++
				n++
			}
			if n == 0 {
				l.fail(col(), "malformed hex literal")
				return
			}
			l.emit(token{kind: tokNumber, text: s[start:i], val: v, line: l.line, col: baseCol + start + 1})
		case c == '\'':
			if i+2 < len(s) && s[i+2] == '\'' {
				l.emit(token{kind: tokChar, val: int64(s[i+1]), line: l.line, col: col()})
				i += 3
			} else if i+3 < len(s) && s[i+1] == '*' && s[i+3] == '\'' {
				// occam escapes: *c carriage return, *n newline, *t tab,
				// *s space, *' quote, ** asterisk.
				v, ok := occamEscape(s[i+2])
				if !ok {
					l.fail(col(), "unknown character escape")
					return
				}
				l.emit(token{kind: tokChar, val: int64(v), line: l.line, col: col()})
				i += 4
			} else {
				l.fail(col(), "malformed character literal")
				return
			}
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			for i < len(s) && s[i] != '"' {
				if s[i] == '*' && i+1 < len(s) {
					v, ok := occamEscape(s[i+1])
					if !ok {
						l.fail(col(), "unknown string escape")
						return
					}
					sb.WriteByte(v)
					i += 2
					continue
				}
				sb.WriteByte(s[i])
				i++
			}
			if i >= len(s) {
				l.fail(baseCol+start+1, "unterminated string")
				return
			}
			i++
			l.emit(token{kind: tokString, text: sb.String(), line: l.line, col: baseCol + start + 1})
		default:
			// Symbols, longest first.
			rest := s[i:]
			sym := ""
			for _, cand := range []string{":=", "<=", ">=", "<>", "<<", ">>", "/\\", "\\/", "><",
				"(", ")", "[", "]", ",", ":", "=", "<", ">", "+", "-", "*", "/", "\\", "!", "?", "&", ";"} {
				if strings.HasPrefix(rest, cand) {
					sym = cand
					break
				}
			}
			if sym == "" {
				l.fail(col(), "unexpected character "+string(c))
				return
			}
			l.emit(token{kind: tokSymbol, text: sym, line: l.line, col: col()})
			i += len(sym)
		}
	}
}

func occamEscape(c byte) (byte, bool) {
	switch c {
	case 'c', 'C':
		return '\r', true
	case 'n', 'N':
		return '\n', true
	case 't', 'T':
		return '\t', true
	case 's', 'S':
		return ' ', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	case '*':
		return '*', true
	}
	return 0, false
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
func hexVal(c byte) int {
	switch {
	case isDigit(c):
		return int(c - '0')
	case c >= 'a':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
