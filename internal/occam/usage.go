package occam

import "sort"

// Usage checking — the static discipline behind the paper's design
// correctness story (section 2.2.1): occam's parallel components must
// be disjoint.  A variable assigned in one component of a PAR may not
// be read or assigned in another, and each channel may be used for
// input by only one component and for output by only one component.
//
// PROC bodies are summarised per parameter, so channels passed to
// procedures carry their direction to the call site.  Replicated PAR
// components share one body and commonly index arrays by the
// replicator; element-level disjointness is beyond this checker, so
// replicated PAR is not usage-checked (the INMOS compilers applied
// more elaborate subscript rules there).

// entity is the unit of disjointness: a scalar, a whole array (for
// subscripts the checker cannot fold), or one constant-indexed array
// element.
type entity struct {
	sym     *symbol
	indexed bool
	idx     int64
}

// overlaps reports whether two entities can denote the same storage or
// channel.
func (a entity) overlaps(b entity) bool {
	if a.sym != b.sym {
		return false
	}
	if a.indexed && b.indexed {
		return a.idx == b.idx
	}
	return true // a whole-array use overlaps every element
}

// effects records what a process does to each entity.
type effects struct {
	read    map[entity]bool
	written map[entity]bool
	input   map[entity]bool
	output  map[entity]bool
}

func newEffects() *effects {
	return &effects{
		read:    make(map[entity]bool),
		written: make(map[entity]bool),
		input:   make(map[entity]bool),
		output:  make(map[entity]bool),
	}
}

func (e *effects) merge(o *effects) {
	for s := range o.read {
		e.read[s] = true
	}
	for s := range o.written {
		e.written[s] = true
	}
	for s := range o.input {
		e.input[s] = true
	}
	for s := range o.output {
		e.output[s] = true
	}
}

// entityOf resolves a symbol with an optional subscript expression to
// an entity: constant subscripts select single elements.
func entityOf(sym *symbol, idx expr) entity {
	if idx == nil {
		return entity{sym: sym}
	}
	if v, ok := foldConst(idx); ok {
		return entity{sym: sym, indexed: true, idx: v}
	}
	return entity{sym: sym}
}

// paramEffects summarises a PROC's use of one parameter.
type paramEffects struct {
	read, written, input, output bool
}

// checkUsage walks the program, validating every PAR and computing
// PROC summaries along the way.
func (c *checker) checkUsage(prog process) *Err {
	c.procEffects = make(map[*procInfo][]paramEffects)
	_, err := c.usage(prog)
	return err
}

// usage returns the effects of a process, checking nested PARs.
func (c *checker) usage(p process) (*effects, *Err) {
	e := newEffects()
	switch v := p.(type) {
	case *skipProc, *stopProc:
	case *placedPar:
		// Components run on different transputers; nothing shared.
		for i := range v.components {
			if _, err := c.usage(v.components[i].body); err != nil {
				return nil, err
			}
		}
	case *declProc:
		for _, d := range v.decls {
			if pd, ok := d.(*procDecl); ok {
				if err := c.summariseProc(pd); err != nil {
					return nil, err
				}
			}
		}
		sub, err := c.usage(v.body)
		if err != nil {
			return nil, err
		}
		e.merge(sub)
	case *assignProc:
		c.exprReads(e, v.value)
		if v.index != nil {
			c.exprReads(e, v.index)
		}
		e.written[entityOf(v.target.sym, v.index)] = true
	case *outputProc:
		e.output[entityOf(v.ch.sym, v.chIdx)] = true
		if v.chIdx != nil {
			c.exprReads(e, v.chIdx)
		}
		for _, val := range v.values {
			c.exprReads(e, val)
		}
	case *inputProc:
		e.input[entityOf(v.ch.sym, v.chIdx)] = true
		if v.chIdx != nil {
			c.exprReads(e, v.chIdx)
		}
		for _, tgt := range v.targets {
			if tgt.name != nil {
				e.written[entityOf(tgt.name.sym, tgt.index)] = true
				if tgt.index != nil {
					c.exprReads(e, tgt.index)
				}
			}
		}
	case *timeInputProc:
		if v.after != nil {
			c.exprReads(e, v.after)
		} else {
			e.written[entityOf(v.target.sym, v.index)] = true
			if v.index != nil {
				c.exprReads(e, v.index)
			}
		}
	case *seqProc:
		if v.rep != nil {
			c.exprReads(e, v.rep.base)
			c.exprReads(e, v.rep.count)
		}
		for _, sub := range v.procs {
			se, err := c.usage(sub)
			if err != nil {
				return nil, err
			}
			e.merge(se)
		}
	case *whileProc:
		c.exprReads(e, v.cond)
		se, err := c.usage(v.body)
		if err != nil {
			return nil, err
		}
		e.merge(se)
	case *ifProc:
		for _, br := range v.branches {
			c.exprReads(e, br.cond)
			se, err := c.usage(br.body)
			if err != nil {
				return nil, err
			}
			e.merge(se)
		}
	case *altProc:
		for i := range v.branches {
			br := &v.branches[i]
			if br.cond != nil {
				c.exprReads(e, br.cond)
			}
			ge, err := c.usage(br.input)
			if err != nil {
				return nil, err
			}
			e.merge(ge)
			be, err := c.usage(br.body)
			if err != nil {
				return nil, err
			}
			e.merge(be)
		}
		if v.rep != nil {
			c.exprReads(e, v.rep.base)
			c.exprReads(e, v.rep.count)
		}
	case *parProc:
		if v.rep != nil {
			// Replicated PAR: collect effects but do not pairwise
			// check (see the package comment).
			c.exprReads(e, v.rep.base)
			se, err := c.usage(v.procs[0])
			if err != nil {
				return nil, err
			}
			e.merge(se)
			return e, nil
		}
		comps := make([]*effects, len(v.procs))
		for i, sub := range v.procs {
			se, err := c.usage(sub)
			if err != nil {
				return nil, err
			}
			comps[i] = se
			e.merge(se)
		}
		if err := checkDisjoint(v.pos, comps); err != nil {
			return nil, err
		}
	case *callProc:
		summary := c.procEffects[v.sym.proc]
		for i, arg := range v.args {
			pe := paramEffects{read: true}
			if i < len(summary) {
				pe = summary[i]
			}
			c.argEffects(e, arg, v.sym.proc.params[i], pe)
		}
	}
	return e, nil
}

// exprReads marks every variable an expression reads.
func (c *checker) exprReads(e *effects, ex expr) {
	switch v := ex.(type) {
	case *nameExpr:
		if v.sym != nil {
			switch v.sym.kind {
			case symVar, symRep, symParam:
				e.read[entity{sym: v.sym}] = true
			}
		}
	case *indexExpr:
		if v.base.sym != nil {
			switch v.base.sym.kind {
			case symVar, symRep, symParam:
				e.read[entityOf(v.base.sym, v.index)] = true
			}
		}
		c.exprReads(e, v.index)
	case *unaryExpr:
		c.exprReads(e, v.arg)
	case *binaryExpr:
		c.exprReads(e, v.left)
		c.exprReads(e, v.right)
	}
}

// argEffects maps a PROC's per-parameter summary onto the actual
// argument's symbol.
func (c *checker) argEffects(e *effects, arg expr, formal *symbol, pe paramEffects) {
	var ent entity
	switch v := arg.(type) {
	case *nameExpr:
		if v.sym == nil {
			return
		}
		ent = entity{sym: v.sym}
	case *indexExpr:
		if v.base.sym == nil {
			return
		}
		ent = entityOf(v.base.sym, v.index)
		c.exprReads(e, v.index)
	default:
		c.exprReads(e, arg)
		return
	}
	switch formal.paramKind {
	case paramValue:
		c.exprReads(e, arg)
	case paramVar:
		if pe.read {
			e.read[ent] = true
		}
		if pe.written {
			e.written[ent] = true
		}
	case paramChan:
		if pe.input {
			e.input[ent] = true
		}
		if pe.output {
			e.output[ent] = true
		}
	}
}

// summariseProc computes (once) the per-parameter effects of a PROC.
func (c *checker) summariseProc(pd *procDecl) *Err {
	info := pd.sym.proc
	if _, done := c.procEffects[info]; done {
		return nil
	}
	body, err := c.usage(pd.body)
	if err != nil {
		return err
	}
	summary := make([]paramEffects, len(info.params))
	for i, psym := range info.params {
		summary[i] = paramEffects{
			read:    body.touches(psym, body.read),
			written: body.touches(psym, body.written),
			input:   body.touches(psym, body.input),
			output:  body.touches(psym, body.output),
		}
	}
	c.procEffects[info] = summary
	return nil
}

// touches reports whether any entity of the given symbol appears in
// the set.
func (e *effects) touches(sym *symbol, set map[entity]bool) bool {
	//tvet:ignore detrange existence scan returning a constant; the result is iteration-order-invisible
	for ent := range set {
		if ent.sym == sym {
			return true
		}
	}
	return false
}

// anyOverlap finds an entity in a that overlaps one in b.  Both sets
// are scanned in source order so that when several entities conflict,
// the one named in the compile error does not depend on map iteration
// order.
func anyOverlap(a, b map[entity]bool) (entity, bool) {
	as, bs := sortedEntities(a), sortedEntities(b)
	for _, ea := range as {
		for _, eb := range bs {
			if ea.overlaps(eb) {
				return ea, true
			}
		}
	}
	return entity{}, false
}

// sortedEntities flattens a usage set into a slice ordered by the
// declaring symbol's position, then by element index.
func sortedEntities(set map[entity]bool) []entity {
	out := make([]entity, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.sym != b.sym {
			if a.sym.pos.line != b.sym.pos.line {
				return a.sym.pos.line < b.sym.pos.line
			}
			if a.sym.pos.col != b.sym.pos.col {
				return a.sym.pos.col < b.sym.pos.col
			}
			return a.sym.name < b.sym.name
		}
		if a.indexed != b.indexed {
			return !a.indexed
		}
		return a.idx < b.idx
	})
	return out
}

// checkDisjoint enforces the PAR rules across component effects.
func checkDisjoint(at pos, comps []*effects) *Err {
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			a, b := comps[i], comps[j]
			if ent, bad := anyOverlap(a.written, b.written); bad {
				return usageErr(at, ent, "assigned in one component of a PAR and used in another")
			}
			if ent, bad := anyOverlap(a.written, b.read); bad {
				return usageErr(at, ent, "assigned in one component of a PAR and used in another")
			}
			if ent, bad := anyOverlap(b.written, a.read); bad {
				return usageErr(at, ent, "assigned in one component of a PAR and used in another")
			}
			if ent, bad := anyOverlap(a.input, b.input); bad {
				return usageErr(at, ent, "used for input by two components of a PAR")
			}
			if ent, bad := anyOverlap(a.output, b.output); bad {
				return usageErr(at, ent, "used for output by two components of a PAR")
			}
		}
	}
	return nil
}

func usageErr(at pos, ent entity, what string) *Err {
	name := ent.sym.name
	if ent.indexed {
		name = name + "[...]"
	}
	return errf(at.line, at.col, "%q is %s", name, what)
}
