package occam

// Abstract syntax.  A program is a process, possibly prefixed by
// declarations (each declaration scopes over the process that follows
// it).

type pos struct{ line, col int }

// pos satisfies the expr, process and decl interfaces for every node
// that embeds it.
func (p pos) exprPos() pos { return p }
func (p pos) procPos() pos { return p }
func (p pos) declPos() pos { return p }

// ---- expressions ----------------------------------------------------

type expr interface{ exprPos() pos }

// numberExpr is an integer, character or TRUE/FALSE literal.
type numberExpr struct {
	pos
	val int64
}

// nameExpr references a variable, constant or parameter.
type nameExpr struct {
	pos
	name string
	sym  *symbol // set by the checker
}

// indexExpr is a subscript a[e], or a byte subscript a[BYTE e] (occam
// addresses the array's storage byte by byte).
type indexExpr struct {
	pos
	base    *nameExpr
	index   expr
	byteSel bool
}

// unaryExpr is -e or NOT e.
type unaryExpr struct {
	pos
	op  string
	arg expr
}

// binaryExpr is e1 op e2.  Occam gives all operators equal precedence
// and requires parentheses when different operators are mixed.
type binaryExpr struct {
	pos
	op          string
	left, right expr
}

// ---- processes ------------------------------------------------------

type process interface{ procPos() pos }

// skipProc is SKIP: "no effect, terminates".
type skipProc struct{ pos }

// stopProc is STOP: "never terminates".
type stopProc struct{ pos }

// assignProc is v := e.
type assignProc struct {
	pos
	target  *nameExpr // variable or array base
	index   expr      // nil unless target[index] := e
	byteSel bool      // target[BYTE index] := e
	value   expr
}

// outputProc is c ! e1; e2; ...  An expression that names a whole
// array sends the array as one message.
type outputProc struct {
	pos
	ch     *nameExpr
	chIdx  expr // nil unless channel array element
	values []expr
}

// inputProc is c ? v1; v2; ...  A target naming a whole array receives
// it as one message.  "c ? ANY" discards a word.
type inputProc struct {
	pos
	ch      *nameExpr
	chIdx   expr
	targets []inputTarget
}

type inputTarget struct {
	name  *nameExpr // nil for ANY
	index expr      // nil unless array element
}

// timeInputProc is TIME ? v (read the clock) or TIME ? AFTER e (delayed
// input).
type timeInputProc struct {
	pos
	target *nameExpr // nil when after != nil
	index  expr
	after  expr
}

// seqProc is SEQ (optionally replicated).
type seqProc struct {
	pos
	rep   *replicator
	procs []process
}

// parProc is PAR or PRI PAR (optionally replicated).
type parProc struct {
	pos
	pri   bool
	rep   *replicator
	procs []process
}

// altProc is ALT or PRI ALT.  A replicated ALT (rep != nil) has exactly
// one branch, guarded on a channel-array element indexed by the
// replicator.
type altProc struct {
	pos
	pri      bool
	rep      *replicator
	branches []altBranch
}

// altBranch is one guarded alternative: [bool &] input-guard, body.
type altBranch struct {
	pos
	cond  expr    // nil when absent
	input process // inputProc, timeInputProc (AFTER form) or skipProc
	body  process
}

// ifProc is IF with condition branches; no true condition = STOP.
type ifProc struct {
	pos
	branches []ifBranch
}

type ifBranch struct {
	pos
	cond expr
	body process
}

// whileProc is WHILE e.
type whileProc struct {
	pos
	cond expr
	body process
}

// callProc invokes a named PROC.
type callProc struct {
	pos
	name string
	args []expr
	sym  *symbol
}

// replicator is i = [base FOR count].
type replicator struct {
	pos
	name  string
	base  expr
	count expr
	sym   *symbol
}

// declProc wraps declarations scoping over a process.
type declProc struct {
	pos
	decls []decl
	body  process
}

// placedPar is the occam configuration construct: PLACED PAR with
// PROCESSOR components, each destined for its own transputer.  It may
// only appear as the outermost process of a program.
type placedPar struct {
	pos
	components []placedComponent
}

type placedComponent struct {
	pos
	processor expr // compile-time processor number
	body      process
}

// ---- declarations ---------------------------------------------------

type decl interface{ declPos() pos }

// varDecl declares VAR names (scalars or arrays).
type varDecl struct {
	pos
	items []declItem
}

// chanDecl declares CHAN names.
type chanDecl struct {
	pos
	items []declItem
}

type declItem struct {
	pos
	name string
	size expr // nil for scalars; array length otherwise
	sym  *symbol
}

// defDecl declares DEF name = constant, or DEF name = "string": a
// byte table whose first byte is the length (the occam-1 convention).
type defDecl struct {
	pos
	name   string
	value  expr    // nil when strVal is set
	strVal *string // string-table form
	sym    *symbol
}

// placeDecl is PLACE chan AT address.
type placeDecl struct {
	pos
	name string
	addr expr
}

// procDecl declares PROC name(params) = body.
type procDecl struct {
	pos
	name   string
	params []param
	body   process
	sym    *symbol
}

type paramKind int

const (
	paramValue paramKind = iota // VALUE v: word by value
	paramVar                    // VAR v: word by reference
	paramChan                   // CHAN c: channel by reference
)

type param struct {
	pos
	kind  paramKind
	name  string
	array bool // trailing [] : base address of an array
	sym   *symbol
}
