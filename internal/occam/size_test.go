package occam

import (
	"math/rand"
	"testing"
)

// Properties of the expression-shape analysis that drives spill-slot
// allocation: after spilling, no expression claims more than the three
// evaluation-stack registers, and temporaries stay bounded by the
// expression depth.

func randomExpr(rng *rand.Rand, depth int) expr {
	if depth == 0 || rng.Intn(4) == 0 {
		return &numberExpr{val: int64(rng.Intn(100))}
	}
	return &binaryExpr{
		op:    []string{"+", "-", "*"}[rng.Intn(3)],
		left:  randomExpr(rng, depth-1),
		right: randomExpr(rng, depth-1),
	}
}

func depthOf(e expr) int {
	if b, ok := e.(*binaryExpr); ok {
		l, r := depthOf(b.left), depthOf(b.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return 0
}

func TestExprShapeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1985))
	for i := 0; i < 2000; i++ {
		e := randomExpr(rng, 1+rng.Intn(6))
		need, temps := exprShape(e)
		if need < 1 || need > 3 {
			t.Fatalf("need = %d for depth-%d expression", need, depthOf(e))
		}
		if temps < 0 || temps > depthOf(e) {
			t.Fatalf("temps = %d exceeds depth %d", temps, depthOf(e))
		}
	}
}

// TestExprShapeKnownCases pins the table the generator's spill decision
// relies on.
func TestExprShapeKnownCases(t *testing.T) {
	leaf := func() expr { return &numberExpr{val: 1} }
	bin := func(l, r expr) expr { return &binaryExpr{op: "+", left: l, right: r} }

	if n, tp := exprShape(leaf()); n != 1 || tp != 0 {
		t.Errorf("leaf = (%d,%d)", n, tp)
	}
	// Left-deep chains stay within two slots.
	ld := bin(bin(bin(leaf(), leaf()), leaf()), leaf())
	if n, tp := exprShape(ld); n != 2 || tp != 0 {
		t.Errorf("left-deep = (%d,%d), want (2,0)", n, tp)
	}
	// Right-deep depth 2 fits without spilling.
	rd2 := bin(leaf(), bin(leaf(), leaf()))
	if n, tp := exprShape(rd2); n != 3 || tp != 0 {
		t.Errorf("right-deep 2 = (%d,%d), want (3,0)", n, tp)
	}
	// Right-deep depth 3 forces one spill under left-first evaluation:
	// the left operand occupies a register while the depth-2 right
	// side needs all three.
	rd3 := bin(leaf(), rd2)
	if n, tp := exprShape(rd3); n > 3 || tp != 1 {
		t.Errorf("right-deep 3 = (%d,%d), want need<=3 temps 1", n, tp)
	}
	// Balanced depth 4 trees spill at most twice.
	full := bin(bin(rd2, rd3), bin(rd3, rd2))
	if n, tp := exprShape(full); n > 3 || tp > 3 {
		t.Errorf("balanced = (%d,%d)", n, tp)
	}
}

// TestFrameSizing: frames grow monotonically with declarations and
// nesting, and every compile reports positive workspace needs.
func TestFrameSizing(t *testing.T) {
	compileFor := func(src string) *Compiled {
		c, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("%v\n%s", err, src)
		}
		return c
	}
	small := compileFor("VAR a:\na := 1\n")
	big := compileFor("VAR a, b[20]:\nSEQ\n  a := 1\n  b[0] := 2\n")
	if big.Above <= small.Above {
		t.Errorf("above: %d should exceed %d", big.Above, small.Above)
	}
	deep := compileFor(`PROC leaf(VAR r) =
  r := 1
:
PROC mid(VAR r) =
  leaf(r)
:
VAR x:
mid(x)
`)
	shallow := compileFor(`PROC leaf(VAR r) =
  r := 1
:
VAR x:
leaf(x)
`)
	if deep.Below <= shallow.Below {
		t.Errorf("call depth: %d should exceed %d", deep.Below, shallow.Below)
	}
	par := compileFor("CHAN c:\nVAR v:\nPAR\n  c ! 1\n  c ? v\n")
	if par.Below <= small.Below {
		t.Errorf("PAR components should deepen the workspace: %d vs %d", par.Below, small.Below)
	}
}
