package occam

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) process {
	t.Helper()
	p, err := parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestParseSeq(t *testing.T) {
	p := parseOK(t, "SEQ\n  SKIP\n  STOP\n")
	seq, ok := p.(*seqProc)
	if !ok || len(seq.procs) != 2 {
		t.Fatalf("got %T %+v", p, p)
	}
	if _, ok := seq.procs[0].(*skipProc); !ok {
		t.Error("first component should be SKIP")
	}
	if _, ok := seq.procs[1].(*stopProc); !ok {
		t.Error("second component should be STOP")
	}
}

func TestParseDeclarations(t *testing.T) {
	p := parseOK(t, "VAR x, y:\nCHAN c:\nDEF n = 4:\nx := n\n")
	d, ok := p.(*declProc)
	if !ok || len(d.decls) != 3 {
		t.Fatalf("got %T: %+v", p, p)
	}
	if v, ok := d.decls[0].(*varDecl); !ok || len(v.items) != 2 {
		t.Error("VAR x, y mis-parsed")
	}
	if _, ok := d.decls[1].(*chanDecl); !ok {
		t.Error("CHAN c mis-parsed")
	}
	if def, ok := d.decls[2].(*defDecl); !ok || def.name != "n" {
		t.Error("DEF mis-parsed")
	}
}

func TestParseArrays(t *testing.T) {
	p := parseOK(t, "VAR a[10]:\nSEQ\n  a[0] := 1\n  a[1] := a[0]\n")
	d := p.(*declProc)
	vd := d.decls[0].(*varDecl)
	if vd.items[0].size == nil {
		t.Fatal("array size missing")
	}
}

func TestParseReplicators(t *testing.T) {
	p := parseOK(t, "VAR x:\nSEQ i = [0 FOR 10]\n  x := i\n")
	d := p.(*declProc)
	seq := d.body.(*seqProc)
	if seq.rep == nil || seq.rep.name != "i" {
		t.Fatal("replicator missing")
	}
	if len(seq.procs) != 1 {
		t.Fatalf("replicated SEQ has %d components", len(seq.procs))
	}
}

func TestParsePar(t *testing.T) {
	p := parseOK(t, "PAR\n  SKIP\n  SKIP\n")
	par := p.(*parProc)
	if par.pri || len(par.procs) != 2 {
		t.Fatalf("%+v", par)
	}
	p2 := parseOK(t, "PRI PAR\n  SKIP\n  SKIP\n")
	if !p2.(*parProc).pri {
		t.Error("PRI PAR should set pri")
	}
}

func TestParseAlt(t *testing.T) {
	src := `ALT
  c ? v
    SKIP
  ok & d ? w
    STOP
  TIME ? AFTER t
    SKIP
  TRUE & SKIP
    SKIP
`
	p := parseOK(t, src)
	alt := p.(*altProc)
	if len(alt.branches) != 4 {
		t.Fatalf("branches = %d", len(alt.branches))
	}
	if alt.branches[0].cond != nil {
		t.Error("branch 0 should have no condition")
	}
	if alt.branches[1].cond == nil {
		t.Error("branch 1 should have a condition")
	}
	if ti, ok := alt.branches[2].input.(*timeInputProc); !ok || ti.after == nil {
		t.Error("branch 2 should be a timer guard")
	}
	if _, ok := alt.branches[3].input.(*skipProc); !ok {
		t.Error("branch 3 should be a SKIP guard")
	}
}

func TestParseIfWhile(t *testing.T) {
	src := `IF
  x = 1
    SKIP
  TRUE
    STOP
`
	p := parseOK(t, src)
	ifp := p.(*ifProc)
	if len(ifp.branches) != 2 {
		t.Fatalf("branches = %d", len(ifp.branches))
	}
	p2 := parseOK(t, "WHILE x < 10\n  x := x + 1\n")
	if _, ok := p2.(*whileProc); !ok {
		t.Fatalf("got %T", p2)
	}
}

func TestParseProcAndCall(t *testing.T) {
	src := `PROC p(VALUE a, VAR b, CHAN c) =
  SEQ
    b := a
    c ! a
:
p(1, x, ch)
`
	p := parseOK(t, src)
	d := p.(*declProc)
	pd := d.decls[0].(*procDecl)
	if pd.name != "p" || len(pd.params) != 3 {
		t.Fatalf("%+v", pd)
	}
	if pd.params[0].kind != paramValue || pd.params[1].kind != paramVar || pd.params[2].kind != paramChan {
		t.Error("param kinds wrong")
	}
	call := d.body.(*callProc)
	if call.name != "p" || len(call.args) != 3 {
		t.Fatalf("%+v", call)
	}
}

func TestParseIO(t *testing.T) {
	p := parseOK(t, "c ! x + 1; y\n")
	out := p.(*outputProc)
	if len(out.values) != 2 {
		t.Fatalf("values = %d", len(out.values))
	}
	p2 := parseOK(t, "c ? x; a[i]; ANY\n")
	in := p2.(*inputProc)
	if len(in.targets) != 3 {
		t.Fatalf("targets = %d", len(in.targets))
	}
	if in.targets[2].name != nil {
		t.Error("ANY target should have nil name")
	}
}

func TestParseChannelArrayIO(t *testing.T) {
	p := parseOK(t, "c[i] ! 5\n")
	out := p.(*outputProc)
	if out.chIdx == nil {
		t.Error("channel index missing")
	}
}

func TestParsePlace(t *testing.T) {
	p := parseOK(t, "CHAN c:\nPLACE c AT LINK0OUT:\nc ! 1\n")
	d := p.(*declProc)
	if _, ok := d.decls[1].(*placeDecl); !ok {
		t.Fatalf("decls = %+v", d.decls)
	}
}

func TestParseMixedOperatorsRejected(t *testing.T) {
	_, err := parse("x := 1 + 2 * 3\n")
	if err == nil {
		t.Fatal("mixed operators without parentheses should be rejected")
	}
	if !strings.Contains(err.Error(), "parenthesize") {
		t.Errorf("error = %v", err)
	}
	// Same operator chains are fine.
	parseOK(t, "x := 1 + 2 + 3\n")
	// Parenthesized mixing is fine.
	parseOK(t, "x := 1 + (2 * 3)\n")
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"SEQ\n",                // missing body
		"x :=\n",               // missing expression
		"c !\n",                // missing value
		"IF\n  SKIP\n",         // IF branch must be a condition line
		"PROC p() =\n  SKIP\n", // missing closing colon
		"PRI SKIP\n",           // PRI must prefix PAR or ALT
		"WHILE\n  SKIP\n",      // missing condition
		"VAR x\nSKIP\n",        // missing colon
		"x + 1\n",              // expression is not a process
	}
	for _, src := range cases {
		if _, err := parse(src); err == nil {
			t.Errorf("parse(%q) should fail", src)
		}
	}
}

func TestParseTimeInput(t *testing.T) {
	p := parseOK(t, "TIME ? now\n")
	ti := p.(*timeInputProc)
	if ti.target == nil || ti.after != nil {
		t.Fatalf("%+v", ti)
	}
	p2 := parseOK(t, "TIME ? AFTER t + 100\n")
	ti2 := p2.(*timeInputProc)
	if ti2.after == nil {
		t.Fatalf("%+v", ti2)
	}
}
