package occam

// Workspace sizing.  The occam compiler performs all storage
// allocation: "the processor does not need to support the dynamic
// allocation of storage as the occam compiler is able to perform the
// allocation of space to concurrent processes" (paper, 3.2.4).
//
// Each frame needs `above` words (slots 0 and 1, locals, replicator
// blocks, spill temporaries, extra parameter slots) at non-negative
// offsets, and `below` words beneath it: the five scheduler slots plus
// the deepest requirement of any call frame or PAR component region
// beneath the frame base.

// schedulerSlots is the per-process reservation below the workspace
// pointer (saved Iptr, list link, state/pointer, timer link, time).
const schedulerSlots = 5

// sizer computes frame requirements bottom-up.
type sizer struct {
	c *checker
}

// sizeProgram sizes the root frame and every PROC frame.
func (c *checker) sizeProgram(prog process, root *frame) {
	s := &sizer{c: c}
	// PROCs were recorded in declaration order, so callees precede
	// callers; size them first.
	for _, info := range c.procs {
		s.sizeProc(info)
	}
	s.sizeFrame(root, prog)
}

func (s *sizer) sizeProc(info *procInfo) {
	if info.frame.sized {
		return
	}
	s.sizeFrame(info.frame, info.decl.body)
}

// sizeFrame computes above/below for a frame whose body is the given
// process.
func (s *sizer) sizeFrame(f *frame, body process) {
	temps, depth := s.process(body, f)
	if temps > f.maxTemp {
		f.maxTemp = temps
	}
	f.above = f.nLocal + f.maxTemp + f.extraParams
	f.below = schedulerSlots + depth
	f.sized = true
}

// process returns (spill temporaries, words needed below the frame
// base) for one statement.
func (s *sizer) process(p process, f *frame) (temps, depth int) {
	switch v := p.(type) {
	case *skipProc, *stopProc:
		return 0, 0
	case *declProc:
		return s.process(v.body, f)
	case *assignProc:
		t := exprTemps(v.value)
		if v.index != nil {
			// Value occupies one stack slot while the index and base
			// are computed.
			t = maxInt(t, 1+exprTemps(v.index))
		}
		return t, 0
	case *outputProc:
		t := exprTempsChan(v.chIdx)
		for _, e := range v.values {
			t = maxInt(t, exprTemps(e))
		}
		return t, 0
	case *inputProc:
		t := exprTempsChan(v.chIdx)
		for _, tgt := range v.targets {
			if tgt.index != nil {
				t = maxInt(t, exprTemps(tgt.index))
			}
		}
		return t, 0
	case *timeInputProc:
		if v.after != nil {
			return exprTemps(v.after), 0
		}
		if v.index != nil {
			return exprTemps(v.index), 0
		}
		return 0, 0
	case *seqProc:
		t, d := 0, 0
		if v.rep != nil {
			t = maxInt(exprTemps(v.rep.base), exprTemps(v.rep.count))
		}
		for _, sub := range v.procs {
			st, sd := s.process(sub, f)
			t, d = maxInt(t, st), maxInt(d, sd)
		}
		return t, d
	case *whileProc:
		t, d := s.process(v.body, f)
		return maxInt(t, exprTemps(v.cond)), d
	case *ifProc:
		t, d := 0, 0
		for _, br := range v.branches {
			bt, bd := s.process(br.body, f)
			t = maxInt(t, maxInt(bt, exprTemps(br.cond)))
			d = maxInt(d, bd)
		}
		return t, d
	case *altProc:
		// Guard operands may be parked in temporaries while the
		// selection offset and guard boolean occupy the stack (see
		// planOperand in gen.go): reserve two slots per alternative
		// plus whatever the operand expressions themselves spill.  A
		// replicated ALT additionally parks the loop-invariant base.
		t, d := 0, 0
		if v.rep != nil {
			t = 1 + maxInt(exprTemps(v.rep.base), exprTemps(v.rep.count))
			bt, bd := s.process(v.branches[0].body, f)
			in := v.branches[0].input.(*inputProc)
			it, _ := s.process(in, f)
			t = maxInt(t, 3+it)
			if v.branches[0].cond != nil {
				t = maxInt(t, 3+exprTemps(v.branches[0].cond))
			}
			return maxInt(t, bt), maxInt(d, bd)
		}
		for _, br := range v.branches {
			if br.cond != nil {
				t = maxInt(t, 2+exprTemps(br.cond))
			}
			if in, ok := br.input.(*inputProc); ok {
				it, _ := s.process(in, f)
				t = maxInt(t, 2+it)
			}
			if ti, ok := br.input.(*timeInputProc); ok && ti.after != nil {
				t = maxInt(t, 2+exprTemps(ti.after))
			}
			bt, bd := s.process(br.body, f)
			t, d = maxInt(t, bt), maxInt(d, bd)
		}
		return t, d
	case *parProc:
		return s.par(v, f)
	case *callProc:
		info := v.sym.proc
		s.sizeProc(info)
		// Argument spills: register arguments evaluated into
		// temporaries first (see gen.go).
		nReg := len(v.args)
		if nReg > 3 {
			nReg = 3
		}
		t := 0
		for i, a := range v.args {
			at := exprTemps(a)
			if i < nReg {
				at += i // earlier register args already parked
			}
			t = maxInt(t, at)
		}
		t = maxInt(t, nReg)
		// Call frame of 4 words plus the callee's workspace.
		return t, 4 + info.frame.above + info.frame.below
	}
	return 0, 0
}

// par sizes a PAR: components are stacked downward from the frame
// base; each consumes above+below words.
func (s *sizer) par(v *parProc, f *frame) (temps, depth int) {
	info := s.c.parsInfo[v]
	t := 0
	if v.rep != nil {
		comp := info.frames[0]
		ct, cd := s.process(v.procs[0], comp)
		if ct > comp.maxTemp {
			comp.maxTemp = ct
		}
		comp.above = comp.nLocal + comp.maxTemp
		comp.below = schedulerSlots + cd
		comp.sized = true
		size := comp.above + comp.below
		info.stride = size
		info.deltas = []int{-comp.above}
		t = maxInt(exprTemps(v.rep.base), 0)
		return t, size * info.count
	}
	cursor := 0
	for i, sub := range v.procs {
		comp := info.frames[i]
		ct, cd := s.process(sub, comp)
		if ct > comp.maxTemp {
			comp.maxTemp = ct
		}
		comp.above = comp.nLocal + comp.maxTemp
		comp.below = schedulerSlots + cd
		comp.sized = true
		cursor -= comp.above
		info.deltas = append(info.deltas, cursor)
		cursor -= comp.below
	}
	return t, -cursor
}

// exprTemps returns the spill temporaries needed to evaluate e on the
// three-register stack: "if there is insufficient room to evaluate an
// expression on the stack, then the compiler introduces the necessary
// temporary variables in the local workspace" (paper, 3.2.9).
func exprTemps(e expr) int {
	_, t := exprShape(e)
	return t
}

func exprTempsChan(chIdx expr) int {
	if chIdx == nil {
		return 0
	}
	return exprTemps(chIdx)
}

// exprShape returns (stack need, temps) for an expression.
func exprShape(e expr) (need, temps int) {
	switch v := e.(type) {
	case *numberExpr, *nameExpr:
		return exprLeafNeed(e), 0
	case *indexExpr:
		in, it := exprShape(v.index)
		// index, then base pointer, then load.
		return maxInt(in, 2), it
	case *unaryExpr:
		an, at := exprShape(v.arg)
		if v.op == "-" {
			// ldc 0 ; arg ; sub
			return maxInt(2, an+1), at
		}
		return maxInt(an, 1), at
	case *binaryExpr:
		ln, lt := exprShape(v.left)
		rn, rt := exprShape(v.right)
		need = maxInt(ln, rn+1)
		if need <= 3 {
			return need, maxInt(lt, rt)
		}
		// Spill: evaluate the right operand into a temporary first,
		// then the left, then reload.  The node still requires the
		// right operand's full stack depth (evaluated from empty), so
		// an enclosing expression may need to spill in turn.
		temps = maxInt(rt, 1+lt)
		return maxInt(rn, maxInt(ln, 2)), temps
	}
	return 1, 0
}

func exprLeafNeed(e expr) int {
	if n, ok := e.(*nameExpr); ok && n.sym != nil {
		if n.sym.kind == symParam && n.sym.paramKind == paramVar {
			// ldl p ; ldnl 0: still one live slot.
			return 1
		}
	}
	return 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
