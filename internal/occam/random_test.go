package occam_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// Differential testing: random expression programs are compiled and
// run on the simulated transputer, and their results compared with a
// host-side reference evaluator implementing occam's semantics
// (32-bit words, truncating division, truth values 1/0).

// rexpr is a randomly generated expression with its reference value.
type rexpr struct {
	src string
	val int64
}

const wordMask = 0xFFFFFFFF

func toWord(v int64) int64 {
	u := uint64(v) & wordMask
	if u&0x80000000 != 0 {
		return int64(u | ^uint64(wordMask))
	}
	return int64(u)
}

// genExpr builds a random expression over variables a=env[0], b=env[1],
// c=env[2].  Every binary node is parenthesised, which occam always
// allows.  Overflow-prone shapes are avoided so checked arithmetic
// never traps: operands stay small and shift counts are literal.
func genExpr(rng *rand.Rand, env [3]int64, depth int) rexpr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			n := int64(rng.Intn(10))
			return rexpr{fmt.Sprintf("%d", n), n}
		case 1:
			return rexpr{"a", env[0]}
		case 2:
			return rexpr{"b", env[1]}
		case 3:
			return rexpr{"c", env[2]}
		default:
			n := int64(rng.Intn(100))
			return rexpr{fmt.Sprintf("%d", n), n}
		}
	}
	l := genExpr(rng, env, depth-1)
	r := genExpr(rng, env, depth-1)
	switch rng.Intn(12) {
	case 0:
		return rexpr{"(" + l.src + " + " + r.src + ")", toWord(l.val + r.val)}
	case 1:
		return rexpr{"(" + l.src + " - " + r.src + ")", toWord(l.val - r.val)}
	case 2:
		// Keep products small.
		small := rexpr{fmt.Sprintf("%d", rng.Intn(5)), 0}
		small.val = mustParse(small.src)
		return rexpr{"(" + l.src + " * " + small.src + ")", toWord(l.val * small.val)}
	case 3:
		d := int64(rng.Intn(9) + 1)
		return rexpr{fmt.Sprintf("(%s / %d)", l.src, d), toWord(l.val / d)}
	case 4:
		d := int64(rng.Intn(9) + 1)
		return rexpr{fmt.Sprintf("(%s \\ %d)", l.src, d), toWord(l.val % d)}
	case 5:
		return rexpr{"(" + l.src + " /\\ " + r.src + ")", toWord(int64(uint64(l.val) & uint64(r.val)))}
	case 6:
		return rexpr{"(" + l.src + " \\/ " + r.src + ")", toWord(int64(uint64(l.val) | uint64(r.val)))}
	case 7:
		return rexpr{"(" + l.src + " >< " + r.src + ")", toWord(int64(uint64(l.val) ^ uint64(r.val)))}
	case 8:
		n := rng.Intn(6)
		return rexpr{fmt.Sprintf("(%s << %d)", l.src, n), toWord(int64(uint64(l.val)&wordMask) << uint(n))}
	case 9:
		n := rng.Intn(6)
		return rexpr{fmt.Sprintf("(%s >> %d)", l.src, n), toWord(int64((uint64(l.val) & wordMask) >> uint(n)))}
	case 10:
		return rexpr{"(" + l.src + " > " + r.src + ")", boolWord64(l.val > r.val)}
	default:
		return rexpr{"(" + l.src + " = " + r.src + ")", boolWord64(l.val == r.val)}
	}
}

func boolWord64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func mustParse(s string) int64 {
	var v int64
	fmt.Sscanf(s, "%d", &v)
	return v
}

// TestRandomExpressions compiles batches of random expressions and
// compares machine results against the reference evaluator.
func TestRandomExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(1985))
	const rounds = 12
	const perRound = 10
	for round := 0; round < rounds; round++ {
		env := [3]int64{int64(rng.Intn(200) - 100), int64(rng.Intn(200) - 100), int64(rng.Intn(50))}
		var exprs []rexpr
		var sb strings.Builder
		sb.WriteString("CHAN screen:\nPLACE screen AT LINK0OUT:\nVAR a, b, c:\nSEQ\n")
		fmt.Fprintf(&sb, "  a := %d\n  b := %d\n  c := %d\n", env[0], env[1], env[2])
		for i := 0; i < perRound; i++ {
			e := genExpr(rng, env, 3)
			exprs = append(exprs, e)
			fmt.Fprintf(&sb, "  screen ! 2; %s\n", e.src)
		}
		got := runRandom(t, sb.String())
		if len(got) != len(exprs) {
			t.Fatalf("round %d: got %d values, want %d\nprogram:\n%s", round, len(got), len(exprs), sb.String())
		}
		for i, e := range exprs {
			if got[i] != e.val {
				t.Errorf("round %d: %s = %d on the transputer, %d on the host (a=%d b=%d c=%d)",
					round, e.src, got[i], e.val, env[0], env[1], env[2])
			}
		}
	}
}

func runRandom(t *testing.T, src string) []int64 {
	t.Helper()
	comp, err := occam.Compile(src, occam.Options{})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	s := network.NewSystem()
	n := s.MustAddTransputer("m", core.T424().WithMemory(128*1024))
	host, _ := s.AttachHost(n, 0, nil)
	if err := n.Load(comp.Image); err != nil {
		t.Fatal(err)
	}
	rep := s.Run(2 * sim.Second)
	if !rep.Settled {
		t.Fatalf("random program did not settle\n%s", src)
	}
	if err := n.M.Fault(); err != nil {
		t.Fatalf("fault: %v\n%s", err, src)
	}
	return host.Values
}

// TestRandomSeqParEquivalence: a set of independent assignments
// produces the same results run sequentially or in parallel (the
// disjointness occam requires makes SEQ and PAR equivalent here).
func TestRandomSeqParEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(424))
	for round := 0; round < 6; round++ {
		n := 4 + rng.Intn(4)
		var exprs []string
		for i := 0; i < n; i++ {
			e := genExpr(rng, [3]int64{3, 5, 7}, 2)
			exprs = append(exprs, e.src)
		}
		build := func(par bool) string {
			var sb strings.Builder
			sb.WriteString("CHAN screen:\nPLACE screen AT LINK0OUT:\nVAR a, b, c")
			for i := range exprs {
				fmt.Fprintf(&sb, ", r%d", i)
			}
			sb.WriteString(":\nSEQ\n  a := 3\n  b := 5\n  c := 7\n")
			if par {
				sb.WriteString("  PAR\n")
				for i, e := range exprs {
					fmt.Fprintf(&sb, "    r%d := %s\n", i, e)
				}
			} else {
				sb.WriteString("  SEQ\n")
				for i, e := range exprs {
					fmt.Fprintf(&sb, "    r%d := %s\n", i, e)
				}
			}
			for i := range exprs {
				fmt.Fprintf(&sb, "  screen ! 2; r%d\n", i)
			}
			return sb.String()
		}
		seq := runRandom(t, build(false))
		par := runRandom(t, build(true))
		if len(seq) != len(par) {
			t.Fatalf("round %d: %v vs %v", round, seq, par)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Errorf("round %d result %d: SEQ %d, PAR %d (expr %s)", round, i, seq[i], par[i], exprs[i])
			}
		}
	}
}
