package isa

// Prefix encoding (paper, section 3.2.7).
//
// All instructions are executed by loading the four data bits into the
// least significant four bits of the operand register.  The prefix
// instruction loads its four data bits and shifts the operand register up
// four places; negative prefix complements the operand register before
// shifting.  A sequence of prefixing instructions can therefore extend an
// operand to any length up to the length of the operand register, in a
// form independent of the processor word length.

// EncodeOperand appends to dst the minimal instruction sequence whose
// final byte is the given function with the given (signed) operand, and
// returns the extended slice.
func EncodeOperand(dst []byte, f Function, operand int64) []byte {
	dst = appendPrefixes(dst, operand)
	return append(dst, byte(f)<<4|byte(operand&0xF))
}

// appendPrefixes appends the prefix/negative-prefix sequence needed
// before the final instruction byte carrying the low nibble of v.
func appendPrefixes(dst []byte, v int64) []byte {
	if v >= 0 && v < 16 {
		return dst
	}
	if v < 0 {
		// negative prefix: complement before shifting up.
		dst = appendPrefixes(dst, ^v>>4)
		return append(dst, byte(FnNfix)<<4|byte((^v>>4)&0xF))
	}
	dst = appendPrefixes(dst, v>>4)
	return append(dst, byte(FnPfix)<<4|byte((v>>4)&0xF))
}

// OperandLength returns the number of bytes EncodeOperand will produce
// for the given operand (prefixes plus the final instruction byte).
func OperandLength(operand int64) int {
	if operand >= 0 && operand < 16 {
		return 1
	}
	if operand < 0 {
		return OperandLength(^operand>>4) + 1
	}
	return OperandLength(operand>>4) + 1
}

// EncodeOp appends the instruction sequence for an indirect operation:
// any prefixes required by the operation code, then the operate
// instruction.
func EncodeOp(dst []byte, op Op) []byte {
	return EncodeOperand(dst, FnOpr, int64(op))
}

// MaxInstructionBytes is the longest possible single instruction
// (prefix sequence plus final byte) for a w-bit word.  Each prefix
// contributes four bits of operand.
func MaxInstructionBytes(wordBits int) int {
	return wordBits / 4
}
