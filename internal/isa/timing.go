package isa

// Timing model.
//
// The paper gives cycle counts for its example sequences (sections 3.2.6
// and 3.2.9), for multiply ("7+wordlength" cycles including its prefix
// byte), and for message communication ("the maximum of (24,
// 21+(8*n/wordlength)) cycles including the scheduling overhead",
// section 3.2.10).  This file states per-instruction costs consistent
// with those figures; operations the paper does not time use the
// published IMS T414 counts.  Each prefixing instruction occupies one
// byte and takes one cycle (paper, 3.2.7); the costs below are for the
// final instruction byte alone.
//
// A processor cycle is 50 ns on a 20 MHz part.

// CyclesPerPrefix is the cost of each prefix or negative prefix byte.
const CyclesPerPrefix = 1

// FunctionCycles returns the base cost in processor cycles of a direct
// function (excluding any prefixes).  Functions whose cost depends on
// run-time conditions (conditional jump) return their minimum here; the
// processor core adds the condition-dependent part.
func FunctionCycles(f Function) int {
	switch f {
	case FnJ:
		return 3
	case FnLdlp:
		return 1
	case FnPfix, FnNfix:
		return 1
	case FnLdnl:
		return 2
	case FnLdc:
		return 1
	case FnLdnlp:
		return 1
	case FnLdl:
		return 2
	case FnAdc:
		return 1
	case FnCall:
		return 7
	case FnCj:
		return 2 // +CjTakenExtra when the jump is taken
	case FnAjw:
		return 1
	case FnEqc:
		return 2
	case FnStl:
		return 1
	case FnStnl:
		return 2
	case FnOpr:
		return 0 // cost carried entirely by the operation
	}
	return 1
}

// CjTakenExtra is the additional cost of a conditional jump that is
// taken.
const CjTakenExtra = 2

// OpCycles returns the cost of an indirect operation for the given word
// width, and whether that cost is fixed.  Operations with data- or
// state-dependent cost (communication, block move, shifts, product,
// normalise, timer waits, alternative waits, loop end) report
// fixed=false; the processor computes their cost with the helpers below.
func OpCycles(op Op, wordBits int) (cycles int, fixed bool) {
	switch op {
	case OpRev:
		return 1, true
	case OpLb:
		return 5, true
	case OpBsub:
		return 1, true
	case OpEndp:
		return 13, true
	case OpDiff:
		return 1, true
	case OpAdd:
		return 1, true
	case OpGcall:
		return 4, true
	case OpGt:
		return 2, true
	case OpWsub:
		return 2, true
	case OpSub:
		return 1, true
	case OpStartp:
		return 12, true
	case OpSeterr:
		return 1, true
	case OpResetch:
		return 3, true
	case OpCsub0:
		return 2, true
	case OpStopp:
		return 11, true
	case OpLadd:
		return 2, true
	case OpStlb, OpSthf, OpStlf, OpSthb:
		return 1, true
	case OpLdiv:
		return wordBits + 3, true
	case OpLdpi:
		return 2, true
	case OpXdble:
		return 2, true
	case OpLdpri:
		return 1, true
	case OpRem:
		return wordBits + 5, true
	case OpRet:
		return 5, true
	case OpLdtimer:
		return 2, true
	case OpTesterr:
		return 2, true
	case OpDiv:
		return wordBits + 7, true
	case OpDist:
		return 23, true
	case OpDisc:
		return 8, true
	case OpDiss:
		return 4, true
	case OpLmul:
		return wordBits + 1, true
	case OpNot:
		return 1, true
	case OpXor:
		return 1, true
	case OpBcnt:
		return 2, true
	case OpLsum:
		return 3, true
	case OpLsub:
		return 2, true
	case OpRunp:
		return 10, true
	case OpXword:
		return 4, true
	case OpSb:
		return 4, true
	case OpGajw:
		return 2, true
	case OpSavel, OpSaveh:
		return 4, true
	case OpWcnt:
		return 5, true
	case OpMint:
		return 1, true
	case OpAlt:
		return 2, true
	case OpAltend:
		return 4, true
	case OpAnd, OpOr:
		return 1, true
	case OpEnbt:
		return 8, true
	case OpEnbc:
		return 7, true
	case OpEnbs:
		return 3, true
	case OpCsngl:
		return 3, true
	case OpCcnt1:
		return 3, true
	case OpTalt:
		return 4, true
	case OpLdiff:
		return 3, true
	case OpSum:
		return 1, true
	case OpMul:
		// Paper, 3.2.9: multiply totals 7+wordlength cycles including
		// its single prefix byte, so the operation itself is
		// wordlength+6.
		return wordBits + 6, true
	case OpSttimer:
		return 1, true
	case OpStoperr:
		return 2, true
	case OpCword:
		return 5, true
	case OpClrhalterr, OpSethalterr:
		return 1, true
	case OpTesthalterr:
		return 2, true
	}
	return 0, false
}

// CommunicationCycles is the cost charged to each side of a message
// communication of n bytes, including the scheduling overhead: the
// paper's max(24, 21+(8*n)/wordlength) (section 3.2.10).
func CommunicationCycles(n int, wordBits int) int {
	c := 21 + (8*n)/wordBits
	if c < 24 {
		return 24
	}
	return c
}

// MoveCycles is the cost of the move message (block move) operation
// copying n bytes on a machine with the given word width: the T414 charge
// of 8 cycles plus 2 per word transferred.
func MoveCycles(n int, wordBits int) int {
	words := (n + wordBits/8 - 1) / (wordBits / 8)
	return 8 + 2*words
}

// ShiftCycles is the cost of shift left/right by n places (n+2).
func ShiftCycles(n int) int { return n + 2 }

// LongShiftCycles is the cost of long shift left/right by n places (n+3).
func LongShiftCycles(n int) int { return n + 3 }

// ProdCycles is the cost of the quick unchecked multiply: "the time
// taken is proportional to the logarithm of the second operand" (paper,
// 3.2.9).  b is the number of significant bits in the second operand.
func ProdCycles(b int) int { return b + 4 }

// NormCycles is the cost of normalise when the operand is shifted by n
// places.
func NormCycles(n int) int { return n + 5 }

// LendCycles is the cost of loop end: 10 when the loop repeats, 5 when
// it exits.
func LendCycles(taken bool) int {
	if taken {
		return 10
	}
	return 5
}

// AltwtCycles is the cost of alt wait: 5 when a guard is already ready,
// 17 when the process must wait.
func AltwtCycles(ready bool) int {
	if ready {
		return 5
	}
	return 17
}

// TinCycles is the cost of timer input: 4 when the time has already been
// reached, 30 when the process must join the timer queue.
func TinCycles(expired bool) int {
	if expired {
		return 4
	}
	return 30
}

// Priority switching (paper, 3.2.4): the maximum time to switch from
// priority 1 to priority 0 is 58 cycles; the switch from priority 0 to
// priority 1 takes 17 cycles.
const (
	// PreemptCycles is charged when a high-priority process preempts a
	// running low-priority process (saving the interrupted state).
	PreemptCycles = 11
	// ResumeLowCycles is charged when the processor switches from
	// priority 0 back to priority 1.
	ResumeLowCycles = 17
	// MaxPriority1To0Cycles is the architectural bound on the
	// low-to-high switch, including the longest non-interruptible
	// instruction remainder.
	MaxPriority1To0Cycles = 58
)
