package isa

import "testing"

// TestPaperSequenceCycles reproduces the cycle counts of the paper's
// instruction-sequence tables (sections 3.2.6 and 3.2.9) directly from
// the timing model.
func TestPaperSequenceCycles(t *testing.T) {
	// x := 0  =>  load constant 0 (1) ; store local x (1)   = 2 cycles
	if c := FunctionCycles(FnLdc) + FunctionCycles(FnStl); c != 2 {
		t.Errorf("x := 0 costs %d cycles, want 2", c)
	}
	// x := y  =>  load local y (2) ; store local x (1)      = 3 cycles
	if c := FunctionCycles(FnLdl) + FunctionCycles(FnStl); c != 3 {
		t.Errorf("x := y costs %d cycles, want 3", c)
	}
	// z := 1  =>  ldc 1 (1) ; load local staticlink (2) ; store non
	// local z (2)                                           = 5 cycles
	if c := FunctionCycles(FnLdc) + FunctionCycles(FnLdl) + FunctionCycles(FnStnl); c != 5 {
		t.Errorf("z := 1 costs %d cycles, want 5", c)
	}
	// x + 2   =>  load local x (2) ; add constant 2 (1)     = 3 cycles
	if c := FunctionCycles(FnLdl) + FunctionCycles(FnAdc); c != 3 {
		t.Errorf("x + 2 costs %d cycles, want 3", c)
	}
}

// TestMultiplyCycles: the paper's expression table gives multiply as 2
// bytes and 7+wordlength cycles (one prefix byte plus the operation).
func TestMultiplyCycles(t *testing.T) {
	for _, bits := range []int{16, 32} {
		op, fixed := OpCycles(OpMul, bits)
		if !fixed {
			t.Fatal("mul should have fixed cost")
		}
		total := CyclesPerPrefix + op
		if total != 7+bits {
			t.Errorf("wordBits=%d: multiply total = %d cycles, want %d", bits, total, 7+bits)
		}
	}
}

// TestExpressionTableTotal checks the full (v+w)*(y+z) sequence:
// ldl v(2) ldl w(2) add(1) ldl y(2) ldl z(2) add(1) mul(7+wordlength).
func TestExpressionTableTotal(t *testing.T) {
	add, _ := OpCycles(OpAdd, 32)
	mul, _ := OpCycles(OpMul, 32)
	total := 4*FunctionCycles(FnLdl) + 2*add + (CyclesPerPrefix + mul)
	want := 2 + 2 + 1 + 2 + 2 + 1 + (7 + 32)
	if total != want {
		t.Errorf("(v+w)*(y+z) = %d cycles, want %d", total, want)
	}
}

// TestCommunicationCycles checks the paper's communication formula:
// max(24, 21+(8*n)/wordlength) cycles.
func TestCommunicationCycles(t *testing.T) {
	cases := []struct {
		n, bits, want int
	}{
		{1, 32, 24},   // 21+0 -> floor, clamped to 24
		{4, 32, 24},   // 21+1 = 22 -> 24
		{16, 32, 25},  // 21+4
		{64, 32, 37},  // 21+16
		{256, 32, 85}, // 21+64
		{4, 16, 24},   // 21+2 -> 24
		{64, 16, 53},  // 21+32
	}
	for _, c := range cases {
		if got := CommunicationCycles(c.n, c.bits); got != c.want {
			t.Errorf("CommunicationCycles(%d, %d) = %d, want %d", c.n, c.bits, got, c.want)
		}
	}
}

func TestVariableCostOps(t *testing.T) {
	for _, op := range []Op{OpIn, OpOut, OpOutbyte, OpOutword, OpMove,
		OpShl, OpShr, OpLshl, OpLshr, OpProd, OpNorm, OpLend, OpAltwt,
		OpTaltwt, OpTin} {
		if _, fixed := OpCycles(op, 32); fixed {
			t.Errorf("%s should report a variable cost", op.Name())
		}
	}
}

func TestHelperCosts(t *testing.T) {
	if MoveCycles(16, 32) != 8+2*4 {
		t.Errorf("MoveCycles(16,32) = %d", MoveCycles(16, 32))
	}
	if MoveCycles(1, 32) != 10 {
		t.Errorf("MoveCycles(1,32) = %d", MoveCycles(1, 32))
	}
	if ShiftCycles(5) != 7 || LongShiftCycles(5) != 8 {
		t.Error("shift cycle helpers wrong")
	}
	if ProdCycles(0) != 4 || ProdCycles(8) != 12 {
		t.Error("prod cycle helper wrong")
	}
	if LendCycles(true) != 10 || LendCycles(false) != 5 {
		t.Error("lend cycle helper wrong")
	}
	if AltwtCycles(true) != 5 || AltwtCycles(false) != 17 {
		t.Error("altwt cycle helper wrong")
	}
	if TinCycles(true) != 4 || TinCycles(false) != 30 {
		t.Error("tin cycle helper wrong")
	}
}

// TestPrioritySwitchConstants pins the paper's figures: 58-cycle bound
// for priority 1 to 0, 17 cycles for 0 to 1.
func TestPrioritySwitchConstants(t *testing.T) {
	if MaxPriority1To0Cycles != 58 {
		t.Errorf("MaxPriority1To0Cycles = %d, want 58", MaxPriority1To0Cycles)
	}
	if ResumeLowCycles != 17 {
		t.Errorf("ResumeLowCycles = %d, want 17", ResumeLowCycles)
	}
}
