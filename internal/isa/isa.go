// Package isa defines the I1 instruction set of the first transputers
// (IMS T424 / T222) as described in "The Transputer" (Whitby-Strevens,
// ISCA 1985), section 3.2.
//
// Every instruction is one byte: the four most significant bits are a
// function code and the four least significant bits are a data value
// (figure 4 of the paper).  Thirteen function codes encode the most
// important operations directly; two (prefix and negative prefix) extend
// the operand of the following instruction; the last (operate) treats its
// operand as an operation on the evaluation stack.
//
// Following the paper's convention, instructions carry full names rather
// than mnemonics ("it is not common practice to abbreviate the names of
// the instructions").  The Go identifiers use the conventional short forms
// for brevity, but Name() returns the full names used in the paper.
package isa

import "fmt"

// Function is a direct function code, the high nibble of an instruction
// byte.
type Function uint8

// The sixteen function codes.  The encoding follows the first transputer
// products (T424/T222 family).
const (
	FnJ     Function = 0x0 // jump
	FnLdlp  Function = 0x1 // load local pointer
	FnPfix  Function = 0x2 // prefix
	FnLdnl  Function = 0x3 // load non local
	FnLdc   Function = 0x4 // load constant
	FnLdnlp Function = 0x5 // load non local pointer
	FnNfix  Function = 0x6 // negative prefix
	FnLdl   Function = 0x7 // load local
	FnAdc   Function = 0x8 // add constant
	FnCall  Function = 0x9 // call
	FnCj    Function = 0xA // conditional jump
	FnAjw   Function = 0xB // adjust workspace
	FnEqc   Function = 0xC // equals constant
	FnStl   Function = 0xD // store local
	FnStnl  Function = 0xE // store non local
	FnOpr   Function = 0xF // operate
)

// functionNames holds the full instruction names used in the paper.
var functionNames = [16]string{
	FnJ:     "jump",
	FnLdlp:  "load local pointer",
	FnPfix:  "prefix",
	FnLdnl:  "load non local",
	FnLdc:   "load constant",
	FnLdnlp: "load non local pointer",
	FnNfix:  "negative prefix",
	FnLdl:   "load local",
	FnAdc:   "add constant",
	FnCall:  "call",
	FnCj:    "conditional jump",
	FnAjw:   "adjust workspace",
	FnEqc:   "equals constant",
	FnStl:   "store local",
	FnStnl:  "store non local",
	FnOpr:   "operate",
}

// functionMnemonics holds the conventional short forms, used by the
// assembler.
var functionMnemonics = [16]string{
	FnJ:     "j",
	FnLdlp:  "ldlp",
	FnPfix:  "pfix",
	FnLdnl:  "ldnl",
	FnLdc:   "ldc",
	FnLdnlp: "ldnlp",
	FnNfix:  "nfix",
	FnLdl:   "ldl",
	FnAdc:   "adc",
	FnCall:  "call",
	FnCj:    "cj",
	FnAjw:   "ajw",
	FnEqc:   "eqc",
	FnStl:   "stl",
	FnStnl:  "stnl",
	FnOpr:   "opr",
}

// Name returns the full instruction name from the paper, e.g. "load
// constant".
func (f Function) Name() string {
	if int(f) < len(functionNames) {
		return functionNames[f]
	}
	return fmt.Sprintf("function %#x", uint8(f))
}

// Mnemonic returns the conventional short form, e.g. "ldc".
func (f Function) Mnemonic() string {
	if int(f) < len(functionMnemonics) {
		return functionMnemonics[f]
	}
	return fmt.Sprintf("fn%X", uint8(f))
}

// Op is an indirect operation, selected by the operand of the operate
// function.  Operations beyond 15 require prefixing instructions; "the
// transputer instruction set is not large enough to require more than 512
// operations to be encoded!" (paper, 3.2.8).
type Op uint16

// Operations.  The encoding is chosen so the most frequent operations fit
// in a single byte (values 0-15), as the paper requires; the assignment
// follows the first transputer products.
const (
	OpRev     Op = 0x00 // reverse
	OpLb      Op = 0x01 // load byte
	OpBsub    Op = 0x02 // byte subscript
	OpEndp    Op = 0x03 // end process
	OpDiff    Op = 0x04 // difference
	OpAdd     Op = 0x05 // add
	OpGcall   Op = 0x06 // general call
	OpIn      Op = 0x07 // input message
	OpProd    Op = 0x08 // product
	OpGt      Op = 0x09 // greater than
	OpWsub    Op = 0x0A // word subscript
	OpOut     Op = 0x0B // output message
	OpSub     Op = 0x0C // subtract
	OpStartp  Op = 0x0D // start process
	OpOutbyte Op = 0x0E // output byte
	OpOutword Op = 0x0F // output word

	OpSeterr      Op = 0x10 // set error
	OpResetch     Op = 0x12 // reset channel
	OpCsub0       Op = 0x13 // check subscript from 0
	OpStopp       Op = 0x15 // stop process
	OpLadd        Op = 0x16 // long add
	OpStlb        Op = 0x17 // store low priority back pointer
	OpSthf        Op = 0x18 // store high priority front pointer
	OpNorm        Op = 0x19 // normalise
	OpLdiv        Op = 0x1A // long divide
	OpLdpi        Op = 0x1B // load pointer to instruction
	OpStlf        Op = 0x1C // store low priority front pointer
	OpXdble       Op = 0x1D // extend to double
	OpLdpri       Op = 0x1E // load current priority
	OpRem         Op = 0x1F // remainder
	OpRet         Op = 0x20 // return
	OpLend        Op = 0x21 // loop end
	OpLdtimer     Op = 0x22 // load timer
	OpTesterr     Op = 0x29 // test error false and clear
	OpTin         Op = 0x2B // timer input
	OpDiv         Op = 0x2C // divide
	OpDist        Op = 0x2E // disable timer
	OpDisc        Op = 0x2F // disable channel
	OpDiss        Op = 0x30 // disable skip
	OpLmul        Op = 0x31 // long multiply
	OpNot         Op = 0x32 // bitwise not
	OpXor         Op = 0x33 // exclusive or
	OpBcnt        Op = 0x34 // byte count
	OpLshr        Op = 0x35 // long shift right
	OpLshl        Op = 0x36 // long shift left
	OpLsum        Op = 0x37 // long sum
	OpLsub        Op = 0x38 // long subtract
	OpRunp        Op = 0x39 // run process
	OpXword       Op = 0x3A // extend to word
	OpSb          Op = 0x3B // store byte
	OpGajw        Op = 0x3C // general adjust workspace
	OpSavel       Op = 0x3D // save low priority queue registers
	OpSaveh       Op = 0x3E // save high priority queue registers
	OpWcnt        Op = 0x3F // word count
	OpShr         Op = 0x40 // shift right
	OpShl         Op = 0x41 // shift left
	OpMint        Op = 0x42 // minimum integer
	OpAlt         Op = 0x43 // alt start
	OpAltwt       Op = 0x44 // alt wait
	OpAltend      Op = 0x45 // alt end
	OpAnd         Op = 0x46 // and
	OpEnbt        Op = 0x47 // enable timer
	OpEnbc        Op = 0x48 // enable channel
	OpEnbs        Op = 0x49 // enable skip
	OpMove        Op = 0x4A // move message
	OpOr          Op = 0x4B // or
	OpCsngl       Op = 0x4C // check single
	OpCcnt1       Op = 0x4D // check count from 1
	OpTalt        Op = 0x4E // timer alt start
	OpLdiff       Op = 0x4F // long difference
	OpSthb        Op = 0x50 // store high priority back pointer
	OpTaltwt      Op = 0x51 // timer alt wait
	OpSum         Op = 0x52 // sum
	OpMul         Op = 0x53 // multiply
	OpSttimer     Op = 0x54 // store timer
	OpStoperr     Op = 0x55 // stop on error
	OpCword       Op = 0x56 // check word
	OpClrhalterr  Op = 0x57 // clear halt-on-error
	OpSethalterr  Op = 0x58 // set halt-on-error
	OpTesthalterr Op = 0x59 // test halt-on-error
)

// opName pairs an operation with its full paper-style name and mnemonic.
type opName struct {
	op       Op
	name     string
	mnemonic string
}

var opNames = []opName{
	{OpRev, "reverse", "rev"},
	{OpLb, "load byte", "lb"},
	{OpBsub, "byte subscript", "bsub"},
	{OpEndp, "end process", "endp"},
	{OpDiff, "difference", "diff"},
	{OpAdd, "add", "add"},
	{OpGcall, "general call", "gcall"},
	{OpIn, "input message", "in"},
	{OpProd, "product", "prod"},
	{OpGt, "greater than", "gt"},
	{OpWsub, "word subscript", "wsub"},
	{OpOut, "output message", "out"},
	{OpSub, "subtract", "sub"},
	{OpStartp, "start process", "startp"},
	{OpOutbyte, "output byte", "outbyte"},
	{OpOutword, "output word", "outword"},
	{OpSeterr, "set error", "seterr"},
	{OpResetch, "reset channel", "resetch"},
	{OpCsub0, "check subscript from 0", "csub0"},
	{OpStopp, "stop process", "stopp"},
	{OpLadd, "long add", "ladd"},
	{OpStlb, "store low priority back pointer", "stlb"},
	{OpSthf, "store high priority front pointer", "sthf"},
	{OpNorm, "normalise", "norm"},
	{OpLdiv, "long divide", "ldiv"},
	{OpLdpi, "load pointer to instruction", "ldpi"},
	{OpStlf, "store low priority front pointer", "stlf"},
	{OpXdble, "extend to double", "xdble"},
	{OpLdpri, "load current priority", "ldpri"},
	{OpRem, "remainder", "rem"},
	{OpRet, "return", "ret"},
	{OpLend, "loop end", "lend"},
	{OpLdtimer, "load timer", "ldtimer"},
	{OpTesterr, "test error false and clear", "testerr"},
	{OpTin, "timer input", "tin"},
	{OpDiv, "divide", "div"},
	{OpDist, "disable timer", "dist"},
	{OpDisc, "disable channel", "disc"},
	{OpDiss, "disable skip", "diss"},
	{OpLmul, "long multiply", "lmul"},
	{OpNot, "bitwise not", "not"},
	{OpXor, "exclusive or", "xor"},
	{OpBcnt, "byte count", "bcnt"},
	{OpLshr, "long shift right", "lshr"},
	{OpLshl, "long shift left", "lshl"},
	{OpLsum, "long sum", "lsum"},
	{OpLsub, "long subtract", "lsub"},
	{OpRunp, "run process", "runp"},
	{OpXword, "extend to word", "xword"},
	{OpSb, "store byte", "sb"},
	{OpGajw, "general adjust workspace", "gajw"},
	{OpSavel, "save low priority queue registers", "savel"},
	{OpSaveh, "save high priority queue registers", "saveh"},
	{OpWcnt, "word count", "wcnt"},
	{OpShr, "shift right", "shr"},
	{OpShl, "shift left", "shl"},
	{OpMint, "minimum integer", "mint"},
	{OpAlt, "alt start", "alt"},
	{OpAltwt, "alt wait", "altwt"},
	{OpAltend, "alt end", "altend"},
	{OpAnd, "and", "and"},
	{OpEnbt, "enable timer", "enbt"},
	{OpEnbc, "enable channel", "enbc"},
	{OpEnbs, "enable skip", "enbs"},
	{OpMove, "move message", "move"},
	{OpOr, "or", "or"},
	{OpCsngl, "check single", "csngl"},
	{OpCcnt1, "check count from 1", "ccnt1"},
	{OpTalt, "timer alt start", "talt"},
	{OpLdiff, "long difference", "ldiff"},
	{OpSthb, "store high priority back pointer", "sthb"},
	{OpTaltwt, "timer alt wait", "taltwt"},
	{OpSum, "sum", "sum"},
	{OpMul, "multiply", "mul"},
	{OpSttimer, "store timer", "sttimer"},
	{OpStoperr, "stop on error", "stoperr"},
	{OpCword, "check word", "cword"},
	{OpClrhalterr, "clear halt-on-error", "clrhalterr"},
	{OpSethalterr, "set halt-on-error", "sethalterr"},
	{OpTesthalterr, "test halt-on-error", "testhalterr"},
}

var (
	opNameByOp     = map[Op]string{}
	opMnemonicByOp = map[Op]string{}
	opByMnemonic   = map[string]Op{}
	fnByMnemonic   = map[string]Function{}
)

func init() {
	for _, e := range opNames {
		opNameByOp[e.op] = e.name
		opMnemonicByOp[e.op] = e.mnemonic
		opByMnemonic[e.mnemonic] = e.op
	}
	for f, m := range functionMnemonics {
		fnByMnemonic[m] = Function(f)
	}
}

// Name returns the full operation name, e.g. "input message".
func (o Op) Name() string {
	if n, ok := opNameByOp[o]; ok {
		return n
	}
	return fmt.Sprintf("operation %#x", uint16(o))
}

// Mnemonic returns the conventional short form, e.g. "in".
func (o Op) Mnemonic() string {
	if m, ok := opMnemonicByOp[o]; ok {
		return m
	}
	return fmt.Sprintf("opr%X", uint16(o))
}

// Defined reports whether o is an operation this implementation defines.
func (o Op) Defined() bool {
	_, ok := opNameByOp[o]
	return ok
}

// OpByMnemonic looks up an operation by its short form.
func OpByMnemonic(m string) (Op, bool) {
	o, ok := opByMnemonic[m]
	return o, ok
}

// FunctionByMnemonic looks up a direct function by its short form.
func FunctionByMnemonic(m string) (Function, bool) {
	f, ok := fnByMnemonic[m]
	return f, ok
}

// Ops returns all defined operations in encoding order.
func Ops() []Op {
	out := make([]Op, 0, len(opNames))
	for _, e := range opNames {
		out = append(out, e.op)
	}
	return out
}
