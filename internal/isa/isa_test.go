package isa

import (
	"testing"
)

func TestFunctionNames(t *testing.T) {
	cases := []struct {
		f        Function
		name     string
		mnemonic string
	}{
		{FnLdc, "load constant", "ldc"},
		{FnAdc, "add constant", "adc"},
		{FnLdl, "load local", "ldl"},
		{FnStl, "store local", "stl"},
		{FnLdlp, "load local pointer", "ldlp"},
		{FnLdnl, "load non local", "ldnl"},
		{FnStnl, "store non local", "stnl"},
		{FnJ, "jump", "j"},
		{FnCj, "conditional jump", "cj"},
		{FnCall, "call", "call"},
		{FnPfix, "prefix", "pfix"},
		{FnNfix, "negative prefix", "nfix"},
		{FnOpr, "operate", "opr"},
	}
	for _, c := range cases {
		if got := c.f.Name(); got != c.name {
			t.Errorf("%v.Name() = %q, want %q", c.f, got, c.name)
		}
		if got := c.f.Mnemonic(); got != c.mnemonic {
			t.Errorf("%v.Mnemonic() = %q, want %q", c.f, got, c.mnemonic)
		}
		if f, ok := FunctionByMnemonic(c.mnemonic); !ok || f != c.f {
			t.Errorf("FunctionByMnemonic(%q) = %v,%v", c.mnemonic, f, ok)
		}
	}
}

// TestThirteenDirectFunctions checks the paper's claim that thirteen of
// the sixteen function codes encode direct operations (the other three
// being prefix, negative prefix and operate).
func TestThirteenDirectFunctions(t *testing.T) {
	direct := 0
	for f := Function(0); f < 16; f++ {
		switch f {
		case FnPfix, FnNfix, FnOpr:
		default:
			direct++
		}
	}
	if direct != 13 {
		t.Fatalf("direct function count = %d, want 13", direct)
	}
}

func TestOpNames(t *testing.T) {
	cases := []struct {
		op       Op
		name     string
		mnemonic string
	}{
		{OpIn, "input message", "in"},
		{OpOut, "output message", "out"},
		{OpStartp, "start process", "startp"},
		{OpEndp, "end process", "endp"},
		{OpAdd, "add", "add"},
		{OpMul, "multiply", "mul"},
		{OpMove, "move message", "move"},
		{OpAltwt, "alt wait", "altwt"},
	}
	for _, c := range cases {
		if got := c.op.Name(); got != c.name {
			t.Errorf("%v.Name() = %q, want %q", c.op, got, c.name)
		}
		if got := c.op.Mnemonic(); got != c.mnemonic {
			t.Errorf("%v.Mnemonic() = %q, want %q", c.op, got, c.mnemonic)
		}
		if op, ok := OpByMnemonic(c.mnemonic); !ok || op != c.op {
			t.Errorf("OpByMnemonic(%q) = %v,%v", c.mnemonic, op, ok)
		}
	}
}

// TestFrequentOpsSingleByte checks the encoding choice the paper calls
// out: the most frequently occurring operations are representable
// without a prefixing instruction.
func TestFrequentOpsSingleByte(t *testing.T) {
	frequent := []Op{
		OpAdd, OpSub, OpGt, OpIn, OpOut, OpStartp, OpEndp, OpProd,
		OpRev, OpLb, OpBsub, OpWsub, OpDiff, OpGcall, OpOutbyte, OpOutword,
	}
	for _, op := range frequent {
		if got := len(EncodeOp(nil, op)); got != 1 {
			t.Errorf("%s encodes in %d bytes, want 1", op.Name(), got)
		}
	}
	// Less frequent operations need exactly one prefixing instruction;
	// nothing requires more than that (operations < 256).
	for _, op := range Ops() {
		n := len(EncodeOp(nil, op))
		if op < 16 && n != 1 {
			t.Errorf("%s: %d bytes, want 1", op.Name(), n)
		}
		if op >= 16 && n != 2 {
			t.Errorf("%s: %d bytes, want 2", op.Name(), n)
		}
	}
}

func TestOpDefined(t *testing.T) {
	if !OpMul.Defined() {
		t.Error("mul should be defined")
	}
	if Op(0x1FF).Defined() {
		t.Error("0x1FF should not be defined")
	}
}

func TestOpsOrderedAndUnique(t *testing.T) {
	seen := map[Op]bool{}
	for _, op := range Ops() {
		if seen[op] {
			t.Fatalf("duplicate operation code %#x", uint16(op))
		}
		seen[op] = true
	}
	if len(seen) < 70 {
		t.Fatalf("only %d operations defined; expected a substantial set", len(seen))
	}
}
