package isa

// Instr is one decoded instruction: a direct function with its fully
// prefixed operand, or (when Fn == FnOpr) an indirect operation.
type Instr struct {
	Fn      Function
	Operand int64 // accumulated operand after prefixing
	Size    int   // total bytes consumed, including prefixes
}

// IsOp reports whether the instruction is an indirect operation.
func (i Instr) IsOp() bool { return i.Fn == FnOpr }

// Op returns the indirect operation selected by an operate instruction.
func (i Instr) Op() Op { return Op(i.Operand) }

// String renders the instruction using full paper-style names, e.g.
// "load constant 4" or "input message".
func (i Instr) String() string {
	if i.IsOp() {
		return i.Op().Name()
	}
	return fullWithOperand(i.Fn.Name(), i.Operand)
}

// Mnemonic renders the instruction in assembler short form, e.g. "ldc 4"
// or "in".
func (i Instr) Mnemonic() string {
	if i.IsOp() {
		return i.Op().Mnemonic()
	}
	return fullWithOperand(i.Fn.Mnemonic(), i.Operand)
}

func fullWithOperand(name string, operand int64) string {
	return name + " " + itoa(operand)
}

// itoa avoids pulling strconv into the hot disassembly path; it renders a
// signed decimal.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [21]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Decode reads one complete instruction (prefix sequence plus final
// function byte) from code starting at pc.  It mirrors the operand
// register mechanism: prefix shifts the accumulated operand up four
// places; negative prefix complements it first.  ok is false if the
// prefix sequence runs off the end of code.
func Decode(code []byte, pc int) (instr Instr, ok bool) {
	var oreg int64
	size := 0
	for pc+size < len(code) {
		b := code[pc+size]
		size++
		fn := Function(b >> 4)
		data := int64(b & 0xF)
		switch fn {
		case FnPfix:
			oreg = (oreg | data) << 4
		case FnNfix:
			oreg = ^(oreg | data) << 4
		default:
			return Instr{Fn: fn, Operand: oreg | data, Size: size}, true
		}
	}
	return Instr{}, false
}
