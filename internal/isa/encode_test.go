package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeSmallOperand(t *testing.T) {
	for v := int64(0); v < 16; v++ {
		got := EncodeOperand(nil, FnLdc, v)
		want := []byte{byte(FnLdc)<<4 | byte(v)}
		if len(got) != 1 || got[0] != want[0] {
			t.Errorf("EncodeOperand(ldc, %d) = % X, want % X", v, got, want)
		}
	}
}

// TestEncode754 reproduces the paper's prefix example (section 3.2.7):
// loading hexadecimal #754 takes "prefix #7; prefix #5; load constant #4".
func TestEncode754(t *testing.T) {
	got := EncodeOperand(nil, FnLdc, 0x754)
	want := []byte{
		byte(FnPfix)<<4 | 0x7,
		byte(FnPfix)<<4 | 0x5,
		byte(FnLdc)<<4 | 0x4,
	}
	if len(got) != len(want) {
		t.Fatalf("encoded % X, want % X", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("encoded % X, want % X", got, want)
		}
	}
}

// TestEncodeNegative checks the negative prefix mechanism: operands in
// the range -256..255 need at most one prefixing instruction (paper,
// 3.2.7).
func TestEncodeNegative(t *testing.T) {
	for v := int64(-256); v < 256; v++ {
		n := len(EncodeOperand(nil, FnJ, v))
		if n > 2 {
			t.Errorf("operand %d encoded in %d bytes, want <= 2", v, n)
		}
	}
	// -1 is nfix 0; j -1.
	got := EncodeOperand(nil, FnJ, -1)
	want := []byte{byte(FnNfix) << 4, byte(FnJ)<<4 | 0xF}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("EncodeOperand(j, -1) = % X, want % X", got, want)
	}
}

// TestEncodeDecodeRoundTrip is the core property of the prefixing
// scheme: for any signed operand, decode(encode(v)) == v.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(v int64, fnRaw uint8) bool {
		fn := Function(fnRaw % 16)
		if fn == FnPfix || fn == FnNfix {
			fn = FnLdc
		}
		code := EncodeOperand(nil, fn, v)
		instr, ok := Decode(code, 0)
		return ok && instr.Fn == fn && instr.Operand == v && instr.Size == len(code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestEncodeMinimal verifies the encoder emits the minimal prefix
// sequence: encoding v must not be longer than encoding any value with
// larger magnitude, and the length must match OperandLength.
func TestEncodeMinimal(t *testing.T) {
	f := func(v int64) bool {
		return len(EncodeOperand(nil, FnLdc, v)) == OperandLength(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	cases := []struct {
		v int64
		n int
	}{
		{0, 1}, {15, 1}, {16, 2}, {255, 2}, {256, 3},
		{-1, 2}, {-256, 2}, {-257, 3},
		{0x754, 3}, {0x7FFFFFFF, 8}, {-0x80000000, 8},
	}
	for _, c := range cases {
		if got := OperandLength(c.v); got != c.n {
			t.Errorf("OperandLength(%d) = %d, want %d", c.v, got, c.n)
		}
	}
}

// TestWordLengthIndependentEncoding: the same operand encodes to the
// same bytes regardless of target word length — the byte stream is what
// word-length independence rests on (paper, 3.3).
func TestWordLengthIndependentEncoding(t *testing.T) {
	for _, v := range []int64{0, 5, 100, -7, 3000, -3000} {
		a := EncodeOperand(nil, FnLdc, v)
		b := EncodeOperand(nil, FnLdc, v) // no word-length parameter exists
		if string(a) != string(b) {
			t.Fatalf("encoding of %d not deterministic", v)
		}
	}
	if MaxInstructionBytes(32) != 8 || MaxInstructionBytes(16) != 4 {
		t.Errorf("MaxInstructionBytes: got %d/%d, want 8/4",
			MaxInstructionBytes(32), MaxInstructionBytes(16))
	}
}

func TestDecodeIncomplete(t *testing.T) {
	code := []byte{byte(FnPfix)<<4 | 0x7} // prefix with no final byte
	if _, ok := Decode(code, 0); ok {
		t.Error("Decode of bare prefix should fail")
	}
	if _, ok := Decode(nil, 0); ok {
		t.Error("Decode of empty code should fail")
	}
}

func TestEncodeOpPrefixing(t *testing.T) {
	// mul is operation 0x53: pfix 5; opr 3.
	got := EncodeOp(nil, OpMul)
	want := []byte{byte(FnPfix)<<4 | 0x5, byte(FnOpr)<<4 | 0x3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("EncodeOp(mul) = % X, want % X", got, want)
	}
	instr, ok := Decode(got, 0)
	if !ok || !instr.IsOp() || instr.Op() != OpMul {
		t.Errorf("Decode(EncodeOp(mul)) = %+v, %v", instr, ok)
	}
}
