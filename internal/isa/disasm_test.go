package isa

import (
	"strings"
	"testing"
)

func TestDisassembleSimple(t *testing.T) {
	var code []byte
	code = EncodeOperand(code, FnLdc, 0)
	code = EncodeOperand(code, FnStl, 1)
	code = EncodeOp(code, OpIn)
	code = EncodeOp(code, OpMul)

	lines := DisassembleAll(code)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	wantMnemonics := []string{"ldc 0", "stl 1", "in", "mul"}
	wantNames := []string{"load constant 0", "store local 1", "input message", "multiply"}
	for i, ln := range lines {
		if ln.Instr.Mnemonic() != wantMnemonics[i] {
			t.Errorf("line %d mnemonic = %q, want %q", i, ln.Instr.Mnemonic(), wantMnemonics[i])
		}
		if ln.Instr.String() != wantNames[i] {
			t.Errorf("line %d name = %q, want %q", i, ln.Instr.String(), wantNames[i])
		}
	}
}

func TestDisassembleOffsets(t *testing.T) {
	var code []byte
	code = EncodeOperand(code, FnLdc, 0x754) // 3 bytes
	code = EncodeOperand(code, FnJ, -20)     // nfix + j
	lines := DisassembleAll(code)
	if lines[0].Offset != 0 || lines[1].Offset != 3 {
		t.Errorf("offsets = %d,%d, want 0,3", lines[0].Offset, lines[1].Offset)
	}
	if lines[1].Instr.Operand != -20 {
		t.Errorf("jump operand = %d, want -20", lines[1].Instr.Operand)
	}
}

func TestDisassembleIncompleteTail(t *testing.T) {
	code := []byte{byte(FnLdc) << 4, byte(FnPfix)<<4 | 1}
	lines := DisassembleAll(code)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[1].Instr.Size != 0 {
		t.Error("trailing prefix should be flagged incomplete")
	}
	s := Sdisassemble(code)
	if !strings.Contains(s, "incomplete") {
		t.Errorf("listing should mention incomplete tail:\n%s", s)
	}
}

func TestSdisassembleFormat(t *testing.T) {
	code := EncodeOperand(nil, FnLdc, 4)
	s := Sdisassemble(code)
	if !strings.Contains(s, "ldc 4") || !strings.Contains(s, "load constant 4") {
		t.Errorf("unexpected listing:\n%s", s)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int64]string{0: "0", 7: "7", -7: "-7", 754: "754", -256: "-256"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
