package isa

import (
	"strings"
	"testing"
)

func TestUnknownNamesFallBack(t *testing.T) {
	if got := Op(0x1F0).Name(); !strings.Contains(got, "0x1f0") {
		t.Errorf("unknown op name = %q", got)
	}
	if got := Op(0x1F0).Mnemonic(); !strings.Contains(got, "opr") {
		t.Errorf("unknown op mnemonic = %q", got)
	}
	if _, ok := OpByMnemonic("nonesuch"); ok {
		t.Error("nonexistent mnemonic should not resolve")
	}
	if _, ok := FunctionByMnemonic("nonesuch"); ok {
		t.Error("nonexistent function mnemonic should not resolve")
	}
}

func TestInstrStringForms(t *testing.T) {
	code := EncodeOperand(nil, FnAdc, -3)
	instr, _ := Decode(code, 0)
	if instr.String() != "add constant -3" {
		t.Errorf("String() = %q", instr.String())
	}
	if instr.Mnemonic() != "adc -3" {
		t.Errorf("Mnemonic() = %q", instr.Mnemonic())
	}
	op := EncodeOp(nil, OpStartp)
	oi, _ := Decode(op, 0)
	if oi.String() != "start process" || oi.Mnemonic() != "startp" {
		t.Errorf("op forms: %q %q", oi.String(), oi.Mnemonic())
	}
}

func TestFunctionCyclesAll(t *testing.T) {
	for f := Function(0); f < 16; f++ {
		if c := FunctionCycles(f); c < 0 || c > 7 {
			t.Errorf("%s cycles = %d", f.Name(), c)
		}
	}
}

func TestOpCyclesPlausible(t *testing.T) {
	for _, op := range Ops() {
		c, fixed := OpCycles(op, 32)
		if fixed && (c <= 0 || c > 64) {
			t.Errorf("%s cycles = %d", op.Name(), c)
		}
	}
}

// TestPaperFrequentOpsSingleCycle: the paper notes "many of the
// instructions execute in a single cycle".
func TestPaperFrequentOpsSingleCycle(t *testing.T) {
	single := []Op{OpAdd, OpSub, OpDiff, OpSum, OpAnd, OpOr, OpXor, OpNot, OpRev, OpMint, OpBsub}
	for _, op := range single {
		if c, fixed := OpCycles(op, 32); !fixed || c != 1 {
			t.Errorf("%s should be one cycle, got %d", op.Name(), c)
		}
	}
	for _, f := range []Function{FnLdc, FnStl, FnAdc, FnLdlp, FnLdnlp, FnAjw} {
		if FunctionCycles(f) != 1 {
			t.Errorf("%s should be one cycle", f.Name())
		}
	}
}
