package isa

import (
	"fmt"
	"io"
	"strings"
)

// DisasmLine is one disassembled instruction.
type DisasmLine struct {
	Offset int    // byte offset of the first (prefix) byte
	Bytes  []byte // raw instruction bytes
	Instr  Instr
}

// DisassembleAll decodes an entire code image into lines.  Trailing
// bytes that do not form a complete instruction are returned as a final
// line with Instr.Size == 0.
func DisassembleAll(code []byte) []DisasmLine {
	var lines []DisasmLine
	pc := 0
	for pc < len(code) {
		instr, ok := Decode(code, pc)
		if !ok {
			lines = append(lines, DisasmLine{Offset: pc, Bytes: code[pc:]})
			break
		}
		lines = append(lines, DisasmLine{
			Offset: pc,
			Bytes:  code[pc : pc+instr.Size],
			Instr:  instr,
		})
		pc += instr.Size
	}
	return lines
}

// Fdisassemble writes a listing of the code image to w: offset, raw
// bytes, short mnemonic, and the full paper-style name.
func Fdisassemble(w io.Writer, code []byte) error {
	for _, ln := range DisassembleAll(code) {
		hex := make([]string, len(ln.Bytes))
		for i, b := range ln.Bytes {
			hex[i] = fmt.Sprintf("%02X", b)
		}
		if ln.Instr.Size == 0 {
			if _, err := fmt.Fprintf(w, "%06X  %-16s  <incomplete prefix sequence>\n",
				ln.Offset, strings.Join(hex, " ")); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%06X  %-16s  %-12s  %s\n",
			ln.Offset, strings.Join(hex, " "), ln.Instr.Mnemonic(), ln.Instr.String()); err != nil {
			return err
		}
	}
	return nil
}

// Sdisassemble returns the listing as a string.
func Sdisassemble(code []byte) string {
	var sb strings.Builder
	_ = Fdisassemble(&sb, code)
	return sb.String()
}
