package fault

import (
	"testing"

	"transputer/internal/sim"
)

func TestParseKind(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("meltdown"); err == nil {
		t.Error("ParseKind accepted unknown kind")
	}
}

func TestRuleValidate(t *testing.T) {
	bad := []Rule{
		{Kind: Drop, Rate: -0.1},
		{Kind: Corrupt, Rate: 1.5},
		{Kind: Jitter, Rate: 0.5, Max: 0},
		{Kind: Sever, At: 0},
		{Kind: Halt, At: -1},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %+v validated", r)
		}
	}
	good := []Rule{
		{Kind: Drop, Rate: 0.5},
		{Kind: Jitter, Rate: 1, Max: sim.Microsecond},
		{Kind: Sever, At: sim.Millisecond},
	}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("rule %+v rejected: %v", r, err)
		}
	}
}

// TestHookDeterminism: the same plan yields bit-identical fault
// decisions across injectors, and different seeds yield different ones.
func TestHookDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{
		{Kind: Drop, Node: "n0", Link: 1, Rate: 0.3},
		{Kind: Corrupt, Node: "n0", Link: 1, Rate: 0.2},
	}}
	run := func(seed uint64) []FaultSample {
		inj, err := NewInjector(Plan{Seed: seed, Rules: plan.Rules})
		if err != nil {
			t.Fatal(err)
		}
		hook := inj.WireHook("n0", 1)
		if hook == nil {
			t.Fatal("no hook for targeted end")
		}
		var out []FaultSample
		for i := 0; i < 500; i++ {
			a := hook(i%7 == 0)
			out = append(out, FaultSample{a.Drop, a.Corrupt, a.Delay})
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical decision streams")
	}
}

type FaultSample struct {
	drop    bool
	corrupt byte
	delay   sim.Time
}

// TestHookRates: observed fault frequencies track the configured rates.
func TestHookRates(t *testing.T) {
	inj, _ := NewInjector(Plan{Seed: 7, Rules: []Rule{
		{Kind: Drop, Node: "n", Link: 0, Pkt: DataPacket, Rate: 0.25},
		{Kind: Jitter, Node: "n", Link: 0, Rate: 0.5, Max: 100},
	}})
	hook := inj.WireHook("n", 0)
	const trials = 20000
	drops, delays := 0, 0
	for i := 0; i < trials; i++ {
		a := hook(false)
		if a.Drop {
			drops++
		}
		if a.Delay > 0 {
			delays++
			if a.Delay > 100 {
				t.Fatalf("jitter %v exceeds max", a.Delay)
			}
		}
	}
	if f := float64(drops) / trials; f < 0.22 || f > 0.28 {
		t.Errorf("drop rate %.3f, want ~0.25", f)
	}
	if f := float64(delays) / trials; f < 0.46 || f > 0.54 {
		t.Errorf("jitter rate %.3f, want ~0.5", f)
	}
	// The data-only drop rule must leave control packets alone.
	ctlDrops := 0
	for i := 0; i < trials; i++ {
		if hook(true).Drop {
			ctlDrops++
		}
	}
	if ctlDrops != 0 {
		t.Errorf("data-only rule dropped %d control packets", ctlDrops)
	}
}

// TestHookTargeting: hooks exist only for targeted ends, and timed rules
// are excluded from the per-packet path.
func TestHookTargeting(t *testing.T) {
	inj, _ := NewInjector(Plan{Seed: 1, Rules: []Rule{
		{Kind: Drop, Node: "n0", Link: 2, Rate: 1},
		{Kind: Sever, Node: "n1", Link: 0, At: sim.Millisecond},
		{Kind: Halt, Node: "n2", Link: -1, At: sim.Millisecond},
	}})
	if inj.WireHook("n0", 2) == nil {
		t.Error("missing hook for n0.2")
	}
	if inj.WireHook("n0", 1) != nil || inj.WireHook("n1", 0) != nil {
		t.Error("hook built for untargeted or timed-only end")
	}
	timed := inj.Timed()
	if len(timed) != 2 || timed[0].Kind != Sever || timed[1].Kind != Halt {
		t.Errorf("Timed() = %+v", timed)
	}
}
