// Package fault is the deterministic fault-injection subsystem: seeded,
// scriptable plans of wire-layer and node-layer faults, driven from
// `fault` directives in a topology file (or built programmatically) and
// applied to a system before it runs.
//
// The paper's link protocol assumes perfect wires; this package is how
// the simulation stops assuming.  A plan injects bit corruption, data
// or acknowledge packet loss, jitter, link severs at a given simulated
// time, and node halts — all derived from a single seed, so a campaign
// replays identically, packet for packet, run after run.
//
// Randomness comes from one splitmix64 stream per targeted link end
// (seeded from the plan seed and the end's name), so the decisions on
// one wire are independent of traffic on any other and a topology
// change on one link does not reshuffle the faults on the rest.
package fault

import (
	"fmt"

	"transputer/internal/link"
	"transputer/internal/sim"
)

// Kind is the type of one fault rule.
type Kind uint8

const (
	// Corrupt flips random payload bits of data packets at a given rate.
	Corrupt Kind = iota
	// Drop loses packets in transit at a given rate; Pkt selects which
	// packet class is affected.
	Drop
	// Jitter delays packets at a given rate by a random amount up to
	// Max.
	Jitter
	// Sever cuts both wires of a link at simulated time At.
	Sever
	// Halt stops a node's processor at simulated time At and cuts all
	// its links, as if the board lost power.
	Halt
	// Restart revives a node previously stopped by Halt at simulated
	// time At: power returns to a battery-backed board — the processor
	// resumes with its frozen state, links are restored and
	// resynchronised, and the node rejoins the network.
	Restart

	numKinds
)

var kindNames = [numKinds]string{
	Corrupt: "corrupt",
	Drop:    "drop",
	Jitter:  "jitter",
	Sever:   "sever",
	Halt:    "halt",
	Restart: "restart",
}

// String names the fault kind as spelled in topology files.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind reads a fault kind as spelled in topology files.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// PacketClass selects which packets a Drop rule affects.
type PacketClass uint8

const (
	// AnyPacket drops data and control packets alike.
	AnyPacket PacketClass = iota
	// DataPacket drops only data packets.
	DataPacket
	// CtlPacket drops only control packets (acknowledges and naks).
	CtlPacket
)

// ParsePacketClass reads a packet class as spelled in topology files.
func ParsePacketClass(s string) (PacketClass, error) {
	switch s {
	case "any":
		return AnyPacket, nil
	case "data":
		return DataPacket, nil
	case "ack", "ctl":
		return CtlPacket, nil
	}
	return 0, fmt.Errorf("fault: unknown packet class %q (want data, ack or any)", s)
}

// Rule is one scripted fault.  Probabilistic rules (Corrupt, Drop,
// Jitter) target the outgoing wire of the named link end; Sever cuts
// both wires of the link at that end; Halt targets a whole node and
// ignores Link.
type Rule struct {
	Kind Kind
	Node string
	Link int // -1 for Halt
	Pkt  PacketClass
	// Rate is the per-packet probability in [0,1] for probabilistic
	// rules.
	Rate float64
	// At is the trigger time for Sever and Halt.
	At sim.Time
	// Max bounds the extra delay of a Jitter rule.
	Max sim.Time
}

// Timed reports whether the rule fires once at a scheduled instant
// rather than probabilistically per packet.
func (r Rule) Timed() bool { return r.Kind == Sever || r.Kind == Halt || r.Kind == Restart }

// Validate checks a rule's parameters.
func (r Rule) Validate() error {
	switch r.Kind {
	case Corrupt, Drop, Jitter:
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("fault: %s rate %g out of range [0,1]", r.Kind, r.Rate)
		}
		if r.Kind == Jitter && r.Max <= 0 {
			return fmt.Errorf("fault: jitter needs max > 0")
		}
	case Sever, Halt, Restart:
		if r.At <= 0 {
			return fmt.Errorf("fault: %s needs at > 0", r.Kind)
		}
	}
	return nil
}

// Plan is a complete seeded fault campaign.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Empty reports a plan with nothing to inject.
func (p Plan) Empty() bool { return len(p.Rules) == 0 }

// Validate checks every rule, and the plan-level constraint that a
// Restart revives a node some Halt stopped strictly earlier.
func (p Plan) Validate() error {
	for i, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	for i, r := range p.Rules {
		if r.Kind != Restart {
			continue
		}
		halted := false
		for _, h := range p.Rules {
			if h.Kind == Halt && h.Node == r.Node && h.At < r.At {
				halted = true
				break
			}
		}
		if !halted {
			return fmt.Errorf("rule %d: restart of %q needs an earlier halt of the same node", i, r.Node)
		}
	}
	return nil
}

// rng is a splitmix64 stream: tiny, fast and stable across Go versions,
// which keeps campaigns reproducible independent of the standard
// library's generator.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// fnv1a hashes a string (FNV-1a 64), used to derive per-end seeds.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Injector turns a plan into per-wire hooks.  Build one per system run;
// the per-end random streams are created lazily and advance only with
// that end's traffic.
type Injector struct {
	plan Plan
}

// NewInjector validates the plan and prepares an injector.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan}, nil
}

// Timed returns the plan's scheduled rules (severs and halts).
func (inj *Injector) Timed() []Rule {
	var out []Rule
	for _, r := range inj.plan.Rules {
		if r.Timed() {
			out = append(out, r)
		}
	}
	return out
}

// WireHook builds the fault hook for the outgoing wire of one link end,
// or nil when no probabilistic rule targets it.
func (inj *Injector) WireHook(node string, lnk int) link.FaultHook {
	var rules []Rule
	for _, r := range inj.plan.Rules {
		if !r.Timed() && r.Node == node && r.Link == lnk {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	stream := &rng{state: inj.plan.Seed ^ fnv1a(fmt.Sprintf("%s.%d", node, lnk))}
	return func(isCtl bool) link.FaultAction {
		var act link.FaultAction
		for _, r := range rules {
			switch r.Kind {
			case Drop:
				if isCtl && r.Pkt == DataPacket || !isCtl && r.Pkt == CtlPacket {
					continue
				}
				if stream.float() < r.Rate {
					act.Drop = true
				}
			case Corrupt:
				if isCtl {
					continue
				}
				if stream.float() < r.Rate {
					act.Corrupt |= 1 << uint(stream.intn(8))
				}
			case Jitter:
				if stream.float() < r.Rate {
					act.Delay += sim.Time(stream.intn(int64(r.Max)) + 1)
				}
			}
		}
		return act
	}
}
