package asm

import (
	"fmt"
	"strconv"
	"strings"

	"transputer/internal/core"
	"transputer/internal/isa"
)

// Source is the text assembly language:
//
//	-- comments run to end of line (';' also accepted)
//	entry main            -- directives: entry, ws <below> <above>, data <n>
//	ws 16 8
//	main:
//	        ldc #754      -- hex as in the paper
//	        stl 1
//	loop:   ldl 1
//	        adc -1
//	        cj done       -- a label operand is ip-relative
//	        j loop
//	done:   ldc end-start -- difference of two labels
//	        ldpi table    -- pseudo: loads the address of a label
//	        byte 1, 2, 'A'
//	        word 100, -2
//	        align
//
// Operations (operate functions) take no operand: "in", "out", "add"...

// Assembled is the output of the text assembler.
type Assembled struct {
	Image  core.Image
	Labels map[string]int
}

// Assemble parses and encodes a source file for a machine with the
// given bytes per word.
func Assemble(src string, wordBytes int) (*Assembled, error) {
	b := NewBuilder(wordBytes)
	var entry string
	img := core.Image{WsBelow: 64, WsAbove: 64}
	seenWs := false

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.ReplaceAll(line, "\t", " ")
		line = strings.TrimSpace(line)
		// Peel off any leading labels.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !isIdent(name) {
				break
			}
			if err := b.Label(name); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := fields[0]
		rest := ""
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}
		if err := assembleLine(b, &img, &entry, &seenWs, mnem, rest, lineNo+1); err != nil {
			return nil, err
		}
	}

	res, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	img.Code = res.Code
	img.Marks = res.Marks
	if entry != "" {
		off, ok := res.Labels[entry]
		if !ok {
			return nil, fmt.Errorf("asm: undefined entry label %q", entry)
		}
		img.Entry = off
	}
	return &Assembled{Image: img, Labels: res.Labels}, nil
}

func assembleLine(b *Builder, img *core.Image, entry *string, seenWs *bool, mnem, rest string, line int) error {
	switch mnem {
	case "entry":
		*entry = rest
		return nil
	case "ws":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return fmt.Errorf("line %d: ws takes <below> <above>", line)
		}
		below, err1 := strconv.Atoi(parts[0])
		above, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("line %d: bad ws operands", line)
		}
		img.WsBelow, img.WsAbove = below, above
		*seenWs = true
		return nil
	case "data":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return fmt.Errorf("line %d: bad data size", line)
		}
		img.DataBytes = n
		return nil
	case "byte", "word":
		for _, part := range strings.Split(rest, ",") {
			v, err := parseNumber(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			if mnem == "byte" {
				b.Bytes([]byte{byte(v)})
			} else {
				b.Word(v)
			}
		}
		return nil
	case "align":
		b.Align()
		return nil
	case "space":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return fmt.Errorf("line %d: bad space size", line)
		}
		b.Bytes(make([]byte, n))
		return nil
	case "ldpi":
		b.Mark(line)
		if rest != "" && isIdent(rest) {
			b.Ldpi(rest)
			return nil
		}
		b.Op(isa.OpLdpi)
		return nil
	}

	if fn, ok := isa.FunctionByMnemonic(mnem); ok && fn != isa.FnOpr {
		b.Mark(line)
		return assembleOperand(b, fn, rest, line)
	}
	if op, ok := isa.OpByMnemonic(mnem); ok {
		if rest != "" {
			return fmt.Errorf("line %d: operation %s takes no operand", line, mnem)
		}
		b.Mark(line)
		b.Op(op)
		return nil
	}
	return fmt.Errorf("line %d: unknown mnemonic %q", line, mnem)
}

func assembleOperand(b *Builder, fn isa.Function, rest string, line int) error {
	if rest == "" {
		return fmt.Errorf("line %d: %s needs an operand", line, fn.Mnemonic())
	}
	if isIdent(rest) {
		b.Branch(fn, rest)
		return nil
	}
	if i := strings.Index(rest, "-"); i > 0 {
		a, c := strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+1:])
		if isIdent(a) && isIdent(c) {
			b.Diff(fn, a, c)
			return nil
		}
	}
	v, err := parseNumber(rest)
	if err != nil {
		return fmt.Errorf("line %d: %v", line, err)
	}
	b.Fn(fn, v)
	return nil
}

func stripComment(line string) string {
	// Character literals cannot contain comment markers in this
	// assembler, so plain scanning suffices.
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "--"); i >= 0 {
		line = line[:i]
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseNumber accepts decimal, #hex (the paper's convention) and
// quoted character literals.
func parseNumber(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = strings.TrimSpace(s[1:])
	}
	var v int64
	switch {
	case strings.HasPrefix(s, "#"):
		u, err := strconv.ParseUint(s[1:], 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad hex literal %q", s)
		}
		v = int64(u)
	case len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'':
		if len(s) != 3 {
			return 0, fmt.Errorf("bad character literal %q", s)
		}
		v = int64(s[1])
	default:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", s)
		}
		v = n
	}
	if neg {
		v = -v
	}
	return v, nil
}
