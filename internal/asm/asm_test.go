package asm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"transputer/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Assembled {
	t.Helper()
	a, err := Assemble(src, 4)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return a
}

func TestAssembleSimple(t *testing.T) {
	a := mustAssemble(t, `
		ldc 0
		stl 1
	`)
	want := []byte{0x40, 0xD1}
	if string(a.Image.Code) != string(want) {
		t.Errorf("code = % X, want % X", a.Image.Code, want)
	}
}

func TestAssembleHexAndChar(t *testing.T) {
	a := mustAssemble(t, `
		ldc #754
		ldc 'A'
	`)
	want := []byte{0x27, 0x25, 0x44, 0x24, 0x41}
	if string(a.Image.Code) != string(want) {
		t.Errorf("code = % X, want % X", a.Image.Code, want)
	}
}

func TestAssembleOperations(t *testing.T) {
	a := mustAssemble(t, `
		add
		in
		mul
	`)
	want := []byte{0xF5, 0xF7, 0x25, 0xF3}
	if string(a.Image.Code) != string(want) {
		t.Errorf("code = % X, want % X", a.Image.Code, want)
	}
}

func TestBackwardBranch(t *testing.T) {
	a := mustAssemble(t, `
	loop:
		ldl 1
		adc -1
		j loop
	`)
	// ldl 1 (1 byte), adc -1 (2 bytes: nfix 0, adc 15), j loop.
	// j is at offset 3; target 0; operand = 0 - (3 + size).
	lines := isa.DisassembleAll(a.Image.Code)
	last := lines[len(lines)-1].Instr
	if last.Fn != isa.FnJ {
		t.Fatalf("last instr = %v", last)
	}
	wantTarget := 0
	got := lines[len(lines)-1].Offset + last.Size + int(last.Operand)
	if got != wantTarget {
		t.Errorf("jump lands at %d, want %d", got, wantTarget)
	}
}

func TestForwardBranchFixpoint(t *testing.T) {
	// A forward jump over >16 bytes needs a prefix, which itself moves
	// the target; the fixpoint must settle.
	var sb strings.Builder
	sb.WriteString("\tj done\n")
	for i := 0; i < 40; i++ {
		sb.WriteString("\tldc 1\n")
	}
	sb.WriteString("done:\n\tldc 2\n")
	a := mustAssemble(t, sb.String())
	lines := isa.DisassembleAll(a.Image.Code)
	first := lines[0].Instr
	if first.Fn != isa.FnJ {
		t.Fatalf("first instr = %v", first)
	}
	land := lines[0].Offset + first.Size + int(first.Operand)
	if land != a.Labels["done"] {
		t.Errorf("jump lands at %d, want label done at %d", land, a.Labels["done"])
	}
	// The landing instruction must be ldc 2.
	instr, ok := isa.Decode(a.Image.Code, land)
	if !ok || instr.Fn != isa.FnLdc || instr.Operand != 2 {
		t.Errorf("landed on %v", instr)
	}
}

func TestEntryAndWs(t *testing.T) {
	a := mustAssemble(t, `
		entry main
		ws 10 20
		ldc 1
	main:
		ldc 2
	`)
	if a.Image.Entry != a.Labels["main"] {
		t.Errorf("entry = %d, want %d", a.Image.Entry, a.Labels["main"])
	}
	if a.Image.WsBelow != 10 || a.Image.WsAbove != 20 {
		t.Errorf("ws = %d,%d", a.Image.WsBelow, a.Image.WsAbove)
	}
}

func TestDataDirectives(t *testing.T) {
	a := mustAssemble(t, `
		byte 1, 2, 'x'
		align
		word 258
	tab:
		word -1
	`)
	code := a.Image.Code
	if code[0] != 1 || code[1] != 2 || code[2] != 'x' {
		t.Errorf("bytes: % X", code[:3])
	}
	if len(code) != 12 {
		t.Fatalf("len = %d, want 12 (3 bytes + 1 pad + 2 words)", len(code))
	}
	if code[4] != 2 || code[5] != 1 {
		t.Errorf("word 258 = % X", code[4:8])
	}
	if a.Labels["tab"] != 8 {
		t.Errorf("tab = %d, want 8", a.Labels["tab"])
	}
	for i := 8; i < 12; i++ {
		if code[i] != 0xFF {
			t.Errorf("word -1 byte %d = %x", i, code[i])
		}
	}
}

func TestLdpiPseudo(t *testing.T) {
	a := mustAssemble(t, `
		ldpi tab
		j over
	tab:
		word 42
	over:
		ldc 0
	`)
	// First instruction(s): ldc (tab - after ldpi); ldpi.
	instr, ok := isa.Decode(a.Image.Code, 0)
	if !ok || instr.Fn != isa.FnLdc {
		t.Fatalf("first instr = %v", instr)
	}
	afterLdpi := instr.Size + len(isa.EncodeOp(nil, isa.OpLdpi))
	if int(instr.Operand)+afterLdpi != a.Labels["tab"] {
		t.Errorf("ldpi operand %d from %d does not reach tab at %d",
			instr.Operand, afterLdpi, a.Labels["tab"])
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"\tfrobnicate 3",
		"\tldc",
		"\tadd 3",
		"\tj nowhere",
		"\tldc #xyz",
		"a:\n a:\n\tldc 1",
		"\tentry missing\n\tldc 1",
		"\tws 1",
	}
	for _, src := range cases {
		if _, err := Assemble(src, 4); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestComments(t *testing.T) {
	a := mustAssemble(t, `
		ldc 1  -- occam style
		ldc 2  ; semicolon style
	`)
	if len(a.Image.Code) != 2 {
		t.Errorf("code = % X", a.Image.Code)
	}
}

// TestRoundTripProperty: assembling random ldc operands and decoding
// them recovers the operand.
func TestRoundTripProperty(t *testing.T) {
	f := func(v int32) bool {
		a, err := Assemble("\tldc "+itoa64(int64(v)), 4)
		if err != nil {
			return false
		}
		instr, ok := isa.Decode(a.Image.Code, 0)
		return ok && instr.Operand == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func itoa64(v int64) string {
	if v < 0 {
		return "-" + itoa64(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa64(v/10) + string(rune('0'+v%10))
}

func TestBuilderDiff(t *testing.T) {
	b := NewBuilder(4)
	b.MustLabel("start")
	b.Fn(isa.FnLdc, 1)
	b.Fn(isa.FnLdc, 2)
	b.MustLabel("end")
	b.Diff(isa.FnLdc, "end", "start")
	res, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	instr, _ := isa.Decode(res.Code, res.Labels["end"])
	if instr.Operand != 2 {
		t.Errorf("diff operand = %d, want 2", instr.Operand)
	}
}

func TestNegativeOperandMinInt(t *testing.T) {
	// The most negative 32-bit value must assemble and decode.
	a := mustAssemble(t, "\tldc -2147483648")
	instr, ok := isa.Decode(a.Image.Code, 0)
	if !ok || instr.Operand != -2147483648 {
		t.Errorf("got %v %v", instr, ok)
	}
}

// TestBuilderDisassemblerRoundTrip: random instruction streams encode
// and decode to the same (function, operand) sequence.
func TestBuilderDisassemblerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(424))
	fns := []isa.Function{isa.FnLdc, isa.FnLdl, isa.FnStl, isa.FnAdc, isa.FnAjw, isa.FnEqc, isa.FnLdnl, isa.FnStnl, isa.FnLdlp, isa.FnLdnlp}
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpRev, isa.OpMint, isa.OpGt, isa.OpWsub, isa.OpIn, isa.OpOut}
	for round := 0; round < 50; round++ {
		b := NewBuilder(4)
		type want struct {
			fn   isa.Function
			op   isa.Op
			val  int64
			isOp bool
		}
		var wants []want
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				op := ops[rng.Intn(len(ops))]
				b.Op(op)
				wants = append(wants, want{op: op, isOp: true})
			} else {
				fn := fns[rng.Intn(len(fns))]
				v := int64(rng.Intn(1<<16) - 1<<15)
				b.Fn(fn, v)
				wants = append(wants, want{fn: fn, val: v})
			}
		}
		res, err := b.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		lines := isa.DisassembleAll(res.Code)
		if len(lines) != len(wants) {
			t.Fatalf("round %d: %d instructions decoded, want %d", round, len(lines), len(wants))
		}
		for i, w := range wants {
			in := lines[i].Instr
			if w.isOp {
				if !in.IsOp() || in.Op() != w.op {
					t.Fatalf("round %d instr %d: got %v, want op %v", round, i, in, w.op)
				}
			} else if in.Fn != w.fn || in.Operand != w.val {
				t.Fatalf("round %d instr %d: got %v, want %v %d", round, i, in, w.fn, w.val)
			}
		}
	}
}
