// Package asm provides a symbolic instruction builder and a two-pass
// text assembler for the I1 instruction set.
//
// Branch operands are instruction-pointer relative and the encoded size
// of an instruction depends on its operand, so label-relative operands
// are resolved by fixpoint iteration: sizes only ever grow, so the
// iteration terminates.
package asm

import (
	"fmt"

	"transputer/internal/core"
	"transputer/internal/isa"
)

// itemKind discriminates builder items.
type itemKind int

const (
	kindFn     itemKind = iota // direct function, literal operand
	kindOp                     // indirect operation
	kindBranch                 // direct function, label-relative operand
	kindDiff                   // direct function, operand = labelA - labelB
	kindAbs                    // direct function, operand = label offset
	kindLdpi                   // ldc (label - here) ; ldpi
	kindBytes                  // raw data bytes
	kindAlign                  // pad to word boundary
	kindMark                   // zero-size source-line marker
)

type item struct {
	kind    itemKind
	fn      isa.Function
	op      isa.Op
	operand int64
	label   string // branch/abs/ldpi target, or diff minuend
	label2  string // diff subtrahend
	bytes   []byte
	size    int // current encoded size estimate
	// srcLine, for error reporting from the text assembler.
	srcLine int
}

// Builder accumulates symbolic instructions and data, then encodes them
// with minimal prefix sequences.
type Builder struct {
	items  []item
	labels map[string]int // label -> item index
	// wordBytes is used by the align directive.
	wordBytes int
}

// NewBuilder returns a builder for a machine with the given bytes per
// word (used only for alignment).
func NewBuilder(wordBytes int) *Builder {
	return &Builder{labels: make(map[string]int), wordBytes: wordBytes}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) error {
	if _, dup := b.labels[name]; dup {
		return fmt.Errorf("asm: duplicate label %q", name)
	}
	b.labels[name] = len(b.items)
	return nil
}

// MustLabel is Label for generated (collision-free) names.
func (b *Builder) MustLabel(name string) {
	if err := b.Label(name); err != nil {
		panic(err)
	}
}

// Fn appends a direct function with a literal operand.
func (b *Builder) Fn(fn isa.Function, operand int64) {
	b.items = append(b.items, item{kind: kindFn, fn: fn, operand: operand, size: 1})
}

// Op appends an indirect operation.
func (b *Builder) Op(op isa.Op) {
	b.items = append(b.items, item{kind: kindOp, op: op, size: len(isa.EncodeOp(nil, op))})
}

// Branch appends a direct function whose operand is the distance from
// the address following this instruction to the label.
func (b *Builder) Branch(fn isa.Function, label string) {
	b.items = append(b.items, item{kind: kindBranch, fn: fn, label: label, size: 1})
}

// Diff appends a direct function whose operand is the byte distance
// labelA - labelB.
func (b *Builder) Diff(fn isa.Function, labelA, labelB string) {
	b.items = append(b.items, item{kind: kindDiff, fn: fn, label: labelA, label2: labelB, size: 1})
}

// Abs appends a direct function whose operand is the byte offset of the
// label from the start of the code image.
func (b *Builder) Abs(fn isa.Function, label string) {
	b.items = append(b.items, item{kind: kindAbs, fn: fn, label: label, size: 1})
}

// Ldpi appends "load constant (label - here); load pointer to
// instruction", leaving the absolute address of the label in A.
func (b *Builder) Ldpi(label string) {
	b.items = append(b.items, item{kind: kindLdpi, label: label, size: 1 + len(isa.EncodeOp(nil, isa.OpLdpi))})
}

// Bytes appends raw data.
func (b *Builder) Bytes(data []byte) {
	b.items = append(b.items, item{kind: kindBytes, bytes: data, size: len(data)})
}

// Word appends a little-endian word of the builder's width.
func (b *Builder) Word(v int64) {
	data := make([]byte, b.wordBytes)
	u := uint64(v)
	for i := range data {
		data[i] = byte(u)
		u >>= 8
	}
	b.Bytes(data)
}

// Align pads with zero bytes to the next word boundary.
func (b *Builder) Align() {
	b.items = append(b.items, item{kind: kindAlign})
}

// Mark records that code emitted from here until the next mark derives
// from the given source line.  Marks occupy no space; they surface in
// the assembled Result as a source map.
func (b *Builder) Mark(line int) {
	b.items = append(b.items, item{kind: kindMark, srcLine: line})
}

// Result is an assembled code image with its symbol table and source
// map.
type Result struct {
	Code   []byte
	Labels map[string]int // label -> byte offset
	Marks  []core.SourceMark
}

// Assemble resolves all labels and encodes the program.
func (b *Builder) Assemble() (*Result, error) {
	// Fixpoint sizing: start from current minimal estimates; recompute
	// operand sizes from label offsets until stable.
	offsets := make([]int, len(b.items)+1)
	for pass := 0; ; pass++ {
		if pass > 8+len(b.items) {
			return nil, fmt.Errorf("asm: label fixpoint failed to converge")
		}
		// Recompute offsets from sizes.
		pos := 0
		for i := range b.items {
			offsets[i] = pos
			if b.items[i].kind == kindAlign {
				pad := 0
				if b.wordBytes > 0 && pos%b.wordBytes != 0 {
					pad = b.wordBytes - pos%b.wordBytes
				}
				b.items[i].size = pad
			}
			pos += b.items[i].size
		}
		offsets[len(b.items)] = pos
		changed := false
		for i := range b.items {
			it := &b.items[i]
			operand, err := b.operandFor(it, offsets, i)
			if err != nil {
				return nil, err
			}
			var size int
			switch it.kind {
			case kindFn, kindBranch, kindDiff, kindAbs:
				size = isa.OperandLength(operand)
			case kindLdpi:
				size = isa.OperandLength(operand) + len(isa.EncodeOp(nil, isa.OpLdpi))
			default:
				continue
			}
			if size > it.size {
				it.size = size
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Emit.
	var code []byte
	labels := make(map[string]int, len(b.labels))
	for name, idx := range b.labels {
		labels[name] = offsets[idx]
	}
	var marks []core.SourceMark
	for i := range b.items {
		it := &b.items[i]
		start := len(code)
		switch it.kind {
		case kindMark:
			// Successive marks at one offset collapse to the last.
			if n := len(marks); n > 0 && marks[n-1].Offset == len(code) {
				marks[n-1].Line = it.srcLine
			} else {
				marks = append(marks, core.SourceMark{Offset: len(code), Line: it.srcLine})
			}
			continue
		case kindBytes:
			code = append(code, it.bytes...)
		case kindAlign:
			for len(code)-start < it.size {
				code = append(code, 0)
			}
		case kindOp:
			code = append(code, isa.EncodeOp(nil, it.op)...)
		case kindLdpi:
			operand, _ := b.operandFor(it, offsets, i)
			var enc []byte
			enc = isa.EncodeOperand(enc, isa.FnLdc, operand)
			enc = isa.EncodeOp(enc, isa.OpLdpi)
			code = appendPadded(code, enc, it.size)
		default:
			operand, _ := b.operandFor(it, offsets, i)
			enc := isa.EncodeOperand(nil, it.fn, operand)
			code = appendPadded(code, enc, it.size)
		}
		if len(code)-start != it.size {
			return nil, fmt.Errorf("asm: item %d encoded %d bytes, reserved %d",
				i, len(code)-start, it.size)
		}
	}
	return &Result{Code: code, Labels: labels, Marks: marks}, nil
}

// appendPadded appends enc front-padded to exactly size bytes with
// "prefix 0" bytes, which leave a zero operand register unchanged and
// so are semantically transparent.  Front padding keeps the instruction
// end (and hence relative branch arithmetic) at the reserved boundary
// if a later fixpoint pass shrank the operand.
func appendPadded(code, enc []byte, size int) []byte {
	for len(enc) < size {
		code = append(code, byte(isa.FnPfix)<<4)
		size--
	}
	return append(code, enc...)
}

// operandFor computes the operand of item i given current offsets.
func (b *Builder) operandFor(it *item, offsets []int, i int) (int64, error) {
	lookup := func(name string) (int, error) {
		idx, ok := b.labels[name]
		if !ok {
			return 0, fmt.Errorf("asm: undefined label %q (line %d)", name, it.srcLine)
		}
		return offsets[idx], nil
	}
	switch it.kind {
	case kindFn, kindOp, kindBytes, kindAlign, kindMark:
		return it.operand, nil
	case kindBranch:
		target, err := lookup(it.label)
		if err != nil {
			return 0, err
		}
		return int64(target - (offsets[i] + it.size)), nil
	case kindDiff:
		a, err := lookup(it.label)
		if err != nil {
			return 0, err
		}
		c, err := lookup(it.label2)
		if err != nil {
			return 0, err
		}
		return int64(a - c), nil
	case kindAbs:
		target, err := lookup(it.label)
		if err != nil {
			return 0, err
		}
		return int64(target), nil
	case kindLdpi:
		target, err := lookup(it.label)
		if err != nil {
			return 0, err
		}
		return int64(target - (offsets[i] + it.size)), nil
	}
	return 0, fmt.Errorf("asm: bad item kind %d", it.kind)
}
