package exp

import (
	"fmt"

	"transputer/internal/core"
	"transputer/internal/link"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// E6LinkThroughput measures one direction of one link (figure 1 and
// section 2.3.1): at 10 Mbit/s with 11-bit data packets and overlapped
// acknowledges, a link carries 0.909 MByte/s — the paper's "about
// 1 Mbyte/sec in each direction".
func E6LinkThroughput() Result {
	r := Result{
		ID:    "E6",
		Title: "link throughput, one direction (paper 2.3.1 / figure 1)",
	}
	mbps, cont := HostPairThroughput(false)
	r.Rows = append(r.Rows, Row{
		Label:    "64 KiB stream at 10 Mbit/s",
		Paper:    "about 1 Mbyte/s",
		Measured: fmt.Sprintf("%.3f Mbyte/s", mbps),
		OK:       within(mbps, 0.909, 0.02),
	})
	r.Rows = append(r.Rows, Row{
		Label:    "transmission continuous (11 bit times per byte)",
		Paper:    "yes (ack overlaps reception)",
		Measured: fmt.Sprintf("%v", cont),
		OK:       cont,
	})
	return r
}

// HostPairThroughput streams 64 KiB between two host link ends and
// returns MByte/s and whether streaming was gapless.
func HostPairThroughput(stopAndWait bool) (mbps float64, continuous bool) {
	k := sim.NewKernel()
	a := link.NewHostEnd(k)
	b := link.NewHostEnd(k)
	link.ConnectHosts(a, b)
	b.SetStopAndWait(stopAndWait)
	const n = 64 * 1024
	var done sim.Time
	b.Recv(n, func([]byte) { done = k.Now() })
	a.Send(make([]byte, n), nil)
	k.Run()
	mbps = float64(n) / (float64(done) * 1e-9) / 1e6
	continuous = done == sim.Time(n*link.DataBits*link.BitNs)
	return mbps, continuous
}

// A1StopAndWaitLink is the ablation for the overlapped acknowledge: a
// plain stop-and-wait handshake pays 11+2 bit times per byte.
func A1StopAndWaitLink() Result {
	r := Result{
		ID:    "A1",
		Title: "ablation: overlapped acknowledge vs stop-and-wait",
		Notes: "the design choice behind 'transmission may be continuous' (paper 2.3)",
	}
	overlapped, _ := HostPairThroughput(false)
	plain, _ := HostPairThroughput(true)
	r.Rows = append(r.Rows, Row{
		Label:    "overlapped acknowledge (the paper's design)",
		Paper:    "11 bit times/byte = 0.909 MB/s",
		Measured: fmt.Sprintf("%.3f Mbyte/s", overlapped),
		OK:       within(overlapped, 0.909, 0.02),
	})
	r.Rows = append(r.Rows, Row{
		Label:    "stop-and-wait acknowledge",
		Paper:    "13 bit times/byte = 0.769 MB/s",
		Measured: fmt.Sprintf("%.3f Mbyte/s", plain),
		OK:       within(plain, 0.769, 0.02),
	})
	r.Rows = append(r.Rows, Row{
		Label:    "speedup from overlapping",
		Paper:    "13/11 = 1.18x",
		Measured: fmt.Sprintf("%.2fx", overlapped/plain),
		OK:       within(overlapped/plain, 13.0/11.0, 0.03),
	})
	return r
}

// E14AggregateBandwidth drives all four links of a transputer pair in
// both directions at once: the T424's "total of 8 Mbytes per second of
// communications bandwidth" (section 3.1; 4 links x 2 directions x
// ~0.909 MB/s = 7.3 MB/s of payload after protocol framing).
func E14AggregateBandwidth() Result {
	r := Result{
		ID:    "E14",
		Title: "aggregate link bandwidth of one transputer (paper 3.1)",
		Notes: "the paper's 8 Mbytes/s is 4 links x 2 directions x ~1 MB/s; under full bidirectional saturation each signal line also carries the reverse channel's acknowledges (11+2 bit times per byte), so the physical payload ceiling is 8 x 0.769 = 6.15 MB/s",
	}
	mbps, err := aggregateBandwidth()
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "aggregate", Measured: "error: " + err.Error()})
		return r
	}
	r.Rows = append(r.Rows, Row{
		Label:    "4 links, both directions saturated",
		Paper:    "8 Mbytes/s of link bandwidth",
		Measured: fmt.Sprintf("%.2f Mbyte/s payload (ceiling 6.15)", mbps),
		OK:       mbps > 5.8 && mbps < 6.2,
	})
	return r
}

func aggregateBandwidth() (float64, error) {
	// Each side runs eight concurrent occam processes: four senders
	// and four receivers, one per link direction, streaming 64-word
	// blocks.
	const blocks = 48
	src := func() string {
		s := "DEF blocks = 48:\n"
		for i := 0; i < 4; i++ {
			s += fmt.Sprintf("CHAN out%d:\nPLACE out%d AT LINK%dOUT:\n", i, i, i)
			s += fmt.Sprintf("CHAN in%d:\nPLACE in%d AT LINK%dIN:\n", i, i, i)
		}
		s += "PROC send(CHAN c) =\n  VAR buf[64]:\n  SEQ b = [0 FOR blocks]\n    c ! buf\n:\n"
		s += "PROC recv(CHAN c) =\n  VAR buf[64]:\n  SEQ b = [0 FOR blocks]\n    c ? buf\n:\n"
		s += "PAR\n"
		for i := 0; i < 4; i++ {
			s += fmt.Sprintf("  send(out%d)\n  recv(in%d)\n", i, i)
		}
		return s
	}()
	net := network.NewSystem()
	cfg := core.T424().WithMemory(64 * 1024)
	a, err := net.AddTransputer("a", cfg)
	if err != nil {
		return 0, err
	}
	b, err := net.AddTransputer("b", cfg)
	if err != nil {
		return 0, err
	}
	for i := 0; i < 4; i++ {
		if err := net.Connect(a, i, b, i); err != nil {
			return 0, err
		}
	}
	comp, err := occam.Compile(src, occam.Options{})
	if err != nil {
		return 0, err
	}
	if err := a.Load(comp.Image); err != nil {
		return 0, err
	}
	if err := b.Load(comp.Image); err != nil {
		return 0, err
	}
	rep := net.Run(sim.Second)
	if !rep.Settled {
		return 0, fmt.Errorf("streams did not settle: %+v", rep)
	}
	if err := a.M.Fault(); err != nil {
		return 0, err
	}
	payload := float64(8 * blocks * 64 * 4) // bytes over all half-links
	return payload / (float64(rep.Time) * 1e-9) / 1e6, nil
}

// E7MessageLatency measures the 4-byte inter-transputer message of
// section 4.2: "it takes about 6 microseconds to send a 4 byte message
// from one transputer to another."
func E7MessageLatency() Result {
	r := Result{
		ID:    "E7",
		Title: "4-byte message between transputers (paper 4.2)",
	}
	t, err := PingLatency()
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "ping", Measured: "error: " + err.Error()})
		return r
	}
	us := float64(t) / 1000
	r.Rows = append(r.Rows, Row{
		Label:    "4-byte message, boot to delivery",
		Paper:    "about 6 µs",
		Measured: fmt.Sprintf("%.2f µs", us),
		OK:       us > 4 && us < 8,
	})
	return r
}

func PingLatency() (sim.Time, error) {
	net := network.NewSystem()
	cfg := core.T424().WithMemory(64 * 1024)
	a, err := net.AddTransputer("a", cfg)
	if err != nil {
		return 0, err
	}
	b, err := net.AddTransputer("b", cfg)
	if err != nil {
		return 0, err
	}
	if err := net.Connect(a, 0, b, 0); err != nil {
		return 0, err
	}
	sendSrc := "CHAN out:\nPLACE out AT LINK0OUT:\nout ! 42\n"
	recvSrc := "CHAN in:\nPLACE in AT LINK0IN:\nVAR v:\nin ? v\n"
	for node, src := range map[*network.Node]string{a: sendSrc, b: recvSrc} {
		comp, cerr := occam.Compile(src, occam.Options{})
		if cerr != nil {
			return 0, cerr
		}
		if lerr := node.Load(comp.Image); lerr != nil {
			return 0, lerr
		}
	}
	rep := net.Run(sim.Millisecond)
	if !rep.Settled {
		return 0, fmt.Errorf("ping did not settle")
	}
	if b.M.Local(2) != 42 { // first VAR lands in workspace slot 2
		return 0, fmt.Errorf("ping value corrupted: %d", b.M.Local(2))
	}
	return rep.Time, nil
}
