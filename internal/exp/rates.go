package exp

import (
	"fmt"
	"strings"

	"transputer/internal/asm"
	"transputer/internal/core"
	"transputer/internal/isa"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// E11MIPSRate measures the execution rate on the paper's "typical
// sequences of commonly used instructions" — the assignment and
// expression mixes of its own tables — against the 15 MIPS figure for
// a 20 MHz part (section 3.2.1).
func E11MIPSRate() Result {
	r := Result{
		ID:    "E11",
		Title: "execution rate on typical sequences (paper 3.2.1)",
		Notes: "the paper's own table mix: loads, stores, add constant, add",
	}
	// A straight-line block from the paper's tables, repeated: x := 0;
	// x := y; x + 2 folded into an accumulating mix.
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		sb.WriteString("\tldc 0\n\tstl 1\n")                 // x := 0        (2 instr, 2 cycles)
		sb.WriteString("\tldl 2\n\tstl 1\n")                 // x := y        (2 instr, 3 cycles)
		sb.WriteString("\tldl 1\n\tadc 2\n\tstl 1\n")        // x := x + 2 (3 instr, 4 cycles)
		sb.WriteString("\tldl 1\n\tldl 2\n\tadd\n\tstl 1\n") // x := x + y (4 instr, 6 cycles)
	}
	sb.WriteString("\tstopp\n")
	a, err := asm.Assemble(sb.String(), 4)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "mix", Measured: "error: " + err.Error()})
		return r
	}
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	if err := m.Load(a.Image); err != nil {
		r.Rows = append(r.Rows, Row{Label: "mix", Measured: "error: " + err.Error()})
		return r
	}
	core.Run(m, 10*sim.Millisecond)
	st := m.Stats()
	mips := st.MIPS(50)
	r.Rows = append(r.Rows, Row{
		Label:    "assignment/expression mix at 20 MHz",
		Paper:    "15 MIPS",
		Measured: fmt.Sprintf("%.1f MIPS (%d instructions / %d cycles)", mips, st.Instructions, st.Cycles),
		OK:       mips > 13 && mips < 17,
	})
	return r
}

// E12SingleByteFraction measures the fraction of executed operations
// encoded in a single byte on real workloads: "most of the executed
// operations (typically 80%) are encoded in a single byte" (paper
// 3.2.3/3.2.6).
func E12SingleByteFraction() Result {
	r := Result{
		ID:    "E12",
		Title: "single-byte instruction fraction (paper 3.2.3)",
	}
	progs := map[string]string{
		"squares producer/consumer": `CHAN screen:
PLACE screen AT LINK0OUT:
DEF n = 20:
CHAN c:
VAR v, sum:
SEQ
  PAR
    SEQ i = [1 FOR n]
      c ! i * i
    SEQ
      sum := 0
      SEQ i = [1 FOR n]
        SEQ
          c ? v
          sum := sum + v
  screen ! 2
  screen ! sum
  screen ! 4
`,
		"array sort (insertion)": `CHAN screen:
PLACE screen AT LINK0OUT:
DEF n = 24:
VAR a[n], v, j, going:
SEQ
  SEQ i = [0 FOR n]
    a[i] := (n - i) * 3
  SEQ i = [1 FOR (n - 1)]
    SEQ
      v := a[i]
      j := i
      going := TRUE
      WHILE going
        IF
          (j > 0) AND (a[(j - 1)] > v)
            SEQ
              a[j] := a[(j - 1)]
              j := j - 1
          TRUE
            going := FALSE
      a[j] := v
  screen ! 2
  screen ! a[0]
  screen ! 4
`,
	}
	for label, src := range progs {
		frac, err := singleByteFraction(src)
		if err != nil {
			r.Rows = append(r.Rows, Row{Label: label, Measured: "error: " + err.Error()})
			continue
		}
		r.Rows = append(r.Rows, Row{
			Label:    label,
			Paper:    "typically 80%",
			Measured: fmt.Sprintf("%.1f%% single byte", 100*frac),
			OK:       frac > 0.50,
		})
	}
	// The paper's own instruction mix (the 3.2.6/3.2.9 tables) is
	// entirely single byte; compiled occam adds prefixed operations
	// (multiply, loop end, the alternative instructions), so our
	// straightforward code generator lands nearer 55-65%.
	r.Notes = "the claim holds on the paper's table mix; our compiler's output is lower (see EXPERIMENTS.md)"
	mix := "\tldc 0\n\tstl 1\n\tldl 2\n\tstl 1\n\tldl 1\n\tadc 2\n\tstl 1\n"
	a, err := asm.Assemble(strings.Repeat(mix, 32)+"\tstopp\n", 4)
	if err == nil {
		m := core.MustNew(core.T424().WithMemory(64 * 1024))
		if m.Load(a.Image) == nil {
			core.Run(m, 10*sim.Millisecond)
			frac := m.Stats().SingleByteFraction()
			r.Rows = append(r.Rows, Row{
				Label:    "the paper's table mix (loads, stores, add constant)",
				Paper:    "typically 80%",
				Measured: fmt.Sprintf("%.1f%% single byte", 100*frac),
				OK:       frac > 0.80,
			})
		}
	}
	return r
}

func singleByteFraction(src string) (float64, error) {
	comp, err := occam.Compile(src, occam.Options{})
	if err != nil {
		return 0, err
	}
	net := network.NewSystem()
	n, err := net.AddTransputer("m", core.T424().WithMemory(64*1024))
	if err != nil {
		return 0, err
	}
	if _, err := net.AttachHost(n, 0, nil); err != nil {
		return 0, err
	}
	if err := n.Load(comp.Image); err != nil {
		return 0, err
	}
	rep := net.Run(sim.Second)
	if !rep.Settled {
		return 0, fmt.Errorf("workload did not settle")
	}
	return n.M.Stats().SingleByteFraction(), nil
}

// A2FixedWidthEncoding quantifies what the prefixing scheme saves:
// against a hypothetical fixed encoding of one opcode byte plus a
// full-word operand per instruction (the paper argues compact programs
// need less store and less instruction-fetch bandwidth, section 3.3).
func A2FixedWidthEncoding() Result {
	r := Result{
		ID:    "A2",
		Title: "ablation: prefix encoding vs fixed-width operands (paper 3.3)",
	}
	src := `CHAN screen:
PLACE screen AT LINK0OUT:
DEF n = 16:
VAR a[n], sum:
SEQ
  SEQ i = [0 FOR n]
    a[i] := i * i
  sum := 0
  SEQ i = [0 FOR n]
    sum := sum + a[i]
  screen ! 2
  screen ! sum
  screen ! 4
`
	comp, err := occam.Compile(src, occam.Options{})
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "compile", Measured: "error: " + err.Error()})
		return r
	}
	actual := len(comp.Image.Code)
	instrs := 0
	for _, ln := range isa.DisassembleAll(comp.Image.Code) {
		if ln.Instr.Size > 0 {
			instrs++
		}
	}
	fixed := instrs * 5 // one opcode byte + a 32-bit operand
	r.Rows = append(r.Rows, Row{
		Label:    fmt.Sprintf("array-sum program, %d instructions", instrs),
		Paper:    "prefixing keeps programs compact",
		Measured: fmt.Sprintf("%d bytes vs %d fixed-width (%.1fx smaller)", actual, fixed, float64(fixed)/float64(actual)),
		OK:       actual*2 < fixed,
	})
	avg := float64(actual) / float64(instrs)
	r.Rows = append(r.Rows, Row{
		Label:    "average instruction length",
		Paper:    "most executed operations are one byte",
		Measured: fmt.Sprintf("%.2f bytes", avg),
		OK:       avg < 2.5,
	})
	return r
}

// A3FetchBuffer runs the same program with and without the two-word
// instruction fetch buffer the paper describes (3.2.5): without it,
// every instruction byte costs an extra memory cycle.
func A3FetchBuffer() Result {
	r := Result{
		ID:    "A3",
		Title: "ablation: two-word instruction fetch buffer (paper 3.2.5)",
	}
	src := strings.Repeat("\tldl 1\n\tadc 1\n\tstl 1\n", 200) + "\tstopp\n"
	run := func(noBuffer bool) (uint64, error) {
		cfg := core.T424().WithMemory(64 * 1024)
		cfg.NoFetchBuffer = noBuffer
		m, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		a, err := asm.Assemble(src, 4)
		if err != nil {
			return 0, err
		}
		if err := m.Load(a.Image); err != nil {
			return 0, err
		}
		core.Run(m, 10*sim.Millisecond)
		return m.Stats().Cycles, nil
	}
	with, err1 := run(false)
	without, err2 := run(true)
	if err1 != nil || err2 != nil {
		r.Rows = append(r.Rows, Row{Label: "run", Measured: "error"})
		return r
	}
	r.Rows = append(r.Rows, Row{
		Label:    "with fetch buffer (the real design)",
		Paper:    "fetch uses spare memory cycles",
		Measured: fmt.Sprintf("%d cycles", with),
		OK:       true,
	})
	slowdown := float64(without) / float64(with)
	r.Rows = append(r.Rows, Row{
		Label:    "without fetch buffer",
		Paper:    "every byte costs an extra access",
		Measured: fmt.Sprintf("%d cycles (%.2fx slower)", without, slowdown),
		OK:       slowdown > 1.2,
	})
	return r
}

// A4WordLength runs identical program bytes on the 32-bit T424 and the
// 16-bit T222: word-length independence (paper 3.3) means identical
// results from identical code.
func A4WordLength() Result {
	r := Result{
		ID:    "A4",
		Title: "word-length independence: T424 vs T222 (paper 3.3)",
	}
	src := `
	ldc 100
	stl 1
	ldc 23
	ldl 1
	add
	stl 2
	ldl 2
	ldl 1
	mul
	stl 3
	stopp
`
	type out struct {
		locals [3]uint64
		cycles uint64
		code   string
	}
	run := func(cfg core.Config, bpw int) (out, error) {
		a, err := asm.Assemble(src, bpw)
		if err != nil {
			return out{}, err
		}
		m, err := core.New(cfg)
		if err != nil {
			return out{}, err
		}
		if err := m.Load(a.Image); err != nil {
			return out{}, err
		}
		core.Run(m, sim.Millisecond)
		return out{
			locals: [3]uint64{m.Local(1), m.Local(2), m.Local(3)},
			cycles: m.Stats().Cycles,
			code:   string(a.Image.Code),
		}, nil
	}
	o32, err1 := run(core.T424().WithMemory(32*1024), 4)
	o16, err2 := run(core.T222().WithMemory(32*1024), 2)
	if err1 != nil || err2 != nil {
		r.Rows = append(r.Rows, Row{Label: "run", Measured: "error"})
		return r
	}
	r.Rows = append(r.Rows, Row{
		Label:    "identical code bytes",
		Paper:    "instruction representation independent of word length",
		Measured: fmt.Sprintf("%v", o32.code == o16.code),
		OK:       o32.code == o16.code,
	})
	same := o32.locals == o16.locals
	r.Rows = append(r.Rows, Row{
		Label:    "identical results (100+23, then product)",
		Paper:    "behaves identically whatever the wordlength",
		Measured: fmt.Sprintf("%v (%d, %d, %d)", same, int64(o32.locals[0]), int64(o32.locals[1]), int64(o32.locals[2])),
		OK:       same,
	})
	r.Rows = append(r.Rows, Row{
		Label:    "multiply cost tracks word length",
		Paper:    "7+wordlength cycles: 39 vs 23",
		Measured: fmt.Sprintf("T424 %d cycles, T222 %d cycles (difference %d)", o32.cycles, o16.cycles, o32.cycles-o16.cycles),
		OK:       o32.cycles-o16.cycles == 16,
	})
	return r
}
