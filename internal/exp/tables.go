package exp

import (
	"fmt"

	"transputer/internal/asm"
	"transputer/internal/core"
	"transputer/internal/isa"
	"transputer/internal/sim"
)

// Experiments E1-E3: the instruction-sequence tables of paper sections
// 3.2.6, 3.2.7 and 3.2.9, measured by executing each fragment on the
// processor and counting bytes and cycles.

// measureFragment assembles setup+fragment+stopp and setup+stopp on a
// T424 and returns the fragment's code bytes and executed cycles.
func measureFragment(setup, fragment string) (bytes int, cycles uint64, err error) {
	run := func(src string) (*core.Machine, error) {
		a, aerr := asm.Assemble(src, 4)
		if aerr != nil {
			return nil, aerr
		}
		m, merr := core.New(core.T424().WithMemory(64 * 1024))
		if merr != nil {
			return nil, merr
		}
		if lerr := m.Load(a.Image); lerr != nil {
			return nil, lerr
		}
		res := core.Run(m, 10*sim.Millisecond)
		if !res.Settled {
			return nil, fmt.Errorf("fragment did not settle")
		}
		if ferr := m.Fault(); ferr != nil {
			return nil, ferr
		}
		return m, nil
	}
	full, err := run(setup + fragment + "\n\tstopp\n")
	if err != nil {
		return 0, 0, err
	}
	base, err := run(setup + "\tstopp\n")
	if err != nil {
		return 0, 0, err
	}
	frag, err := asm.Assemble(fragment, 4)
	if err != nil {
		return 0, 0, err
	}
	return len(frag.Image.Code), full.Stats().Cycles - base.Stats().Cycles, nil
}

func fragmentRow(label, setup, fragment string, wantBytes int, wantCycles uint64) Row {
	bytes, cycles, err := measureFragment(setup, fragment)
	if err != nil {
		return Row{Label: label, Paper: "-", Measured: "error: " + err.Error()}
	}
	return Row{
		Label:    label,
		Paper:    fmt.Sprintf("%d bytes, %d cycles", wantBytes, wantCycles),
		Measured: fmt.Sprintf("%d bytes, %d cycles", bytes, cycles),
		OK:       bytes == wantBytes && cycles == wantCycles,
	}
}

// E1DirectFunctions reproduces the section 3.2.6 table: x := 0, x := y
// and the static-link assignment z := 1.
func E1DirectFunctions() Result {
	r := Result{
		ID:    "E1",
		Title: "direct function sequences (paper 3.2.6)",
		Notes: "x and y are locals; z is reached through a static link",
	}
	r.Rows = append(r.Rows,
		fragmentRow("x := 0", "", "\tldc 0\n\tstl 1", 2, 2),
		fragmentRow("x := y", "\tldc 7\n\tstl 2\n", "\tldl 2\n\tstl 1", 2, 3),
		fragmentRow("z := 1",
			"\tldpi zspace\n\tstl 2\n\tj zskip\n\talign\nzspace:\n\tword 0\nzskip:\n",
			"\tldc 1\n\tldl 2\n\tstnl 0", 3, 5),
	)
	return r
}

// E2Prefix754 reproduces the section 3.2.7 operand-register trace for
// loading #754, by single-stepping the operand register mechanism.
func E2Prefix754() Result {
	r := Result{
		ID:    "E2",
		Title: "prefixing: loading #754 (paper 3.2.7)",
	}
	code := isa.EncodeOperand(nil, isa.FnLdc, 0x754)
	wantBytes := []byte{0x27, 0x25, 0x44}
	enc := fmt.Sprintf("% X", code)
	r.Rows = append(r.Rows, Row{
		Label:    "encoding",
		Paper:    "prefix #7; prefix #5; load constant #4",
		Measured: enc,
		OK:       string(code) == string(wantBytes),
	})
	// Trace the operand register through the bytes, as the paper's
	// table does (it shows the accumulated nibbles after each prefix).
	oreg := uint64(0)
	traces := []struct {
		afterO uint64
		label  string
	}{
		{0x7, "after prefix #7: O register"},
		{0x75, "after prefix #5: O register"},
	}
	for i, tr := range traces {
		b := code[i]
		oreg = (oreg | uint64(b&0xF)) << 4
		r.Rows = append(r.Rows, Row{
			Label:    tr.label,
			Paper:    fmt.Sprintf("#%X", tr.afterO),
			Measured: fmt.Sprintf("#%X", oreg>>4),
			OK:       oreg>>4 == tr.afterO,
		})
	}
	// Final A register via execution.
	m := core.MustNew(core.T424().WithMemory(16 * 1024))
	img := core.Image{Code: append(append([]byte{}, code...), isa.EncodeOperand(nil, isa.FnStl, 1)...), WsBelow: 16, WsAbove: 8}
	img.Code = append(img.Code, isa.EncodeOp(nil, isa.OpStopp)...)
	_ = m.Load(img)
	core.Run(m, sim.Millisecond)
	r.Rows = append(r.Rows, Row{
		Label:    "A register after load constant #4",
		Paper:    "#754",
		Measured: fmt.Sprintf("#%X", m.Local(1)),
		OK:       m.Local(1) == 0x754,
	})
	return r
}

// E3ExpressionEvaluation reproduces the section 3.2.9 table: x + 2 and
// (v+w)*(y+z), with multiply at 7+wordlength cycles.
func E3ExpressionEvaluation() Result {
	r := Result{
		ID:    "E3",
		Title: "expression evaluation (paper 3.2.9)",
		Notes: "multiply totals 7+wordlength cycles; 39 on the 32-bit T424",
	}
	setup := "\tldc 3\n\tstl 1\n\tldc 4\n\tstl 2\n\tldc 5\n\tstl 3\n\tldc 6\n\tstl 4\n"
	r.Rows = append(r.Rows,
		fragmentRow("x + 2", setup, "\tldl 1\n\tadc 2", 2, 3),
		fragmentRow("(v + w) * (y + z)", setup,
			"\tldl 1\n\tldl 2\n\tadd\n\tldl 3\n\tldl 4\n\tadd\n\tmul", 8, 49),
	)
	return r
}
