package exp

import (
	"fmt"
	"strings"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// E16ConfigurationTradeoff reproduces the paper's development-model
// claim (section 1): "the program may be configured for execution by a
// single transputer (low cost), or for execution by a network of
// transputers (high performance)".  The same prime-counting PROC runs
// once with every worker on one transputer, then configured across a
// network of four; the answers must match and the network
// configuration must deliver near-linear speedup.
func E16ConfigurationTradeoff() Result {
	r := Result{
		ID:    "E16",
		Title: "configuration trade-off: one transputer vs a network (paper section 1)",
	}
	// Three workers: the collector's fourth link carries the host
	// connection (a transputer has exactly four links, a real
	// configuration constraint).
	const workers = 3
	const limit = 1200
	want := hostCountPrimes(2, limit)

	single, t1, err := runPrimesSingle(workers, limit)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "single", Measured: "error: " + err.Error()})
		return r
	}
	multi, tn, err := runPrimesConfigured(workers, limit)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "network", Measured: "error: " + err.Error()})
		return r
	}
	r.Rows = append(r.Rows, Row{
		Label:    "same logical program, same answer",
		Paper:    "logical behaviour unchanged by configuration",
		Measured: fmt.Sprintf("single %d, network %d, host %d", single, multi, want),
		OK:       single == want && multi == want,
	})
	r.Rows = append(r.Rows, Row{
		Label:    "one transputer (low cost)",
		Paper:    "-",
		Measured: t1.String(),
		OK:       true,
	})
	speedup := float64(t1) / float64(tn)
	r.Rows = append(r.Rows, Row{
		Label:    fmt.Sprintf("%d worker transputers + collector (high performance)", workers),
		Paper:    "near-linear speedup from the added concurrency",
		Measured: fmt.Sprintf("%v (%.2fx speedup)", tn, speedup),
		OK:       speedup > float64(workers)*0.7,
	})
	return r
}

func hostCountPrimes(lo, hi int) int64 {
	count := int64(0)
	for n := lo; n < hi; n++ {
		prime := n >= 2
		for d := 2; d*d <= n; d++ {
			if n%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			count++
		}
	}
	return count
}

// primeProc is the shared worker: counts primes in the strided set
// {start, start+stride, ...} below limit by trial division, and
// reports the count.  Striding balances the load — larger candidates
// cost more divisions.
const primeProc = `PROC count.primes(VALUE start, stride, limit, CHAN out) =
  VAR count, n, d, prime:
  SEQ
    count := 0
    n := start
    WHILE n < limit
      SEQ
        IF
          n < 2
            SKIP
          TRUE
            SEQ
              prime := TRUE
              d := 2
              WHILE (d * d) <= n
                SEQ
                  IF
                    (n \ d) = 0
                      prime := FALSE
                    TRUE
                      SKIP
                  d := d + 1
              IF
                prime
                  count := count + 1
                TRUE
                  SKIP
        n := n + stride
    out ! count
:
`

// runPrimesSingle runs all workers as a PAR on one transputer.
func runPrimesSingle(workers, limit int) (int64, sim.Time, error) {
	var sb strings.Builder
	sb.WriteString("CHAN screen:\nPLACE screen AT LINK0OUT:\n")
	fmt.Fprintf(&sb, "DEF workers = %d:\nDEF limit = %d:\n", workers, limit)
	sb.WriteString(primeProc)
	fmt.Fprintf(&sb, "CHAN results[%d]:\nVAR total, part:\nSEQ\n  total := 0\n  PAR\n", workers)
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "    count.primes(%d, %d, limit, results[%d])\n", 2+w, workers, w)
	}
	sb.WriteString("    SEQ w = [0 FOR workers]\n      SEQ\n        results[w] ? part\n        total := total + part\n")
	sb.WriteString("  screen ! 2\n  screen ! total\n  screen ! 4\n")

	comp, err := occam.Compile(sb.String(), occam.Options{})
	if err != nil {
		return 0, 0, err
	}
	net := network.NewSystem()
	n, err := net.AddTransputer("single", core.T424().WithMemory(64*1024))
	if err != nil {
		return 0, 0, err
	}
	host, err := net.AttachHost(n, 0, nil)
	if err != nil {
		return 0, 0, err
	}
	if err := n.Load(comp.Image); err != nil {
		return 0, 0, err
	}
	rep := net.Run(30 * sim.Second)
	if !rep.Settled || !host.Done || len(host.Values) != 1 {
		return 0, 0, fmt.Errorf("single-transputer run failed: %+v", rep)
	}
	return host.Values[0], host.DoneAt, nil
}

// runPrimesConfigured places each worker on its own transputer via
// PLACED PAR, with a collector transputer summing the counts.
func runPrimesConfigured(workers, limit int) (int64, sim.Time, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DEF workers = %d:\nDEF limit = %d:\n", workers, limit)
	sb.WriteString(primeProc)
	sb.WriteString("PLACED PAR\n")
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "  PROCESSOR %d\n", w)
		sb.WriteString("    CHAN out:\n    PLACE out AT LINK0OUT:\n")
		fmt.Fprintf(&sb, "    count.primes(%d, %d, limit, out)\n", 2+w, workers)
	}
	// The collector: one link per worker, the host on the remaining
	// link.
	fmt.Fprintf(&sb, "  PROCESSOR %d\n", workers)
	fmt.Fprintf(&sb, "    CHAN screen:\n    PLACE screen AT LINK%dOUT:\n", workers)
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "    CHAN in%d:\n    PLACE in%d AT LINK%dIN:\n", w, w, w)
	}
	sb.WriteString("    VAR total, part:\n    SEQ\n      total := 0\n")
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "      in%d ? part\n      total := total + part\n", w)
	}
	sb.WriteString("      screen ! 2\n      screen ! total\n      screen ! 4\n")

	procs, err := occam.CompileConfigured(sb.String(), occam.Options{})
	if err != nil {
		return 0, 0, err
	}
	net := network.NewSystem()
	nodes := make(map[int64]*network.Node)
	for _, p := range procs {
		n, aerr := net.AddTransputer(fmt.Sprintf("p%d", p.ID), core.T424().WithMemory(64*1024))
		if aerr != nil {
			return 0, 0, aerr
		}
		nodes[p.ID] = n
	}
	coll := nodes[int64(workers)]
	for w := 0; w < workers; w++ {
		if err := net.Connect(nodes[int64(w)], 0, coll, w); err != nil {
			return 0, 0, err
		}
	}
	host, err := net.AttachHost(coll, workers, nil)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range procs {
		if err := nodes[p.ID].Load(p.Compiled.Image); err != nil {
			return 0, 0, err
		}
	}
	rep := net.Run(30 * sim.Second)
	if !rep.Settled || !host.Done || len(host.Values) != 1 {
		return 0, 0, fmt.Errorf("configured run failed: %+v", rep)
	}
	return host.Values[0], host.DoneAt, nil
}
