// Package exp regenerates every quantitative table and figure of "The
// Transputer" (ISCA 1985) on the simulator, pairing each paper figure
// with a measured value.  The texp command prints the results;
// the repository's benchmarks wrap the same functions.
//
// The experiment identifiers (E1..E14, A1..A4) follow the
// per-experiment index in DESIGN.md.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Row is one line of an experiment's table.
type Row struct {
	Label    string
	Paper    string // what the paper states (or implies)
	Measured string // what the simulator produced
	OK       bool   // measured agrees with the paper (within the stated tolerance)
}

// Result is one reproduced table or figure.
type Result struct {
	ID    string
	Title string
	Notes string
	Rows  []Row
}

// Pass reports whether every row matched.
func (r Result) Pass() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return true
}

// Fprint renders the result as a table.
func (r Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", r.ID, r.Title)
	labelW, paperW := len("workload"), len("paper")
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
		if len(row.Paper) > paperW {
			paperW = len(row.Paper)
		}
	}
	fmt.Fprintf(w, "  %-*s  %-*s  %s\n", labelW, "workload", paperW, "paper", "measured")
	fmt.Fprintf(w, "  %s  %s  %s\n", strings.Repeat("-", labelW), strings.Repeat("-", paperW), strings.Repeat("-", 24))
	for _, row := range r.Rows {
		mark := ""
		if !row.OK {
			mark = "   <-- MISMATCH"
		}
		fmt.Fprintf(w, "  %-*s  %-*s  %s%s\n", labelW, row.Label, paperW, row.Paper, row.Measured, mark)
	}
	if r.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", r.Notes)
	}
	fmt.Fprintln(w)
}

// All runs every experiment in DESIGN.md order.
func All() []Result {
	return []Result{
		E1DirectFunctions(),
		E2Prefix754(),
		E3ExpressionEvaluation(),
		E4CommunicationCycles(),
		E5PrioritySwitch(),
		E6LinkThroughput(),
		E7MessageLatency(),
		E8DatabaseSearch16(),
		E9DatabaseSearch128(),
		E10Workstation(),
		E11MIPSRate(),
		E12SingleByteFraction(),
		E13SearchPipelining(),
		E14AggregateBandwidth(),
		E15InterruptLatency(),
		E16ConfigurationTradeoff(),
		A1StopAndWaitLink(),
		A2FixedWidthEncoding(),
		A3FetchBuffer(),
		A4WordLength(),
	}
}

// within reports |got-want| <= tol.
func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
