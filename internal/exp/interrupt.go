package exp

import (
	"fmt"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// E15InterruptLatency reproduces the paper's real-time design story
// (section 2.2.2): "the equivalent of an interrupt (a high priority
// process being scheduled in order to respond to an external stimulus)
// is designed entirely in occam" — a PRI PAR places the event handler
// at high priority, and the latency from stimulus to handler is
// bounded by the priority-switch time.
func E15InterruptLatency() Result {
	r := Result{
		ID:    "E15",
		Title: "interrupt response via PRI PAR and the event channel (paper 2.2.2)",
	}
	worst, count, err := measureInterruptLatency(12)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "interrupts", Measured: "error: " + err.Error()})
		return r
	}
	// The architectural bound: the 58-cycle priority switch plus the
	// handler's resumption of its input (a completed communication).
	const boundCycles = 58 + 24
	bound := sim.Time(boundCycles * 50)
	r.Rows = append(r.Rows, Row{
		Label:    fmt.Sprintf("%d stimuli handled at high priority", count),
		Paper:    "every stimulus runs the occam handler",
		Measured: fmt.Sprintf("%d handled", count),
		OK:       count == 12,
	})
	r.Rows = append(r.Rows, Row{
		Label:    "worst stimulus-to-handler latency",
		Paper:    fmt.Sprintf("bounded by the priority switch (<= %d cycles + input completion)", 58),
		Measured: fmt.Sprintf("%v (%d cycles)", worst, int64(worst)/50),
		OK:       worst <= bound,
	})
	return r
}

// interruptProgram: a high-priority handler counts events while a
// low-priority process spins.
const interruptProgram = `CHAN stimulus:
PLACE stimulus AT EVENT:
VAR count, work:
SEQ
  count := 0
  work := 0
  PRI PAR
    WHILE TRUE
      SEQ
        stimulus ? ANY
        count := count + 1
    WHILE TRUE
      work := work + 1
`

// measureInterruptLatency raises n events at irregular instants and
// returns the worst observed latency until the handler's count
// advances, plus the final count.
func measureInterruptLatency(n int) (worst sim.Time, count int64, err error) {
	comp, cerr := occam.Compile(interruptProgram, occam.Options{})
	if cerr != nil {
		return 0, 0, cerr
	}
	s := network.NewSystem()
	node, aerr := s.AddTransputer("rt", core.T424().WithMemory(64*1024))
	if aerr != nil {
		return 0, 0, aerr
	}
	if lerr := node.Load(comp.Image); lerr != nil {
		return 0, 0, lerr
	}
	readCount := func() int64 { return int64(node.M.Local(2)) }

	// Start the system and let both processes establish themselves.
	s.Run(50 * sim.Microsecond)
	for i := 0; i < n; i++ {
		// Let the background work run a varying while.
		s.Continue(s.Now() + sim.Time(1000+i*337))
		before := readCount()
		raisedAt := s.Now()
		node.M.RaiseEvent()
		// Advance in single-cycle steps until the handler has counted.
		deadline := raisedAt + 100*sim.Microsecond
		for readCount() == before {
			if s.Now() >= deadline {
				return 0, readCount(), fmt.Errorf("handler did not run within 100µs")
			}
			s.Continue(s.Now() + 50)
		}
		if lat := s.Now() - raisedAt; lat > worst {
			worst = lat
		}
	}
	return worst, readCount(), nil
}
