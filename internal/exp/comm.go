package exp

import (
	"fmt"

	"transputer/internal/asm"
	"transputer/internal/core"
	"transputer/internal/isa"
	"transputer/internal/sim"
)

// E4CommunicationCycles measures the cost of internal channel
// communication as a function of message size and compares it with the
// paper's max(24, 21+8n/wordlength) formula (section 3.2.10).
//
// Method: a parent outputs an n-byte block to a child over an internal
// channel.  The total cycle count varies only with the completing
// side's transfer cost, so the per-size delta from the 4-byte baseline
// isolates the formula's size term.
func E4CommunicationCycles() Result {
	r := Result{
		ID:    "E4",
		Title: "message communication cost, max(24, 21+8n/wordlength) cycles (paper 3.2.10)",
		Notes: "measured as the completing side's charge, from run-to-run cycle deltas",
	}
	sizes := []int{1, 4, 16, 64, 256}
	base, err := commRunCycles(4)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "baseline", Measured: "error: " + err.Error()})
		return r
	}
	baseCost := isa.CommunicationCycles(4, 32)
	for _, n := range sizes {
		total, err := commRunCycles(n)
		if err != nil {
			r.Rows = append(r.Rows, Row{Label: fmt.Sprintf("%d bytes", n), Measured: "error: " + err.Error()})
			continue
		}
		measured := int64(baseCost) + int64(total) - int64(base)
		want := int64(isa.CommunicationCycles(n, 32))
		r.Rows = append(r.Rows, Row{
			Label:    fmt.Sprintf("%3d bytes", n),
			Paper:    fmt.Sprintf("%d cycles", want),
			Measured: fmt.Sprintf("%d cycles", measured),
			OK:       measured == want,
		})
	}
	return r
}

// commRunCycles runs a parent/child block transfer of n bytes and
// returns the machine's total cycle count.
func commRunCycles(n int) (uint64, error) {
	// The byte count is loaded from a data word so the instruction
	// stream is identical for every size: cycle deltas between runs
	// then isolate the communication charge itself.
	src := fmt.Sprintf(`
	mint
	stl 3
	ldc 2
	stl 1
	ldpi cont
	stl 0
	ldc child-after
	ldlp -80
	startp
after:
	ajw -40
	ldpi buf
	ldlp 43
	ldpi cnt
	ldnl 0
	out
	ldlp 40
	endp
child:
	ldpi buf
	adc 512
	ldlp 83
	ldpi cnt
	ldnl 0
	in
	ldlp 80
	endp
cont:
	stopp
	align
cnt:
	word %d
buf:
	space 1024
`, n)
	a, err := asm.Assemble(src, 4)
	if err != nil {
		return 0, err
	}
	m, err := core.New(core.T424().WithMemory(64 * 1024))
	if err != nil {
		return 0, err
	}
	if err := m.Load(a.Image); err != nil {
		return 0, err
	}
	res := core.Run(m, 10*sim.Millisecond)
	if !res.Settled || m.Fault() != nil {
		return 0, fmt.Errorf("transfer run failed: settled=%v fault=%v", res.Settled, m.Fault())
	}
	return m.Stats().Cycles, nil
}

// E5PrioritySwitch measures the latency from a high-priority process
// becoming ready (while a low-priority process is executing long
// instructions) to its first instruction completing, and the cost of
// switching back down.  Paper 3.2.4: at most 58 cycles up, 17 cycles
// down.
func E5PrioritySwitch() Result {
	r := Result{
		ID:    "E5",
		Title: "priority switch latency (paper 3.2.4)",
		Notes: "worst case over wakeups injected at every point of a long block move",
	}
	worst, down, err := measurePrioritySwitch()
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "switch", Measured: "error: " + err.Error()})
		return r
	}
	r.Rows = append(r.Rows, Row{
		Label:    "priority 1 -> priority 0 (worst case)",
		Paper:    "<= 58 cycles",
		Measured: fmt.Sprintf("%d cycles", worst),
		OK:       worst <= isa.MaxPriority1To0Cycles,
	})
	r.Rows = append(r.Rows, Row{
		Label:    "priority 0 -> priority 1",
		Paper:    "17 cycles",
		Measured: fmt.Sprintf("%d cycles", down),
		OK:       down == isa.ResumeLowCycles,
	})
	return r
}

// measurePrioritySwitch determines the worst-case latency between a
// high-priority process becoming ready and its dispatch.  A wakeup
// lands, in the worst case, just after the processor committed to the
// longest uninterruptible execution slice; the latency is that slice
// plus the preemption charge.  Both parts are measured: the slice
// bound from a block-move-heavy low-priority loop (long instructions
// execute in installments precisely so this bound stays small), and
// the preemption charge from an injected wakeup.  The downward cost is
// measured when the high process stops and the interrupted
// low-priority process resumes.
func measurePrioritySwitch() (worstUp uint64, down uint64, err error) {
	const moveLoop = `
loop:
	ldpi buf
	ldpi buf
	adc 512
	ldc 400
	move
	j loop
	align
buf:
	space 1024
`
	// Longest uninterruptible slice under a move-heavy load.
	m, err := loadLow(moveLoop)
	if err != nil {
		return 0, 0, err
	}
	maxSlice := 0
	for i := 0; i < 400; i++ {
		if c := m.Step(); c > maxSlice {
			maxSlice = c
		}
	}

	// Preemption charge: inject a high-priority jump loop at an
	// instruction boundary; the next step preempts and runs the high
	// process's first instruction (a 3-cycle jump).
	m2, err := loadLow(moveLoop)
	if err != nil {
		return 0, 0, err
	}
	highIptr, highW := plantHigh(m2, isa.EncodeOperand(nil, isa.FnJ, -2)) // j to itself
	for i := 0; i < 7; i++ {
		m2.Step()
	}
	m2.StartProcess(highW, highIptr, core.PriorityHigh)
	stepCost := m2.Step()
	if m2.Wdesc != highW|core.PriorityHigh {
		return 0, 0, fmt.Errorf("high process not dispatched after preemption")
	}
	preemptCost := stepCost - 3 // subtract the jump itself
	worstUp = uint64(maxSlice + preemptCost)

	// Downward switch: the high process executes a single stop
	// process; the step that runs it carries the preemption charge,
	// the stop itself, and the restoration of the interrupted
	// low-priority state.  Subtracting the known instruction costs
	// isolates the downward charge.
	const simpleLoop = "loop:\n\tldc 0\n\tstl 1\n\tj loop\n"
	m3, err := loadLow(simpleLoop)
	if err != nil {
		return 0, 0, err
	}
	hi3, hw3 := plantHigh(m3, isa.EncodeOp(nil, isa.OpStopp))
	const injectAt = 9
	for i := 0; i < injectAt; i++ {
		m3.Step()
	}
	m3.StartProcess(hw3, hi3, core.PriorityHigh)
	stoppCycles, _ := isa.OpCycles(isa.OpStopp, 32)
	step := m3.Step() // preempt + stopp + resume interrupted state
	down = uint64(step - preemptCost - stoppCycles)
	if m3.Wdesc == hw3|core.PriorityHigh {
		return 0, 0, fmt.Errorf("high process still current after stopping")
	}
	return worstUp, down, nil
}

func loadLow(src string) (*core.Machine, error) {
	a, err := asm.Assemble(src, 4)
	if err != nil {
		return nil, err
	}
	m, err := core.New(core.T424().WithMemory(64 * 1024))
	if err != nil {
		return nil, err
	}
	if err := m.Load(a.Image); err != nil {
		return nil, err
	}
	return m, nil
}

// plantHigh writes a high-priority process's code after the loaded
// image and returns its instruction and workspace pointers.
func plantHigh(m *core.Machine, code []byte) (iptr, wptr uint64) {
	iptr = m.EntryWptr() + 4*128
	m.WriteBytes(iptr, code)
	wptr = m.EntryWptr() + 4*64
	return iptr, wptr
}

var _ = sim.Microsecond
