package exp

import (
	"fmt"

	"transputer/internal/apps/dbsearch"
	"transputer/internal/apps/workstation"
	"transputer/internal/sim"
)

// E8DatabaseSearch16 reproduces figure 8: the 4x4 concurrent database
// search, with answers checked against a host-side reference search.
func E8DatabaseSearch16() Result {
	r := Result{
		ID:    "E8",
		Title: "concurrent database search, 4x4 array (figure 8)",
	}
	p := dbsearch.Defaults16()
	s, err := dbsearch.Build(p)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "build", Measured: "error: " + err.Error()})
		return r
	}
	keys := []int64{11}
	counts, rep := s.RunSearches(keys, sim.Second)
	if !rep.Settled || len(counts) != 1 {
		r.Rows = append(r.Rows, Row{Label: "run", Measured: fmt.Sprintf("failed: %+v", rep)})
		return r
	}
	r.Rows = append(r.Rows, Row{
		Label:    "answers correct (vs host reference search)",
		Paper:    "search merges every transputer's matches",
		Measured: fmt.Sprintf("count %d == reference %d", counts[0], dbsearch.Reference(p, keys[0])),
		OK:       counts[0] == dbsearch.Reference(p, keys[0]),
	})
	r.Rows = append(r.Rows, Row{
		Label:    "longest request path",
		Paper:    "proportional to the longest path across the system",
		Measured: fmt.Sprintf("%d links for 4x4", p.LongestPathLinks()),
		OK:       p.LongestPathLinks() == 6,
	})
	r.Rows = append(r.Rows, Row{
		Label:    "single search latency, 3,200 records",
		Paper:    "(scaled-down figure 8 illustration)",
		Measured: rep.Time.String(),
		OK:       rep.Time < 3*sim.Millisecond,
	})
	return r
}

// E9DatabaseSearch128 reproduces the figure 7 analysis: 128
// transputers, 25,600 records, searched in under 1.3 ms; request
// propagation about 150 µs over the longest path.
func E9DatabaseSearch128() Result {
	r := Result{
		ID:    "E9",
		Title: "database search on the 128-transputer board (figure 7 / section 4.2)",
	}
	p := dbsearch.Defaults128()
	s, err := dbsearch.Build(p)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "build", Measured: "error: " + err.Error()})
		return r
	}
	// One warm-up key plus measured keys, pipelined.
	keys := []int64{5, 17, 29, 41}
	counts, rep := s.RunSearches(keys, 10*sim.Second)
	if !rep.Settled || len(counts) != len(keys) {
		r.Rows = append(r.Rows, Row{Label: "run", Measured: fmt.Sprintf("failed: %+v", rep)})
		return r
	}
	ok := true
	for i, k := range keys {
		if counts[i] != dbsearch.Reference(p, k) {
			ok = false
		}
	}
	r.Rows = append(r.Rows, Row{
		Label:    "records held",
		Paper:    "25,000 records on one board",
		Measured: fmt.Sprintf("%d records on %d transputers", p.TotalRecords(), p.Rows*p.Cols),
		OK:       p.TotalRecords() >= 25000,
	})
	r.Rows = append(r.Rows, Row{
		Label:    "answers correct",
		Paper:    "-",
		Measured: fmt.Sprintf("%v", ok),
		OK:       ok,
	})
	// Propagation estimate: longest path x per-hop message time.
	hop, err := PingLatency()
	if err == nil {
		prop := hop * sim.Time(p.LongestPathLinks())
		r.Rows = append(r.Rows, Row{
			Label:    fmt.Sprintf("request propagation (%d links x %v per 4-byte hop)", p.LongestPathLinks(), hop),
			Paper:    "about 150 µs",
			Measured: prop.String(),
			OK:       prop > 80*sim.Microsecond && prop < 220*sim.Microsecond,
		})
	}
	perQuery := rep.Time / sim.Time(len(keys))
	r.Rows = append(r.Rows, Row{
		Label:    "whole-database search (pipelined, per query)",
		Paper:    "less than 1.3 ms",
		Measured: perQuery.String(),
		OK:       perQuery < 1300*sim.Microsecond,
	})
	// Figure 7 claims "up to 1 GIPS" for the board — a peak figure;
	// the search is partly communication-bound, so the achieved rate
	// sits below the nominal 128 x 15 MIPS peak.
	var instrs uint64
	for _, n := range s.Net.Nodes() {
		instrs += n.M.Stats().Instructions
	}
	gips := float64(instrs) / (float64(rep.Time) * 1e-9) / 1e9
	nominal := 128 * 15.0 / 1000
	r.Rows = append(r.Rows, Row{
		Label:    "aggregate instruction rate during the search",
		Paper:    "up to 1 GIPS on the board",
		Measured: fmt.Sprintf("%.2f GIPS achieved (nominal peak %.1f)", gips, nominal),
		OK:       gips > 0.2 && gips < nominal,
	})
	return r
}

// E13SearchPipelining shows requests overlapping in the array: with
// several requests in flight, the per-query period drops below the
// single-query latency — "requests can be pipelined through the
// system" — and throughput survives scaling from 16 to 128 nodes.
func E13SearchPipelining() Result {
	r := Result{
		ID:    "E13",
		Title: "search request pipelining and scaling (paper 4.2)",
	}
	single, err := searchTime(dbsearch.Defaults16(), 1)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "single", Measured: "error: " + err.Error()})
		return r
	}
	burst, err := searchTime(dbsearch.Defaults16(), 8)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "burst", Measured: "error: " + err.Error()})
		return r
	}
	perQuery := burst / 8
	r.Rows = append(r.Rows, Row{
		Label:    "one query latency (4x4)",
		Paper:    "-",
		Measured: single.String(),
		OK:       true,
	})
	r.Rows = append(r.Rows, Row{
		Label:    "per-query period, 8 pipelined",
		Paper:    "below the single-query latency",
		Measured: fmt.Sprintf("%v (%.2fx the latency)", perQuery, float64(perQuery)/float64(single)),
		OK:       perQuery < single,
	})
	big, err := searchTime(dbsearch.Defaults128(), 8)
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "scale", Measured: "error: " + err.Error()})
		return r
	}
	bigPer := big / 8
	r.Rows = append(r.Rows, Row{
		Label:    "per-query period on 128 nodes (8x database)",
		Paper:    "throughput not adversely affected by adding boards",
		Measured: fmt.Sprintf("%v vs %v on 16 nodes", bigPer, perQuery),
		OK:       bigPer < 2*perQuery,
	})
	return r
}

func searchTime(p dbsearch.Params, queries int) (sim.Time, error) {
	s, err := dbsearch.Build(p)
	if err != nil {
		return 0, err
	}
	keys := make([]int64, queries)
	for i := range keys {
		keys[i] = int64((7 * i) % p.KeySpace)
	}
	counts, rep := s.RunSearches(keys, 10*sim.Second)
	if !rep.Settled || len(counts) != queries {
		return 0, fmt.Errorf("search failed: %+v", rep)
	}
	return rep.Time, nil
}

// E10Workstation reproduces figure 6: the three-transputer personal
// workstation completing a disk-and-display session.
func E10Workstation() Result {
	r := Result{
		ID:    "E10",
		Title: "personal workstation: app, disk and graphics transputers (figure 6)",
	}
	s, err := workstation.Build()
	if err != nil {
		r.Rows = append(r.Rows, Row{Label: "build", Measured: "error: " + err.Error()})
		return r
	}
	rep := s.Run(sim.Second)
	okRun := rep.Settled && s.Host.Done && len(s.Host.Values) == 2
	r.Rows = append(r.Rows, Row{
		Label:    "session completes over standard links",
		Paper:    "functionally distributed transputers on one card",
		Measured: fmt.Sprintf("settled=%v in %v", okRun, rep.Time),
		OK:       okRun,
	})
	if okRun {
		r.Rows = append(r.Rows, Row{
			Label:    "disk transputer round trip verified",
			Paper:    "-",
			Measured: fmt.Sprintf("checksum %d (expect %d)", s.Host.Values[0], workstation.ExpectedDiskSum()),
			OK:       s.Host.Values[0] == workstation.ExpectedDiskSum(),
		})
		r.Rows = append(r.Rows, Row{
			Label:    "graphics transputer display verified",
			Paper:    "-",
			Measured: fmt.Sprintf("checksum %d (expect %d)", s.Host.Values[1], workstation.ExpectedGfxSum()),
			OK:       s.Host.Values[1] == workstation.ExpectedGfxSum(),
		})
	}
	return r
}
