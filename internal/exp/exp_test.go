package exp

import (
	"strings"
	"testing"
)

// Each experiment must reproduce the paper's figures.  These tests are
// the repository's headline claims; a failure means the reproduction
// has drifted.

func check(t *testing.T, r Result) {
	t.Helper()
	for _, row := range r.Rows {
		if !row.OK {
			t.Errorf("%s %q: paper %q, measured %q", r.ID, row.Label, row.Paper, row.Measured)
		}
	}
}

func TestE1DirectFunctions(t *testing.T)     { check(t, E1DirectFunctions()) }
func TestE2Prefix754(t *testing.T)           { check(t, E2Prefix754()) }
func TestE3ExpressionEval(t *testing.T)      { check(t, E3ExpressionEvaluation()) }
func TestE4CommunicationCycles(t *testing.T) { check(t, E4CommunicationCycles()) }
func TestE5PrioritySwitch(t *testing.T)      { check(t, E5PrioritySwitch()) }
func TestE6LinkThroughput(t *testing.T)      { check(t, E6LinkThroughput()) }
func TestE7MessageLatency(t *testing.T)      { check(t, E7MessageLatency()) }
func TestE10Workstation(t *testing.T)        { check(t, E10Workstation()) }
func TestE11MIPSRate(t *testing.T)           { check(t, E11MIPSRate()) }
func TestE12SingleByte(t *testing.T)         { check(t, E12SingleByteFraction()) }
func TestE14AggregateBandwidth(t *testing.T) { check(t, E14AggregateBandwidth()) }
func TestA1StopAndWait(t *testing.T)         { check(t, A1StopAndWaitLink()) }
func TestA2FixedWidth(t *testing.T)          { check(t, A2FixedWidthEncoding()) }
func TestA3FetchBuffer(t *testing.T)         { check(t, A3FetchBuffer()) }
func TestA4WordLength(t *testing.T)          { check(t, A4WordLength()) }

func TestE8DatabaseSearch16(t *testing.T) {
	if testing.Short() {
		t.Skip("array build is slow under -short")
	}
	check(t, E8DatabaseSearch16())
}

func TestE9DatabaseSearch128(t *testing.T) {
	if testing.Short() {
		t.Skip("128-node board is slow under -short")
	}
	check(t, E9DatabaseSearch128())
}

func TestE13SearchPipelining(t *testing.T) {
	if testing.Short() {
		t.Skip("pipelining sweep is slow under -short")
	}
	check(t, E13SearchPipelining())
}

func TestE15InterruptLatency(t *testing.T) { check(t, E15InterruptLatency()) }

func TestE16ConfigurationTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("prime sweep is slow under -short")
	}
	check(t, E16ConfigurationTradeoff())
}

func TestResultFormatting(t *testing.T) {
	r := Result{
		ID:    "EX",
		Title: "demo",
		Notes: "a note",
		Rows: []Row{
			{Label: "good", Paper: "p", Measured: "m", OK: true},
			{Label: "bad", Paper: "p", Measured: "m", OK: false},
		},
	}
	if r.Pass() {
		t.Error("result with a failing row must not pass")
	}
	var sb strings.Builder
	r.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"EX: demo", "MISMATCH", "a note", "workload"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !(Result{Rows: []Row{{OK: true}}}).Pass() {
		t.Error("all-OK result must pass")
	}
	if !within(1.0, 1.05, 0.1) || within(1.0, 2.0, 0.1) {
		t.Error("within helper wrong")
	}
}
