package dbsearch

import (
	"testing"

	"transputer/internal/sim"
)

// TestSmallArray checks answers against the host-side reference on a
// 2x2 array.
func TestSmallArray(t *testing.T) {
	p := Params{Rows: 2, Cols: 2, RecordsPerNode: 50, KeySpace: 16, MemBytes: 64 * 1024}
	s, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{3, 7, 3, 15}
	got, rep := s.RunSearches(keys, 100*sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	if !s.Results.Done {
		t.Fatal("results host did not receive exit")
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d answers for %d keys: %v", len(got), len(keys), got)
	}
	for i, k := range keys {
		want := Reference(p, k)
		if got[i] != want {
			t.Errorf("key %d: count = %d, want %d", k, got[i], want)
		}
	}
}

// TestFigure8Array runs the paper's 4x4 illustration with the full 200
// records per node.
func TestFigure8Array(t *testing.T) {
	p := Defaults16()
	s, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{11, 42}
	got, rep := s.RunSearches(keys, 500*sim.Millisecond)
	if !rep.Settled || !s.Results.Done {
		t.Fatalf("rep=%+v done=%v", rep, s.Results.Done)
	}
	total := int64(0)
	for i, k := range keys {
		want := Reference(p, k)
		if got[i] != want {
			t.Errorf("key %d: count = %d, want %d", k, got[i], want)
		}
		total += got[i]
	}
	if total == 0 {
		t.Error("suspicious: no key matched anywhere")
	}
	if p.LongestPathLinks() != 6 {
		t.Errorf("longest path = %d links, want 6 for 4x4", p.LongestPathLinks())
	}
}

// TestReferenceDistribution sanity-checks the record generator: every
// node contributes and keys are spread over the space.
func TestReferenceDistribution(t *testing.T) {
	p := Defaults16()
	sum := int64(0)
	for k := int64(0); k < int64(p.KeySpace); k++ {
		sum += Reference(p, k)
	}
	if sum != int64(p.TotalRecords()) {
		t.Errorf("reference counts sum to %d, want %d", sum, p.TotalRecords())
	}
	if p.TotalRecords() != 3200 {
		t.Errorf("4x4 records = %d", p.TotalRecords())
	}
	if Defaults128().TotalRecords() != 25600 {
		t.Errorf("128-board records = %d", Defaults128().TotalRecords())
	}
	if Defaults128().LongestPathLinks() != 22 {
		t.Errorf("128-board longest path = %d", Defaults128().LongestPathLinks())
	}
}
