// Package dbsearch builds the concurrent database search of the
// paper's section 4.2 (figures 7 and 8): a rectangular array of
// transputers, each holding part of a database in local memory.  A
// search request is input at one corner, flooded across the array over
// a spanning tree of links, searched against each transputer's local
// records concurrently, and the answers merge back to the corner.
//
// Each node runs two concurrent occam processes, exactly as the paper
// sketches: one receives requests, forwards them to transputers that
// have not yet seen them, and searches the local data; the other
// merges the local answer with the answers from downstream transputers
// and forwards the combination.  Because the two are concurrent,
// "requests can be pipelined through the system with a further request
// being input before the previous one has come out."
//
// Each node generates its records deterministically from its node
// number with a small congruential generator, standing in for the
// partitioned database the paper assumes; Reference reproduces the
// same records on the host for answer checking.
package dbsearch

import (
	"fmt"
	"strings"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// Params configures the array.
type Params struct {
	Rows, Cols int
	// RecordsPerNode is the local database size (the paper assumes 200
	// sixteen-byte records per transputer).
	RecordsPerNode int
	// KeySpace is the number of distinct keys.
	KeySpace int
	// MemBytes per transputer.
	MemBytes int
}

// Defaults16 is the paper's illustrative 4x4 array (figure 8).
func Defaults16() Params {
	return Params{Rows: 4, Cols: 4, RecordsPerNode: 200, KeySpace: 64, MemBytes: 64 * 1024}
}

// Defaults128 is the single-board 128-transputer system (figure 7):
// 8x16 transputers with 200 records each — 25,600 records, matching
// the paper's "the whole system can hold 25,000 records".
func Defaults128() Params {
	return Params{Rows: 8, Cols: 16, RecordsPerNode: 200, KeySpace: 64, MemBytes: 64 * 1024}
}

// System is a built search array.
type System struct {
	Params Params
	Net    *network.System
	// Results receives one count per search request.
	Results *network.Host
	// Keys feeds search keys to the corner transputer; a negative key
	// ends the run.
	Keys *network.Host
	Root *network.Node
}

// nextState advances the record generator.  Kept small so checked
// 32-bit multiplication cannot overflow.
func nextState(x int64) int64 { return (x*1075 + 4567) % 10007 }

// Reference returns the number of records matching key across the
// whole array, computed on the host with the same generator.
func Reference(p Params, key int64) int64 {
	count := int64(0)
	for node := 0; node < p.Rows*p.Cols; node++ {
		x := int64(node + 1)
		for i := 0; i < p.RecordsPerNode; i++ {
			x = nextState(x)
			if x%int64(p.KeySpace) == key {
				count++
			}
		}
	}
	return count
}

// LongestPathLinks is the number of links on the longest request path
// — the quantity the paper's latency analysis is based on.
func (p Params) LongestPathLinks() int { return (p.Rows - 1) + (p.Cols - 1) }

// TotalRecords is the database size across the array.
func (p Params) TotalRecords() int { return p.Rows * p.Cols * p.RecordsPerNode }

// Link assignment per node:
//
//	link 0: parent (requests in, answers out); on the root this is the
//	        key-feed host
//	link 1: child to the right (requests out, answers in)
//	link 2: child below (first column only)
//	link 3: root only: the results host
//
// Requests enter node (0,0), flow down the first column and across
// each row — a spanning tree whose longest path is
// (Rows-1)+(Cols-1) links.

// Build compiles one occam program per node and wires the array.
func Build(p Params) (*System, error) {
	net := network.NewSystem()
	nodes := make([][]*network.Node, p.Rows)
	cfg := core.T424().WithMemory(p.MemBytes)
	for r := 0; r < p.Rows; r++ {
		nodes[r] = make([]*network.Node, p.Cols)
		for c := 0; c < p.Cols; c++ {
			n, err := net.AddTransputer(fmt.Sprintf("n%d.%d", r, c), cfg)
			if err != nil {
				return nil, err
			}
			nodes[r][c] = n
		}
	}
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			if c+1 < p.Cols {
				if err := net.Connect(nodes[r][c], 1, nodes[r][c+1], 0); err != nil {
					return nil, err
				}
			}
			if c == 0 && r+1 < p.Rows {
				if err := net.Connect(nodes[r][0], 2, nodes[r+1][0], 0); err != nil {
					return nil, err
				}
			}
		}
	}
	results, err := net.AttachHost(nodes[0][0], 3, nil)
	if err != nil {
		return nil, err
	}
	keys, err := net.AttachHost(nodes[0][0], 0, nil)
	if err != nil {
		return nil, err
	}
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			src := nodeSource(p, r, c)
			comp, cerr := occam.Compile(src, occam.Options{})
			if cerr != nil {
				return nil, fmt.Errorf("node %d.%d: %w\n%s", r, c, cerr, src)
			}
			if lerr := nodes[r][c].Load(comp.Image); lerr != nil {
				return nil, fmt.Errorf("node %d.%d: %w", r, c, lerr)
			}
		}
	}
	return &System{
		Params: p, Net: net, Results: results, Keys: keys, Root: nodes[0][0],
	}, nil
}

// RunSearches feeds the keys through the array and returns the counts.
func (s *System) RunSearches(keys []int64, limit sim.Time) ([]int64, network.Report) {
	s.Keys.QueueInput(keys...)
	s.Keys.QueueInput(-1)
	rep := s.Net.Run(limit)
	return s.Results.Values, rep
}

// nodeSource generates the occam program for node (r,c).  Every node
// runs the same two-process algorithm; only link placement and the
// record seed differ — "a small program in each transputer does the
// search".
func nodeSource(p Params, r, c int) string {
	var sb strings.Builder
	seed := r*p.Cols + c + 1
	root := r == 0 && c == 0
	right := c+1 < p.Cols
	down := c == 0 && r+1 < p.Rows

	fmt.Fprintf(&sb, "DEF n = %d:\n", p.RecordsPerNode)
	fmt.Fprintf(&sb, "DEF keyspace = %d:\n", p.KeySpace)
	fmt.Fprintf(&sb, "DEF seed = %d:\n", seed)

	if root {
		sb.WriteString(`CHAN keys.req, keys.in, res.out:
PLACE keys.req AT LINK0OUT:
PLACE keys.in AT LINK0IN:
PLACE res.out AT LINK3OUT:
`)
	} else {
		sb.WriteString(`CHAN req.in, ans.out:
PLACE req.in AT LINK0IN:
PLACE ans.out AT LINK0OUT:
`)
	}
	if right {
		sb.WriteString("CHAN req.right, ans.right:\nPLACE req.right AT LINK1OUT:\nPLACE ans.right AT LINK1IN:\n")
	}
	if down {
		sb.WriteString("CHAN req.down, ans.down:\nPLACE req.down AT LINK2OUT:\nPLACE ans.down AT LINK2IN:\n")
	}

	// Forwarding channels are passed to the two PROCs as parameters
	// (this compiler's PROC bodies see only their parameters and
	// global constants).
	fwdParams := ""
	fwdArgs := ""
	ansParams := ""
	ansArgs := ""
	if right {
		fwdParams += ", CHAN fr"
		fwdArgs += ", req.right"
		ansParams += ", CHAN ar"
		ansArgs += ", ans.right"
	}
	if down {
		fwdParams += ", CHAN fd"
		fwdArgs += ", req.down"
		ansParams += ", CHAN ad"
		ansArgs += ", ans.down"
	}

	// The searcher process: generate the local database, then loop
	// receiving a key, forwarding it, searching locally and passing
	// the local count to the merger.
	sb.WriteString("CHAN local, issued:\n")
	fmt.Fprintf(&sb, "PROC search(CHAN getkey, CHAN put, CHAN fin%s) =\n", fwdParams)
	sb.WriteString(`  VAR db[n], x, key, count, going, sent:
  SEQ
    x := seed
    SEQ i = [0 FOR n]
      SEQ
        x := ((x * 1075) + 4567) \ 10007
        db[i] := x \ keyspace
    going := TRUE
    sent := 0
    WHILE going
      SEQ
        getkey ? key
        IF
          key < 0
            SEQ
              fin ! sent
              going := FALSE
          TRUE
            SEQ
`)
	ind := "              "
	if right {
		sb.WriteString(ind + "fr ! key\n")
	}
	if down {
		sb.WriteString(ind + "fd ! key\n")
	}
	sb.WriteString(ind + "count := 0\n")
	sb.WriteString(ind + "SEQ i = [0 FOR n]\n")
	sb.WriteString(ind + "  IF\n")
	sb.WriteString(ind + "    db[i] = key\n")
	sb.WriteString(ind + "      count := count + 1\n")
	sb.WriteString(ind + "    TRUE\n")
	sb.WriteString(ind + "      SKIP\n")
	sb.WriteString(ind + "put ! count\n")
	sb.WriteString(ind + "sent := sent + 1\n")
	sb.WriteString(":\n")

	// The merger process: combine the local answer with downstream
	// answers and forward.
	fmt.Fprintf(&sb, "PROC merge(CHAN take, CHAN put, CHAN fin%s) =\n", ansParams)
	sb.WriteString(`  VAR count, sub, total, answered:
  SEQ
    total := -1
    answered := 0
    WHILE (total < 0) OR (answered < total)
      ALT
        take ? count
          SEQ
`)
	ind = "            "
	if right {
		sb.WriteString(ind + "ar ? sub\n")
		sb.WriteString(ind + "count := count + sub\n")
	}
	if down {
		sb.WriteString(ind + "ad ? sub\n")
		sb.WriteString(ind + "count := count + sub\n")
	}
	if root {
		sb.WriteString(ind + "put ! 2\n")
	}
	sb.WriteString(ind + "put ! count\n")
	sb.WriteString(ind + "answered := answered + 1\n")
	sb.WriteString(`        (total < 0) & fin ? total
          SKIP
`)
	if root {
		sb.WriteString("    put ! 4\n")
	}
	sb.WriteString(":\n")

	// Top level: the root pulls keys from the key-feed host; other
	// nodes take requests from their parent link.
	if root {
		sb.WriteString(`CHAN feed:
PAR
  VAR k, going:
  SEQ
    going := TRUE
    WHILE going
      SEQ
        keys.req ! 5
        keys.in ? k
        feed ! k
        IF
          k < 0
            going := FALSE
          TRUE
            SKIP
`)
		fmt.Fprintf(&sb, "  search(feed, local, issued%s)\n", fwdArgs)
		fmt.Fprintf(&sb, "  merge(local, res.out, issued%s)\n", ansArgs)
	} else {
		sb.WriteString("PAR\n")
		fmt.Fprintf(&sb, "  search(req.in, local, issued%s)\n", fwdArgs)
		fmt.Fprintf(&sb, "  merge(local, ans.out, issued%s)\n", ansArgs)
	}
	return sb.String()
}
