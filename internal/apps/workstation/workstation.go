// Package workstation builds the personal workstation of the paper's
// section 4.1 (figure 6): an applications transputer that "accepts the
// user's commands and carries out the appropriate processing, calling
// on two other transputers, which look after a disk system and a
// graphics display system respectively", all connected by standard
// links.
//
// The disk and graphics transputers run occam service loops standing
// in for the transputer-based device controllers the paper describes;
// the substitution preserves what the figure demonstrates — function
// distributed across ordinary transputers reached over links.
package workstation

import (
	"fmt"
	"io"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// Geometry of the simulated devices.
const (
	Blocks    = 8  // disk blocks
	BlockSize = 8  // words per block
	FbWidth   = 16 // framebuffer width in pixels
	FbHeight  = 8
)

// Disk protocol operations (words on the disk transputer's link).
const (
	diskWrite = 1
	diskRead  = 2
)

// Graphics protocol operations.
const (
	gfxPoint    = 1
	gfxClear    = 2
	gfxChecksum = 3
)

// System is a built workstation.
type System struct {
	Net  *network.System
	Host *network.Host
	App  *network.Node
	Disk *network.Node
	Gfx  *network.Node
}

// diskSource is the disk controller service loop.
var diskSource = fmt.Sprintf(`DEF nblocks = %d:
DEF bsize = %d:
CHAN cmd, rsp:
PLACE cmd AT LINK0IN:
PLACE rsp AT LINK0OUT:
VAR store[%d], op, blk, v:
WHILE TRUE
  SEQ
    cmd ? op
    IF
      op = %d
        SEQ
          cmd ? blk
          SEQ i = [0 FOR bsize]
            SEQ
              cmd ? v
              store[((blk * bsize) + i)] := v
      op = %d
        SEQ
          cmd ? blk
          SEQ i = [0 FOR bsize]
            rsp ! store[((blk * bsize) + i)]
      TRUE
        SKIP
`, Blocks, BlockSize, Blocks*BlockSize, diskWrite, diskRead)

// gfxSource is the graphics controller service loop.
var gfxSource = fmt.Sprintf(`DEF width = %d:
DEF height = %d:
CHAN cmd, rsp:
PLACE cmd AT LINK0IN:
PLACE rsp AT LINK0OUT:
VAR fb[%d], op, x, y, colour, sum:
WHILE TRUE
  SEQ
    cmd ? op
    IF
      op = %d
        SEQ
          cmd ? x
          cmd ? y
          cmd ? colour
          fb[((y * width) + x)] := colour
      op = %d
        SEQ
          cmd ? colour
          SEQ i = [0 FOR (width * height)]
            fb[i] := colour
      op = %d
        SEQ
          sum := 0
          SEQ i = [0 FOR (width * height)]
            sum := sum + ((i + 1) * fb[i])
          rsp ! sum
      TRUE
        SKIP
`, FbWidth, FbHeight, FbWidth*FbHeight, gfxPoint, gfxClear, gfxChecksum)

// appSource is the applications transputer: it writes a pattern of
// blocks to the disk, reads them back summing, draws a diagonal on the
// display, and reports both checksums to the host.
var appSource = fmt.Sprintf(`DEF dwrite = %d:
DEF dread = %d:
DEF gpoint = %d:
DEF gclear = %d:
DEF gsum = %d:
DEF nblocks = %d:
DEF bsize = %d:
DEF height = %d:
DEF disk.label = "disk: ":
DEF gfx.label = "display: ":
CHAN screen, disk.cmd, disk.rsp, gfx.cmd, gfx.rsp:
PLACE screen AT LINK0OUT:
PLACE disk.cmd AT LINK1OUT:
PLACE disk.rsp AT LINK1IN:
PLACE gfx.cmd AT LINK2OUT:
PLACE gfx.rsp AT LINK2IN:
PROC write.string(CHAN out, VALUE s[]) =
  SEQ i = [1 FOR s[BYTE 0]]
    SEQ
      out ! 1
      out ! s[BYTE i]
:
VAR v, disksum, gfxsum:
SEQ
  -- file the pattern onto the disk
  SEQ b = [0 FOR nblocks]
    SEQ
      disk.cmd ! dwrite
      disk.cmd ! b
      SEQ i = [0 FOR bsize]
        disk.cmd ! ((b * 100) + i)
  -- read it back, accumulating a checksum
  disksum := 0
  SEQ b = [0 FOR nblocks]
    SEQ
      disk.cmd ! dread
      disk.cmd ! b
      SEQ i = [0 FOR bsize]
        SEQ
          disk.rsp ? v
          disksum := disksum + v
  -- draw a diagonal and fetch the display checksum
  gfx.cmd ! gclear
  gfx.cmd ! 0
  SEQ i = [0 FOR height]
    SEQ
      gfx.cmd ! gpoint
      gfx.cmd ! i
      gfx.cmd ! i
      gfx.cmd ! (i + 1)
  gfx.cmd ! gsum
  gfx.rsp ? gfxsum
  write.string(screen, disk.label)
  screen ! 2
  screen ! disksum
  write.string(screen, gfx.label)
  screen ! 2
  screen ! gfxsum
  screen ! 4
`, diskWrite, diskRead, gfxPoint, gfxClear, gfxChecksum,
	Blocks, BlockSize, FbHeight)

// ExpectedDiskSum is the checksum the application computes from the
// blocks it filed.
func ExpectedDiskSum() int64 {
	sum := int64(0)
	for b := 0; b < Blocks; b++ {
		for i := 0; i < BlockSize; i++ {
			sum += int64(b*100 + i)
		}
	}
	return sum
}

// ExpectedGfxSum is the display checksum after the diagonal.
func ExpectedGfxSum() int64 {
	fb := make([]int64, FbWidth*FbHeight)
	for i := 0; i < FbHeight; i++ {
		fb[i*FbWidth+i] = int64(i + 1)
	}
	sum := int64(0)
	for i, v := range fb {
		sum += int64(i+1) * v
	}
	return sum
}

// Build compiles and wires the three transputers: the resulting system
// "can be engineered onto a single card".
func Build() (*System, error) { return BuildWithOutput(nil) }

// BuildWithOutput additionally directs the application's printed text
// to w.
func BuildWithOutput(w io.Writer) (*System, error) {
	net := network.NewSystem()
	cfg := core.T424().WithMemory(64 * 1024)
	app, err := net.AddTransputer("app", cfg)
	if err != nil {
		return nil, err
	}
	disk, err := net.AddTransputer("disk", cfg)
	if err != nil {
		return nil, err
	}
	gfx, err := net.AddTransputer("gfx", cfg)
	if err != nil {
		return nil, err
	}
	if err := net.Connect(app, 1, disk, 0); err != nil {
		return nil, err
	}
	if err := net.Connect(app, 2, gfx, 0); err != nil {
		return nil, err
	}
	host, err := net.AttachHost(app, 0, w)
	if err != nil {
		return nil, err
	}
	for _, load := range []struct {
		node *network.Node
		src  string
	}{{app, appSource}, {disk, diskSource}, {gfx, gfxSource}} {
		comp, cerr := occam.Compile(load.src, occam.Options{})
		if cerr != nil {
			return nil, fmt.Errorf("%s: %w", load.node.Name, cerr)
		}
		if lerr := load.node.Load(comp.Image); lerr != nil {
			return nil, fmt.Errorf("%s: %w", load.node.Name, lerr)
		}
	}
	return &System{Net: net, Host: host, App: app, Disk: disk, Gfx: gfx}, nil
}

// Run drives the workstation session to completion.
func (s *System) Run(limit sim.Time) network.Report {
	return s.Net.Run(limit)
}
