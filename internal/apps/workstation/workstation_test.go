package workstation

import (
	"strings"
	"testing"

	"transputer/internal/sim"
)

func TestWorkstationSession(t *testing.T) {
	s, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run(500 * sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	if !s.Host.Done {
		t.Fatal("application did not exit")
	}
	for _, n := range []struct {
		name  string
		fault error
	}{{"app", s.App.M.Fault()}, {"disk", s.Disk.M.Fault()}, {"gfx", s.Gfx.M.Fault()}} {
		if n.fault != nil {
			t.Errorf("%s: %v", n.name, n.fault)
		}
	}
	if len(s.Host.Values) != 2 {
		t.Fatalf("values = %v", s.Host.Values)
	}
	if s.Host.Values[0] != ExpectedDiskSum() {
		t.Errorf("disk checksum = %d, want %d", s.Host.Values[0], ExpectedDiskSum())
	}
	if s.Host.Values[1] != ExpectedGfxSum() {
		t.Errorf("display checksum = %d, want %d", s.Host.Values[1], ExpectedGfxSum())
	}
	// All three transputers did real work.
	for _, n := range s.Net.Nodes() {
		if n.M.Stats().Instructions == 0 {
			t.Errorf("%s executed nothing", n.Name)
		}
	}
}

// TestWorkstationOutputText: the application prints its labels itself
// through occam string tables.
func TestWorkstationOutputText(t *testing.T) {
	var out strings.Builder
	s, err := BuildWithOutput(&out)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run(sim.Second)
	if !rep.Settled || !s.Host.Done {
		t.Fatalf("%+v", rep)
	}
	text := out.String()
	if !strings.Contains(text, "disk: ") || !strings.Contains(text, "display: ") {
		t.Errorf("output = %q", text)
	}
}
