package sieve

import (
	"testing"

	"transputer/internal/sim"
)

func TestPrimesReference(t *testing.T) {
	got := Primes(30)
	want := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("Primes(30) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Primes(30) = %v", got)
		}
	}
}

func TestPipelineSievesPrimes(t *testing.T) {
	p := Defaults()
	want := Primes(p.Limit)
	if len(want) > p.Stages {
		t.Fatalf("parameters inconsistent: %d primes, %d stages", len(want), p.Stages)
	}
	s, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	got, rep := s.Run(sim.Second)
	if !rep.Settled || !s.Host.Done {
		t.Fatalf("rep=%+v done=%v", rep, s.Host.Done)
	}
	if len(got) != len(want) {
		t.Fatalf("primes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("primes = %v, want %v", got, want)
		}
	}
}

func TestSmallPipeline(t *testing.T) {
	p := Params{Limit: 10, Stages: 4}
	s, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	got, rep := s.Run(sim.Second)
	if !rep.Settled {
		t.Fatalf("%+v", rep)
	}
	want := []int64{2, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("primes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("primes = %v", got)
		}
	}
}
