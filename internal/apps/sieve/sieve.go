// Package sieve builds a prime sieve pipeline across a chain of
// transputers — the classic communicating-process algorithm the
// paper's programming model invites ("new algorithms need to be
// developed" for local processing and communication; the pipeline is
// the canonical example from the occam literature it cites).
//
// A generator transputer emits the integers 2..N followed by a
// negative sentinel.  Each filter stage claims the first number it
// sees as its prime and forwards only non-multiples.  When the
// sentinel arrives, each stage appends its prime to the drain wave, so
// the collector receives every prime in ascending order.
package sieve

import (
	"fmt"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// Params configures the pipeline.
type Params struct {
	// Limit: the sieve covers 2..Limit.
	Limit int
	// Stages is the number of filter transputers; it must be at least
	// the number of primes up to Limit for the drain to be exact.
	Stages int
}

// Defaults sieves to 50 with one stage per prime (15 primes).
func Defaults() Params { return Params{Limit: 50, Stages: 15} }

// Primes computes the reference answer on the host.
func Primes(limit int) []int64 {
	sieve := make([]bool, limit+1)
	var out []int64
	for i := 2; i <= limit; i++ {
		if !sieve[i] {
			out = append(out, int64(i))
			for j := i * i; j <= limit; j += i {
				sieve[j] = true
			}
		}
	}
	return out
}

// System is a built pipeline.
type System struct {
	Params Params
	Net    *network.System
	Host   *network.Host
}

const generatorTemplate = `DEF limit = %d:
CHAN out:
PLACE out AT LINK1OUT:
SEQ
  SEQ i = [2 FOR (limit - 1)]
    out ! i
  out ! -1
`

// Every filter stage runs the same program: the per-node configuration
// differences are entirely in the wiring.
const stageSource = `CHAN in, out:
PLACE in AT LINK0IN:
PLACE out AT LINK1OUT:
VAR p, x, claimed, draining:
SEQ
  claimed := FALSE
  draining := FALSE
  WHILE NOT draining
    SEQ
      in ? x
      IF
        x < 0
          SEQ
            IF
              claimed
                out ! p
              TRUE
                SKIP
            out ! -1
            draining := TRUE
        NOT claimed
          SEQ
            p := x
            claimed := TRUE
        (x \ p) <> 0
          out ! x
        TRUE
          SKIP
`

const collectorSource = `CHAN in, screen:
PLACE in AT LINK0IN:
PLACE screen AT LINK1OUT:
VAR x, going:
SEQ
  going := TRUE
  WHILE going
    SEQ
      in ? x
      IF
        x < 0
          SEQ
            screen ! 4
            going := FALSE
        TRUE
          SEQ
            screen ! 2
            screen ! x
`

// Build wires generator -> stages -> collector.
func Build(p Params) (*System, error) {
	net := network.NewSystem()
	cfg := core.T424().WithMemory(32 * 1024)
	gen, err := net.AddTransputer("gen", cfg)
	if err != nil {
		return nil, err
	}
	prev := gen
	for i := 0; i < p.Stages; i++ {
		stage, serr := net.AddTransputer(fmt.Sprintf("s%d", i), cfg)
		if serr != nil {
			return nil, serr
		}
		if cerr := net.Connect(prev, 1, stage, 0); cerr != nil {
			return nil, cerr
		}
		prev = stage
	}
	coll, err := net.AddTransputer("collect", cfg)
	if err != nil {
		return nil, err
	}
	if err := net.Connect(prev, 1, coll, 0); err != nil {
		return nil, err
	}
	// Pipeline input arrives on the collector's link 0; the host hangs
	// off link 1.
	host, err := net.AttachHost(coll, 1, nil)
	if err != nil {
		return nil, err
	}

	programs := map[*network.Node]string{
		gen:  fmt.Sprintf(generatorTemplate, p.Limit),
		coll: collectorSource,
	}
	for _, n := range net.Nodes() {
		src, ok := programs[n]
		if !ok {
			src = stageSource
		}
		comp, cerr := occam.Compile(src, occam.Options{})
		if cerr != nil {
			return nil, fmt.Errorf("%s: %w", n.Name, cerr)
		}
		if lerr := n.Load(comp.Image); lerr != nil {
			return nil, fmt.Errorf("%s: %w", n.Name, lerr)
		}
	}
	return &System{Params: p, Net: net, Host: host}, nil
}

// Run drives the sieve to completion and returns the primes received.
func (s *System) Run(limit sim.Time) ([]int64, network.Report) {
	rep := s.Net.Run(limit)
	return s.Host.Values, rep
}
