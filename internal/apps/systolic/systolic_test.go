package systolic

import (
	"testing"

	"transputer/internal/sim"
)

func TestMatrixVectorProduct(t *testing.T) {
	p := Defaults()
	s, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	got, rep := s.Run(sim.Second)
	if !rep.Settled || !s.Host.Done {
		t.Fatalf("rep=%+v done=%v", rep, s.Host.Done)
	}
	want := Reference(p)
	if len(got) != len(want) {
		t.Fatalf("y = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("y[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSmallerArray(t *testing.T) {
	p := Params{N: 3, MemBytes: 32 * 1024}
	s, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	got, rep := s.Run(sim.Second)
	if !rep.Settled {
		t.Fatalf("%+v", rep)
	}
	want := Reference(p)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y = %v, want %v", got, want)
		}
	}
}

func TestReferenceSanity(t *testing.T) {
	// The deterministic matrix and vector must not be all zeros.
	p := Defaults()
	y := Reference(p)
	nonzero := false
	for _, v := range y {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("reference product is identically zero; the test data is degenerate")
	}
}
