// Package systolic builds a linear systolic array of transputers
// computing a matrix-vector product — the application domain of the
// paper's citations on signal processing and systolic/wavefront arrays
// (references 21 and 22).  Each cell holds one matrix row; the input
// vector streams through the chain, every cell accumulating its dot
// product on the fly, and the results drain out of the far end.
//
// The structure shows the transputer programming style the paper
// argues for: identical small programs in every cell, all
// communication on point-to-point links, computation overlapping
// communication.
package systolic

import (
	"fmt"
	"strings"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// Params sizes the array: N cells computing an NxN product.
type Params struct {
	N        int
	MemBytes int
}

// Defaults is an 8-cell array.
func Defaults() Params { return Params{N: 8, MemBytes: 64 * 1024} }

// Matrix returns the deterministic test matrix element A[row][col],
// kept small so 32-bit checked arithmetic cannot overflow.
func Matrix(row, col int) int64 {
	return int64(((row+1)*(col+3))%17 - 8)
}

// Vector returns the deterministic input vector element x[i].
func Vector(i int) int64 { return int64((i*5)%11 - 5) }

// Reference computes y = A.x on the host.
func Reference(p Params) []int64 {
	y := make([]int64, p.N)
	for r := 0; r < p.N; r++ {
		for c := 0; c < p.N; c++ {
			y[r] += Matrix(r, c) * Vector(c)
		}
	}
	return y
}

// System is a built array.
type System struct {
	Params Params
	Net    *network.System
	Host   *network.Host
}

// Build wires feeder -> cell[0..N-1] -> collector.
func Build(p Params) (*System, error) {
	net := network.NewSystem()
	cfg := core.T424().WithMemory(p.MemBytes)
	feeder, err := net.AddTransputer("feed", cfg)
	if err != nil {
		return nil, err
	}
	prev := feeder
	cells := make([]*network.Node, p.N)
	for i := 0; i < p.N; i++ {
		cell, cerr := net.AddTransputer(fmt.Sprintf("cell%d", i), cfg)
		if cerr != nil {
			return nil, cerr
		}
		if werr := net.Connect(prev, 1, cell, 0); werr != nil {
			return nil, werr
		}
		cells[i] = cell
		prev = cell
	}
	coll, err := net.AddTransputer("collect", cfg)
	if err != nil {
		return nil, err
	}
	if err := net.Connect(prev, 1, coll, 0); err != nil {
		return nil, err
	}
	host, err := net.AttachHost(coll, 1, nil)
	if err != nil {
		return nil, err
	}

	if err := load(feeder, feederSource(p)); err != nil {
		return nil, err
	}
	for i, cell := range cells {
		if err := load(cell, cellSource(p, i)); err != nil {
			return nil, err
		}
	}
	if err := load(coll, collectorSource(p)); err != nil {
		return nil, err
	}
	return &System{Params: p, Net: net, Host: host}, nil
}

func load(n *network.Node, src string) error {
	comp, err := occam.Compile(src, occam.Options{})
	if err != nil {
		return fmt.Errorf("%s: %w\n%s", n.Name, err, src)
	}
	if err := n.Load(comp.Image); err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	return nil
}

// Run drives the array and returns the result vector.
func (s *System) Run(limit sim.Time) ([]int64, network.Report) {
	rep := s.Net.Run(limit)
	return s.Host.Values, rep
}

// feederSource streams the input vector into the chain.
func feederSource(p Params) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DEF n = %d:\n", p.N)
	sb.WriteString(`CHAN out:
PLACE out AT LINK1OUT:
SEQ i = [0 FOR n]
  out ! (((i * 5) \ 11) - 5)
`)
	return sb.String()
}

// cellSource is the per-cell program: stream the vector through while
// accumulating this row's dot product, then drain upstream results
// ahead of its own.
func cellSource(p Params, row int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DEF n = %d:\nDEF row = %d:\n", p.N, row)
	sb.WriteString(`CHAN in, out:
PLACE in AT LINK0IN:
PLACE out AT LINK1OUT:
VAR a[n], acc, x:
SEQ
  SEQ k = [0 FOR n]
    a[k] := ((((row + 1) * (k + 3)) \ 17) - 8)
  acc := 0
  SEQ k = [0 FOR n]
    SEQ
      in ? x
      out ! x
      acc := acc + (a[k] * x)
  SEQ k = [0 FOR row]
    VAR y:
    SEQ
      in ? y
      out ! y
  out ! acc
`)
	return sb.String()
}

// collectorSource reads the streamed-through vector copy, then the
// result vector, and reports it.
func collectorSource(p Params) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DEF n = %d:\n", p.N)
	sb.WriteString(`CHAN in, screen:
PLACE in AT LINK0IN:
PLACE screen AT LINK1OUT:
VAR v:
SEQ
  SEQ k = [0 FOR n]
    in ? v        -- the vector emerging from the last cell
  SEQ k = [0 FOR n]
    SEQ
      in ? v      -- the results, first row first
      screen ! 2
      screen ! v
  screen ! 4
`)
	return sb.String()
}
