package tool

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"transputer/internal/apps/sieve"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// The parallel engine's contract is that worker count is invisible:
// the same build produces byte-identical observable output whether
// windows run on one goroutine or many.  These tests pin that for the
// shipped examples — the sieve pipeline (examples/pipeline), the
// seeded lossy-link fault campaign, and the severed-ring deadlock
// campaign with its watchdog report.

// netOutput is everything observable from one run: the exported
// timeline and flow-trace bytes, the stats/metrics/watchdog text, and
// the settle time.
type netOutput struct {
	time     sim.Time
	timeline []byte
	flows    []byte
	text     string
}

// runExampleNet loads a topology file, runs it with the given worker
// count and full observability attached, and captures every output.
func runExampleNet(t *testing.T, path, tlPath, flPath string, workers int) netOutput {
	t.Helper()
	var hostOut bytes.Buffer
	net, err := LoadNetworkFile(path, &hostOut)
	if err != nil {
		t.Fatal(err)
	}
	s := net.System
	s.SetWorkers(workers)
	obs := NewObserver(s)
	obs.EnableTimeline(tlPath)
	obs.EnableFlows(flPath, LineResolver(net.Programs))
	obs.EnableMetrics()
	obs.Start()
	rep := s.Run(net.Limit)

	var text bytes.Buffer
	fmt.Fprintf(&text, "settled=%v time=%v halted=%v blocked=%v\n",
		rep.Settled, rep.Time, rep.Halted, rep.Blocked)
	text.Write(hostOut.Bytes())
	if wd := s.Watchdog(); wd != nil {
		PrintWatchdog(&text, wd, LineResolver(net.Programs))
	}
	for _, n := range s.Nodes() {
		PrintStats(&text, n.Name, n.M.Stats(), n.M.Config().CycleNs)
		PrintLinkStats(&text, n)
	}
	if err := obs.Finish(rep.Time, &text); err != nil {
		t.Fatal(err)
	}
	tl, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := os.ReadFile(flPath)
	if err != nil {
		t.Fatal(err)
	}
	return netOutput{time: rep.Time, timeline: tl, flows: fl, text: text.String()}
}

func assertIdenticalRuns(t *testing.T, path string) {
	t.Helper()
	// Both runs write the timeline and flows to the same files (read
	// back between runs), so the paths printed by Finish are identical
	// too.
	tlPath := filepath.Join(t.TempDir(), "tl.json")
	flPath := filepath.Join(t.TempDir(), "flows.json")
	want := runExampleNet(t, path, tlPath, flPath, 1)
	got := runExampleNet(t, path, tlPath, flPath, 4)
	if got.time != want.time {
		t.Errorf("settle times differ: workers=1 %v, workers=4 %v", want.time, got.time)
	}
	if got.text != want.text {
		t.Errorf("stats/metrics/watchdog output differs:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			want.text, got.text)
	}
	if !bytes.Equal(got.timeline, want.timeline) {
		t.Errorf("timelines differ: workers=1 %d bytes, workers=4 %d bytes",
			len(want.timeline), len(got.timeline))
	}
	if !bytes.Equal(got.flows, want.flows) {
		t.Errorf("flow traces differ: workers=1 %d bytes, workers=4 %d bytes",
			len(want.flows), len(got.flows))
	}

	// The flow document's own invariant: the critical path tiles
	// [0, end] exactly — its spans sum to the end-to-end completion
	// time.
	doc, err := probe.ReadFlowDoc(bytes.NewReader(got.flows))
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, s := range doc.CriticalPath {
		sum += s.DurNs
	}
	if sum != doc.EndNs || doc.CriticalPathNs != doc.EndNs {
		t.Errorf("critical path sums to %d (CriticalPathNs %d), want end-to-end %d",
			sum, doc.CriticalPathNs, doc.EndNs)
	}
	if len(doc.Flows) == 0 {
		t.Errorf("no flows traced for %s", path)
	}
}

// TestParallelDeterminismLossyLink replays the seeded lossy-link fault
// campaign (drops, corruption, lost acks, retransmits) at one and four
// workers: every retry decision comes from per-wire seeded streams, so
// the campaign must be byte-for-byte identical.
func TestParallelDeterminismLossyLink(t *testing.T) {
	assertIdenticalRuns(t, filepath.Join("..", "..", "examples", "faults", "lossy-link.tnet"))
}

// TestParallelDeterminismSeveredRing replays the severed-ring deadlock
// campaign: the timed cable cut and the watchdog's post-mortem (which
// processes are blocked where) must not depend on the worker count.
func TestParallelDeterminismSeveredRing(t *testing.T) {
	assertIdenticalRuns(t, filepath.Join("..", "..", "examples", "faults", "severed-ring.tnet"))
}

// TestParallelDeterminismPipeline runs the multi-stage sieve pipeline
// (the examples/pipeline program) at one and four workers and compares
// the answers, the settle time, and the aggregate statistics down to
// the per-opcode counts.
func TestParallelDeterminismPipeline(t *testing.T) {
	flPath := filepath.Join(t.TempDir(), "flows.json")
	run := func(workers int) ([]int64, sim.Time, interface{}, []byte) {
		s, err := sieve.Build(sieve.Params{Limit: 60, Stages: 17})
		if err != nil {
			t.Fatal(err)
		}
		s.Net.SetWorkers(workers)
		obs := NewObserver(s.Net)
		obs.EnableFlows(flPath, nil)
		obs.Start()
		primes, rep := s.Run(10 * sim.Second)
		if !rep.Settled {
			t.Fatalf("workers=%d: did not settle: %+v", workers, rep)
		}
		if err := obs.Finish(rep.Time, io.Discard); err != nil {
			t.Fatal(err)
		}
		fl, err := os.ReadFile(flPath)
		if err != nil {
			t.Fatal(err)
		}
		return primes, rep.Time, s.Net.TotalStats(), fl
	}
	p1, t1, st1, f1 := run(1)
	p4, t4, st4, f4 := run(4)
	if !reflect.DeepEqual(p1, p4) {
		t.Errorf("answers differ: %v vs %v", p1, p4)
	}
	if t1 != t4 {
		t.Errorf("settle times differ: %v vs %v", t1, t4)
	}
	if !reflect.DeepEqual(st1, st4) {
		t.Errorf("total stats differ:\nworkers=1: %+v\nworkers=4: %+v", st1, st4)
	}
	if !bytes.Equal(f1, f4) {
		t.Errorf("flow traces differ: workers=1 %d bytes, workers=4 %d bytes", len(f1), len(f4))
	}
	doc, err := probe.ReadFlowDoc(bytes.NewReader(f4))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Flows) == 0 || doc.CriticalPathNs != doc.EndNs {
		t.Errorf("pipeline flow doc: %d flows, critical path %d vs end %d",
			len(doc.Flows), doc.CriticalPathNs, doc.EndNs)
	}
}
