package tool

import (
	"fmt"
	"io"

	"transputer/internal/network"
	"transputer/internal/sim"
)

// Fusion mode resolution shared by the network tools: how a `-fuse`
// flag and a topology's own `shard` directives combine into the
// placement BuildNetwork applies.  Whatever the mode, results are
// byte-identical; fusion only changes how fast the simulator gets
// there.

// FuseModes documents the accepted -fuse values.
const FuseModes = "off|topo|greedy|auto|full"

// ResolveFusion turns a -fuse mode into the topology's final Shards
// placement.  Modes:
//
//	off     ignore any `shard` directives; one node per shard
//	topo    the file's `shard` directives as written (the default)
//	greedy  contract the wiring graph to at most maxParts shards
//	full    every node on one shard
//	auto    profile a pre-run of the unfused topology, then contract
//	        the observed traffic graph to at most maxParts shards,
//	        ignoring edges too quiet to be worth a shard
//
// For auto, baseDir resolves the topology's program paths (the pre-run
// loads and runs the real programs; its host output is discarded).
func ResolveFusion(topo *network.Topology, mode, baseDir string, maxParts int) error {
	switch mode {
	case "topo", "":
		return nil
	case "off":
		topo.Shards = nil
		return nil
	case "full":
		if len(topo.Transputers) < 2 {
			topo.Shards = nil
			return nil
		}
		all := make([]string, len(topo.Transputers))
		for i, t := range topo.Transputers {
			all[i] = t.Name
		}
		topo.Shards = [][]string{all}
		return nil
	case "greedy":
		topo.Shards = network.GreedyFuse(nodeNames(topo), wiringEdges(topo), maxParts, 1)
		return nil
	case "auto":
		groups, err := AutoFuseGroups(topo, baseDir, maxParts)
		if err != nil {
			return err
		}
		topo.Shards = groups
		return nil
	default:
		return fmt.Errorf("unknown fuse mode %q (want %s)", mode, FuseModes)
	}
}

func nodeNames(topo *network.Topology) []string {
	names := make([]string, len(topo.Transputers))
	for i, t := range topo.Transputers {
		names[i] = t.Name
	}
	return names
}

// wiringEdges is the static fusion graph: one unit-weight edge per
// transputer-to-transputer connection (self-connections excluded).
func wiringEdges(topo *network.Topology) []network.FuseEdge {
	var edges []network.FuseEdge
	for _, c := range topo.Connections {
		if c.A == c.B {
			continue
		}
		edges = append(edges, network.FuseEdge{A: c.A, B: c.B, Weight: 1})
	}
	return edges
}

// AutoFuseGroups profiles the topology unfused and partitions by
// observed wire traffic: a fresh copy of the network runs to
// quiescence with host output discarded, each connection is weighted
// by its wire activity, edges below a density floor are dropped (quiet
// wires are not worth losing a parallel shard over), and the rest are
// greedily contracted to at most maxParts groups.  The pre-run is
// deterministic, so the resulting placement — and with it the measured
// run's wall-clock, though never its results — is reproducible.
func AutoFuseGroups(topo *network.Topology, baseDir string, maxParts int) ([][]string, error) {
	pre := *topo
	pre.Shards = nil
	net, err := BuildNetwork(&pre, baseDir, io.Discard)
	if err != nil {
		return nil, fmt.Errorf("autofuse pre-run: %w", err)
	}
	rep := RunToQuiescence(net)
	edges := net.System.TrafficEdges()
	floor := network.FuseTrafficFloor(rep.Time)
	return network.GreedyFuse(nodeNames(topo), edges, maxParts, floor), nil
}

// PrintEngineStats reports windowed-engine diagnostics for a finished
// run: the partition, window and barrier counts, mean window span, and
// how deliveries split between the barrier mailbox and the fused
// intra-kernel fast path.  These numbers describe the simulator, not
// the simulated system — they vary with -fuse and -workers, unlike
// every other output.
func PrintEngineStats(w io.Writer, es sim.EngineStats) {
	fmt.Fprintf(w, "engine: %d nodes on %d shards, %d windows (%d barriers, %d shard-windows)\n",
		es.Ports, es.Shards, es.Windows, es.Barriers, es.ShardWindows)
	if es.Windows > 0 {
		fmt.Fprintf(w, "engine: mean window span %v, mean active shards %.2f\n",
			es.SpanSum/sim.Time(es.Windows), float64(es.ShardWindows)/float64(es.Windows))
	}
	fmt.Fprintf(w, "engine: %d cross-shard deliveries via barrier mailbox, %d fused intra-kernel\n",
		es.Cross, es.Fused)
	if es.BarrierWaitNs > 0 {
		fmt.Fprintf(w, "engine: %v wall-clock waiting at window barriers\n",
			(sim.Time)(es.BarrierWaitNs))
	}
}
