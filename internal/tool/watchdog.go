package tool

import (
	"fmt"
	"io"
	"path/filepath"

	"transputer/internal/core"
	"transputer/internal/network"
)

// LineResolver maps a node's instruction pointer to a source location
// ("file:line") through the loaded programs' source maps.  Unknown
// nodes and unmapped addresses resolve to "".
func LineResolver(progs []Program) func(node string, iptr uint64) string {
	type nodeMap struct {
		codeStart uint64
		codeLen   int
		marks     []core.SourceMark
		file      string
	}
	byNode := make(map[string]nodeMap)
	for _, p := range progs {
		byNode[p.Node.Name] = nodeMap{
			codeStart: p.Node.M.CodeStart(),
			codeLen:   len(p.Image.Code),
			marks:     p.Image.Marks,
			file:      filepath.Base(p.Path),
		}
	}
	return func(node string, iptr uint64) string {
		nm, ok := byNode[node]
		if !ok || len(nm.marks) == 0 || iptr < nm.codeStart {
			return ""
		}
		off := int(iptr - nm.codeStart)
		if off >= nm.codeLen {
			return ""
		}
		line := -1
		for _, mk := range nm.marks { // sorted by offset
			if mk.Offset > off {
				break
			}
			line = mk.Line
		}
		if line < 0 {
			return ""
		}
		return fmt.Sprintf("%s:%d", nm.file, line)
	}
}

// PrintWatchdog writes a deadlock watchdog report, resolving each
// blocked process's instruction pointer to an occam source line when a
// source map covers it.  resolve may be nil.
func PrintWatchdog(w io.Writer, rep *network.WatchdogReport, resolve func(string, uint64) string) {
	fmt.Fprintf(w, "deadlock watchdog: simulated time stuck at %v\n", rep.Time)
	for _, p := range rep.Procs {
		loc := ""
		if resolve != nil {
			if s := resolve(p.Node, p.Iptr); s != "" {
				loc = " at " + s
			}
		}
		fmt.Fprintf(w, "  %s: %s%s\n", p.Node, p.BlockedProcess, loc)
	}
	for _, d := range rep.DownLinks {
		fmt.Fprintf(w, "  %s: link %d DOWN after %d retries\n", d.Node, d.Link, d.Retries)
	}
	for _, h := range rep.HostStalls {
		fmt.Fprintf(w, "  host: %s\n", h.Error())
	}
}
