package tool

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/route"
	"transputer/internal/sim"
)

// Program records what was loaded on one node, for tools that need the
// image (source maps) or the source path (profile reports) afterwards.
type Program struct {
	Node  *network.Node
	Image core.Image
	Path  string // resolved source/image path; empty for unloaded nodes
}

// Network is a system built from a topology, with its hosts and loaded
// programs.
type Network struct {
	System   *network.System
	Hosts    []*network.Host
	Programs []Program
	// Router is the routing layer, when the topology enables it.
	Router *route.Router
	// Limit is the topology's run limit (defaulted to one second).
	Limit sim.Time
}

// BuildNetwork constructs a system from a parsed topology.  Program
// paths are resolved relative to baseDir; host output goes to out.
func BuildNetwork(topo *network.Topology, baseDir string, out io.Writer) (*Network, error) {
	s := network.NewSystem()
	net := &Network{System: s}
	if len(topo.Shards) > 0 {
		if err := s.SetPlacement(topo.Shards); err != nil {
			return nil, err
		}
	}
	for _, spec := range topo.Transputers {
		cfg, err := ModelConfig(spec.Model, spec.MemBytes)
		if err != nil {
			return nil, err
		}
		n, err := s.AddTransputer(spec.Name, cfg)
		if err != nil {
			return nil, err
		}
		if spec.Program == "" {
			continue
		}
		path := filepath.Join(baseDir, spec.Program)
		img, err := LoadAny(path, cfg.WordBits/8)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		if err := n.Load(img); err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		net.Programs = append(net.Programs, Program{Node: n, Image: img, Path: path})
	}
	for _, c := range topo.Connections {
		a, ok := s.Node(c.A)
		if !ok {
			return nil, fmt.Errorf("connect: unknown transputer %q", c.A)
		}
		b, ok := s.Node(c.B)
		if !ok {
			return nil, fmt.Errorf("connect: unknown transputer %q", c.B)
		}
		if err := s.Connect(a, c.ALink, b, c.BLink); err != nil {
			return nil, err
		}
	}
	for _, vc := range topo.VChans {
		n, ok := s.Node(vc.Node)
		if !ok {
			return nil, fmt.Errorf("vchan: unknown transputer %q", vc.Node)
		}
		if err := s.EnableVChans(n, vc.Link, vc.Count); err != nil {
			return nil, err
		}
	}
	for _, h := range topo.Hosts {
		n, ok := s.Node(h.Node)
		if !ok {
			return nil, fmt.Errorf("host: unknown transputer %q", h.Node)
		}
		host, err := s.AttachHost(n, h.Link, out)
		if err != nil {
			return nil, err
		}
		for _, v := range topo.Inputs[h.Node] {
			host.QueueInput(v)
		}
		net.Hosts = append(net.Hosts, host)
	}
	s.SetLinkMode(topo.LinkMode)
	if topo.Heartbeat.Set {
		s.SetHeartbeat(topo.Heartbeat.Interval, topo.Heartbeat.Timeout)
	}
	if topo.Route.Enabled {
		r, err := route.Attach(s, route.Config{
			HopTimeout:    topo.Route.Hop,
			ReplayTimeout: topo.Route.Replay,
			TTL:           topo.Route.TTL,
		})
		if err != nil {
			return nil, err
		}
		net.Router = r
	}
	if err := s.ApplyFaults(topo.Plan()); err != nil {
		return nil, err
	}
	for _, m := range topo.Messages {
		if _, err := net.Router.SendAt(m.At, m.From, m.To, []byte(m.Data)); err != nil {
			return nil, err
		}
	}
	net.Limit = topo.RunLimit
	if net.Limit == 0 {
		net.Limit = sim.Second
	}
	return net, nil
}

// PrintLinkStats writes the traffic counters of each connected link's
// outgoing wire: data bytes (goodput), acknowledges and occupancy,
// plus retransmitted bytes and virtual-channel framing counters when
// the run produced any.
func PrintLinkStats(w io.Writer, n *network.Node) {
	for i := 0; i < core.NumLinks; i++ {
		if !n.Engine.Connected(i) {
			continue
		}
		ws := n.Engine.WireStats(i)
		fmt.Fprintf(w, "  link %d out-wire: %d data bytes, %d acks, busy %v",
			i, ws.DataBytes, ws.Acks, sim.Time(ws.BusyNs))
		if ws.Retransmits > 0 {
			fmt.Fprintf(w, ", %d retransmitted", ws.Retransmits)
		}
		fmt.Fprintln(w)
		if ms, ok := n.Engine.VChanStats(i); ok {
			fmt.Fprintf(w, "  link %d vchans: %d over one wire, %d chunks, %d payload bytes, %d credit frames\n",
				i, n.Engine.VChans(i), ms.Chunks, ms.ChunkBytes, ms.Credits)
		}
	}
}

// LoadNetworkFile parses a topology file and builds its system.
func LoadNetworkFile(path string, out io.Writer) (*Network, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	topo, err := network.ParseTopology(string(src))
	if err != nil {
		return nil, err
	}
	return BuildNetwork(topo, filepath.Dir(path), out)
}
