package tool

import (
	"fmt"
	"io"
	"os"
	"strings"

	"transputer/internal/core"
	"transputer/internal/isa"
	"transputer/internal/network"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Observer bundles the probe-bus consumers behind the CLI flags: a
// timeline recorder (-timeline), a metrics aggregator (-metrics) and a
// sampling profiler (-prof).  Nothing is attached to the system until
// Start, so a run with no observer flags keeps the no-subscriber fast
// path (a nil bus) in every machine.
type Observer struct {
	sys *network.System
	bus *probe.Bus

	timeline     *probe.Timeline
	timelinePath string

	metrics *probe.Metrics

	flows     *probe.FlowTable
	flowsPath string

	sampler     *probe.Sampler
	profilePath string
	targets     []profTarget
}

type profTarget struct {
	t   *probe.Target
	opt probe.ResolveOptions
}

// NewObserver returns an inactive observer for the system.
func NewObserver(s *network.System) *Observer {
	return &Observer{sys: s}
}

func (o *Observer) ensureBus() *probe.Bus {
	if o.bus == nil {
		o.bus = probe.NewBus()
	}
	return o.bus
}

// EnableTimeline records every probe event for a Chrome trace written
// to path by Finish.
func (o *Observer) EnableTimeline(path string) {
	o.timelinePath = path
	o.timeline = probe.NewTimeline(o.ensureBus())
}

// EnableMetrics aggregates per-node and per-link metrics, reported by
// Finish.
func (o *Observer) EnableMetrics() {
	o.metrics = probe.NewMetrics(o.ensureBus())
}

// EnableFlows traces message flows: Finish writes the flow document
// (spans, latency histograms, critical path) to path and prints the
// summary.  resolve, when non-nil, annotates flows with occam source
// locations (see LineResolver).
func (o *Observer) EnableFlows(path string, resolve func(node string, iptr uint64) string) {
	o.flowsPath = path
	o.flows = probe.NewFlowTable(o.ensureBus())
	o.flows.Resolve = resolve
}

// Flows returns the flow table, nil unless EnableFlows was called.
func (o *Observer) Flows() *probe.FlowTable { return o.flows }

// EnableProfile samples every registered target's instruction pointer
// each period, saving the resolved profile to path at Finish.  Targets
// are registered with AddProfileTarget.
func (o *Observer) EnableProfile(path string, period sim.Time) {
	o.profilePath = path
	o.sampler = probe.NewSampler(period)
}

// AddProfileTarget registers a node for sampling.  The image supplies
// the source map; srcPath (may be empty, or name a file that no longer
// exists) supplies source text for the report.  No-op unless
// EnableProfile was called.
func (o *Observer) AddProfileTarget(n *network.Node, img core.Image, srcPath string) {
	if o.sampler == nil {
		return
	}
	m := n.M
	t := o.sampler.AddTarget(n.Name, n.Clock(), func() (uint64, bool) {
		if m.Idle() {
			return 0, false
		}
		return m.Iptr, true
	})
	opt := probe.ResolveOptions{
		CodeStart:  m.CodeStart(),
		CodeLen:    len(img.Code),
		SourcePath: srcPath,
		AddrLabel:  addrLabel(img.Code),
	}
	for _, mk := range img.Marks {
		opt.Marks = append(opt.Marks, probe.Mark{Offset: mk.Offset, Line: mk.Line})
	}
	if srcPath != "" {
		if src, err := os.ReadFile(srcPath); err == nil {
			opt.SourceLines = strings.Split(string(src), "\n")
		}
	}
	o.targets = append(o.targets, profTarget{t: t, opt: opt})
}

// Active reports whether any consumer has been enabled.
func (o *Observer) Active() bool { return o.bus != nil || o.sampler != nil }

// Start attaches the bus to the system (if any bus consumer is
// enabled) and arms the sampler.  Call after the system is fully built
// and before Run.
func (o *Observer) Start() {
	if o.bus != nil {
		o.sys.AttachProbe(o.bus)
	}
	if o.sampler != nil {
		o.sampler.Start()
	}
}

// Finish closes the accounting at the run's end time, writes the
// timeline and profile files, and prints the metrics report and a
// profile summary to w.
func (o *Observer) Finish(end sim.Time, w io.Writer) error {
	if o.timeline != nil {
		f, err := os.Create(o.timelinePath)
		if err != nil {
			return err
		}
		if err := o.timeline.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "timeline: %d events -> %s (load in chrome://tracing or ui.perfetto.dev)\n",
			len(o.timeline.Events()), o.timelinePath)
	}
	if o.metrics != nil {
		o.metrics.Finish(end)
		o.metrics.Report(w)
	}
	if o.flows != nil {
		o.flows.Finish(end)
		f, err := os.Create(o.flowsPath)
		if err != nil {
			return err
		}
		if err := o.flows.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "flows written to %s (render with tflow)\n", o.flowsPath)
		o.flows.Report(w, 10)
	}
	if o.sampler != nil {
		p := o.ResolveProfile()
		f, err := os.Create(o.profilePath)
		if err != nil {
			return err
		}
		if err := p.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "profile written to %s (render with tprof)\n", o.profilePath)
		p.Report(w, 10)
	}
	return nil
}

// ResolveProfile attributes all targets' samples without writing files.
func (o *Observer) ResolveProfile() *probe.Profile {
	p := &probe.Profile{PeriodNs: int64(o.sampler.Period)}
	for _, pt := range o.targets {
		p.Targets = append(p.Targets, probe.Resolve(pt.t, pt.opt))
	}
	return p
}

// addrLabel returns a labeller that disassembles the instruction at a
// code offset, the profiler's fallback when no source mark covers it.
func addrLabel(code []byte) func(off int) string {
	return func(off int) string {
		if off < 0 || off >= len(code) {
			return ""
		}
		var oreg int64
		for i := off; i < len(code); i++ {
			b := code[i]
			fn := isa.Function(b >> 4)
			data := int64(b & 0xF)
			switch fn {
			case isa.FnPfix:
				oreg = (oreg | data) << 4
			case isa.FnNfix:
				oreg = ^(oreg | data) << 4
			case isa.FnOpr:
				return isa.Op(oreg | data).Name()
			default:
				return fmt.Sprintf("%s %d", fn.Name(), oreg|data)
			}
		}
		return ""
	}
}
