package tool

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"transputer/internal/network"
	"transputer/internal/sim"
)

// TestRingTimelineAcceptance runs the shipped netdemo ring with a
// timeline attached and checks the exported Chrome trace is valid JSON
// containing scheduler, channel-transfer and wire events from at least
// two nodes.
func TestRingTimelineAcceptance(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "netdemo", "ring.tnet")
	net, err := LoadNetworkFile(path, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(net.System)
	out := filepath.Join(t.TempDir(), "ring.json")
	obs.EnableTimeline(out)
	obs.Start()
	rep := net.System.Run(net.Limit)
	if !rep.Settled {
		t.Fatalf("ring did not settle: %+v", rep)
	}
	if err := obs.Finish(rep.Time, io.Discard); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Cat  string `json:"cat"`
			Args map[string]interface{}
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// Map trace pids back to node names, then count event categories
	// per node.
	nodeOf := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			nodeOf[e.Pid] = e.Args["name"].(string)
		}
	}
	type counts struct{ sched, chancat, wire int }
	perNode := map[string]*counts{}
	for _, e := range doc.TraceEvents {
		node := nodeOf[e.Pid]
		if node == "" {
			continue
		}
		c := perNode[node]
		if c == nil {
			c = &counts{}
			perNode[node] = c
		}
		switch e.Cat {
		case "sched":
			c.sched++
		case "link", "chan": // processor-side channel transfers
			c.chancat++
		case "wire":
			c.wire++
		}
	}
	full := 0
	for node, c := range perNode {
		if c.sched > 0 && c.chancat > 0 && c.wire > 0 {
			full++
		} else {
			t.Logf("%s: sched=%d chan/link=%d wire=%d", node, c.sched, c.chancat, c.wire)
		}
	}
	if len(perNode) < 2 {
		t.Fatalf("events from %d nodes, want >= 2", len(perNode))
	}
	if full < 2 {
		t.Errorf("only %d nodes have scheduler+channel+wire events, want >= 2", full)
	}
}

// TestProfilerAttribution compiles the quickstart program and checks
// the sampling profiler attributes at least 90%% of running samples to
// occam source lines via the compiler's source map.
func TestProfilerAttribution(t *testing.T) {
	src := filepath.Join("..", "..", "examples", "quickstart", "squares.occ")
	net, err := quickstartSystem(t, src)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(net.System)
	obs.EnableProfile(filepath.Join(t.TempDir(), "p.json"), sim.Microsecond)
	p := net.Programs[0]
	obs.AddProfileTarget(p.Node, p.Image, p.Path)
	obs.Start()
	rep := net.System.Run(sim.Second)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	prof := obs.ResolveProfile()
	if len(prof.Targets) != 1 {
		t.Fatalf("targets = %d", len(prof.Targets))
	}
	tp := prof.Targets[0]
	if tp.Total < 10 {
		t.Fatalf("only %d running samples; period too coarse for the test", tp.Total)
	}
	frac := float64(tp.Attributed) / float64(tp.Total)
	if frac < 0.9 {
		t.Errorf("attributed %.1f%% of samples to source lines, want >= 90%%", 100*frac)
	}
	// The hot line must be the producer's output (the multiply + send).
	if tp.Buckets[0].Line == 0 {
		t.Errorf("top bucket unattributed: %+v", tp.Buckets[0])
	}
}

// TestObserverMetricsEndToEnd: metrics from a real run account busy
// time and link traffic.
func TestObserverMetricsEndToEnd(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "netdemo", "ring.tnet")
	net, err := LoadNetworkFile(path, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(net.System)
	obs.EnableMetrics()
	obs.Start()
	rep := net.System.Run(net.Limit)
	if !rep.Settled {
		t.Fatalf("%+v", rep)
	}
	var buf bytes.Buffer
	if err := obs.Finish(rep.Time, &buf); err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, want := range []string{"n0:", "n1:", "n2:", "n3:", "link 1:", "busy"} {
		if !bytes.Contains([]byte(report), []byte(want)) {
			t.Errorf("metrics report missing %q:\n%s", want, report)
		}
	}
}

// quickstartSystem builds a one-node system with a host on link 0
// running the given occam source.
func quickstartSystem(t *testing.T, srcPath string) (*Network, error) {
	t.Helper()
	cfg, err := ModelConfig("t424", 64*1024)
	if err != nil {
		return nil, err
	}
	img, err := LoadAny(srcPath, cfg.WordBits/8)
	if err != nil {
		return nil, err
	}
	s := network.NewSystem()
	n, err := s.AddTransputer("main", cfg)
	if err != nil {
		return nil, err
	}
	host, err := s.AttachHost(n, 0, io.Discard)
	if err != nil {
		return nil, err
	}
	if err := n.Load(img); err != nil {
		return nil, err
	}
	return &Network{
		System:   s,
		Hosts:    []*network.Host{host},
		Programs: []Program{{Node: n, Image: img, Path: srcPath}},
	}, nil
}
