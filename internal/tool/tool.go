// Package tool holds shared plumbing for the command-line programs:
// loading source programs by extension and printing machine
// statistics.
package tool

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"transputer/internal/asm"
	"transputer/internal/core"
	"transputer/internal/occam"
)

// LoadProgram reads and translates a program source file: .occ is
// compiled as occam, .tasm (or .s) is assembled.
func LoadProgram(path string, wordBytes int) (core.Image, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return core.Image{}, err
	}
	return TranslateProgram(string(src), filepath.Ext(path), wordBytes)
}

// TranslateProgram translates source text according to its extension.
func TranslateProgram(src, ext string, wordBytes int) (core.Image, error) {
	switch strings.ToLower(ext) {
	case ".occ", ".occam":
		c, err := occam.Compile(src, occam.Options{WordBytes: wordBytes})
		if err != nil {
			return core.Image{}, err
		}
		return c.Image, nil
	case ".tasm", ".s", ".asm":
		a, err := asm.Assemble(src, wordBytes)
		if err != nil {
			return core.Image{}, err
		}
		return a.Image, nil
	}
	return core.Image{}, fmt.Errorf("unknown program extension %q (want .occ or .tasm)", ext)
}

// ModelConfig returns the machine configuration for a model name.
func ModelConfig(model string, memBytes int) (core.Config, error) {
	var cfg core.Config
	switch strings.ToLower(model) {
	case "t424", "":
		cfg = core.T424()
	case "t222":
		cfg = core.T222()
	default:
		return core.Config{}, fmt.Errorf("unknown transputer model %q", model)
	}
	if memBytes > 0 {
		cfg = cfg.WithMemory(memBytes)
	}
	return cfg, nil
}

// PrintStats writes a human-readable statistics summary.
func PrintStats(w io.Writer, name string, st core.Stats, cycleNs int) {
	fmt.Fprintf(w, "%s: %d instructions, %d cycles (%.2f MIPS at %d ns/cycle)\n",
		name, st.Instructions, st.Cycles, st.MIPS(cycleNs), cycleNs)
	fmt.Fprintf(w, "  code %d bytes; %.1f%% of executed instructions single byte\n",
		st.CodeBytes, 100*st.SingleByteFraction())
	fmt.Fprintf(w, "  scheduler: %d enqueues, %d deschedules, %d preemptions, %d timeslices\n",
		st.Enqueues, st.Deschedules, st.Preemptions, st.Timeslices)
	fmt.Fprintf(w, "  messages: %d out / %d in (%d external out, %d external in), bytes %d out / %d in\n",
		st.MessagesOut, st.MessagesIn, st.ExternalOut, st.ExternalIn, st.BytesOut, st.BytesIn)
}
