package tool

import (
	"io"
	"strings"
	"testing"

	"transputer/internal/network"
)

func TestVerdictPrecedence(t *testing.T) {
	stall := &network.WatchdogReport{HostStalls: []network.HostStall{{Node: "a", Link: 0}}}
	dead := &network.WatchdogReport{DownLinks: []network.DownLink{{Node: "a", Link: 0}}}
	cases := []struct {
		wd          *network.WatchdogReport
		undelivered int
		want        int
	}{
		{nil, 0, ExitOK},
		{dead, 0, ExitDeadlock},
		{nil, 3, ExitPartition},
		{dead, 3, ExitPartition},  // lost traffic explains the dead links
		{stall, 0, ExitHostStall}, // a stalled host names the culprit directly
		{stall, 3, ExitHostStall},
	}
	for i, c := range cases {
		if got := Verdict(c.wd, c.undelivered); got != c.want {
			t.Errorf("case %d: Verdict = %d, want %d", i, got, c.want)
		}
	}
}

// TestRoutedTopologyEndToEnd drives the whole stack the way tnet does:
// parse a routed topology with a sever, a halt and a restart, build
// it, run the phased quiesce flow, and demand a clean verdict with
// every message delivered.
func TestRoutedTopologyEndToEnd(t *testing.T) {
	src := `
transputer n0 t424 mem=64K
transputer n1 t424 mem=64K
transputer n2 t424 mem=64K
transputer n3 t424 mem=64K
connect n0.1 n1.0
connect n1.1 n2.0
connect n2.1 n3.0
connect n3.1 n0.0
linkmode reliable
heartbeat interval=20us timeout=100us
route
message n1 n2 at=50us  data=before
message n1 n2 at=210us data=during
message n0 n2 at=2ms   data=after
fault sever n1.1 at=200us
fault halt n3 at=300us
fault restart n3 at=900us
run 8ms
`
	topo, err := network.ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildNetwork(topo, ".", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	rep := RunToQuiescence(net)
	if !rep.Settled {
		t.Fatalf("run did not settle: %+v", rep)
	}
	wd := net.System.Watchdog()
	if code := Verdict(wd, net.Router.Undelivered()); code != ExitOK {
		t.Fatalf("verdict = %d, want 0 (watchdog: %v, undelivered: %d)",
			code, wd, net.Router.Undelivered())
	}
	if got := len(net.Router.AllDeliveries()); got != 3 {
		t.Fatalf("delivered %d of 3 messages", got)
	}
	var sb strings.Builder
	PrintRouteSummary(&sb, net.Router)
	if !strings.Contains(sb.String(), "delivered 3 of 3") {
		t.Errorf("summary = %q", sb.String())
	}
}

// TestRoutedTopologyPartitionVerdict: an unsurvivable cut yields the
// partition exit code and names the lost message.
func TestRoutedTopologyPartitionVerdict(t *testing.T) {
	src := `
transputer n0 t424 mem=64K
transputer n1 t424 mem=64K
connect n0.0 n1.0
linkmode reliable
heartbeat interval=20us timeout=100us
route
message n0 n1 at=500us data=doomed
fault sever n0.0 at=100us
run 4ms
`
	topo, err := network.ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildNetwork(topo, ".", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	rep := RunToQuiescence(net)
	if !rep.Settled {
		t.Fatalf("run did not settle: %+v", rep)
	}
	if code := Verdict(net.System.Watchdog(), net.Router.Undelivered()); code != ExitPartition {
		t.Fatalf("verdict = %d, want %d", code, ExitPartition)
	}
	var sb strings.Builder
	PrintRouteSummary(&sb, net.Router)
	if !strings.Contains(sb.String(), "LOST n0 -> n1 seq 0") {
		t.Errorf("summary should name the lost message, got %q", sb.String())
	}
}
