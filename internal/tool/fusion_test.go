package tool

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"transputer/internal/network"
)

// Shard fusion's contract is the parallel engine's, one level up: the
// partition is invisible.  The same topology run with one shard per
// node, everything fused onto one shard, or an adaptively chosen
// grouping — at any worker count, with or without the block cache —
// produces byte-identical timelines, flow traces, stats and host
// output.  These tests pin that for the shipped examples the sweep
// script exercises in CI.

// runFusedNet loads a topology, applies a fusion mode, and runs it
// with the given worker count and block-cache setting, capturing every
// observable output (see netOutput in parallel_test.go).
func runFusedNet(t *testing.T, path, tlPath, flPath, fuse string, workers int, blockcache bool) netOutput {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := network.ParseTopology(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := ResolveFusion(topo, fuse, filepath.Dir(path), workers); err != nil {
		t.Fatal(err)
	}
	var hostOut bytes.Buffer
	net, err := BuildNetwork(topo, filepath.Dir(path), &hostOut)
	if err != nil {
		t.Fatal(err)
	}
	s := net.System
	s.SetWorkers(workers)
	s.SetBlockCache(blockcache)
	obs := NewObserver(s)
	obs.EnableTimeline(tlPath)
	obs.EnableFlows(flPath, LineResolver(net.Programs))
	obs.Start()
	rep := s.Run(net.Limit)

	var text bytes.Buffer
	fmt.Fprintf(&text, "settled=%v time=%v halted=%v blocked=%v\n",
		rep.Settled, rep.Time, rep.Halted, rep.Blocked)
	text.Write(hostOut.Bytes())
	if wd := s.Watchdog(); wd != nil {
		PrintWatchdog(&text, wd, LineResolver(net.Programs))
	}
	for _, n := range s.Nodes() {
		PrintStats(&text, n.Name, n.M.Stats(), n.M.Config().CycleNs)
		PrintLinkStats(&text, n)
	}
	if err := obs.Finish(rep.Time, &text); err != nil {
		t.Fatal(err)
	}
	tl, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := os.ReadFile(flPath)
	if err != nil {
		t.Fatal(err)
	}
	return netOutput{time: rep.Time, timeline: tl, flows: fl, text: text.String()}
}

// assertFusionInvariant runs one topology across the partition ×
// workers × blockcache grid and requires every output byte-identical
// to the unfused workers=1 reference.  Every run writes the timeline
// and flow trace to the same files (read back between runs), so the
// paths Finish prints into the compared text are identical too.
func assertFusionInvariant(t *testing.T, path string) {
	t.Helper()
	tlPath := filepath.Join(t.TempDir(), "tl.json")
	flPath := filepath.Join(t.TempDir(), "flows.json")
	ref := runFusedNet(t, path, tlPath, flPath, "off", 1, true)
	for _, fuse := range []string{"off", "topo", "greedy", "auto", "full"} {
		for _, workers := range []int{1, 4} {
			for _, bc := range []bool{true, false} {
				if fuse == "off" && workers == 1 && bc {
					continue
				}
				got := runFusedNet(t, path, tlPath, flPath, fuse, workers, bc)
				label := fmt.Sprintf("fuse=%s workers=%d blockcache=%v", fuse, workers, bc)
				if got.time != ref.time {
					t.Errorf("%s: settle time %v, want %v", label, got.time, ref.time)
				}
				if got.text != ref.text {
					t.Errorf("%s: stats/host output differs:\n--- reference ---\n%s\n--- got ---\n%s",
						label, ref.text, got.text)
				}
				if !bytes.Equal(got.timeline, ref.timeline) {
					t.Errorf("%s: timeline differs (%d bytes vs %d)", label, len(got.timeline), len(ref.timeline))
				}
				if !bytes.Equal(got.flows, ref.flows) {
					t.Errorf("%s: flow trace differs (%d bytes vs %d)", label, len(got.flows), len(ref.flows))
				}
				if t.Failed() {
					t.Fatalf("%s: stopping after first divergence", label)
				}
			}
		}
	}
}

// TestFusionInvariantLossyLink: the seeded fault campaign — drops,
// corruption, retransmits — must not see the partition.
func TestFusionInvariantLossyLink(t *testing.T) {
	assertFusionInvariant(t, filepath.Join("..", "..", "examples", "faults", "lossy-link.tnet"))
}

// TestFusionInvariantSeveredRing: a timed cable cut and the deadlock
// watchdog's post-mortem, identical at every partition.
func TestFusionInvariantSeveredRing(t *testing.T) {
	assertFusionInvariant(t, filepath.Join("..", "..", "examples", "faults", "severed-ring.tnet"))
}

// TestFusionInvariantVChanSieve: virtual channels multiplexed over
// fused and unfused wires alike.
func TestFusionInvariantVChanSieve(t *testing.T) {
	assertFusionInvariant(t, filepath.Join("..", "..", "examples", "vchan", "sieve.tnet"))
}

// TestFusionInvariantRing: the plain message ring with a host end —
// the host shares its node's port, so fusing the ring also fuses the
// host protocol.
func TestFusionInvariantRing(t *testing.T) {
	assertFusionInvariant(t, filepath.Join("..", "..", "examples", "netdemo", "ring.tnet"))
}
