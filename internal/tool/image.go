package tool

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"transputer/internal/core"
)

// Image container format (".tix"): a small binary envelope around a
// core.Image so compiled programs can be stored and loaded by the
// tools.  TIX2 appends an optional source map (offset/line pairs, for
// the sampling profiler) after the code; TIX1 files remain readable.
var (
	tixMagic1 = [4]byte{'T', 'I', 'X', '1'}
	tixMagic2 = [4]byte{'T', 'I', 'X', '2'}
)

type tixHeader struct {
	Magic     [4]byte
	Entry     int32
	DataBytes int32
	WsBelow   int32
	WsAbove   int32
	CodeLen   int32
}

// EncodeImage serialises an image.  Images without a source map encode
// as TIX1 for compatibility with older readers.
func EncodeImage(img core.Image) []byte {
	var buf bytes.Buffer
	h := tixHeader{
		Magic:     tixMagic1,
		Entry:     int32(img.Entry),
		DataBytes: int32(img.DataBytes),
		WsBelow:   int32(img.WsBelow),
		WsAbove:   int32(img.WsAbove),
		CodeLen:   int32(len(img.Code)),
	}
	if len(img.Marks) > 0 {
		h.Magic = tixMagic2
	}
	binary.Write(&buf, binary.LittleEndian, h)
	buf.Write(img.Code)
	if len(img.Marks) > 0 {
		binary.Write(&buf, binary.LittleEndian, int32(len(img.Marks)))
		for _, mk := range img.Marks {
			binary.Write(&buf, binary.LittleEndian, int32(mk.Offset))
			binary.Write(&buf, binary.LittleEndian, int32(mk.Line))
		}
	}
	return buf.Bytes()
}

// DecodeImage parses a serialised image.
func DecodeImage(data []byte) (core.Image, error) {
	var h tixHeader
	r := bytes.NewReader(data)
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return core.Image{}, fmt.Errorf("tix: short header: %w", err)
	}
	v2 := h.Magic == tixMagic2
	if h.Magic != tixMagic1 && !v2 {
		return core.Image{}, fmt.Errorf("tix: bad magic %q", h.Magic[:])
	}
	if !v2 && int(h.CodeLen) != r.Len() {
		return core.Image{}, fmt.Errorf("tix: code length %d does not match payload %d", h.CodeLen, r.Len())
	}
	if v2 && int(h.CodeLen) > r.Len() {
		return core.Image{}, fmt.Errorf("tix: code length %d exceeds payload %d", h.CodeLen, r.Len())
	}
	code := make([]byte, h.CodeLen)
	if _, err := r.Read(code); err != nil && h.CodeLen > 0 {
		return core.Image{}, err
	}
	img := core.Image{
		Code:      code,
		Entry:     int(h.Entry),
		DataBytes: int(h.DataBytes),
		WsBelow:   int(h.WsBelow),
		WsAbove:   int(h.WsAbove),
	}
	if v2 {
		var n int32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return core.Image{}, fmt.Errorf("tix: short source map: %w", err)
		}
		if n < 0 || int(n) > r.Len()/8 {
			return core.Image{}, fmt.Errorf("tix: bad source map count %d", n)
		}
		img.Marks = make([]core.SourceMark, n)
		for i := range img.Marks {
			var off, ln int32
			binary.Read(r, binary.LittleEndian, &off)
			if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
				return core.Image{}, fmt.Errorf("tix: short source map: %w", err)
			}
			img.Marks[i] = core.SourceMark{Offset: int(off), Line: int(ln)}
		}
	}
	return img, nil
}

// WriteImage stores an image at path.
func WriteImage(path string, img core.Image) error {
	return os.WriteFile(path, EncodeImage(img), 0o644)
}

// ReadImage loads an image from path.
func ReadImage(path string) (core.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Image{}, err
	}
	return DecodeImage(data)
}

// LoadAny loads a program: source (.occ/.tasm) or prebuilt image
// (.tix).
func LoadAny(path string, wordBytes int) (core.Image, error) {
	if strings.ToLower(filepath.Ext(path)) == ".tix" {
		return ReadImage(path)
	}
	return LoadProgram(path, wordBytes)
}
