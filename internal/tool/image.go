package tool

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"transputer/internal/core"
)

// Image container format (".tix"): a small binary envelope around a
// core.Image so compiled programs can be stored and loaded by the
// tools.
var tixMagic = [4]byte{'T', 'I', 'X', '1'}

type tixHeader struct {
	Magic     [4]byte
	Entry     int32
	DataBytes int32
	WsBelow   int32
	WsAbove   int32
	CodeLen   int32
}

// EncodeImage serialises an image.
func EncodeImage(img core.Image) []byte {
	var buf bytes.Buffer
	h := tixHeader{
		Magic:     tixMagic,
		Entry:     int32(img.Entry),
		DataBytes: int32(img.DataBytes),
		WsBelow:   int32(img.WsBelow),
		WsAbove:   int32(img.WsAbove),
		CodeLen:   int32(len(img.Code)),
	}
	binary.Write(&buf, binary.LittleEndian, h)
	buf.Write(img.Code)
	return buf.Bytes()
}

// DecodeImage parses a serialised image.
func DecodeImage(data []byte) (core.Image, error) {
	var h tixHeader
	r := bytes.NewReader(data)
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return core.Image{}, fmt.Errorf("tix: short header: %w", err)
	}
	if h.Magic != tixMagic {
		return core.Image{}, fmt.Errorf("tix: bad magic %q", h.Magic[:])
	}
	if int(h.CodeLen) != r.Len() {
		return core.Image{}, fmt.Errorf("tix: code length %d does not match payload %d", h.CodeLen, r.Len())
	}
	code := make([]byte, h.CodeLen)
	if _, err := r.Read(code); err != nil && h.CodeLen > 0 {
		return core.Image{}, err
	}
	return core.Image{
		Code:      code,
		Entry:     int(h.Entry),
		DataBytes: int(h.DataBytes),
		WsBelow:   int(h.WsBelow),
		WsAbove:   int(h.WsAbove),
	}, nil
}

// WriteImage stores an image at path.
func WriteImage(path string, img core.Image) error {
	return os.WriteFile(path, EncodeImage(img), 0o644)
}

// ReadImage loads an image from path.
func ReadImage(path string) (core.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Image{}, err
	}
	return DecodeImage(data)
}

// LoadAny loads a program: source (.occ/.tasm) or prebuilt image
// (.tix).
func LoadAny(path string, wordBytes int) (core.Image, error) {
	if strings.ToLower(filepath.Ext(path)) == ".tix" {
		return ReadImage(path)
	}
	return LoadProgram(path, wordBytes)
}
