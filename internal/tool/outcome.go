package tool

import (
	"fmt"
	"io"

	"transputer/internal/network"
	"transputer/internal/route"
	"transputer/internal/sim"
)

// Exit codes of the network tools.  Scripted campaigns (CI, the chaos
// harness) branch on these, so the values are part of the tool
// contract: 0 is a clean completion, 1 a tool error, 2 a usage error,
// and the codes below name the distinct failure verdicts a finished
// run can reach.
const (
	ExitOK = 0
	// ExitDeadlock: the watchdog found processes blocked forever or
	// links down with no prospect of recovery.
	ExitDeadlock = 3
	// ExitPartition: the routing layer accepted messages it could never
	// deliver — the topology lost connectivity and healing could not
	// restore it.
	ExitPartition = 4
	// ExitHostStall: a host transfer was abandoned mid-message.
	ExitHostStall = 5
)

// Verdict classifies a finished run into an exit code.  The most
// specific diagnosis wins: a stalled host transfer names the culprit
// link directly, an unrecovered partition explains the lost traffic,
// and a bare deadlock report is the residual case.
func Verdict(wd *network.WatchdogReport, undelivered int) int {
	switch {
	case wd != nil && len(wd.HostStalls) > 0:
		return ExitHostStall
	case undelivered > 0:
		return ExitPartition
	case wd != nil && !wd.Empty():
		return ExitDeadlock
	}
	return ExitOK
}

// RunToQuiescence drives a built network to a settled state.  A system
// with liveness monitoring never quiesces on its own — the heartbeat
// tickers and replay timers are perpetual — so the run is phased:
// bounded run, stop the perpetual timers, then drain in-flight
// traffic.  Plain systems run to quiescence directly.  The returned
// report reflects the final settled state.
func RunToQuiescence(net *Network) network.Report {
	s := net.System
	if !s.HeartbeatSet() {
		return s.Run(net.Limit)
	}
	rep := s.Run(net.Limit)
	if net.Router != nil {
		net.Router.Stop()
	}
	s.StopHeartbeats()
	drained := s.Continue(rep.Time + 2*sim.Millisecond)
	drained.Halted = rep.Halted
	return drained
}

// PrintRouteSummary reports the routing layer's end-to-end outcome:
// the delivery count against the accepted injections, and each message
// that never arrived.
func PrintRouteSummary(w io.Writer, r *route.Router) {
	if r == nil {
		return
	}
	accepted := 0
	for _, in := range r.Injected() {
		if in.Accepted {
			accepted++
		}
	}
	delivered := len(r.AllDeliveries())
	fmt.Fprintf(w, "route: delivered %d of %d accepted messages (%d injected)\n",
		delivered, accepted, len(r.Injected()))
	if r.Undelivered() == 0 {
		return
	}
	got := make(map[string]bool)
	for _, d := range r.AllDeliveries() {
		got[fmt.Sprintf("%s>%s#%d", d.Origin, d.Dest, d.Seq)] = true
	}
	for _, in := range r.Injected() {
		if in.Accepted && !got[fmt.Sprintf("%s>%s#%d", in.From, in.To, in.Seq)] {
			fmt.Fprintf(w, "route: LOST %s -> %s seq %d (injected at %v, %d bytes)\n",
				in.From, in.To, in.Seq, in.At, len(in.Payload))
		}
	}
}
