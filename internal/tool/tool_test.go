package tool

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/sim"
)

func TestImageRoundTrip(t *testing.T) {
	img := core.Image{
		Code:      []byte{0x40, 0xD1, 0x21, 0xF5},
		Entry:     0,
		DataBytes: 12,
		WsBelow:   32,
		WsAbove:   16,
	}
	got, err := DecodeImage(EncodeImage(img))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Code) != string(img.Code) || got.Entry != img.Entry ||
		got.DataBytes != img.DataBytes || got.WsBelow != img.WsBelow || got.WsAbove != img.WsAbove {
		t.Errorf("round trip: %+v != %+v", got, img)
	}
}

func TestImageRoundTripProperty(t *testing.T) {
	f := func(code []byte, entry, data uint8) bool {
		img := core.Image{Code: code, Entry: int(entry), DataBytes: int(data), WsBelow: 5, WsAbove: 5}
		got, err := DecodeImage(EncodeImage(img))
		return err == nil && string(got.Code) == string(code) &&
			got.Entry == int(entry) && got.DataBytes == int(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestImageDecodeErrors(t *testing.T) {
	if _, err := DecodeImage(nil); err == nil {
		t.Error("empty image should fail")
	}
	if _, err := DecodeImage([]byte("XXXXXXXXXXXXXXXXXXXXXXXXXXXX")); err == nil {
		t.Error("bad magic should fail")
	}
	good := EncodeImage(core.Image{Code: []byte{1, 2, 3}})
	if _, err := DecodeImage(good[:len(good)-1]); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestImageFileIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.tix")
	img := core.Image{Code: []byte{0x40, 0xD1}, WsBelow: 8, WsAbove: 8}
	if err := WriteImage(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Code) != string(img.Code) {
		t.Error("file round trip corrupted code")
	}
	// LoadAny dispatches on extension.
	got2, err := LoadAny(path, 4)
	if err != nil || string(got2.Code) != string(img.Code) {
		t.Errorf("LoadAny(.tix): %v", err)
	}
}

func TestTranslateProgram(t *testing.T) {
	occSrc := "CHAN c:\nPLACE c AT LINK0OUT:\nc ! 1\n"
	img, err := TranslateProgram(occSrc, ".occ", 4)
	if err != nil || len(img.Code) == 0 {
		t.Errorf("occam translate: %v", err)
	}
	asmSrc := "\tldc 1\n\tstl 1\n\tstopp\n"
	img2, err := TranslateProgram(asmSrc, ".tasm", 4)
	if err != nil || len(img2.Code) == 0 {
		t.Errorf("asm translate: %v", err)
	}
	if _, err := TranslateProgram("x", ".xyz", 4); err == nil {
		t.Error("unknown extension should fail")
	}
	if _, err := TranslateProgram("garbage !!", ".occ", 4); err == nil {
		t.Error("bad occam should fail")
	}
}

func TestLoadProgramFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.occ")
	if err := os.WriteFile(path, []byte("CHAN c:\nPLACE c AT LINK0OUT:\nc ! 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	img, err := LoadProgram(path, 4)
	if err != nil || len(img.Code) == 0 {
		t.Fatalf("LoadProgram: %v", err)
	}
	if _, err := LoadProgram(filepath.Join(dir, "missing.occ"), 4); err == nil {
		t.Error("missing file should fail")
	}
}

func TestModelConfig(t *testing.T) {
	cfg, err := ModelConfig("t424", 0)
	if err != nil || cfg.WordBits != 32 {
		t.Errorf("t424: %+v %v", cfg, err)
	}
	cfg, err = ModelConfig("T222", 32*1024)
	if err != nil || cfg.WordBits != 16 || cfg.MemBytes != 32*1024 {
		t.Errorf("t222: %+v %v", cfg, err)
	}
	if _, err := ModelConfig("t800", 0); err == nil {
		t.Error("unknown model should fail")
	}
}

// TestRingTopologyEndToEnd builds and runs the shipped netdemo ring
// through the same path the tnet command uses.
func TestRingTopologyEndToEnd(t *testing.T) {
	base := filepath.Join("..", "..", "examples", "netdemo")
	src, err := os.ReadFile(filepath.Join(base, "ring.tnet"))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := network.ParseTopology(string(src))
	if err != nil {
		t.Fatal(err)
	}
	s := network.NewSystem()
	for _, spec := range topo.Transputers {
		cfg, err := ModelConfig(spec.Model, spec.MemBytes)
		if err != nil {
			t.Fatal(err)
		}
		n, err := s.AddTransputer(spec.Name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		img, err := LoadAny(filepath.Join(base, spec.Program), cfg.WordBits/8)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Load(img); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range topo.Connections {
		a, _ := s.Node(c.A)
		b, _ := s.Node(c.B)
		if err := s.Connect(a, c.ALink, b, c.BLink); err != nil {
			t.Fatal(err)
		}
	}
	var host *network.Host
	for _, h := range topo.Hosts {
		n, _ := s.Node(h.Node)
		host, err = s.AttachHost(n, h.Link, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	rep := s.Run(topo.RunLimit)
	if !rep.Settled || host == nil || !host.Done {
		t.Fatalf("ring did not complete: %+v", rep)
	}
	// Three laps around three incrementing workers.
	if len(host.Values) != 1 || host.Values[0] != 9 {
		t.Errorf("ring token = %v, want [9]", host.Values)
	}
	if rep.Time >= 50*sim.Millisecond {
		t.Errorf("ring took %v, expected well under the 50ms limit", rep.Time)
	}
}

// TestImageSourceMapRoundTrip: images carrying a source map encode as
// TIX2 and survive the trip; mark-free images stay TIX1.
func TestImageSourceMapRoundTrip(t *testing.T) {
	img := core.Image{
		Code:    []byte{0x40, 0xD1, 0x21, 0xF5},
		WsBelow: 8, WsAbove: 8,
		Marks: []core.SourceMark{{Offset: 0, Line: 3}, {Offset: 2, Line: 5}},
	}
	data := EncodeImage(img)
	if string(data[:4]) != "TIX2" {
		t.Errorf("magic = %q, want TIX2", data[:4])
	}
	got, err := DecodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Marks) != 2 || got.Marks[1] != (core.SourceMark{Offset: 2, Line: 5}) {
		t.Errorf("marks = %+v", got.Marks)
	}
	plain := EncodeImage(core.Image{Code: []byte{0x40}})
	if string(plain[:4]) != "TIX1" {
		t.Errorf("mark-free magic = %q, want TIX1", plain[:4])
	}
	if _, err := DecodeImage(data[:len(data)-2]); err == nil {
		t.Error("truncated source map should fail")
	}
}

// TestCompiledSourceMap: the occam compiler emits marks covering its
// code, offset-sorted.
func TestCompiledSourceMap(t *testing.T) {
	img, err := TranslateProgram("CHAN c:\nPLACE c AT LINK0OUT:\nSEQ i = [1 FOR 3]\n  c ! i\n", ".occ", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Marks) == 0 {
		t.Fatal("occam compile produced no source marks")
	}
	for i := 1; i < len(img.Marks); i++ {
		if img.Marks[i].Offset < img.Marks[i-1].Offset {
			t.Fatalf("marks not sorted: %+v", img.Marks)
		}
	}
	for _, mk := range img.Marks {
		if mk.Line < 1 || mk.Line > 4 {
			t.Errorf("mark line %d outside the 4-line program", mk.Line)
		}
		if mk.Offset < 0 || mk.Offset > len(img.Code) {
			t.Errorf("mark offset %d outside code", mk.Offset)
		}
	}
}
