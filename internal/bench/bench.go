// Package bench builds the multi-transputer workloads used by the
// simulator's throughput benchmarks (bench_parallel_test.go and
// cmd/tbench).  Two communication-heavy topologies — a unidirectional
// ring and a torus grid with every link streaming tokens — measure
// event-engine overhead; a compute-heavy ring — each node trial-
// dividing its way through a prime count before exchanging a single
// word — measures raw instruction-execution rate, the case the
// predecoded block cache exists for.
package bench

import (
	"fmt"
	"sync"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/occam"
	"transputer/internal/sim"
)

// ringSource streams `rounds` words out of each node while a parallel
// process drains the same count from the previous node, so every link
// of the ring carries continuous traffic and the network settles
// cleanly.  The sender and receiver must be concurrent: a node that
// sent before receiving would deadlock the whole synchronous ring.
const ringSource = `DEF rounds = 256:
CHAN in, out:
PLACE in AT LINK0IN:
PLACE out AT LINK1OUT:
PROC src(CHAN out, VALUE rounds) =
  SEQ i = [0 FOR rounds]
    out ! i + i
:
PROC sink(CHAN in, VALUE rounds) =
  VAR x, sum:
  SEQ
    sum := 0
    SEQ i = [0 FOR rounds]
      SEQ
        in ? x
        sum := sum + x
:
PAR
  src(out, rounds)
  sink(in, rounds)
`

// gridSource is the torus-node program: the same streaming pair run
// twice, once around the node's row and once around its column.
const gridSource = `DEF rounds = 128:
CHAN hin, hout, vin, vout:
PLACE hin AT LINK0IN:
PLACE hout AT LINK1OUT:
PLACE vin AT LINK2IN:
PLACE vout AT LINK3OUT:
PROC src(CHAN out, VALUE rounds) =
  SEQ i = [0 FOR rounds]
    out ! i + i
:
PROC sink(CHAN in, VALUE rounds) =
  VAR x, sum:
  SEQ
    sum := 0
    SEQ i = [0 FOR rounds]
      SEQ
        in ? x
        sum := sum + x
:
PAR
  src(hout, rounds)
  sink(hin, rounds)
  src(vout, rounds)
  sink(vin, rounds)
`

// computeSource is the compute-heavy node: count the primes below
// `limit` by trial division — a long run of pure arithmetic with only
// workspace traffic — then exchange one word around the ring so the
// network still synchronises and settles.  Links are idle for almost
// the entire run, which is exactly the shape that lets a shard promise
// quiescence and run at memory speed between barriers.
const computeSource = `DEF limit = 2000:
CHAN in, out:
PLACE in AT LINK0IN:
PLACE out AT LINK1OUT:
PROC work(VAR count, VALUE limit) =
  VAR n, d, prime:
  SEQ
    count := 0
    n := 2
    WHILE n <= limit
      SEQ
        prime := TRUE
        d := 2
        WHILE ((d * d) <= n) AND prime
          SEQ
            IF
              (n \ d) = 0
                prime := FALSE
              TRUE
                d := d + 1
        IF
          prime
            count := count + 1
          TRUE
            SKIP
        n := n + 1
:
PROC send(CHAN out, VALUE limit) =
  VAR count:
  SEQ
    work(count, limit)
    out ! count
:
PROC recv(CHAN in) =
  VAR x:
  in ? x
:
PAR
  send(out, limit)
  recv(in)
`

// vcfanSrcSource is the many-producers side of the virtual-channel
// fan: eight independent streams all leave through the same physical
// wire, each on its own virtual channel, so the mux's round-robin
// interleaving and per-channel credit are on the benchmark's hot path.
const vcfanSrcSource = `DEF rounds = 128:
CHAN c0, c1, c2, c3, c4, c5, c6, c7:
PLACE c0 AT LINK1VC0OUT:
PLACE c1 AT LINK1VC1OUT:
PLACE c2 AT LINK1VC2OUT:
PLACE c3 AT LINK1VC3OUT:
PLACE c4 AT LINK1VC4OUT:
PLACE c5 AT LINK1VC5OUT:
PLACE c6 AT LINK1VC6OUT:
PLACE c7 AT LINK1VC7OUT:
PROC src(CHAN out, VALUE rounds) =
  SEQ i = [0 FOR rounds]
    out ! i + i
:
PAR
  src(c0, rounds)
  src(c1, rounds)
  src(c2, rounds)
  src(c3, rounds)
  src(c4, rounds)
  src(c5, rounds)
  src(c6, rounds)
  src(c7, rounds)
`

// vcfanSinkSource drains the eight streams on the peer.
const vcfanSinkSource = `DEF rounds = 128:
CHAN c0, c1, c2, c3, c4, c5, c6, c7:
PLACE c0 AT LINK1VC0IN:
PLACE c1 AT LINK1VC1IN:
PLACE c2 AT LINK1VC2IN:
PLACE c3 AT LINK1VC3IN:
PLACE c4 AT LINK1VC4IN:
PLACE c5 AT LINK1VC5IN:
PLACE c6 AT LINK1VC6IN:
PLACE c7 AT LINK1VC7IN:
PROC sink(CHAN in, VALUE rounds) =
  VAR x, sum:
  SEQ
    sum := 0
    SEQ i = [0 FOR rounds]
      SEQ
        in ? x
        sum := sum + x
:
PAR
  sink(c0, rounds)
  sink(c1, rounds)
  sink(c2, rounds)
  sink(c3, rounds)
  sink(c4, rounds)
  sink(c5, rounds)
  sink(c6, rounds)
  sink(c7, rounds)
`

var images = struct {
	once                sync.Once
	ring, grid, compute core.Image
	vcfanSrc, vcfanSink core.Image
	err                 error
}{}

func compile() error {
	c := &images
	c.once.Do(func() {
		for _, p := range []struct {
			src string
			dst *core.Image
		}{
			{ringSource, &c.ring},
			{gridSource, &c.grid},
			{computeSource, &c.compute},
			{vcfanSrcSource, &c.vcfanSrc},
			{vcfanSinkSource, &c.vcfanSink},
		} {
			r, err := occam.Compile(p.src, occam.Options{})
			if err != nil {
				c.err = err
				return
			}
			*p.dst = r.Image
		}
	})
	return c.err
}

func config() core.Config {
	cfg := core.T424()
	cfg.MemBytes = 16 * 1024
	return cfg
}

// Ring wires `nodes` transputers in a unidirectional ring with every
// link streaming continuously: link 1 of each node feeds link 0 of the
// next.
func Ring(nodes int) (*network.System, error) {
	if err := compile(); err != nil {
		return nil, err
	}
	return buildRing(nodes, images.ring, nil)
}

// ComputeRing wires `nodes` transputers in a unidirectional ring where
// each node sieves primes locally and the links carry a single word.
func ComputeRing(nodes int) (*network.System, error) {
	if err := compile(); err != nil {
		return nil, err
	}
	return buildRing(nodes, images.compute, nil)
}

func buildRing(nodes int, img core.Image, groups [][]string) (*network.System, error) {
	s := network.NewSystem()
	if err := place(s, groups); err != nil {
		return nil, err
	}
	ns := make([]*network.Node, nodes)
	for i := range ns {
		n, err := s.AddTransputer(fmt.Sprintf("n%d", i), config())
		if err != nil {
			return nil, err
		}
		if err := n.Load(img); err != nil {
			return nil, err
		}
		ns[i] = n
	}
	for i := range ns {
		if err := s.Connect(ns[i], 1, ns[(i+1)%nodes], 0); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Grid wires a side x side torus: link 1 feeds the right neighbour's
// link 0, link 3 feeds the lower neighbour's link 2.
func Grid(side int) (*network.System, error) {
	return grid(side, nil)
}

func grid(side int, groups [][]string) (*network.System, error) {
	if err := compile(); err != nil {
		return nil, err
	}
	s := network.NewSystem()
	if err := place(s, groups); err != nil {
		return nil, err
	}
	ns := make([]*network.Node, side*side)
	for i := range ns {
		n, err := s.AddTransputer(fmt.Sprintf("n%d", i), config())
		if err != nil {
			return nil, err
		}
		if err := n.Load(images.grid); err != nil {
			return nil, err
		}
		ns[i] = n
	}
	at := func(r, c int) *network.Node { return ns[((r+side)%side)*side+(c+side)%side] }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if err := s.Connect(at(r, c), 1, at(r, c+1), 0); err != nil {
				return nil, err
			}
			if err := s.Connect(at(r, c), 3, at(r+1, c), 2); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// VCFan wires two transputers by a single wire carrying `vchans`
// virtual channels, with that many producer processes on one node all
// streaming to matching consumers on the other — the many-channels-
// few-wires shape the multiplexer exists for.
func VCFan(vchans int) (*network.System, error) {
	return vcFan(vchans, nil)
}

func vcFan(vchans int, groups [][]string) (*network.System, error) {
	if err := compile(); err != nil {
		return nil, err
	}
	s := network.NewSystem()
	if err := place(s, groups); err != nil {
		return nil, err
	}
	a, err := s.AddTransputer("a", config())
	if err != nil {
		return nil, err
	}
	b, err := s.AddTransputer("b", config())
	if err != nil {
		return nil, err
	}
	if err := a.Load(images.vcfanSrc); err != nil {
		return nil, err
	}
	if err := b.Load(images.vcfanSink); err != nil {
		return nil, err
	}
	if err := s.Connect(a, 1, b, 1); err != nil {
		return nil, err
	}
	if err := s.EnableVChans(a, 1, vchans); err != nil {
		return nil, err
	}
	return s, nil
}

// Build constructs a workload by name: "ring8", "grid3x3", "compute8"
// or "vcfan8".
func Build(name string) (*network.System, error) {
	return BuildPlaced(name, nil)
}

// BuildPlaced constructs a workload with the given shard-fusion
// placement (nil for one shard per node).  The placement changes only
// simulator speed; results are byte-identical.
func BuildPlaced(name string, groups [][]string) (*network.System, error) {
	switch name {
	case "ring8":
		if err := compile(); err != nil {
			return nil, err
		}
		return buildRing(8, images.ring, groups)
	case "grid3x3":
		return grid(3, groups)
	case "compute8":
		if err := compile(); err != nil {
			return nil, err
		}
		return buildRing(8, images.compute, groups)
	case "vcfan8":
		return vcFan(8, groups)
	default:
		return nil, fmt.Errorf("bench: unknown workload %q (ring8, grid3x3, compute8, vcfan8)", name)
	}
}

func place(s *network.System, groups [][]string) error {
	if len(groups) == 0 {
		return nil
	}
	return s.SetPlacement(groups)
}

// FuseGroups computes a workload's static fusion placement: the wiring
// graph greedily contracted to at most maxParts shards (maxParts < 1
// fuses fully).
func FuseGroups(name string, maxParts int) ([][]string, error) {
	s, err := Build(name)
	if err != nil {
		return nil, err
	}
	return network.GreedyFuse(nodeNames(s), s.WiringEdges(), maxParts, 1), nil
}

// AutoFuseGroups computes a workload's adaptive fusion placement from
// a profiling pre-run: the workload runs once unfused, each connection
// is weighted by observed wire activity, edges too quiet to be worth a
// shard are dropped, and the rest contract to at most maxParts groups.
func AutoFuseGroups(name string, maxParts int, limit sim.Time) ([][]string, error) {
	s, err := Build(name)
	if err != nil {
		return nil, err
	}
	if _, err := Run(s, limit); err != nil {
		return nil, fmt.Errorf("bench: autofuse pre-run: %w", err)
	}
	floor := network.FuseTrafficFloor(s.Now())
	return network.GreedyFuse(nodeNames(s), s.TrafficEdges(), maxParts, floor), nil
}

func nodeNames(s *network.System) []string {
	nodes := s.Nodes()
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	return names
}

// Workloads lists the available workload names in canonical order.
func Workloads() []string { return []string{"ring8", "grid3x3", "compute8", "vcfan8"} }

// Run executes a built workload to completion and returns the total
// machine cycles it simulated.  Every workload must settle — every
// process finished, no link wedged — inside the limit.
func Run(s *network.System, limit sim.Time) (uint64, error) {
	rep := s.Run(limit)
	if !rep.Settled {
		return 0, fmt.Errorf("bench: network did not settle: %+v", rep)
	}
	if len(rep.Blocked) > 0 || len(rep.Halted) > 0 {
		return 0, fmt.Errorf("bench: network finished wedged: %+v", rep)
	}
	return s.TotalStats().Cycles, nil
}
