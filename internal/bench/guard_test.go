package bench

import (
	"os"
	"sort"
	"testing"
	"time"

	"transputer/internal/probe"
	"transputer/internal/sim"
)

// The probe subsystem's first invariant is that a detached bus costs
// nothing: every emit site nil-checks the bus before building an
// event, and flow identifiers are only minted when a bus is attached.
// These benchmarks make the cost of each mode measurable, and the
// env-gated guard test turns the comparison into a CI tripwire.

func runWorkload(b testing.TB, attach bool) {
	s, err := Ring(8)
	if err != nil {
		b.Fatal(err)
	}
	if attach {
		bus := probe.NewBus()
		bus.Subscribe(func(probe.Event) {})
		s.AttachProbe(bus)
	}
	if _, err := Run(s, 10*sim.Second); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProbeDetached measures the communication-heavy ring with no
// probe bus: the shipping configuration.
func BenchmarkProbeDetached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runWorkload(b, false)
	}
}

// BenchmarkProbeAttached measures the same ring with a bus and a no-op
// subscriber attached: every channel rendezvous, link transfer and
// wire packet now builds and publishes an event and mints flow IDs.
func BenchmarkProbeAttached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runWorkload(b, true)
	}
}

// TestNilBusOverheadGuard is the CI guard for the nil-bus fast path:
// with probes detached the ring must not run measurably slower than
// with a bus attached — if it ever does, an emit site stopped
// nil-checking the bus (or started paying for flow bookkeeping while
// detached).  Wall-clock comparisons are noisy, so the guard takes the
// median of several runs, allows generous slack, and only runs when
// TRANSPUTER_BENCH_GUARD=1 (set by the CI job).
func TestNilBusOverheadGuard(t *testing.T) {
	if os.Getenv("TRANSPUTER_BENCH_GUARD") == "" {
		t.Skip("set TRANSPUTER_BENCH_GUARD=1 to run the nil-bus overhead guard")
	}
	median := func(attach bool) time.Duration {
		const runs = 5
		runWorkload(t, attach) // warm the compile cache and the heap
		wall := make([]time.Duration, 0, runs)
		for i := 0; i < runs; i++ {
			start := time.Now()
			runWorkload(t, attach)
			wall = append(wall, time.Since(start))
		}
		sort.Slice(wall, func(i, j int) bool { return wall[i] < wall[j] })
		return wall[len(wall)/2]
	}
	detached := median(false)
	attached := median(true)
	t.Logf("ring8 median wall time: detached %v, attached %v", detached, attached)
	// The detached run does strictly less work than the attached one;
	// 25% slack absorbs scheduler and allocator noise on shared CI
	// runners while still catching a forgotten nil check (attaching the
	// bus roughly doubles the per-event cost on this workload).
	if float64(detached) > 1.25*float64(attached) {
		t.Errorf("nil-bus fast path regressed: detached median %v > 1.25 × attached median %v",
			detached, attached)
	}
}
