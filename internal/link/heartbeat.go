// Link liveness monitoring.
//
// The paper's protocol has no failure detector: a sender whose peer
// dies simply waits forever.  This file adds an opt-in heartbeat: each
// engine periodically sends a tiny beat packet (BeatBits) down every
// idle engine-to-engine wire, records the last instant anything —
// data, acknowledge, NAK or beat — arrived on each link, and flips a
// per-link verdict when the silence exceeds a timeout.  Verdict
// changes are published as probe.Heartbeat events and reported to the
// OnHeartbeat callback, which the routing layer uses to steer traffic
// around dead links and to resynchronise links that come back.
//
// Beats ride the same serialised signal lines as real traffic, but
// only when the wire is idle, so they never delay data.  Host-wired
// links are not monitored: host ends do not beat, and declaring the
// host dead for its silence would be wrong.  Verdicts change only at
// tick instants, keeping detection deterministic under any shard
// schedule.
package link

import (
	"transputer/internal/core"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Defaults for SetHeartbeat: a beat every 20 µs and a verdict after
// 100 µs of silence — five missed beats, comfortably above the
// error-detecting mode's per-byte retransmission timeout.
const (
	DefaultBeatInterval = 20 * sim.Microsecond
	DefaultBeatTimeout  = 100 * sim.Microsecond
)

// heartbeat is one engine's liveness-monitor state.
type heartbeat struct {
	interval   sim.Time
	timeout    sim.Time
	configured bool
	running    bool
	timer      sim.EventID
	lastHeard  [core.NumLinks]sim.Time
	peerDown   [core.NumLinks]bool
}

// SetHeartbeat configures the liveness monitor.  Zero or negative
// values select the defaults.  The monitor does not run until
// StartHeartbeat is called.
func (e *Engine) SetHeartbeat(interval, timeout sim.Time) {
	if interval <= 0 {
		interval = DefaultBeatInterval
	}
	if timeout <= 0 {
		timeout = DefaultBeatTimeout
	}
	e.hb.interval = interval
	e.hb.timeout = timeout
	e.hb.configured = true
}

// OnHeartbeat registers the verdict-change callback: up reports
// whether the link's peer was just declared alive (true) or
// unresponsive (false).  Called from the engine's own shard.
func (e *Engine) OnHeartbeat(fn func(link int, up bool)) { e.onBeat = fn }

// StartHeartbeat begins monitoring: every link is presumed alive as of
// now, and the first beats go out one interval from now.  A no-op when
// the monitor is unconfigured or already running.
func (e *Engine) StartHeartbeat() {
	if !e.hb.configured || e.hb.running {
		return
	}
	e.hb.running = true
	now := e.k.Now()
	for l := range e.hb.lastHeard {
		e.hb.lastHeard[l] = now
		e.hb.peerDown[l] = false
	}
	e.hb.timer = e.k.After(e.hb.interval, e.hbTick)
}

// StopHeartbeat cancels the monitor's recurring timer so the
// simulation can quiesce.  Verdicts are frozen as they stand.
func (e *Engine) StopHeartbeat() {
	if !e.hb.running {
		return
	}
	e.hb.running = false
	e.k.Cancel(e.hb.timer)
}

// PeerDown reports the current liveness verdict for link l's peer.
func (e *Engine) PeerDown(l int) bool {
	if l < 0 || l >= core.NumLinks {
		return false
	}
	return e.hb.peerDown[l]
}

// heard records that something arrived on link l just now.
func (e *Engine) heard(l int) {
	e.hb.lastHeard[l] = e.k.Now()
}

func (o *outHalf) heard() {
	if o.eng != nil {
		o.eng.heard(o.link)
	}
}

func (in *inHalf) heard() {
	if in.eng != nil {
		in.eng.heard(in.link)
	}
}

// beatArrive handles a liveness probe landing on this half's link.
func (in *inHalf) beatArrive() {
	in.heard()
}

// monitored reports whether link l joins the heartbeat exchange: it
// must be wired to another engine.  Host ends never beat.
func (e *Engine) monitored(l int) bool {
	o := e.outs[l]
	return o.wire != nil && o.peer != nil && o.peer.eng != nil
}

// hbTick is the periodic monitor body: pass verdicts on every
// monitored link, then beat the idle wires, then reschedule.
func (e *Engine) hbTick() {
	if !e.hb.running {
		return
	}
	now := e.k.Now()
	for l := 0; l < core.NumLinks; l++ {
		if !e.monitored(l) {
			continue
		}
		silence := now - e.hb.lastHeard[l]
		switch {
		case !e.hb.peerDown[l] && silence > e.hb.timeout:
			e.hb.peerDown[l] = true
			if e.bus != nil {
				// Published directly, not via emit: heartbeat events are
				// link-clocked, and a CPU cycle stamp here would vary
				// with simulator batching (the block-cache invariant).
				e.bus.Publish(probe.Event{Kind: probe.Heartbeat, Time: now, Node: e.m.Name(), Link: l, Arg: 0, Dur: silence})
			}
			if e.onBeat != nil {
				e.onBeat(l, false)
			}
		case e.hb.peerDown[l] && silence <= e.hb.timeout:
			e.hb.peerDown[l] = false
			if e.bus != nil {
				e.bus.Publish(probe.Event{Kind: probe.Heartbeat, Time: now, Node: e.m.Name(), Link: l, Arg: 1, Dur: silence})
			}
			if e.onBeat != nil {
				e.onBeat(l, true)
			}
		}
		// A beat goes out only when the wire is idle; real traffic is
		// its own proof of life.  Severed wires are still beaten — the
		// transmitting hardware cannot tell the cable is cut.
		if w := e.outs[l].wire; !w.busy && w.queueEmpty() {
			e.sendBeat(l)
		}
	}
	e.hb.timer = e.k.After(e.hb.interval, e.hbTick)
}

func (e *Engine) sendBeat(l int) {
	in := e.outs[l].peer
	e.outs[l].wire.send(packet{
		kind:    pktBeat,
		bits:    BeatBits,
		deliver: func(packet) { in.beatArrive() },
	})
}
