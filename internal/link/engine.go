// The Engine ties the stack's layers to one machine's four links: it
// implements core.External (machine-memory transfers and alternative
// input) on top of the byte-transfer layer, owns per-link mode switches
// (stop-and-wait, error detecting, heartbeats, virtual channels), and
// carries the fault surface (hooks, sever, restore) down to the wires.
package link

import (
	"transputer/internal/core"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Engine implements core.External for one machine: four link output
// halves and four input halves.  Unconnected links never complete a
// transfer, exactly like real hardware with nothing wired to the pins.
type Engine struct {
	k    sim.Clock
	m    *core.Machine
	outs [core.NumLinks]*outHalf
	ins  [core.NumLinks]*inHalf
	bus  *probe.Bus

	// mux holds the per-link virtual-channel multiplexers; nil entries
	// are links carrying a single conversation (see vchan.go).
	mux [core.NumLinks]*Mux

	// hb is the liveness monitor state (see heartbeat.go); onBeat is
	// told every verdict change.
	hb     heartbeat
	onBeat func(link int, up bool)

	// onSever, when set, is told the first time each link of this engine
	// is cut; the network layer uses it to retire the pair from the
	// coordinator's wiring matrix so severed neighbourhoods stop
	// constraining each other's windows.
	onSever func(link int)
}

// NewEngine builds a link engine for a machine and attaches it.  The
// clock is the machine's own scheduling domain — a standalone kernel
// or a coordinator shard.
func NewEngine(k sim.Clock, m *core.Machine) *Engine {
	e := &Engine{k: k, m: m}
	for i := range e.outs {
		e.outs[i] = &outHalf{eng: e, link: i}
		e.ins[i] = &inHalf{eng: e, link: i}
	}
	return e
}

// AttachProbe connects the engine's wires and senders to a probe bus.
func (e *Engine) AttachProbe(b *probe.Bus) { e.bus = b }

// OnSever registers the link-cut callback (see Engine.onSever).
func (e *Engine) OnSever(fn func(link int)) { e.onSever = fn }

// HandoffFlow implements core.FlowExternal: the machine tells the
// engine which flow the transfer about to begin on a link belongs to.
func (e *Engine) HandoffFlow(link int, out bool, flow uint64) {
	if link < 0 || link >= core.NumLinks {
		return
	}
	if out {
		e.outs[link].flow = flow
	} else {
		e.ins[link].flow = flow
	}
}

// TransferFlow implements core.FlowExternal: the flow currently
// associated with a link direction.  For inputs this is the flow
// carried by arrived packets, zero until the first one lands.
func (e *Engine) TransferFlow(link int, out bool) uint64 {
	if link < 0 || link >= core.NumLinks {
		return 0
	}
	if out {
		return e.outs[link].flow
	}
	return e.ins[link].flow
}

// emit stamps and publishes a probe event under the engine's machine.
// Callers must have checked e.bus != nil.
//
//tvet:ignore probeguard the nil-bus fast path is the caller's contract, per the doc line above
func (e *Engine) emit(ev probe.Event) {
	ev.Time = e.k.Now()
	ev.Node = e.m.Name()
	ev.Cycles = e.m.Stats().Cycles
	e.bus.Publish(ev)
}

// Connect wires link la of engine a to link lb of engine b with a pair
// of signal lines.  Engines on the same clock domain get the
// synchronous fast path; engines on different shards of one
// coordinator get mailbox delivery with the coordinator's lookahead as
// the wire's propagation delay.
func Connect(a *Engine, la int, b *Engine, lb int) {
	ab := &wire{k: a.k, bitNs: BitNs, owner: a, link: la}
	ba := &wire{k: b.k, bitNs: BitNs, owner: b, link: lb}
	if post, prop := sim.CrossPath(a.k, b.k); post != nil {
		ab.post, ab.prop, ab.rx = post, prop, &rxGate{}
		ab.fused = sim.SameShard(a.k, b.k)
	}
	if post, prop := sim.CrossPath(b.k, a.k); post != nil {
		ba.post, ba.prop, ba.rx = post, prop, &rxGate{}
		ba.fused = sim.SameShard(b.k, a.k)
	}
	a.outs[la].wire = ab
	a.outs[la].peer = b.ins[lb]
	a.ins[la].ackWire = ab
	a.ins[la].peerOut = b.outs[lb]
	b.outs[lb].wire = ba
	b.outs[lb].peer = a.ins[la]
	b.ins[lb].ackWire = ba
	b.ins[lb].peerOut = a.outs[la]
}

// Connected reports whether link i has been wired.
func (e *Engine) Connected(i int) bool {
	return i >= 0 && i < core.NumLinks && e.outs[i].wire != nil
}

// WireStats returns the traffic counters of link i's outgoing line.
func (e *Engine) WireStats(i int) WireStats {
	if !e.Connected(i) {
		return WireStats{}
	}
	return e.outs[i].wire.stats
}

// BeginOutput starts transmitting count bytes from machine memory.
func (e *Engine) BeginOutput(link int, ptr uint64, count int, done func()) {
	if e.mux[link] != nil {
		// The multiplexer owns this link's byte stream; a plain output
		// on the link word would corrupt its framing.  Hang, like any
		// other occam channel misuse, for the watchdog to report.
		return
	}
	o := e.outs[link]
	if o.active {
		// Two processes using one channel end is an occam program
		// error; mirror hardware by corrupting nothing and hanging.
		return
	}
	if count == 0 {
		done()
		return
	}
	m := e.m
	o.start(func(i int) byte { return m.ReadBytes(ptr+uint64(i), 1)[0] }, count, done)
}

// BeginInput starts receiving count bytes into machine memory.
func (e *Engine) BeginInput(link int, ptr uint64, count int, done func()) {
	if e.mux[link] != nil {
		return
	}
	in := e.ins[link]
	if in.active {
		return
	}
	if count == 0 {
		done()
		return
	}
	m := e.m
	in.start(func(i int, b byte) { m.WriteBytes(ptr+uint64(i), []byte{b}) }, count, done)
}

// SetStopAndWait switches this engine's receivers between the paper's
// overlapped acknowledge (false, the default) and a plain
// stop-and-wait handshake (true).
func (e *Engine) SetStopAndWait(v bool) {
	for _, in := range e.ins {
		in.stopAndWait = v
	}
}

// SetReliable switches every half of this engine into error-detecting
// mode (CRC trailer, NAK, timeout retransmission with a bounded retry
// budget) or back to the paper protocol.  Both ends of every wired link
// must agree; set the mode before any traffic flows.  A zero timeout or
// retry count selects the defaults.
func (e *Engine) SetReliable(on bool, timeout sim.Time, maxRetries int) {
	if timeout <= 0 {
		timeout = DefaultRelTimeout
	}
	if maxRetries <= 0 {
		maxRetries = DefaultRelRetries
	}
	for i := range e.outs {
		e.outs[i].rel.on = on
		e.outs[i].rel.timeout = timeout
		e.outs[i].rel.maxRetries = maxRetries
		e.ins[i].rel.on = on
	}
}

// SetFaultHook installs (or with nil, removes) a fault-injection hook
// on link i's outgoing signal line.
func (e *Engine) SetFaultHook(i int, h FaultHook) {
	if e.Connected(i) {
		e.outs[i].wire.hook = h
	}
}

// SeverLink cuts both signal lines of link i at the current instant:
// nothing queued or in flight is delivered afterwards, exactly like a
// cable pulled mid-run.  When the link crosses shards, the cut is
// observed at the far end one propagation delay later: this end's
// outgoing wire and inbound gate die now, the peer's die at now+prop —
// a packet already in flight may still land before the cut reaches it.
func (e *Engine) SeverLink(i int) {
	if !e.Connected(i) {
		return
	}
	w := e.outs[i].wire
	if w.severed {
		// Already cut (e.g. a halt's SeverAll after a sever of the same
		// link, or both ends halting): the first cut killed both
		// directions.  Going through the motions again would post
		// across a coordinator wiring edge the first cut may have
		// retired, into a peer shard that has since drifted ahead.
		return
	}
	w.severed = true
	peer := e.ins[i].peerOut
	if w.post == nil {
		if peer != nil && peer.wire != nil {
			peer.wire.severed = true
		}
	} else {
		// Inbound traffic stops being accepted here immediately; the
		// peer's transmitter and its receive gate for our wire are cut
		// when the break propagates.
		if peer != nil && peer.wire != nil && peer.wire.rx != nil {
			peer.wire.rx.severed = true
		}
		pw := peer
		rx := w.rx
		w.post(w.k.Now()+w.prop, func() {
			if pw != nil && pw.wire != nil {
				pw.wire.severed = true
			}
			rx.severed = true
		})
	}
	if e.bus != nil {
		e.emit(probe.Event{Kind: probe.LinkSever, Link: i})
	}
	if e.onSever != nil {
		e.onSever(i)
	}
}

// SeverAll cuts every connected link of the engine; used when a fault
// campaign halts the whole node.
func (e *Engine) SeverAll() {
	for i := range e.outs {
		e.SeverLink(i)
	}
}

// RestoreLink reconnects both signal lines of link i, reversing
// SeverLink with the same propagation discipline: this end's wire and
// inbound gate revive now, the peer's revive one propagation later.
// Only sound for links the network layer kept in the coordinator's
// wiring matrix across the cut (see the restart fault rules).
func (e *Engine) RestoreLink(i int) {
	if !e.Connected(i) {
		return
	}
	w := e.outs[i].wire
	w.severed = false
	peer := e.ins[i].peerOut
	if w.post == nil {
		if peer != nil && peer.wire != nil {
			peer.wire.severed = false
		}
		return
	}
	if peer != nil && peer.wire != nil && peer.wire.rx != nil {
		peer.wire.rx.severed = false
	}
	pw := peer
	rx := w.rx
	w.post(w.k.Now()+w.prop, func() {
		if pw != nil && pw.wire != nil {
			pw.wire.severed = false
		}
		rx.severed = false
	})
}

// EnableInput arms alternative-input readiness signalling.
func (e *Engine) EnableInput(link int, ready func()) bool {
	if e.mux[link] != nil {
		return false
	}
	in := e.ins[link]
	if in.bufferValid {
		return true
	}
	in.armed = ready
	return false
}

// DisableInput disarms signalling and reports data availability.
func (e *Engine) DisableInput(link int) bool {
	if e.mux[link] != nil {
		return false
	}
	in := e.ins[link]
	in.armed = nil
	return in.bufferValid
}
