package link

import (
	"bytes"
	"testing"

	"transputer/internal/sim"
)

func reliablePair(timeout sim.Time, retries int) (*sim.Kernel, *HostEnd, *HostEnd) {
	k, a, b := hostPair()
	a.SetReliable(true, timeout, retries)
	b.SetReliable(true, timeout, retries)
	return k, a, b
}

func testMsg(n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	return msg
}

// TestCRC8DetectsBitErrors: every single-bit corruption of the payload
// or sequence bit changes the trailer.
func TestCRC8DetectsBitErrors(t *testing.T) {
	for payload := 0; payload < 256; payload += 17 {
		for seq := byte(0); seq <= 1; seq++ {
			want := crc8(byte(payload), seq)
			for bit := 0; bit < 8; bit++ {
				if crc8(byte(payload)^(1<<bit), seq) == want {
					t.Fatalf("payload %#x bit %d flip undetected", payload, bit)
				}
			}
			if crc8(byte(payload), seq^1) == want {
				t.Fatalf("payload %#x seq flip undetected", payload)
			}
		}
	}
}

// TestReliableCleanTransfer: on a perfect wire the error-detecting mode
// still delivers byte-exact messages, just more slowly (20-bit packets,
// acknowledge only after the trailer).
func TestReliableCleanTransfer(t *testing.T) {
	k, a, b := reliablePair(0, 0)
	msg := testMsg(200)
	var got []byte
	sent := false
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, func() { sent = true })
	k.Run()
	if !sent || !bytes.Equal(got, msg) {
		t.Fatalf("sent=%v, message intact=%v", sent, bytes.Equal(got, msg))
	}
	if st := a.out.wire.stats; st.Naks != 0 {
		t.Errorf("clean wire produced %d naks", st.Naks)
	}
}

// TestReliableCorruptionRecovered: corrupt data packets are NAKed and
// retransmitted; the delivered message is byte-exact.
func TestReliableCorruptionRecovered(t *testing.T) {
	k, a, b := reliablePair(0, 0)
	n := 0
	a.out.wire.hook = func(isCtl bool) FaultAction {
		if isCtl {
			return FaultAction{}
		}
		n++
		if n%5 == 0 {
			return FaultAction{Corrupt: 0x40}
		}
		return FaultAction{}
	}
	msg := testMsg(100)
	var got []byte
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, nil)
	k.Run()
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted despite error-detecting mode")
	}
	if st := b.out.wire.stats; st.Naks == 0 {
		t.Error("corruption produced no naks")
	}
}

// TestReliableDropRecovered: lost data and acknowledge packets are
// recovered by timeout-paced retransmission.
func TestReliableDropRecovered(t *testing.T) {
	k, a, b := reliablePair(2*sim.Microsecond, 16)
	n := 0
	drop := func(isCtl bool) FaultAction {
		n++
		return FaultAction{Drop: n%7 == 0}
	}
	a.out.wire.hook = drop
	b.out.wire.hook = drop // also lose some acks
	msg := testMsg(150)
	var got []byte
	sent := false
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, func() { sent = true })
	k.Run()
	if !sent || !bytes.Equal(got, msg) {
		t.Fatalf("sent=%v intact=%v after drops", sent, bytes.Equal(got, msg))
	}
	if a.out.rel.failed {
		t.Error("link declared down despite recoverable loss")
	}
}

// TestReliableLinkDown: a dead wire exhausts the retry budget; the
// sender gives up rather than spinning forever.
func TestReliableLinkDown(t *testing.T) {
	k, a, b := reliablePair(sim.Microsecond, 4)
	a.out.wire.hook = func(isCtl bool) FaultAction { return FaultAction{Drop: !isCtl} }
	sent := false
	b.Recv(4, func([]byte) {})
	a.Send([]byte{1, 2, 3, 4}, func() { sent = true })
	k.Run()
	if sent {
		t.Fatal("send completed over a dead wire")
	}
	if !a.out.rel.failed {
		t.Fatal("retry budget exhausted but link not marked down")
	}
	if a.out.rel.retries <= 4 {
		t.Errorf("retries = %d, want budget exceeded", a.out.rel.retries)
	}
}

// TestReliableLateReceiver: with no process waiting, the first byte is
// buffered and acknowledged; the next byte is carried by paced retries
// until a receiver turns up, preserving the single-byte-buffer flow
// control without losing data.
func TestReliableLateReceiver(t *testing.T) {
	k, a, b := reliablePair(2*sim.Microsecond, 32)
	msg := []byte{9, 8, 7, 6}
	sent := false
	a.Send(msg, func() { sent = true })
	var got []byte
	k.After(20*sim.Microsecond, func() {
		b.Recv(len(msg), func(d []byte) { got = d })
	})
	k.Run()
	if !sent || !bytes.Equal(got, msg) {
		t.Fatalf("sent=%v got=%v want %v", sent, got, msg)
	}
}

// TestReliableDuplicateSuppression: when an acknowledge is lost the
// sender retransmits a byte the receiver already accepted; the
// alternating sequence bit makes the receiver re-acknowledge without
// delivering it twice.
func TestReliableDuplicateSuppression(t *testing.T) {
	k, a, b := reliablePair(2*sim.Microsecond, 16)
	n := 0
	b.out.wire.hook = func(isCtl bool) FaultAction {
		if !isCtl {
			return FaultAction{}
		}
		n++
		return FaultAction{Drop: n%3 == 0} // lose every third ack
	}
	msg := testMsg(60)
	var got []byte
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, nil)
	k.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("lost acks caused duplicate or missing bytes")
	}
}
