package link

import (
	"bytes"
	"testing"

	"transputer/internal/core"
	"transputer/internal/sim"
)

func reliablePair(timeout sim.Time, retries int) (*sim.Kernel, *HostEnd, *HostEnd) {
	k, a, b := hostPair()
	a.SetReliable(true, timeout, retries)
	b.SetReliable(true, timeout, retries)
	return k, a, b
}

func testMsg(n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	return msg
}

// TestCRC8DetectsBitErrors: every single-bit corruption of the payload
// or sequence bit changes the trailer.
func TestCRC8DetectsBitErrors(t *testing.T) {
	for payload := 0; payload < 256; payload += 17 {
		for seq := byte(0); seq <= 1; seq++ {
			want := crc8(byte(payload), seq)
			for bit := 0; bit < 8; bit++ {
				if crc8(byte(payload)^(1<<bit), seq) == want {
					t.Fatalf("payload %#x bit %d flip undetected", payload, bit)
				}
			}
			if crc8(byte(payload), seq^1) == want {
				t.Fatalf("payload %#x seq flip undetected", payload)
			}
		}
	}
}

// TestReliableCleanTransfer: on a perfect wire the error-detecting mode
// still delivers byte-exact messages, just more slowly (20-bit packets,
// acknowledge only after the trailer).
func TestReliableCleanTransfer(t *testing.T) {
	k, a, b := reliablePair(0, 0)
	msg := testMsg(200)
	var got []byte
	sent := false
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, func() { sent = true })
	k.Run()
	if !sent || !bytes.Equal(got, msg) {
		t.Fatalf("sent=%v, message intact=%v", sent, bytes.Equal(got, msg))
	}
	if st := a.out.wire.stats; st.Naks != 0 {
		t.Errorf("clean wire produced %d naks", st.Naks)
	}
}

// TestReliableCorruptionRecovered: corrupt data packets are NAKed and
// retransmitted; the delivered message is byte-exact.
func TestReliableCorruptionRecovered(t *testing.T) {
	k, a, b := reliablePair(0, 0)
	n := 0
	a.out.wire.hook = func(isCtl bool) FaultAction {
		if isCtl {
			return FaultAction{}
		}
		n++
		if n%5 == 0 {
			return FaultAction{Corrupt: 0x40}
		}
		return FaultAction{}
	}
	msg := testMsg(100)
	var got []byte
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, nil)
	k.Run()
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted despite error-detecting mode")
	}
	if st := b.out.wire.stats; st.Naks == 0 {
		t.Error("corruption produced no naks")
	}
}

// TestRetransmitAccounting pins the wire's two data counters under an
// injected corrupt-then-retry: DataBytes stays the goodput (every byte
// counted once, on its first transmission) while Retransmits absorbs
// the repair traffic, and together they account for every data packet
// the wire carried.
func TestRetransmitAccounting(t *testing.T) {
	k, a, b := reliablePair(0, 0)
	n := 0
	a.out.wire.hook = func(isCtl bool) FaultAction {
		if isCtl {
			return FaultAction{}
		}
		n++
		if n%10 == 0 {
			return FaultAction{Corrupt: 0x08}
		}
		return FaultAction{}
	}
	msg := testMsg(100)
	var got []byte
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, nil)
	k.Run()
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted despite error-detecting mode")
	}
	st := a.out.wire.stats
	if st.DataBytes != uint64(len(msg)) {
		t.Errorf("goodput = %d data bytes, want exactly %d (retransmissions must not inflate it)",
			st.DataBytes, len(msg))
	}
	if st.Retransmits == 0 {
		t.Error("corrupt-then-retry produced no retransmit count")
	}
	if st.DataBytes+st.Retransmits != uint64(n) {
		t.Errorf("wire carried %d data packets but counters say %d goodput + %d retransmitted",
			n, st.DataBytes, st.Retransmits)
	}
}

// TestReliableDropRecovered: lost data and acknowledge packets are
// recovered by timeout-paced retransmission.
func TestReliableDropRecovered(t *testing.T) {
	k, a, b := reliablePair(2*sim.Microsecond, 16)
	n := 0
	drop := func(isCtl bool) FaultAction {
		n++
		return FaultAction{Drop: n%7 == 0}
	}
	a.out.wire.hook = drop
	b.out.wire.hook = drop // also lose some acks
	msg := testMsg(150)
	var got []byte
	sent := false
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, func() { sent = true })
	k.Run()
	if !sent || !bytes.Equal(got, msg) {
		t.Fatalf("sent=%v intact=%v after drops", sent, bytes.Equal(got, msg))
	}
	if a.out.rel.failed {
		t.Error("link declared down despite recoverable loss")
	}
}

// TestReliableLinkDown: a dead wire exhausts the retry budget; the
// sender gives up rather than spinning forever.
func TestReliableLinkDown(t *testing.T) {
	k, a, b := reliablePair(sim.Microsecond, 4)
	a.out.wire.hook = func(isCtl bool) FaultAction { return FaultAction{Drop: !isCtl} }
	sent := false
	b.Recv(4, func([]byte) {})
	a.Send([]byte{1, 2, 3, 4}, func() { sent = true })
	k.Run()
	if sent {
		t.Fatal("send completed over a dead wire")
	}
	if !a.out.rel.failed {
		t.Fatal("retry budget exhausted but link not marked down")
	}
	if a.out.rel.retries <= 4 {
		t.Errorf("retries = %d, want budget exceeded", a.out.rel.retries)
	}
}

// TestReliableLateReceiver: with no process waiting, the first byte is
// buffered and acknowledged; the next byte is carried by paced retries
// until a receiver turns up, preserving the single-byte-buffer flow
// control without losing data.
func TestReliableLateReceiver(t *testing.T) {
	k, a, b := reliablePair(2*sim.Microsecond, 32)
	msg := []byte{9, 8, 7, 6}
	sent := false
	a.Send(msg, func() { sent = true })
	var got []byte
	k.After(20*sim.Microsecond, func() {
		b.Recv(len(msg), func(d []byte) { got = d })
	})
	k.Run()
	if !sent || !bytes.Equal(got, msg) {
		t.Fatalf("sent=%v got=%v want %v", sent, got, msg)
	}
}

// TestSeverRacesNak: a corrupt data packet draws a NAK, and the link is
// cut while that NAK is mid-flight on the return wire.  The NAK is lost
// with the cable; the sender must fall back to its retransmit timer,
// burn the retry budget against the dead wire and declare the link
// down — with the bytes accepted before the cut delivered exactly once
// and nothing after them.
func TestSeverRacesNak(t *testing.T) {
	k := sim.NewKernel()
	ma := core.MustNew(core.T424().WithMemory(16 * 1024))
	mb := core.MustNew(core.T424().WithMemory(16 * 1024))
	ea := NewEngine(k, ma)
	eb := NewEngine(k, mb)
	Connect(ea, 2, eb, 1)
	ea.SetReliable(true, 4*sim.Microsecond, 8)
	eb.SetReliable(true, 4*sim.Microsecond, 8)

	// Corrupt exactly the fifth data packet; the receiver NAKs it.
	n := 0
	ea.SetFaultHook(2, func(isCtl bool) FaultAction {
		if isCtl {
			return FaultAction{}
		}
		n++
		if n == 5 {
			return FaultAction{Corrupt: 0x10}
		}
		return FaultAction{}
	})
	// The return wire carries four acknowledges and then the NAK.  When
	// the NAK starts transmission (3 bit times on the wire), cut the
	// link halfway through its flight.
	ctl := 0
	severed := false
	eb.SetFaultHook(1, func(isCtl bool) FaultAction {
		if isCtl {
			ctl++
			if ctl == 5 && !severed {
				severed = true
				k.After(NakBits*BitNs/2*sim.Nanosecond, func() { ea.SeverLink(2) })
			}
		}
		return FaultAction{}
	})

	msg := testMsg(10)
	ma.WriteBytes(ma.MemStart(), msg)
	dst := mb.MemStart() + 256
	sent, recvd := false, false
	eb.BeginInput(1, dst, len(msg), func() { recvd = true })
	ea.BeginOutput(2, ma.MemStart(), len(msg), func() { sent = true })
	k.Run()

	if !severed {
		t.Fatal("the NAK never appeared on the return wire")
	}
	if sent || recvd {
		t.Fatalf("transfer completed across a severed link: sent=%v recvd=%v", sent, recvd)
	}
	down, retries := ea.LinkDown(2)
	if !down {
		t.Fatal("sender never declared the severed link down")
	}
	if retries <= 8 {
		t.Errorf("retries = %d, want budget exceeded", retries)
	}
	got := mb.ReadBytes(dst, len(msg))
	for i := 0; i < 4; i++ {
		if got[i] != msg[i] {
			t.Errorf("byte %d = %#x, want %#x (pre-cut bytes must survive)", i, got[i], msg[i])
		}
	}
	for i := 4; i < len(msg); i++ {
		if got[i] != 0 {
			t.Errorf("byte %d = %#x arrived after the cut", i, got[i])
		}
	}
}

// TestReliableDuplicateSuppression: when an acknowledge is lost the
// sender retransmits a byte the receiver already accepted; the
// alternating sequence bit makes the receiver re-acknowledge without
// delivering it twice.
func TestReliableDuplicateSuppression(t *testing.T) {
	k, a, b := reliablePair(2*sim.Microsecond, 16)
	n := 0
	b.out.wire.hook = func(isCtl bool) FaultAction {
		if !isCtl {
			return FaultAction{}
		}
		n++
		return FaultAction{Drop: n%3 == 0} // lose every third ack
	}
	msg := testMsg(60)
	var got []byte
	b.Recv(len(msg), func(d []byte) { got = d })
	a.Send(msg, nil)
	k.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("lost acks caused duplicate or missing bytes")
	}
}
