package link

import "transputer/internal/sim"

// HostEnd is one end of a link wired to the host development system
// rather than to another transputer (the paper's workstation of section
// 4.1 is programmed this way: transputers talk to peripherals over
// standard links).  It speaks the same bit-level protocol, so traffic
// to and from the host is paced exactly like inter-transputer traffic.
type HostEnd struct {
	k   sim.Clock
	out *outHalf
	in  *inHalf
}

// NewHostEnd creates an unconnected host link end.  A host end wired
// to a node's engine should share that node's clock (its shard), so
// host traffic stays on the synchronous fast path.
func NewHostEnd(k sim.Clock) *HostEnd {
	return &HostEnd{k: k, out: &outHalf{}, in: &inHalf{}}
}

// ConnectHost wires link l of a transputer's engine to the host end.
func ConnectHost(e *Engine, l int, h *HostEnd) {
	th := &wire{k: e.k, bitNs: BitNs, owner: e, link: l} // transputer -> host
	ht := &wire{k: e.k, bitNs: BitNs}                    // host -> transputer
	e.outs[l].wire = th
	e.outs[l].peer = h.in
	e.ins[l].ackWire = th
	e.ins[l].peerOut = h.out
	h.out.wire = ht
	h.out.peer = e.ins[l]
	h.in.ackWire = ht
	h.in.peerOut = e.outs[l]
}

// SetStopAndWait switches the host end's receiver between overlapped
// and stop-and-wait acknowledges (see Engine.SetStopAndWait).
func (h *HostEnd) SetStopAndWait(v bool) { h.in.stopAndWait = v }

// SetReliable switches the host end into or out of error-detecting
// mode (see Engine.SetReliable); both ends of the wire must agree.
func (h *HostEnd) SetReliable(on bool, timeout sim.Time, maxRetries int) {
	if timeout <= 0 {
		timeout = DefaultRelTimeout
	}
	if maxRetries <= 0 {
		maxRetries = DefaultRelRetries
	}
	h.out.rel.on = on
	h.out.rel.timeout = timeout
	h.out.rel.maxRetries = maxRetries
	h.in.rel.on = on
}

// RecvProgress reports the state of an in-flight Recv: how many bytes
// have arrived of how many expected.  A host end left mid-message when
// the system settles has hit an EOF-like stall (severed link, halted
// peer, or a peer that stopped mid-protocol).
func (h *HostEnd) RecvProgress() (got, want int, active bool) {
	return h.in.received, h.in.count, h.in.active
}

// SendProgress reports the state of an in-flight Send: how many bytes
// have been acknowledged of how many queued.
func (h *HostEnd) SendProgress() (sent, want int, active bool) {
	return h.out.sent, h.out.count, h.out.active
}

// ConnectHosts wires two host ends back to back; used to test the
// protocol machinery in isolation.
func ConnectHosts(a, b *HostEnd) {
	ab := &wire{k: a.k, bitNs: BitNs}
	ba := &wire{k: b.k, bitNs: BitNs}
	a.out.wire = ab
	a.out.peer = b.in
	a.in.ackWire = ab
	a.in.peerOut = b.out
	b.out.wire = ba
	b.out.peer = a.in
	b.in.ackWire = ba
	b.in.peerOut = a.out
}

// Send transmits data to the transputer, calling done when the final
// byte has been acknowledged.
func (h *HostEnd) Send(data []byte, done func()) {
	if h.out.active {
		panic("link: host end already sending")
	}
	if len(data) == 0 {
		if done != nil {
			done()
		}
		return
	}
	buf := append([]byte(nil), data...)
	h.out.start(func(i int) byte { return buf[i] }, len(buf), func() {
		if done != nil {
			done()
		}
	})
}

// Recv receives exactly n bytes from the transputer, then calls fn with
// them.
func (h *HostEnd) Recv(n int, fn func([]byte)) {
	if h.in.active {
		panic("link: host end already receiving")
	}
	if n == 0 {
		fn(nil)
		return
	}
	buf := make([]byte, n)
	h.in.start(func(i int, b byte) { buf[i] = b }, n, func() { fn(buf) })
}
