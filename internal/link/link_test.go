package link

import (
	"bytes"
	"testing"
	"testing/quick"

	"transputer/internal/sim"
)

func hostPair() (*sim.Kernel, *HostEnd, *HostEnd) {
	k := sim.NewKernel()
	a := NewHostEnd(k)
	b := NewHostEnd(k)
	ConnectHosts(a, b)
	return k, a, b
}

// TestContinuousTransmission checks the headline protocol property:
// with a receiver waiting, acknowledges overlap reception and a message
// streams at one byte per 11 bit times (about 1 Mbyte/s at 10 Mbit/s).
func TestContinuousTransmission(t *testing.T) {
	k, a, b := hostPair()
	const n = 1000
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i)
	}
	var got []byte
	recvDone := sim.Time(-1)
	sendDone := sim.Time(-1)
	b.Recv(n, func(data []byte) { got = data; recvDone = k.Now() })
	a.Send(msg, func() { sendDone = k.Now() })
	k.Run()

	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted in transit")
	}
	// Data: n bytes * 11 bits * 100 ns, continuous.
	wantRecv := sim.Time(n * DataBits * BitNs)
	if recvDone != wantRecv {
		t.Errorf("receive finished at %v, want %v (continuous streaming)", recvDone, wantRecv)
	}
	// The sender completes when the final acknowledge arrives: the ack
	// is sent at the start of the final byte and takes 2 bit times, so
	// it is already there at transmission end.
	if sendDone != wantRecv {
		t.Errorf("send finished at %v, want %v", sendDone, wantRecv)
	}
}

// TestThroughputAboutOneMBytePerSecond: 10 Mbit/s with an 11-bit packet
// is 0.909 MByte/s — the paper's "about 1 Mbyte/sec in each direction".
func TestThroughputAboutOneMBytePerSecond(t *testing.T) {
	k, a, b := hostPair()
	const n = 100000
	done := sim.Time(0)
	b.Recv(n, func([]byte) { done = k.Now() })
	a.Send(make([]byte, n), nil)
	k.Run()
	mbps := float64(n) / (float64(done) * 1e-9) / 1e6
	if mbps < 0.85 || mbps > 1.0 {
		t.Errorf("throughput = %.3f MB/s, want about 0.91", mbps)
	}
}

// TestSingleByteBufferFlowControl: with no receiver, exactly one byte
// is transmitted and the acknowledge is withheld, so the sender stalls
// ("requiring only the presence of a single byte buffer in the
// receiving transputer to ensure that no information is lost").
func TestSingleByteBufferFlowControl(t *testing.T) {
	k, a, b := hostPair()
	sent := false
	a.Send([]byte{1, 2, 3, 4}, func() { sent = true })
	k.Run()
	if sent {
		t.Fatal("send completed with no receiver")
	}
	// One data byte is on the wire/buffer; nothing more.
	if got := a.out.sent; got != 0 {
		t.Errorf("sender advanced %d bytes without acknowledge", got)
	}
	if !b.in.bufferValid {
		t.Error("first byte should be buffered at the receiver")
	}

	// A receiver turning up later gets the whole message.
	var got []byte
	b.Recv(4, func(data []byte) { got = data })
	k.Run()
	if !sent || !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("late receiver: sent=%v got=%v", sent, got)
	}
}

// TestBidirectional: the two directions of a link operate concurrently
// ("a link between two transputers provides a pair of occam channels,
// one in each direction").
func TestBidirectional(t *testing.T) {
	k, a, b := hostPair()
	const n = 5000
	var doneAB, doneBA sim.Time
	b.Recv(n, func([]byte) { doneAB = k.Now() })
	a.Recv(n, func([]byte) { doneBA = k.Now() })
	a.Send(make([]byte, n), nil)
	b.Send(make([]byte, n), nil)
	k.Run()
	// Each direction carries n data packets plus n acks for the
	// reverse direction: (11+2) bit times per byte when saturated both
	// ways.
	want := sim.Time(n * (DataBits + AckBits) * BitNs)
	tolerance := sim.Time(20 * BitNs)
	for _, d := range []sim.Time{doneAB, doneBA} {
		if d < want-tolerance || d > want+tolerance {
			t.Errorf("direction finished at %v, want about %v", d, want)
		}
	}
}

// TestAckPriority: acknowledges jump the data queue, so a saturated
// outbound stream does not starve the inbound channel's acks.
func TestAckPriority(t *testing.T) {
	k, a, b := hostPair()
	var order []bool // true = ack
	w := a.out.wire
	// Queue data then an ack while the wire is busy; the ack must go
	// first.
	w.send(packet{bits: DataBits})
	w.send(packet{bits: DataBits, deliverStart: func(uint64) { order = append(order, false) }})
	w.send(packet{kind: pktAck, bits: AckBits, deliverStart: func(uint64) { order = append(order, true) }})
	k.Run()
	if len(order) != 2 || !order[0] || order[1] {
		t.Errorf("transmission order (ack first) = %v", order)
	}
	_ = b
}

// TestWireStats counts packets and busy time.
func TestWireStats(t *testing.T) {
	k, a, b := hostPair()
	b.Recv(10, func([]byte) {})
	a.Send(make([]byte, 10), nil)
	k.Run()
	st := a.out.wire.stats
	if st.DataBytes != 10 {
		t.Errorf("data bytes = %d, want 10", st.DataBytes)
	}
	if st.BusyNs != int64(10*DataBits*BitNs) {
		t.Errorf("busy = %d ns", st.BusyNs)
	}
	// The reverse wire carried the 10 acks.
	rst := b.out.wire.stats
	if rst.Acks != 10 {
		t.Errorf("acks = %d, want 10", rst.Acks)
	}
}

// TestMessageIntegrityProperty: random messages arrive intact whatever
// the interleaving of sender and receiver readiness.
func TestMessageIntegrityProperty(t *testing.T) {
	f := func(msg []byte, recvFirst bool) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		k, a, b := hostPair()
		var got []byte
		recv := func() { b.Recv(len(msg), func(d []byte) { got = d }) }
		send := func() { a.Send(msg, nil) }
		if recvFirst {
			recv()
			send()
		} else {
			send()
			// Let the first byte land in the buffer before the receiver
			// turns up.
			k.After(sim.Time(3*DataBits*BitNs), recv)
		}
		k.Run()
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestZeroLengthTransfer completes immediately.
func TestZeroLengthTransfer(t *testing.T) {
	k, a, b := hostPair()
	sent, recvd := false, false
	a.Send(nil, func() { sent = true })
	b.Recv(0, func([]byte) { recvd = true })
	k.Run()
	if !sent || !recvd {
		t.Error("zero-length transfers should complete")
	}
}
