// Package link implements the inter-transputer link protocol of "The
// Transputer" (Whitby-Strevens, ISCA 1985), section 2.3 and figure 1.
//
// A link between two transputers provides a pair of occam channels, one
// in each direction, carried on two one-directional signal lines.  Each
// data byte is transmitted as a start bit, a one bit, eight data bits
// and a stop bit (11 bit times); an acknowledge is a start bit followed
// by a zero bit (2 bit times).  Data bytes and acknowledges are
// multiplexed down each signal line.
//
// An acknowledge is transmitted as soon as reception of a data byte
// starts — if there is a process waiting for it and there is room to
// buffer another — so transmission may be continuous.  A single byte
// buffer in each receiver ensures no information is lost: when no
// process is waiting, the byte is buffered and the acknowledge is
// withheld until a process inputs it.
package link

import (
	"transputer/internal/core"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Protocol constants (paper, 2.3/2.3.1): the standard transmission rate
// is 10 MHz, about 1 Mbyte/s in each direction of each link.
const (
	// BitNs is one bit time at the standard 10 Mbit/s rate.
	BitNs = 100
	// DataBits is the length of a data packet: start bit, one bit,
	// eight data bits, stop bit.
	DataBits = 11
	// AckBits is the length of an acknowledge packet: start bit, zero
	// bit.
	AckBits = 2
)

// WireStats counts traffic on one signal line.
type WireStats struct {
	DataBytes uint64
	Acks      uint64
	BusyNs    int64
}

// packet is one frame queued on a wire.
type packet struct {
	bits    int
	isAck   bool
	onStart func()
	onEnd   func()
}

// wire is a one-directional signal line: a serializer with priority for
// acknowledges (so a long data stream in one direction cannot starve
// the acknowledges of the reverse channel).
type wire struct {
	k     *sim.Kernel
	bitNs int64
	busy  bool
	acks  []packet // pending acknowledges (sent first)
	data  []packet // pending data bytes
	stats WireStats

	// owner and link attribute this wire's traffic to the engine whose
	// outgoing signal line it is, for probe events.  Wires driven by a
	// host end have no owner and publish nothing.
	owner *Engine
	link  int
}

func (w *wire) send(p packet) {
	if p.isAck {
		w.acks = append(w.acks, p)
	} else {
		w.data = append(w.data, p)
	}
	if !w.busy {
		w.transmitNext()
	}
}

func (w *wire) transmitNext() {
	var p packet
	switch {
	case len(w.acks) > 0:
		p = w.acks[0]
		w.acks = w.acks[1:]
	case len(w.data) > 0:
		p = w.data[0]
		w.data = w.data[1:]
	default:
		w.busy = false
		return
	}
	w.busy = true
	dur := int64(p.bits) * w.bitNs
	w.stats.BusyNs += dur
	if p.isAck {
		w.stats.Acks++
	} else {
		w.stats.DataBytes++
	}
	if w.owner != nil && w.owner.bus != nil {
		w.owner.emit(probe.Event{Kind: probe.WirePacket, Link: w.link,
			Ack: p.isAck, Bytes: boolByte(!p.isAck), Dur: sim.Time(dur)})
	}
	if p.onStart != nil {
		p.onStart()
	}
	w.k.After(sim.Time(dur), func() {
		if p.onEnd != nil {
			p.onEnd()
		}
		w.transmitNext()
	})
}

// outHalf is the sending side of one channel of a link.  The data
// source is a per-transfer closure so both transputer memory and host
// devices can feed it.
type outHalf struct {
	wire *wire // this end's outgoing signal line for the link
	peer *inHalf

	// eng and link attribute ack-stall probe events; nil for host ends.
	eng  *Engine
	link int

	active  bool
	read    func(i int) byte
	count   int
	sent    int
	done    func()
	txEnded bool // current byte finished transmitting
	acked   bool // current byte acknowledged
	// txEndAt records when the current byte finished transmitting, for
	// measuring the wait for its acknowledge.
	txEndAt sim.Time
}

// inHalf is the receiving side of one channel of a link.
type inHalf struct {
	ackWire *wire    // this end's outgoing line, used for acknowledges
	peerOut *outHalf // the sender our acknowledges go to

	active   bool
	write    func(i int, b byte)
	count    int
	received int
	done     func()

	buffer      byte
	bufferValid bool
	armed       func() // alternative-input readiness callback

	// ackSentAtStart records whether the acknowledge for the byte
	// currently in flight was issued at reception start.
	ackSentAtStart bool

	// stopAndWait suppresses the overlapped acknowledge: the ack is
	// only sent after the data byte has fully arrived.  Used by the
	// ablation benchmarks to quantify what figure 1's early
	// acknowledge buys.
	stopAndWait bool
}

// Engine implements core.External for one machine: four link output
// halves and four input halves.  Unconnected links never complete a
// transfer, exactly like real hardware with nothing wired to the pins.
type Engine struct {
	k    *sim.Kernel
	m    *core.Machine
	outs [core.NumLinks]*outHalf
	ins  [core.NumLinks]*inHalf
	bus  *probe.Bus
}

var _ core.External = (*Engine)(nil)

// NewEngine builds a link engine for a machine and attaches it.
func NewEngine(k *sim.Kernel, m *core.Machine) *Engine {
	e := &Engine{k: k, m: m}
	for i := range e.outs {
		e.outs[i] = &outHalf{eng: e, link: i}
		e.ins[i] = &inHalf{}
	}
	return e
}

// AttachProbe connects the engine's wires and senders to a probe bus.
func (e *Engine) AttachProbe(b *probe.Bus) { e.bus = b }

// emit stamps and publishes a probe event under the engine's machine.
// Callers must have checked e.bus != nil.
func (e *Engine) emit(ev probe.Event) {
	ev.Time = e.k.Now()
	ev.Node = e.m.Name()
	ev.Cycles = e.m.Stats().Cycles
	e.bus.Publish(ev)
}

func boolByte(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Connect wires link la of engine a to link lb of engine b with a pair
// of signal lines.
func Connect(a *Engine, la int, b *Engine, lb int) {
	ab := &wire{k: a.k, bitNs: BitNs, owner: a, link: la}
	ba := &wire{k: b.k, bitNs: BitNs, owner: b, link: lb}
	a.outs[la].wire = ab
	a.outs[la].peer = b.ins[lb]
	a.ins[la].ackWire = ab
	a.ins[la].peerOut = b.outs[lb]
	b.outs[lb].wire = ba
	b.outs[lb].peer = a.ins[la]
	b.ins[lb].ackWire = ba
	b.ins[lb].peerOut = a.outs[la]
}

// Connected reports whether link i has been wired.
func (e *Engine) Connected(i int) bool {
	return i >= 0 && i < core.NumLinks && e.outs[i].wire != nil
}

// WireStats returns the traffic counters of link i's outgoing line.
func (e *Engine) WireStats(i int) WireStats {
	if !e.Connected(i) {
		return WireStats{}
	}
	return e.outs[i].wire.stats
}

// BeginOutput starts transmitting count bytes from machine memory.
func (e *Engine) BeginOutput(link int, ptr uint64, count int, done func()) {
	o := e.outs[link]
	if o.active {
		// Two processes using one channel end is an occam program
		// error; mirror hardware by corrupting nothing and hanging.
		return
	}
	if count == 0 {
		done()
		return
	}
	m := e.m
	o.start(func(i int) byte { return m.ReadBytes(ptr+uint64(i), 1)[0] }, count, done)
}

func (o *outHalf) start(read func(i int) byte, count int, done func()) {
	o.active = true
	o.read = read
	o.count = count
	o.sent = 0
	o.done = done
	if o.wire == nil {
		return // unconnected: waits forever
	}
	o.sendByte()
}

func (o *outHalf) sendByte() {
	b := o.read(o.sent)
	o.txEnded = false
	o.acked = false
	in := o.peer
	o.wire.send(packet{
		bits:    DataBits,
		onStart: func() { in.dataStart() },
		onEnd: func() {
			in.dataArrive(b)
			o.txEnd()
		},
	})
}

func (o *outHalf) txEnd() {
	o.txEnded = true
	if !o.acked && o.eng != nil {
		o.txEndAt = o.eng.k.Now()
	}
	o.advance()
}

func (o *outHalf) ackArrived() {
	// An ack landing after the byte finished transmitting stalls the
	// sender for the difference (the overlapped acknowledge of figure 1
	// exists to make this zero in the streaming case).
	if o.txEnded && !o.acked && o.eng != nil && o.eng.bus != nil {
		if stall := o.eng.k.Now() - o.txEndAt; stall > 0 {
			o.eng.emit(probe.Event{Kind: probe.AckStall, Link: o.link,
				Dur: stall})
		}
	}
	o.acked = true
	o.advance()
}

// advance moves to the next byte once the current byte has both
// finished transmitting and been acknowledged.  "The sending process may
// proceed only after the acknowledge for the final byte of the message
// has been received."
func (o *outHalf) advance() {
	if !o.active || !o.txEnded || !o.acked {
		return
	}
	o.sent++
	if o.sent == o.count {
		o.active = false
		done := o.done
		o.done = nil
		if done != nil {
			done()
		}
		return
	}
	o.sendByte()
}

// BeginInput starts receiving count bytes into machine memory.
func (e *Engine) BeginInput(link int, ptr uint64, count int, done func()) {
	in := e.ins[link]
	if in.active {
		return
	}
	if count == 0 {
		done()
		return
	}
	m := e.m
	in.start(func(i int, b byte) { m.WriteBytes(ptr+uint64(i), []byte{b}) }, count, done)
}

func (in *inHalf) start(write func(i int, b byte), count int, done func()) {
	in.active = true
	in.write = write
	in.count = count
	in.received = 0
	in.done = done
	if in.bufferValid {
		// A byte arrived before the process was ready; consume it and
		// release the withheld acknowledge.
		b := in.buffer
		in.bufferValid = false
		in.store(b)
		in.sendAck()
	}
}

// dataStart fires when a data packet begins arriving: the acknowledge
// goes out immediately if a process is waiting, making streaming
// continuous.
func (in *inHalf) dataStart() {
	in.ackSentAtStart = false
	if in.active && !in.stopAndWait {
		in.sendAck()
		in.ackSentAtStart = true
	}
}

// dataArrive fires when the data packet completes.
func (in *inHalf) dataArrive(b byte) {
	if in.active {
		in.store(b)
		if !in.ackSentAtStart {
			// The process turned up while the byte was in flight.
			in.sendAck()
		}
		return
	}
	// No process waiting: hold the byte in the single-byte buffer; the
	// acknowledge is withheld until a process inputs it.
	in.buffer = b
	in.bufferValid = true
	if in.armed != nil {
		ready := in.armed
		in.armed = nil
		ready()
	}
}

func (in *inHalf) store(b byte) {
	in.write(in.received, b)
	in.received++
	if in.received == in.count {
		in.active = false
		done := in.done
		in.done = nil
		if done != nil {
			done()
		}
	}
}

func (in *inHalf) sendAck() {
	out := in.peerOut
	in.ackWire.send(packet{
		bits:  AckBits,
		isAck: true,
		onEnd: func() { out.ackArrived() },
	})
}

// SetStopAndWait switches this engine's receivers between the paper's
// overlapped acknowledge (false, the default) and a plain
// stop-and-wait handshake (true).
func (e *Engine) SetStopAndWait(v bool) {
	for _, in := range e.ins {
		in.stopAndWait = v
	}
}

// EnableInput arms alternative-input readiness signalling.
func (e *Engine) EnableInput(link int, ready func()) bool {
	in := e.ins[link]
	if in.bufferValid {
		return true
	}
	in.armed = ready
	return false
}

// DisableInput disarms signalling and reports data availability.
func (e *Engine) DisableInput(link int) bool {
	in := e.ins[link]
	in.armed = nil
	return in.bufferValid
}
