// Package link implements the inter-transputer link protocol of "The
// Transputer" (Whitby-Strevens, ISCA 1985), section 2.3 and figure 1.
//
// A link between two transputers provides a pair of occam channels, one
// in each direction, carried on two one-directional signal lines.  Each
// data byte is transmitted as a start bit, a one bit, eight data bits
// and a stop bit (11 bit times); an acknowledge is a start bit followed
// by a zero bit (2 bit times).  Data bytes and acknowledges are
// multiplexed down each signal line.
//
// An acknowledge is transmitted as soon as reception of a data byte
// starts — if there is a process waiting for it and there is room to
// buffer another — so transmission may be continuous.  A single byte
// buffer in each receiver ensures no information is lost: when no
// process is waiting, the byte is buffered and the acknowledge is
// withheld until a process inputs it.
//
// The package is organised as an explicit protocol stack, one layer per
// file (see stack.go for the seams):
//
//	wire.go      wire scheduler: packet timing, ack priority, fault hooks
//	xfer.go      byte transfer: the paper's data/acknowledge protocol
//	reliable.go  reliability: CRC-8 trailer, sequence bit, NAK, retransmit
//	heartbeat.go liveness: beats on idle wires, per-link verdicts
//	stream.go    stream API: raw byte streams for the routing layer
//	vchan.go     virtual channels: N logical channels per physical wire
//	engine.go    the Engine tying the layers to a machine's four links
package link

// Protocol constants (paper, 2.3/2.3.1): the standard transmission rate
// is 10 MHz, about 1 Mbyte/s in each direction of each link.
const (
	// BitNs is one bit time at the standard 10 Mbit/s rate.
	BitNs = 100
	// DataBits is the length of a data packet: start bit, one bit,
	// eight data bits, stop bit.
	DataBits = 11
	// AckBits is the length of an acknowledge packet: start bit, zero
	// bit.
	AckBits = 2
)

// Error-detecting mode packet lengths (see reliable.go).  The mode is
// opt-in; the paper-faithful frames above remain the default.
const (
	// RelDataBits is an error-detecting data packet: the 11-bit frame
	// plus a sequence bit and an 8-bit CRC trailer.
	RelDataBits = DataBits + 1 + 8
	// RelAckBits is an error-detecting acknowledge: the 2-bit frame plus
	// the sequence bit being acknowledged.
	RelAckBits = AckBits + 1
	// NakBits is a negative acknowledge: start bit, zero bit, one bit —
	// only distinguishable from an acknowledge in error-detecting mode.
	NakBits = 3
	// BeatBits is a liveness probe (see heartbeat.go): start bit, two
	// one bits, stop bit, sent on idle wires so a severed link or a
	// dead peer is detected in bounded time instead of only when
	// traffic stalls.
	BeatBits = 4
)

// WireStats counts traffic on one signal line.  DataBytes is goodput:
// first transmissions only.  Retransmits counts data packets resent by
// the error-detecting mode (timeout or NAK), so DataBytes+Retransmits
// is the total data-packet count the wire carried.
type WireStats struct {
	DataBytes   uint64
	Retransmits uint64
	Acks        uint64
	Naks        uint64
	Beats       uint64
	BusyNs      int64
}
