// Package link implements the inter-transputer link protocol of "The
// Transputer" (Whitby-Strevens, ISCA 1985), section 2.3 and figure 1.
//
// A link between two transputers provides a pair of occam channels, one
// in each direction, carried on two one-directional signal lines.  Each
// data byte is transmitted as a start bit, a one bit, eight data bits
// and a stop bit (11 bit times); an acknowledge is a start bit followed
// by a zero bit (2 bit times).  Data bytes and acknowledges are
// multiplexed down each signal line.
//
// An acknowledge is transmitted as soon as reception of a data byte
// starts — if there is a process waiting for it and there is room to
// buffer another — so transmission may be continuous.  A single byte
// buffer in each receiver ensures no information is lost: when no
// process is waiting, the byte is buffered and the acknowledge is
// withheld until a process inputs it.
package link

import (
	"transputer/internal/core"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Protocol constants (paper, 2.3/2.3.1): the standard transmission rate
// is 10 MHz, about 1 Mbyte/s in each direction of each link.
const (
	// BitNs is one bit time at the standard 10 Mbit/s rate.
	BitNs = 100
	// DataBits is the length of a data packet: start bit, one bit,
	// eight data bits, stop bit.
	DataBits = 11
	// AckBits is the length of an acknowledge packet: start bit, zero
	// bit.
	AckBits = 2
)

// Error-detecting mode packet lengths (see reliable.go).  The mode is
// opt-in; the paper-faithful frames above remain the default.
const (
	// RelDataBits is an error-detecting data packet: the 11-bit frame
	// plus a sequence bit and an 8-bit CRC trailer.
	RelDataBits = DataBits + 1 + 8
	// RelAckBits is an error-detecting acknowledge: the 2-bit frame plus
	// the sequence bit being acknowledged.
	RelAckBits = AckBits + 1
	// NakBits is a negative acknowledge: start bit, zero bit, one bit —
	// only distinguishable from an acknowledge in error-detecting mode.
	NakBits = 3
	// BeatBits is a liveness probe (see heartbeat.go): start bit, two
	// one bits, stop bit, sent on idle wires so a severed link or a
	// dead peer is detected in bounded time instead of only when
	// traffic stalls.
	BeatBits = 4
)

// WireStats counts traffic on one signal line.
type WireStats struct {
	DataBytes uint64
	Acks      uint64
	Naks      uint64
	Beats     uint64
	BusyNs    int64
}

// packetKind distinguishes the frames multiplexed down a signal line.
type packetKind uint8

const (
	pktData packetKind = iota
	pktAck
	pktNak
	pktBeat
)

// packet is one frame queued on a wire.  Sender-side callbacks
// (onTxEnd) always fire — transmitting hardware cannot tell its bits
// were lost — while receiver-side callbacks (deliverStart, deliver) are
// skipped when a fault drops the packet or the wire is severed.
type packet struct {
	kind    packetKind
	bits    int
	payload byte   // data byte (pktData)
	seq     byte   // sequence bit (error-detecting mode)
	crc     byte   // check trailer (error-detecting mode)
	flow    uint64 // probe flow identity carried across the wire; 0 untraced

	onTxEnd      func()
	deliverStart func()
	deliver      func(p packet)
}

// FaultAction describes what an injected fault does to one packet.
// The zero value leaves the packet untouched.
type FaultAction struct {
	// Drop loses the packet in transit: the sender still clocks the bits
	// out, but the receiver never sees them.
	Drop bool
	// Corrupt is an XOR mask applied to a data packet's payload.
	Corrupt byte
	// Delay holds the wire for extra time before the bits go out.
	Delay sim.Time
}

// FaultHook is consulted once per packet as it starts transmission on a
// wire; isCtl reports a control packet (acknowledge or NAK) rather than
// a data byte.  Hooks are installed by the fault-injection subsystem
// and must be deterministic for a given call sequence.
type FaultHook func(isCtl bool) FaultAction

// rxGate is the receiver-side cut detector for a wire that crosses
// shards: it is owned (read and written) by the receiving shard only,
// so a sever can kill in-flight packets without touching sender state.
type rxGate struct {
	severed bool
}

// wire is a one-directional signal line: a serializer with priority for
// acknowledges (so a long data stream in one direction cannot starve
// the acknowledges of the reverse channel).  A wire lives entirely in
// the sending engine's clock domain; when the receiver is on another
// shard, deliveries travel through post with prop latency instead of
// running synchronously.
type wire struct {
	k     sim.Clock
	bitNs int64
	busy  bool
	acks  []packet // pending acknowledges and naks (sent first)
	data  []packet // pending data bytes
	stats WireStats

	// post and prop are set when the receiving end lives on another
	// shard: receiver-side callbacks are posted through the coordinator
	// mailbox with prop propagation delay (the coordinator's
	// conservative lookahead).  rx is then the receiver-owned cut gate.
	post func(at sim.Time, fn func())
	prop sim.Time
	rx   *rxGate

	// hook, when non-nil, injects faults into this wire's traffic.
	hook FaultHook
	// severed marks a cut wire: nothing queued or in flight is ever
	// delivered after the cut.
	severed bool

	// owner and link attribute this wire's traffic to the engine whose
	// outgoing signal line it is, for probe events.  Wires driven by a
	// host end have no owner and publish nothing.
	owner *Engine
	link  int
}

func (w *wire) send(p packet) {
	if p.kind != pktData {
		w.acks = append(w.acks, p)
	} else {
		w.data = append(w.data, p)
	}
	if !w.busy {
		w.transmitNext()
	}
}

// emit publishes a probe event attributed to this wire's owning engine,
// if any.
func (w *wire) emit(ev probe.Event) {
	if w.owner != nil && w.owner.bus != nil {
		ev.Link = w.link
		w.owner.emit(ev)
	}
}

func (w *wire) transmitNext() {
	var p packet
	switch {
	case len(w.acks) > 0:
		p = w.acks[0]
		w.acks = w.acks[1:]
	case len(w.data) > 0:
		p = w.data[0]
		w.data = w.data[1:]
	default:
		w.busy = false
		return
	}
	w.busy = true
	isCtl := p.kind != pktData
	var act FaultAction
	if w.hook != nil {
		act = w.hook(isCtl)
	}
	dur := int64(p.bits)*w.bitNs + int64(act.Delay)
	w.stats.BusyNs += dur
	switch p.kind {
	case pktAck:
		w.stats.Acks++
	case pktNak:
		w.stats.Naks++
	case pktBeat:
		w.stats.Beats++
	default:
		w.stats.DataBytes++
	}
	w.emit(probe.Event{Kind: probe.WirePacket,
		Ack: isCtl, Bytes: boolByte(!isCtl), Dur: sim.Time(dur), Flow: p.flow})
	if act.Delay > 0 {
		w.emit(probe.Event{Kind: probe.FaultDelay, Ack: isCtl, Dur: act.Delay, Flow: p.flow})
	}
	if act.Corrupt != 0 && p.kind == pktData {
		p.payload ^= act.Corrupt
		w.emit(probe.Event{Kind: probe.FaultCorrupt, Arg: int64(act.Corrupt), Flow: p.flow})
	}
	dropped := act.Drop || w.severed
	if act.Drop && !w.severed {
		w.emit(probe.Event{Kind: probe.FaultDrop, Ack: isCtl, Flow: p.flow})
	}
	if w.post != nil {
		// Cross-shard receiver: both callbacks travel through the
		// mailbox, gated on the receiver-side cut flag (a cable cut is
		// observed at the far end one propagation later; anything
		// arriving after that is lost).  Packet completion keeps its
		// exact wire timing — every frame lasts at least an
		// acknowledge (2 bit times), which is precisely the
		// coordinator's lookahead, so start+dur is always a legal
		// cross-shard instant.  Only the reception-start signal (which
		// fires the overlapped acknowledge) is deferred by the
		// propagation delay.  Sender-side bookkeeping stays local.
		start := w.k.Now()
		rx := w.rx
		if !dropped {
			if ds := p.deliverStart; ds != nil {
				w.post(start+w.prop, func() {
					if !rx.severed {
						ds()
					}
				})
			}
			if dv := p.deliver; dv != nil {
				pp := p
				w.post(start+sim.Time(dur), func() {
					if !rx.severed {
						dv(pp)
					}
				})
			}
		}
		w.k.After(sim.Time(dur), func() {
			if p.onTxEnd != nil {
				p.onTxEnd()
			}
			w.transmitNext()
		})
		return
	}
	if !dropped && p.deliverStart != nil {
		p.deliverStart()
	}
	w.k.After(sim.Time(dur), func() {
		// A packet in flight when the wire is cut is lost too.
		if !dropped && !w.severed && p.deliver != nil {
			p.deliver(p)
		}
		if p.onTxEnd != nil {
			p.onTxEnd()
		}
		w.transmitNext()
	})
}

// outHalf is the sending side of one channel of a link.  The data
// source is a per-transfer closure so both transputer memory and host
// devices can feed it.
type outHalf struct {
	wire *wire // this end's outgoing signal line for the link
	peer *inHalf

	// eng and link attribute ack-stall probe events; nil for host ends.
	eng  *Engine
	link int

	active  bool
	read    func(i int) byte
	count   int
	sent    int
	done    func()
	txEnded bool // current byte finished transmitting
	acked   bool // current byte acknowledged
	// stalledAtStart marks a transfer that start() could not begin
	// because the link had been declared down: no byte of it is on the
	// wire, so recovery must send the first byte rather than retransmit.
	stalledAtStart bool
	// txEndAt records when the current byte finished transmitting, for
	// measuring the wait for its acknowledge.
	txEndAt sim.Time

	// flow is the probe flow identity of the transfer in progress,
	// handed over by the machine (core.FlowExternal); every packet of
	// the transfer carries it.  Zero when untraced.
	flow uint64

	// rel is the error-detecting-mode sender state (see reliable.go).
	rel relSender
}

// inHalf is the receiving side of one channel of a link.
type inHalf struct {
	ackWire *wire    // this end's outgoing line, used for acknowledges
	peerOut *outHalf // the sender our acknowledges go to

	active   bool
	write    func(i int, b byte)
	count    int
	received int
	done     func()

	buffer      byte
	bufferValid bool
	armed       func() // alternative-input readiness callback

	// ackSentAtStart records whether the acknowledge for the byte
	// currently in flight was issued at reception start.
	ackSentAtStart bool

	// stopAndWait suppresses the overlapped acknowledge: the ack is
	// only sent after the data byte has fully arrived.  Used by the
	// ablation benchmarks to quantify what figure 1's early
	// acknowledge buys.
	stopAndWait bool

	// eng and link attribute NAK probe events; nil for host ends.
	eng  *Engine
	link int

	// flow is the probe flow identity carried by the packets arriving on
	// this half — acknowledges and NAKs echo it back so the retry tail
	// stays on the flow; flowSeen is the last flow for which a
	// FlowArrive event was published (once per flow, on its first
	// packet).
	flow     uint64
	flowSeen uint64

	// rel is the error-detecting-mode receiver state (see reliable.go).
	rel relReceiver
}

// Engine implements core.External for one machine: four link output
// halves and four input halves.  Unconnected links never complete a
// transfer, exactly like real hardware with nothing wired to the pins.
type Engine struct {
	k    sim.Clock
	m    *core.Machine
	outs [core.NumLinks]*outHalf
	ins  [core.NumLinks]*inHalf
	bus  *probe.Bus

	// hb is the liveness monitor state (see heartbeat.go); onBeat is
	// told every verdict change.
	hb     heartbeat
	onBeat func(link int, up bool)

	// onSever, when set, is told the first time each link of this engine
	// is cut; the network layer uses it to retire the pair from the
	// coordinator's wiring matrix so severed neighbourhoods stop
	// constraining each other's windows.
	onSever func(link int)
}

var (
	_ core.External     = (*Engine)(nil)
	_ core.FlowExternal = (*Engine)(nil)
)

// NewEngine builds a link engine for a machine and attaches it.  The
// clock is the machine's own scheduling domain — a standalone kernel
// or a coordinator shard.
func NewEngine(k sim.Clock, m *core.Machine) *Engine {
	e := &Engine{k: k, m: m}
	for i := range e.outs {
		e.outs[i] = &outHalf{eng: e, link: i}
		e.ins[i] = &inHalf{eng: e, link: i}
	}
	return e
}

// AttachProbe connects the engine's wires and senders to a probe bus.
func (e *Engine) AttachProbe(b *probe.Bus) { e.bus = b }

// OnSever registers the link-cut callback (see Engine.onSever).
func (e *Engine) OnSever(fn func(link int)) { e.onSever = fn }

// HandoffFlow implements core.FlowExternal: the machine tells the
// engine which flow the transfer about to begin on a link belongs to.
func (e *Engine) HandoffFlow(link int, out bool, flow uint64) {
	if link < 0 || link >= core.NumLinks {
		return
	}
	if out {
		e.outs[link].flow = flow
	} else {
		e.ins[link].flow = flow
	}
}

// TransferFlow implements core.FlowExternal: the flow currently
// associated with a link direction.  For inputs this is the flow
// carried by arrived packets, zero until the first one lands.
func (e *Engine) TransferFlow(link int, out bool) uint64 {
	if link < 0 || link >= core.NumLinks {
		return 0
	}
	if out {
		return e.outs[link].flow
	}
	return e.ins[link].flow
}

// emit stamps and publishes a probe event under the engine's machine.
// Callers must have checked e.bus != nil.
func (e *Engine) emit(ev probe.Event) {
	ev.Time = e.k.Now()
	ev.Node = e.m.Name()
	ev.Cycles = e.m.Stats().Cycles
	e.bus.Publish(ev)
}

func boolByte(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Connect wires link la of engine a to link lb of engine b with a pair
// of signal lines.  Engines on the same clock domain get the
// synchronous fast path; engines on different shards of one
// coordinator get mailbox delivery with the coordinator's lookahead as
// the wire's propagation delay.
func Connect(a *Engine, la int, b *Engine, lb int) {
	ab := &wire{k: a.k, bitNs: BitNs, owner: a, link: la}
	ba := &wire{k: b.k, bitNs: BitNs, owner: b, link: lb}
	if post, prop := sim.CrossPath(a.k, b.k); post != nil {
		ab.post, ab.prop, ab.rx = post, prop, &rxGate{}
	}
	if post, prop := sim.CrossPath(b.k, a.k); post != nil {
		ba.post, ba.prop, ba.rx = post, prop, &rxGate{}
	}
	a.outs[la].wire = ab
	a.outs[la].peer = b.ins[lb]
	a.ins[la].ackWire = ab
	a.ins[la].peerOut = b.outs[lb]
	b.outs[lb].wire = ba
	b.outs[lb].peer = a.ins[la]
	b.ins[lb].ackWire = ba
	b.ins[lb].peerOut = a.outs[la]
}

// Connected reports whether link i has been wired.
func (e *Engine) Connected(i int) bool {
	return i >= 0 && i < core.NumLinks && e.outs[i].wire != nil
}

// WireStats returns the traffic counters of link i's outgoing line.
func (e *Engine) WireStats(i int) WireStats {
	if !e.Connected(i) {
		return WireStats{}
	}
	return e.outs[i].wire.stats
}

// BeginOutput starts transmitting count bytes from machine memory.
func (e *Engine) BeginOutput(link int, ptr uint64, count int, done func()) {
	o := e.outs[link]
	if o.active {
		// Two processes using one channel end is an occam program
		// error; mirror hardware by corrupting nothing and hanging.
		return
	}
	if count == 0 {
		done()
		return
	}
	m := e.m
	o.start(func(i int) byte { return m.ReadBytes(ptr+uint64(i), 1)[0] }, count, done)
}

func (o *outHalf) start(read func(i int) byte, count int, done func()) {
	o.active = true
	o.read = read
	o.count = count
	o.sent = 0
	o.done = done
	o.stalledAtStart = false
	if o.wire == nil || o.rel.failed {
		// Unconnected or failed link: waits forever (until recovery).
		o.stalledAtStart = o.rel.failed
		return
	}
	o.sendByte()
}

func (o *outHalf) sendByte() {
	b := o.read(o.sent)
	o.txEnded = false
	o.acked = false
	if o.rel.on {
		o.sendReliable(b)
		return
	}
	in := o.peer
	fl := o.flow
	o.wire.send(packet{
		kind:         pktData,
		bits:         DataBits,
		payload:      b,
		flow:         fl,
		deliverStart: func() { in.dataStart(fl) },
		deliver:      func(p packet) { in.dataArrive(p) },
		onTxEnd:      func() { o.txEnd() },
	})
}

func (o *outHalf) txEnd() {
	o.txEnded = true
	if !o.acked && o.eng != nil {
		o.txEndAt = o.eng.k.Now()
	}
	o.advance()
}

func (o *outHalf) ackArrived() {
	o.heard()
	// An ack landing after the byte finished transmitting stalls the
	// sender for the difference (the overlapped acknowledge of figure 1
	// exists to make this zero in the streaming case).
	if o.txEnded && !o.acked && o.eng != nil && o.eng.bus != nil {
		if stall := o.eng.k.Now() - o.txEndAt; stall > 0 {
			o.eng.emit(probe.Event{Kind: probe.AckStall, Link: o.link,
				Dur: stall, Flow: o.flow})
		}
	}
	o.acked = true
	o.advance()
}

// advance moves to the next byte once the current byte has both
// finished transmitting and been acknowledged.  "The sending process may
// proceed only after the acknowledge for the final byte of the message
// has been received."
func (o *outHalf) advance() {
	if !o.active || !o.txEnded || !o.acked {
		return
	}
	o.sent++
	if o.sent == o.count {
		o.active = false
		done := o.done
		o.done = nil
		if done != nil {
			done()
		}
		return
	}
	o.sendByte()
}

// BeginInput starts receiving count bytes into machine memory.
func (e *Engine) BeginInput(link int, ptr uint64, count int, done func()) {
	in := e.ins[link]
	if in.active {
		return
	}
	if count == 0 {
		done()
		return
	}
	m := e.m
	in.start(func(i int, b byte) { m.WriteBytes(ptr+uint64(i), []byte{b}) }, count, done)
}

func (in *inHalf) start(write func(i int, b byte), count int, done func()) {
	in.active = true
	in.write = write
	in.count = count
	in.received = 0
	in.done = done
	if in.bufferValid {
		// A byte arrived before the process was ready; consume it and
		// release the withheld acknowledge.  (In error-detecting mode
		// the acknowledge went out when the byte was accepted into the
		// buffer, so none is owed here.)
		b := in.buffer
		in.bufferValid = false
		in.store(b)
		if !in.rel.on {
			in.sendAck()
		}
	}
}

// dataStart fires when a data packet begins arriving: the acknowledge
// goes out immediately if a process is waiting, making streaming
// continuous.  The flow is noted before the overlapped acknowledge is
// built so the ack already carries it.
func (in *inHalf) dataStart(flow uint64) {
	in.heard()
	in.noteFlow(flow)
	in.ackSentAtStart = false
	if in.active && !in.stopAndWait {
		in.sendAck()
		in.ackSentAtStart = true
	}
}

// noteFlow records the flow arriving on this half and publishes a
// FlowArrive event the first time each flow's packets reach this node —
// the instant the flow crosses the wire and joins this node's timeline.
func (in *inHalf) noteFlow(flow uint64) {
	if flow == 0 {
		return
	}
	in.flow = flow
	if flow == in.flowSeen || in.eng == nil || in.eng.bus == nil {
		return
	}
	in.flowSeen = flow
	// Stamped with time and node but not the machine cycle counter: the
	// receiving CPU runs asynchronously to its link hardware, and its
	// cycle count at this instant depends on simulator batching (the
	// block cache), not on architecture.
	in.eng.bus.Publish(probe.Event{Kind: probe.FlowArrive, Link: in.link, Flow: flow,
		Time: in.eng.k.Now(), Node: in.eng.m.Name()})
}

// dataArrive fires when the data packet completes.
func (in *inHalf) dataArrive(p packet) {
	in.heard()
	in.noteFlow(p.flow)
	b := p.payload
	if in.active {
		in.store(b)
		if !in.ackSentAtStart {
			// The process turned up while the byte was in flight.
			in.sendAck()
		}
		return
	}
	// No process waiting: hold the byte in the single-byte buffer; the
	// acknowledge is withheld until a process inputs it.
	in.buffer = b
	in.bufferValid = true
	if in.armed != nil {
		ready := in.armed
		in.armed = nil
		ready()
	}
}

func (in *inHalf) store(b byte) {
	in.write(in.received, b)
	in.received++
	if in.received == in.count {
		in.active = false
		done := in.done
		in.done = nil
		if done != nil {
			done()
		}
	}
}

func (in *inHalf) sendAck() {
	out := in.peerOut
	in.ackWire.send(packet{
		kind:    pktAck,
		bits:    AckBits,
		flow:    in.flow,
		deliver: func(packet) { out.ackArrived() },
	})
}

// SetStopAndWait switches this engine's receivers between the paper's
// overlapped acknowledge (false, the default) and a plain
// stop-and-wait handshake (true).
func (e *Engine) SetStopAndWait(v bool) {
	for _, in := range e.ins {
		in.stopAndWait = v
	}
}

// SetReliable switches every half of this engine into error-detecting
// mode (CRC trailer, NAK, timeout retransmission with a bounded retry
// budget) or back to the paper protocol.  Both ends of every wired link
// must agree; set the mode before any traffic flows.  A zero timeout or
// retry count selects the defaults.
func (e *Engine) SetReliable(on bool, timeout sim.Time, maxRetries int) {
	if timeout <= 0 {
		timeout = DefaultRelTimeout
	}
	if maxRetries <= 0 {
		maxRetries = DefaultRelRetries
	}
	for i := range e.outs {
		e.outs[i].rel.on = on
		e.outs[i].rel.timeout = timeout
		e.outs[i].rel.maxRetries = maxRetries
		e.ins[i].rel.on = on
	}
}

// SetFaultHook installs (or with nil, removes) a fault-injection hook
// on link i's outgoing signal line.
func (e *Engine) SetFaultHook(i int, h FaultHook) {
	if e.Connected(i) {
		e.outs[i].wire.hook = h
	}
}

// SeverLink cuts both signal lines of link i at the current instant:
// nothing queued or in flight is delivered afterwards, exactly like a
// cable pulled mid-run.  When the link crosses shards, the cut is
// observed at the far end one propagation delay later: this end's
// outgoing wire and inbound gate die now, the peer's die at now+prop —
// a packet already in flight may still land before the cut reaches it.
func (e *Engine) SeverLink(i int) {
	if !e.Connected(i) {
		return
	}
	w := e.outs[i].wire
	if w.severed {
		// Already cut (e.g. a halt's SeverAll after a sever of the same
		// link, or both ends halting): the first cut killed both
		// directions.  Going through the motions again would post
		// across a coordinator wiring edge the first cut may have
		// retired, into a peer shard that has since drifted ahead.
		return
	}
	w.severed = true
	peer := e.ins[i].peerOut
	if w.post == nil {
		if peer != nil && peer.wire != nil {
			peer.wire.severed = true
		}
	} else {
		// Inbound traffic stops being accepted here immediately; the
		// peer's transmitter and its receive gate for our wire are cut
		// when the break propagates.
		if peer != nil && peer.wire != nil && peer.wire.rx != nil {
			peer.wire.rx.severed = true
		}
		pw := peer
		rx := w.rx
		w.post(w.k.Now()+w.prop, func() {
			if pw != nil && pw.wire != nil {
				pw.wire.severed = true
			}
			rx.severed = true
		})
	}
	if e.bus != nil {
		e.emit(probe.Event{Kind: probe.LinkSever, Link: i})
	}
	if e.onSever != nil {
		e.onSever(i)
	}
}

// SeverAll cuts every connected link of the engine; used when a fault
// campaign halts the whole node.
func (e *Engine) SeverAll() {
	for i := range e.outs {
		e.SeverLink(i)
	}
}

// LinkDown reports whether link i's sender exhausted its retry budget
// in error-detecting mode, and how many retries it spent.
func (e *Engine) LinkDown(i int) (down bool, retries int) {
	if i < 0 || i >= core.NumLinks {
		return false, 0
	}
	return e.outs[i].rel.failed, e.outs[i].rel.retries
}

// SendRaw transmits the given bytes down link l without involving the
// machine: the routing layer drives link engines directly, from the
// node's own shard.  The data is copied.  Returns false when the link
// is unwired or its sender is already busy; done fires when the final
// byte has been acknowledged.
func (e *Engine) SendRaw(l int, data []byte, done func()) bool {
	if l < 0 || l >= core.NumLinks || !e.Connected(l) {
		return false
	}
	o := e.outs[l]
	if o.active {
		return false
	}
	if len(data) == 0 {
		if done != nil {
			done()
		}
		return true
	}
	buf := append([]byte(nil), data...)
	o.start(func(i int) byte { return buf[i] }, len(buf), done)
	return true
}

// RecvRaw receives n bytes from link l without involving the machine,
// handing the filled buffer to done.  Returns false when the link is
// unwired or its receiver is already busy.
func (e *Engine) RecvRaw(l int, n int, done func([]byte)) bool {
	if l < 0 || l >= core.NumLinks || !e.Connected(l) {
		return false
	}
	in := e.ins[l]
	if in.active {
		return false
	}
	if n <= 0 {
		if done != nil {
			done(nil)
		}
		return true
	}
	buf := make([]byte, n)
	in.start(func(i int, b byte) { buf[i] = b }, n, func() {
		if done != nil {
			done(buf)
		}
	})
	return true
}

// ResyncLink aborts whatever transfer is in progress on link l in both
// directions and resets the error-detecting sequence state to its
// power-on values.  The routing layer performs this handshake on both
// ends when a link comes back after an outage, so the two halves agree
// on a fresh byte stream; bytes of the old stream are discarded.
// Transfer completion callbacks of the aborted transfers never fire.
func (e *Engine) ResyncLink(l int) {
	if l < 0 || l >= core.NumLinks {
		return
	}
	o := e.outs[l]
	o.cancelRetryTimer()
	o.active = false
	o.done = nil
	o.stalledAtStart = false
	o.rel.failed = false
	o.rel.retries = 0
	o.rel.seq = 0
	if o.wire != nil {
		// Queued frames belong to the abandoned stream.
		o.wire.data = nil
		o.wire.acks = nil
	}
	in := e.ins[l]
	in.active = false
	in.done = nil
	in.armed = nil
	in.bufferValid = false
	in.rel.expect = 0
}

// RecoverLink revives link l's sender after a freeze-restart outage
// without losing the byte in flight.  It only applies in
// error-detecting mode: the alternating sequence bit makes the
// retransmission exactly-once whether the outage swallowed the
// original byte or only its acknowledge.  Plain-mode transfers cannot
// be recovered safely (no sequence bit to dedup a blind resend) and
// stay stalled for the watchdog to report.
func (e *Engine) RecoverLink(l int) {
	if l < 0 || l >= core.NumLinks || !e.Connected(l) {
		return
	}
	o := e.outs[l]
	if !o.rel.on {
		return
	}
	o.rel.failed = false
	o.rel.retries = 0
	if !o.active {
		return
	}
	if o.stalledAtStart {
		// The transfer never began; send its first byte now.
		o.stalledAtStart = false
		o.sendByte()
		return
	}
	if !o.acked {
		o.cancelRetryTimer()
		o.sendReliable(o.rel.cur)
	}
}

// RestoreLink reconnects both signal lines of link i, reversing
// SeverLink with the same propagation discipline: this end's wire and
// inbound gate revive now, the peer's revive one propagation later.
// Only sound for links the network layer kept in the coordinator's
// wiring matrix across the cut (see the restart fault rules).
func (e *Engine) RestoreLink(i int) {
	if !e.Connected(i) {
		return
	}
	w := e.outs[i].wire
	w.severed = false
	peer := e.ins[i].peerOut
	if w.post == nil {
		if peer != nil && peer.wire != nil {
			peer.wire.severed = false
		}
		return
	}
	if peer != nil && peer.wire != nil && peer.wire.rx != nil {
		peer.wire.rx.severed = false
	}
	pw := peer
	rx := w.rx
	w.post(w.k.Now()+w.prop, func() {
		if pw != nil && pw.wire != nil {
			pw.wire.severed = false
		}
		rx.severed = false
	})
}

// EnableInput arms alternative-input readiness signalling.
func (e *Engine) EnableInput(link int, ready func()) bool {
	in := e.ins[link]
	if in.bufferValid {
		return true
	}
	in.armed = ready
	return false
}

// DisableInput disarms signalling and reports data availability.
func (e *Engine) DisableInput(link int) bool {
	in := e.ins[link]
	in.armed = nil
	return in.bufferValid
}
