// Stream API — raw byte streams over the transfer layer.
//
// The routing layer (internal/route) drives link engines directly,
// from the node's own shard, without involving the machine: SendRaw
// and RecvRaw move byte slices where BeginOutput/BeginInput move
// machine memory.  The resynchronisation and recovery entry points
// live here too: they are what the self-healing layer calls when a
// link comes back after an outage.
package link

import "transputer/internal/core"

// LinkDown reports whether link i's sender exhausted its retry budget
// in error-detecting mode, and how many retries it spent.
func (e *Engine) LinkDown(i int) (down bool, retries int) {
	if i < 0 || i >= core.NumLinks {
		return false, 0
	}
	return e.outs[i].rel.failed, e.outs[i].rel.retries
}

// SendRaw transmits the given bytes down link l without involving the
// machine.  The data is copied.  Returns false when the link is
// unwired or its sender is already busy; done fires when the final
// byte has been acknowledged.
func (e *Engine) SendRaw(l int, data []byte, done func()) bool {
	if l < 0 || l >= core.NumLinks || !e.Connected(l) || e.mux[l] != nil {
		return false
	}
	o := e.outs[l]
	if o.active {
		return false
	}
	if len(data) == 0 {
		if done != nil {
			done()
		}
		return true
	}
	buf := append([]byte(nil), data...)
	o.start(func(i int) byte { return buf[i] }, len(buf), done)
	return true
}

// RecvRaw receives n bytes from link l without involving the machine,
// handing the filled buffer to done.  Returns false when the link is
// unwired or its receiver is already busy.
func (e *Engine) RecvRaw(l int, n int, done func([]byte)) bool {
	if l < 0 || l >= core.NumLinks || !e.Connected(l) || e.mux[l] != nil {
		return false
	}
	in := e.ins[l]
	if in.active {
		return false
	}
	if n <= 0 {
		if done != nil {
			done(nil)
		}
		return true
	}
	buf := make([]byte, n)
	in.start(func(i int, b byte) { buf[i] = b }, n, func() {
		if done != nil {
			done(buf)
		}
	})
	return true
}

// ResyncLink aborts whatever transfer is in progress on link l in both
// directions and resets the error-detecting sequence state to its
// power-on values.  The routing layer performs this handshake on both
// ends when a link comes back after an outage, so the two halves agree
// on a fresh byte stream; bytes of the old stream are discarded.
// Transfer completion callbacks of the aborted transfers never fire.
// A virtual-channel multiplexer on the link is reset to its power-on
// state too: chunks and credit of the old stream belong to the old
// stream.
func (e *Engine) ResyncLink(l int) {
	if l < 0 || l >= core.NumLinks {
		return
	}
	o := e.outs[l]
	o.cancelRetryTimer()
	o.active = false
	o.done = nil
	o.stalledAtStart = false
	o.rel.failed = false
	o.rel.retries = 0
	o.rel.seq = 0
	if o.wire != nil {
		// Queued frames belong to the abandoned stream.
		o.wire.clearQueues()
	}
	in := e.ins[l]
	in.active = false
	in.done = nil
	in.armed = nil
	in.bufferValid = false
	in.rel.expect = 0
	if m := e.mux[l]; m != nil {
		m.resync()
	}
}

// RecoverLink revives link l's sender after a freeze-restart outage
// without losing the byte in flight.  It only applies in
// error-detecting mode: the alternating sequence bit makes the
// retransmission exactly-once whether the outage swallowed the
// original byte or only its acknowledge.  Plain-mode transfers cannot
// be recovered safely (no sequence bit to dedup a blind resend) and
// stay stalled for the watchdog to report.
func (e *Engine) RecoverLink(l int) {
	if l < 0 || l >= core.NumLinks || !e.Connected(l) {
		return
	}
	o := e.outs[l]
	if !o.rel.on {
		return
	}
	o.rel.failed = false
	o.rel.retries = 0
	if !o.active {
		return
	}
	if o.stalledAtStart {
		// The transfer never began; send its first byte now.
		o.stalledAtStart = false
		o.sendByte()
		return
	}
	if !o.acked {
		o.cancelRetryTimer()
		o.sendReliable(o.rel.cur, true)
	}
}
