// Virtual-channel multiplexing — many logical channels per wire.
//
// The paper's links carry exactly one occam channel in each direction,
// so every extra logical conversation between two nodes costs a
// physical wire.  This layer multiplexes N logical channels (virtual
// channels, "vchans") onto one physical link, the direction the
// transputer's successors took: messages are cut into small chunks,
// each prefixed with a two-byte unit header, and the chunks of
// different vchans interleave on the wire.
//
// Framing.  Every unit on the byte stream is a two-byte header
// followed by an optional payload:
//
//	data chunk:   [vc, n, payload×n]   vc in 0..N-1, n in 1..maxChunk
//	credit frame: [0x80|vc, n]         grants the sender n more bytes
//
// Fairness.  A round-robin cursor walks the vchans; each eligible
// vchan (message pending, credit available) sends at most one chunk
// per turn, so a long message cannot monopolise the wire.  Credit
// frames for the reverse direction are sent ahead of data — they are
// tiny and keep the peer's senders unblocked.
//
// Flow control.  Each sender starts with VCWindow bytes of credit per
// vchan and spends it as chunks go out; the receiver holds undelivered
// bytes in a per-vchan staging buffer and grants credit back only as a
// consumer drains them.  Staging occupancy is therefore bounded by the
// window, and a vchan whose consumer stalls blocks only itself — the
// other vchans keep streaming.
//
// The multiplexer sits on the stream layer's half pair: chunks ride
// the ordinary data/acknowledge protocol (and the error-detecting mode
// when enabled), one unit in flight at a time, so everything below the
// seam — wire timing, reliability, heartbeats, fault injection — works
// unchanged.  Both ends of a link must enable the same vchan count
// before any traffic flows.
package link

import (
	"transputer/internal/core"
	"transputer/internal/probe"
)

const (
	// MaxVChans bounds the vchan count of one link; the unit header
	// spends 7 bits on the vchan id but 32 is plenty and keeps the
	// fairness scan cheap.
	MaxVChans = 32
	// maxChunk is the largest data-chunk payload: small enough that
	// interleaving is fine-grained, large enough that the two-byte
	// header overhead stays modest.
	maxChunk = 16
	// VCWindow is the per-vchan initial credit, and so the bound on
	// the receiver's per-vchan staging buffer.
	VCWindow = 64
	// creditFlag marks a unit header as a credit frame.
	creditFlag = 0x80
)

// MuxStats counts one direction of a link's multiplexer activity.
type MuxStats struct {
	// Chunks and ChunkBytes count data chunks sent and their payload.
	Chunks     uint64
	ChunkBytes uint64
	// Credits counts credit frames sent.
	Credits uint64
}

// vcOut is the sending side of one virtual channel.
type vcOut struct {
	active bool
	buf    []byte
	queued int // bytes handed to the wire (chunked out)
	acked  int // bytes whose chunk completed (final byte acknowledged)
	done   func()
	credit int
	flow   uint64 // probe flow identity of the message in progress
}

// vcIn is the receiving side of one virtual channel.
type vcIn struct {
	active  bool
	buf     []byte
	got     int
	done    func([]byte)
	armed   func() // alternative-input readiness callback
	pending []byte // arrived, not yet consumed (bounded by VCWindow)
	flow    uint64 // flow carried by the last chunk delivered here
}

// Mux multiplexes N virtual channels over one direction pair of a
// physical link.  It owns the link's halves: while a mux is enabled,
// plain transfers and raw streams on the link are refused.
type Mux struct {
	e    *Engine
	link int
	n    int

	out []vcOut
	in  []vcIn

	rr     int   // round-robin cursor for the next data chunk
	owed   []int // per-vchan credit not yet granted back
	grants []int // vchans owed a credit frame, in consumption order
	txBusy bool  // a unit is on the wire

	hdr   [2]byte // unit header being received
	stats MuxStats
}

// EnableVChans multiplexes n virtual channels over link l, claiming
// the link's byte streams.  Both ends must enable the same count
// before any traffic flows.  n is clamped to [2, MaxVChans].
func (e *Engine) EnableVChans(l, n int) {
	if l < 0 || l >= core.NumLinks {
		return
	}
	if n < 2 {
		n = 2
	}
	if n > MaxVChans {
		n = MaxVChans
	}
	m := &Mux{e: e, link: l, n: n,
		out:  make([]vcOut, n),
		in:   make([]vcIn, n),
		owed: make([]int, n),
	}
	for vc := range m.out {
		m.out[vc].credit = VCWindow
	}
	e.mux[l] = m
	m.armHeader()
}

// VChans reports how many virtual channels are multiplexed over link
// l; zero when the link carries a single conversation.
func (e *Engine) VChans(l int) int {
	if l < 0 || l >= core.NumLinks || e.mux[l] == nil {
		return 0
	}
	return e.mux[l].n
}

// VChanStats returns the send-side multiplexer counters of link l.
func (e *Engine) VChanStats(l int) (MuxStats, bool) {
	if l < 0 || l >= core.NumLinks || e.mux[l] == nil {
		return MuxStats{}, false
	}
	return e.mux[l].stats, true
}

// SendVC transmits data on virtual channel vc of link l; done fires
// when the final chunk's last byte has been acknowledged.  One message
// per vchan at a time: returns false when that vchan's sender is busy,
// the link has no mux, or vc is out of range.
func (e *Engine) SendVC(l, vc int, data []byte, done func()) bool {
	if l < 0 || l >= core.NumLinks || e.mux[l] == nil {
		return false
	}
	m := e.mux[l]
	if vc < 0 || vc >= m.n {
		return false
	}
	s := &m.out[vc]
	if s.active {
		return false
	}
	if len(data) == 0 {
		if done != nil {
			done()
		}
		return true
	}
	s.active = true
	s.buf = append([]byte(nil), data...)
	s.queued = 0
	s.acked = 0
	s.done = done
	m.pump()
	return true
}

// BeginOutputVC implements core.VChanExternal: transmit count bytes of
// machine memory on virtual channel vc of link l.  A busy vchan sender
// means two processes share one channel end — an occam program error;
// mirror hardware by hanging for the watchdog to report.
func (e *Engine) BeginOutputVC(l, vc int, ptr uint64, count int, done func()) {
	e.SendVC(l, vc, e.m.ReadBytes(ptr, count), done)
}

// BeginInputVC implements core.VChanExternal: receive count bytes from
// virtual channel vc of link l into machine memory.
func (e *Engine) BeginInputVC(l, vc int, ptr uint64, count int, done func()) {
	m := e.m
	e.RecvVC(l, vc, count, func(buf []byte) {
		m.WriteBytes(ptr, buf)
		done()
	})
}

// HandoffFlowVC associates a probe flow with the next message on
// virtual channel vc of link l (the vchan analogue of HandoffFlow).
func (e *Engine) HandoffFlowVC(l, vc int, flow uint64) {
	if l < 0 || l >= core.NumLinks || e.mux[l] == nil {
		return
	}
	m := e.mux[l]
	if vc >= 0 && vc < m.n {
		m.out[vc].flow = flow
	}
}

// VCFlow reports the flow carried by the last chunk delivered on
// virtual channel vc of link l (the vchan analogue of TransferFlow).
func (e *Engine) VCFlow(l, vc int) uint64 {
	if l < 0 || l >= core.NumLinks || e.mux[l] == nil {
		return 0
	}
	m := e.mux[l]
	if vc < 0 || vc >= m.n {
		return 0
	}
	return m.in[vc].flow
}

// RecvVC receives exactly n bytes from virtual channel vc of link l,
// handing the filled buffer to done.  One outstanding receive per
// vchan: returns false when that vchan's receiver is busy, the link
// has no mux, or vc is out of range.  done may fire synchronously when
// staged bytes already satisfy the request.
func (e *Engine) RecvVC(l, vc, n int, done func([]byte)) bool {
	if l < 0 || l >= core.NumLinks || e.mux[l] == nil {
		return false
	}
	m := e.mux[l]
	if vc < 0 || vc >= m.n {
		return false
	}
	r := &m.in[vc]
	if r.active {
		return false
	}
	if n <= 0 {
		if done != nil {
			done(nil)
		}
		return true
	}
	r.active = true
	r.buf = make([]byte, n)
	r.got = 0
	r.done = done
	m.deliver(vc)
	return true
}

// EnableInputVC arms alternative-input readiness signalling on a
// virtual channel: ready fires (once) when staged bytes appear.
// Returns true immediately when bytes are already staged.
func (e *Engine) EnableInputVC(l, vc int, ready func()) bool {
	if l < 0 || l >= core.NumLinks || e.mux[l] == nil {
		return false
	}
	m := e.mux[l]
	if vc < 0 || vc >= m.n {
		return false
	}
	r := &m.in[vc]
	if len(r.pending) > 0 {
		return true
	}
	r.armed = ready
	return false
}

// DisableInputVC disarms signalling and reports staged data.
func (e *Engine) DisableInputVC(l, vc int) bool {
	if l < 0 || l >= core.NumLinks || e.mux[l] == nil {
		return false
	}
	m := e.mux[l]
	if vc < 0 || vc >= m.n {
		return false
	}
	r := &m.in[vc]
	r.armed = nil
	return len(r.pending) > 0
}

// emitVC publishes a vchan probe event.  Cycle-stamp-free, like
// FlowArrive: mux activity is clocked by link completions, and the
// machine's cycle count at those instants depends on simulator
// batching, not on architecture.
func (m *Mux) emitVC(kind probe.Kind, vc, bytes int, flow uint64) {
	e := m.e
	if e.bus == nil {
		return
	}
	e.bus.Publish(probe.Event{Kind: kind, Link: m.link, Arg: int64(vc),
		Bytes: bytes, Flow: flow, Time: e.k.Now(), Node: e.m.Name()})
}

// pump puts the next unit on the wire if it is free: credit frames
// first, then one data chunk from the round-robin scan.
func (m *Mux) pump() {
	if m.txBusy {
		return
	}
	if len(m.grants) > 0 {
		vc := m.grants[0]
		m.grants = m.grants[1:]
		n := m.owed[vc]
		m.owed[vc] = 0
		m.stats.Credits++
		m.emitVC(probe.VChanCredit, vc, n, 0)
		m.xmit([]byte{creditFlag | byte(vc), byte(n)}, 0, nil)
		return
	}
	for i := 0; i < m.n; i++ {
		vc := (m.rr + i) % m.n
		s := &m.out[vc]
		if !s.active || s.credit == 0 || s.queued == len(s.buf) {
			continue
		}
		m.rr = (vc + 1) % m.n
		chunk := len(s.buf) - s.queued
		if chunk > maxChunk {
			chunk = maxChunk
		}
		if chunk > s.credit {
			chunk = s.credit
		}
		s.credit -= chunk
		unit := make([]byte, 2+chunk)
		unit[0] = byte(vc)
		unit[1] = byte(chunk)
		copy(unit[2:], s.buf[s.queued:s.queued+chunk])
		s.queued += chunk
		m.stats.Chunks++
		m.stats.ChunkBytes += uint64(chunk)
		m.emitVC(probe.VChanChunk, vc, chunk, s.flow)
		m.xmit(unit, s.flow, func() { m.chunkAcked(vc, chunk) })
		return
	}
}

// xmit puts one unit on the wire through the link's ordinary sender;
// done (then the next pump) runs when the unit's final byte has been
// acknowledged.
func (m *Mux) xmit(unit []byte, flow uint64, done func()) {
	m.txBusy = true
	o := m.e.outs[m.link]
	o.flow = flow
	o.start(func(i int) byte { return unit[i] }, len(unit), func() {
		m.txBusy = false
		if done != nil {
			done()
		}
		m.pump()
	})
}

// chunkAcked credits a completed chunk to its message and fires the
// message completion when the last chunk is in.
func (m *Mux) chunkAcked(vc, n int) {
	s := &m.out[vc]
	s.acked += n
	if s.acked == len(s.buf) {
		s.active = false
		s.buf = nil
		done := s.done
		s.done = nil
		if done != nil {
			done()
		}
	}
}

// armHeader starts the perpetual receive pump: two header bytes, then
// the unit's payload, then the next header.  Purely event-driven — an
// armed pump with no traffic never blocks quiescence.
func (m *Mux) armHeader() {
	in := m.e.ins[m.link]
	in.start(func(i int, b byte) { m.hdr[i] = b }, 2, m.headerDone)
}

func (m *Mux) headerDone() {
	b0, n := m.hdr[0], int(m.hdr[1])
	if b0&creditFlag != 0 {
		vc := int(b0 &^ creditFlag)
		if vc < m.n {
			m.out[vc].credit += n
		}
		m.armHeader()
		m.pump() // fresh credit may unblock a sender
		return
	}
	vc := int(b0)
	buf := make([]byte, n)
	in := m.e.ins[m.link]
	in.start(func(i int, b byte) { buf[i] = b }, n, func() { m.chunkArrived(vc, buf) })
}

// chunkArrived stages a data chunk's payload on its vchan and tries to
// deliver; the flow the chunk's packets carried is recorded so the
// consumer-side events join the sender's flow.
func (m *Mux) chunkArrived(vc int, payload []byte) {
	if vc < m.n {
		r := &m.in[vc]
		r.flow = m.e.ins[m.link].flow
		r.pending = append(r.pending, payload...)
		m.deliver(vc)
	}
	m.armHeader()
}

// deliver moves staged bytes to the vchan's consumer, grants the
// credit back, and completes the receive when it is satisfied.
func (m *Mux) deliver(vc int) {
	r := &m.in[vc]
	if r.armed != nil && len(r.pending) > 0 {
		ready := r.armed
		r.armed = nil
		ready()
	}
	if !r.active || len(r.pending) == 0 {
		return
	}
	take := len(r.pending)
	if rem := len(r.buf) - r.got; take > rem {
		take = rem
	}
	copy(r.buf[r.got:], r.pending[:take])
	r.pending = r.pending[take:]
	r.got += take
	m.grant(vc, take)
	if r.got == len(r.buf) {
		r.active = false
		buf := r.buf
		r.buf = nil
		done := r.done
		r.done = nil
		m.emitVC(probe.VChanDeliver, vc, len(buf), r.flow)
		if done != nil {
			done(buf)
		}
	}
}

// grant queues a credit frame returning n consumed bytes to the
// peer's sender for vchan vc.
func (m *Mux) grant(vc, n int) {
	if n == 0 {
		return
	}
	if m.owed[vc] == 0 {
		m.grants = append(m.grants, vc)
	}
	m.owed[vc] += n
	m.pump()
}

// resync resets the multiplexer to its power-on state (fresh credit,
// nothing staged, nothing owed) and re-arms the receive pump; part of
// the link resynchronisation handshake (see Engine.ResyncLink).
func (m *Mux) resync() {
	for vc := range m.out {
		m.out[vc] = vcOut{credit: VCWindow}
		m.in[vc] = vcIn{}
		m.owed[vc] = 0
	}
	m.grants = nil
	m.rr = 0
	m.txBusy = false
	m.armHeader()
}
