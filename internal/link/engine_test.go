package link

import (
	"testing"

	"transputer/internal/core"
	"transputer/internal/sim"
)

// Engine-level tests: drive BeginOutput/BeginInput directly against
// machine memory, without processors executing.

func enginePair(t *testing.T) (*sim.Kernel, *core.Machine, *Engine, *core.Machine, *Engine) {
	t.Helper()
	k := sim.NewKernel()
	ma := core.MustNew(core.T424().WithMemory(16 * 1024))
	mb := core.MustNew(core.T424().WithMemory(16 * 1024))
	ea := NewEngine(k, ma)
	eb := NewEngine(k, mb)
	Connect(ea, 2, eb, 1)
	return k, ma, ea, mb, eb
}

func TestEngineTransfer(t *testing.T) {
	k, ma, ea, mb, eb := enginePair(t)
	src := ma.MemStart() + 64
	dst := mb.MemStart() + 128
	msg := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x42}
	ma.WriteBytes(src, msg)

	// The receiver posts first so the very first byte's acknowledge
	// overlaps its reception (otherwise the first byte costs two extra
	// bit times).
	var sentAt, recvAt sim.Time
	eb.BeginInput(1, dst, len(msg), func() { recvAt = k.Now() })
	ea.BeginOutput(2, src, len(msg), func() { sentAt = k.Now() })
	k.Run()

	got := mb.ReadBytes(dst, len(msg))
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], msg[i])
		}
	}
	want := sim.Time(len(msg) * DataBits * BitNs)
	if recvAt != want || sentAt != want {
		t.Errorf("sent %v recv %v, want %v", sentAt, recvAt, want)
	}
	st := ea.WireStats(2)
	if st.DataBytes != uint64(len(msg)) {
		t.Errorf("wire carried %d data bytes", st.DataBytes)
	}
	if rst := eb.WireStats(1); rst.Acks != uint64(len(msg)) {
		t.Errorf("reverse wire carried %d acks", rst.Acks)
	}
}

func TestEngineConnected(t *testing.T) {
	_, _, ea, _, _ := enginePair(t)
	if !ea.Connected(2) {
		t.Error("link 2 should be connected")
	}
	if ea.Connected(0) || ea.Connected(3) {
		t.Error("links 0 and 3 should be unconnected")
	}
	if ea.Connected(-1) || ea.Connected(4) {
		t.Error("out-of-range links are never connected")
	}
	if st := ea.WireStats(0); st.DataBytes != 0 {
		t.Error("unconnected wire stats should be zero")
	}
}

func TestEngineZeroLength(t *testing.T) {
	k, ma, ea, mb, eb := enginePair(t)
	sent, recvd := false, false
	ea.BeginOutput(2, ma.MemStart(), 0, func() { sent = true })
	eb.BeginInput(1, mb.MemStart(), 0, func() { recvd = true })
	k.Run()
	if !sent || !recvd {
		t.Error("zero-length transfers should complete immediately")
	}
}

func TestEngineUnconnectedNeverCompletes(t *testing.T) {
	k := sim.NewKernel()
	m := core.MustNew(core.T424().WithMemory(16 * 1024))
	e := NewEngine(k, m)
	done := false
	e.BeginOutput(0, m.MemStart(), 4, func() { done = true })
	k.Run()
	if done {
		t.Error("output on an unconnected link must wait forever")
	}
}

func TestEngineAltArming(t *testing.T) {
	k, ma, ea, mb, eb := enginePair(t)
	// Arm before any data: not ready.
	fired := false
	if eb.EnableInput(1, func() { fired = true }) {
		t.Fatal("no data yet: enable should report not ready")
	}
	// A byte arrives: the armed callback fires.
	ma.WriteBytes(ma.MemStart(), []byte{7})
	ea.BeginOutput(2, ma.MemStart(), 1, nil)
	k.Run()
	if !fired {
		t.Fatal("armed input did not signal")
	}
	// Disable reports data available; a fresh enable is immediately
	// ready.
	if !eb.DisableInput(1) {
		t.Error("disable should report buffered data")
	}
	if !eb.EnableInput(1, func() {}) {
		t.Error("re-enable should be immediately ready")
	}
	eb.DisableInput(1)
	// The buffered byte can now be collected.
	got := false
	eb.BeginInput(1, mb.MemStart()+64, 1, func() { got = true })
	k.Run()
	if !got || mb.ReadBytes(mb.MemStart()+64, 1)[0] != 7 {
		t.Error("buffered byte not delivered")
	}
}

func TestEngineBusyChannelIgnoresSecondTransfer(t *testing.T) {
	k, ma, ea, mb, eb := enginePair(t)
	ma.WriteBytes(ma.MemStart(), []byte{1, 2, 3, 4})
	first := false
	ea.BeginOutput(2, ma.MemStart(), 4, func() { first = true })
	// A second output on the same busy channel end is an occam program
	// error; the engine must not corrupt the first.
	ea.BeginOutput(2, ma.MemStart(), 4, func() { t.Error("second transfer must not complete") })
	eb.BeginInput(1, mb.MemStart()+64, 4, nil)
	k.Run()
	if !first {
		t.Error("first transfer should complete")
	}
}

// TestStopAndWaitTiming: with the ablation enabled the acknowledge
// follows reception, costing 13 bit times per byte.
func TestStopAndWaitTiming(t *testing.T) {
	k, ma, ea, mb, eb := enginePair(t)
	eb.SetStopAndWait(true)
	const n = 100
	ma.WriteBytes(ma.MemStart(), make([]byte, n))
	var done sim.Time
	ea.BeginOutput(2, ma.MemStart(), n, func() { done = k.Now() })
	eb.BeginInput(1, mb.MemStart()+256, n, nil)
	k.Run()
	want := sim.Time(n * (DataBits + AckBits) * BitNs)
	if done != want {
		t.Errorf("stop-and-wait finished at %v, want %v", done, want)
	}
}
