// Error-detecting link mode.
//
// The paper's link protocol (section 2.3, figure 1) assumes perfect
// wires: a data packet is always delivered and always acknowledged.
// This file adds an opt-in mode for imperfect wires, layered on the
// same two signal lines:
//
//   - every data packet carries a one-bit sequence number and an 8-bit
//     CRC trailer covering the payload and the sequence bit
//     (RelDataBits = 20 bit times instead of 11);
//   - the receiver checks the trailer, NAKs corrupt packets, and
//     acknowledges good ones with the sequence bit echoed back
//     (RelAckBits = 3 bit times);
//   - the sender retransmits on NAK or when no acknowledge arrives
//     within a timeout, up to a bounded retry budget; exhausting the
//     budget declares the link down and leaves the blocked process for
//     the deadlock watchdog to report;
//   - the alternating sequence bit lets the receiver recognise a
//     retransmission whose original acknowledge was lost, re-acknowledge
//     it, and deliver the byte exactly once.
//
// Unlike figure 1's overlapped acknowledge, a receiver in this mode can
// only acknowledge after the whole packet (and its trailer) has
// arrived, and the acknowledge means "accepted" — delivered to a
// waiting process or placed in the single-byte buffer — rather than
// "consumed".  A data byte arriving while the buffer is occupied is
// ignored without acknowledgement; the sender's paced retries carry it
// until the buffered byte is consumed or the retry budget runs out.
package link

import (
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Defaults for SetReliable: the timeout is ~45 data-packet times at the
// standard rate, and the budget tolerates ~0.3 ms of silence before
// declaring a link dead.
const (
	DefaultRelTimeout = 10 * sim.Microsecond
	DefaultRelRetries = 32
)

// crc8 is the ATM-HEC polynomial x^8+x^2+x+1 (0x07) over the payload
// and sequence bit of a data packet.
func crc8(payload, seq byte) byte {
	crc := payload
	for bit := 0; bit < 8; bit++ {
		if crc&0x80 != 0 {
			crc = crc<<1 ^ 0x07
		} else {
			crc <<= 1
		}
	}
	crc ^= seq
	for bit := 0; bit < 8; bit++ {
		if crc&0x80 != 0 {
			crc = crc<<1 ^ 0x07
		} else {
			crc <<= 1
		}
	}
	return crc
}

// relSender is the error-detecting-mode state of one outHalf.
type relSender struct {
	on         bool
	timeout    sim.Time
	maxRetries int

	seq        byte // sequence bit of the byte in flight
	cur        byte // payload of the byte in flight
	retries    int  // retries spent on the current byte
	timer      sim.EventID
	timerArmed bool
	failed     bool // retry budget exhausted; link declared down
}

// relReceiver is the error-detecting-mode state of one inHalf.
type relReceiver struct {
	on     bool
	expect byte // next sequence bit expected
}

// sendReliable queues the current byte with its trailer.  retrans
// marks a resend, which the wire counts separately from goodput.
func (o *outHalf) sendReliable(b byte, retrans bool) {
	o.rel.cur = b
	in := o.peer
	o.wire.send(packet{
		kind:    pktData,
		bits:    RelDataBits,
		payload: b,
		seq:     o.rel.seq,
		crc:     crc8(b, o.rel.seq),
		flow:    o.flow,
		retrans: retrans,
		deliver: func(p packet) { in.relDataArrive(p) },
		onTxEnd: func() { o.relTxEnd() },
	})
}

// relTxEnd arms the retransmit timer once the packet's bits are out.
func (o *outHalf) relTxEnd() {
	o.txEnded = true
	if !o.acked {
		o.txEndAt = o.wire.k.Now()
		o.armRetryTimer()
	}
}

func (o *outHalf) armRetryTimer() {
	o.cancelRetryTimer()
	o.rel.timer = o.wire.k.After(o.rel.timeout, o.retryTimeout)
	o.rel.timerArmed = true
}

func (o *outHalf) cancelRetryTimer() {
	if o.rel.timerArmed {
		o.wire.k.Cancel(o.rel.timer)
		o.rel.timerArmed = false
	}
}

func (o *outHalf) retryTimeout() {
	o.rel.timerArmed = false
	if !o.active || o.acked || o.rel.failed {
		return
	}
	o.retransmit()
}

// retransmit resends the current byte, or declares the link down when
// the retry budget is spent.
func (o *outHalf) retransmit() {
	o.rel.retries++
	if o.rel.retries > o.rel.maxRetries {
		o.rel.failed = true
		if o.eng != nil && o.eng.bus != nil {
			o.eng.emit(probe.Event{Kind: probe.LinkDown, Link: o.link,
				Arg: int64(o.rel.maxRetries), Flow: o.flow})
		}
		return
	}
	if o.eng != nil && o.eng.bus != nil {
		o.eng.emit(probe.Event{Kind: probe.LinkRetransmit, Link: o.link,
			Arg: int64(o.rel.retries), Flow: o.flow})
	}
	o.sendReliable(o.rel.cur, true)
}

// relAckArrived handles an acknowledge carrying the given sequence bit.
func (o *outHalf) relAckArrived(seq byte) {
	o.heard()
	if !o.active || o.acked || o.rel.failed || seq != o.rel.seq {
		return // stale or duplicate acknowledge
	}
	o.cancelRetryTimer()
	if o.txEnded && o.eng != nil && o.eng.bus != nil {
		if stall := o.eng.k.Now() - o.txEndAt; stall > 0 {
			o.eng.emit(probe.Event{Kind: probe.AckStall, Link: o.link, Dur: stall,
				Flow: o.flow})
		}
	}
	o.acked = true
	o.rel.retries = 0
	o.rel.seq ^= 1
	o.advance()
}

// relNakArrived handles a negative acknowledge: the receiver saw a
// corrupt trailer; resend at once.
func (o *outHalf) relNakArrived() {
	o.heard()
	if !o.active || o.acked || o.rel.failed {
		return
	}
	o.cancelRetryTimer()
	o.retransmit()
}

// relDataArrive handles a data packet in error-detecting mode.  The
// flow is noted even for corrupt packets — the flow's bits did reach
// this node, and the NAK that answers them should stay on the flow.
func (in *inHalf) relDataArrive(p packet) {
	in.heard()
	in.noteFlow(p.flow)
	if crc8(p.payload, p.seq) != p.crc {
		in.sendNak()
		return
	}
	if p.seq != in.rel.expect {
		// A retransmission of the previous byte: our acknowledge was
		// lost.  Re-acknowledge without delivering twice.
		in.sendRelAck(p.seq)
		return
	}
	switch {
	case in.active:
		in.sendRelAck(p.seq)
		in.rel.expect ^= 1
		in.store(p.payload)
	case !in.bufferValid:
		// No process waiting: accept into the single-byte buffer and
		// acknowledge; the buffered byte is consumed by a later input.
		in.buffer = p.payload
		in.bufferValid = true
		in.sendRelAck(p.seq)
		in.rel.expect ^= 1
		if in.armed != nil {
			ready := in.armed
			in.armed = nil
			ready()
		}
	default:
		// Buffer occupied: stay silent.  The sender's timeout-paced
		// retries redeliver the byte once there is room.
	}
}

func (in *inHalf) sendRelAck(seq byte) {
	out := in.peerOut
	in.ackWire.send(packet{
		kind:    pktAck,
		bits:    RelAckBits,
		seq:     seq,
		flow:    in.flow,
		deliver: func(p packet) { out.relAckArrived(p.seq) },
	})
}

func (in *inHalf) sendNak() {
	if in.eng != nil && in.eng.bus != nil {
		in.eng.emit(probe.Event{Kind: probe.LinkNak, Link: in.link, Flow: in.flow})
	}
	out := in.peerOut
	in.ackWire.send(packet{
		kind:    pktNak,
		bits:    NakBits,
		flow:    in.flow,
		deliver: func(packet) { out.relNakArrived() },
	})
}
