// Wire scheduler — the bottom layer of the protocol stack.
//
// A wire is one one-directional signal line: a serializer that clocks
// frames out at bit rate, gives acknowledges priority over data (so a
// long data stream in one direction cannot starve the acknowledges of
// the reverse channel), consults the fault-injection hook once per
// frame, and carries deliveries to the receiving end — synchronously
// when both ends share a clock domain, through the coordinator mailbox
// with propagation latency when they do not.  Everything above this
// layer deals in whole packets; only this file knows about bit times,
// fault actions and shard crossings.
package link

import (
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// packetKind distinguishes the frames multiplexed down a signal line.
type packetKind uint8

const (
	pktData packetKind = iota
	pktAck
	pktNak
	pktBeat
)

// packet is one frame queued on a wire.  Sender-side callbacks
// (onTxEnd) always fire — transmitting hardware cannot tell its bits
// were lost — while receiver-side callbacks (deliverStart, deliver) are
// skipped when a fault drops the packet or the wire is severed.
type packet struct {
	kind    packetKind
	bits    int
	payload byte   // data byte (pktData)
	seq     byte   // sequence bit (error-detecting mode)
	crc     byte   // check trailer (error-detecting mode)
	flow    uint64 // probe flow identity carried across the wire; 0 untraced
	retrans bool   // a resend of a byte already counted as goodput

	onTxEnd      func()
	deliverStart func(flow uint64) // receives the packet's flow identity
	deliver      func(p packet)
}

// FaultAction describes what an injected fault does to one packet.
// The zero value leaves the packet untouched.
type FaultAction struct {
	// Drop loses the packet in transit: the sender still clocks the bits
	// out, but the receiver never sees them.
	Drop bool
	// Corrupt is an XOR mask applied to a data packet's payload.
	Corrupt byte
	// Delay holds the wire for extra time before the bits go out.
	Delay sim.Time
}

// FaultHook is consulted once per packet as it starts transmission on a
// wire; isCtl reports a control packet (acknowledge or NAK) rather than
// a data byte.  Hooks are installed by the fault-injection subsystem
// and must be deterministic for a given call sequence.
type FaultHook func(isCtl bool) FaultAction

// rxGate is the receiver-side cut detector for a wire that crosses
// shards: it is owned (read and written) by the receiving shard only,
// so a sever can kill in-flight packets without touching sender state.
type rxGate struct {
	severed bool
}

// wire is a one-directional signal line.  A wire lives entirely in
// the sending engine's clock domain; when the receiver is on another
// shard, deliveries travel through post with prop latency instead of
// running synchronously.
type wire struct {
	k     sim.Clock
	bitNs int64
	busy  bool
	// The two priority queues are head-indexed rings over reusable
	// backing arrays: a busy wire queues and drains a packet per frame,
	// and popping by reslicing would force the next append to
	// reallocate every time.
	acks     []packet // pending acknowledges and naks (sent first)
	ackHead  int
	data     []packet // pending data bytes
	dataHead int
	stats    WireStats

	// post and prop are set when the receiving end lives on another
	// port: receiver-side callbacks are posted through the coordinator
	// mailbox with prop propagation delay (the coordinator's
	// conservative lookahead).  rx is then the receiver-owned cut gate,
	// and fused records that both ends live on ONE shard — delivered
	// in-kernel by the fused local loop, never concurrently with the
	// sender, which is what licenses the capture-free delivery fifo.
	post  func(at sim.Time, fn func())
	prop  sim.Time
	rx    *rxGate
	fused bool

	// cur is the frame currently on the wire and curDropped whether a
	// fault lost it; txDone is the cached frame-completion callback.
	// Only one frame is in flight per wire at a time (busy), so the
	// in-flight state lives here instead of in a per-frame closure —
	// the alternative allocates a packet-sized capture every frame.
	cur        packet
	curDropped bool
	txDone     func()

	// fifo carries receiver-side callbacks posted to the far end of a
	// cross-clock wire, paired with popPosted (cached in popFn): posts
	// on one wire execute in the destination kernel in exactly the
	// order they were made — delivery times along a wire are monotonic
	// and same-instant deliveries keep their injection order — so the
	// pending deliveries live in a head-indexed ring here and every
	// post schedules the same capture-free callback, instead of a
	// fresh packet-sized closure per frame.
	fifo     []postedFrame
	fifoHead int
	popFn    func()

	// hook, when non-nil, injects faults into this wire's traffic.
	hook FaultHook
	// severed marks a cut wire: nothing queued or in flight is ever
	// delivered after the cut.
	severed bool

	// owner and link attribute this wire's traffic to the engine whose
	// outgoing signal line it is, for probe events.  Wires driven by a
	// host end have no owner and publish nothing.
	owner *Engine
	link  int
}

// queueEmpty reports whether nothing is waiting behind the frame (if
// any) currently on the wire.
func (w *wire) queueEmpty() bool {
	return w.ackHead == len(w.acks) && w.dataHead == len(w.data)
}

// clearQueues discards everything queued but not yet transmitted.
func (w *wire) clearQueues() {
	w.acks, w.ackHead = nil, 0
	w.data, w.dataHead = nil, 0
}

func (w *wire) send(p packet) {
	if p.kind != pktData {
		if w.ackHead == len(w.acks) {
			w.acks, w.ackHead = w.acks[:0], 0
		}
		w.acks = append(w.acks, p)
	} else {
		if w.dataHead == len(w.data) {
			w.data, w.dataHead = w.data[:0], 0
		}
		w.data = append(w.data, p)
	}
	if !w.busy {
		w.transmitNext()
	}
}

// emit publishes a probe event attributed to this wire's owning engine,
// if any.
func (w *wire) emit(ev probe.Event) {
	if w.owner != nil && w.owner.bus != nil {
		ev.Link = w.link
		w.owner.emit(ev)
	}
}

func (w *wire) transmitNext() {
	var p packet
	switch {
	case w.ackHead < len(w.acks):
		p = w.acks[w.ackHead]
		w.acks[w.ackHead] = packet{} // drop callback references for the collector
		w.ackHead++
	case w.dataHead < len(w.data):
		p = w.data[w.dataHead]
		w.data[w.dataHead] = packet{}
		w.dataHead++
	default:
		w.busy = false
		return
	}
	w.busy = true
	isCtl := p.kind != pktData
	var act FaultAction
	if w.hook != nil {
		act = w.hook(isCtl)
	}
	dur := int64(p.bits)*w.bitNs + int64(act.Delay)
	w.stats.BusyNs += dur
	switch {
	case p.kind == pktAck:
		w.stats.Acks++
	case p.kind == pktNak:
		w.stats.Naks++
	case p.kind == pktBeat:
		w.stats.Beats++
	case p.retrans:
		w.stats.Retransmits++
	default:
		w.stats.DataBytes++
	}
	w.emit(probe.Event{Kind: probe.WirePacket,
		Ack: isCtl, Bytes: boolByte(!isCtl), Dur: sim.Time(dur), Flow: p.flow})
	if act.Delay > 0 {
		w.emit(probe.Event{Kind: probe.FaultDelay, Ack: isCtl, Dur: act.Delay, Flow: p.flow})
	}
	if act.Corrupt != 0 && p.kind == pktData {
		p.payload ^= act.Corrupt
		w.emit(probe.Event{Kind: probe.FaultCorrupt, Arg: int64(act.Corrupt), Flow: p.flow})
	}
	dropped := act.Drop || w.severed
	if act.Drop && !w.severed {
		w.emit(probe.Event{Kind: probe.FaultDrop, Ack: isCtl, Flow: p.flow})
	}
	if w.post != nil {
		// Cross-shard receiver: both callbacks travel through the
		// mailbox, gated on the receiver-side cut flag (a cable cut is
		// observed at the far end one propagation later; anything
		// arriving after that is lost).  Packet completion keeps its
		// exact wire timing — every frame lasts at least an
		// acknowledge (2 bit times), which is precisely the
		// coordinator's lookahead, so start+dur is always a legal
		// cross-shard instant.  Only the reception-start signal (which
		// fires the overlapped acknowledge) is deferred by the
		// propagation delay.  Sender-side bookkeeping stays local.
		start := w.k.Now()
		if !dropped && w.fused {
			// Same-shard receiver: members of one shard never run
			// concurrently, so the pending deliveries can sit in the
			// sender-owned fifo and every post reuses one callback.
			if w.popFn == nil {
				w.popFn = w.popPosted
			}
			if ds := p.deliverStart; ds != nil {
				w.fifoPush(postedFrame{start: true, ds: ds, flow: p.flow})
				w.post(start+w.prop, w.popFn)
			}
			if dv := p.deliver; dv != nil {
				// The posted copy keeps only the fields receivers read;
				// carrying the callback pointers across would triple the
				// pointer slots the collector scans per in-flight packet.
				pp := p
				pp.onTxEnd, pp.deliverStart, pp.deliver = nil, nil, nil
				w.fifoPush(postedFrame{dv: dv, p: pp})
				w.post(start+sim.Time(dur), w.popFn)
			}
		} else if !dropped {
			// Cross-shard receiver: the destination runs on another
			// worker, so each delivery carries its own closure — the
			// capture is what crosses the mailbox's synchronization.
			rx := w.rx
			if ds := p.deliverStart; ds != nil {
				fl := p.flow
				w.post(start+w.prop, func() {
					if !rx.severed {
						ds(fl)
					}
				})
			}
			if dv := p.deliver; dv != nil {
				pp := p
				pp.onTxEnd, pp.deliverStart, pp.deliver = nil, nil, nil
				w.post(start+sim.Time(dur), func() {
					if !rx.severed {
						dv(pp)
					}
				})
			}
		}
		// The receiver-side callbacks already travelled through the
		// mailbox; only sender bookkeeping remains for completion.
		p.deliverStart, p.deliver = nil, nil
	} else if !dropped && p.deliverStart != nil {
		p.deliverStart(p.flow)
	}
	w.cur = p
	w.curDropped = dropped
	if w.txDone == nil {
		w.txDone = w.finishTx
	}
	w.k.After(sim.Time(dur), w.txDone)
}

// finishTx fires when the frame on the wire completes: deliver (unless
// lost, or the wire was cut while the frame was in flight), notify the
// sender, and start the next queued frame.
func (w *wire) finishTx() {
	p := w.cur
	w.cur = packet{}
	if !w.curDropped && !w.severed && p.deliver != nil {
		p.deliver(p)
	}
	if p.onTxEnd != nil {
		p.onTxEnd()
	}
	w.transmitNext()
}

// postedFrame is one receiver-side callback waiting in a cross-clock
// wire's delivery fifo: either a reception-start signal (start, ds,
// flow) or a completed packet (dv, p).
type postedFrame struct {
	start bool
	flow  uint64
	ds    func(flow uint64)
	dv    func(p packet)
	p     packet
}

// fifoPush appends to the fused delivery ring.
//
//tvet:ignore shardring this IS the ring implementation; every call site is fused-gated
func (w *wire) fifoPush(f postedFrame) {
	if w.fifoHead == len(w.fifo) {
		w.fifo, w.fifoHead = w.fifo[:0], 0
	}
	w.fifo = append(w.fifo, f)
}

// popPosted runs in the destination kernel for every posted delivery:
// it consumes the next fifo entry — always the one this event was
// posted for, by the wire-order argument above — and dispatches it
// unless the receiver-side cut gate has closed in the meantime.
//
//tvet:ignore shardring this IS the ring implementation; only fused wires ever post ring entries
func (w *wire) popPosted() {
	f := w.fifo[w.fifoHead]
	w.fifo[w.fifoHead] = postedFrame{}
	w.fifoHead++
	if w.rx.severed {
		return
	}
	if f.start {
		f.ds(f.flow)
		return
	}
	f.dv(f.p)
}

func boolByte(b bool) int {
	if b {
		return 1
	}
	return 0
}
