// Wire scheduler — the bottom layer of the protocol stack.
//
// A wire is one one-directional signal line: a serializer that clocks
// frames out at bit rate, gives acknowledges priority over data (so a
// long data stream in one direction cannot starve the acknowledges of
// the reverse channel), consults the fault-injection hook once per
// frame, and carries deliveries to the receiving end — synchronously
// when both ends share a clock domain, through the coordinator mailbox
// with propagation latency when they do not.  Everything above this
// layer deals in whole packets; only this file knows about bit times,
// fault actions and shard crossings.
package link

import (
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// packetKind distinguishes the frames multiplexed down a signal line.
type packetKind uint8

const (
	pktData packetKind = iota
	pktAck
	pktNak
	pktBeat
)

// packet is one frame queued on a wire.  Sender-side callbacks
// (onTxEnd) always fire — transmitting hardware cannot tell its bits
// were lost — while receiver-side callbacks (deliverStart, deliver) are
// skipped when a fault drops the packet or the wire is severed.
type packet struct {
	kind    packetKind
	bits    int
	payload byte   // data byte (pktData)
	seq     byte   // sequence bit (error-detecting mode)
	crc     byte   // check trailer (error-detecting mode)
	flow    uint64 // probe flow identity carried across the wire; 0 untraced
	retrans bool   // a resend of a byte already counted as goodput

	onTxEnd      func()
	deliverStart func()
	deliver      func(p packet)
}

// FaultAction describes what an injected fault does to one packet.
// The zero value leaves the packet untouched.
type FaultAction struct {
	// Drop loses the packet in transit: the sender still clocks the bits
	// out, but the receiver never sees them.
	Drop bool
	// Corrupt is an XOR mask applied to a data packet's payload.
	Corrupt byte
	// Delay holds the wire for extra time before the bits go out.
	Delay sim.Time
}

// FaultHook is consulted once per packet as it starts transmission on a
// wire; isCtl reports a control packet (acknowledge or NAK) rather than
// a data byte.  Hooks are installed by the fault-injection subsystem
// and must be deterministic for a given call sequence.
type FaultHook func(isCtl bool) FaultAction

// rxGate is the receiver-side cut detector for a wire that crosses
// shards: it is owned (read and written) by the receiving shard only,
// so a sever can kill in-flight packets without touching sender state.
type rxGate struct {
	severed bool
}

// wire is a one-directional signal line.  A wire lives entirely in
// the sending engine's clock domain; when the receiver is on another
// shard, deliveries travel through post with prop latency instead of
// running synchronously.
type wire struct {
	k     sim.Clock
	bitNs int64
	busy  bool
	acks  []packet // pending acknowledges and naks (sent first)
	data  []packet // pending data bytes
	stats WireStats

	// post and prop are set when the receiving end lives on another
	// shard: receiver-side callbacks are posted through the coordinator
	// mailbox with prop propagation delay (the coordinator's
	// conservative lookahead).  rx is then the receiver-owned cut gate.
	post func(at sim.Time, fn func())
	prop sim.Time
	rx   *rxGate

	// hook, when non-nil, injects faults into this wire's traffic.
	hook FaultHook
	// severed marks a cut wire: nothing queued or in flight is ever
	// delivered after the cut.
	severed bool

	// owner and link attribute this wire's traffic to the engine whose
	// outgoing signal line it is, for probe events.  Wires driven by a
	// host end have no owner and publish nothing.
	owner *Engine
	link  int
}

func (w *wire) send(p packet) {
	if p.kind != pktData {
		w.acks = append(w.acks, p)
	} else {
		w.data = append(w.data, p)
	}
	if !w.busy {
		w.transmitNext()
	}
}

// emit publishes a probe event attributed to this wire's owning engine,
// if any.
func (w *wire) emit(ev probe.Event) {
	if w.owner != nil && w.owner.bus != nil {
		ev.Link = w.link
		w.owner.emit(ev)
	}
}

func (w *wire) transmitNext() {
	var p packet
	switch {
	case len(w.acks) > 0:
		p = w.acks[0]
		w.acks = w.acks[1:]
	case len(w.data) > 0:
		p = w.data[0]
		w.data = w.data[1:]
	default:
		w.busy = false
		return
	}
	w.busy = true
	isCtl := p.kind != pktData
	var act FaultAction
	if w.hook != nil {
		act = w.hook(isCtl)
	}
	dur := int64(p.bits)*w.bitNs + int64(act.Delay)
	w.stats.BusyNs += dur
	switch {
	case p.kind == pktAck:
		w.stats.Acks++
	case p.kind == pktNak:
		w.stats.Naks++
	case p.kind == pktBeat:
		w.stats.Beats++
	case p.retrans:
		w.stats.Retransmits++
	default:
		w.stats.DataBytes++
	}
	w.emit(probe.Event{Kind: probe.WirePacket,
		Ack: isCtl, Bytes: boolByte(!isCtl), Dur: sim.Time(dur), Flow: p.flow})
	if act.Delay > 0 {
		w.emit(probe.Event{Kind: probe.FaultDelay, Ack: isCtl, Dur: act.Delay, Flow: p.flow})
	}
	if act.Corrupt != 0 && p.kind == pktData {
		p.payload ^= act.Corrupt
		w.emit(probe.Event{Kind: probe.FaultCorrupt, Arg: int64(act.Corrupt), Flow: p.flow})
	}
	dropped := act.Drop || w.severed
	if act.Drop && !w.severed {
		w.emit(probe.Event{Kind: probe.FaultDrop, Ack: isCtl, Flow: p.flow})
	}
	if w.post != nil {
		// Cross-shard receiver: both callbacks travel through the
		// mailbox, gated on the receiver-side cut flag (a cable cut is
		// observed at the far end one propagation later; anything
		// arriving after that is lost).  Packet completion keeps its
		// exact wire timing — every frame lasts at least an
		// acknowledge (2 bit times), which is precisely the
		// coordinator's lookahead, so start+dur is always a legal
		// cross-shard instant.  Only the reception-start signal (which
		// fires the overlapped acknowledge) is deferred by the
		// propagation delay.  Sender-side bookkeeping stays local.
		start := w.k.Now()
		rx := w.rx
		if !dropped {
			if ds := p.deliverStart; ds != nil {
				w.post(start+w.prop, func() {
					if !rx.severed {
						ds()
					}
				})
			}
			if dv := p.deliver; dv != nil {
				pp := p
				w.post(start+sim.Time(dur), func() {
					if !rx.severed {
						dv(pp)
					}
				})
			}
		}
		w.k.After(sim.Time(dur), func() {
			if p.onTxEnd != nil {
				p.onTxEnd()
			}
			w.transmitNext()
		})
		return
	}
	if !dropped && p.deliverStart != nil {
		p.deliverStart()
	}
	w.k.After(sim.Time(dur), func() {
		// A packet in flight when the wire is cut is lost too.
		if !dropped && !w.severed && p.deliver != nil {
			p.deliver(p)
		}
		if p.onTxEnd != nil {
			p.onTxEnd()
		}
		w.transmitNext()
	})
}

func boolByte(b bool) int {
	if b {
		return 1
	}
	return 0
}
