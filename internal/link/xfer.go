// Byte-transfer layer — the paper's data/acknowledge protocol.
//
// An outHalf clocks a message out one byte at a time, advancing only
// when the current byte has both finished transmitting and been
// acknowledged ("the sending process may proceed only after the
// acknowledge for the final byte of the message has been received").
// An inHalf issues the overlapped acknowledge of figure 1 the instant a
// data packet starts arriving — if a process is waiting — and owns the
// single-byte buffer that catches a byte no process was ready for.
// The data source and sink are per-transfer closures, so transputer
// memory, host devices, the routing layer's raw streams and the vchan
// multiplexer all feed the same machinery.
package link

import (
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// outHalf is the sending side of one channel of a link.
type outHalf struct {
	wire *wire // this end's outgoing signal line for the link
	peer *inHalf

	// eng and link attribute ack-stall probe events; nil for host ends.
	eng  *Engine
	link int

	active  bool
	read    func(i int) byte
	count   int
	sent    int
	done    func()
	txEnded bool // current byte finished transmitting
	acked   bool // current byte acknowledged
	// stalledAtStart marks a transfer that start() could not begin
	// because the link had been declared down: no byte of it is on the
	// wire, so recovery must send the first byte rather than retransmit.
	stalledAtStart bool
	// txEndAt records when the current byte finished transmitting, for
	// measuring the wait for its acknowledge.
	txEndAt sim.Time

	// flow is the probe flow identity of the transfer in progress,
	// handed over by the machine (core.FlowExternal); every packet of
	// the transfer carries it.  Zero when untraced.
	flow uint64

	// rel is the error-detecting-mode sender state (see reliable.go).
	rel relSender

	// Per-peer receiver callbacks, built once and reused for every
	// packet: a busy link sends thousands of frames, and minting fresh
	// closures per byte is pure allocator load.  cbPeer records which
	// peer the cached set was built for, so a rewire invalidates it.
	cbPeer         *inHalf
	cbDeliverStart func(flow uint64)
	cbDeliver      func(p packet)
	cbTxEnd        func()
}

// inHalf is the receiving side of one channel of a link.
type inHalf struct {
	ackWire *wire    // this end's outgoing line, used for acknowledges
	peerOut *outHalf // the sender our acknowledges go to

	active   bool
	write    func(i int, b byte)
	count    int
	received int
	done     func()

	buffer      byte
	bufferValid bool
	armed       func() // alternative-input readiness callback

	// ackSentAtStart records whether the acknowledge for the byte
	// currently in flight was issued at reception start.
	ackSentAtStart bool

	// stopAndWait suppresses the overlapped acknowledge: the ack is
	// only sent after the data byte has fully arrived.  Used by the
	// ablation benchmarks to quantify what figure 1's early
	// acknowledge buys.
	stopAndWait bool

	// eng and link attribute NAK probe events; nil for host ends.
	eng  *Engine
	link int

	// flow is the probe flow identity carried by the packets arriving on
	// this half — acknowledges and NAKs echo it back so the retry tail
	// stays on the flow; flowSeen is the last flow for which a
	// FlowArrive event was published (once per flow, on its first
	// packet).
	flow     uint64
	flowSeen uint64

	// rel is the error-detecting-mode receiver state (see reliable.go).
	rel relReceiver

	// Cached acknowledge-delivery callback (see outHalf's cache).
	cbAckPeer    *outHalf
	cbAckArrived func(p packet)
}

func (o *outHalf) start(read func(i int) byte, count int, done func()) {
	o.active = true
	o.read = read
	o.count = count
	o.sent = 0
	o.done = done
	o.stalledAtStart = false
	if o.wire == nil || o.rel.failed {
		// Unconnected or failed link: waits forever (until recovery).
		o.stalledAtStart = o.rel.failed
		return
	}
	o.sendByte()
}

func (o *outHalf) sendByte() {
	b := o.read(o.sent)
	o.txEnded = false
	o.acked = false
	if o.rel.on {
		o.sendReliable(b, false)
		return
	}
	o.refreshCallbacks()
	o.wire.send(packet{
		kind:         pktData,
		bits:         DataBits,
		payload:      b,
		flow:         o.flow,
		deliverStart: o.cbDeliverStart,
		deliver:      o.cbDeliver,
		onTxEnd:      o.cbTxEnd,
	})
}

// refreshCallbacks (re)builds the cached per-peer packet callbacks.
func (o *outHalf) refreshCallbacks() {
	if o.cbPeer == o.peer && o.cbTxEnd != nil {
		return
	}
	in := o.peer
	o.cbPeer = in
	o.cbDeliverStart = func(fl uint64) { in.dataStart(fl) }
	o.cbDeliver = func(p packet) { in.dataArrive(p) }
	o.cbTxEnd = func() { o.txEnd() }
}

func (o *outHalf) txEnd() {
	o.txEnded = true
	if !o.acked && o.eng != nil {
		o.txEndAt = o.eng.k.Now()
	}
	o.advance()
}

func (o *outHalf) ackArrived() {
	o.heard()
	// An ack landing after the byte finished transmitting stalls the
	// sender for the difference (the overlapped acknowledge of figure 1
	// exists to make this zero in the streaming case).
	if o.txEnded && !o.acked && o.eng != nil && o.eng.bus != nil {
		if stall := o.eng.k.Now() - o.txEndAt; stall > 0 {
			o.eng.emit(probe.Event{Kind: probe.AckStall, Link: o.link,
				Dur: stall, Flow: o.flow})
		}
	}
	o.acked = true
	o.advance()
}

// advance moves to the next byte once the current byte has both
// finished transmitting and been acknowledged.
func (o *outHalf) advance() {
	if !o.active || !o.txEnded || !o.acked {
		return
	}
	o.sent++
	if o.sent == o.count {
		o.active = false
		done := o.done
		o.done = nil
		if done != nil {
			done()
		}
		return
	}
	o.sendByte()
}

func (in *inHalf) start(write func(i int, b byte), count int, done func()) {
	in.active = true
	in.write = write
	in.count = count
	in.received = 0
	in.done = done
	if in.bufferValid {
		// A byte arrived before the process was ready; consume it and
		// release the withheld acknowledge.  (In error-detecting mode
		// the acknowledge went out when the byte was accepted into the
		// buffer, so none is owed here.)
		b := in.buffer
		in.bufferValid = false
		in.store(b)
		if !in.rel.on {
			in.sendAck()
		}
	}
}

// dataStart fires when a data packet begins arriving: the acknowledge
// goes out immediately if a process is waiting, making streaming
// continuous.  The flow is noted before the overlapped acknowledge is
// built so the ack already carries it.
func (in *inHalf) dataStart(flow uint64) {
	in.heard()
	in.noteFlow(flow)
	in.ackSentAtStart = false
	if in.active && !in.stopAndWait {
		in.sendAck()
		in.ackSentAtStart = true
	}
}

// noteFlow records the flow arriving on this half and publishes a
// FlowArrive event the first time each flow's packets reach this node —
// the instant the flow crosses the wire and joins this node's timeline.
func (in *inHalf) noteFlow(flow uint64) {
	if flow == 0 {
		return
	}
	in.flow = flow
	if flow == in.flowSeen || in.eng == nil || in.eng.bus == nil {
		return
	}
	in.flowSeen = flow
	// Stamped with time and node but not the machine cycle counter: the
	// receiving CPU runs asynchronously to its link hardware, and its
	// cycle count at this instant depends on simulator batching (the
	// block cache), not on architecture.
	in.eng.bus.Publish(probe.Event{Kind: probe.FlowArrive, Link: in.link, Flow: flow,
		Time: in.eng.k.Now(), Node: in.eng.m.Name()})
}

// dataArrive fires when the data packet completes.
func (in *inHalf) dataArrive(p packet) {
	in.heard()
	in.noteFlow(p.flow)
	b := p.payload
	if in.active {
		in.store(b)
		if !in.ackSentAtStart {
			// The process turned up while the byte was in flight.
			in.sendAck()
		}
		return
	}
	// No process waiting: hold the byte in the single-byte buffer; the
	// acknowledge is withheld until a process inputs it.
	in.buffer = b
	in.bufferValid = true
	if in.armed != nil {
		ready := in.armed
		in.armed = nil
		ready()
	}
}

func (in *inHalf) store(b byte) {
	in.write(in.received, b)
	in.received++
	if in.received == in.count {
		in.active = false
		done := in.done
		in.done = nil
		if done != nil {
			done()
		}
	}
}

func (in *inHalf) sendAck() {
	if in.cbAckPeer != in.peerOut || in.cbAckArrived == nil {
		out := in.peerOut
		in.cbAckPeer = out
		in.cbAckArrived = func(packet) { out.ackArrived() }
	}
	in.ackWire.send(packet{
		kind:    pktAck,
		bits:    AckBits,
		flow:    in.flow,
		deliver: in.cbAckArrived,
	})
}
