// The protocol stack's seams, stated as interfaces.
//
// The package is one engine type layered internally, not five objects
// wired together at run time — layering by file and by interface keeps
// the hot paths free of indirection while still making each seam
// explicit, narrow and independently testable.  Every layer below is a
// view of *Engine; the compile-time assertions at the bottom are the
// contract that the engine keeps serving all of them.
//
//	┌─────────────────────────────────────────────────────┐
//	│ core.External / VChanExternal   (machine transfers) │
//	├─────────────────────────────────────────────────────┤
//	│ Multiplexer   vchan.go   N logical chans per wire   │
//	├─────────────────────────────────────────────────────┤
//	│ Streamer      stream.go  raw byte streams, resync   │
//	├─────────────────────────────────────────────────────┤
//	│ Liveness      heartbeat.go  beats, per-link verdict │
//	├─────────────────────────────────────────────────────┤
//	│ Reliability   reliable.go  CRC-8/seq/NAK/retransmit │
//	├─────────────────────────────────────────────────────┤
//	│ Transfer      xfer.go    data/ack byte protocol     │
//	├─────────────────────────────────────────────────────┤
//	│ Fabric        wire.go    packet timing, faults, cut │
//	└─────────────────────────────────────────────────────┘
package link

import (
	"transputer/internal/core"
	"transputer/internal/sim"
)

// Fabric is the wire-scheduler seam: per-link traffic counters and the
// fault surface (hooks, cable cuts and their reversal) of the physical
// signal lines.
type Fabric interface {
	Connected(i int) bool
	WireStats(i int) WireStats
	SetFaultHook(i int, h FaultHook)
	SeverLink(i int)
	SeverAll()
	RestoreLink(i int)
}

// Transfer is the byte-transfer seam: machine-memory messages moved by
// the paper's data/acknowledge protocol, plus the mode switch for the
// stop-and-wait ablation.
type Transfer interface {
	BeginOutput(link int, ptr uint64, count int, done func())
	BeginInput(link int, ptr uint64, count int, done func())
	EnableInput(link int, ready func()) bool
	DisableInput(link int) bool
	SetStopAndWait(v bool)
}

// Reliability is the error-detecting seam: the opt-in CRC/sequence/NAK
// retransmission mode and its failure verdict.
type Reliability interface {
	SetReliable(on bool, timeout sim.Time, maxRetries int)
	LinkDown(i int) (down bool, retries int)
}

// Liveness is the heartbeat seam: beats on idle wires and per-link
// peer-alive verdicts.
type Liveness interface {
	SetHeartbeat(interval, timeout sim.Time)
	OnHeartbeat(fn func(link int, up bool))
	StartHeartbeat()
	StopHeartbeat()
	PeerDown(l int) bool
}

// Streamer is the raw-stream seam the routing layer drives: byte-slice
// transfers and the outage resynchronisation/recovery handshake.
type Streamer interface {
	SendRaw(l int, data []byte, done func()) bool
	RecvRaw(l int, n int, done func([]byte)) bool
	ResyncLink(l int)
	RecoverLink(l int)
}

// Multiplexer is the virtual-channel seam: N logical channels framed
// onto one physical wire with fair interleaving and per-vchan flow
// control (see vchan.go).
type Multiplexer interface {
	EnableVChans(l, n int)
	VChans(l int) int
	SendVC(l, vc int, data []byte, done func()) bool
	RecvVC(l, vc int, n int, done func([]byte)) bool
}

var (
	_ Fabric             = (*Engine)(nil)
	_ Transfer           = (*Engine)(nil)
	_ Reliability        = (*Engine)(nil)
	_ Liveness           = (*Engine)(nil)
	_ Streamer           = (*Engine)(nil)
	_ Multiplexer        = (*Engine)(nil)
	_ core.External      = (*Engine)(nil)
	_ core.FlowExternal  = (*Engine)(nil)
	_ core.VChanExternal = (*Engine)(nil)
)
