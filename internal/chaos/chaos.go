// Package chaos is the campaign harness for the self-healing network
// stack: it generates seeded random fault plans over fixed topologies,
// runs them against the routing layer, and checks the invariants the
// stack promises — no lost, duplicated or misordered end-to-end
// message while a path survives, a clean watchdog after quiesce, and
// byte-identical outcomes at any worker count.  A failing plan is
// automatically shrunk to a minimal reproducing rule set and rendered
// as a topology file that replays under tnet.
//
// Everything derives from one seed, so a campaign verdict is a fact
// about the code, not about the weather: `tchaos -seed 17` fails
// identically on every machine until the bug is fixed.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"transputer/internal/core"
	"transputer/internal/fault"
	"transputer/internal/network"
	"transputer/internal/route"
	"transputer/internal/sim"
)

// Topologies returns the names the harness knows how to build.
func Topologies() []string { return []string{"ring8", "grid3x3"} }

// Scenario is one complete, reproducible chaos run: a topology, the
// generated fault rules, and the message load.
type Scenario struct {
	Topo     string
	Seed     uint64
	Rules    []fault.Rule
	Messages []network.MessageSpec
	RunLimit sim.Time
}

// Result is the verdict on one scenario.
type Result struct {
	Scenario Scenario
	// Failures lists every violated invariant (empty on a clean run).
	Failures []string
	// Shrunk is the minimal failing rule set (nil on a clean run): the
	// same scenario with every rule removed whose absence keeps at
	// least one invariant failing.
	Shrunk *Scenario
}

// Ok reports a clean run.
func (r *Result) Ok() bool { return len(r.Failures) == 0 }

// rng is the same splitmix64 stream the fault package uses, so chaos
// campaigns stay reproducible independent of the standard library.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
func (r *rng) dur(lo, hi sim.Time) sim.Time {
	return lo + sim.Time(r.next()%uint64(hi-lo))
}

// topoShape describes a buildable topology: node names and connections.
type topoShape struct {
	nodes []string
	conns []network.Connection
}

func shape(topo string) (topoShape, error) {
	switch topo {
	case "ring8":
		var t topoShape
		for i := 0; i < 8; i++ {
			t.nodes = append(t.nodes, fmt.Sprintf("n%d", i))
		}
		for i := 0; i < 8; i++ {
			t.conns = append(t.conns, network.Connection{
				A: t.nodes[i], ALink: 0, B: t.nodes[(i+1)%8], BLink: 1})
		}
		return t, nil
	case "grid3x3":
		var t topoShape
		name := func(y, x int) string { return fmt.Sprintf("n%d%d", y, x) }
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				t.nodes = append(t.nodes, name(y, x))
			}
		}
		// link 0 east, 1 west, 2 south, 3 north
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				if x+1 < 3 {
					t.conns = append(t.conns, network.Connection{
						A: name(y, x), ALink: 0, B: name(y, x+1), BLink: 1})
				}
				if y+1 < 3 {
					t.conns = append(t.conns, network.Connection{
						A: name(y, x), ALink: 2, B: name(y+1, x), BLink: 3})
				}
			}
		}
		return t, nil
	}
	return topoShape{}, fmt.Errorf("chaos: unknown topology %q (want one of %v)", topo, Topologies())
}

// Campaign timing constants.  Faults land early in the run and the
// limit leaves room for the slowest end-to-end replay backoff to fire
// well after the last heal, so an undelivered message means a lost
// path, not a tight schedule.
const (
	faultFrom = 100 * sim.Microsecond
	faultTo   = 1500 * sim.Microsecond
	msgFrom   = 10 * sim.Microsecond
	msgTo     = 2000 * sim.Microsecond
	minOutage = 300 * sim.Microsecond // > 2x the default heartbeat timeout
	runLimit  = 20 * sim.Millisecond
)

// Generate derives a scenario from a topology name and a seed: a
// couple of link cuts, node outages (mostly with recovery), background
// wire noise, and a random message load.  The constraints the network
// layer enforces — one sever per link, one halt/restart cycle per
// node, outages longer than the detection window — are respected by
// construction.
func Generate(topo string, seed uint64) (Scenario, error) {
	t, err := shape(topo)
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{Topo: topo, Seed: seed, RunLimit: runLimit}
	r := &rng{state: seed ^ 0x9e2029c8a7b0f3d1} // decouple from the injector's per-wire streams
	severed := make(map[int]bool)               // connection index
	halted := make(map[string]bool)
	for i := 0; i < r.intn(3); i++ {
		c := r.intn(len(t.conns))
		if severed[c] {
			continue
		}
		severed[c] = true
		sc.Rules = append(sc.Rules, fault.Rule{
			Kind: fault.Sever, Node: t.conns[c].A, Link: t.conns[c].ALink,
			At: r.dur(faultFrom, faultTo)})
	}
	for i := 0; i < r.intn(3); i++ {
		n := t.nodes[r.intn(len(t.nodes))]
		if halted[n] {
			continue
		}
		halted[n] = true
		at := r.dur(faultFrom, faultTo-minOutage)
		sc.Rules = append(sc.Rules, fault.Rule{Kind: fault.Halt, Node: n, Link: -1, At: at})
		if r.float() < 0.75 {
			sc.Rules = append(sc.Rules, fault.Rule{Kind: fault.Restart, Node: n, Link: -1,
				At: at + minOutage + r.dur(0, 800*sim.Microsecond)})
		}
	}
	for i := 0; i < r.intn(3); i++ {
		c := t.conns[r.intn(len(t.conns))]
		sc.Rules = append(sc.Rules, fault.Rule{
			Kind: fault.Jitter, Node: c.A, Link: c.ALink,
			Rate: r.float() * 0.5, Max: r.dur(sim.Microsecond, 12*sim.Microsecond)})
	}
	for i := 0; i < r.intn(3); i++ {
		c := t.conns[r.intn(len(t.conns))]
		sc.Rules = append(sc.Rules, fault.Rule{
			Kind: fault.Drop, Node: c.B, Link: c.BLink,
			Rate: r.float() * 0.25, Pkt: fault.AnyPacket})
	}
	for i := 0; i < r.intn(2); i++ {
		c := t.conns[r.intn(len(t.conns))]
		sc.Rules = append(sc.Rules, fault.Rule{
			Kind: fault.Corrupt, Node: c.A, Link: c.ALink, Rate: r.float() * 0.15})
	}
	for i, n := 0, 10+r.intn(15); i < n; i++ {
		from := t.nodes[r.intn(len(t.nodes))]
		to := t.nodes[r.intn(len(t.nodes))]
		if from == to {
			continue
		}
		sc.Messages = append(sc.Messages, network.MessageSpec{
			From: from, To: to, At: r.dur(msgFrom, msgTo),
			Data: fmt.Sprintf("m%d", i)})
	}
	return sc, nil
}

// outcome is everything a single execution yields that the invariant
// checks inspect.
type outcome struct {
	deliveries  []route.Delivery
	injected    []*route.Injected
	undelivered int
	watchdog    *network.WatchdogReport
	settled     bool
}

// execute builds a fresh system for the scenario and runs it to
// quiescence with the given worker count.
func execute(sc Scenario, workers int) (*outcome, error) {
	t, err := shape(sc.Topo)
	if err != nil {
		return nil, err
	}
	s := network.NewSystem()
	s.SetWorkers(workers)
	byName := make(map[string]*network.Node)
	for _, name := range t.nodes {
		n, err := s.AddTransputer(name, core.T424().WithMemory(64*1024))
		if err != nil {
			return nil, err
		}
		byName[name] = n
	}
	for _, c := range t.conns {
		if err := s.Connect(byName[c.A], c.ALink, byName[c.B], c.BLink); err != nil {
			return nil, err
		}
	}
	s.SetLinkMode(network.LinkMode{Reliable: true})
	s.SetHeartbeat(0, 0)
	r, err := route.Attach(s, route.Config{})
	if err != nil {
		return nil, err
	}
	if err := s.ApplyFaults(fault.Plan{Seed: sc.Seed, Rules: sc.Rules}); err != nil {
		return nil, err
	}
	for _, m := range sc.Messages {
		if _, err := r.SendAt(m.At, m.From, m.To, []byte(m.Data)); err != nil {
			return nil, err
		}
	}
	rep := s.Run(sc.RunLimit)
	r.Stop()
	s.StopHeartbeats()
	rep = s.Continue(rep.Time + 4*sim.Millisecond)
	return &outcome{
		deliveries:  r.AllDeliveries(),
		injected:    r.Injected(),
		undelivered: r.Undelivered(),
		watchdog:    s.Watchdog(),
		settled:     rep.Settled,
	}, nil
}

// check runs the invariant battery over one execution's outcome.
func check(sc Scenario, o *outcome) []string {
	var fails []string
	if !o.settled {
		fails = append(fails, "system did not settle within the drain window")
	}
	// Exactly-once: no delivery may repeat.
	type key struct {
		from, to string
		seq      uint32
	}
	count := make(map[key]int)
	for _, d := range o.deliveries {
		count[key{d.Origin, d.Dest, d.Seq}]++
	}
	for k, n := range count {
		if n > 1 {
			fails = append(fails, fmt.Sprintf("message %s->%s seq %d delivered %d times", k.from, k.to, k.seq, n))
		}
	}
	// In order: per (origin, dest) stream, sequences must be delivered
	// ascending by one.
	last := make(map[[2]string]int64)
	for _, d := range o.deliveries {
		sk := [2]string{d.Origin, d.Dest}
		if prev, ok := last[sk]; ok && int64(d.Seq) != prev+1 {
			fails = append(fails, fmt.Sprintf("stream %s->%s: seq %d after %d", d.Origin, d.Dest, d.Seq, prev))
		}
		last[sk] = int64(d.Seq)
	}
	// No loss while a path survives: an accepted message may go
	// undelivered only when its origin or destination is dead at the
	// end, or the final topology disconnects them.
	if o.undelivered > 0 {
		dead, comp := finalTopology(sc)
		got := make(map[key]bool)
		for _, d := range o.deliveries {
			got[key{d.Origin, d.Dest, d.Seq}] = true
		}
		for _, in := range o.injected {
			if !in.Accepted || got[key{in.From, in.To, in.Seq}] {
				continue
			}
			switch {
			case dead[in.From], dead[in.To]:
				// a dead endpoint excuses the loss
			case comp[in.From] != comp[in.To]:
				// partitioned for good
			default:
				fails = append(fails, fmt.Sprintf(
					"message %s->%s seq %d lost although both ends are alive and connected",
					in.From, in.To, in.Seq))
			}
		}
	}
	// Clean watchdog: after quiesce nothing may be blocked, no link may
	// be stuck DOWN, no host stalled.
	if o.watchdog != nil {
		fails = append(fails, fmt.Sprintf("watchdog not clean:\n%s", o.watchdog))
	}
	return fails
}

// finalTopology reports which nodes the plan leaves dead and a
// connected-component label for every node over the surviving links.
func finalTopology(sc Scenario) (dead map[string]bool, comp map[string]int) {
	dead = make(map[string]bool)
	for _, r := range sc.Rules {
		switch r.Kind {
		case fault.Halt:
			dead[r.Node] = true
		case fault.Restart:
			delete(dead, r.Node)
		}
	}
	t, _ := shape(sc.Topo)
	cut := make(map[int]bool)
	for ci, c := range t.conns {
		for _, r := range sc.Rules {
			if r.Kind != fault.Sever {
				continue
			}
			if (r.Node == c.A && r.Link == c.ALink) || (r.Node == c.B && r.Link == c.BLink) {
				cut[ci] = true
			}
		}
	}
	adj := make(map[string][]string)
	for ci, c := range t.conns {
		if cut[ci] || dead[c.A] || dead[c.B] {
			continue
		}
		adj[c.A] = append(adj[c.A], c.B)
		adj[c.B] = append(adj[c.B], c.A)
	}
	comp = make(map[string]int)
	label := 0
	for _, n := range t.nodes {
		if _, seen := comp[n]; seen || dead[n] {
			continue
		}
		label++
		q := []string{n}
		comp[n] = label
		for len(q) > 0 {
			x := q[0]
			q = q[1:]
			for _, y := range adj[x] {
				if _, seen := comp[y]; !seen {
					comp[y] = label
					q = append(q, y)
				}
			}
		}
	}
	return dead, comp
}

// Run executes one scenario: generate nothing (the scenario is given),
// check the invariants at one worker, check worker-count determinism
// against `workers`, and shrink on failure.
func Run(sc Scenario, workers int) (*Result, error) {
	res := &Result{Scenario: sc}
	fails, err := evaluate(sc, workers)
	if err != nil {
		return nil, err
	}
	res.Failures = fails
	if len(fails) > 0 {
		shrunk, err := Shrink(sc, workers)
		if err != nil {
			return nil, err
		}
		res.Shrunk = &shrunk
	}
	return res, nil
}

// evaluate runs the full invariant battery on a scenario: the
// single-worker execution is checked directly, and the multi-worker
// execution must match it byte for byte.
func evaluate(sc Scenario, workers int) ([]string, error) {
	one, err := execute(sc, 1)
	if err != nil {
		return nil, err
	}
	fails := check(sc, one)
	if workers > 1 {
		many, err := execute(sc, workers)
		if err != nil {
			return nil, err
		}
		if a, b := serialize(one.deliveries), serialize(many.deliveries); a != b {
			fails = append(fails, fmt.Sprintf(
				"outcome differs between 1 and %d workers:\n--- workers=1\n%s--- workers=%d\n%s",
				workers, a, workers, b))
		}
	}
	return fails, nil
}

// serialize renders deliveries into the canonical byte-comparable
// form used by the determinism invariant.
func serialize(ds []route.Delivery) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%s %s %d %d %q\n", d.Origin, d.Dest, d.Seq, d.At, d.Payload)
	}
	return b.String()
}

// Shrink minimizes a failing scenario's rule set: repeatedly drop any
// rule whose removal keeps the scenario failing, until no single
// removal does.  A halt is dropped together with its restart, keeping
// every intermediate plan valid.  Messages are left untouched — the
// bug is in the rules' interaction, and the load documents it.
func Shrink(sc Scenario, workers int) (Scenario, error) {
	cur := sc
	for {
		removed := false
		for i := 0; i < len(cur.Rules); i++ {
			cand := cur
			cand.Rules = dropRule(cur.Rules, i)
			fails, err := evaluate(cand, workers)
			if err != nil {
				return sc, err
			}
			if len(fails) > 0 {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur, nil
		}
	}
}

// dropRule removes rule i, taking a dependent restart along with its
// halt.
func dropRule(rules []fault.Rule, i int) []fault.Rule {
	victim := rules[i]
	out := make([]fault.Rule, 0, len(rules))
	for j, r := range rules {
		if j == i {
			continue
		}
		if victim.Kind == fault.Halt && r.Kind == fault.Restart && r.Node == victim.Node {
			continue
		}
		out = append(out, r)
	}
	return out
}

// TopologyFile renders the scenario as a tnet topology file, so a
// failing plan replays outside the harness:
//
//	tnet shrunk.tnet   # exits nonzero with the same violation
func (sc Scenario) TopologyFile() string {
	t, _ := shape(sc.Topo)
	var b strings.Builder
	fmt.Fprintf(&b, "# chaos scenario: topo=%s seed=%d\n", sc.Topo, sc.Seed)
	fmt.Fprintf(&b, "# regenerate: tchaos -topo %s -seed %d\n\n", sc.Topo, sc.Seed)
	for _, n := range t.nodes {
		fmt.Fprintf(&b, "transputer %s t424 mem=64K\n", n)
	}
	b.WriteString("\n")
	for _, c := range t.conns {
		fmt.Fprintf(&b, "connect %s.%d %s.%d\n", c.A, c.ALink, c.B, c.BLink)
	}
	b.WriteString("\nlinkmode reliable\nheartbeat interval=20us timeout=100us\nroute\n\n")
	msgs := append([]network.MessageSpec(nil), sc.Messages...)
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].At < msgs[j].At })
	for _, m := range msgs {
		fmt.Fprintf(&b, "message %s %s at=%dns data=%s\n", m.From, m.To, m.At, m.Data)
	}
	fmt.Fprintf(&b, "\nseed %d\n", sc.Seed)
	for _, r := range sc.Rules {
		switch r.Kind {
		case fault.Sever:
			fmt.Fprintf(&b, "fault sever %s.%d at=%dns\n", r.Node, r.Link, r.At)
		case fault.Halt:
			fmt.Fprintf(&b, "fault halt %s at=%dns\n", r.Node, r.At)
		case fault.Restart:
			fmt.Fprintf(&b, "fault restart %s at=%dns\n", r.Node, r.At)
		case fault.Jitter:
			fmt.Fprintf(&b, "fault jitter %s.%d rate=%g max=%dns\n", r.Node, r.Link, r.Rate, r.Max)
		case fault.Drop:
			fmt.Fprintf(&b, "fault drop %s.%d rate=%g pkt=any\n", r.Node, r.Link, r.Rate)
		case fault.Corrupt:
			fmt.Fprintf(&b, "fault corrupt %s.%d rate=%g\n", r.Node, r.Link, r.Rate)
		}
	}
	fmt.Fprintf(&b, "run %dns\n", sc.RunLimit)
	return b.String()
}
