package chaos

import (
	"strings"
	"testing"

	"transputer/internal/fault"
	"transputer/internal/network"
	"transputer/internal/sim"
)

// TestGenerateDeterministic: a scenario is a pure function of
// (topology, seed).
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("ring8", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate("ring8", 7)
	if len(a.Rules) != len(b.Rules) || len(a.Messages) != len(b.Messages) {
		t.Fatalf("same seed, different scenarios: %+v vs %+v", a, b)
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			t.Errorf("rule %d differs: %+v vs %+v", i, a.Rules[i], b.Rules[i])
		}
	}
	c, _ := Generate("ring8", 8)
	if len(a.Rules) == len(c.Rules) && len(a.Messages) == len(c.Messages) {
		same := true
		for i := range a.Rules {
			if a.Rules[i] != c.Rules[i] {
				same = false
			}
		}
		if same && len(a.Rules) > 0 {
			t.Error("different seeds produced identical rule sets")
		}
	}
}

// TestGenerateRespectsConstraints: generated plans obey the rules the
// network layer enforces, across many seeds.
func TestGenerateRespectsConstraints(t *testing.T) {
	for _, topo := range Topologies() {
		for seed := uint64(1); seed <= 200; seed++ {
			sc, err := Generate(topo, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := (fault.Plan{Seed: seed, Rules: sc.Rules}).Validate(); err != nil {
				t.Errorf("%s seed %d: invalid plan: %v", topo, seed, err)
			}
			halts := make(map[string]sim.Time)
			for _, r := range sc.Rules {
				if r.Kind == fault.Halt {
					halts[r.Node] = r.At
				}
			}
			for _, r := range sc.Rules {
				if r.Kind == fault.Restart {
					if r.At-halts[r.Node] < minOutage {
						t.Errorf("%s seed %d: outage of %q too short: %v",
							topo, seed, r.Node, r.At-halts[r.Node])
					}
				}
			}
		}
	}
}

// TestCampaignSmoke runs a few seeds end to end on both topologies,
// with the worker-count determinism cross-check on.
func TestCampaignSmoke(t *testing.T) {
	for _, topo := range Topologies() {
		for seed := uint64(1); seed <= 5; seed++ {
			sc, err := Generate(topo, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Errorf("%s seed %d failed:\n  %s", topo, seed,
					strings.Join(res.Failures, "\n  "))
			}
		}
	}
}

// TestTopologyFileReplays: the artifact a failing scenario writes must
// parse as a valid tnet topology carrying the same campaign.
func TestTopologyFileReplays(t *testing.T) {
	sc, err := Generate("grid3x3", 3)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := network.ParseTopology(sc.TopologyFile())
	if err != nil {
		t.Fatalf("rendered topology does not parse: %v\n%s", err, sc.TopologyFile())
	}
	if len(topo.Faults) != len(sc.Rules) {
		t.Errorf("rendered %d rules, scenario has %d", len(topo.Faults), len(sc.Rules))
	}
	if len(topo.Messages) != len(sc.Messages) {
		t.Errorf("rendered %d messages, scenario has %d", len(topo.Messages), len(sc.Messages))
	}
	if !topo.Route.Enabled || !topo.Heartbeat.Set || !topo.LinkMode.Reliable {
		t.Error("rendered topology is missing the self-healing directives")
	}
	if topo.Seed != sc.Seed || topo.RunLimit != sc.RunLimit {
		t.Errorf("seed/limit lost in rendering: %d/%v", topo.Seed, topo.RunLimit)
	}
}

// TestDropRule: removing a halt takes its restart along.
func TestDropRule(t *testing.T) {
	rules := []fault.Rule{
		{Kind: fault.Sever, Node: "a", Link: 0, At: 1},
		{Kind: fault.Halt, Node: "b", Link: -1, At: 2},
		{Kind: fault.Restart, Node: "b", Link: -1, At: 500},
	}
	got := dropRule(rules, 1)
	if len(got) != 1 || got[0].Kind != fault.Sever {
		t.Errorf("dropRule(halt) = %+v, want just the sever", got)
	}
	got = dropRule(rules, 2)
	if len(got) != 2 {
		t.Errorf("dropRule(restart) = %+v, want sever+halt", got)
	}
}

// TestFinalTopology: the loss-excuse computation understands death and
// partition.
func TestFinalTopology(t *testing.T) {
	sc := Scenario{Topo: "ring8", Rules: []fault.Rule{
		{Kind: fault.Halt, Node: "n3", Link: -1, At: 100},
		{Kind: fault.Halt, Node: "n6", Link: -1, At: 100},
		{Kind: fault.Restart, Node: "n6", Link: -1, At: 5000},
	}}
	dead, comp := finalTopology(sc)
	if !dead["n3"] || dead["n6"] {
		t.Errorf("dead = %v", dead)
	}
	// n3 dead splits the ring into one arc: n4..n2 the long way round.
	if comp["n2"] != comp["n4"] {
		t.Error("ring minus one node should stay connected")
	}
	// Cutting a second, non-adjacent point partitions the arc.
	sc.Rules = append(sc.Rules, fault.Rule{Kind: fault.Sever, Node: "n0", Link: 0, At: 100})
	_, comp = finalTopology(sc)
	if comp["n1"] == comp["n7"] {
		t.Error("severed arc should be partitioned")
	}
}
