// Fixture: a package outside the deterministic set is not checked.
package other

func Free(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	select {}
	return s
}
