// Fixture for detrange: this package path counts as deterministic.
package core

import "sort"

func badHash(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map: iteration order is runtime-random`
		total = total*31 + v
	}
	return total
}

func goodSum(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative integer accumulation
		total += v
	}
	return total
}

func badFloatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map: iteration order is runtime-random`
		total += v // float addition is order-sensitive
	}
	return total
}

func goodCollectSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodCollectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func badCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map: iteration order is runtime-random`
		keys = append(keys, k)
	}
	return keys
}

func goodSetBuild(m map[string]int, dead map[string]bool) map[string]bool {
	set := map[string]bool{}
	for k := range m {
		set[k] = true
		delete(dead, k)
	}
	return set
}

func goodCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

func suppressed(m map[string]int) string {
	s := ""
	//tvet:ignore detrange fixture demonstrating an accepted suppression
	for k := range m {
		s += k
	}
	return s
}

func badSelect(a, b chan int) int {
	select { // want `select over 2 channels picks at random`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func goodSelectDefault(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

type path struct {
	indirect bool
	delta    int
}

// goodIfElseRebuild mirrors occam's enterStatic: a map-to-map rebuild
// where both branches of the if/else are keyed map writes.
func goodIfElseRebuild(old map[int]path, delta int) map[int]path {
	np := make(map[int]path, len(old))
	for k, p := range old {
		if p.indirect {
			np[k] = path{indirect: true, delta: p.delta}
		} else {
			np[k] = path{delta: p.delta - delta}
		}
	}
	return np
}

func badIfElse(m map[string]int) string {
	s := ""
	n := 0
	for k, v := range m { // want `range over map`
		if v > 0 {
			n += v
		} else {
			s += k
		}
	}
	_ = n
	return s
}
