package detrange_test

import (
	"testing"

	"transputer/internal/analysis/atest"
	"transputer/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	atest.Run(t, atest.TestData(t), detrange.Analyzer,
		"transputer/internal/core", "other")
}
