// Package detrange flags iteration order the simulator does not own:
// range over a map, and select over several channels, inside the
// deterministic packages.
//
// Map iteration order is randomized by the runtime, and a select with
// several ready channels picks uniformly at random — both feed
// scheduler- or hash-dependent order straight into code whose outputs
// are pinned byte-identical across worker counts and partitions.  A
// map range is allowed when its body is provably order-insensitive
// (commutative accumulation, map/set writes) or when it only collects
// keys that a later statement of the same function sorts.  Anything
// else needs a sort or a //tvet:ignore with a reason.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"transputer/internal/analysis/tvetutil"
)

const doc = `flag range over maps and multi-way selects in deterministic packages

Map iteration order and multi-channel select order are runtime-random.
In the deterministic packages (core, sim, network, link, route, occam)
they leak nondeterminism into outputs that are pinned byte-identical
across worker counts, partitions and the block cache.  Sort the keys
first, restructure, or suppress with //tvet:ignore detrange <reason>.`

// Analyzer is the detrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !tvetutil.IsDetPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	ig := tvetutil.NewIgnorer(pass)
	tvetutil.WalkFiles(pass, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(v.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, v, stack) {
				return true
			}
			tvetutil.Report(pass, ig, v.Pos(),
				"range over map: iteration order is runtime-random in a deterministic package; sort the keys first (or //tvet:ignore detrange <reason>)")
		case *ast.SelectStmt:
			comms := 0
			for _, cl := range v.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				tvetutil.Report(pass, ig, v.Pos(),
					"select over %d channels picks at random when several are ready; deterministic packages must impose their own order", comms)
			}
		}
		return true
	})
	return nil, nil
}

// orderInsensitive reports whether the range body cannot observe the
// iteration order: every statement is commutative accumulation, a
// map/set write, or an append whose slice a later statement of the
// same function sorts.
func orderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	var appended []*ast.Ident
	if !insensitiveStmts(pass, rs.Body.List, &appended) {
		return false
	}
	if len(appended) == 0 {
		return true
	}
	// Collect-then-sort: every appended slice must be sorted (or
	// handed to a sorting call) after the loop, inside the enclosing
	// function.
	fn := enclosingFuncBody(stack)
	if fn == nil {
		return false
	}
	for _, id := range appended {
		if !sortedAfter(pass, fn, id, rs.End()) {
			return false
		}
	}
	return true
}

func insensitiveStmts(pass *analysis.Pass, stmts []ast.Stmt, appended *[]*ast.Ident) bool {
	for _, s := range stmts {
		if !insensitiveStmt(pass, s, appended) {
			return false
		}
	}
	return true
}

func insensitiveStmt(pass *analysis.Pass, s ast.Stmt, appended *[]*ast.Ident) bool {
	switch v := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.BranchStmt:
		return v.Tok == token.CONTINUE || v.Tok == token.BREAK
	case *ast.ExprStmt:
		// delete(m, k) is commutative; nothing else is known to be.
		call, ok := v.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && isBuiltin(pass, id) {
			return true
		}
		return false
	case *ast.IfStmt:
		if v.Init != nil {
			return false
		}
		if !insensitiveStmts(pass, v.Body.List, appended) {
			return false
		}
		switch e := v.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return insensitiveStmts(pass, e.List, appended)
		case *ast.IfStmt:
			return insensitiveStmt(pass, e, appended)
		}
		return false
	case *ast.AssignStmt:
		if len(v.Lhs) != 1 || len(v.Rhs) != 1 {
			return false
		}
		switch v.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative only over integers: string += and float +=
			// depend on order (concatenation, rounding).
			t := pass.TypesInfo.TypeOf(v.Lhs[0])
			if t == nil {
				return false
			}
			b, ok := t.Underlying().(*types.Basic)
			return ok && b.Info()&types.IsInteger != 0
		case token.ASSIGN:
			// m[k] = v: map writes commute when each key is visited once.
			if _, ok := v.Lhs[0].(*ast.IndexExpr); ok {
				idx := v.Lhs[0].(*ast.IndexExpr)
				if t := pass.TypesInfo.TypeOf(idx.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return true
					}
				}
				return false
			}
			// s = append(s, ...): allowed if s is sorted after the loop.
			id, ok := v.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := v.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" || !isBuiltin(pass, fun) {
				return false
			}
			if len(call.Args) < 1 {
				return false
			}
			if first, ok := call.Args[0].(*ast.Ident); !ok || first.Obj != id.Obj {
				return false
			}
			*appended = append(*appended, id)
			return true
		}
		return false
	}
	return false
}

// sortedAfter reports whether some statement after pos in the function
// body passes the identifier to a sort: sort.X(id...), slices.SortX(id,
// ...), or a method/function call whose name contains "sort"/"Sort".
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, id *ast.Ident, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.End() <= pos {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(call.Fun) {
			return true
		}
		for _, a := range call.Args {
			if aid, ok := a.(*ast.Ident); ok && aid.Obj == id.Obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isSortCall(fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, ok := sel.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
		return true
	}
	name := sel.Sel.Name
	return name == "Sort" || name == "sort"
}

func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}
