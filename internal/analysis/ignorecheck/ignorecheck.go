// Package ignorecheck keeps the suppression mechanism honest: every
// //tvet:ignore comment must name analyzers that exist and carry a
// non-empty reason.
//
// A suppression is a recorded decision; without a reason it is just a
// muted alarm.  Reasonless or misspelled ignores do not suppress
// anything (tvetutil refuses them), so this analyzer turns them into
// findings of their own rather than silent no-ops.
package ignorecheck

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"

	"transputer/internal/analysis/tvetutil"
)

const doc = `validate //tvet:ignore suppression comments

Each suppression must have the form
"//tvet:ignore <analyzer>[,<analyzer>...] <reason>" with every named
analyzer part of the tvet suite ("all" matches any) and a non-empty
reason.  Malformed suppressions silence nothing and are flagged here.`

// Analyzer is the ignorecheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ignorecheck",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check(pass, c)
			}
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, c *ast.Comment) {
	ig := tvetutil.ParseIgnore(c)
	if ig == nil {
		return
	}
	if len(ig.Analyzers) == 0 {
		pass.Reportf(c.Pos(), "tvet:ignore without an analyzer name: use //tvet:ignore <analyzer> <reason>")
		return
	}
	for _, n := range ig.Analyzers {
		if n != "all" && !tvetutil.KnownAnalyzer(n) {
			pass.Reportf(c.Pos(), "tvet:ignore names unknown analyzer %q (known: %v)", n, tvetutil.AnalyzerNames)
		}
	}
	if ig.Reason == "" {
		pass.Reportf(c.Pos(), "tvet:ignore without a reason suppresses nothing: state why the finding is safe")
	}
}
