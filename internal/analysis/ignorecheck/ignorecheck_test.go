package ignorecheck_test

import (
	"testing"

	"transputer/internal/analysis/atest"
	"transputer/internal/analysis/ignorecheck"
)

func TestIgnorecheck(t *testing.T) {
	atest.Run(t, atest.TestData(t), ignorecheck.Analyzer, "ic")
}
