// Fixture for ignorecheck: suppression comments must be well-formed.
package ic

func wellFormed() {
	//tvet:ignore detrange keys are sorted two lines below
	_ = 0
}

func unknownName() {
	//tvet:ignore badname misspelled analyzer
	_ = 0 // want-1 `tvet:ignore names unknown analyzer "badname"`
}

func noReason() {
	//tvet:ignore detrange
	_ = 0 // want-1 `tvet:ignore without a reason suppresses nothing`
}

func noAnalyzer() {
	//tvet:ignore
	_ = 0 // want-1 `tvet:ignore without an analyzer name`
}

func allAnalyzers() {
	//tvet:ignore all fixture file, every analyzer silenced
	_ = 0
}

func commaList() {
	//tvet:ignore detrange,probeguard one comment may cover several analyzers
	_ = 0
}
