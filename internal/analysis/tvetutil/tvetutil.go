// Package tvetutil carries the machinery shared by the tvet analyzers:
// the set of deterministic packages, the //tvet:ignore suppression
// convention, and small AST helpers.
//
// Deterministic packages are the ones whose observable outputs (traces,
// stats, flow tables, tool output) are pinned byte-identical across
// worker counts, partitions and the block cache.  Code in them must not
// consult any order or clock the simulation does not own: map iteration
// order, wall clocks, the process environment, or the global random
// source.  The analyzers in the sibling packages mechanize those rules;
// this package decides where they apply and how a finding is silenced.
//
// Suppression: a finding is silenced by a comment of the form
//
//	//tvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line, on the line directly above it, or in the doc
// comment of the enclosing function (which silences the whole function).
// The reason is mandatory; a bare //tvet:ignore never suppresses
// anything and is itself flagged by the ignorecheck analyzer.
package tvetutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IgnoreMarker is the comment prefix that silences a tvet finding.
const IgnoreMarker = "//tvet:ignore"

// AnalyzerNames lists every analyzer in the tvet suite.  The registry
// test asserts it matches the registered analyzers; ignorecheck uses it
// to reject suppressions naming analyzers that do not exist.
var AnalyzerNames = []string{
	"cyclefree",
	"detrange",
	"ignorecheck",
	"nondetsource",
	"probeguard",
	"shardring",
}

// KnownAnalyzer reports whether name is an analyzer of the suite.
func KnownAnalyzer(name string) bool {
	for _, n := range AnalyzerNames {
		if n == name {
			return true
		}
	}
	return false
}

// detPackages is the set of import paths whose code must behave
// deterministically (see the package comment).
var detPackages = map[string]bool{
	"transputer/internal/core":    true,
	"transputer/internal/sim":     true,
	"transputer/internal/network": true,
	"transputer/internal/link":    true,
	"transputer/internal/route":   true,
	"transputer/internal/occam":   true,
}

// IsDetPackage reports whether the import path names a deterministic
// package.  The ".test" and "_test" variants vet constructs for test
// runs count as their base package; test files themselves are excluded
// separately (see InTestFile).
func IsDetPackage(path string) bool {
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return detPackages[path]
}

// InTestFile reports whether pos lies in a _test.go file.  Tests may
// range over maps and read clocks freely: determinism rules bind the
// simulator, not its proofs.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Ignore is one parsed //tvet:ignore comment.
type Ignore struct {
	Analyzers []string // analyzer names the comment silences
	Reason    string   // non-empty free text; empty marks a malformed comment
	Pos       token.Pos
}

// ParseIgnore parses a comment's text.  It returns nil if the comment
// is not a tvet:ignore marker at all, and a (possibly malformed — no
// analyzers or no reason) Ignore otherwise.
func ParseIgnore(c *ast.Comment) *Ignore {
	if !strings.HasPrefix(c.Text, IgnoreMarker) {
		return nil
	}
	rest := strings.TrimPrefix(c.Text, IgnoreMarker)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // some other word: //tvet:ignoreXYZ
	}
	ig := &Ignore{Pos: c.Pos()}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ig
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			ig.Analyzers = append(ig.Analyzers, n)
		}
	}
	ig.Reason = strings.Join(fields[1:], " ")
	return ig
}

func (ig *Ignore) covers(name string) bool {
	if ig.Reason == "" {
		return false // a reasonless suppression suppresses nothing
	}
	for _, n := range ig.Analyzers {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}

// span is a suppressed position range (func-level suppressions).
type span struct {
	lo, hi token.Pos
	ig     *Ignore
}

// Ignorer indexes the //tvet:ignore comments of one pass.
type Ignorer struct {
	fset   *token.FileSet
	byLine map[string][]*Ignore // "file:line" of the lines a comment covers
	spans  []span
}

// NewIgnorer scans the files of a pass for suppression comments.  A
// line comment covers its own line and the next; a comment inside a
// function declaration's doc group covers the whole function.
func NewIgnorer(pass *analysis.Pass) *Ignorer {
	in := &Ignorer{fset: pass.Fset, byLine: map[string][]*Ignore{}}
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		docs := map[*ast.CommentGroup]bool{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				docs[fd.Doc] = true
				for _, c := range fd.Doc.List {
					if ig := ParseIgnore(c); ig != nil {
						in.spans = append(in.spans, span{fd.Pos(), fd.End(), ig})
					}
				}
			}
		}
		for _, cg := range f.Comments {
			if docs[cg] {
				continue
			}
			for _, c := range cg.List {
				ig := ParseIgnore(c)
				if ig == nil {
					continue
				}
				line := pass.Fset.Position(c.Pos()).Line
				for _, l := range []int{line, line + 1} {
					key := lineKey(fname, l)
					in.byLine[key] = append(in.byLine[key], ig)
				}
			}
		}
	}
	return in
}

func lineKey(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// Small manual itoa keeps this allocation-light; lines are small.
	var buf [12]byte
	i := len(buf)
	n := line
	if n == 0 {
		i--
		buf[i] = '0'
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	b.Write(buf[i:])
	return b.String()
}

// Suppressed reports whether a finding of the named analyzer at pos is
// silenced by an ignore comment.
func (in *Ignorer) Suppressed(name string, pos token.Pos) bool {
	p := in.fset.Position(pos)
	for _, ig := range in.byLine[lineKey(p.Filename, p.Line)] {
		if ig.covers(name) {
			return true
		}
	}
	for _, s := range in.spans {
		if s.lo <= pos && pos < s.hi && s.ig.covers(name) {
			return true
		}
	}
	return false
}

// Report emits a diagnostic unless it is suppressed or sits in a test
// file.
func Report(pass *analysis.Pass, in *Ignorer, pos token.Pos, format string, args ...interface{}) {
	if InTestFile(pass.Fset, pos) || in.Suppressed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// IsPtrToNamed reports whether t is a pointer to the named type
// pkgpath.name.
func IsPtrToNamed(t types.Type, pkgpath, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgpath
}

// IsNamed reports whether t (after pointer stripping) is the named type
// pkgpath.name.
func IsNamed(t types.Type, pkgpath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgpath
}

// WalkFiles runs fn over every non-test syntax tree of the pass with a
// stack of enclosing nodes: stack[0] is the file, stack[len-1] the node
// itself.  Return false from fn to skip the node's children.
func WalkFiles(pass *analysis.Pass, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// Children skipped: pop now, the nil callback will not come.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// ProbePath is the import path of the probe package whose Bus the
// probeguard and cyclefree analyzers reason about.
const ProbePath = "transputer/internal/probe"
