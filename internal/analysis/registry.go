// Package analysis assembles the tvet suite: custom go/analysis
// analyzers that mechanize the simulator's determinism and protocol
// invariants (see DESIGN.md §15).
//
// The suite runs as a vet tool:
//
//	go build -o tvet ./cmd/tvet
//	go vet -vettool=$PWD/tvet ./...
//
// Each analyzer encodes a rule this repo already relies on — byte-
// identical outputs across workers/partitions/block cache, the
// nil-bus zero-overhead contract, cycle-stamp-free link events, the
// sender-owned same-shard delivery ring — so the rules hold at compile
// time instead of by convention.
package analysis

import (
	goanalysis "golang.org/x/tools/go/analysis"

	"transputer/internal/analysis/cyclefree"
	"transputer/internal/analysis/detrange"
	"transputer/internal/analysis/ignorecheck"
	"transputer/internal/analysis/nondetsource"
	"transputer/internal/analysis/probeguard"
	"transputer/internal/analysis/shardring"
)

// All is every analyzer of the tvet suite, in name order.
var All = []*goanalysis.Analyzer{
	cyclefree.Analyzer,
	detrange.Analyzer,
	ignorecheck.Analyzer,
	nondetsource.Analyzer,
	probeguard.Analyzer,
	shardring.Analyzer,
}
