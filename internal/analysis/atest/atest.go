// Package atest is a self-contained analysistest replacement: it loads
// GOPATH-style fixture packages from an analyzer's testdata/src tree,
// type-checks them with the stdlib source importer (no network, no
// go/packages), runs the analyzer, and matches diagnostics against
// "// want" comments.
//
// Fixture layout mirrors analysistest:
//
//	<analyzer>/testdata/src/<import/path>/*.go
//
// A fixture line expecting a diagnostic carries a comment of the form
//
//	code() // want `regexp`
//
// Several backquoted regexps may follow one want.  Every diagnostic
// must be matched by a want on its line and every want must match a
// diagnostic; mismatches fail the test with positions.
//
// Fixture imports resolve inside the same testdata tree first (so a
// fixture can stub transputer/internal/probe with just the declarations
// the analyzer reasons about), then fall back to the standard library
// compiled from GOROOT source.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads each fixture package, applies the analyzer, and checks the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := newLoader(testdata)
	for _, path := range pkgpaths {
		t.Run(path, func(t *testing.T) {
			runPkg(t, ld, a, path)
		})
	}
}

func runPkg(t *testing.T, ld *loader, a *analysis.Analyzer, path string) {
	t.Helper()
	pkg, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      pkg.files,
		Pkg:        pkg.types,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	// Run required analyzers first (none of the tvet suite has any, but
	// keep the harness honest for future ones).
	for _, req := range a.Requires {
		res, err := runRequired(ld, pkg, req)
		if err != nil {
			t.Fatalf("running required analyzer %s: %v", req.Name, err)
		}
		pass.ResultOf[req] = res
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	checkWants(t, ld.fset, pkg, diags)
}

func runRequired(ld *loader, pkg *fixturePkg, req *analysis.Analyzer) (interface{}, error) {
	sub := &analysis.Pass{
		Analyzer:   req,
		Fset:       ld.fset,
		Files:      pkg.files,
		Pkg:        pkg.types,
		TypesInfo:  pkg.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report:     func(analysis.Diagnostic) {},
	}
	for _, r := range req.Requires {
		res, err := runRequired(ld, pkg, r)
		if err != nil {
			return nil, err
		}
		sub.ResultOf[r] = res
	}
	return req.Run(sub)
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRE matches "// want `re`..." and the "// want-1" form, which
// expects the diagnostic on the previous line (for diagnostics whose
// position is itself a full-line comment).
var wantRE = regexp.MustCompile("// want(-1)?((?: `[^`]*`)+)")
var backquoted = regexp.MustCompile("`([^`]*)`")

func checkWants(t *testing.T, fset *token.FileSet, pkg *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for fname, src := range pkg.sources {
		for i, line := range strings.Split(src, "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			wline := i + 1
			if m[1] == "-1" {
				wline--
			}
			for _, q := range backquoted.FindAllStringSubmatch(m[2], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", fname, i+1, q[1], err)
				}
				wants = append(wants, &want{file: fname, line: wline, re: re, raw: q[1]})
			}
		}
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.raw)
		}
	}
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	types   *types.Package
	files   []*ast.File
	info    *types.Info
	sources map[string]string // file name -> raw source, for want scanning
}

// loader resolves fixture import paths inside one testdata/src tree,
// falling back to the stdlib source importer.
type loader struct {
	root  string // testdata/src
	fset  *token.FileSet
	cache map[string]*fixturePkg
	std   types.ImporterFrom
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:  filepath.Join(testdata, "src"),
		fset:  fset,
		cache: map[string]*fixturePkg{},
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer for fixture type-checking.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.root, filepath.FromSlash(path)); dirExists(dir) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return ld.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	pkg := &fixturePkg{sources: map[string]string{}}
	for _, name := range names {
		fname := filepath.Join(dir, name)
		src, err := os.ReadFile(fname)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(ld.fset, fname, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.files = append(pkg.files, f)
		pkg.sources[fname] = string(src)
	}

	pkg.info = &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		Instances:    map[*ast.Ident]types.Instance{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, pkg.files, pkg.info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg.types = tpkg
	ld.cache[path] = pkg
	return pkg, nil
}
