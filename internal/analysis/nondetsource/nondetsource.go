// Package nondetsource bans reading nondeterministic inputs — wall
// clocks, the global random source, the process environment — inside
// the deterministic packages.
//
// The simulator owns its clock (sim virtual time) and its entropy
// (seeded splitmix64 plans, internal/fault); anything else makes a run
// unrepeatable.  time.Now and friends, the unseeded package-level
// math/rand functions, and os.Getenv-driven behavior are therefore
// compile-time errors in simulation paths.  Wall-clock diagnostics
// that are documented as partition-dependent (EngineStats) carry a
// //tvet:ignore with that rationale.
package nondetsource

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"transputer/internal/analysis/tvetutil"
)

const doc = `ban wall clocks, unseeded rand and environment reads in deterministic packages

Simulation paths run on virtual time and seeded entropy only: time.Now,
the global math/rand functions and os.Getenv make runs unrepeatable and
break the byte-identity contracts (workers, partitions, block cache).
Use sim virtual clocks and the seeded splitmix64 plans instead, or
suppress a diagnostics-only use with //tvet:ignore nondetsource <reason>.`

// Analyzer is the nondetsource analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nondetsource",
	Doc:  doc,
	Run:  run,
}

// banned maps package path -> function name -> complaint.  An empty
// name set bans every package-level function of the package.
var banned = map[string]map[string]string{
	"time": {
		"Now":       "wall clock",
		"Since":     "wall clock",
		"Until":     "wall clock",
		"After":     "wall-clock timer",
		"Tick":      "wall-clock ticker",
		"NewTimer":  "wall-clock timer",
		"NewTicker": "wall-clock ticker",
		"Sleep":     "wall-clock sleep",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
}

// randAllowed lists the math/rand package-level functions that do not
// consult the unseeded global source.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !tvetutil.IsDetPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	ig := tvetutil.NewIgnorer(pass)
	tvetutil.WalkFiles(pass, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return true // methods: a *rand.Rand is explicitly seeded
		}
		path, name := fn.Pkg().Path(), fn.Name()
		if what, bad := banned[path][name]; bad {
			tvetutil.Report(pass, ig, call.Pos(),
				"%s.%s: %s in a deterministic package; use the sim virtual clock / seeded plans (or //tvet:ignore nondetsource <reason>)",
				path, name, what)
			return true
		}
		if (path == "math/rand" || path == "math/rand/v2") && !randAllowed[name] {
			tvetutil.Report(pass, ig, call.Pos(),
				"%s.%s uses the global random source in a deterministic package; use a seeded source (internal/fault splitmix64)",
				path, name)
		}
		return true
	})
	return nil, nil
}
