// Fixture for nondetsource: this package path counts as deterministic.
package sim

import (
	"math/rand"
	"os"
	"time"
)

func bad() {
	_ = time.Now()        // want `time.Now: wall clock in a deterministic package`
	time.Sleep(1)         // want `time.Sleep: wall-clock sleep`
	_ = rand.Intn(4)      // want `math/rand.Intn uses the global random source`
	_ = rand.Float64()    // want `math/rand.Float64 uses the global random source`
	_ = os.Getenv("HOME") // want `os.Getenv: environment read`
}

func goodSeeded() int64 {
	src := rand.New(rand.NewSource(42))
	return src.Int63()
}

//tvet:ignore nondetsource wall-clock diagnostics only, excluded from observable outputs
func suppressedWall() int64 {
	t0 := time.Now()
	return time.Since(t0).Nanoseconds()
}
