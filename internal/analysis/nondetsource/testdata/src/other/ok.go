// Fixture: packages outside the deterministic set may read clocks.
package other

import "time"

func Free() time.Time { return time.Now() }
