package nondetsource_test

import (
	"testing"

	"transputer/internal/analysis/atest"
	"transputer/internal/analysis/nondetsource"
)

func TestNondetsource(t *testing.T) {
	atest.Run(t, atest.TestData(t), nondetsource.Analyzer,
		"transputer/internal/sim", "other")
}
