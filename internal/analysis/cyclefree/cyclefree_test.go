package cyclefree_test

import (
	"testing"

	"transputer/internal/analysis/atest"
	"transputer/internal/analysis/cyclefree"
)

func TestCyclefree(t *testing.T) {
	atest.Run(t, atest.TestData(t), cyclefree.Analyzer, "cf")
}
