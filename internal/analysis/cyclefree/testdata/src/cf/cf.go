// Fixture for cyclefree: link-clocked events stay cycle-stamp-free.
package cf

import "transputer/internal/probe"

type eng struct{ bus *probe.Bus }

// emit mimics link.Engine.emit: it stamps Cycles unconditionally, so
// link-clocked events must not travel through it.
func (e *eng) emit(ev probe.Event) {
	ev.Cycles = 1
	e.bus.Publish(ev)
}

func (e *eng) goodDirect() {
	if e.bus != nil {
		e.bus.Publish(probe.Event{Kind: probe.FlowArrive, Time: 3})
	}
}

func (e *eng) badCyclesField() {
	if e.bus != nil {
		e.bus.Publish(probe.Event{Kind: probe.FlowArrive, Cycles: 9}) // want `FlowArrive is link-clocked: its Cycles stamp is a block-cache artifact`
	}
}

func (e *eng) badWrapper() {
	e.emit(probe.Event{Kind: probe.Heartbeat}) // want `Heartbeat is link-clocked and must be published directly`
}

func (e *eng) badVChanWrapper() {
	e.emit(probe.Event{Kind: probe.VChanChunk}) // want `VChanChunk is link-clocked and must be published directly`
}

func (e *eng) goodCPUClocked() {
	e.emit(probe.Event{Kind: probe.ProcDispatch})
}

func (e *eng) suppressed() {
	//tvet:ignore cyclefree fixture demonstrating an accepted suppression
	e.emit(probe.Event{Kind: probe.FlowArrive})
}
