// Package cyclefree keeps link-clocked probe events free of machine
// cycle stamps.
//
// The receiving CPU runs asynchronously to its link hardware: what the
// machine cycle counter reads at a wire instant depends on how the
// simulator batched instructions (the block cache, PR 4/5), not on
// architecture.  Events published at link instants — the flow/arrive
// family — therefore must not carry a Cycles stamp, and must go to the
// bus directly rather than through a stamping wrapper like
// link.Engine.emit (which sets Cycles unconditionally).  CPU-clocked
// events (dispatch, preempt, rendezvous) are exact at any batching and
// stay stamped.
package cyclefree

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"transputer/internal/analysis/tvetutil"
)

const doc = `forbid machine cycle stamps on link-clocked probe events

Events of the flow/arrive family (FlowArrive, Heartbeat, the vchan
kinds) are clocked by link hardware, and the CPU cycle counter at those
instants is a block-cache artifact.  Such events must not set the
Cycles field and must be passed directly to (*probe.Bus).Publish, not
to a wrapper that stamps Cycles (link.Engine.emit).`

// Analyzer is the cyclefree analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cyclefree",
	Doc:  doc,
	Run:  run,
}

// family is the set of probe.Kind constants whose events are published
// from link-hardware instants and must stay cycle-stamp-free.
var family = map[string]bool{
	"FlowArrive":   true,
	"Heartbeat":    true,
	"VChanChunk":   true,
	"VChanCredit":  true,
	"VChanDeliver": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ig := tvetutil.NewIgnorer(pass)
	tvetutil.WalkFiles(pass, func(n ast.Node, stack []ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(lit)
		if t == nil || !tvetutil.IsNamed(t, tvetutil.ProbePath, "Event") {
			return true
		}
		kind, _ := literalKind(pass, lit)
		if kind == "" || !family[kind] {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Cycles" {
				tvetutil.Report(pass, ig, kv.Pos(),
					"%s is link-clocked: its Cycles stamp is a block-cache artifact, drop the field", kind)
			}
		}
		// The literal must flow straight into (*probe.Bus).Publish; any
		// other call may stamp Cycles behind our back (Engine.emit does).
		if call, argOf := enclosingCall(stack, lit); call != nil && argOf && !isBusPublish(pass, call) {
			tvetutil.Report(pass, ig, lit.Pos(),
				"%s is link-clocked and must be published directly via (*probe.Bus).Publish, not through a wrapper that may stamp Cycles", kind)
		}
		return true
	})
	return nil, nil
}

// literalKind returns the name of the probe.Kind constant assigned to
// the literal's Kind field, or "" when absent or not a named constant.
func literalKind(pass *analysis.Pass, lit *ast.CompositeLit) (string, ast.Expr) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		switch v := kv.Value.(type) {
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.Uses[v.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == tvetutil.ProbePath {
				return v.Sel.Name, kv.Value
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == tvetutil.ProbePath {
				return v.Name, kv.Value
			}
		}
		return "", kv.Value
	}
	return "", nil
}

// enclosingCall returns the innermost call expression having lit (or a
// unary &lit) as a direct argument.
func enclosingCall(stack []ast.Node, lit *ast.CompositeLit) (*ast.CallExpr, bool) {
	var arg ast.Node = lit
	for i := len(stack) - 2; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.UnaryExpr:
			arg = v
			continue
		case *ast.CallExpr:
			for _, a := range v.Args {
				if a == arg {
					return v, true
				}
			}
			return v, false
		}
		return nil, false
	}
	return nil, false
}

func isBusPublish(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Publish" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && tvetutil.IsPtrToNamed(sig.Recv().Type(), tvetutil.ProbePath, "Bus")
}
