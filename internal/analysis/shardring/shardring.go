// Package shardring polices the sender-owned same-shard delivery ring
// (PR 8).
//
// Wires whose two ends share a fused shard deliver through a
// sender-owned posted-frame FIFO with one cached callback — legal only
// because members of one shard never run concurrently.  Cross-shard
// wires must keep per-frame closures: sharing the ring across shards
// races.  This analyzer requires every touch of the ring state
// (fifoPush, popPosted, popFn, the fifo/fifoHead fields, and sim's
// fused deliverLocal) to sit inside a branch proved same-shard — a
// condition consulting a `fused` flag, a sim.SameShard call, or a
// direct shard-identity comparison (`a.s == b.s` on *sim.Shard).  The
// ring's own helpers, reached only from gated paths, carry function-
// level //tvet:ignore rationales.
package shardring

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"transputer/internal/analysis/tvetutil"
)

const doc = `gate every same-shard delivery-ring access behind a fused/SameShard check

The sender-owned posted-frame FIFO (link.wire fifo, sim deliverLocal)
may be touched only on paths proved same-shard: inside a branch whose
condition reads a "fused" flag, calls sim.SameShard, or compares shard
identities.  Cross-shard paths must use per-frame closures — sharing
the ring races (PR 8).  Ring helpers reached only from gated paths
carry a function-level //tvet:ignore shardring <reason>.`

// Analyzer is the shardring analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "shardring",
	Doc:  doc,
	Run:  run,
}

// checkedPackages limits the rule to the packages that implement the
// engine and its link layer; the ring is not visible elsewhere.
var checkedPackages = map[string]bool{
	"transputer/internal/sim":  true,
	"transputer/internal/link": true,
}

// ringNames are the members whose every use must be same-shard-gated.
var ringNames = map[string]bool{
	"fifoPush":     true,
	"popPosted":    true,
	"popFn":        true,
	"fifo":         true,
	"fifoHead":     true,
	"deliverLocal": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := strings.TrimSuffix(pass.Pkg.Path(), ".test")
	if !checkedPackages[path] {
		return nil, nil
	}
	ig := tvetutil.NewIgnorer(pass)
	tvetutil.WalkFiles(pass, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !ringNames[sel.Sel.Name] {
			return true
		}
		// Only selectors on ring-owning structs count: w.fifo, p.deliverLocal.
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj == nil || obj.Pkg() == nil || !checkedPackages[obj.Pkg().Path()] {
			return true
		}
		if gated(pass, stack) {
			return true
		}
		tvetutil.Report(pass, ig, sel.Pos(),
			"same-shard delivery-ring access (%s) outside a fused/SameShard-gated branch: cross-shard paths must use per-frame closures (PR 8)",
			sel.Sel.Name)
		return true
	})
	return nil, nil
}

// gated reports whether some enclosing if/switch branch within the
// current function is conditioned on a same-shard proof.
func gated(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if i+1 < len(stack) && stack[i+1] == v.Body && sameShardCond(pass, v.Cond) {
				return true
			}
		case *ast.CaseClause:
			// A boolean case of an expressionless switch is the same
			// gate as an if: `switch { case op.s == p.s: ... }`.
			if !tagless(stack, i) {
				continue
			}
			for _, e := range v.List {
				if sameShardCond(pass, e) {
					return true
				}
			}
		}
	}
	return false
}

// tagless reports whether the CaseClause at stack[i] belongs to an
// expressionless switch, where case expressions are boolean guards
// rather than values compared against a tag.
func tagless(stack []ast.Node, i int) bool {
	for j := i - 1; j >= 0; j-- {
		if sw, ok := stack[j].(*ast.SwitchStmt); ok {
			return sw.Tag == nil
		}
	}
	return false
}

// sameShardCond reports whether the condition (possibly an && chain)
// contains a same-shard proof.
func sameShardCond(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SelectorExpr:
			if v.Sel.Name == "fused" {
				found = true
			}
		case *ast.Ident:
			if v.Name == "fused" {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SameShard" {
				found = true
			} else if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "SameShard" {
				found = true
			}
		case *ast.BinaryExpr:
			if v.Op == token.EQL && isShardExpr(pass, v.X) && isShardExpr(pass, v.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isShardExpr reports whether the expression has type *sim.Shard (a
// shard-identity operand of an == comparison).
func isShardExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Shard" && obj.Pkg() != nil && checkedPackages[obj.Pkg().Path()]
}
