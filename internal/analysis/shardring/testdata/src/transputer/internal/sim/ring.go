// Fixture for shardring: sim's fused local delivery needs a same-shard
// proof (shard-identity comparison or SameShard call).
package sim

type Shard struct{ id int }

type Port struct {
	s    *Shard
	xseq uint64
}

type Clock interface{ Now() int64 }

func SameShard(a, b *Port) bool { return a.s == b.s }

func (p *Port) deliverLocal(dst *Port) { p.xseq++ }

func (p *Port) goodIdentityGate(dst *Port) {
	if dst.s == p.s {
		p.deliverLocal(dst)
	}
}

func (p *Port) goodSameShardGate(dst *Port) {
	if SameShard(p, dst) {
		p.deliverLocal(dst)
	}
}

func (p *Port) badUngated(dst *Port) {
	p.deliverLocal(dst) // want `same-shard delivery-ring access \(deliverLocal\)`
}

// goodSwitchGate mirrors Port.Cancel: a boolean case of an
// expressionless switch is the same same-shard proof as an if.
func (p *Port) goodSwitchGate(dst *Port) {
	switch {
	case dst.s == p.s:
		p.deliverLocal(dst)
	default:
	}
}

func (p *Port) badSwitchNoProof(dst *Port, hot bool) {
	switch {
	case hot:
		p.deliverLocal(dst) // want `same-shard delivery-ring access \(deliverLocal\)`
	}
}

func (p *Port) badTaggedSwitch(dst *Port, mode int) {
	switch mode {
	case 1:
		p.deliverLocal(dst) // want `same-shard delivery-ring access \(deliverLocal\)`
	}
}
