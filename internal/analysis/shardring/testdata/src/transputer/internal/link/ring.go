// Fixture for shardring: ring state only behind fused gates.
package link

type postedFrame struct{}

type wire struct {
	fused    bool
	fifo     []postedFrame
	fifoHead int
	popFn    func()
}

//tvet:ignore shardring ring helper, reached only from the fused branch of transmitNext
func (w *wire) fifoPush(f postedFrame) {
	w.fifo = append(w.fifo, f)
}

func (w *wire) popPosted() {
	w.fifo[w.fifoHead] = postedFrame{} // want `same-shard delivery-ring access \(fifo\)` `same-shard delivery-ring access \(fifoHead\)`
	w.fifoHead++                       // want `same-shard delivery-ring access \(fifoHead\)`
}

func (w *wire) goodGatedPush(f postedFrame) {
	if w.fused {
		w.fifoPush(f)
		if w.popFn == nil {
			w.popFn = w.popPosted
		}
	}
}

func (w *wire) badUngatedPush(f postedFrame) {
	w.fifoPush(f) // want `same-shard delivery-ring access \(fifoPush\)`
}

func (w *wire) badWrongGate(f postedFrame, dropped bool) {
	if !dropped {
		w.fifoPush(f) // want `same-shard delivery-ring access \(fifoPush\)`
	}
}
