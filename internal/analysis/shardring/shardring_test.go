package shardring_test

import (
	"testing"

	"transputer/internal/analysis/atest"
	"transputer/internal/analysis/shardring"
)

func TestShardring(t *testing.T) {
	atest.Run(t, atest.TestData(t), shardring.Analyzer,
		"transputer/internal/link", "transputer/internal/sim")
}
