package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"transputer/internal/analysis/tvetutil"
)

// TestRegistry asserts the suite's own hygiene: every registered
// analyzer has a non-empty Doc, a name registered with tvetutil (so
// ignorecheck accepts suppressions naming it), and analysistest-style
// fixtures under <name>/testdata/src.
func TestRegistry(t *testing.T) {
	if len(All) < 5 {
		t.Fatalf("tvet suite has %d analyzers, want at least 5", len(All))
	}
	seen := map[string]bool{}
	for _, a := range All {
		if a.Name == "" {
			t.Fatalf("analyzer with empty name: %v", a)
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has an empty Doc", a.Name)
		}
		if !tvetutil.KnownAnalyzer(a.Name) {
			t.Errorf("analyzer %q missing from tvetutil.AnalyzerNames (ignorecheck would reject its suppressions)", a.Name)
		}
		fixtures := filepath.Join(a.Name, "testdata", "src")
		st, err := os.Stat(fixtures)
		if err != nil || !st.IsDir() {
			t.Errorf("analyzer %q has no fixture tree at internal/analysis/%s", a.Name, fixtures)
			continue
		}
		entries, err := os.ReadDir(fixtures)
		if err != nil || len(entries) == 0 {
			t.Errorf("analyzer %q has an empty fixture tree at internal/analysis/%s", a.Name, fixtures)
		}
	}
	for _, n := range tvetutil.AnalyzerNames {
		if !seen[n] {
			t.Errorf("tvetutil.AnalyzerNames lists %q but the registry does not include it", n)
		}
	}
}
