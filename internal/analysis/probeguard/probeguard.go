// Package probeguard enforces the probe bus's zero-overhead contract:
// every (*probe.Bus).Publish call site must sit behind a nil-bus check.
//
// PR 1's contract is that a simulation with no bus attached pays
// nothing for instrumentation: publishers check `bus != nil` before
// building the event, so the Event literal and the call never happen on
// the detached fast path.  A Publish reached without that check either
// crashes (nil receiver is only safe by accident of the current method
// body) or quietly taxes the hot path.  Helper methods that rely on a
// documented caller-side check (core.Machine.emit, link.Engine.emit)
// carry a //tvet:ignore with that rationale.
package probeguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"transputer/internal/analysis/tvetutil"
)

const doc = `require a nil-bus check in front of every probe Publish call

A probe.Bus publish site must be unreachable when no bus is attached:
wrap it in "if bus != nil { ... }" or return early on "bus == nil"
before it.  This keeps the detached simulator paying zero cost for
instrumentation (PR 1).  Wrappers whose callers hold the check carry
//tvet:ignore probeguard <reason>.`

// Analyzer is the probeguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "probeguard",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == tvetutil.ProbePath {
		return nil, nil // the bus implementation itself
	}
	ig := tvetutil.NewIgnorer(pass)
	tvetutil.WalkFiles(pass, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Publish" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !tvetutil.IsPtrToNamed(sig.Recv().Type(), tvetutil.ProbePath, "Bus") {
			return true
		}
		if guarded(pass, call, stack) {
			return true
		}
		tvetutil.Report(pass, ig, call.Pos(),
			"probe Publish without a nil-bus guard: wrap in `if bus != nil` or return early on `bus == nil` (zero-overhead contract; //tvet:ignore probeguard <reason> if callers hold the check)")
		return true
	})
	return nil, nil
}

// guarded reports whether the call is dominated by a nil-bus check:
// an enclosing if whose condition proves some *probe.Bus non-nil on
// the branch holding the call, or an earlier early-return on a nil
// bus in the same function.
func guarded(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.IfStmt:
			inBody := i+1 < len(stack) && stack[i+1] == v.Body
			inElse := i+1 < len(stack) && stack[i+1] == v.Else
			if inBody && condChecksBus(pass, v.Cond, token.NEQ) {
				return true
			}
			if inElse && condChecksBus(pass, v.Cond, token.EQL) {
				return true
			}
		case *ast.FuncDecl:
			fnBody = v.Body
		case *ast.FuncLit:
			if fnBody == nil {
				fnBody = v.Body
			}
		}
		if fnBody != nil {
			break
		}
	}
	if fnBody == nil {
		return false
	}
	// Early return: "if bus == nil { ...; return }" before the call.
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= call.Pos() {
			return !found
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !condChecksBus(pass, ifs.Cond, token.EQL) || len(ifs.Body.List) == 0 {
			return true
		}
		switch ifs.Body.List[len(ifs.Body.List)-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		}
		return !found
	})
	return found
}

// condChecksBus reports whether the condition contains a comparison
// `<expr> <op> nil` (op NEQ or EQL) where <expr> has type *probe.Bus.
// For NEQ the comparison may sit anywhere in an && chain; for EQL
// anywhere in an || chain — both preserve the guarantee on the branch
// the caller asked about.
func condChecksBus(pass *analysis.Pass, cond ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			expr, other := pair[0], pair[1]
			if id, ok := other.(*ast.Ident); !ok || id.Name != "nil" {
				continue
			}
			if t := pass.TypesInfo.TypeOf(expr); t != nil && tvetutil.IsPtrToNamed(t, tvetutil.ProbePath, "Bus") {
				found = true
			}
		}
		return !found
	})
	return found
}
