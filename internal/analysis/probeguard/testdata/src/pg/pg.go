// Fixture for probeguard: Publish must sit behind a nil-bus check.
package pg

import "transputer/internal/probe"

type machine struct{ bus *probe.Bus }

func (m *machine) guarded() {
	if m.bus != nil {
		m.bus.Publish(probe.Event{})
	}
}

func (m *machine) guardedChain(on bool) {
	if on && m.bus != nil {
		m.bus.Publish(probe.Event{})
	}
}

func (m *machine) earlyReturn() {
	if m.bus == nil {
		return
	}
	m.bus.Publish(probe.Event{})
}

func (m *machine) elseBranch() {
	if m.bus == nil {
		_ = 0
	} else {
		m.bus.Publish(probe.Event{})
	}
}

func (m *machine) bad() {
	m.bus.Publish(probe.Event{}) // want `probe Publish without a nil-bus guard`
}

func (m *machine) badWrongGuard(on bool) {
	if on {
		m.bus.Publish(probe.Event{}) // want `probe Publish without a nil-bus guard`
	}
}

//tvet:ignore probeguard callers must have checked the bus, documented contract
func (m *machine) emit(e probe.Event) {
	m.bus.Publish(e)
}
