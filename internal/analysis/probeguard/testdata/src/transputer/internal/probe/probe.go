// Stub of the probe package: just enough surface for the analyzers to
// resolve (*probe.Bus).Publish and the Event kinds.
package probe

type Kind int

const (
	ProcDispatch Kind = iota
	FlowArrive
	Heartbeat
	VChanChunk
)

// Event mirrors the real probe.Event fields the analyzers reason about.
type Event struct {
	Kind   Kind
	Time   int64
	Cycles uint64
}

// Bus mirrors the real probe.Bus.
type Bus struct{ subs []func(Event) }

// Publish hands the event to every subscriber.
func (b *Bus) Publish(e Event) {
	for _, fn := range b.subs {
		fn(e)
	}
}
