package probeguard_test

import (
	"testing"

	"transputer/internal/analysis/atest"
	"transputer/internal/analysis/probeguard"
)

func TestProbeguard(t *testing.T) {
	atest.Run(t, atest.TestData(t), probeguard.Analyzer, "pg")
}
