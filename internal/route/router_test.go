package route_test

import (
	"fmt"
	"testing"

	"transputer/internal/core"
	"transputer/internal/fault"
	"transputer/internal/network"
	"transputer/internal/route"
	"transputer/internal/sim"
)

func cfg() core.Config { return core.T424().WithMemory(64 * 1024) }

// ring builds an n-node ring with the error-detecting link mode and
// heartbeats on, ready for a router.
func ring(t *testing.T, n int, workers int) (*network.System, []*network.Node) {
	t.Helper()
	s := network.NewSystem()
	if workers > 0 {
		s.SetWorkers(workers)
	}
	nodes := make([]*network.Node, n)
	for i := range nodes {
		nodes[i] = s.MustAddTransputer(fmt.Sprintf("n%d", i), cfg())
	}
	for i := range nodes {
		s.MustConnect(nodes[i], 0, nodes[(i+1)%n], 1)
	}
	s.SetLinkMode(network.LinkMode{Reliable: true})
	s.SetHeartbeat(0, 0) // package defaults
	return s, nodes
}

// grid builds a w×h mesh (link 0 east, 1 west, 2 south, 3 north).
func grid(t *testing.T, w, h int) (*network.System, [][]*network.Node) {
	t.Helper()
	s := network.NewSystem()
	nodes := make([][]*network.Node, h)
	for y := range nodes {
		nodes[y] = make([]*network.Node, w)
		for x := range nodes[y] {
			nodes[y][x] = s.MustAddTransputer(fmt.Sprintf("n%d%d", y, x), cfg())
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				s.MustConnect(nodes[y][x], 0, nodes[y][x+1], 1)
			}
			if y+1 < h {
				s.MustConnect(nodes[y][x], 2, nodes[y+1][x], 3)
			}
		}
	}
	s.SetLinkMode(network.LinkMode{Reliable: true})
	s.SetHeartbeat(0, 0)
	return s, nodes
}

// drain runs the phased quiesce flow: bounded run, stop the perpetual
// timers, then let in-flight traffic settle.
func drain(t *testing.T, s *network.System, r *route.Router, limit sim.Time) {
	t.Helper()
	s.Run(limit)
	r.Stop()
	s.StopHeartbeats()
	rep := s.Continue(limit + 2*sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("system did not settle after the drain window: %+v", rep)
	}
}

// checkExactlyOnce asserts every accepted injection was delivered
// exactly once, in per-stream order.
func checkExactlyOnce(t *testing.T, r *route.Router) {
	t.Helper()
	if n := r.Undelivered(); n != 0 {
		t.Fatalf("%d accepted messages undelivered", n)
	}
	type key struct {
		from, to string
		seq      uint32
	}
	seen := make(map[key]int)
	for _, d := range r.AllDeliveries() {
		seen[key{d.Origin, d.Dest, d.Seq}]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("message %s->%s seq %d delivered %d times", k.from, k.to, k.seq, n)
		}
	}
	// Per-destination streams must arrive in sequence order.
	last := make(map[[2]string]int64)
	for _, d := range r.AllDeliveries() {
		sk := [2]string{d.Origin, d.Dest}
		prev, ok := last[sk]
		if ok && int64(d.Seq) != prev+1 {
			t.Errorf("stream %s->%s: seq %d delivered after %d", d.Origin, d.Dest, d.Seq, prev)
		}
		last[sk] = int64(d.Seq)
	}
}

// TestRouterRingNoFaults checks the base case: a healthy ring delivers
// everything exactly once with no advertisements ever needed.
func TestRouterRingNoFaults(t *testing.T) {
	s, _ := ring(t, 4, 0)
	r, err := route.Attach(s, route.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			for k := 0; k < 3; k++ {
				at := sim.Time(10+k) * sim.Microsecond
				if _, err := r.SendAt(at, fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j),
					[]byte(fmt.Sprintf("msg %d->%d #%d", i, j, k))); err != nil {
					t.Fatal(err)
				}
				want++
			}
		}
	}
	drain(t, s, r, 4*sim.Millisecond)
	if got := len(r.AllDeliveries()); got != want {
		t.Fatalf("delivered %d messages, want %d", got, want)
	}
	checkExactlyOnce(t, r)
	if rep := s.Watchdog(); rep != nil {
		t.Fatalf("watchdog not clean:\n%s", rep)
	}
}

// TestRouterAttachRequirements covers the two preconditions.
func TestRouterAttachRequirements(t *testing.T) {
	s := network.NewSystem()
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 0, b, 1)
	if _, err := route.Attach(s, route.Config{}); err == nil {
		t.Error("Attach accepted a plain-mode system")
	}
	s.SetLinkMode(network.LinkMode{Reliable: true})
	if _, err := route.Attach(s, route.Config{}); err == nil {
		t.Error("Attach accepted a system without heartbeats")
	}
	s.SetHeartbeat(0, 0)
	if _, err := route.Attach(s, route.Config{}); err != nil {
		t.Errorf("Attach rejected a well-configured system: %v", err)
	}
}

// TestRouterSeveredRingHeals is the issue's first acceptance scenario:
// a ring loses a link mid-run, the heartbeat declares it dead, routes
// recompute the long way round, and every message still arrives
// exactly once — including ones injected while the failure was still
// undetected.  The watchdog must come up clean: the resynchronised
// link ends must not linger as DOWN retry-exhausted senders.
func TestRouterSeveredRingHeals(t *testing.T) {
	s, nodes := ring(t, 4, 0)
	r, err := route.Attach(s, route.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Cut n0<->n1 at 200µs.
	err = s.ApplyFaults(fault.Plan{Rules: []fault.Rule{
		{Kind: fault.Sever, Node: nodes[0].Name, Link: 0, At: 200 * sim.Microsecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var want int
	send := func(at sim.Time, from, to string) {
		t.Helper()
		if _, err := r.SendAt(at, from, to, []byte(fmt.Sprintf("%s->%s@%v", from, to, at))); err != nil {
			t.Fatal(err)
		}
		want++
	}
	// Before the cut, across the doomed link; around the cut instant,
	// while the failure is undetected; and well after.
	for _, at := range []sim.Time{
		50 * sim.Microsecond,
		190 * sim.Microsecond,
		210 * sim.Microsecond,
		260 * sim.Microsecond,
		600 * sim.Microsecond,
		2 * sim.Millisecond,
	} {
		send(at, "n0", "n1")
		send(at, "n1", "n0")
		send(at, "n0", "n2")
	}
	drain(t, s, r, 8*sim.Millisecond)
	if got := len(r.AllDeliveries()); got != want {
		t.Fatalf("delivered %d messages, want %d (undelivered %d)", got, want, r.Undelivered())
	}
	checkExactlyOnce(t, r)
	if rep := s.Watchdog(); rep != nil {
		t.Fatalf("watchdog not clean after heal:\n%s", rep)
	}
}

// TestRouterRestartRecovery is the issue's second acceptance scenario:
// a grid node halts mid-run and restarts later; traffic addressed to
// it, from it, and through it all completes exactly once.
func TestRouterRestartRecovery(t *testing.T) {
	s, nodes := grid(t, 3, 3)
	r, err := route.Attach(s, route.Config{})
	if err != nil {
		t.Fatal(err)
	}
	center := nodes[1][1].Name // n11: every neighbour routes through it by default
	err = s.ApplyFaults(fault.Plan{Rules: []fault.Rule{
		{Kind: fault.Halt, Node: center, Link: -1, At: 300 * sim.Microsecond},
		{Kind: fault.Restart, Node: center, Link: -1, At: 900 * sim.Microsecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var want int
	send := func(at sim.Time, from, to string) {
		t.Helper()
		rec, err := r.SendAt(at, from, to, []byte(fmt.Sprintf("%s->%s@%v", from, to, at)))
		if err != nil {
			t.Fatal(err)
		}
		_ = rec
		want++
	}
	// Through the centre while it is up, down, and back up.
	for _, at := range []sim.Time{
		50 * sim.Microsecond,
		400 * sim.Microsecond, // centre is down: reroute around it
		2 * sim.Millisecond,   // centre is back
	} {
		send(at, "n00", "n22") // corner to corner, through or around the centre
		send(at, "n10", "n12") // edge to edge
	}
	// To and from the centre across the outage: these can only complete
	// after the restart, via end-to-end replay.
	send(100*sim.Microsecond, "n00", center)
	send(400*sim.Microsecond, "n00", center) // dest down at injection
	send(100*sim.Microsecond, center, "n22")
	send(2*sim.Millisecond, center, "n00")
	// A message injected at the centre while it is down must be refused.
	refused, err := r.SendAt(500*sim.Microsecond, center, "n00", []byte("from the dead"))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, s, r, 12*sim.Millisecond)
	if refused.Accepted {
		t.Error("halted node accepted an injection")
	}
	if got := len(r.AllDeliveries()); got != want {
		t.Fatalf("delivered %d messages, want %d (undelivered %d)", got, want, r.Undelivered())
	}
	checkExactlyOnce(t, r)
	if rep := s.Watchdog(); rep != nil {
		t.Fatalf("watchdog not clean after restart:\n%s", rep)
	}
}

// TestRouterUnsurvivablePartition checks honest failure: severing both
// links of a ring node strands it, the undeliverable traffic is
// reported, and the surviving majority still completes its own
// messages.
func TestRouterUnsurvivablePartition(t *testing.T) {
	s, nodes := ring(t, 4, 0)
	r, err := route.Attach(s, route.Config{})
	if err != nil {
		t.Fatal(err)
	}
	err = s.ApplyFaults(fault.Plan{Rules: []fault.Rule{
		{Kind: fault.Sever, Node: nodes[2].Name, Link: 0, At: 100 * sim.Microsecond},
		{Kind: fault.Sever, Node: nodes[2].Name, Link: 1, At: 100 * sim.Microsecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SendAt(500*sim.Microsecond, "n0", "n2", []byte("stranded")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SendAt(500*sim.Microsecond, "n0", "n3", []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	drain(t, s, r, 6*sim.Millisecond)
	if n := r.Undelivered(); n != 1 {
		t.Errorf("undelivered = %d, want exactly the stranded message", n)
	}
	got := r.Deliveries("n3")
	if len(got) != 1 || string(got[0].Payload) != "survivor" {
		t.Errorf("survivor stream wrong: %+v", got)
	}
}

// TestRouterOverVChans: routed frames ride virtual channels when a
// link is multiplexed — eight concurrent streams share one physical
// wire, delivery stays exactly-once and in order, and the outcome is
// byte-identical at any worker count.
func TestRouterOverVChans(t *testing.T) {
	outcome := func(workers int) []route.Delivery {
		s := network.NewSystem()
		if workers > 0 {
			s.SetWorkers(workers)
		}
		a := s.MustAddTransputer("a", cfg())
		b := s.MustAddTransputer("b", cfg())
		c := s.MustAddTransputer("c", cfg())
		s.MustConnect(a, 0, b, 1)
		s.MustConnect(b, 0, c, 1)
		s.SetLinkMode(network.LinkMode{Reliable: true})
		s.SetHeartbeat(0, 0)
		// The a<->b wire carries every stream below; multiplex it.
		if err := s.EnableVChans(a, 0, 8); err != nil {
			t.Fatal(err)
		}
		r, err := route.Attach(s, route.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var want int
		k := 0
		for _, pair := range [][2]string{{"a", "b"}, {"b", "a"}, {"a", "c"}, {"c", "a"}} {
			for i := 0; i < 6; i++ {
				at := sim.Time(20+5*k) * sim.Microsecond
				k++
				if _, err := r.SendAt(at, pair[0], pair[1],
					[]byte(fmt.Sprintf("%s->%s #%d", pair[0], pair[1], i))); err != nil {
					t.Fatal(err)
				}
				want++
			}
		}
		drain(t, s, r, 6*sim.Millisecond)
		if got := len(r.AllDeliveries()); got != want {
			t.Fatalf("delivered %d messages, want %d (undelivered %d)", got, want, r.Undelivered())
		}
		checkExactlyOnce(t, r)
		ms, ok := a.Engine.VChanStats(0)
		if !ok || ms.Chunks == 0 {
			t.Fatalf("the multiplexed wire carried no chunks: %+v ok=%v", ms, ok)
		}
		if rep := s.Watchdog(); rep != nil {
			t.Fatalf("watchdog not clean:\n%s", rep)
		}
		return r.AllDeliveries()
	}
	one := outcome(1)
	four := outcome(4)
	if len(one) != len(four) {
		t.Fatalf("worker count changed delivery count: %d vs %d", len(one), len(four))
	}
	for i := range one {
		x, y := one[i], four[i]
		if x.Origin != y.Origin || x.Dest != y.Dest || x.Seq != y.Seq ||
			x.At != y.At || string(x.Payload) != string(y.Payload) {
			t.Fatalf("delivery %d differs between 1 and 4 workers:\n  %+v\n  %+v", i, x, y)
		}
	}
}

// TestRouterDeterminism requires byte-identical outcomes at one worker
// and four across a fault-heavy run — the cornerstone invariant of the
// whole simulator, now extended over heartbeats, reroutes and
// restarts.
func TestRouterDeterminism(t *testing.T) {
	outcome := func(workers int) []route.Delivery {
		s, nodes := ring(t, 6, workers)
		r, err := route.Attach(s, route.Config{})
		if err != nil {
			t.Fatal(err)
		}
		err = s.ApplyFaults(fault.Plan{Rules: []fault.Rule{
			{Kind: fault.Sever, Node: nodes[1].Name, Link: 0, At: 150 * sim.Microsecond},
			{Kind: fault.Halt, Node: nodes[4].Name, Link: -1, At: 300 * sim.Microsecond},
			{Kind: fault.Restart, Node: nodes[4].Name, Link: -1, At: 900 * sim.Microsecond},
		}})
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if i == j {
					continue
				}
				at := sim.Time(20+10*k) * sim.Microsecond
				k++
				if _, err := r.SendAt(at, fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j),
					[]byte(fmt.Sprintf("%d->%d", i, j))); err != nil {
					t.Fatal(err)
				}
			}
		}
		drain(t, s, r, 12*sim.Millisecond)
		checkExactlyOnce(t, r)
		return r.AllDeliveries()
	}
	one := outcome(1)
	four := outcome(4)
	if len(one) != len(four) {
		t.Fatalf("worker count changed delivery count: %d vs %d", len(one), len(four))
	}
	for i := range one {
		a, b := one[i], four[i]
		if a.Origin != b.Origin || a.Dest != b.Dest || a.Seq != b.Seq ||
			a.At != b.At || string(a.Payload) != string(b.Payload) {
			t.Fatalf("delivery %d differs between 1 and 4 workers:\n  %+v\n  %+v", i, a, b)
		}
	}
}
