// Package route is a store-and-forward routing layer over the link
// fabric: end-to-end sequenced messages delivered exactly once and in
// order on any surviving connected topology, while links fail, nodes
// halt and restart, and the fault campaign does its worst.
//
// The design splits cleanly along the simulator's determinism rule:
// every piece of per-node router state is touched only from that
// node's shard, and nodes talk to each other exclusively through link
// wires — the same deterministic mailbox all other traffic uses — so
// results stay byte-identical at any worker count.
//
// Mechanisms, bottom up:
//
//   - Hop custody: a frame queued on a link is "in custody" until the
//     link engine acknowledges its final byte (SendRaw's completion).
//     A custody timer with exponential backoff catches links that die
//     mid-frame; a dead link's frames are resynchronised away and
//     rerouted.
//   - Failure detection: the link layer's heartbeat monitor (see
//     link/heartbeat.go) declares links down after bounded silence and
//     up when traffic returns.  Down: the local end aborts its streams
//     (ResyncLink), floods a link-state advertisement and reroutes.
//     Up: a HELLO handshake re-establishes the link — both ends have
//     reset their streams at the down verdict, so the byte streams
//     restart aligned — followed by a full advertisement exchange that
//     heals partitioned views.
//   - Routing: every node floods (origin, generation, down-mask)
//     advertisements and computes next hops by breadth-first search
//     over the agreed topology, with deterministic tie-breaks (lower
//     node ordinal, lower link index).  A TTL bounds transient loops.
//   - End-to-end reliability: each (origin, dest) stream is sequenced
//     from zero; the destination delivers contiguously, buffers
//     out-of-order arrivals, and acknowledges every receipt.  The
//     origin keeps unacknowledged messages in a replay buffer with
//     exponential backoff.  Duplicates created by replay or rerouting
//     collapse at the destination's sequence window.
//   - Crash recovery: a node halt wipes volatile state (queues, link
//     streams, others' advertisements) but preserves the stable store
//     (replay buffer, delivery ledger, own advertisement generation —
//     think battery-backed NVRAM).  At restart the node resets its
//     link streams, rejoins via HELLO, and replays its unacknowledged
//     messages.
package route

import (
	"fmt"
	"sort"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Defaults for Config.
const (
	// DefaultHopTimeout is the custody timeout per hop — generous
	// against queueing and link-level retransmission, so it only fires
	// for genuinely stuck frames.
	DefaultHopTimeout = 400 * sim.Microsecond
	// DefaultReplayTimeout is the base end-to-end replay backoff.
	DefaultReplayTimeout = 800 * sim.Microsecond
	// DefaultTTL is the hop budget of routed frames.
	DefaultTTL = 32
)

// Config tunes the router.  Zero values select the defaults.
type Config struct {
	HopTimeout    sim.Time
	ReplayTimeout sim.Time
	TTL           int
}

// Delivery is one in-order end-to-end delivery at a destination.
type Delivery struct {
	Origin  string
	Dest    string
	Seq     uint32
	At      sim.Time
	Payload []byte
}

// Injected records one message handed to SendAt, with the verdict on
// whether the origin was alive to accept it.
type Injected struct {
	From, To string
	At       sim.Time
	Seq      uint32
	Payload  []byte
	Accepted bool
}

// adjEntry is the static wiring of one link end: immutable after
// Attach, so safe to read from any shard during route computation.
type adjEntry struct {
	wired    bool
	peer     int
	peerLink int
}

// lsaEntry is one node's latest link-state advertisement as known
// here.
type lsaEntry struct {
	seq  uint32
	mask byte // bit l set: that node's link l is down
}

// pendKey identifies an unacknowledged message in the origin's replay
// buffer.
type pendKey struct {
	to  int
	seq uint32
}

// pendingMsg is one replay-buffer entry.
type pendingMsg struct {
	payload  []byte
	attempts int
	timer    sim.EventID
	armed    bool
}

// oooKey identifies an out-of-order buffered payload at a destination.
type oooKey struct {
	origin int
	seq    uint32
}

// sendSlot is one unit of send concurrency on a link: the whole wire
// for plain links (vc -1), or one virtual channel of a multiplexed
// link.  A frame in a slot is "in custody" until the engine confirms
// its final byte, watched by the slot's hop timer.
type sendSlot struct {
	vc       int // -1: SendRaw on the whole link; >=0: SendVC on this vchan
	inFlight *frame
	sending  bool
	hopTimer sim.EventID
	hopArmed bool
	hopWait  sim.Time
}

// linkState is the dynamic router state of one link end.  Touched only
// from the owning node's shard.
type linkState struct {
	routable  bool // HELLO handshake complete; data may be routed here
	helloSent bool // greeting sent since the last down transition
	queue     []frame
	slots     []sendSlot
}

// rnode is the router's per-node state.
type rnode struct {
	r     *Router
	nn    *network.Node
	ord   int
	alive bool
	// gen invalidates outstanding timer and transfer closures across a
	// crash or restart: a closure captures the generation it was armed
	// under and goes silent if the node has since crossed a boot.
	gen uint64

	links [core.NumLinks]linkState

	// Stable store: survives a crash (battery-backed NVRAM).
	pending   map[pendKey]*pendingMsg
	nextSeq   []uint32 // per-destination next stream sequence
	expect    []uint32 // per-origin next in-order delivery
	ooo       map[oooKey][]byte
	lsaSeq    uint32 // own advertisement generation; bumped every boot
	delivered []Delivery

	// Volatile: wiped by a crash.
	db      []lsaEntry
	dbKnown []bool
	nextHop []int // per-destination link index, -1 unreachable
	reach   int
	parked  []frame // routable-nowhere frames awaiting a route change
}

// Router is the system-wide routing layer.  Build it with Attach
// before Run; read results (Deliveries, Injected, Undelivered) after.
type Router struct {
	sys      *network.System
	cfg      Config
	nodes    []*rnode
	byName   map[string]*rnode
	adj      [][core.NumLinks]adjEntry
	injected []*Injected
}

// Attach builds a router over every node of the system.  The system
// must be in error-detecting link mode with heartbeats configured —
// the router's streams and failure detection are built on both — and
// fully wired: call Attach after the topology is connected (including
// any System.EnableVChans) and before Run.  On a multiplexed link the
// router runs one send slot and one receive pump per virtual channel,
// so frames to different destinations stream concurrently over the
// shared wire instead of queueing behind each other.
func Attach(s *network.System, cfg Config) (*Router, error) {
	if !s.LinkMode().Reliable {
		return nil, fmt.Errorf("route: router requires the error-detecting link mode")
	}
	if !s.HeartbeatSet() {
		return nil, fmt.Errorf("route: router requires heartbeats (System.SetHeartbeat)")
	}
	if cfg.HopTimeout <= 0 {
		cfg.HopTimeout = DefaultHopTimeout
	}
	if cfg.ReplayTimeout <= 0 {
		cfg.ReplayTimeout = DefaultReplayTimeout
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.TTL > 255 {
		cfg.TTL = 255
	}
	nodes := s.Nodes()
	if len(nodes) > 256 {
		return nil, fmt.Errorf("route: %d nodes exceed the 256-node frame address space", len(nodes))
	}
	r := &Router{sys: s, cfg: cfg, byName: make(map[string]*rnode)}
	r.adj = make([][core.NumLinks]adjEntry, len(nodes))
	for i, nn := range nodes {
		for l := 0; l < core.NumLinks; l++ {
			if pn, pl, ok := nn.Peer(l); ok {
				// Peer ordinal = its index in creation order.
				for j, cand := range nodes {
					if cand == pn {
						r.adj[i][l] = adjEntry{wired: true, peer: j, peerLink: pl}
						break
					}
				}
			}
		}
	}
	for i, nn := range nodes {
		nd := &rnode{
			r: r, nn: nn, ord: i, alive: true,
			pending: make(map[pendKey]*pendingMsg),
			nextSeq: make([]uint32, len(nodes)),
			expect:  make([]uint32, len(nodes)),
			ooo:     make(map[oooKey][]byte),
			db:      make([]lsaEntry, len(nodes)),
			dbKnown: make([]bool, len(nodes)),
			nextHop: make([]int, len(nodes)),
		}
		// Everyone starts presumed fully up: links begin synchronised,
		// and the no-fault case routes without a single advertisement.
		for j := range nd.dbKnown {
			nd.dbKnown[j] = true
		}
		for l := 0; l < core.NumLinks; l++ {
			if r.adj[i][l].wired {
				nd.links[l].routable = true
				nd.links[l].helloSent = true
			}
		}
		r.nodes = append(r.nodes, nd)
		r.byName[nn.Name] = nd
	}
	for _, nd := range r.nodes {
		nd.recompute()
		for l := 0; l < core.NumLinks; l++ {
			if r.adj[nd.ord][l].wired {
				nd.initSlots(l)
				nd.armRecv(l)
			}
		}
		nd.hookEngine()
	}
	s.OnNodeDown(func(nn *network.Node) {
		if nd, ok := r.byName[nn.Name]; ok {
			nd.crash()
		}
	})
	s.OnNodeUp(func(nn *network.Node) {
		if nd, ok := r.byName[nn.Name]; ok {
			nd.boot()
		}
	})
	return r, nil
}

// hookEngine subscribes the node to its engine's heartbeat verdicts.
func (nd *rnode) hookEngine() {
	nd.nn.Engine.OnHeartbeat(func(l int, up bool) {
		if up {
			nd.upVerdict(l)
		} else {
			nd.linkDown(l)
		}
	})
}

func (nd *rnode) clock() *sim.Port { return nd.nn.Clock() }

// SendAt schedules a message injection at the origin node at the given
// instant.  The message is accepted (sequenced, stored, routed) only
// if the origin is alive then; the returned record's Accepted field
// reports the verdict after the run.
func (r *Router) SendAt(at sim.Time, from, to string, payload []byte) (*Injected, error) {
	src, ok := r.byName[from]
	if !ok {
		return nil, fmt.Errorf("route: unknown origin %q", from)
	}
	dst, ok := r.byName[to]
	if !ok {
		return nil, fmt.Errorf("route: unknown destination %q", to)
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("route: payload %d exceeds %d-byte cap", len(payload), maxPayload)
	}
	rec := &Injected{From: from, To: to, At: at, Payload: append([]byte(nil), payload...)}
	r.injected = append(r.injected, rec)
	src.clock().Schedule(at, func() {
		if !src.alive {
			return
		}
		rec.Accepted = true
		seq := src.nextSeq[dst.ord]
		src.nextSeq[dst.ord]++
		rec.Seq = seq
		if dst.ord == src.ord {
			src.deliverLocal(frame{kind: fData, origin: byte(src.ord), dest: byte(src.ord), seq: seq,
				payload: append([]byte(nil), payload...)})
			return
		}
		msg := &pendingMsg{payload: append([]byte(nil), payload...)}
		src.pending[pendKey{dst.ord, seq}] = msg
		src.route(src.dataFrame(dst.ord, seq, msg.payload))
		src.armReplay(dst.ord, seq, msg)
	})
	return rec, nil
}

func (nd *rnode) dataFrame(to int, seq uint32, payload []byte) frame {
	return frame{kind: fData, origin: byte(nd.ord), dest: byte(to),
		ttl: byte(nd.r.cfg.TTL), seq: seq, payload: payload}
}

// armReplay schedules the message's next replay with exponential
// backoff.
func (nd *rnode) armReplay(to int, seq uint32, msg *pendingMsg) {
	gen := nd.gen
	wait := nd.r.cfg.ReplayTimeout
	for i := 0; i < msg.attempts && i < 5; i++ {
		wait *= 2
	}
	msg.armed = true
	msg.timer = nd.clock().After(wait, func() {
		msg.armed = false
		if nd.gen != gen || !nd.alive {
			return
		}
		if _, still := nd.pending[pendKey{to, seq}]; !still {
			return
		}
		msg.attempts++
		nd.nn.Publish(probe.Event{Kind: probe.RouteReplay, Arg: int64(msg.attempts)})
		nd.route(nd.dataFrame(to, seq, msg.payload))
		nd.armReplay(to, seq, msg)
	})
}

// route queues a frame toward its destination, or parks it until a
// route appears.
func (nd *rnode) route(f frame) {
	d := int(f.dest)
	if d == nd.ord {
		nd.frameForSelf(f)
		return
	}
	l := nd.nextHop[d]
	if l < 0 || !nd.links[l].routable {
		nd.parked = append(nd.parked, f)
		return
	}
	nd.enqueue(l, f)
}

func (nd *rnode) enqueue(l int, f frame) {
	nd.links[l].queue = append(nd.links[l].queue, f)
	nd.trySend(l)
}

// initSlots lays out link l's send concurrency: one slot per virtual
// channel on a multiplexed link, a single whole-wire slot otherwise.
// Frames of one link may then complete out of order across vchans;
// the destination's sequence window absorbs the reordering, exactly as
// it absorbs reroute duplicates.
func (nd *rnode) initSlots(l int) {
	ls := &nd.links[l]
	if n := nd.nn.Engine.VChans(l); n > 0 {
		ls.slots = make([]sendSlot, n)
		for vc := range ls.slots {
			ls.slots[vc].vc = vc
		}
	} else {
		ls.slots = []sendSlot{{vc: -1}}
	}
}

// trySend fills every free send slot of link l from its queue, taking
// custody of each frame until the link engine confirms its final byte
// was acknowledged.
func (nd *rnode) trySend(l int) {
	ls := &nd.links[l]
	for si := range ls.slots {
		if len(ls.queue) == 0 {
			return
		}
		if !ls.slots[si].sending {
			nd.sendOn(l, si)
		}
	}
}

// sendOn starts transmitting the head of link l's queue on slot si.
func (nd *rnode) sendOn(l, si int) {
	ls := &nd.links[l]
	sl := &ls.slots[si]
	f := ls.queue[0]
	ls.queue = ls.queue[1:]
	hold := f
	sl.inFlight = &hold
	sl.sending = true
	sl.hopWait = nd.r.cfg.HopTimeout
	nd.armHop(l, si)
	gen := nd.gen
	done := func() {
		if nd.gen != gen {
			return
		}
		nd.cancelHop(l, si)
		sl.sending = false
		sl.inFlight = nil
		nd.trySend(l)
	}
	var ok bool
	if sl.vc >= 0 {
		ok = nd.nn.Engine.SendVC(l, sl.vc, f.encode(), done)
	} else {
		ok = nd.nn.Engine.SendRaw(l, f.encode(), done)
	}
	if !ok {
		// The engine's sender is busy with a transfer the router does
		// not own — should not happen, but never wedge: back off and
		// retry.
		nd.cancelHop(l, si)
		sl.sending = false
		sl.inFlight = nil
		ls.queue = append([]frame{f}, ls.queue...)
		nd.clock().After(nd.r.cfg.HopTimeout/4, func() {
			if nd.gen == gen {
				nd.trySend(l)
			}
		})
	}
}

func (nd *rnode) armHop(l, si int) {
	sl := &nd.links[l].slots[si]
	gen := nd.gen
	sl.hopArmed = true
	sl.hopTimer = nd.clock().After(sl.hopWait, func() {
		sl.hopArmed = false
		if nd.gen != gen {
			return
		}
		nd.hopTimeout(l, si)
	})
}

func (nd *rnode) cancelHop(l, si int) {
	sl := &nd.links[l].slots[si]
	if sl.hopArmed {
		nd.clock().Cancel(sl.hopTimer)
		sl.hopArmed = false
	}
}

// cancelHops cancels every slot's custody timer on link l.
func (nd *rnode) cancelHops(l int) {
	for si := range nd.links[l].slots {
		nd.cancelHop(l, si)
	}
}

// hopTimeout fires when a frame's custody ran out.  A link the
// error-detecting layer has declared dead is torn down and its frames
// rerouted; a merely slow link gets its custody timer backed off, and
// the frame is duplicated onto the current best route if the table has
// moved away (the destination's sequence window absorbs duplicates).
func (nd *rnode) hopTimeout(l, si int) {
	sl := &nd.links[l].slots[si]
	if !sl.sending || sl.inFlight == nil {
		return
	}
	if down, _ := nd.nn.Engine.LinkDown(l); down {
		nd.linkDown(l)
		return
	}
	f := *sl.inFlight
	if f.kind == fData || f.kind == fE2EAck {
		if alt := nd.nextHop[int(f.dest)]; alt >= 0 && alt != l && nd.links[alt].routable {
			nd.enqueue(alt, f)
		}
	}
	if sl.hopWait < 8*nd.r.cfg.HopTimeout {
		sl.hopWait *= 2
	}
	nd.armHop(l, si)
}

// linkDown tears down this end of link l: abort and reset the byte
// streams, reroute every frame it held, advertise the loss, and leave
// the HELLO handshake to bring it back.  Called on the heartbeat down
// verdict and on custody timeout of a dead link; idempotent while
// down.
func (nd *rnode) linkDown(l int) {
	if !nd.r.adj[nd.ord][l].wired {
		return
	}
	ls := &nd.links[l]
	nd.cancelHops(l)
	nd.nn.Engine.ResyncLink(l)
	nd.armRecv(l) // the resync aborted the receive pumps; restart them
	var orphans []frame
	for si := range ls.slots {
		if sl := &ls.slots[si]; sl.inFlight != nil {
			orphans = append(orphans, *sl.inFlight)
		}
		ls.slots[si].inFlight = nil
		ls.slots[si].sending = false
	}
	orphans = append(orphans, ls.queue...)
	ls.queue = nil
	ls.helloSent = false
	if ls.routable {
		ls.routable = false
		nd.lsaSeq++
		nd.floodOwnLSA()
		nd.recompute()
	}
	for _, f := range orphans {
		if f.kind == fData || f.kind == fE2EAck {
			nd.route(f)
		}
	}
}

// upVerdict fires when the heartbeat hears a silent link again: greet
// the peer.  Routability waits for the peer's greeting — both ends
// reset their streams at the down verdict, so the greeting is the
// first frame of the fresh stream.
func (nd *rnode) upVerdict(l int) {
	ls := &nd.links[l]
	if !nd.r.adj[nd.ord][l].wired || ls.routable || ls.helloSent {
		return
	}
	ls.helloSent = true
	nd.enqueue(l, frame{kind: fHello, origin: byte(nd.ord), dest: byte(nd.r.adj[nd.ord][l].peer), ttl: 1})
}

// helloArrived completes the handshake: the link carries aligned
// streams again.  Reply if we have not greeted since the outage, then
// advertise the regained link and exchange full link-state databases
// so two healed partitions reconcile their views.
func (nd *rnode) helloArrived(l int) {
	ls := &nd.links[l]
	if !ls.helloSent {
		ls.helloSent = true
		nd.enqueue(l, frame{kind: fHello, origin: byte(nd.ord), dest: byte(nd.r.adj[nd.ord][l].peer), ttl: 1})
	}
	if ls.routable {
		return
	}
	ls.routable = true
	nd.lsaSeq++
	nd.floodOwnLSA()
	nd.enqueue(l, nd.ownLSA())
	for o := 0; o < len(nd.db); o++ {
		if o != nd.ord && nd.dbKnown[o] {
			nd.enqueue(l, frame{kind: fLSA, origin: byte(o), ttl: 1,
				seq: nd.db[o].seq, payload: []byte{nd.db[o].mask}})
		}
	}
	nd.recompute()
}

// ownMask is the node's current down-mask: a set bit per unroutable
// wired link.
func (nd *rnode) ownMask() byte {
	var m byte
	for l := 0; l < core.NumLinks; l++ {
		if nd.r.adj[nd.ord][l].wired && !nd.links[l].routable {
			m |= 1 << l
		}
	}
	return m
}

func (nd *rnode) ownLSA() frame {
	return frame{kind: fLSA, origin: byte(nd.ord), ttl: 1,
		seq: nd.lsaSeq, payload: []byte{nd.ownMask()}}
}

// floodOwnLSA advertises the node's current link state on every
// routable link.
func (nd *rnode) floodOwnLSA() {
	f := nd.ownLSA()
	for l := 0; l < core.NumLinks; l++ {
		if nd.r.adj[nd.ord][l].wired && nd.links[l].routable {
			nd.enqueue(l, f)
		}
	}
}

// lsaArrived merges a received advertisement, refloods news, and
// recomputes routes.
func (nd *rnode) lsaArrived(from int, f frame) {
	o := int(f.origin)
	if o == nd.ord || len(f.payload) != 1 {
		return
	}
	if nd.dbKnown[o] && f.seq <= nd.db[o].seq {
		return
	}
	nd.dbKnown[o] = true
	nd.db[o] = lsaEntry{seq: f.seq, mask: f.payload[0]}
	for l := 0; l < core.NumLinks; l++ {
		if l != from && nd.r.adj[nd.ord][l].wired && nd.links[l].routable {
			nd.enqueue(l, frame{kind: fLSA, origin: f.origin, ttl: 1, seq: f.seq,
				payload: []byte{f.payload[0]}})
		}
	}
	nd.recompute()
}

// edgeUp reports whether the directed link l out of node x is up in
// this node's view of the world.
func (nd *rnode) edgeUp(x, l int) bool {
	if x == nd.ord {
		return nd.links[l].routable
	}
	return nd.dbKnown[x] && nd.db[x].mask&(1<<l) == 0
}

// recompute rebuilds the next-hop table by breadth-first search over
// the agreed topology: an edge exists when both of its ends are up in
// this node's view.  Ties break to the lower node ordinal and lower
// link index, a rule independent of execution order.  A changed table
// publishes a RouteChange event and retries parked frames.
func (nd *rnode) recompute() {
	n := len(nd.r.nodes)
	next := make([]int, n)
	for i := range next {
		next[i] = -1
	}
	visited := make([]bool, n)
	visited[nd.ord] = true
	type hop struct{ node, first int }
	var q []hop
	step := func(x, first int) {
		for l := 0; l < core.NumLinks; l++ {
			e := nd.r.adj[x][l]
			if !e.wired || visited[e.peer] {
				continue
			}
			if !nd.edgeUp(x, l) || !nd.edgeUp(e.peer, e.peerLink) {
				continue
			}
			visited[e.peer] = true
			f := first
			if f < 0 {
				f = l
			}
			next[e.peer] = f
			q = append(q, hop{e.peer, f})
		}
	}
	step(nd.ord, -1)
	for len(q) > 0 {
		h := q[0]
		q = q[1:]
		step(h.node, h.first)
	}
	changed := false
	reach := 0
	for i := range next {
		if next[i] != nd.nextHop[i] {
			changed = true
		}
		if next[i] >= 0 {
			reach++
		}
	}
	nd.nextHop = next
	nd.reach = reach
	if !changed {
		return
	}
	nd.nn.Publish(probe.Event{Kind: probe.RouteChange, Arg: int64(reach)})
	parked := nd.parked
	nd.parked = nil
	for _, f := range parked {
		nd.route(f)
	}
}

// armRecv (re)starts the receive pumps on link l: read a header, then
// the payload, dispatch, repeat.  A frame that fails validation is
// dropped; the pump realigns at the next header boundary, and the
// end-to-end replay layer absorbs whatever was lost.  A multiplexed
// link runs one such pump per virtual channel — each vchan carries an
// independent frame stream.
func (nd *rnode) armRecv(l int) {
	if n := nd.nn.Engine.VChans(l); n > 0 {
		for vc := 0; vc < n; vc++ {
			nd.armRecvVC(l, vc)
		}
		return
	}
	gen := nd.gen
	nd.nn.Engine.RecvRaw(l, headerLen, func(hdr []byte) {
		if nd.gen != gen {
			return
		}
		f, plen, err := parseHeader(hdr, len(nd.r.nodes))
		if err != nil {
			nd.armRecv(l)
			return
		}
		if plen == 0 {
			nd.handleFrame(l, f)
			if nd.gen == gen {
				nd.armRecv(l)
			}
			return
		}
		nd.nn.Engine.RecvRaw(l, plen, func(payload []byte) {
			if nd.gen != gen {
				return
			}
			f.payload = payload
			nd.handleFrame(l, f)
			if nd.gen == gen {
				nd.armRecv(l)
			}
		})
	})
}

// armRecvVC is armRecv's per-vchan pump on a multiplexed link.
func (nd *rnode) armRecvVC(l, vc int) {
	gen := nd.gen
	nd.nn.Engine.RecvVC(l, vc, headerLen, func(hdr []byte) {
		if nd.gen != gen {
			return
		}
		f, plen, err := parseHeader(hdr, len(nd.r.nodes))
		if err != nil {
			nd.armRecvVC(l, vc)
			return
		}
		if plen == 0 {
			nd.handleFrame(l, f)
			if nd.gen == gen {
				nd.armRecvVC(l, vc)
			}
			return
		}
		nd.nn.Engine.RecvVC(l, vc, plen, func(payload []byte) {
			if nd.gen != gen {
				return
			}
			f.payload = payload
			nd.handleFrame(l, f)
			if nd.gen == gen {
				nd.armRecvVC(l, vc)
			}
		})
	})
}

// handleFrame dispatches one received frame.
func (nd *rnode) handleFrame(l int, f frame) {
	switch f.kind {
	case fHello:
		nd.helloArrived(l)
	case fLSA:
		nd.lsaArrived(l, f)
	case fData, fE2EAck:
		if int(f.dest) == nd.ord {
			nd.frameForSelf(f)
			return
		}
		if f.ttl <= 1 {
			return // hop budget spent: drop; the origin replays
		}
		f.ttl--
		nd.route(f)
	}
}

// frameForSelf consumes a DATA or E2EACK frame addressed to this node.
func (nd *rnode) frameForSelf(f frame) {
	switch f.kind {
	case fData:
		nd.deliverLocal(f)
	case fE2EAck:
		// origin field is the acker — the destination of our message.
		key := pendKey{int(f.origin), f.seq}
		if msg, ok := nd.pending[key]; ok {
			if msg.armed {
				nd.clock().Cancel(msg.timer)
				msg.armed = false
			}
			delete(nd.pending, key)
		}
	}
}

// deliverLocal runs the destination's exactly-once in-order window:
// acknowledge every receipt, deliver contiguously, buffer gaps.
func (nd *rnode) deliverLocal(f frame) {
	o := int(f.origin)
	if o != nd.ord {
		nd.route(frame{kind: fE2EAck, origin: byte(nd.ord), dest: f.origin,
			ttl: byte(nd.r.cfg.TTL), seq: f.seq})
	}
	if f.seq < nd.expect[o] {
		return // duplicate of an already-delivered message
	}
	key := oooKey{o, f.seq}
	if _, dup := nd.ooo[key]; dup {
		return
	}
	nd.ooo[key] = append([]byte(nil), f.payload...)
	for {
		k := oooKey{o, nd.expect[o]}
		p, ok := nd.ooo[k]
		if !ok {
			break
		}
		delete(nd.ooo, k)
		nd.delivered = append(nd.delivered, Delivery{
			Origin: nd.r.nodes[o].nn.Name, Dest: nd.nn.Name,
			Seq: nd.expect[o], At: nd.clock().Now(), Payload: p,
		})
		nd.nn.Publish(probe.Event{Kind: probe.RouteDeliver,
			Arg: int64(nd.expect[o]), Bytes: len(p)})
		nd.expect[o]++
	}
}

// crash wipes the node's volatile state at a halt.  The link engine's
// wires were already severed by the fault layer; peers will notice the
// silence and tear down their ends.
func (nd *rnode) crash() {
	nd.gen++
	nd.alive = false
	for l := range nd.links {
		nd.cancelHops(l)
		nd.links[l] = linkState{}
	}
	for _, k := range nd.sortedPending() {
		if msg := nd.pending[k]; msg.armed {
			nd.clock().Cancel(msg.timer)
			msg.armed = false
		}
	}
	nd.parked = nil
	nd.dbKnown = make([]bool, len(nd.r.nodes))
	nd.db = make([]lsaEntry, len(nd.r.nodes))
	for i := range nd.nextHop {
		nd.nextHop[i] = -1
	}
	nd.reach = 0
}

// boot rejoins the network at a restart: reset every link stream to
// power-on state (peers did the same at their down verdicts), restart
// the receive pumps, presume the world up again, and replay the stable
// store's unacknowledged messages.  Links become routable only through
// the HELLO handshake, driven by the peers' heartbeat up verdicts.
func (nd *rnode) boot() {
	nd.gen++
	nd.alive = true
	nd.lsaSeq++ // boot counter: post-outage advertisements supersede stale ones
	for i := range nd.dbKnown {
		nd.dbKnown[i] = true
		nd.db[i] = lsaEntry{}
	}
	for l := 0; l < core.NumLinks; l++ {
		if !nd.r.adj[nd.ord][l].wired {
			continue
		}
		nd.nn.Engine.ResyncLink(l)
		nd.links[l] = linkState{}
		nd.initSlots(l)
		nd.armRecv(l)
	}
	nd.recompute()
	for _, k := range nd.sortedPending() {
		msg := nd.pending[k]
		msg.attempts = 0
		nd.route(nd.dataFrame(k.to, k.seq, msg.payload))
		nd.armReplay(k.to, k.seq, msg)
	}
}

// sortedPending returns the replay-buffer keys in deterministic order.
func (nd *rnode) sortedPending() []pendKey {
	keys := make([]pendKey, 0, len(nd.pending))
	for k := range nd.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].to != keys[j].to {
			return keys[i].to < keys[j].to
		}
		return keys[i].seq < keys[j].seq
	})
	return keys
}

// Stop cancels the router's perpetual timers — the end-to-end replay
// backoffs — so a run can quiesce.  Call it from the driving goroutine
// between Run and the draining Continue, together with the system's
// StopHeartbeats.  In-flight frames keep moving and deliveries keep
// landing during the drain; only re-injection stops.
func (r *Router) Stop() {
	for _, nd := range r.nodes {
		for _, k := range nd.sortedPending() {
			if msg := nd.pending[k]; msg.armed {
				nd.clock().Cancel(msg.timer)
				msg.armed = false
			}
		}
	}
}

// Deliveries returns every in-order delivery recorded at the named
// node, in delivery order.  Read after the run.
func (r *Router) Deliveries(node string) []Delivery {
	nd, ok := r.byName[node]
	if !ok {
		return nil
	}
	return nd.delivered
}

// AllDeliveries returns every delivery in the system, grouped by
// destination in node-creation order — a deterministic serialisation
// of the run's outcome.
func (r *Router) AllDeliveries() []Delivery {
	var out []Delivery
	for _, nd := range r.nodes {
		out = append(out, nd.delivered...)
	}
	return out
}

// Injected returns the injection records in SendAt order.
func (r *Router) Injected() []*Injected {
	return r.injected
}

// Undelivered counts accepted messages that never reached their
// destination's in-order ledger.  Read after the run.
func (r *Router) Undelivered() int {
	type dk struct {
		from, to string
		seq      uint32
	}
	got := make(map[dk]bool)
	for _, nd := range r.nodes {
		for _, d := range nd.delivered {
			got[dk{d.Origin, d.Dest, d.Seq}] = true
		}
	}
	missing := 0
	for _, in := range r.injected {
		if in.Accepted && !got[dk{in.From, in.To, in.Seq}] {
			missing++
		}
	}
	return missing
}
