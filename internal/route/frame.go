// Wire format of the routing layer.
//
// A frame is a fixed 10-byte header followed by a payload, carried as
// plain bytes over a link's reliable byte stream:
//
//	kind(1) origin(1) dest(1) ttl(1) seq(4 LE) len(2 LE) payload...
//
// origin and dest are node ordinals (the creation order of the
// system's transputers), which caps a routed network at 256 nodes —
// comfortably above anything the simulator runs.  seq is the
// end-to-end stream sequence for DATA and E2EACK frames and the
// advertisement generation for LSA frames.
package route

import "fmt"

// Frame kinds.  Zero is deliberately invalid so a desynchronised byte
// stream is likely to surface as a bad frame instead of a plausible
// one.
const (
	fData   = 1 // application payload, origin→dest, exactly-once in order
	fE2EAck = 2 // end-to-end acknowledge: origin = acker, dest = message origin
	fLSA    = 3 // link-state advertisement: origin = advertiser, payload = down-mask
	fHello  = 4 // link resync greeting, not routed beyond the receiving hop
	fKinds  = 5
)

// headerLen is the fixed frame header size.
const headerLen = 10

// maxPayload bounds a frame's payload; anything longer is split by the
// caller or rejected.
const maxPayload = 1024

// frame is one routed message in memory.
type frame struct {
	kind    byte
	origin  byte
	dest    byte
	ttl     byte
	seq     uint32
	payload []byte
}

// encode renders the frame as header + payload bytes.
func (f frame) encode() []byte {
	b := make([]byte, headerLen+len(f.payload))
	b[0] = f.kind
	b[1] = f.origin
	b[2] = f.dest
	b[3] = f.ttl
	b[4] = byte(f.seq)
	b[5] = byte(f.seq >> 8)
	b[6] = byte(f.seq >> 16)
	b[7] = byte(f.seq >> 24)
	b[8] = byte(len(f.payload))
	b[9] = byte(len(f.payload) >> 8)
	copy(b[headerLen:], f.payload)
	return b
}

// parseHeader decodes a header, reporting the payload length still to
// be read.  An error means the stream is not aligned on a frame
// boundary (or carries garbage); the caller drops it.
func parseHeader(b []byte, nodes int) (f frame, plen int, err error) {
	if len(b) != headerLen {
		return frame{}, 0, fmt.Errorf("route: short header (%d bytes)", len(b))
	}
	f.kind = b[0]
	if f.kind == 0 || f.kind >= fKinds {
		return frame{}, 0, fmt.Errorf("route: bad frame kind %d", f.kind)
	}
	f.origin = b[1]
	f.dest = b[2]
	if int(f.origin) >= nodes || int(f.dest) >= nodes {
		return frame{}, 0, fmt.Errorf("route: frame names node %d/%d of %d", f.origin, f.dest, nodes)
	}
	f.ttl = b[3]
	f.seq = uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24
	plen = int(b[8]) | int(b[9])<<8
	if plen > maxPayload {
		return frame{}, 0, fmt.Errorf("route: frame payload %d exceeds cap", plen)
	}
	return f, plen, nil
}
