package core

import "transputer/internal/isa"

// execOp executes one indirect operation and returns its cycle cost.
func (m *Machine) execOp(op isa.Op) int {
	if cycles, fixed := isa.OpCycles(op, m.wordBits); fixed {
		m.execFixedOp(op)
		return cycles
	}
	return m.execVariableOp(op)
}

// execFixedOp handles operations whose cost is a constant.
func (m *Machine) execFixedOp(op isa.Op) {
	w := m.wptr()
	switch op {
	case isa.OpRev:
		m.Areg, m.Breg = m.Breg, m.Areg

	// --- arithmetic and logic -------------------------------------
	case isa.OpAdd:
		b, a := m.popPair()
		m.push2(m.checkedAdd(b, a))
	case isa.OpSub:
		b, a := m.popPair()
		m.push2(m.checkedSub(b, a))
	case isa.OpMul:
		b, a := m.popPair()
		m.push2(m.checkedMul(b, a))
	case isa.OpDiv:
		b, a := m.popPair()
		m.push2(m.checkedDiv(b, a))
	case isa.OpRem:
		b, a := m.popPair()
		m.push2(m.checkedRem(b, a))
	case isa.OpSum:
		b, a := m.popPair()
		m.push2((b + a) & m.mask)
	case isa.OpDiff:
		b, a := m.popPair()
		m.push2((b - a) & m.mask)
	case isa.OpAnd:
		b, a := m.popPair()
		m.push2(b & a)
	case isa.OpOr:
		b, a := m.popPair()
		m.push2(b | a)
	case isa.OpXor:
		b, a := m.popPair()
		m.push2(b ^ a)
	case isa.OpNot:
		m.Areg = ^m.Areg & m.mask
	case isa.OpGt:
		b, a := m.popPair()
		m.push2(boolWord(m.signed(b) > m.signed(a)))
	case isa.OpMint:
		m.push(m.signBit)

	// --- long arithmetic ------------------------------------------
	case isa.OpLadd:
		a := m.pop()
		b := m.pop()
		carry := m.Areg // old C now in A
		m.Areg = m.longAdd(b, a, carry)
	case isa.OpLsub:
		a := m.pop()
		b := m.pop()
		borrow := m.Areg
		m.Areg = m.longSub(b, a, borrow)
	case isa.OpLsum:
		a := m.pop()
		b := m.pop()
		carry := m.Areg
		sum, carryOut := m.longSum(b, a, carry)
		m.Areg = sum
		m.Breg = carryOut
	case isa.OpLdiff:
		a := m.pop()
		b := m.pop()
		borrow := m.Areg
		diff, borrowOut := m.longDiff(b, a, borrow)
		m.Areg = diff
		m.Breg = borrowOut
	case isa.OpLmul:
		a := m.pop()
		b := m.pop()
		c := m.Areg
		lo, hi := m.longMul(b, a, c)
		m.Areg = lo
		m.Breg = hi
	case isa.OpLdiv:
		d := m.pop()  // divisor in A
		hi := m.pop() // high word in B
		lo := m.Areg  // low word in C
		q, r := m.longDivStep(hi, lo, d)
		m.Areg = q
		m.Breg = r
	case isa.OpXdble:
		// Extend A to a double: A stays the low word, the sign word is
		// pushed as the new B.
		sign := uint64(0)
		if m.Areg&m.signBit != 0 {
			sign = m.mask
		}
		m.Creg = m.Breg
		m.Breg = sign
	case isa.OpCsngl:
		// Check the double A(lo),B(hi) fits a single word.
		lo, hi := m.Areg, m.Breg
		sign := uint64(0)
		if lo&m.signBit != 0 {
			sign = m.mask
		}
		if hi != sign {
			m.setError()
		}
		m.Breg = m.Creg
	case isa.OpXword:
		// A holds the sign-bit value of the narrower type; B holds the
		// value to extend.
		v, bit := m.popPair()
		if v&bit != 0 {
			v |= ^(bit - 1) & m.mask
			v |= bit
		} else {
			v &= bit - 1
		}
		m.push2(v & m.mask)
	case isa.OpCword:
		v, bit := m.popPair()
		low := v & (bit - 1)
		signSet := v&bit != 0
		ext := low
		if signSet {
			ext = low | bit | (^(bit - 1) & m.mask)
		}
		if ext != v {
			m.setError()
		}
		m.push2(v)

	// --- pointers and subscripts ----------------------------------
	case isa.OpBsub:
		b, a := m.popPair()
		m.push2((b + a) & m.mask)
	case isa.OpWsub:
		// The compiler loads the index, then the base: A = base,
		// B = index.
		index, base := m.popPair()
		m.push2(m.index(base, int(m.signed(index))))
	case isa.OpBcnt:
		m.Areg = m.Areg * uint64(m.bpw) & m.mask
	case isa.OpWcnt:
		sel := m.Areg & uint64(m.bpw-1)
		word := m.unsigned(m.signed(m.Areg) >> uint(m.byteSelectorBits()))
		m.Areg = word
		m.Creg = m.Breg
		m.Breg = sel
	case isa.OpLb:
		m.Areg = uint64(m.byteAt(m.Areg))
	case isa.OpSb:
		// A = address, B = value; both are consumed.
		addr, v := m.Areg, m.Breg
		m.setByte(addr, byte(v))
		m.Areg = m.Creg
	case isa.OpLdpi:
		m.Areg = (m.Iptr + m.Areg) & m.mask

	// --- checks -----------------------------------------------------
	case isa.OpCsub0:
		// A = bound, B = index; the bound is consumed.
		index, bound := m.popPair()
		if index >= bound {
			m.setError()
		}
		m.push2(index)
	case isa.OpCcnt1:
		// A = bound, B = count; the bound is consumed.
		count, bound := m.popPair()
		if count == 0 || count > bound {
			m.setError()
		}
		m.push2(count)

	// --- control ----------------------------------------------------
	case isa.OpRet:
		m.Iptr = m.wordIndex(w, 0)
		m.Wdesc = m.index(w, 4) | uint64(m.CurrentPriority())
	case isa.OpGcall:
		m.Areg, m.Iptr = m.Iptr, m.Areg
	case isa.OpGajw:
		old := w
		m.Wdesc = (m.Areg &^ uint64(m.bpw-1)) | uint64(m.CurrentPriority())
		m.Areg = old

	// --- scheduler ----------------------------------------------------
	case isa.OpStartp:
		// A new workspace is added to the end of the scheduling list
		// (paper 3.2.4).  A holds the new workspace pointer, B the code
		// offset of the new process.
		off, newW := m.popPair()
		m.Areg = m.Creg // both operands consumed
		newW &^= uint64(m.bpw - 1)
		m.setWordIndex(newW, wsIptr, (m.Iptr+off)&m.mask)
		m.schedule(newW | uint64(m.CurrentPriority()))
	case isa.OpEndp:
		// A points to the workspace holding the component counter: when
		// it reaches zero the continuation proceeds (paper 3.2.4).
		blk := m.Areg &^ uint64(m.bpw-1)
		count := m.wordIndex(blk, 1)
		count = (count - 1) & m.mask
		if count == 0 {
			m.Wdesc = blk | uint64(m.CurrentPriority())
			m.Iptr = m.wordIndex(blk, 0)
			m.Oreg = 0
		} else {
			m.setWordIndex(blk, 1, count)
			m.deschedule()
		}
	case isa.OpStopp:
		m.blockCurrent()
	case isa.OpRunp:
		wdesc := m.pop()
		m.wake(wdesc)
	case isa.OpLdpri:
		m.push(uint64(m.CurrentPriority()))

	// --- error handling ----------------------------------------------
	case isa.OpSeterr:
		m.setError()
	case isa.OpTesterr:
		m.push(boolWord(!m.errorFlag))
		m.errorFlag = false
	case isa.OpStoperr:
		if m.errorFlag {
			m.blockCurrent()
		}
	case isa.OpClrhalterr:
		m.haltErr = false
	case isa.OpSethalterr:
		m.haltErr = true
	case isa.OpTesthalterr:
		m.push(boolWord(m.haltErr))

	// --- channels and timers (fixed-cost parts) ----------------------
	case isa.OpResetch:
		ch := m.Areg
		m.Areg = m.word(ch)
		m.setWord(ch, m.notProcess())
	case isa.OpLdtimer:
		m.push(m.clockValue(m.CurrentPriority()))
	case isa.OpSttimer:
		m.startTimers(m.pop())
	case isa.OpAlt:
		m.setWordIndex(w, wsState, m.altEnabling())
	case isa.OpTalt:
		m.setWordIndex(w, wsState, m.altEnabling())
		m.setWordIndex(w, wsTLink, m.timeNotSet())
	case isa.OpAltend:
		m.Iptr = (m.Iptr + m.wordIndex(w, 0)) & m.mask
	case isa.OpEnbc:
		m.enableChannel()
	case isa.OpDisc:
		m.disableChannel()
	case isa.OpEnbs:
		// A = guard; a ready SKIP guard makes the alternative ready.
		if m.Areg != 0 {
			m.setWordIndex(w, wsState, m.altReady())
		}
	case isa.OpDiss:
		// A = guard, B = jump offset.
		off, guard := m.popPair()
		fired := guard != 0 && m.wordIndex(w, 0) == m.noneSelected()
		if fired {
			m.setWordIndex(w, 0, off)
		}
		m.push2(boolWord(fired))
	case isa.OpEnbt:
		m.enableTimer()
	case isa.OpDist:
		m.disableTimer()

	// --- queue register access ----------------------------------------
	case isa.OpSthf:
		m.Fptr[PriorityHigh] = m.pop()
	case isa.OpSthb:
		m.Bptr[PriorityHigh] = m.pop()
	case isa.OpStlf:
		m.Fptr[PriorityLow] = m.pop()
	case isa.OpStlb:
		m.Bptr[PriorityLow] = m.pop()
	case isa.OpSaveh:
		addr := m.pop()
		m.setWordIndex(addr, 0, m.Fptr[PriorityHigh])
		m.setWordIndex(addr, 1, m.Bptr[PriorityHigh])
	case isa.OpSavel:
		addr := m.pop()
		m.setWordIndex(addr, 0, m.Fptr[PriorityLow])
		m.setWordIndex(addr, 1, m.Bptr[PriorityLow])

	default:
		// An operation with a fixed cost must be handled above;
		// reaching here is a simulator bug.
		m.fault("unimplemented operation", uint64(op))
	}
}

// execVariableOp handles operations whose cost depends on their
// operands or on machine state, returning the cycles consumed.
func (m *Machine) execVariableOp(op isa.Op) int {
	switch op {
	case isa.OpIn:
		return m.inputMessage()
	case isa.OpOut:
		return m.outputMessage()
	case isa.OpOutbyte:
		return m.outputShort(1)
	case isa.OpOutword:
		return m.outputShort(m.bpw)
	case isa.OpMove:
		return m.moveMessage()
	case isa.OpShl:
		b, a := m.popPair()
		n := a & m.mask
		if n >= uint64(m.wordBits) {
			m.push2(0)
		} else {
			m.push2(b << uint(n) & m.mask)
		}
		return isa.ShiftCycles(int(minU64(n, uint64(m.wordBits))))
	case isa.OpShr:
		b, a := m.popPair()
		n := a & m.mask
		if n >= uint64(m.wordBits) {
			m.push2(0)
		} else {
			m.push2(b >> uint(n))
		}
		return isa.ShiftCycles(int(minU64(n, uint64(m.wordBits))))
	case isa.OpLshl:
		n := m.pop()
		hi := m.pop()
		lo := m.Areg
		loOut, hiOut := m.longShiftLeft(hi, lo, minU64(n, uint64(2*m.wordBits)))
		m.Areg = loOut
		m.Breg = hiOut
		return isa.LongShiftCycles(int(minU64(n, uint64(2*m.wordBits))))
	case isa.OpLshr:
		n := m.pop()
		hi := m.pop()
		lo := m.Areg
		loOut, hiOut := m.longShiftRight(hi, lo, minU64(n, uint64(2*m.wordBits)))
		m.Areg = loOut
		m.Breg = hiOut
		return isa.LongShiftCycles(int(minU64(n, uint64(2*m.wordBits))))
	case isa.OpProd:
		b, a := m.popPair()
		m.push2(b * a & m.mask)
		return isa.ProdCycles(bitsOf(a))
	case isa.OpNorm:
		// A = low word, B = high word.
		lo := m.pop()
		hi := m.Areg
		loOut, hiOut, places := m.normalise(hi, lo)
		m.Areg = loOut
		m.Breg = hiOut
		m.Creg = places
		return isa.NormCycles(int(places))
	case isa.OpLend:
		return m.loopEnd()
	case isa.OpAltwt:
		return m.altWait()
	case isa.OpTaltwt:
		return m.timerAltWait()
	case isa.OpTin:
		return m.timerInput()
	}
	m.fault("unimplemented operation", uint64(op))
	return 1
}

// popPair pops B and A for a dyadic operation (returning them in
// operand order: B first).
func (m *Machine) popPair() (b, a uint64) {
	a = m.Areg
	b = m.Breg
	return b, a
}

// push2 completes a dyadic operation: the result replaces A and B, and
// C is copied into B ("the add instruction adds the A and B registers,
// places the result in the A register, and copies C into B").
func (m *Machine) push2(v uint64) {
	m.Areg = v & m.mask
	m.Breg = m.Creg
}

func (m *Machine) byteSelectorBits() int {
	if m.bpw == 2 {
		return 1
	}
	return 2
}

// loopEnd implements the replicated-SEQ loop instruction: B points to a
// two-word control block (index, remaining count), A is the backward
// distance to the loop start.
func (m *Machine) loopEnd() int {
	back, blk := m.Areg, m.Breg
	count := (m.wordIndex(blk, 1) - 1) & m.mask
	m.setWordIndex(blk, 1, count)
	if m.signed(count) > 0 {
		m.setWordIndex(blk, 0, (m.wordIndex(blk, 0)+1)&m.mask)
		m.Iptr = (m.Iptr - back) & m.mask
		// A descheduling point, like jump.
		m.timesliceCheck()
		return isa.LendCycles(true)
	}
	return isa.LendCycles(false)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
