package core

import (
	"transputer/internal/isa"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Timers (paper, 2.2.2).  "A global synchronized sense of time is not
// practicable ... there is therefore a local concept of time, each
// timer being implemented as an incrementing clock.  Logically, access
// to a timer is treated as an input.  A delayed input may be used,
// which waits until the value of the clock reaches an appropriate
// value.  A timer input may be used in an alternative construct."
//
// There is one clock per priority: the high-priority clock ticks every
// microsecond, the low-priority clock every 64 microseconds.  Waiting
// processes are held on a per-priority queue ordered by wakeup time,
// threaded through the wsTLink workspace slot.

// tickNs returns the clock period of the given priority.
func (m *Machine) tickNs(pri int) int64 {
	if pri == PriorityHigh {
		return int64(m.cfg.HiTimerTickNs)
	}
	return int64(m.cfg.LoTimerTickNs)
}

// clockValue returns the current reading of a priority's clock.
func (m *Machine) clockValue(pri int) uint64 {
	if m.clock == nil {
		return m.clockOffset[pri] & m.mask
	}
	ticks := uint64(int64(m.clock.Now()) / m.tickNs(pri))
	return (ticks + m.clockOffset[pri]) & m.mask
}

// startTimers implements store timer: both clocks are set to the given
// value (the boot convention).
func (m *Machine) startTimers(v uint64) {
	for pri := 0; pri < 2; pri++ {
		base := uint64(0)
		if m.clock != nil {
			base = uint64(int64(m.clock.Now()) / m.tickNs(pri))
		}
		m.clockOffset[pri] = (v - base) & m.mask
	}
}

// timerInput implements timer input (a delayed input): A holds the
// time; the process continues once the clock is later than it.
func (m *Machine) timerInput() int {
	t := m.pop()
	pri := m.CurrentPriority()
	if m.later(m.clockValue(pri), t) {
		return isa.TinCycles(true)
	}
	w := m.wptr()
	m.setWordIndex(w, wsTime, t)
	m.timerEnqueue(pri, w)
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.TimerWait, Proc: m.Wdesc, Pri: pri, Arg: int64(t)})
	}
	m.blockOnComm(BlockTimer, t, -1)
	m.armTimer()
	return isa.TinCycles(false)
}

// timerEnqueue inserts a workspace into the priority's timer queue,
// kept ordered by wakeup time.
func (m *Machine) timerEnqueue(pri int, w uint64) {
	t := m.wordIndex(w, wsTime)
	np := m.notProcess()
	if m.Tptr[pri] == np || !m.later(t, m.wordIndex(m.Tptr[pri], wsTime)) {
		m.setWordIndex(w, wsTLink, m.Tptr[pri])
		m.Tptr[pri] = w
		return
	}
	prev := m.Tptr[pri]
	for {
		next := m.wordIndex(prev, wsTLink)
		if next == np || !m.later(t, m.wordIndex(next, wsTime)) {
			m.setWordIndex(w, wsTLink, next)
			m.setWordIndex(prev, wsTLink, w)
			return
		}
		prev = next
	}
}

// timerDequeue removes a workspace from the priority's timer queue if
// present.
func (m *Machine) timerDequeue(pri int, w uint64) {
	np := m.notProcess()
	if m.Tptr[pri] == np {
		return
	}
	if m.Tptr[pri] == w {
		m.Tptr[pri] = m.wordIndex(w, wsTLink)
		return
	}
	prev := m.Tptr[pri]
	for prev != np {
		next := m.wordIndex(prev, wsTLink)
		if next == w {
			m.setWordIndex(prev, wsTLink, m.wordIndex(w, wsTLink))
			return
		}
		prev = next
	}
}

// armTimer schedules (or reschedules) the kernel event for the next
// timer expiry across both priorities.
func (m *Machine) armTimer() {
	if m.clock == nil {
		return
	}
	if m.timerEvent != 0 {
		m.clock.Cancel(m.timerEvent)
		m.timerEvent = 0
	}
	np := m.notProcess()
	var earliest sim.Time = -1
	for pri := 0; pri < 2; pri++ {
		if m.Tptr[pri] == np {
			continue
		}
		t := m.wordIndex(m.Tptr[pri], wsTime)
		// The process wakes when the clock first exceeds t: that is
		// (delta+1) ticks from the current clock value, where delta may
		// be negative if the time has already passed.
		delta := m.signed((t - m.clockValue(pri)) & m.mask)
		if delta < 0 {
			delta = -1
		}
		// Align to the next tick boundary.
		tick := m.tickNs(pri)
		nowNs := int64(m.clock.Now())
		boundary := (nowNs/tick + 1 + delta) * tick
		at := sim.Time(boundary)
		if at <= m.clock.Now() {
			at = m.clock.Now()
		}
		if earliest < 0 || at < earliest {
			earliest = at
		}
	}
	if earliest >= 0 {
		m.timerEvent = m.clock.At(earliest, m.timerExpired)
	}
}

// timerExpired releases every process whose wakeup time has passed.
func (m *Machine) timerExpired() {
	m.timerEvent = 0
	np := m.notProcess()
	for pri := 0; pri < 2; pri++ {
		clock := m.clockValue(pri)
		for m.Tptr[pri] != np {
			head := m.Tptr[pri]
			if !m.later(clock, m.wordIndex(head, wsTime)) {
				break
			}
			m.Tptr[pri] = m.wordIndex(head, wsTLink)
			wdesc := head | uint64(pri)
			if m.bus != nil {
				m.emit(probe.Event{Kind: probe.TimerFire, Proc: wdesc, Pri: pri})
			}
			if m.wordIndex(head, wsState) == m.altWaiting() {
				// A timer alternative: mark ready and wake.
				m.setWordIndex(head, wsState, m.altReady())
				m.wake(wdesc)
			} else if m.wordIndex(head, wsState) == m.altReady() {
				// Already made ready (and scheduled) by a channel.
			} else {
				m.wake(wdesc)
			}
		}
	}
	m.armTimer()
}

// enableTimer implements enable timer: A = time, B = guard; the guard
// remains in A.  The earliest enabled time is recorded in the
// workspace.
func (m *Machine) enableTimer() {
	guard, t := m.popPair()
	w := m.wptr()
	if guard != 0 {
		switch m.wordIndex(w, wsTLink) {
		case m.timeNotSet():
			m.setWordIndex(w, wsTLink, m.timeSet())
			m.setWordIndex(w, wsTime, t)
		case m.timeSet():
			if m.later(m.wordIndex(w, wsTime), t) {
				m.setWordIndex(w, wsTime, t)
			}
		}
	}
	m.push2(guard)
}

// timerAltWait implements timer alt wait.
func (m *Machine) timerAltWait() int {
	w := m.wptr()
	pri := m.CurrentPriority()
	m.setWordIndex(w, 0, m.noneSelected())
	if m.wordIndex(w, wsState) == m.altReady() {
		return isa.AltwtCycles(true)
	}
	if m.wordIndex(w, wsTLink) == m.timeSet() {
		t := m.wordIndex(w, wsTime)
		if m.later(m.clockValue(pri), t) {
			// The enabled time has already been reached.
			m.setWordIndex(w, wsState, m.altReady())
			return isa.AltwtCycles(true)
		}
		m.timerEnqueue(pri, w)
		m.setWordIndex(w, wsState, m.altWaiting())
		if m.bus != nil {
			m.emit(probe.Event{Kind: probe.TimerWait, Proc: m.Wdesc, Pri: pri, Arg: int64(t)})
		}
		m.blockOnComm(BlockAlt, t, -1)
		m.armTimer()
		return isa.AltwtCycles(false)
	}
	m.setWordIndex(w, wsState, m.altWaiting())
	m.blockOnComm(BlockAlt, 0, -1)
	return isa.AltwtCycles(false)
}

// disableTimer implements disable timer: A = time, B = guard,
// C = selection offset; A becomes "this guard fired".  It also removes
// the process from the timer queue, which is required before the
// workspace is reused.
func (m *Machine) disableTimer() {
	t := m.Areg
	guard := m.Breg
	off := m.Creg
	w := m.wptr()
	pri := m.CurrentPriority()
	fired := false
	if guard != 0 {
		m.timerDequeue(pri, w)
		m.armTimer()
		fired = m.later(m.clockValue(pri), t)
	}
	if fired && m.wordIndex(w, 0) == m.noneSelected() {
		m.setWordIndex(w, 0, off)
	}
	m.Areg = boolWord(fired)
}
