package core

// Checked and unchecked arithmetic.  Single length signed and single
// length modulo arithmetic is directly supported (paper, 3.2.9);
// checked operations set the error flag on overflow.

// checkedAdd returns a+b, setting the error flag on signed overflow.
func (m *Machine) checkedAdd(a, b uint64) uint64 {
	r := (a + b) & m.mask
	// Overflow when both operands share a sign that differs from the
	// result's.
	if (a^b)&m.signBit == 0 && (a^r)&m.signBit != 0 {
		m.setError()
	}
	return r
}

// checkedSub returns a-b, setting the error flag on signed overflow.
func (m *Machine) checkedSub(a, b uint64) uint64 {
	r := (a - b) & m.mask
	if (a^b)&m.signBit != 0 && (a^r)&m.signBit != 0 {
		m.setError()
	}
	return r
}

// checkedMul returns a*b, setting the error flag on signed overflow.
func (m *Machine) checkedMul(a, b uint64) uint64 {
	sa, sb := m.signed(a), m.signed(b)
	p := sa * sb
	r := m.unsigned(p)
	if m.signed(r) != p || (sa != 0 && p/sa != sb) {
		m.setError()
	}
	return r
}

// checkedDiv returns b/a (truncated), setting the error flag on divide
// by zero or MOSTNEG/-1 overflow.
func (m *Machine) checkedDiv(b, a uint64) uint64 {
	if a == 0 || (a == m.mask && b == m.signBit) {
		m.setError()
		return 0
	}
	return m.unsigned(m.signed(b) / m.signed(a))
}

// checkedRem returns b%a with the usual transputer conditions.
func (m *Machine) checkedRem(b, a uint64) uint64 {
	if a == 0 {
		m.setError()
		return 0
	}
	if a == m.mask && b == m.signBit {
		return 0
	}
	return m.unsigned(m.signed(b) % m.signed(a))
}

// boolWord converts a condition to the truth values used by the
// instruction set (1 = true, 0 = false).
func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// bitsOf returns the number of significant bits in v, used for the
// product instruction's logarithmic timing.
func bitsOf(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// longAdd returns b+a+carry with signed overflow checking.
func (m *Machine) longAdd(b, a, carry uint64) uint64 {
	r := (b + a + (carry & 1)) & m.mask
	if (a^b)&m.signBit == 0 && (a^r)&m.signBit != 0 {
		m.setError()
	}
	return r
}

// longSub returns b-a-borrow with signed overflow checking.
func (m *Machine) longSub(b, a, borrow uint64) uint64 {
	r := (b - a - (borrow & 1)) & m.mask
	if (a^b)&m.signBit != 0 && (b^r)&m.signBit != 0 {
		m.setError()
	}
	return r
}

// longSum returns the unchecked sum and carry of b+a+carry.
func (m *Machine) longSum(b, a, carry uint64) (sum, carryOut uint64) {
	full := b + a + (carry & 1) // cannot overflow uint64 for <=32-bit words
	return full & m.mask, full >> uint(m.wordBits) & 1
}

// longDiff returns the unchecked difference and borrow of b-a-borrow.
func (m *Machine) longDiff(b, a, borrow uint64) (diff, borrowOut uint64) {
	full := b - a - (borrow & 1)
	return full & m.mask, (full >> uint(m.wordBits)) & 1
}

// longMul returns the double-length unsigned product b*a+c as (lo, hi).
func (m *Machine) longMul(b, a, c uint64) (lo, hi uint64) {
	full := b*a + c // fits in uint64 for <=32-bit words
	return full & m.mask, (full >> uint(m.wordBits)) & m.mask
}

// longDivStep divides the double-length unsigned value hi:lo by d,
// returning quotient and remainder.  The error flag is set when the
// quotient cannot be represented (hi >= d) or d is zero.
func (m *Machine) longDivStep(hi, lo, d uint64) (q, r uint64) {
	if d == 0 || hi >= d {
		m.setError()
		return 0, 0
	}
	full := hi<<uint(m.wordBits) | lo
	return (full / d) & m.mask, (full % d) & m.mask
}

// longShiftLeft shifts the pair hi:lo left by n places.
func (m *Machine) longShiftLeft(hi, lo uint64, n uint64) (loOut, hiOut uint64) {
	if n >= uint64(2*m.wordBits) {
		return 0, 0
	}
	full := hi<<uint(m.wordBits) | lo
	full <<= uint(n)
	return full & m.mask, (full >> uint(m.wordBits)) & m.mask
}

// longShiftRight shifts the pair hi:lo right by n places.
func (m *Machine) longShiftRight(hi, lo uint64, n uint64) (loOut, hiOut uint64) {
	if n >= uint64(2*m.wordBits) {
		return 0, 0
	}
	full := hi<<uint(m.wordBits) | lo
	full >>= uint(n)
	return full & m.mask, (full >> uint(m.wordBits)) & m.mask
}

// normalise shifts the pair hi:lo left until the most significant bit
// of hi is set, returning the shifted pair and the shift count.  A zero
// value normalises to zero with a count of twice the word length.
func (m *Machine) normalise(hi, lo uint64) (loOut, hiOut, places uint64) {
	if hi == 0 && lo == 0 {
		return 0, 0, uint64(2 * m.wordBits)
	}
	n := uint64(0)
	for hi&m.signBit == 0 {
		hi = (hi<<1 | lo>>uint(m.wordBits-1)) & m.mask
		lo = lo << 1 & m.mask
		n++
	}
	return lo, hi, n
}
