// Package core implements the transputer processor described in "The
// Transputer" (Whitby-Strevens, ISCA 1985): the I1 instruction set, the
// three-register evaluation stack, the two-priority hardware scheduler,
// occam channels as memory words, timers, and the alternative-input
// mechanism — all with the paper's cycle accounting.
package core

import (
	"fmt"

	"transputer/internal/sim"
)

// Priority levels.  The paper numbers priority 0 as high and priority 1
// as low ("a higher priority process always proceeds in preference to a
// lower priority one").
const (
	PriorityHigh = 0
	PriorityLow  = 1
)

// Config describes one transputer.
type Config struct {
	// Name labels the machine in traces and errors.
	Name string
	// WordBits is the processor word length: 32 for the T424, 16 for
	// the T222.
	WordBits int
	// MemBytes is the total directly addressable memory, on-chip plus
	// external.  The T424 has 4 KiB on chip.
	MemBytes int
	// CycleNs is the processor cycle time in nanoseconds (50 ns for a
	// 20 MHz part).
	CycleNs int
	// TimesliceCycles is the period after which a low-priority process
	// is moved to the back of its queue at the next descheduling point.
	TimesliceCycles int
	// HaltOnError stops the machine when the error flag is set.
	HaltOnError bool
	// HiTimerTickNs and LoTimerTickNs are the periods of the two
	// priority clocks (1 µs and 64 µs on the first transputers).
	HiTimerTickNs int
	LoTimerTickNs int
	// NoFetchBuffer models a processor without the two-word instruction
	// fetch buffer: every instruction byte then costs an extra memory
	// cycle.  Used by the ablation benchmarks; real transputers have
	// the buffer (paper, 3.2.5).
	NoFetchBuffer bool
	// NoBlockCache disables the predecoded block cache, forcing every
	// instruction through the interpreted fetch/decode path.  A pure
	// simulator-performance switch: results are identical either way
	// (pinned by tests), only wall-clock speed changes.
	NoBlockCache bool
}

// T424 returns the configuration of the IMS T424: 32 bits, 4 KiB
// on-chip memory, 50 ns cycles.  Memory can be widened for programs
// that assume external RAM.
func T424() Config {
	return Config{
		Name:            "T424",
		WordBits:        32,
		MemBytes:        4 * 1024,
		CycleNs:         50,
		TimesliceCycles: 20480, // ~1 ms at 20 MHz
		HiTimerTickNs:   1000,
		LoTimerTickNs:   64000,
	}
}

// T222 returns the configuration of the 16-bit IMS T222.
func T222() Config {
	c := T424()
	c.Name = "T222"
	c.WordBits = 16
	return c
}

// WithMemory returns a copy of the configuration with the given memory
// size, modelling off-chip extension of the address space.
func (c Config) WithMemory(bytes int) Config {
	c.MemBytes = bytes
	return c
}

func (c Config) validate() error {
	if c.WordBits != 16 && c.WordBits != 32 {
		return fmt.Errorf("core: unsupported word length %d", c.WordBits)
	}
	bpw := c.WordBits / 8
	if c.MemBytes < 64*bpw {
		return fmt.Errorf("core: memory %d bytes too small", c.MemBytes)
	}
	if c.MemBytes%bpw != 0 {
		return fmt.Errorf("core: memory size %d not word aligned", c.MemBytes)
	}
	maxMem := 1 << uint(c.WordBits)
	if c.WordBits == 32 {
		// Cap the simulated address space at 1 GiB to keep host memory
		// use sane; the architectural space is 4 GiB.
		maxMem = 1 << 30
	}
	if c.MemBytes > maxMem {
		return fmt.Errorf("core: memory %d exceeds address space", c.MemBytes)
	}
	if c.CycleNs <= 0 {
		return fmt.Errorf("core: cycle time must be positive")
	}
	return nil
}

// Clock is the machine's view of simulated time, provided by the
// simulation driver.  At schedules a callback; Cancel revokes one.
type Clock interface {
	Now() sim.Time
	At(t sim.Time, fn func()) sim.EventID
	Cancel(id sim.EventID)
}

// NumLinks is the number of bidirectional links on the first
// transputers.
const NumLinks = 4

// External is implemented by the link engine.  BeginOutput/BeginInput
// are called when a process executes a message instruction on an
// external channel; the process has already been descheduled, and the
// engine must call done exactly once when the transfer completes.
type External interface {
	BeginOutput(link int, ptr uint64, count int, done func())
	BeginInput(link int, ptr uint64, count int, done func())
	// EnableInput arms alternative-input signalling on a link: ready is
	// called once when input data becomes available.  It returns true
	// if data is already buffered (the guard is immediately ready).
	EnableInput(link int, ready func()) bool
	// DisableInput disarms signalling and reports whether input data is
	// available.
	DisableInput(link int) bool
}

// FlowExternal is optionally implemented by an External to carry probe
// flow identities across link transfers (see probe.FlowTable).  The
// machine only calls these when a probe bus is attached, so an engine
// may treat them as trace-only plumbing.
type FlowExternal interface {
	// HandoffFlow tells the engine which flow the transfer about to
	// begin on the given link direction belongs to.
	HandoffFlow(link int, out bool, flow uint64)
	// TransferFlow reports the flow currently associated with a link
	// direction: for inputs, the flow carried by the packets that have
	// arrived (zero until the first packet lands).
	TransferFlow(link int, out bool) uint64
}
