package core

import (
	"fmt"
	"io"

	"transputer/internal/isa"
)

// TraceEvent describes one instruction about to execute.
type TraceEvent struct {
	// Addr is the address of the instruction's first byte (including
	// prefixes).
	Addr uint64
	// Wdesc identifies the executing process (workspace | priority).
	Wdesc uint64
	// The evaluation stack before execution.
	Areg, Breg, Creg uint64
	// Fn and Operand are the decoded instruction.
	Fn      isa.Function
	Operand uint64
	// Cycles is the machine's cycle counter before execution.
	Cycles uint64
}

// Instr renders the decoded instruction.
func (e TraceEvent) Instr() string {
	if e.Fn == isa.FnOpr {
		return isa.Op(e.Operand).Name()
	}
	return fmt.Sprintf("%s %d", e.Fn.Name(), int64(int32(uint32(e.Operand))))
}

// Trace receives every executed instruction while attached.
type Trace func(TraceEvent)

// SetTrace attaches (or with nil, detaches) an instruction tracer.
// Tracing is for debugging and does not alter timing.
func (m *Machine) SetTrace(fn Trace) { m.trace = fn }

// TraceWriter returns a Trace that writes one line per instruction:
// cycle count, process, address, stack and the full instruction name.
func TraceWriter(w io.Writer) Trace {
	return func(e TraceEvent) {
		fmt.Fprintf(w, "%10d  W=%08X  %08X  A=%08X B=%08X C=%08X  %s\n",
			e.Cycles, e.Wdesc, e.Addr, e.Areg, e.Breg, e.Creg, e.Instr())
	}
}
