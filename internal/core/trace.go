package core

import (
	"bufio"
	"fmt"
	"io"

	"transputer/internal/isa"
	"transputer/internal/sim"
)

// TraceEvent describes one instruction about to execute.
type TraceEvent struct {
	// Time is the simulated instant of the event, so instruction traces
	// can be correlated with scheduler and link activity on the probe
	// bus (zero when no clock is attached).
	Time sim.Time
	// Addr is the address of the instruction's first byte (including
	// prefixes).
	Addr uint64
	// Wdesc identifies the executing process (workspace | priority).
	Wdesc uint64
	// The evaluation stack before execution.
	Areg, Breg, Creg uint64
	// Fn and Operand are the decoded instruction.
	Fn      isa.Function
	Operand uint64
	// Cycles is the machine's cycle counter before execution.
	Cycles uint64
}

// Instr renders the decoded instruction.
func (e TraceEvent) Instr() string {
	if e.Fn == isa.FnOpr {
		return isa.Op(e.Operand).Name()
	}
	return fmt.Sprintf("%s %d", e.Fn.Name(), int64(int32(uint32(e.Operand))))
}

// Trace receives every executed instruction while attached.
type Trace func(TraceEvent)

// SetTrace attaches (or with nil, detaches) an instruction tracer.
// Tracing is for debugging and does not alter timing.
func (m *Machine) SetTrace(fn Trace) { m.trace = fn }

// TraceSink formats instruction traces onto a buffered writer: one
// line per instruction with simulated time, cycle count, process,
// address, stack and the full instruction name.  Callers must Flush
// when tracing ends (the per-instruction Fprintf of the unbuffered
// original dominated trace-enabled runs).
type TraceSink struct {
	bw *bufio.Writer
}

// NewTraceWriter builds a buffered trace sink over w.
func NewTraceWriter(w io.Writer) *TraceSink {
	return &TraceSink{bw: bufio.NewWriterSize(w, 64*1024)}
}

// Trace writes one event; pass it to Machine.SetTrace.
func (s *TraceSink) Trace(e TraceEvent) {
	fmt.Fprintf(s.bw, "%12v %10d  W=%08X  %08X  A=%08X B=%08X C=%08X  %s\n",
		e.Time, e.Cycles, e.Wdesc, e.Addr, e.Areg, e.Breg, e.Creg, e.Instr())
}

// Flush drains the buffer.
func (s *TraceSink) Flush() error { return s.bw.Flush() }

// TraceWriter returns a buffered Trace writing to w and a flush
// function that must be called when the run ends.
func TraceWriter(w io.Writer) (Trace, func() error) {
	s := NewTraceWriter(w)
	return s.Trace, s.Flush
}
