package core

import "transputer/internal/isa"

// Alternative input (paper 2.2: "an alternative process may be ready
// for input from any one of a number of channels.  In this case, the
// input is taken from the channel which is first used for output by
// another process").  The instructions for enabling and disabling
// channels "provide support for an implementation of alternative input
// without the use of polling" (3.2.10).
//
// The process's wsState slot moves through enabling -> waiting ->
// ready; the selected branch offset accumulates in workspace slot 0.

// enableChannel implements enable channel: A = channel, B = guard;
// the guard remains in A.
func (m *Machine) enableChannel() {
	guard, ch := m.popPair()
	w := m.wptr()
	if guard != 0 {
		if m.isEventChannel(ch) {
			wdesc := m.Wdesc
			if m.eventEnable(func() { m.altChannelReady(wdesc) }) {
				m.setWordIndex(w, wsState, m.altReady())
			}
		} else if e, ok := m.vchanChannel(ch); ok {
			if e.out {
				m.fault("alternative on output vchan channel", ch)
			} else if m.vcExt != nil {
				wdesc := m.Wdesc
				if m.vcExt.EnableInputVC(e.link, e.vc, func() { m.altChannelReady(wdesc) }) {
					m.setWordIndex(w, wsState, m.altReady())
				}
			}
		} else if link, isOut, ok := m.externalChannel(ch); ok {
			if isOut {
				m.fault("alternative on output link channel", ch)
			} else if m.ext != nil {
				wdesc := m.Wdesc
				if m.ext.EnableInput(link, func() { m.altChannelReady(wdesc) }) {
					m.setWordIndex(w, wsState, m.altReady())
				}
			}
		} else {
			chWord := m.word(ch)
			switch chWord {
			case m.notProcess():
				// Nobody there yet: leave our descriptor so an
				// outputting process finds us.
				m.setWord(ch, m.Wdesc)
			case m.Wdesc:
				// Already enabled by us (several guards on one
				// channel); nothing to do.
			default:
				// Another process is waiting to output: this guard is
				// ready.
				m.setWordIndex(w, wsState, m.altReady())
			}
		}
	}
	m.push2(guard)
}

// altChannelReady is called by the link engine when data arrives on an
// enabled link input.
func (m *Machine) altChannelReady(wdesc uint64) {
	w := wptrOf(wdesc)
	switch m.wordIndex(w, wsState) {
	case m.altWaiting():
		m.setWordIndex(w, wsState, m.altReady())
		m.wake(wdesc)
	case m.altEnabling():
		m.setWordIndex(w, wsState, m.altReady())
	}
}

// altWait implements alt wait: proceed if some guard is already ready,
// otherwise deschedule until one becomes so.
func (m *Machine) altWait() int {
	w := m.wptr()
	m.setWordIndex(w, 0, m.noneSelected())
	if m.wordIndex(w, wsState) == m.altReady() {
		return isa.AltwtCycles(true)
	}
	m.setWordIndex(w, wsState, m.altWaiting())
	m.blockOnComm(BlockAlt, 0, -1)
	return isa.AltwtCycles(false)
}

// disableChannel implements disable channel: A = channel, B = guard,
// C = selection offset; A becomes "this guard fired".  The first fired
// guard in disabling order wins the selection.
func (m *Machine) disableChannel() {
	ch := m.Areg
	guard := m.Breg
	off := m.Creg
	w := m.wptr()
	fired := false
	if guard != 0 {
		if m.isEventChannel(ch) {
			fired = m.eventDisable()
		} else if e, ok := m.vchanChannel(ch); ok {
			if !e.out && m.vcExt != nil {
				fired = m.vcExt.DisableInputVC(e.link, e.vc)
			}
		} else if link, isOut, ok := m.externalChannel(ch); ok {
			if !isOut && m.ext != nil {
				fired = m.ext.DisableInput(link)
			}
		} else {
			chWord := m.word(ch)
			switch chWord {
			case m.Wdesc:
				// Remove our own enable.
				m.setWord(ch, m.notProcess())
			case m.notProcess():
				// Nothing arrived.
			default:
				// An outputter is waiting.
				fired = true
			}
		}
	}
	if fired && m.wordIndex(w, 0) == m.noneSelected() {
		m.setWordIndex(w, 0, off)
	}
	m.Areg = boolWord(fired)
}
