package core_test

import (
	"testing"

	"transputer/internal/core"
	"transputer/internal/sim"
)

// The event channel (paper 2.2.2): an external stimulus completes a
// process's input from the EVENT address.

func TestEventLatched(t *testing.T) {
	// The event arrives before the process inputs: it is latched.
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	img := assemble(t, `
	ldlp 0
	mint
	ldnlp 8        -- the event channel word
	ldc 0
	in
	ldc 1
	stl 1
	stopp
`)
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	m.RaiseEvent() // before execution: latched
	res := core.Run(m, sim.Millisecond)
	if !res.Settled || m.Local(1) != 1 {
		t.Fatalf("latched event not consumed: settled=%v local1=%d", res.Settled, m.Local(1))
	}
}

func TestEventWakesWaiter(t *testing.T) {
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	img := assemble(t, `
	ldlp 0
	mint
	ldnlp 8
	ldc 0
	in
	ldc 1
	stl 1
	stopp
`)
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	// Run until the process blocks on the event.
	for i := 0; i < 20 && !m.Idle(); i++ {
		m.Step()
	}
	if !m.Idle() {
		t.Fatal("process should be blocked on the event channel")
	}
	if m.Local(1) == 1 {
		t.Fatal("process ran past the event input")
	}
	m.RaiseEvent()
	res := core.Run(m, sim.Millisecond)
	if !res.Settled || m.Local(1) != 1 {
		t.Fatalf("event wakeup failed: %v %d", res.Settled, m.Local(1))
	}
}

func TestEventAlternative(t *testing.T) {
	// ALT over the event channel and an internal channel: the event
	// fires first.
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	img := assemble(t, `
	mint
	stl 3          -- a channel nobody uses
	alt
	ldc 1
	mint
	ldnlp 8
	enbc
	ldc 1
	ldlp 3
	enbc
	altwt
	ldc b0-dend
	ldc 1
	mint
	ldnlp 8
	disc
	ldc b1-dend
	ldc 1
	ldlp 3
	disc
	altend
dend:
b0:
	ldlp 0
	mint
	ldnlp 8
	ldc 0
	in
	ldc 10
	stl 1
	stopp
b1:
	ldc 20
	stl 1
	stopp
`)
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && !m.Idle(); i++ {
		m.Step()
	}
	if !m.Idle() {
		t.Fatal("alternative should be waiting")
	}
	m.RaiseEvent()
	res := core.Run(m, sim.Millisecond)
	if !res.Settled || m.Local(1) != 10 {
		t.Fatalf("event branch not selected: settled=%v local1=%d", res.Settled, m.Local(1))
	}
}

func TestOutputOnEventFaults(t *testing.T) {
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	img := assemble(t, "\tldc 1\n\tmint\n\tldnlp 8\n\toutword\n\tstopp\n")
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	core.Run(m, sim.Millisecond)
	if m.Fault() == nil {
		t.Error("output on the event channel should fault")
	}
}
