package core

import (
	"transputer/internal/isa"
	"transputer/internal/probe"
)

// Scheduler (paper, 3.2.4).
//
// At any time a process is active (executing or on a scheduling list) or
// inactive (ready to input, ready to output, or waiting until a
// specified time).  The active processes awaiting execution are held on
// a linked list of process workspaces per priority, implemented with a
// front and a back pointer.  A context switch between same-priority
// processes saves only the instruction pointer and workspace pointer.

// priority extracts the priority bit from a process descriptor.
func priorityOf(wdesc uint64) int { return int(wdesc & 1) }

// wptrOf extracts the workspace pointer from a process descriptor.
func wptrOf(wdesc uint64) uint64 { return wdesc &^ 1 }

// CurrentPriority returns the priority of the executing process, or
// PriorityLow when idle.
func (m *Machine) CurrentPriority() int {
	if m.Wdesc == m.notProcess() {
		return PriorityLow
	}
	return priorityOf(m.Wdesc)
}

// enqueue appends a process to the scheduling list of its priority.
func (m *Machine) enqueue(wdesc uint64) {
	pri := priorityOf(wdesc)
	wptr := wptrOf(wdesc)
	np := m.notProcess()
	if m.Fptr[pri] == np {
		m.Fptr[pri] = wptr
	} else {
		m.setWordIndex(m.Bptr[pri], wsLink, wptr)
	}
	m.Bptr[pri] = wptr
	m.stats.Enqueues++
	m.qlen[pri]++
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.ProcReady, Proc: wdesc, Pri: pri, Depth: m.qlen[pri]})
	}
}

// dequeue removes and returns the front process of the given priority
// list, or notProcess when the list is empty.
func (m *Machine) dequeue(pri int) uint64 {
	np := m.notProcess()
	wptr := m.Fptr[pri]
	if wptr == np {
		return np
	}
	if wptr == m.Bptr[pri] {
		m.Fptr[pri] = np
		m.Bptr[pri] = np
	} else {
		m.Fptr[pri] = m.wordIndex(wptr, wsLink)
	}
	m.qlen[pri]--
	return wptr | uint64(pri)
}

// schedule makes a process ready to run: the hardware "run process"
// path.  It is called when a channel or timer completes, and by the
// start process instruction.  A high-priority process becoming ready
// while a low-priority one executes requests preemption, honoured at
// the next interruptible point.
func (m *Machine) schedule(wdesc uint64) {
	if m.Wdesc == m.notProcess() {
		// Processor idle: dispatch immediately.  (An idle machine never
		// holds saved low-priority state: that state is restored the
		// moment the last high-priority process stops.)
		m.Wdesc = wdesc
		m.Iptr = m.wordIndex(wptrOf(wdesc), wsIptr)
		m.Oreg = 0
		m.timesliceCount = 0
		if m.bus != nil {
			pri := priorityOf(wdesc)
			m.emit(probe.Event{Kind: probe.ProcDispatch, Proc: wdesc, Pri: pri, Depth: m.qlen[pri]})
		}
		m.notifyReady()
		return
	}
	if priorityOf(wdesc) == PriorityHigh && m.CurrentPriority() == PriorityLow {
		m.enqueue(wdesc)
		m.preemptPending = true
		return
	}
	m.enqueue(wdesc)
}

func (m *Machine) notifyReady() {
	if m.onReady != nil {
		m.onReady()
	}
}

// preemptNow performs the low-to-high switch: the interrupted process's
// full state is saved in the reserved locations so it can be resumed
// mid-expression.  Charged at isa.PreemptCycles.
func (m *Machine) preemptNow() {
	m.preemptPending = false
	high := m.dequeue(PriorityHigh)
	if high == m.notProcess() {
		return
	}
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.ProcStop, Proc: m.Wdesc, Pri: PriorityLow})
		m.emit(probe.Event{Kind: probe.Preempt, Proc: high, Pri: PriorityHigh,
			Dur: m.cycleDur(isa.PreemptCycles)})
	}
	m.savedLow.valid = true
	m.savedLow.Iptr = m.Iptr
	m.savedLow.Wdesc = m.Wdesc
	m.savedLow.A = m.Areg
	m.savedLow.B = m.Breg
	m.savedLow.C = m.Creg
	m.savedLow.O = m.Oreg
	m.savedLow.longOp = m.longOp
	m.longOp = nil
	m.Wdesc = high
	m.Iptr = m.wordIndex(wptrOf(high), wsIptr)
	m.Oreg = 0
	m.pendingSwitchCycles += isa.PreemptCycles
	m.stats.Preemptions++
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.ProcDispatch, Proc: high, Pri: PriorityHigh,
			Depth: m.qlen[PriorityHigh]})
	}
}

// deschedule is invoked by instructions that stop the current process
// (blocked communication, stop process, end process, timer wait).  The
// next process is dispatched; if none is ready the interrupted
// low-priority state is resumed, and failing that the machine idles.
func (m *Machine) deschedule() {
	np := m.notProcess()
	wasHigh := m.CurrentPriority() == PriorityHigh
	if m.bus != nil && m.Wdesc != np {
		m.emit(probe.Event{Kind: probe.ProcStop, Proc: m.Wdesc, Pri: priorityOf(m.Wdesc)})
	}
	if next := m.dequeue(PriorityHigh); next != np {
		m.dispatch(next)
		if m.bus != nil {
			m.emit(probe.Event{Kind: probe.ProcDispatch, Proc: next,
				Pri: PriorityHigh, Depth: m.qlen[PriorityHigh]})
		}
		return
	}
	// No high-priority work.  Resume an interrupted low-priority
	// process before consulting the low-priority list, restoring its
	// full register state (charged at isa.ResumeLowCycles).
	if m.savedLow.valid {
		m.restoreSavedLow()
		return
	}
	if next := m.dequeue(PriorityLow); next != np {
		var charge int
		if wasHigh {
			m.pendingSwitchCycles += isa.ResumeLowCycles
			charge = isa.ResumeLowCycles
		}
		m.dispatch(next)
		if m.bus != nil {
			m.emit(probe.Event{Kind: probe.ProcDispatch, Proc: next,
				Pri: PriorityLow, Depth: m.qlen[PriorityLow], Dur: m.cycleDur(charge)})
		}
		return
	}
	m.Wdesc = np // idle
}

// dispatch makes a ready process current.  Only the instruction pointer
// and workspace pointer are restored: "a context switch between
// processes, both executing at priority 1, ... affects only the
// instruction pointer and the workspace pointer."
func (m *Machine) dispatch(wdesc uint64) {
	m.Wdesc = wdesc
	m.Iptr = m.wordIndex(wptrOf(wdesc), wsIptr)
	m.Oreg = 0
	m.timesliceCount = 0
	m.stats.Deschedules++
}

func (m *Machine) restoreSavedLow() {
	m.Iptr = m.savedLow.Iptr
	m.Wdesc = m.savedLow.Wdesc
	m.Areg = m.savedLow.A
	m.Breg = m.savedLow.B
	m.Creg = m.savedLow.C
	m.Oreg = m.savedLow.O
	m.longOp = m.savedLow.longOp
	m.savedLow.longOp = nil
	m.savedLow.valid = false
	m.pendingSwitchCycles += isa.ResumeLowCycles
	m.stats.Deschedules++
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.ProcDispatch, Proc: m.Wdesc, Pri: PriorityLow,
			Depth: m.qlen[PriorityLow], Dur: m.cycleDur(isa.ResumeLowCycles)})
	}
}

// blockCurrent saves the current process's instruction pointer and
// deschedules it.  Stop process uses it directly (a stopped process is
// a deliberate state); communication paths use blockOnComm so the
// waiting count feeds deadlock diagnostics.
func (m *Machine) blockCurrent() {
	m.setWordIndex(wptrOf(m.Wdesc), wsIptr, m.Iptr)
	m.deschedule()
}

// blockOnComm blocks the current process pending a channel, timer or
// event completion, recording what it waits for so the deadlock
// watchdog can name it.  addr is the channel word (or wakeup clock for
// timers); link is the link index for external transfers, else -1.
func (m *Machine) blockOnComm(kind BlockKind, addr uint64, link int) {
	m.waiting++
	m.blocked = append(m.blocked, BlockedProcess{
		Wdesc: m.Wdesc, Iptr: m.Iptr, Kind: kind, Addr: addr,
		Link: link, Since: m.now(),
	})
	m.blockCurrent()
}

// wake makes a communication-blocked process ready again.
func (m *Machine) wake(wdesc uint64) {
	if m.waiting > 0 {
		m.waiting--
	}
	for i := range m.blocked {
		if m.blocked[i].Wdesc == wdesc {
			m.blocked[i] = m.blocked[len(m.blocked)-1]
			m.blocked = m.blocked[:len(m.blocked)-1]
			break
		}
	}
	m.schedule(wdesc)
}

// WaitingProcesses reports how many processes are currently blocked on
// a channel, timer or event: an idle machine with a nonzero count is
// deadlocked.
func (m *Machine) WaitingProcesses() int { return m.waiting }

// timesliceCheck is applied at descheduling points (jump and loop end):
// a low-priority process that has exceeded its timeslice moves to the
// back of its list.  High-priority processes are never timesliced
// ("a high priority process proceeds until it terminates or has to
// wait for a communication").
func (m *Machine) timesliceCheck() {
	if m.CurrentPriority() != PriorityLow {
		return
	}
	if m.cfg.TimesliceCycles <= 0 || m.timesliceCount < m.cfg.TimesliceCycles {
		return
	}
	if m.Fptr[PriorityLow] == m.notProcess() {
		m.timesliceCount = 0
		return // nothing else to run; keep going
	}
	m.stats.Timeslices++
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.Timeslice, Proc: m.Wdesc, Pri: PriorityLow})
	}
	m.setWordIndex(wptrOf(m.Wdesc), wsIptr, m.Iptr)
	m.enqueue(m.Wdesc)
	m.deschedule()
}
