package core_test

import (
	"testing"

	"transputer/internal/asm"
	"transputer/internal/core"
	"transputer/internal/sim"
)

// assemble builds an image for a 32-bit machine.
func assemble(t *testing.T, src string) core.Image {
	t.Helper()
	a, err := asm.Assemble(src, 4)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return a.Image
}

// runSrc assembles, loads and runs a program on a 64 KiB T424 until it
// settles, failing the test on faults or timeout.
func runSrc(t *testing.T, src string) *core.Machine {
	t.Helper()
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	if err := m.Load(assemble(t, src)); err != nil {
		t.Fatalf("load: %v", err)
	}
	res := core.Run(m, 100*sim.Millisecond)
	if err := m.Fault(); err != nil {
		t.Fatalf("fault: %v", err)
	}
	if !res.Settled {
		t.Fatalf("program did not settle in %v", res.Time)
	}
	return m
}

// cyclesOf measures the cycle cost of a code fragment by differencing
// against an empty program with the same epilogue.
func cyclesOf(t *testing.T, fragment string) uint64 {
	t.Helper()
	full := runSrc(t, fragment+"\n\tstopp\n")
	empty := runSrc(t, "\tstopp\n")
	return full.Stats().Cycles - empty.Stats().Cycles
}

// TestPaperTableDirectFunctions reproduces the byte and cycle counts of
// the paper's section 3.2.6 table on the running machine.
func TestPaperTableDirectFunctions(t *testing.T) {
	// x := 0  ->  load constant 0; store local x      (2 bytes, 2 cycles)
	m := runSrc(t, "\tldc 0\n\tstl 1\n\tstopp\n")
	if m.Local(1) != 0 {
		t.Errorf("x = %d, want 0", m.Local(1))
	}
	if c := cyclesOf(t, "\tldc 0\n\tstl 1"); c != 2 {
		t.Errorf("x := 0 took %d cycles, want 2", c)
	}

	// x := y  ->  load local y; store local x         (2 bytes, 3 cycles)
	m = runSrc(t, "\tldc 7\n\tstl 2\n\tldl 2\n\tstl 1\n\tstopp\n")
	if m.Local(1) != 7 {
		t.Errorf("x = %d, want 7", m.Local(1))
	}
	if c := cyclesOf(t, "\tldl 2\n\tstl 1"); c != 3 {
		t.Errorf("x := y took %d cycles, want 3", c)
	}
}

// TestPaperStaticLink reproduces the z := 1 example: z lives in an
// outer workspace reached through a static link (3 bytes, 5 cycles).
func TestPaperStaticLink(t *testing.T) {
	// Simulate the outer workspace with the data area: local 2 holds
	// its address (the "staticlink"); z is word 0 there.
	src := `
	ldpi zspace
	stl 2
	ldc 1
	ldl 2
	stnl 0
	stopp
	align
zspace:
	word 0
`
	m := runSrc(t, src)
	if got := m.ReadWord(m.Local(2)); got != 1 {
		t.Errorf("z = %d, want 1", got)
	}
	// Cycle count: difference full program minus the same program
	// without the assignment (the static link setup stays in both).
	setup := "\tldpi zspace\n\tstl 2\n"
	tail := "\tstopp\n\talign\nzspace:\n\tword 0\n"
	full := runSrc(t, setup+"\tldc 1\n\tldl 2\n\tstnl 0\n"+tail)
	base := runSrc(t, setup+tail)
	if c := full.Stats().Cycles - base.Stats().Cycles; c != 5 {
		t.Errorf("z := 1 took %d cycles, want 5", c)
	}
}

// TestPaperExpressionTable reproduces section 3.2.9: x+2 (2 bytes, 3
// cycles) and (v+w)*(y+z) (8 bytes, 49 cycles on a 32-bit machine).
func TestPaperExpressionTable(t *testing.T) {
	if c := cyclesOf(t, "\tldl 1\n\tadc 2"); c != 3 {
		t.Errorf("x + 2 took %d cycles, want 3", c)
	}
	// v=3, w=4, y=5, z=6 in locals 1..4: (3+4)*(5+6) = 77.
	setup := "\tldc 3\n\tstl 1\n\tldc 4\n\tstl 2\n\tldc 5\n\tstl 3\n\tldc 6\n\tstl 4\n"
	expr := "\tldl 1\n\tldl 2\n\tadd\n\tldl 3\n\tldl 4\n\tadd\n\tmul"
	m := runSrc(t, setup+expr+"\n\tstl 5\n\tstopp\n")
	if m.Local(5) != 77 {
		t.Errorf("(v+w)*(y+z) = %d, want 77", m.Local(5))
	}
	full := runSrc(t, setup+expr+"\n\tstopp\n")
	base := runSrc(t, setup+"\tstopp\n")
	got := full.Stats().Cycles - base.Stats().Cycles
	want := uint64(2 + 2 + 1 + 2 + 2 + 1 + (7 + 32))
	if got != want {
		t.Errorf("(v+w)*(y+z) took %d cycles, want %d", got, want)
	}
	// Byte count: 6 single-byte instructions plus 2 for multiply.
	frag := assemble(t, expr)
	if len(frag.Code) != 8 {
		t.Errorf("(v+w)*(y+z) is %d bytes, want 8", len(frag.Code))
	}
}

// TestPaperPrefixExample reproduces section 3.2.7: loading #754 uses
// prefix #7, prefix #5, load constant #4.
func TestPaperPrefixExample(t *testing.T) {
	m := runSrc(t, "\tldc #754\n\tstl 1\n\tstopp\n")
	if m.Local(1) != 0x754 {
		t.Errorf("A = %#x, want #754", m.Local(1))
	}
	img := assemble(t, "\tldc #754")
	want := []byte{0x27, 0x25, 0x44}
	if string(img.Code) != string(want) {
		t.Errorf("encoding = % X, want % X", img.Code, want)
	}
}

func TestControlFlow(t *testing.T) {
	// Count down from 10, summing: 10+9+...+1 = 55.
	src := `
	ldc 10
	stl 1
	ldc 0
	stl 2
loop:
	ldl 1
	cj done
	ldl 2
	ldl 1
	add
	stl 2
	ldl 1
	adc -1
	stl 1
	j loop
done:
	stopp
`
	m := runSrc(t, src)
	if m.Local(2) != 55 {
		t.Errorf("sum = %d, want 55", m.Local(2))
	}
}

func TestCallReturn(t *testing.T) {
	// A procedure that doubles its argument (passed in A).
	src := `
	ldc 21
	call double
	stl 1
	stopp
double:
	ajw -1        -- one local for scratch
	ldl 2         -- argument saved by call at frame word 1 (A)
	ldl 2
	add
	ajw 1
	; result must go back in A: reload and return
	stl 1         -- overwrite saved A slot
	ldl 1
	ret
`
	// Simpler: compute into A then ret.  call saves A at w+1; after
	// ajw -1 it is at w+2.  ret expects Wptr back at the frame.
	m := runSrc(t, src)
	if m.Local(1) != 42 {
		t.Errorf("double(21) = %d, want 42", m.Local(1))
	}
}

func TestEqcAndComparisons(t *testing.T) {
	src := `
	ldc 5
	eqc 5
	stl 1
	ldc 5
	eqc 6
	stl 2
	ldc 3
	ldc 7
	gt        -- B > A: 3 > 7 is false
	stl 3
	ldc 7
	ldc 3
	gt        -- 7 > 3 is true
	stl 4
	stopp
`
	m := runSrc(t, src)
	if m.Local(1) != 1 || m.Local(2) != 0 {
		t.Errorf("eqc: %d %d", m.Local(1), m.Local(2))
	}
	if m.Local(3) != 0 || m.Local(4) != 1 {
		t.Errorf("gt: %d %d", m.Local(3), m.Local(4))
	}
}

func TestByteAccessAndSubscripts(t *testing.T) {
	src := `
	ldpi tab
	stl 1
	ldl 1
	lb
	stl 2          -- tab[0] = 11
	ldc 2
	ldl 1
	bsub
	lb
	stl 3          -- tab[2] = 33
	ldc 1
	ldl 1
	wsub
	ldnl 0
	stl 4          -- word 1 of tab
	ldc 77
	ldl 1
	sb             -- tab[0] := 77
	ldl 1
	lb
	stl 5
	stopp
	align
tab:
	byte 11, 22, 33, 44
	word 123456
`
	m := runSrc(t, src)
	if m.Local(2) != 11 || m.Local(3) != 33 {
		t.Errorf("byte loads: %d %d", m.Local(2), m.Local(3))
	}
	if m.Local(4) != 123456 {
		t.Errorf("word subscript: %d", m.Local(4))
	}
	if m.Local(5) != 77 {
		t.Errorf("store byte: %d", m.Local(5))
	}
}

// TestParallelCommunication builds a two-process program by hand: the
// parent outputs a word on an internal channel, a child started with
// start process inputs it, and end process joins them.
func TestParallelCommunication(t *testing.T) {
	// The joining workspace W holds the continuation address at W[0]
	// and the component count at W[1]; each component (including the
	// one the parent becomes) runs in its own workspace below W, as the
	// occam compiler arranges.
	src := `
	mint
	stl 3          -- channel word at W[3] := NotProcess
	ldc 2
	stl 1          -- component count at W[1]
	ldpi cont
	stl 0          -- continuation address at W[0]
	ldc child-after
	ldlp -40
	startp
after:
	ajw -20        -- parent becomes component 1 in its own workspace
	ldc 42
	ldlp 23        -- channel W[3]
	outword        -- parent outputs 42
	ldlp 20
	endp
child:
	ldlp 3         -- destination: child local 3
	ldlp 43        -- channel W[3] (child ws = W - 40)
	ldc 4
	in
	ldl 3
	stl 44         -- store result in W[4]
	ldlp 40
	endp
cont:
	ldc 99
	stl 5
	stopp
`
	m := runSrc(t, src)
	if m.Local(4) != 42 {
		t.Errorf("message = %d, want 42", m.Local(4))
	}
	if m.Local(5) != 99 {
		t.Errorf("continuation did not run: local5 = %d", m.Local(5))
	}
	st := m.Stats()
	if st.MessagesIn != 1 || st.MessagesOut != 1 {
		t.Errorf("messages in/out = %d/%d", st.MessagesIn, st.MessagesOut)
	}
}

// TestCommunicationCycleCost checks the paper's formula on a running
// rendezvous: the completing side pays max(24, 21+8n/wordlength).
func TestCommunicationCycleCost(t *testing.T) {
	m := runSrc(t, `
	mint
	stl 3
	ldc 2
	stl 1
	ldpi cont
	stl 0
	ldc child-after
	ldlp -40
	startp
after:
	ajw -20
	ldc 42
	ldlp 23
	outword
	ldlp 20
	endp
child:
	ldlp 3
	ldlp 43
	ldc 4
	in
	ldlp 40
	endp
cont:
	stopp
`)
	// Both sides completed; exact totals are covered by the cyclesOf
	// tests — here verify the instruction-level charge exists and the
	// run used at least two communication charges (24 each minimum).
	if m.Stats().Cycles < 48 {
		t.Errorf("total cycles %d implausibly small", m.Stats().Cycles)
	}
}

// TestAlternative exercises alt/enbc/altwt/disc/altend: the child waits
// on two channels; the parent sends on the second.
func TestAlternative(t *testing.T) {
	src := `
	mint
	stl 5          -- ch1
	mint
	stl 6          -- ch2
	ldc 2
	stl 1
	ldpi cont
	stl 0
	ldc child-after
	ldlp -40
	startp
after:
	ajw -20
	ldc 7
	ldlp 26        -- ch2 at W[6]
	outword        -- send on ch2
	ldlp 20
	endp
child:
	alt
	ldc 1
	ldlp 45
	enbc
	ldc 1
	ldlp 46
	enbc
	altwt
	ldc b1-dend
	ldc 1
	ldlp 45
	disc
	ldc b2-dend
	ldc 1
	ldlp 46
	disc
	altend
dend:
b1:
	ldc 111
	stl 47
	j cdone
b2:
	ldlp 3
	ldlp 46
	ldc 4
	in
	ldl 3
	stl 47
	j cdone
cdone:
	ldlp 40
	endp
cont:
	stopp
`
	m := runSrc(t, src)
	if m.Local(7) != 7 {
		t.Errorf("selected branch stored %d, want 7 (channel 2 message)", m.Local(7))
	}
}

// TestAlternativeReadyFirst: when the sender is already waiting, alt
// wait should not block.
func TestAlternativeReadyFirst(t *testing.T) {
	src := `
	mint
	stl 5
	ldc 2
	stl 1
	ldpi cont
	stl 0
	ldc child-after
	ldlp -40
	startp
after:
	ajw -20
	; parent ALTs after the child has blocked outputting
	alt
	ldc 1
	ldlp 25        -- channel at W[5]
	enbc
	altwt
	ldc b1-dend
	ldc 1
	ldlp 25
	disc
	altend
dend:
b1:
	ldlp 24        -- destination W[4]
	ldlp 25
	ldc 4
	in
	ldlp 20
	endp
child:
	ldc 31
	ldlp 45        -- channel at W[5] (child ws = W - 40)
	outword
	ldlp 40
	endp
cont:
	stopp
`
	m := runSrc(t, src)
	if m.Local(4) != 31 {
		t.Errorf("message = %d, want 31", m.Local(4))
	}
}

// TestTimerDelayedInput: a delayed input waits until the clock passes
// the given time (paper, 2.2.2).
func TestTimerDelayedInput(t *testing.T) {
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	img := assemble(t, `
	ldtimer
	adc 5
	tin
	ldc 1
	stl 1
	stopp
`)
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	res := core.Run(m, sim.Second)
	if !res.Settled {
		t.Fatal("did not settle")
	}
	if m.Local(1) != 1 {
		t.Error("program did not complete")
	}
	// 5 low-priority ticks of 64 µs each: at least 320 µs must have
	// elapsed.
	if res.Time < 5*64*sim.Microsecond {
		t.Errorf("settled at %v, want >= 320µs", res.Time)
	}
}

// TestPriorityPreemption: a low-priority process makes a high-priority
// process runnable with run process; the high process runs immediately.
func TestPriorityPreemption(t *testing.T) {
	src := `
	ldc 0
	stl 5
	ldpi child
	ldlp -40
	stnl -1        -- child Iptr
	ldlp -40
	runp           -- child Wdesc: even address -> priority 0
	ldl 5
	adc 10
	stl 6          -- runs after the high-priority child
	stopp
child:
	ldc 1
	stl 45         -- parent local 5 := 1 (child ws offset 40)
	stopp
`
	m := runSrc(t, src)
	if m.Local(5) != 1 {
		t.Errorf("child did not run: local5 = %d", m.Local(5))
	}
	if m.Local(6) != 11 {
		t.Errorf("parent observed %d, want 11 (child ran first)", m.Local(6))
	}
	if m.Stats().Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", m.Stats().Preemptions)
	}
}

// TestBlockMove copies a region with move message, exercising the
// interruptible installment machinery.
func TestBlockMove(t *testing.T) {
	src := `
	ldpi src
	ldpi dst
	ldc 256
	move
	ldpi dst
	lb
	stl 1
	ldpi dst
	adc 255
	lb
	stl 2
	stopp
	align
src:
	space 256
dst:
	space 256
`
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	a, err := asm.Assemble(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(a.Image); err != nil {
		t.Fatal(err)
	}
	// src label has 1 byte initialised; fill the rest directly.
	srcAddr := m.CodeStart() + uint64(a.Labels["src"])
	for i := 0; i < 256; i++ {
		m.WriteBytes(srcAddr+uint64(i), []byte{byte(i + 1)})
	}
	res := core.Run(m, 100*sim.Millisecond)
	if !res.Settled || m.Fault() != nil {
		t.Fatalf("settled=%v fault=%v", res.Settled, m.Fault())
	}
	if m.Local(1) != 1 || m.Local(2) != 0 {
		t.Errorf("moved bytes: first=%d last=%d, want 1 and 0", m.Local(1), m.Local(2))
	}
}

// TestWordLengthIndependence runs the same program bytes on a 32-bit
// T424 and a 16-bit T222 and requires identical results — the paper's
// word-length independence claim (3.3).
func TestWordLengthIndependence(t *testing.T) {
	src := `
	ldc 100
	stl 1
	ldc 23
	ldl 1
	add
	stl 2
	ldl 2
	eqc 123
	stl 3
	ldc 9
	ldc 5
	sub
	stl 4
	stopp
`
	run := func(bpw int, cfg core.Config) *core.Machine {
		a, err := asm.Assemble(src, bpw)
		if err != nil {
			t.Fatal(err)
		}
		m := core.MustNew(cfg)
		if err := m.Load(a.Image); err != nil {
			t.Fatal(err)
		}
		core.Run(m, 10*sim.Millisecond)
		return m
	}
	m32 := run(4, core.T424().WithMemory(32*1024))
	m16 := run(2, core.T222().WithMemory(32*1024))
	for i := 1; i <= 4; i++ {
		if m32.Local(i) != m16.Local(i) {
			t.Errorf("local %d: 32-bit %d vs 16-bit %d", i, m32.Local(i), m16.Local(i))
		}
	}
	// The code bytes themselves are identical: instruction encoding is
	// word-length independent.
	a32, _ := asm.Assemble(src, 4)
	a16, _ := asm.Assemble(src, 2)
	if string(a32.Image.Code) != string(a16.Image.Code) {
		t.Error("code images differ between word lengths")
	}
}

// TestErrorFlagOverflow: checked arithmetic sets the error flag.
func TestErrorFlagOverflow(t *testing.T) {
	m := runSrc(t, `
	mint
	adc -1
	stl 1
	stopp
`)
	if !m.ErrorFlag() {
		t.Error("MOSTNEG-1 should set the error flag")
	}
}

func TestStatsInstrumentation(t *testing.T) {
	m := runSrc(t, "\tldc 1\n\tstl 1\n\tldc #754\n\tstl 2\n\tstopp\n")
	st := m.Stats()
	if st.Instructions != 5 {
		t.Errorf("instructions = %d, want 5", st.Instructions)
	}
	// ldc 1, stl 1, stl 2 are single-byte; ldc #754 is 3 bytes; stopp 2.
	if st.SingleByte != 3 {
		t.Errorf("single byte = %d, want 3", st.SingleByte)
	}
	if st.InstructionBytes != 8 {
		t.Errorf("bytes = %d, want 8", st.InstructionBytes)
	}
	if st.CodeBytes != 8 {
		t.Errorf("code bytes = %d", st.CodeBytes)
	}
}
