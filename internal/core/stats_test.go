package core_test

import (
	"fmt"
	"testing"

	"transputer/internal/core"
	"transputer/internal/isa"
)

// commProgram builds a two-process program that passes one n-byte
// message over an internal channel: the parent starts a child, blocks
// inputting from channel W[3], and the child outputs from a static
// buffer.  Everything except the message length is identical across
// instances, so cycle differences isolate the communication charge.
func commProgram(n int) string {
	return fmt.Sprintf(`
	mint
	stl 3          -- channel word
	ldc 2
	stl 1
	ldpi cont
	stl 0
	ldc child-after
	ldlp -40
	startp
after:
	ajw -20
	ldpi bufin
	ldlp 23        -- channel W[3] seen from W-20
	ldc %d
	in
	ldlp 20
	endp
child:
	ldpi bufout
	ldlp 43        -- channel W[3] seen from W-40
	ldc %d
	out
	ldlp 40
	endp
cont:
	stopp
bufout:
	space 256
bufin:
	space 256
`, n, n)
}

// TestMessageCounters checks the communication counters for a single
// internal rendezvous.
func TestMessageCounters(t *testing.T) {
	m := runSrc(t, commProgram(16))
	st := m.Stats()
	if st.MessagesIn != 1 || st.MessagesOut != 1 {
		t.Errorf("messages = %d in / %d out, want 1/1", st.MessagesIn, st.MessagesOut)
	}
	if st.ExternalIn != 0 || st.ExternalOut != 0 {
		t.Errorf("external = %d in / %d out, want 0/0 for an internal channel",
			st.ExternalIn, st.ExternalOut)
	}
	// Only the completing side records the bytes moved.
	if st.BytesIn+st.BytesOut != 16 {
		t.Errorf("bytes = %d in + %d out, want 16 total", st.BytesIn, st.BytesOut)
	}
	if st.Enqueues == 0 {
		t.Error("starting the child should enqueue it")
	}
	if st.Deschedules == 0 {
		t.Error("blocking on the channel should deschedule")
	}
}

// TestChannelCostModel checks the paper's communication charge,
// max(24, 21 + 8n/wordlength) cycles (section 3.2.10): two runs that
// differ only in message length must differ by exactly the model's
// charge difference.  240 bytes also exercises the interruptible burn
// path for charges beyond the inline limit.
func TestChannelCostModel(t *testing.T) {
	small := runSrc(t, commProgram(16)).Stats().Cycles
	large := runSrc(t, commProgram(240)).Stats().Cycles
	want := uint64(isa.CommunicationCycles(240, 32) - isa.CommunicationCycles(16, 32))
	if large-small != want {
		t.Errorf("cycle delta = %d, want %d (model: %d vs %d cycles)",
			large-small, want,
			isa.CommunicationCycles(240, 32), isa.CommunicationCycles(16, 32))
	}
	// The blocked side's minimum charge means even a zero-length
	// exchange costs at least 24 cycles per side.
	if isa.CommunicationCycles(0, 32) != 24 {
		t.Errorf("CommunicationCycles(0) = %d, want 24", isa.CommunicationCycles(0, 32))
	}
}

// TestStatsAdd: folding one Stats into another must carry every
// counter, including the per-function array and the lazily allocated
// per-opcode map — aggregate views drop information otherwise.
func TestStatsAdd(t *testing.T) {
	a := core.Stats{
		Instructions:     10,
		InstructionBytes: 14,
		SingleByte:       8,
		Cycles:           100,
		Enqueues:         1,
		Deschedules:      2,
		Preemptions:      3,
		Timeslices:       4,
		MessagesIn:       5,
		MessagesOut:      6,
		BytesIn:          7,
		BytesOut:         8,
		ExternalIn:       9,
		ExternalOut:      10,
		CodeBytes:        32,
	}
	a.FunctionCounts[3] = 7
	b := core.Stats{Instructions: 5, Cycles: 50, CodeBytes: 16,
		OpCounts: map[uint16]uint64{0x2A: 3, 0x05: 1}}
	b.FunctionCounts[3] = 2
	b.FunctionCounts[15] = 1

	a.Add(b)
	if a.Instructions != 15 || a.Cycles != 150 || a.CodeBytes != 48 {
		t.Errorf("scalars: %+v", a)
	}
	if a.FunctionCounts[3] != 9 || a.FunctionCounts[15] != 1 {
		t.Errorf("function counts: %v", a.FunctionCounts)
	}
	// The destination had no OpCounts map; Add must allocate one
	// rather than dropping the tallies.
	if a.OpCounts[0x2A] != 3 || a.OpCounts[0x05] != 1 {
		t.Errorf("op counts: %v", a.OpCounts)
	}
	// Adding into an existing map accumulates.
	a.Add(core.Stats{OpCounts: map[uint16]uint64{0x2A: 2}})
	if a.OpCounts[0x2A] != 5 {
		t.Errorf("op counts after second add: %v", a.OpCounts)
	}
	// The source map must not be aliased.
	b.OpCounts[0x2A] = 99
	if a.OpCounts[0x2A] != 5 {
		t.Error("Add aliased the source OpCounts map")
	}
}
