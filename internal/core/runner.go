package core

import "transputer/internal/sim"

// Driver is the scheduling surface a Runner needs from the simulation
// engine.  A standalone *sim.Kernel and a coordinator *sim.Shard both
// satisfy it; the batch-stepping extensions (NextTime, Horizon,
// SetOffset, Stamp, AdvanceTo) let the runner execute many
// instructions per heap event while observable time stays exactly as
// if each instruction had been its own event.
type Driver interface {
	Now() sim.Time
	Schedule(at sim.Time, fn func()) sim.EventID
	Cancel(id sim.EventID)
	NextTime() (sim.Time, bool)
	Horizon() sim.Time
	SetOffset(d sim.Time)
	Stamp() uint64
	AdvanceTo(t sim.Time)
	// PromiseQuiet records that the event id — the runner's pending
	// continuation — will not start or acknowledge any link transfer
	// before the given time.  A sharded coordinator uses the promise to
	// extend neighbouring windows past the per-link lookahead; a
	// standalone kernel ignores it.  The promise is superseded the
	// moment id fires (the runner re-promises, or not, at the next
	// batch end).
	PromiseQuiet(id sim.EventID, until sim.Time)
}

// Runner drives a machine from a simulation driver.  Instructions are
// executed in batches: one heap event runs a tight loop of Machine.Step
// calls, advancing a virtual-time offset per instruction, until the
// next scheduled event, the shard's window horizon, or the machine
// idling or halting.  The machine's ready callback resumes a stopped
// runner.
type Runner struct {
	M      *Machine
	drv    Driver
	active bool
	// stepFn is r.step bound once: the runner schedules a continuation
	// per batch, and a fresh method value each time is an allocation on
	// the engine's hottest cycle.
	stepFn func()
	// BusyCycles counts cycles the processor spent executing; the
	// difference from elapsed time is idle time.
	BusyCycles uint64
}

// NewRunner attaches a machine to a driver (as its clock) and arranges
// stepping.  The external engine, if any, must be attached by the
// caller before or after.
func NewRunner(d Driver, m *Machine) *Runner {
	r := &Runner{M: m, drv: d}
	r.stepFn = r.step
	m.Attach(driverClock{d}, nil)
	m.OnReady(r.resume)
	return r
}

// driverClock adapts a Driver to the machine's Clock interface.
type driverClock struct{ d Driver }

func (c driverClock) Now() sim.Time                        { return c.d.Now() }
func (c driverClock) At(t sim.Time, fn func()) sim.EventID { return c.d.Schedule(t, fn) }
func (c driverClock) Cancel(id sim.EventID)                { c.d.Cancel(id) }

// Start begins stepping the machine if it has work.
func (r *Runner) Start() { r.resume() }

func (r *Runner) resume() {
	if r.active || r.M.Halted() {
		return
	}
	r.active = true
	r.drv.Schedule(r.drv.Now(), r.stepFn)
}

// bound returns the exclusive virtual time the current batch may run
// to: the earlier of the next scheduled event (which must interleave
// exactly as it would with one event per instruction) and the driver's
// horizon (the shard's conservative window).
func (r *Runner) bound() sim.Time {
	b := r.drv.Horizon()
	if t, ok := r.drv.NextTime(); ok && t < b {
		b = t
	}
	return b
}

// step executes one batch of instructions.  The first instruction runs
// unconditionally (its event was scheduled inside the bound); each
// subsequent instruction runs only while the batch's virtual time
// stays strictly before bound(), so any pending event — scheduled
// earlier, hence with an earlier tie-break — fires first, exactly as
// in one-event-per-instruction stepping.
func (r *Runner) step() {
	r.active = false
	m := r.M
	if m.Halted() {
		return
	}
	d := r.drv
	base := d.Now()
	cyc := int64(m.cfg.CycleNs)
	var off, last sim.Time
	stamp := d.Stamp()
	bound := r.bound()
	for {
		last = base + off
		// Fast path: a run of pure predecoded records executes in one
		// call, with the same per-instruction accounting and the same
		// bound semantics as the stepwise loop below.  Pure records
		// cannot schedule or cancel events, so the cached bound stays
		// valid; they cannot deschedule, so only a halt can park the
		// machine.
		if n, lastC := m.StepRun(int64(bound - (base + off))); n > 0 {
			r.BusyCycles += uint64(n)
			off += sim.Time(int64(n) * cyc)
			if m.Halted() {
				last = base + off - sim.Time(int64(lastC)*cyc)
				d.SetOffset(0)
				d.AdvanceTo(last)
				return
			}
			if base+off >= bound {
				break
			}
			d.SetOffset(off)
			continue
		}
		cycles := m.Step()
		r.BusyCycles += uint64(cycles)
		delay := sim.Time(int64(cycles) * int64(m.cfg.CycleNs))
		if cycles == 0 {
			delay = sim.Time(m.cfg.CycleNs)
		}
		off += delay
		if m.Halted() || (m.Idle() && m.longOp == nil && m.pendingSwitchCycles == 0) {
			// The machine stopped producing work at `last`; park the
			// clock there, as stepwise execution would have.
			d.SetOffset(0)
			d.AdvanceTo(last)
			return
		}
		if s := d.Stamp(); s != stamp {
			stamp = s
			bound = r.bound()
		}
		if base+off >= bound {
			break
		}
		d.SetOffset(off)
	}
	d.SetOffset(0)
	r.active = true
	id := d.Schedule(base+off, r.stepFn)
	if ahead := m.SendLookaheadCycles(); ahead > 0 {
		d.PromiseQuiet(id, base+off+sim.Time(int64(ahead)*cyc))
	}
}

// RunResult describes why a standalone run stopped.
type RunResult struct {
	Time    sim.Time // final simulated time
	Settled bool     // true if the machine quiesced (idle, no pending events)
}

// Run executes a loaded machine standalone (no links) until it
// quiesces or the time limit passes.  A zero limit means no limit.
func Run(m *Machine, limit sim.Time) RunResult {
	k := sim.NewKernel()
	r := NewRunner(k, m)
	r.Start()
	if limit > 0 {
		settled := k.RunUntil(limit)
		return RunResult{Time: k.Now(), Settled: settled}
	}
	k.Run()
	return RunResult{Time: k.Now(), Settled: true}
}
