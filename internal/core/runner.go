package core

import "transputer/internal/sim"

// Runner drives a machine from a simulation kernel, scheduling one
// event per executed instruction (or long-operation installment).  When
// the machine idles the runner stops scheduling; the machine's
// ready callback resumes it.
type Runner struct {
	M      *Machine
	kernel *sim.Kernel
	active bool
	// BusyCycles counts cycles the processor spent executing; the
	// difference from elapsed time is idle time.
	BusyCycles uint64
}

// NewRunner attaches a machine to a kernel (as its clock) and arranges
// stepping.  The external engine, if any, must be attached by the
// caller before or after.
func NewRunner(k *sim.Kernel, m *Machine) *Runner {
	r := &Runner{M: m, kernel: k}
	m.Attach(kernelClock{k}, nil)
	m.OnReady(r.resume)
	return r
}

// kernelClock adapts a sim.Kernel to the machine's Clock interface.
type kernelClock struct{ k *sim.Kernel }

func (c kernelClock) Now() sim.Time                        { return c.k.Now() }
func (c kernelClock) At(t sim.Time, fn func()) sim.EventID { return c.k.Schedule(t, fn) }
func (c kernelClock) Cancel(id sim.EventID)                { c.k.Cancel(id) }

// Start begins stepping the machine if it has work.
func (r *Runner) Start() { r.resume() }

func (r *Runner) resume() {
	if r.active || r.M.Halted() {
		return
	}
	r.active = true
	r.kernel.Schedule(r.kernel.Now(), r.step)
}

func (r *Runner) step() {
	r.active = false
	m := r.M
	if m.Halted() {
		return
	}
	cycles := m.Step()
	r.BusyCycles += uint64(cycles)
	if m.Halted() {
		return
	}
	if m.Idle() && m.longOp == nil && m.pendingSwitchCycles == 0 {
		// Nothing to run; wait for a timer, link or peer event.
		return
	}
	r.active = true
	delay := sim.Time(int64(cycles) * int64(m.cfg.CycleNs))
	if cycles == 0 {
		delay = sim.Time(m.cfg.CycleNs)
	}
	r.kernel.Schedule(r.kernel.Now()+delay, r.step)
}

// RunResult describes why a standalone run stopped.
type RunResult struct {
	Time    sim.Time // final simulated time
	Settled bool     // true if the machine quiesced (idle, no pending events)
}

// Run executes a loaded machine standalone (no links) until it
// quiesces or the time limit passes.  A zero limit means no limit.
func Run(m *Machine, limit sim.Time) RunResult {
	k := sim.NewKernel()
	r := NewRunner(k, m)
	r.Start()
	if limit > 0 {
		settled := k.RunUntil(limit)
		return RunResult{Time: k.Now(), Settled: settled}
	}
	k.Run()
	return RunResult{Time: k.Now(), Settled: true}
}
