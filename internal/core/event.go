package core

import "transputer/internal/probe"

// The event channel (the ninth reserved word, after the link channels)
// lets external hardware signal a process: "the equivalent of an
// interrupt (a high priority process being scheduled in order to
// respond to an external stimulus) is designed entirely in occam, as
// all input and output is formalized as channel communication" (paper,
// 2.2.2).  A process inputs from the event channel; RaiseEvent, called
// by the simulation environment, completes that input (or is latched
// until one arrives).  No data is transferred.

// RaiseEvent signals the event pin.  If a process is waiting on the
// event channel it becomes ready (preempting a lower-priority process
// as any wakeup does); otherwise the event is latched.
func (m *Machine) RaiseEvent() {
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.EventPin})
	}
	if m.eventWaiter != m.notProcess() {
		w := m.eventWaiter
		m.eventWaiter = m.notProcess()
		m.wake(w)
		return
	}
	if m.eventArmed != nil {
		ready := m.eventArmed
		m.eventArmed = nil
		m.eventPending = true
		ready()
		return
	}
	m.eventPending = true
}

// eventInput implements input message on the event channel: the count
// is ignored and no data moves.
func (m *Machine) eventInput() int {
	if m.eventPending {
		m.eventPending = false
		return 24
	}
	m.eventWaiter = m.Wdesc
	m.blockOnComm(BlockEvent, 0, -1)
	return 24
}

// eventEnable arms alternative-input readiness on the event channel.
func (m *Machine) eventEnable(ready func()) bool {
	if m.eventPending {
		return true
	}
	m.eventArmed = ready
	return false
}

// eventDisable disarms and reports readiness.
func (m *Machine) eventDisable() bool {
	m.eventArmed = nil
	return m.eventPending
}

// isEventChannel reports whether addr is the event channel word.
func (m *Machine) isEventChannel(addr uint64) bool {
	return addr == m.EventAddr()
}
