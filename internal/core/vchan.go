package core

import (
	"transputer/internal/isa"
	"transputer/internal/probe"
)

// Virtual channels (see internal/link/vchan.go).
//
// The paper's channel-address decode gives each link exactly one
// channel word per direction.  Virtual channels extend the decode: the
// network layer maps additional channel words — placed by occam
// programs at the VC%dOUT/VC%dIN convention addresses, or anywhere
// else outside implemented memory — onto (link, vchan) endpoints of a
// multiplexed link.  "A process may be written and compiled without
// knowledge of where its channels are connected" holds unchanged: the
// same input/output message instructions work on an internal word, a
// link word or a vchan word.
//
// The mapping lives in a nil-until-used map keyed on the masked
// channel address, so machines without vchans pay one nil check per
// external-channel decode and nothing more.

// VChanMax bounds the vchan words addressable per direction by the
// convention layout (matching link.MaxVChans).
const VChanMax = 32

// vchanEnd is one mapped endpoint: a virtual channel of a link, in one
// direction.
type vchanEnd struct {
	link int
	vc   int
	out  bool
}

// VChanExternal is optionally implemented by an External that can
// multiplex virtual channels over its links.  The machine calls these
// only for channel words registered with MapVChan.
type VChanExternal interface {
	// BeginOutputVC and BeginInputVC move machine memory over a virtual
	// channel; done must be called exactly once when the transfer
	// completes (the process has already been descheduled).
	BeginOutputVC(link, vc int, ptr uint64, count int, done func())
	BeginInputVC(link, vc int, ptr uint64, count int, done func())
	// EnableInputVC arms alternative-input signalling on a virtual
	// channel; DisableInputVC disarms it and reports data availability.
	EnableInputVC(link, vc int, ready func()) bool
	DisableInputVC(link, vc int) bool
	// HandoffFlowVC and VCFlow carry probe flow identities across vchan
	// transfers, the vchan analogue of FlowExternal.  Only called when
	// a probe bus is attached.
	HandoffFlowVC(link, vc int, flow uint64)
	VCFlow(link, vc int) uint64
}

// vchanWords is the word offset of the convention vchan channel-word
// block from the top of the address space: 4 links × VChanMax vchans ×
// 2 directions, placed at the most positive addresses so they cannot
// collide with the reserved words at MOSTNEG and sit far above any
// realistic memory size.  The words are never dereferenced — like link
// channel words under the external decode, they are pure names.
const vchanWords = NumLinks * VChanMax * 2

func (m *Machine) vchanBase() uint64 {
	return (m.mask + 1 - uint64(vchanWords*m.bpw)) & m.mask
}

// VChanOutAddr returns the convention channel address for output on
// virtual channel vc of link l.
func (m *Machine) VChanOutAddr(l, vc int) uint64 {
	return m.addrOf(m.vchanBase() + uint64((l*VChanMax+vc)*m.bpw))
}

// VChanInAddr returns the convention channel address for input on
// virtual channel vc of link l.
func (m *Machine) VChanInAddr(l, vc int) uint64 {
	return m.addrOf(m.vchanBase() + uint64(((NumLinks+l)*VChanMax+vc)*m.bpw))
}

// MapVChan maps the channel word at addr onto the given endpoint.  The
// network layer calls this for each vchan of a multiplexed link; any
// address may be used as long as the program treats it purely as a
// channel name.
func (m *Machine) MapVChan(addr uint64, link, vc int, out bool) {
	if m.vchans == nil {
		m.vchans = make(map[uint64]vchanEnd)
	}
	m.vchans[addr&m.mask] = vchanEnd{link: link, vc: vc, out: out}
}

// vchanChannel reports whether addr is a mapped vchan channel word.
func (m *Machine) vchanChannel(addr uint64) (vchanEnd, bool) {
	if m.vchans == nil {
		return vchanEnd{}, false
	}
	e, ok := m.vchans[addr&m.mask]
	return e, ok
}

// vchanTransfer hands a message over to the multiplexer and
// deschedules the process, mirroring externalTransfer: the engine
// reschedules it when the message's final chunk is acknowledged (out)
// or fully delivered (in).
func (m *Machine) vchanTransfer(e vchanEnd, chAddr, ptr uint64, count int, output bool) int {
	if m.vcExt == nil {
		m.fault("no vchan multiplexer attached", chAddr)
		return 1
	}
	wdesc := m.Wdesc
	ip := m.Iptr
	var fl uint64
	if m.bus != nil {
		if output {
			fl = m.newFlow()
			m.vcExt.HandoffFlowVC(e.link, e.vc, fl)
		} else {
			fl = m.vcExt.VCFlow(e.link, e.vc)
		}
	}
	done := func() {
		if m.bus != nil {
			f := fl
			if !output {
				f = m.vcExt.VCFlow(e.link, e.vc)
			}
			m.emit(probe.Event{Kind: probe.LinkXferEnd, Proc: wdesc, Link: e.link,
				Bytes: count, Out: output, Arg: int64(e.vc), Flow: f, IP: ip})
		}
		m.wake(wdesc)
	}
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.LinkXferStart, Proc: wdesc, Link: e.link,
			Bytes: count, Out: output, Arg: int64(e.vc), Flow: fl, IP: ip})
	}
	kind := BlockLinkIn
	if output {
		kind = BlockLinkOut
	}
	m.blockOnComm(kind, chAddr, e.link)
	if output {
		m.stats.ExternalOut++
		m.stats.BytesOut += uint64(count)
		m.vcExt.BeginOutputVC(e.link, e.vc, ptr, count, done)
	} else {
		m.stats.ExternalIn++
		m.stats.BytesIn += uint64(count)
		m.vcExt.BeginInputVC(e.link, e.vc, ptr, count, done)
	}
	return isa.CommunicationCycles(0, m.wordBits)
}
