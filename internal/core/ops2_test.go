package core_test

import (
	"testing"

	"transputer/internal/core"
	"transputer/internal/sim"
)

// Second tranche of operation coverage: unchecked arithmetic, carries,
// loop end, the product instruction and the timers.

func TestUncheckedArithmetic(t *testing.T) {
	m := runSrc(t, `
	mint
	ldc 1
	sum            -- unchecked: MOSTNEG + 1, no overflow trap
	stl 1
	ldc 3
	ldc 10
	diff           -- B - A = -7, unchecked
	stl 2
	ldc 6
	ldc 7
	prod           -- quick unchecked multiply
	stl 3
	ldc 12
	ldc 10
	and
	stl 4
	ldc 12
	ldc 10
	or
	stl 5
	ldc 12
	ldc 10
	xor
	stl 6
	ldc 0
	not
	stl 7
	stopp
`)
	if m.ErrorFlag() {
		t.Error("unchecked operations must not set the error flag")
	}
	if m.Local(1) != 0x80000001 {
		t.Errorf("sum = %#x", m.Local(1))
	}
	if int32(m.Local(2)) != -7 {
		t.Errorf("diff = %d", int32(m.Local(2)))
	}
	if m.Local(3) != 42 {
		t.Errorf("prod = %d", m.Local(3))
	}
	if m.Local(4) != 8 || m.Local(5) != 14 || m.Local(6) != 6 {
		t.Errorf("and/or/xor = %d %d %d", m.Local(4), m.Local(5), m.Local(6))
	}
	if m.Local(7) != 0xFFFFFFFF {
		t.Errorf("not 0 = %#x", m.Local(7))
	}
}

func TestLongAddSub(t *testing.T) {
	m := runSrc(t, `
	ldc 1          -- carry in (ends in C)
	ldc 10         -- left (B)
	ldc 20         -- right (A)
	ladd           -- 10 + 20 + 1
	stl 1
	ldc 1          -- borrow in
	ldc 30
	ldc 20
	lsub           -- 30 - 20 - 1
	stl 2
	ldc 0          -- borrow in
	ldc 5
	ldc 9
	ldiff          -- 5 - 9: diff with borrow out
	stl 3          -- difference
	stl 4          -- borrow
	stopp
`)
	if m.Local(1) != 31 {
		t.Errorf("ladd = %d", m.Local(1))
	}
	if m.Local(2) != 9 {
		t.Errorf("lsub = %d", m.Local(2))
	}
	if int32(m.Local(3)) != -4 || m.Local(4) != 1 {
		t.Errorf("ldiff = %d borrow %d", int32(m.Local(3)), m.Local(4))
	}
}

func TestShiftOps(t *testing.T) {
	m := runSrc(t, `
	ldc 3
	ldc 4
	shl            -- 3 << 4
	stl 1
	ldc 48
	ldc 4
	shr
	stl 2
	ldc 1
	ldc 40
	shl            -- shift >= word length -> 0
	stl 3
	stopp
`)
	if m.Local(1) != 48 || m.Local(2) != 3 || m.Local(3) != 0 {
		t.Errorf("shifts: %d %d %d", m.Local(1), m.Local(2), m.Local(3))
	}
}

// TestLoopEnd exercises the loop end instruction directly: a two-word
// control block (index, count) and a backward jump distance in A.
func TestLoopEnd(t *testing.T) {
	m := runSrc(t, `
	ldc 5
	stl 2          -- index := 5
	ldc 3
	stl 3          -- count := 3
	ldc 0
	stl 1          -- accumulator
loop:
	ldl 1
	adc 1
	stl 1
	ldlp 2         -- control block
	ldc after-loop
	lend
after:
	stopp
`)
	// The body runs count times; lend increments the index each time
	// it loops back.
	if m.Local(1) != 3 {
		t.Errorf("loop body ran %d times, want 3", m.Local(1))
	}
	if m.Local(2) != 5+2 {
		t.Errorf("final index = %d, want 7 (two increments)", m.Local(2))
	}
}

// TestTimerAltAtAsmLevel drives talt/enbt/taltwt/dist directly.
func TestTimerAltAtAsmLevel(t *testing.T) {
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	img := assemble(t, `
	mint
	stl 3          -- a channel that never fires
	ldtimer
	stl 4
	talt
	ldc 1
	ldlp 3
	enbc
	ldc 1
	ldl 4
	adc 3
	enbt
	taltwt
	ldc b0-dend
	ldc 1
	ldlp 3
	disc
	ldc b1-dend
	ldc 1
	ldl 4
	adc 3
	dist
	altend
dend:
b0:
	ldc 1
	stl 1
	stopp
b1:
	ldc 2
	stl 1
	stopp
`)
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	res := core.Run(m, sim.Second)
	if !res.Settled || m.Fault() != nil {
		t.Fatalf("settled=%v fault=%v", res.Settled, m.Fault())
	}
	if m.Local(1) != 2 {
		t.Errorf("timer branch not selected: %d", m.Local(1))
	}
	// Three low-priority ticks of 64µs.
	if res.Time < 3*64*sim.Microsecond {
		t.Errorf("timer fired at %v, want >= 192µs", res.Time)
	}
}

// TestSttimer sets the clocks to a chosen value.
func TestSttimer(t *testing.T) {
	m := runSrc(t, `
	ldc 1000
	sttimer
	ldtimer
	stl 1
	stopp
`)
	if m.Local(1) < 1000 || m.Local(1) > 1005 {
		t.Errorf("clock after sttimer = %d, want about 1000", m.Local(1))
	}
}

// TestTimerDequeueViaChannelWin: a timer-alternative whose channel
// fires before the timeout must be unlinked from the timer queue.
func TestTimerDequeueViaChannelWin(t *testing.T) {
	m := runSrc(t, `
	mint
	stl 3
	ldc 2
	stl 1
	ldpi cont
	stl 0
	ldc child-after
	ldlp -60
	startp
after:
	ajw -30
	ldtimer
	stl 2          -- (branch workspace local)
	talt
	ldc 1
	ldlp 33        -- channel W[3]
	enbc
	ldc 1
	ldl 2
	ldc 10000
	add            -- a distant timeout
	enbt
	taltwt
	ldc b0-dend
	ldc 1
	ldlp 33
	disc
	ldc b1-dend
	ldc 1
	ldl 2
	ldc 10000
	add
	dist
	altend
dend:
b0:
	ldlp 3
	ldlp 33
	ldc 4
	in
	ldl 3
	stl 34         -- W[4]
	j bdone
b1:
	ldc -1
	stl 34
	j bdone
bdone:
	ldlp 30
	endp
child:
	ldc 88
	ldlp 63        -- W[3] from child ws at W-60
	outword
	ldlp 60
	endp
cont:
	stopp
`)
	if m.Local(4) != 88 {
		t.Errorf("channel branch value = %d, want 88", int32(m.Local(4)))
	}
	// The run must settle promptly — not wait for the distant timeout,
	// and the dead timer-queue entry must not corrupt anything.
	if m.Fault() != nil {
		t.Fatal(m.Fault())
	}
}

func TestCheckedRemNegativeDivisor(t *testing.T) {
	m := runSrc(t, `
	ldc 7
	ldc -2
	rem
	stl 1
	stopp
`)
	if int32(m.Local(1)) != 1 {
		t.Errorf("7 rem -2 = %d, want 1", int32(m.Local(1)))
	}
}

func TestStartProcessHelper(t *testing.T) {
	m := core.MustNew(core.T424().WithMemory(64 * 1024))
	img := assemble(t, "loop:\n\tldl 1\n\tadc 1\n\tstl 1\n\tj loop\n")
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	// Plant a second process by hand.
	w2 := m.EntryWptr() + 256
	m.StartProcess(w2, m.CodeStart(), core.PriorityLow)
	res := core.Run(m, 100*sim.Microsecond)
	if res.Settled {
		t.Fatal("looping processes settled unexpectedly")
	}
	if m.Stats().Enqueues == 0 {
		t.Error("StartProcess should have enqueued")
	}
}

func TestStatsHelpers(t *testing.T) {
	m := runSrc(t, "\tldc 1\n\tstl 1\n\tstopp\n")
	st := m.Stats()
	if f := st.SingleByteFraction(); f < 0.5 {
		t.Errorf("single byte fraction = %f", f)
	}
	if st.MIPS(50) <= 0 {
		t.Error("MIPS should be positive")
	}
	var zero core.Stats
	if zero.SingleByteFraction() != 0 || zero.MIPS(50) != 0 {
		t.Error("zero stats should report zero rates")
	}
	if m.Config().WordBits != 32 || m.Name() != "T424" {
		t.Error("config accessors")
	}
	if m.WordBits() != 32 || m.BytesPerWord() != 4 {
		t.Error("width accessors")
	}
}

func TestMemoryAccessors(t *testing.T) {
	m := core.MustNew(core.T424().WithMemory(16 * 1024))
	addr := m.MemStart()
	m.WriteWord(addr, 0xCAFE)
	if m.ReadWord(addr) != 0xCAFE {
		t.Error("WriteWord/ReadWord")
	}
	m.WriteBytes(addr, []byte{1, 2, 3, 4})
	got := m.ReadBytes(addr, 4)
	for i, b := range []byte{1, 2, 3, 4} {
		if got[i] != b {
			t.Errorf("ReadBytes[%d] = %d", i, got[i])
		}
	}
	if m.DataStart() == 0 {
		t.Error("DataStart")
	}
}
