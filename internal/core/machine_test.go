package core

import (
	"testing"
	"testing/quick"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(T424().WithMemory(16 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{WordBits: 24, MemBytes: 4096, CycleNs: 50}); err == nil {
		t.Error("24-bit word should be rejected")
	}
	if _, err := New(Config{WordBits: 32, MemBytes: 10, CycleNs: 50}); err == nil {
		t.Error("tiny memory should be rejected")
	}
	if _, err := New(Config{WordBits: 32, MemBytes: 4095, CycleNs: 50}); err == nil {
		t.Error("unaligned memory should be rejected")
	}
	if _, err := New(Config{WordBits: 16, MemBytes: 1 << 17, CycleNs: 50}); err == nil {
		t.Error("16-bit machine with 128 KiB should be rejected")
	}
	if _, err := New(T424()); err != nil {
		t.Errorf("T424: %v", err)
	}
	if _, err := New(T222()); err != nil {
		t.Errorf("T222: %v", err)
	}
}

func TestSignedAddressSpace(t *testing.T) {
	m := testMachine(t)
	// "Pointer values are treated as signed integers, starting from the
	// most negative integer" (paper, 3.2.2).
	mostNeg := uint64(0x80000000)
	if m.offset(mostNeg) != 0 {
		t.Errorf("offset(MOSTNEG) = %d, want 0", m.offset(mostNeg))
	}
	if m.addrOf(0) != mostNeg {
		t.Errorf("addrOf(0) = %#x", m.addrOf(0))
	}
	if m.MemStart() != mostNeg+uint64(reservedWords*4) {
		t.Errorf("MemStart = %#x", m.MemStart())
	}
	// Standard signed comparisons order addresses.
	if !(m.signed(mostNeg) < m.signed(m.MemStart())) {
		t.Error("MOSTNEG should compare below MemStart")
	}
}

func TestWordByteAccess(t *testing.T) {
	m := testMachine(t)
	addr := m.MemStart()
	m.setWord(addr, 0x12345678)
	if got := m.word(addr); got != 0x12345678 {
		t.Errorf("word = %#x", got)
	}
	// Little-endian byte order.
	if m.byteAt(addr) != 0x78 || m.byteAt(addr+3) != 0x12 {
		t.Errorf("bytes = %x %x", m.byteAt(addr), m.byteAt(addr+3))
	}
	m.setByte(addr+1, 0xFF)
	if got := m.word(addr); got != 0x1234FF78 {
		t.Errorf("after setByte word = %#x", got)
	}
}

func TestMemoryFaults(t *testing.T) {
	m := testMachine(t)
	m.word(m.MemStart() + 1) // misaligned
	if m.Fault() == nil || !m.Halted() || !m.ErrorFlag() {
		t.Error("misaligned word read should fault")
	}

	m2 := testMachine(t)
	m2.byteAt(m2.addrOf(uint64(len(m2.mem)))) // out of range
	if m2.Fault() == nil {
		t.Error("out-of-range byte read should fault")
	}
}

func TestStackPushPop(t *testing.T) {
	m := testMachine(t)
	m.push(1)
	m.push(2)
	m.push(3)
	if m.Areg != 3 || m.Breg != 2 || m.Creg != 1 {
		t.Errorf("stack = %d %d %d", m.Areg, m.Breg, m.Creg)
	}
	if v := m.pop(); v != 3 || m.Areg != 2 || m.Breg != 1 {
		t.Errorf("pop = %d, stack = %d %d", v, m.Areg, m.Breg)
	}
}

func TestSignedConversions(t *testing.T) {
	m := testMachine(t)
	cases := map[uint64]int64{
		0:          0,
		1:          1,
		0x7FFFFFFF: 2147483647,
		0x80000000: -2147483648,
		0xFFFFFFFF: -1,
	}
	for u, s := range cases {
		if got := m.signed(u); got != s {
			t.Errorf("signed(%#x) = %d, want %d", u, got, s)
		}
		if got := m.unsigned(s); got != u {
			t.Errorf("unsigned(%d) = %#x, want %#x", s, got, u)
		}
	}
}

func TestLaterWraps(t *testing.T) {
	m := testMachine(t)
	if !m.later(1, 0) || m.later(0, 1) || m.later(5, 5) {
		t.Error("later basic ordering wrong")
	}
	// Modular wrap: a clock just past wraparound is later than one just
	// before it.
	if !m.later(5, 0xFFFFFFF0) {
		t.Error("later should wrap")
	}
}

func TestCheckedArithmetic(t *testing.T) {
	m := testMachine(t)
	if m.checkedAdd(2, 3) != 5 || m.ErrorFlag() {
		t.Error("2+3")
	}
	m.checkedAdd(0x7FFFFFFF, 1)
	if !m.ErrorFlag() {
		t.Error("overflow should set error")
	}
	m.errorFlag = false
	m.checkedSub(0x80000000, 1)
	if !m.ErrorFlag() {
		t.Error("MOSTNEG-1 should overflow")
	}
	m.errorFlag = false
	if m.checkedMul(m.unsigned(-3), 7) != m.unsigned(-21) || m.ErrorFlag() {
		t.Error("-3*7")
	}
	m.checkedMul(0x40000000, 4)
	if !m.ErrorFlag() {
		t.Error("mul overflow should set error")
	}
	m.errorFlag = false
	if m.checkedDiv(m.unsigned(-7), m.unsigned(2)) != m.unsigned(-3) {
		t.Error("-7/2 should truncate toward zero")
	}
	m.checkedDiv(1, 0)
	if !m.ErrorFlag() {
		t.Error("divide by zero should set error")
	}
	m.errorFlag = false
	m.checkedDiv(m.signBit, m.mask) // MOSTNEG / -1
	if !m.ErrorFlag() {
		t.Error("MOSTNEG/-1 should set error")
	}
	m.errorFlag = false
	if m.checkedRem(m.unsigned(-7), m.unsigned(2)) != m.unsigned(-1) {
		t.Error("-7 rem 2")
	}
}

// TestArithmeticAgainstReference cross-checks checked arithmetic
// against 64-bit host arithmetic on random operands.
func TestArithmeticAgainstReference(t *testing.T) {
	m := testMachine(t)
	f := func(a, b int32) bool {
		m.errorFlag = false
		m.halted = false
		got := m.checkedAdd(m.unsigned(int64(a)), m.unsigned(int64(b)))
		sum := int64(a) + int64(b)
		if sum >= -(1<<31) && sum < 1<<31 {
			return !m.errorFlag && m.signed(got) == sum
		}
		return m.errorFlag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	g := func(a, b int32) bool {
		m.errorFlag = false
		m.halted = false
		got := m.checkedMul(m.unsigned(int64(a)), m.unsigned(int64(b)))
		p := int64(a) * int64(b)
		if p >= -(1<<31) && p < 1<<31 {
			return !m.errorFlag && m.signed(got) == p
		}
		return m.errorFlag
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLongArithmetic(t *testing.T) {
	m := testMachine(t)
	sum, carry := m.longSum(0xFFFFFFFF, 1, 0)
	if sum != 0 || carry != 1 {
		t.Errorf("lsum = %#x carry %d", sum, carry)
	}
	diff, borrow := m.longDiff(0, 1, 0)
	if diff != 0xFFFFFFFF || borrow != 1 {
		t.Errorf("ldiff = %#x borrow %d", diff, borrow)
	}
	lo, hi := m.longMul(0x10000, 0x10000, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("lmul = %#x:%#x", hi, lo)
	}
	q, r := m.longDivStep(1, 0, 0x10000)
	if q != 0x10000 || r != 0 {
		t.Errorf("ldiv = %#x rem %#x", q, r)
	}
	m.errorFlag = false
	m.longDivStep(5, 0, 5) // hi >= divisor: quotient overflow
	if !m.ErrorFlag() {
		t.Error("ldiv overflow should set error")
	}
}

func TestNormalise(t *testing.T) {
	m := testMachine(t)
	lo, hi, n := m.normalise(0, 1)
	if hi != 0x80000000 || lo != 0 || n != 31+32 {
		t.Errorf("normalise(0,1) = %#x:%#x shift %d", hi, lo, n)
	}
	lo, hi, n = m.normalise(0x80000000, 123)
	if n != 0 || hi != 0x80000000 || lo != 123 {
		t.Errorf("already normalised: %#x:%#x shift %d", hi, lo, n)
	}
	_, _, n = m.normalise(0, 0)
	if n != 64 {
		t.Errorf("normalise(0,0) shift = %d, want 64", n)
	}
}

func TestQueueOperations(t *testing.T) {
	m := testMachine(t)
	w1 := m.MemStart() + 40*4
	w2 := m.MemStart() + 80*4
	w3 := m.MemStart() + 120*4
	np := m.notProcess()

	if m.dequeue(PriorityLow) != np {
		t.Error("empty queue should return notProcess")
	}
	m.enqueue(w1 | PriorityLow)
	m.enqueue(w2 | PriorityLow)
	m.enqueue(w3 | PriorityLow)
	if got := m.dequeue(PriorityLow); got != w1|PriorityLow {
		t.Errorf("dequeue 1 = %#x", got)
	}
	if got := m.dequeue(PriorityLow); got != w2|PriorityLow {
		t.Errorf("dequeue 2 = %#x", got)
	}
	if got := m.dequeue(PriorityLow); got != w3|PriorityLow {
		t.Errorf("dequeue 3 = %#x", got)
	}
	if m.dequeue(PriorityLow) != np {
		t.Error("queue should be empty again")
	}
}

// TestQueueFIFOProperty: random interleavings of enqueue/dequeue keep
// FIFO order per priority.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		m, err := New(T424().WithMemory(64 * 1024))
		if err != nil {
			return false
		}
		next := uint64(0)
		var model []uint64
		for _, isEnq := range ops {
			if isEnq {
				w := m.MemStart() + 64*4*(next+1)
				next++
				if int(m.offset(w))+64 >= len(m.mem) {
					continue
				}
				m.enqueue(w | PriorityLow)
				model = append(model, w|PriorityLow)
			} else {
				got := m.dequeue(PriorityLow)
				if len(model) == 0 {
					if got != m.notProcess() {
						return false
					}
				} else {
					if got != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinkChannelAddresses(t *testing.T) {
	m := testMachine(t)
	for i := 0; i < NumLinks; i++ {
		if link, out, ok := m.externalChannel(m.LinkOutAddr(i)); !ok || !out || link != i {
			t.Errorf("LinkOutAddr(%d) misclassified: %d %v %v", i, link, out, ok)
		}
		if link, out, ok := m.externalChannel(m.LinkInAddr(i)); !ok || out || link != i {
			t.Errorf("LinkInAddr(%d) misclassified: %d %v %v", i, link, out, ok)
		}
	}
	if _, _, ok := m.externalChannel(m.MemStart()); ok {
		t.Error("MemStart should not be an external channel")
	}
	if _, _, ok := m.externalChannel(m.EventAddr()); ok {
		t.Error("event channel is not a link channel")
	}
}

func TestLoadTooBig(t *testing.T) {
	m, _ := New(T424()) // 4 KiB
	img := Image{Code: make([]byte, 5000)}
	if err := m.Load(img); err == nil {
		t.Error("oversized image should fail to load")
	}
}
