package core_test

import (
	"strings"
	"testing"

	"transputer/internal/core"
	"transputer/internal/sim"
)

// Exec-level coverage of the indirect operations, via small assembled
// programs.  runSrc and assemble live in exec_test.go.

func TestLongArithmeticOps(t *testing.T) {
	// lsum: 0xFFFFFFFF + 1 + carry 0 = sum 0, carry 1.
	m := runSrc(t, `
	ldc 0          -- carry (C after loads)
	mint
	adc -1         -- B = 0x7FFFFFFF? no: mint=0x80000000; adc -1 -> 0x7FFFFFFF
	ldc 1
	rev
	stl 5          -- scratch shuffle; rebuild cleanly below
	stopp
`)
	_ = m
	// Build the stack precisely: lsum expects C=carry, B=left, A=right.
	m = runSrc(t, `
	ldc 0          -- carry -> will end in C
	nfix 0
	ldc 15         -- -1 = 0xFFFFFFFF ... via ldc -1
	ldc 1
	lsum
	stl 2          -- B (carry out) second
	stl 1          -- careful: stl pops A first
	stopp
`)
	// Note: after lsum A=sum, B=carryOut; first stl stores sum.
	if m.Local(2) != 0 {
		t.Errorf("lsum sum = %#x, want 0", m.Local(2))
	}
	if m.Local(1) != 1 {
		t.Errorf("lsum carry = %d, want 1", m.Local(1))
	}
}

func TestLongMulDiv(t *testing.T) {
	// lmul: 0x10000 * 0x10000 + 0 = hi 1, lo 0.
	m := runSrc(t, `
	ldc 0          -- C addend
	ldc #10000
	ldc #10000
	lmul
	stl 1          -- lo
	stl 2          -- hi
	stopp
`)
	if m.Local(1) != 0 || m.Local(2) != 1 {
		t.Errorf("lmul = lo %#x hi %#x", m.Local(1), m.Local(2))
	}
	// ldiv: (1:0) / 0x10000 = 0x10000 rem 0.  C=lo, B=hi, A=divisor.
	m = runSrc(t, `
	ldc 0          -- lo
	ldc 1          -- hi
	ldc #10000     -- divisor
	ldiv
	stl 1          -- quotient
	stl 2          -- remainder
	stopp
`)
	if m.Local(1) != 0x10000 || m.Local(2) != 0 {
		t.Errorf("ldiv = q %#x r %#x", m.Local(1), m.Local(2))
	}
}

func TestLongShifts(t *testing.T) {
	// lshl: pair hi=0,lo=1 shifted left 33 places -> hi=2, lo=0.
	m := runSrc(t, `
	ldc 1          -- lo (C)
	ldc 0          -- hi (B)
	ldc 33         -- count (A)
	lshl
	stl 1          -- lo out
	stl 2          -- hi out
	stopp
`)
	if m.Local(1) != 0 || m.Local(2) != 2 {
		t.Errorf("lshl = lo %#x hi %#x", m.Local(1), m.Local(2))
	}
	m = runSrc(t, `
	ldc 0          -- lo
	ldc 2          -- hi
	ldc 33         -- count
	lshr
	stl 1
	stl 2
	stopp
`)
	if m.Local(1) != 1 || m.Local(2) != 0 {
		t.Errorf("lshr = lo %#x hi %#x", m.Local(1), m.Local(2))
	}
}

func TestNormOp(t *testing.T) {
	// norm: A=lo, B=hi; result A=lo', B=hi', C=places.
	m := runSrc(t, `
	ldc 0          -- hi (ends in B)
	ldc 1          -- lo (ends in A)
	norm
	stl 1          -- lo out
	stl 2          -- hi out
	stl 3          -- places
	stopp
`)
	if m.Local(2) != 0x80000000 || m.Local(1) != 0 {
		t.Errorf("norm pair = hi %#x lo %#x", m.Local(2), m.Local(1))
	}
	if m.Local(3) != 63 {
		t.Errorf("norm places = %d, want 63", m.Local(3))
	}
}

func TestExtendOps(t *testing.T) {
	// xdble: extend -5 to double: lo=-5, hi=-1.
	m := runSrc(t, `
	ldc -5
	xdble
	stl 1          -- lo
	stl 2          -- hi
	stopp
`)
	if int32(m.Local(1)) != -5 || m.Local(2) != 0xFFFFFFFF {
		t.Errorf("xdble = lo %#x hi %#x", m.Local(1), m.Local(2))
	}
	// xword: sign-extend 0xFF from bit 0x80 -> -1.
	m = runSrc(t, `
	ldc #FF        -- value (B after next load)
	ldc #80        -- sign bit position (A)
	xword
	stl 1
	stopp
`)
	if int32(m.Local(1)) != -1 {
		t.Errorf("xword(#FF) = %d, want -1", int32(m.Local(1)))
	}
	// csngl on a consistent double passes and keeps the low word.
	m = runSrc(t, `
	ldc -7
	xdble
	csngl
	stl 1
	stopp
`)
	if int32(m.Local(1)) != -7 || m.ErrorFlag() {
		t.Errorf("csngl = %d err=%v", int32(m.Local(1)), m.ErrorFlag())
	}
	// csngl on an inconsistent double sets the error flag.
	m = runSrc(t, `
	ldc 1          -- lo
	ldc 5          -- hi (inconsistent)
	csngl
	stl 1
	stopp
`)
	if !m.ErrorFlag() {
		t.Error("csngl of wide value should set error")
	}
}

func TestChecksOps(t *testing.T) {
	// csub0 within bounds: no error, index survives.
	m := runSrc(t, `
	ldc 3          -- index (B)
	ldc 10         -- bound (A)
	csub0
	stl 1
	stopp
`)
	if m.Local(1) != 3 || m.ErrorFlag() {
		t.Errorf("csub0 ok case: %d err=%v", m.Local(1), m.ErrorFlag())
	}
	m = runSrc(t, `
	ldc 10
	ldc 10
	csub0
	stl 1
	stopp
`)
	if !m.ErrorFlag() {
		t.Error("csub0 out of bounds should set error")
	}
	// ccnt1: count in 1..bound passes; 0 fails.
	m = runSrc(t, `
	ldc 0
	ldc 10
	ccnt1
	stl 1
	stopp
`)
	if !m.ErrorFlag() {
		t.Error("ccnt1 of zero should set error")
	}
	// cword: value fits a byte.
	m = runSrc(t, `
	ldc 100        -- value
	ldc #80        -- byte sign bit
	cword
	stl 1
	stopp
`)
	if m.Local(1) != 100 || m.ErrorFlag() {
		t.Errorf("cword(100) = %d err=%v", m.Local(1), m.ErrorFlag())
	}
	m = runSrc(t, `
	ldc 300
	ldc #80
	cword
	stl 1
	stopp
`)
	if !m.ErrorFlag() {
		t.Error("cword(300, byte) should set error")
	}
}

func TestPointerOps(t *testing.T) {
	m := runSrc(t, `
	ldc 5
	bcnt           -- 5 words -> 20 bytes
	stl 1
	ldlp 7
	wcnt           -- split pointer: word part, byte selector
	stl 2          -- word part
	stl 3          -- byte selector
	stopp
`)
	if m.Local(1) != 20 {
		t.Errorf("bcnt(5) = %d, want 20", m.Local(1))
	}
	if m.Local(3) != 0 {
		t.Errorf("byte selector = %d, want 0 (word aligned)", m.Local(3))
	}
}

func TestGcallGajw(t *testing.T) {
	// gcall swaps A and the instruction pointer: calling a routine by
	// address, which returns the same way.  After the return, A holds
	// the routine's address remnant and B the routine's result.
	m := runSrc(t, `
	ldpi target
	gcall
after:
	stl 0          -- discard the swapped-back address
	stl 2          -- the routine's 77
	stopp
target:
	ldc 77
	rev            -- return address back to A, result to B
	gcall
`)
	if m.Local(2) != 77 {
		t.Errorf("gcall round trip left %d, want 77", m.Local(2))
	}
}

func TestRevAndDup(t *testing.T) {
	m := runSrc(t, `
	ldc 1
	ldc 2
	rev
	stl 1          -- A after rev = 1
	stl 2          -- then 2
	stopp
`)
	if m.Local(1) != 1 || m.Local(2) != 2 {
		t.Errorf("rev: %d %d", m.Local(1), m.Local(2))
	}
}

func TestErrorOps(t *testing.T) {
	m := runSrc(t, `
	seterr
	testerr        -- pushes false (error was set) and clears
	stl 1
	testerr        -- now clear: pushes true
	stl 2
	stopp
`)
	if m.Local(1) != 0 || m.Local(2) != 1 {
		t.Errorf("testerr: %d %d", m.Local(1), m.Local(2))
	}
	if m.ErrorFlag() {
		t.Error("testerr should have cleared the flag")
	}
	// sethalterr makes a later error halt the machine.
	m2 := core.MustNew(core.T424().WithMemory(64 * 1024))
	img := assemble(t, `
	sethalterr
	testhalterr
	stl 1
	mint
	adc -1         -- overflow -> error -> halt
	ldc 9
	stl 2          -- never reached
	stopp
`)
	if err := m2.Load(img); err != nil {
		t.Fatal(err)
	}
	core.Run(m2, sim.Millisecond)
	if !m2.Halted() {
		t.Error("machine should halt on error with halt-on-error set")
	}
	if m2.Local(1) != 1 {
		t.Errorf("testhalterr = %d, want 1", m2.Local(1))
	}
	if m2.Local(2) == 9 {
		t.Error("execution continued past the halting error")
	}
}

func TestQueueRegisterOps(t *testing.T) {
	// savel stores the low-priority queue registers (empty: NotProcess).
	m := runSrc(t, `
	ldlp 4
	savel
	ldl 4
	mint
	diff           -- Fptr - NotProcess == 0 when queue empty
	stl 1
	stopp
`)
	if m.Local(1) != 0 {
		t.Errorf("savel front pointer delta = %#x, want 0", m.Local(1))
	}
}

func TestResetch(t *testing.T) {
	m := runSrc(t, `
	mint
	stl 3          -- channel := NotProcess
	ldlp 3
	resetch
	mint
	diff           -- old contents - NotProcess
	stl 1
	stopp
`)
	if m.Local(1) != 0 {
		t.Errorf("resetch returned %#x, want NotProcess", m.Local(1))
	}
}

// TestTimeslicing: two low-priority loops must share the processor via
// the timeslice mechanism at descheduling points.
func TestTimeslicing(t *testing.T) {
	cfg := core.T424().WithMemory(64 * 1024)
	cfg.TimesliceCycles = 200 // very short for the test
	m := core.MustNew(cfg)
	img := assemble(t, `
	ldpi other
	ldlp -40
	stnl -1
	ldlp -40
	adc 1          -- low priority descriptor
	runp
	; process 1: increment local 1 forever
loop1:
	ldl 1
	adc 1
	stl 1
	j loop1
other:
	; process 2 body (workspace 40 below): increment its local forever
loop2:
	ldl 1
	adc 1
	stl 1
	j loop2
`)
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	res := core.Run(m, 2*sim.Millisecond)
	if res.Settled {
		t.Fatal("looping processes should not settle")
	}
	st := m.Stats()
	if st.Timeslices == 0 {
		t.Error("expected timeslice switches between the two loops")
	}
	// Both processes made progress.
	p1 := m.Local(1)
	p2 := m.ReadWord(m.EntryWptr() - 40*4 + 1*4)
	if p1 == 0 || p2 == 0 {
		t.Errorf("progress: p1=%d p2=%d", p1, p2)
	}
	ratio := float64(p1) / float64(p2)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("unfair scheduling: p1=%d p2=%d", p1, p2)
	}
}

// TestHaltOnErrorConfig: the machine-level halt-on-error switch.
func TestHaltOnErrorConfig(t *testing.T) {
	cfg := core.T424().WithMemory(64 * 1024)
	cfg.HaltOnError = true
	m := core.MustNew(cfg)
	img := assemble(t, "\tmint\n\tadc -1\n\tldc 5\n\tstl 1\n\tstopp\n")
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	core.Run(m, sim.Millisecond)
	if !m.Halted() || m.Local(1) == 5 {
		t.Error("HaltOnError config should stop at the overflow")
	}
}

// TestOutbyteTransfersOneByte: output byte sends a single byte.
func TestOutbyteTransfersOneByte(t *testing.T) {
	m := runSrc(t, `
	mint
	stl 3
	ldc 2
	stl 1
	ldpi cont
	stl 0
	ldc child-after
	ldlp -40
	startp
after:
	ajw -20
	ldc #AB
	ldlp 23
	outbyte
	ldlp 20
	endp
child:
	ldc 0
	stl 3
	ldlp 3
	ldlp 43
	ldc 1
	in
	ldl 3
	stl 44
	ldlp 40
	endp
cont:
	stopp
`)
	if m.Local(4) != 0xAB {
		t.Errorf("outbyte sent %#x, want #AB", m.Local(4))
	}
	st := m.Stats()
	if st.BytesIn != 1 {
		t.Errorf("bytes in = %d, want 1", st.BytesIn)
	}
}

func TestTraceHook(t *testing.T) {
	m := core.MustNew(core.T424().WithMemory(16 * 1024))
	img := assemble(t, "\tldc 7\n\tstl 1\n\tstopp\n")
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	var events []core.TraceEvent
	m.SetTrace(func(e core.TraceEvent) { events = append(events, e) })
	core.Run(m, sim.Millisecond)
	if len(events) != 3 {
		t.Fatalf("traced %d events, want 3", len(events))
	}
	if !strings.Contains(events[0].Instr(), "load constant 7") {
		t.Errorf("event 0 = %q", events[0].Instr())
	}
	if !strings.Contains(events[2].Instr(), "stop process") {
		t.Errorf("event 2 = %q", events[2].Instr())
	}
	var sb strings.Builder
	tw, flush := core.TraceWriter(&sb)
	for _, e := range events {
		tw(e)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "store local 1") {
		t.Errorf("trace listing:\n%s", sb.String())
	}
}
