package core

import "transputer/internal/isa"

// Step executes one instruction — or one installment of an
// interruptible long operation — and returns the cycles consumed.  It
// returns 0 when the machine is idle or halted.  The driver advances
// simulated time by cycles * CycleNs between steps.
func (m *Machine) Step() int {
	if m.halted {
		return 0
	}
	cycles := m.takeSwitchCycles()

	// Honour a pending preemption request at this instruction boundary.
	if m.preemptPending && m.CurrentPriority() == PriorityLow {
		m.preemptNow()
		cycles += m.takeSwitchCycles()
	}

	if m.longOp != nil {
		cycles += m.stepLongOp()
		cycles += m.takeSwitchCycles()
		m.account(cycles)
		return cycles
	}

	if m.Wdesc == m.notProcess() {
		m.account(cycles)
		return cycles
	}

	cycles += m.execOne()
	cycles += m.takeSwitchCycles()
	m.account(cycles)
	return cycles
}

func (m *Machine) takeSwitchCycles() int {
	c := m.pendingSwitchCycles
	m.pendingSwitchCycles = 0
	return c
}

func (m *Machine) account(cycles int) {
	m.stats.Cycles += uint64(cycles)
	m.timesliceCount += cycles
}

// push loads a value onto the evaluation stack: "loading a value onto
// the evaluation stack pushes B into C, and A into B, before loading A"
// (paper, 3.2.9).
func (m *Machine) push(v uint64) {
	m.Creg = m.Breg
	m.Breg = m.Areg
	m.Areg = v & m.mask
}

// pop stores a value from A: "storing a value from A, pops B into A and
// C into B".
func (m *Machine) pop() uint64 {
	v := m.Areg
	m.Areg = m.Breg
	m.Breg = m.Creg
	return v
}

// wptr returns the current workspace pointer.
func (m *Machine) wptr() uint64 { return wptrOf(m.Wdesc) }

// execOne executes a single instruction and returns the cycles
// consumed, dispatching on a predecoded record when the block cache
// holds one for the current instruction pointer and falling back to
// the interpreted fetch/decode path otherwise.
func (m *Machine) execOne() int {
	if !m.cfg.NoBlockCache && m.Oreg == 0 {
		if b := m.curBlock; b != nil && b.valid &&
			m.curIdx < len(b.recs) && b.recs[m.curIdx].addr == m.Iptr {
			return m.execRec(b, m.curIdx)
		}
		if b := m.lookupBlock(m.Iptr); b != nil {
			return m.execRec(b, 0)
		}
	}
	return m.execOneSlow()
}

// execOneSlow fetches, decodes and executes a single instruction,
// including its prefix sequence, and returns the cycles consumed.
func (m *Machine) execOneSlow() int {
	cycles := 0
	bytes := 0
	startAddr := m.Iptr
	for {
		b := m.byteAt(m.Iptr)
		if m.halted {
			return cycles // fetch fault
		}
		m.Iptr = (m.Iptr + 1) & m.mask
		bytes++
		fn := isa.Function(b >> 4)
		data := uint64(b & 0xF)
		switch fn {
		case isa.FnPfix:
			m.Oreg = (m.Oreg | data) << 4 & m.mask
			cycles += isa.CyclesPerPrefix
			continue
		case isa.FnNfix:
			m.Oreg = ^(m.Oreg | data) << 4 & m.mask
			cycles += isa.CyclesPerPrefix
			continue
		default:
			operand := (m.Oreg | data) & m.mask
			m.Oreg = 0
			m.countInstr(bytes, int(fn))
			if m.trace != nil {
				m.trace(TraceEvent{
					Time: m.now(),
					Addr: startAddr, Wdesc: m.Wdesc,
					Areg: m.Areg, Breg: m.Breg, Creg: m.Creg,
					Fn: fn, Operand: operand, Cycles: m.stats.Cycles,
				})
			}
			if m.cfg.NoFetchBuffer {
				// Ablation: without the fetch buffer each instruction
				// byte costs an extra memory access cycle.
				cycles += bytes
			}
			cycles += m.execFunction(fn, operand)
			return cycles
		}
	}
}

// execFunction executes one direct function with its accumulated
// operand and returns its cycle cost.
func (m *Machine) execFunction(fn isa.Function, operand uint64) int {
	w := m.wptr()
	n := m.signed(operand)
	cycles := isa.FunctionCycles(fn)
	switch fn {
	case isa.FnJ:
		// jump: a descheduling point, where the timeslice is checked.
		m.Iptr = (m.Iptr + operand) & m.mask
		m.timesliceCheck()
	case isa.FnLdlp:
		m.push(m.index(w, int(n)))
	case isa.FnLdnl:
		m.Areg = m.word(m.index(m.Areg, int(n)))
	case isa.FnLdc:
		m.push(operand)
	case isa.FnLdnlp:
		m.Areg = m.index(m.Areg, int(n))
	case isa.FnLdl:
		m.push(m.word(m.index(w, int(n))))
	case isa.FnAdc:
		m.Areg = m.checkedAdd(m.Areg, operand)
	case isa.FnCall:
		// The evaluation stack contents and the return address are
		// stored in a new four-word frame; A receives the return
		// address so it can be passed as a static link.
		nw := m.index(w, -4)
		m.setWordIndex(nw, 0, m.Iptr)
		m.setWordIndex(nw, 1, m.Areg)
		m.setWordIndex(nw, 2, m.Breg)
		m.setWordIndex(nw, 3, m.Creg)
		m.Areg = m.Iptr
		m.Wdesc = nw | uint64(m.CurrentPriority())
		m.Iptr = (m.Iptr + operand) & m.mask
	case isa.FnCj:
		if m.Areg == 0 {
			m.Iptr = (m.Iptr + operand) & m.mask
			cycles += isa.CjTakenExtra
		} else {
			m.pop()
		}
	case isa.FnAjw:
		m.Wdesc = m.index(w, int(n)) | uint64(m.CurrentPriority())
	case isa.FnEqc:
		if m.Areg == operand {
			m.Areg = 1
		} else {
			m.Areg = 0
		}
	case isa.FnStl:
		m.setWord(m.index(w, int(n)), m.pop())
	case isa.FnStnl:
		addr := m.pop()
		m.setWord(m.index(addr, int(n)), m.pop())
	case isa.FnOpr:
		m.countOp(uint16(operand))
		cycles += m.execOp(isa.Op(operand))
	}
	return cycles
}

// stepLongOp advances an interruptible long operation by one
// installment (paper, 3.2.4: "the instructions which may take a long
// time to execute have been implemented to allow a switch during
// execution").
func (m *Machine) stepLongOp() int {
	lo := m.longOp
	switch {
	case lo.remaining > 0: // block move in progress
		chunk := lo.remaining
		if chunk > longOpChunkBytes {
			chunk = longOpChunkBytes
		}
		for i := 0; i < chunk; i++ {
			m.setByte((lo.dst+uint64(i))&m.mask, m.byteAt((lo.src+uint64(i))&m.mask))
		}
		lo.src = (lo.src + uint64(chunk)) & m.mask
		lo.dst = (lo.dst + uint64(chunk)) & m.mask
		lo.remaining -= chunk
		cycles := isa.MoveCycles(chunk, m.wordBits)
		if lo.overheadCharged {
			cycles -= 8 // fixed portion charged on the first installment only
		}
		lo.overheadCharged = true
		if lo.remaining == 0 {
			m.finishLongOp()
		}
		return cycles
	default: // cycle burn (tail of a long communication)
		chunk := lo.burnCycles
		if chunk > longOpChunkCycles {
			chunk = longOpChunkCycles
		}
		lo.burnCycles -= chunk
		if lo.burnCycles <= 0 {
			m.finishLongOp()
		}
		return chunk
	}
}

func (m *Machine) finishLongOp() {
	done := m.longOp.onDone
	m.longOp = nil
	if done != nil {
		done()
	}
}

// longOpChunkCycles bounds the uninterruptible slice of a burn-style
// long operation.
const longOpChunkCycles = 24
