package core

import (
	"transputer/internal/isa"
	"transputer/internal/probe"
)

// Channel communication (paper, 3.2.10).
//
// A channel between processes on the same transputer is a single word
// in memory; a channel between transputers is a link.  The input
// message and output message instructions use the address of the
// channel to decide which, "allowing a process to be written and
// compiled without knowledge of where its channels are connected."
//
// A process prepares by loading a pointer to the buffer, the channel
// identity and the byte count: C = pointer, B = channel, A = count.
//
// Communication takes place when both processes are ready: the first
// process to become ready stores its descriptor in the channel word and
// its buffer pointer in its workspace, then deschedules; the second
// performs the copy and reschedules it.

// commInlineCycleLimit is the largest communication cost charged within
// a single uninterruptible step; longer transfers are finished as an
// interruptible cycle burn so the priority-switch latency bound holds.
const commInlineCycleLimit = 48

// outputMessage implements the output message operation.
func (m *Machine) outputMessage() int {
	count := int(m.Areg)
	chAddr := m.Breg
	ptr := m.Creg
	m.stats.MessagesOut++
	if m.isEventChannel(chAddr) {
		m.fault("output on the event channel", chAddr)
		return 1
	}
	if e, ok := m.vchanChannel(chAddr); ok {
		if !e.out {
			m.fault("output on input vchan channel", chAddr)
			return 1
		}
		return m.vchanTransfer(e, chAddr, ptr, count, true)
	}
	if link, isOut, ok := m.externalChannel(chAddr); ok {
		if !isOut {
			m.fault("output on input link channel", chAddr)
			return 1
		}
		return m.externalTransfer(link, chAddr, ptr, count, true)
	}

	chWord := m.word(chAddr)
	w := m.wptr()
	if chWord == m.notProcess() {
		// First at the rendezvous: wait for the inputter.
		m.setWord(chAddr, m.Wdesc)
		m.setWordIndex(w, wsPointer, ptr)
		if m.bus != nil {
			m.emit(probe.Event{Kind: probe.ChanBlock, Proc: m.Wdesc, Addr: chAddr, Out: true,
				Flow: m.offerFlow(chAddr), IP: m.Iptr})
		}
		m.blockOnComm(BlockChanOut, chAddr, -1)
		return isa.CommunicationCycles(0, m.wordBits)
	}

	partnerW := wptrOf(chWord)
	state := m.wordIndex(partnerW, wsState)
	switch state {
	case m.altEnabling(), m.altReady():
		// The inputter is enabling or has already seen a ready guard:
		// mark the channel ready and wait to be collected.
		m.setWord(chAddr, m.Wdesc)
		m.setWordIndex(w, wsPointer, ptr)
		m.setWordIndex(partnerW, wsState, m.altReady())
		if m.bus != nil {
			m.emit(probe.Event{Kind: probe.ChanBlock, Proc: m.Wdesc, Addr: chAddr, Out: true,
				Flow: m.offerFlow(chAddr), IP: m.Iptr})
		}
		m.blockOnComm(BlockChanOut, chAddr, -1)
		return isa.CommunicationCycles(0, m.wordBits)
	case m.altWaiting():
		// The inputter is descheduled inside alt wait: wake it.
		m.setWord(chAddr, m.Wdesc)
		m.setWordIndex(w, wsPointer, ptr)
		m.setWordIndex(partnerW, wsState, m.altReady())
		m.wake(chWord)
		if m.bus != nil {
			m.emit(probe.Event{Kind: probe.ChanBlock, Proc: m.Wdesc, Addr: chAddr, Out: true,
				Flow: m.offerFlow(chAddr), IP: m.Iptr})
		}
		m.blockOnComm(BlockChanOut, chAddr, -1)
		return isa.CommunicationCycles(0, m.wordBits)
	}

	// The inputter is already waiting: copy the message to its buffer
	// and reschedule it.
	dst := m.wordIndex(partnerW, wsPointer)
	m.copyBytes(dst, ptr, count)
	m.setWord(chAddr, m.notProcess())
	m.stats.BytesOut += uint64(count)
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.ChanRendezvous, Proc: m.Wdesc, Addr: chAddr,
			Bytes: count, Arg: int64(chWord), Flow: m.takeFlow(chAddr), IP: m.Iptr})
	}
	return m.completeTransfer(chWord, count)
}

// inputMessage implements the input message operation.
func (m *Machine) inputMessage() int {
	count := int(m.Areg)
	chAddr := m.Breg
	ptr := m.Creg
	m.stats.MessagesIn++
	if m.isEventChannel(chAddr) {
		return m.eventInput()
	}
	if e, ok := m.vchanChannel(chAddr); ok {
		if e.out {
			m.fault("input on output vchan channel", chAddr)
			return 1
		}
		return m.vchanTransfer(e, chAddr, ptr, count, false)
	}
	if link, isOut, ok := m.externalChannel(chAddr); ok {
		if isOut {
			m.fault("input on output link channel", chAddr)
			return 1
		}
		return m.externalTransfer(link, chAddr, ptr, count, false)
	}

	chWord := m.word(chAddr)
	w := m.wptr()
	if chWord == m.notProcess() {
		m.setWord(chAddr, m.Wdesc)
		m.setWordIndex(w, wsPointer, ptr)
		if m.bus != nil {
			m.emit(probe.Event{Kind: probe.ChanBlock, Proc: m.Wdesc, Addr: chAddr,
				Flow: m.offerFlow(chAddr), IP: m.Iptr})
		}
		m.blockOnComm(BlockChanIn, chAddr, -1)
		return isa.CommunicationCycles(0, m.wordBits)
	}

	// The outputter is waiting: copy from its buffer.
	partnerW := wptrOf(chWord)
	src := m.wordIndex(partnerW, wsPointer)
	m.copyBytes(ptr, src, count)
	m.setWord(chAddr, m.notProcess())
	m.stats.BytesIn += uint64(count)
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.ChanRendezvous, Proc: m.Wdesc, Addr: chAddr,
			Bytes: count, Arg: int64(chWord), Flow: m.takeFlow(chAddr), IP: m.Iptr})
	}
	return m.completeTransfer(chWord, count)
}

// completeTransfer charges the communication cost and reschedules the
// partner.  Costs beyond the inline limit are burned interruptibly, the
// partner being rescheduled when the burn completes.
func (m *Machine) completeTransfer(partner uint64, count int) int {
	cost := isa.CommunicationCycles(count, m.wordBits)
	if cost <= commInlineCycleLimit {
		m.wake(partner)
		return cost
	}
	m.longOp = &longOpState{
		burnCycles: cost - commInlineCycleLimit,
		onDone:     func() { m.wake(partner) },
	}
	return commInlineCycleLimit
}

// externalTransfer hands a message over to the link engine and
// deschedules the process; the engine reschedules it when the last
// byte is acknowledged.
func (m *Machine) externalTransfer(link int, chAddr, ptr uint64, count int, output bool) int {
	if m.ext == nil {
		m.fault("no link engine attached", uint64(link))
		return 1
	}
	wdesc := m.Wdesc
	ip := m.Iptr
	var fl uint64
	if m.bus != nil {
		// Outputs mint the flow here and hand it to the engine so every
		// packet of the transfer (and its acks, NAKs and retransmits)
		// carries it across the wire; inputs learn their flow from the
		// first packet that lands, so ask the engine — twice, since at
		// start nothing may have arrived yet.
		if output {
			fl = m.newFlow()
			if m.flowExt != nil {
				m.flowExt.HandoffFlow(link, true, fl)
			}
		} else if m.flowExt != nil {
			fl = m.flowExt.TransferFlow(link, false)
		}
	}
	done := func() {
		if m.bus != nil {
			f := fl
			if !output && m.flowExt != nil {
				f = m.flowExt.TransferFlow(link, false)
			}
			m.emit(probe.Event{Kind: probe.LinkXferEnd, Proc: wdesc, Link: link,
				Bytes: count, Out: output, Flow: f, IP: ip})
		}
		m.wake(wdesc)
	}
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.LinkXferStart, Proc: wdesc, Link: link,
			Bytes: count, Out: output, Flow: fl, IP: ip})
	}
	kind := BlockLinkIn
	if output {
		kind = BlockLinkOut
	}
	m.blockOnComm(kind, chAddr, link)
	if output {
		m.stats.ExternalOut++
		m.stats.BytesOut += uint64(count)
		m.ext.BeginOutput(link, ptr, count, done)
	} else {
		m.stats.ExternalIn++
		m.stats.BytesIn += uint64(count)
		m.ext.BeginInput(link, ptr, count, done)
	}
	return isa.CommunicationCycles(0, m.wordBits)
}

// outputShort implements output byte / output word: the value in B is
// stored at workspace location 0, which then serves as the source
// buffer of a size-byte output on channel A.
func (m *Machine) outputShort(size int) int {
	chAddr := m.Areg
	value := m.Breg
	w := m.wptr()
	m.setWordIndex(w, 0, value)
	m.Areg = uint64(size)
	m.Breg = chAddr
	m.Creg = m.index(w, 0)
	return m.outputMessage()
}

// moveMessage implements the block move: A = count, B = destination,
// C = source.  Large moves run as interruptible installments so a
// priority switch can occur during execution.
func (m *Machine) moveMessage() int {
	count := int(m.Areg)
	dst := m.Breg
	src := m.Creg
	if count <= 0 {
		return isa.MoveCycles(0, m.wordBits)
	}
	cost := isa.MoveCycles(count, m.wordBits)
	if cost <= commInlineCycleLimit {
		m.copyBytes(dst, src, count)
		return cost
	}
	m.longOp = &longOpState{src: src, dst: dst, remaining: count}
	return 0
}

// copyBytes copies count bytes within machine memory, wrapping in the
// address space.
func (m *Machine) copyBytes(dst, src uint64, count int) {
	for i := 0; i < count; i++ {
		m.setByte((dst+uint64(i))&m.mask, m.byteAt((src+uint64(i))&m.mask))
	}
}
