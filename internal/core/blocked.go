package core

import (
	"fmt"
	"sort"

	"transputer/internal/sim"
)

// Deadlock diagnostics.  Every communication instruction that
// deschedules the current process records what it is waiting for; the
// record is erased when the process is woken.  A settled system with a
// non-empty registry is deadlocked, and the registry names each stuck
// process precisely — workspace, saved instruction pointer, and the
// channel, link, timer or event it is blocked on — instead of leaving
// the user with a silent hang.

// BlockKind classifies what a blocked process is waiting for.
type BlockKind uint8

const (
	// BlockChanIn: inputting on an internal channel, first at the
	// rendezvous.
	BlockChanIn BlockKind = iota
	// BlockChanOut: outputting on an internal channel, first at the
	// rendezvous (or waiting to be collected by an alternative).
	BlockChanOut
	// BlockLinkIn: inputting on a link channel; the link engine owns the
	// transfer.
	BlockLinkIn
	// BlockLinkOut: outputting on a link channel.
	BlockLinkOut
	// BlockTimer: waiting on a timer input; Addr holds the wakeup clock
	// value.
	BlockTimer
	// BlockAlt: descheduled inside an alternative wait.
	BlockAlt
	// BlockEvent: waiting on the external event channel.
	BlockEvent

	numBlockKinds
)

var blockKindNames = [numBlockKinds]string{
	BlockChanIn:  "channel input",
	BlockChanOut: "channel output",
	BlockLinkIn:  "link input",
	BlockLinkOut: "link output",
	BlockTimer:   "timer wait",
	BlockAlt:     "alternative wait",
	BlockEvent:   "event wait",
}

// String names the block kind.
func (k BlockKind) String() string {
	if int(k) < len(blockKindNames) {
		return blockKindNames[k]
	}
	return "unknown"
}

// BlockedProcess describes one process descheduled on a communication.
type BlockedProcess struct {
	// Wdesc is the process descriptor (workspace pointer | priority).
	Wdesc uint64
	// Iptr is the instruction the process resumes at.
	Iptr uint64
	Kind BlockKind
	// Addr is the channel word address for channel and link kinds, and
	// the wakeup clock value for BlockTimer.
	Addr uint64
	// Link is the link index for link kinds, -1 otherwise.
	Link int
	// Since is the simulated time the process blocked.
	Since sim.Time
}

// Wptr returns the workspace pointer without the priority bit.
func (b BlockedProcess) Wptr() uint64 { return b.Wdesc &^ 1 }

// Priority returns the process priority (0 high, 1 low).
func (b BlockedProcess) Priority() int { return int(b.Wdesc & 1) }

// String renders a one-line description for watchdog reports.
func (b BlockedProcess) String() string {
	switch b.Kind {
	case BlockLinkIn, BlockLinkOut:
		return fmt.Sprintf("Wptr=%#x Iptr=%#x blocked on %s, link %d (channel %#x)",
			b.Wptr(), b.Iptr, b.Kind, b.Link, b.Addr)
	case BlockTimer:
		return fmt.Sprintf("Wptr=%#x Iptr=%#x blocked on %s until clock %d",
			b.Wptr(), b.Iptr, b.Kind, b.Addr)
	case BlockAlt, BlockEvent:
		return fmt.Sprintf("Wptr=%#x Iptr=%#x blocked on %s", b.Wptr(), b.Iptr, b.Kind)
	default:
		return fmt.Sprintf("Wptr=%#x Iptr=%#x blocked on %s, channel %#x",
			b.Wptr(), b.Iptr, b.Kind, b.Addr)
	}
}

// BlockedProcesses returns a snapshot of every process currently
// descheduled on a communication, sorted by workspace pointer for
// deterministic reports.
func (m *Machine) BlockedProcesses() []BlockedProcess {
	out := make([]BlockedProcess, 0, len(m.blocked))
	for _, b := range m.blocked {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wptr() < out[j].Wptr() })
	return out
}
