package core

import "transputer/internal/isa"

// The predecoded block cache.
//
// I1 instructions are position independent and compiler output is
// static straight-line code (paper, 3.2), so the result of fetching and
// decoding a byte sequence — the final function, its accumulated prefix
// operand, its length and its fixed cycle cost — never changes unless
// the bytes themselves are overwritten.  The cache translates
// straight-line runs at first execution into arrays of records keyed by
// the instruction pointer; the hot path then dispatches on records
// instead of re-fetching bytes and re-walking pfix/nfix chains.
//
// A block terminates at anything that can transfer control or touch the
// scheduler: j, cj, call, and every opr.  The records before the
// terminator are "pure": they read and write memory and the evaluation
// stack only, with a fully fixed cycle cost, which is what lets
// Machine.StepRun execute them in a tight loop and lets the runner
// promise the simulation coordinator a quiet horizon (see
// SendLookaheadCycles).
//
// Self-modifying code still works: every memory write is filtered
// against the cached code range and overlapping blocks are invalidated
// before the write's effect can be observed, including a store that
// rewrites a later instruction of the block currently executing.

// blockRec is one predecoded instruction: the final function with its
// fully accumulated prefix operand.
type blockRec struct {
	addr    uint64 // address of the first byte, prefixes included
	end     uint64 // address of the next instruction
	operand uint64
	pre     uint16 // prefix cycles, plus the no-fetch-buffer penalty
	cycles  uint16 // pre + the instruction's minimum base cost
	bytes   uint8
	fn      isa.Function
	pure    bool // pure compute: no control flow, scheduler or clock
	term    bool // ends its block (j, cj, call, or a non-pure opr)
}

// block is a decoded straight-line run.
type block struct {
	startAddr        uint64 // machine address of recs[0]
	startOff, endOff uint64 // memory offsets covered: [startOff, endOff)
	recs             []blockRec
	// quiet[i] is a lower bound on the cycles from the start of record i
	// to the start of the first instruction that could emit externally
	// visible activity (an opr): the sum of the fixed minimum costs of
	// records i.. up to and including a trailing j/cj/call, and up to but
	// excluding a terminating opr.
	quiet []int32
	valid bool
}

const (
	// blockPageShift sizes the invalidation pages: writes are mapped to
	// 256-byte pages, each holding the blocks that overlap it.
	blockPageShift = 8
	// maxBlockRecs bounds one block.
	maxBlockRecs = 64
	// maxBlockBytes bounds one record's prefix chain; longer chains
	// (never emitted by the assembler or compiler) fall back to the
	// interpreted path.
	maxRecBytes = 16
	// maxBlocks bounds the cache; pathological self-modifying programs
	// flush wholesale instead of growing without bound.
	maxBlocks = 4096
)

// blockCache holds a machine's decoded blocks and the index needed to
// invalidate them precisely on writes.
type blockCache struct {
	blocks map[uint64]*block   // start address -> block
	pages  map[uint64][]*block // page index -> blocks overlapping it
	lo, hi uint64              // union of covered offsets, the write filter
}

func (m *Machine) bcache() *blockCache {
	if m.bc == nil {
		m.bc = &blockCache{
			blocks: make(map[uint64]*block),
			pages:  make(map[uint64][]*block),
			lo:     ^uint64(0),
		}
	}
	return m.bc
}

// flushBlocks drops every cached block: program load or cache overflow.
func (m *Machine) flushBlocks() {
	m.bc = nil
	m.curBlock = nil
}

// SetBlockCache turns the predecoded block cache on or off at run
// time.  Like Config.NoBlockCache this is purely a simulator-
// performance switch: traces, statistics and cycle accounting are
// identical either way.  Turning the cache off also drops every
// cached block.
func (m *Machine) SetBlockCache(on bool) {
	m.cfg.NoBlockCache = !on
	if !on {
		m.flushBlocks()
	}
}

// noteCodeWrite invalidates every cached block overlapping the written
// byte range [off, off+n).  Callers have already tested the range
// against the cache's lo/hi filter.
func (m *Machine) noteCodeWrite(off, n uint64) {
	bc := m.bc
	var victims []*block
	last := (off + n - 1) >> blockPageShift
	for p := off >> blockPageShift; p <= last; p++ {
		for _, b := range bc.pages[p] {
			if b.valid && b.startOff < off+n && off < b.endOff {
				b.valid = false
				victims = append(victims, b)
			}
		}
	}
	for _, b := range victims {
		bc.remove(b)
	}
}

// remove unlinks an invalidated block from the lookup map and the page
// lists.
func (bc *blockCache) remove(b *block) {
	if bc.blocks[b.startAddr] == b {
		delete(bc.blocks, b.startAddr)
	}
	last := (b.endOff - 1) >> blockPageShift
	for p := b.startOff >> blockPageShift; p <= last; p++ {
		list := bc.pages[p]
		for i, x := range list {
			if x == b {
				bc.pages[p] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// pureOp reports whether an indirect operation is pure compute — no
// control transfer, no scheduler, channel, timer or clock interaction,
// registers and ordinary memory only — and its minimum cycle cost
// (data-dependent operations report their floor; it is used for quiet
// bounds, never for accounting, which always charges the executed
// cost).  Everything communication- or scheduling-shaped is impure and
// terminates its block, as do the rare scheduler-register and
// workspace-switch operations, excluded out of caution: exclusion only
// costs block length, inclusion would risk correctness.
func pureOp(op isa.Op, wordBits int) (minCycles int, pure bool) {
	switch op {
	case isa.OpRev, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpSum, isa.OpDiff, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpNot,
		isa.OpGt, isa.OpMint,
		isa.OpLadd, isa.OpLsub, isa.OpLsum, isa.OpLdiff, isa.OpLmul,
		isa.OpLdiv, isa.OpXdble, isa.OpCsngl, isa.OpXword, isa.OpCword,
		isa.OpBsub, isa.OpWsub, isa.OpBcnt, isa.OpWcnt, isa.OpLb, isa.OpSb,
		isa.OpLdpi, isa.OpCsub0, isa.OpCcnt1, isa.OpLdpri,
		isa.OpSeterr, isa.OpTesterr, isa.OpClrhalterr, isa.OpSethalterr,
		isa.OpTesthalterr:
		c, _ := isa.OpCycles(op, wordBits)
		return c, true
	case isa.OpShl, isa.OpShr:
		return isa.ShiftCycles(0), true
	case isa.OpLshl, isa.OpLshr:
		return isa.LongShiftCycles(0), true
	case isa.OpProd:
		return isa.ProdCycles(0), true
	case isa.OpNorm:
		return isa.NormCycles(0), true
	}
	return 0, false
}

// decodeBlock translates the straight-line byte sequence starting at
// iptr.  It returns nil when nothing could be decoded (the first
// instruction runs off memory or has a pathological prefix chain); the
// interpreted path then reproduces the fault exactly.
func (m *Machine) decodeBlock(iptr uint64) *block {
	bc := m.bcache()
	if len(bc.blocks) >= maxBlocks {
		m.flushBlocks()
		bc = m.bcache()
	}
	memLen := uint64(len(m.mem))
	fetchPenalty := 0
	if m.cfg.NoFetchBuffer {
		// Ablation: without the fetch buffer each instruction byte costs
		// an extra memory cycle (charged per instruction, like execOne).
		fetchPenalty = 1
	}
	b := &block{startAddr: iptr, startOff: m.offset(iptr), valid: true}
	addr := iptr
	prevOff := b.startOff
	for len(b.recs) < maxBlockRecs {
		rec, ok := m.decodeRec(addr, memLen, fetchPenalty)
		if !ok {
			break
		}
		endOff := m.offset(rec.end)
		if endOff <= prevOff {
			break // wrapped around the address space; not cacheable
		}
		prevOff = endOff
		b.recs = append(b.recs, rec)
		addr = rec.end
		if rec.term {
			break
		}
	}
	if len(b.recs) == 0 {
		return nil
	}
	b.endOff = prevOff
	b.quiet = make([]int32, len(b.recs))
	quiet := int32(0)
	for i := len(b.recs) - 1; i >= 0; i-- {
		r := &b.recs[i]
		switch {
		case r.fn == isa.FnOpr && !r.pure:
			// A communication/scheduling operation could act externally
			// the moment it starts.
			quiet = 0
		case storeRec(r):
			// A store can rewrite upcoming code (self-modification), in
			// which case the decoded suffix no longer predicts what
			// executes — but the records before a store cannot, so a
			// bound through the store itself is still sound.
			quiet = int32(r.cycles)
		default:
			quiet += int32(r.cycles)
		}
		b.quiet[i] = quiet
	}
	if old := bc.blocks[iptr]; old != nil {
		old.valid = false
		bc.remove(old)
	}
	bc.blocks[iptr] = b
	last := (b.endOff - 1) >> blockPageShift
	for p := b.startOff >> blockPageShift; p <= last; p++ {
		bc.pages[p] = append(bc.pages[p], b)
	}
	if b.startOff < bc.lo {
		bc.lo = b.startOff
	}
	if b.endOff > bc.hi {
		bc.hi = b.endOff
	}
	return b
}

// storeRec reports whether a record writes data memory.  Call also
// writes memory (the new call frame) but is always a block terminator,
// so nothing is predicted beyond it.
func storeRec(r *blockRec) bool {
	return r.fn == isa.FnStl || r.fn == isa.FnStnl ||
		(r.fn == isa.FnOpr && isa.Op(r.operand) == isa.OpSb)
}

// decodeRec decodes a single instruction (prefix chain plus final byte)
// at addr without side effects.  ok is false when the bytes run off
// implemented memory — execution must take the interpreted path so the
// fetch fault fires exactly as before.
func (m *Machine) decodeRec(addr, memLen uint64, fetchPenalty int) (blockRec, bool) {
	var oreg uint64
	pre := 0
	nbytes := 0
	a := addr
	for nbytes < maxRecBytes {
		off := m.offset(a)
		if off >= memLen {
			return blockRec{}, false
		}
		bv := m.mem[off]
		a = (a + 1) & m.mask
		nbytes++
		fn := isa.Function(bv >> 4)
		data := uint64(bv & 0xF)
		switch fn {
		case isa.FnPfix:
			oreg = (oreg | data) << 4 & m.mask
			pre += isa.CyclesPerPrefix
		case isa.FnNfix:
			oreg = ^(oreg | data) << 4 & m.mask
			pre += isa.CyclesPerPrefix
		default:
			operand := (oreg | data) & m.mask
			preTotal := pre + nbytes*fetchPenalty
			minC := isa.FunctionCycles(fn)
			var pure, term bool
			switch fn {
			case isa.FnJ, isa.FnCj, isa.FnCall:
				term = true
			case isa.FnOpr:
				minC, pure = pureOp(isa.Op(operand), m.wordBits)
				term = !pure
			default:
				pure = true // ldlp ldnl ldc ldnlp ldl adc ajw eqc stl stnl
			}
			return blockRec{
				addr:    addr,
				end:     a,
				operand: operand,
				pre:     uint16(preTotal),
				cycles:  uint16(preTotal + minC),
				bytes:   uint8(nbytes),
				fn:      fn,
				pure:    pure,
				term:    term,
			}, true
		}
	}
	return blockRec{}, false
}

// lookupBlock returns the cached (or freshly decoded) block starting at
// iptr.
func (m *Machine) lookupBlock(iptr uint64) *block {
	if m.bc != nil {
		if b := m.bc.blocks[iptr]; b != nil && b.valid {
			return b
		}
	}
	return m.decodeBlock(iptr)
}

// execRec dispatches one predecoded record, reproducing the interpreted
// path byte for byte: instruction counting, tracing, the fetch-buffer
// ablation charge and the cycle total are all identical.
func (m *Machine) execRec(b *block, idx int) int {
	rec := &b.recs[idx]
	m.Iptr = rec.end
	m.countInstr(int(rec.bytes), int(rec.fn))
	if m.trace != nil {
		m.trace(TraceEvent{
			Time: m.now(),
			Addr: rec.addr, Wdesc: m.Wdesc,
			Areg: m.Areg, Breg: m.Breg, Creg: m.Creg,
			Fn: rec.fn, Operand: rec.operand, Cycles: m.stats.Cycles,
		})
	}
	cycles := int(rec.pre) + m.execFunction(rec.fn, rec.operand)
	if b.valid && idx+1 < len(b.recs) {
		m.curBlock, m.curIdx = b, idx+1
	} else {
		m.curBlock = nil
	}
	return cycles
}

// SendLookaheadCycles returns a lower bound on the processor cycles
// that must elapse before the machine could emit externally visible
// activity (start or acknowledge a link transfer), or 0 when no bound
// is known.  The bound is read off the predecoded block at the current
// instruction pointer: the fixed minimum costs of the instructions
// before the next opr.  The parallel engine turns it into a send
// promise that extends neighbouring shards' windows (see internal/sim).
func (m *Machine) SendLookaheadCycles() int {
	if m.cfg.NoBlockCache || m.halted || m.longOp != nil || m.preemptPending ||
		m.pendingSwitchCycles != 0 || m.Oreg != 0 || m.Wdesc == m.notProcess() {
		return 0
	}
	b, idx := m.curBlock, m.curIdx
	if b == nil || !b.valid || idx >= len(b.recs) || b.recs[idx].addr != m.Iptr {
		if m.bc == nil {
			return 0
		}
		b = m.bc.blocks[m.Iptr]
		if b == nil || !b.valid {
			return 0
		}
		idx = 0
	}
	return int(b.quiet[idx])
}

// StepRun executes a run of consecutive pure predecoded records as one
// batch, bounded so that every record after the first starts strictly
// before maxNs of simulated time has elapsed — exactly the instructions
// Step-by-Step execution would have run against the same bound.  It
// returns the total cycles consumed and the cycles of the last record
// (so a caller can reconstruct the last instruction's start time); a
// zero total means the fast path does not apply and the caller must use
// Step.  Pure records cannot schedule, deschedule, communicate or
// observe time, so executing them without touching the clock is
// invisible; cycle accounting still happens per record.
func (m *Machine) StepRun(maxNs int64) (total, last int) {
	if m.curBlock == nil || m.halted || m.trace != nil ||
		m.pendingSwitchCycles != 0 || m.preemptPending || m.longOp != nil ||
		m.Oreg != 0 || m.Wdesc == m.notProcess() {
		return 0, 0
	}
	b, idx := m.curBlock, m.curIdx
	if !b.valid || idx >= len(b.recs) || b.recs[idx].addr != m.Iptr || !b.recs[idx].pure {
		return 0, 0
	}
	cycleNs := int64(m.cfg.CycleNs)
	for {
		rec := &b.recs[idx]
		m.Iptr = rec.end
		m.countInstr(int(rec.bytes), int(rec.fn))
		c := int(rec.pre) + m.execFunction(rec.fn, rec.operand)
		m.account(c)
		total += c
		last = c
		idx++
		if m.halted || !b.valid {
			break // memory fault, halt-on-error, or self-modified block
		}
		if idx >= len(b.recs) || !b.recs[idx].pure {
			break
		}
		if int64(total)*cycleNs >= maxNs {
			break
		}
	}
	if !m.halted && b.valid && idx < len(b.recs) {
		m.curBlock, m.curIdx = b, idx
	} else {
		m.curBlock = nil
	}
	return total, last
}
