package core

import "fmt"

// The memory address space comprises a signed linear address space
// (paper, 3.2.2).  A pointer is a word address plus a byte selector in
// its least significant bits.  Addresses start at the most negative
// integer, so the unsigned offset of an address is obtained by flipping
// the sign bit.
//
// The first words of memory are reserved, in order: the four link output
// channel words, the four link input channel words, and the event
// channel word; the remainder of the reserved area is the register save
// space used on priority switches.  MemStart is the first word available
// to programs.

// Reserved word indices from MOSTNEG.
const (
	wordLink0Out = 0
	wordLink0In  = 4
	wordEvent    = 8
	// reservedWords is the size of the whole reserved area.
	reservedWords = 16
)

// Workspace slots below the workspace pointer, in words (the standard
// transputer layout).
const (
	wsIptr    = -1 // saved instruction pointer of a descheduled process
	wsLink    = -2 // next process on the scheduling list
	wsState   = -3 // ALT state, or the message pointer while blocked
	wsPointer = -3 // alias: saved buffer pointer
	wsTLink   = -4 // timer queue link / timer ALT state
	wsTime    = -5 // wakeup time
)

// A MemoryFault describes an out-of-range or misaligned access.  The
// real processor performs no access checking ("there is also no need for
// the hardware to perform access checking on every memory reference");
// the simulator reports the fault, sets the error flag and halts so that
// bugs surface instead of corrupting the simulation.
type MemoryFault struct {
	Machine string
	Op      string
	Addr    uint64
}

func (f *MemoryFault) Error() string {
	return fmt.Sprintf("%s: memory fault: %s at address %#x", f.Machine, f.Op, f.Addr)
}

// offset converts a machine address into an index into the memory array:
// flipping the sign bit maps MOSTNEG..MOSTPOS onto 0..2^w-1.
func (m *Machine) offset(addr uint64) uint64 {
	return (addr ^ m.signBit) & m.mask
}

// addrOf converts a memory array index back into a machine address.
func (m *Machine) addrOf(offset uint64) uint64 {
	return (offset ^ m.signBit) & m.mask
}

// MemStart returns the first program-usable address.
func (m *Machine) MemStart() uint64 {
	return m.addrOf(uint64(reservedWords * m.bpw))
}

// MemTop returns the first address beyond implemented memory.
func (m *Machine) MemTop() uint64 {
	return m.addrOf(uint64(len(m.mem))) // may wrap; callers compare offsets
}

// LinkOutAddr returns the channel address of link i's output channel.
func (m *Machine) LinkOutAddr(i int) uint64 {
	return m.addrOf(uint64((wordLink0Out + i) * m.bpw))
}

// LinkInAddr returns the channel address of link i's input channel.
func (m *Machine) LinkInAddr(i int) uint64 {
	return m.addrOf(uint64((wordLink0In + i) * m.bpw))
}

// EventAddr returns the event channel address.
func (m *Machine) EventAddr() uint64 {
	return m.addrOf(uint64(wordEvent * m.bpw))
}

// externalChannel reports whether addr is a link channel word, and which
// link and direction it selects.
func (m *Machine) externalChannel(addr uint64) (link int, output bool, ok bool) {
	off := m.offset(addr)
	w := int(off) / m.bpw
	if off%uint64(m.bpw) != 0 || w >= wordEvent {
		return 0, false, false
	}
	if w >= wordLink0In {
		return w - wordLink0In, false, true
	}
	return w, true, true
}

func (m *Machine) fault(op string, addr uint64) {
	if m.faulted == nil {
		m.faulted = &MemoryFault{Machine: m.cfg.Name, Op: op, Addr: addr}
	}
	m.setError()
	m.halted = true
}

// word reads the word at a word-aligned address.
func (m *Machine) word(addr uint64) uint64 {
	off := m.offset(addr)
	if off%uint64(m.bpw) != 0 || off+uint64(m.bpw) > uint64(len(m.mem)) {
		m.fault("read word", addr)
		return 0
	}
	var v uint64
	for i := m.bpw - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.mem[off+uint64(i)])
	}
	return v
}

// setWord writes the word at a word-aligned address.
func (m *Machine) setWord(addr, v uint64) {
	off := m.offset(addr)
	if off%uint64(m.bpw) != 0 || off+uint64(m.bpw) > uint64(len(m.mem)) {
		m.fault("write word", addr)
		return
	}
	if m.bc != nil && off < m.bc.hi && off+uint64(m.bpw) > m.bc.lo {
		m.noteCodeWrite(off, uint64(m.bpw))
	}
	for i := 0; i < m.bpw; i++ {
		m.mem[off+uint64(i)] = byte(v)
		v >>= 8
	}
}

// byteAt reads the byte at any address.
func (m *Machine) byteAt(addr uint64) byte {
	off := m.offset(addr)
	if off >= uint64(len(m.mem)) {
		m.fault("read byte", addr)
		return 0
	}
	return m.mem[off]
}

// setByte writes the byte at any address.
func (m *Machine) setByte(addr uint64, v byte) {
	off := m.offset(addr)
	if off >= uint64(len(m.mem)) {
		m.fault("write byte", addr)
		return
	}
	if m.bc != nil && off < m.bc.hi && off >= m.bc.lo {
		m.noteCodeWrite(off, 1)
	}
	m.mem[off] = v
}

// wordIndex reads the word at base + i words.
func (m *Machine) wordIndex(base uint64, i int) uint64 {
	return m.word(m.index(base, i))
}

// setWordIndex writes the word at base + i words.
func (m *Machine) setWordIndex(base uint64, i int, v uint64) {
	m.setWord(m.index(base, i), v)
}

// index computes base + i words, wrapping in the word-sized address
// space.
func (m *Machine) index(base uint64, i int) uint64 {
	return (base + uint64(int64(i)*int64(m.bpw))) & m.mask
}

// ReadBytes copies n bytes starting at addr into a fresh slice; used by
// the link engine and by tests.
func (m *Machine) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = m.byteAt((addr + uint64(i)) & m.mask)
	}
	return out
}

// WriteBytes stores b starting at addr; used by the link engine, the
// loader and tests.
func (m *Machine) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.setByte((addr+uint64(i))&m.mask, v)
	}
}

// ReadWord exposes word for inspection by tests and tools.
func (m *Machine) ReadWord(addr uint64) uint64 { return m.word(addr) }

// WriteWord exposes setWord for loaders and tests.
func (m *Machine) WriteWord(addr, v uint64) { m.setWord(addr, v) }
