package core

// Stats aggregates the execution counters the paper's performance
// discussion rests on: instruction and cycle counts (MIPS), instruction
// length distribution (the "typically 80% single byte" claim), and
// scheduler activity.
type Stats struct {
	// Instructions is the number of completed instructions (prefix
	// sequences count as part of their final instruction).
	Instructions uint64
	// InstructionBytes is the total bytes of executed instructions,
	// including prefixes.
	InstructionBytes uint64
	// SingleByte counts executed instructions encoded in one byte.
	SingleByte uint64
	// Cycles is the total processor cycles consumed, including
	// scheduling charges.
	Cycles uint64
	// FunctionCounts tallies executed direct functions by code; prefix
	// bytes are counted under their own codes.
	FunctionCounts [16]uint64
	// OpCounts tallies executed indirect operations.
	OpCounts map[uint16]uint64

	// Scheduler activity.
	Enqueues    uint64
	Deschedules uint64
	Preemptions uint64
	Timeslices  uint64

	// Communication.
	MessagesIn  uint64
	MessagesOut uint64
	BytesIn     uint64
	BytesOut    uint64
	ExternalIn  uint64
	ExternalOut uint64

	// CodeBytes is the size of the loaded program image.
	CodeBytes int
}

// Add accumulates every counter of other into s, including the
// per-function and per-operation tallies; system-wide totals are built
// by folding node stats together with it.
func (s *Stats) Add(other Stats) {
	s.Instructions += other.Instructions
	s.InstructionBytes += other.InstructionBytes
	s.SingleByte += other.SingleByte
	s.Cycles += other.Cycles
	for i, c := range other.FunctionCounts {
		s.FunctionCounts[i] += c
	}
	if len(other.OpCounts) > 0 {
		if s.OpCounts == nil {
			s.OpCounts = make(map[uint16]uint64, len(other.OpCounts))
		}
		for op, c := range other.OpCounts {
			s.OpCounts[op] += c
		}
	}
	s.Enqueues += other.Enqueues
	s.Deschedules += other.Deschedules
	s.Preemptions += other.Preemptions
	s.Timeslices += other.Timeslices
	s.MessagesIn += other.MessagesIn
	s.MessagesOut += other.MessagesOut
	s.BytesIn += other.BytesIn
	s.BytesOut += other.BytesOut
	s.ExternalIn += other.ExternalIn
	s.ExternalOut += other.ExternalOut
	s.CodeBytes += other.CodeBytes
}

// SingleByteFraction returns the fraction of executed instructions that
// occupied a single byte.
func (s Stats) SingleByteFraction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.SingleByte) / float64(s.Instructions)
}

// MIPS returns the execution rate in millions of instructions per
// second for the given cycle time in nanoseconds.
func (s Stats) MIPS(cycleNs int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	seconds := float64(s.Cycles) * float64(cycleNs) * 1e-9
	return float64(s.Instructions) / seconds / 1e6
}

func (m *Machine) countInstr(bytes int, fn int) {
	m.stats.Instructions++
	m.stats.InstructionBytes += uint64(bytes)
	if bytes == 1 {
		m.stats.SingleByte++
	}
	m.stats.FunctionCounts[fn&0xF]++
}

func (m *Machine) countOp(op uint16) {
	if m.stats.OpCounts == nil {
		m.stats.OpCounts = make(map[uint16]uint64)
	}
	m.stats.OpCounts[op]++
}
