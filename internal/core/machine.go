package core

import (
	"fmt"

	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Machine is one transputer: processor state, memory and scheduler.
// All methods must be called from the single simulation goroutine.
type Machine struct {
	cfg      Config
	wordBits int
	bpw      int    // bytes per word
	mask     uint64 // word mask
	signBit  uint64 // MOSTNEG as an unsigned word

	mem []byte

	// The six registers used in the execution of a sequential process
	// (paper, figure 2).
	Iptr             uint64 // instruction pointer
	Wdesc            uint64 // workspace pointer with priority in bit 0
	Areg, Breg, Creg uint64 // evaluation stack
	Oreg             uint64 // operand register

	// Scheduling lists: front and back pointers per priority (paper,
	// figure 3).  notProcess marks an empty list.
	Fptr, Bptr [2]uint64

	// Timer queues: head workspace per priority, threaded through
	// wsTLink.
	Tptr        [2]uint64
	timerEvent  sim.EventID
	clockOffset [2]uint64

	// Saved low-priority state while a high-priority process runs
	// (modelling the reserved register save locations).
	savedLow struct {
		valid                   bool
		Iptr, Wdesc, A, B, C, O uint64
		longOp                  *longOpState
	}

	errorFlag bool
	haltErr   bool // halt-on-error flag
	halted    bool
	faulted   *MemoryFault

	clock Clock
	ext   External

	// onReady is invoked when the machine transitions from idle (no
	// current process) to having work; the driver uses it to resume
	// stepping.
	onReady func()

	// preemptPending is set when a high-priority process became ready
	// while a low-priority one was executing; honoured at the next
	// instruction boundary.
	preemptPending bool

	// pendingSwitchCycles accumulates scheduler charges (preemption
	// save, low-priority resume) to be added to the next step.
	pendingSwitchCycles int

	// timesliceCount accumulates cycles since the current low-priority
	// process was dispatched.
	timesliceCount int

	// longOp holds the state of an interruptible multi-cycle operation
	// (block move) executed in installments so that a priority switch
	// can occur during it (paper, 3.2.4).
	longOp *longOpState

	loadedCodeBytes int
	entryWptr       uint64

	trace Trace

	// Event channel state (paper 2.2.2): a latched pending signal, a
	// process blocked inputting, or an armed alternative.
	eventPending bool
	eventWaiter  uint64
	eventArmed   func()

	// waiting counts processes blocked on channels, timers, events or
	// stop, for deadlock diagnostics; blocked records what each one is
	// waiting for.  It is an unordered slice rather than a map: entries
	// come and go on every blocking communication — the engine's hottest
	// cycle — while it is only read by the cold watchdog snapshot, and
	// the handful of live entries make a linear scan cheaper than
	// hashing.
	waiting int
	blocked []BlockedProcess

	// forcedHalt records the reason a fault campaign stopped the node.
	forcedHalt string

	// bus, when non-nil, receives structured probe events from the
	// scheduler, channels and timers.  Every emit site nil-checks it,
	// so a detached machine pays nothing.
	bus *probe.Bus

	// Flow-tracing state, only touched when a bus is attached: flows
	// allocated here are packed (flowOrigin, sequence) pairs, chanFlows
	// holds the flow offered on each internal channel word between
	// ChanBlock and ChanRendezvous, and flowExt is the cached
	// FlowExternal view of ext (nil when the engine doesn't carry
	// flows).
	flowOrigin uint64
	flowSeq    uint64
	chanFlows  map[uint64]uint64
	flowExt    FlowExternal

	// Virtual-channel state, nil until the network layer maps a placed
	// channel word onto a (link, vchan) endpoint: vchans keys masked
	// channel addresses, vcExt is the cached VChanExternal view of ext.
	vchans map[uint64]vchanEnd
	vcExt  VChanExternal

	// bc caches predecoded straight-line instruction blocks; curBlock
	// and curIdx form the execution cursor into the block containing
	// the current instruction pointer (see blockcache.go).
	bc       *blockCache
	curBlock *block
	curIdx   int
	// qlen tracks the run-queue length per priority, published in
	// probe events.
	qlen [2]int

	stats Stats
}

// longOpState is an in-progress interruptible long operation: either a
// block move (remaining > 0) or a cycle burn modelling the tail of a
// long message communication (burnCycles > 0).
type longOpState struct {
	src, dst  uint64
	remaining int
	// overheadCharged reports whether the fixed part of the move cost
	// has been charged yet.
	overheadCharged bool
	burnCycles      int
	// onDone runs when the operation completes (e.g. rescheduling the
	// communication partner).
	onDone func()
}

// longOpChunkBytes bounds the uninterruptible portion of a block move;
// it is sized so the low-to-high priority switch stays within the
// paper's 58-cycle bound.
const longOpChunkBytes = 64

// notProcess is the minimum integer, used as the "no process" marker in
// channel words and list pointers.
func (m *Machine) notProcess() uint64 { return m.signBit }

// ALT state markers (stored in the wsState slot).
func (m *Machine) altEnabling() uint64 { return (m.signBit + 1) & m.mask }
func (m *Machine) altWaiting() uint64  { return (m.signBit + 2) & m.mask }
func (m *Machine) altReady() uint64    { return (m.signBit + 3) & m.mask }

// Timer ALT state markers (stored in the wsTLink slot).
func (m *Machine) timeSet() uint64    { return (m.signBit + 1) & m.mask }
func (m *Machine) timeNotSet() uint64 { return (m.signBit + 2) & m.mask }

// noneSelected marks an alternative with no selected branch yet.
func (m *Machine) noneSelected() uint64 { return m.mask } // -1

// New builds a machine from a configuration.  The machine has no clock
// or link engine attached; Attach must be called before Run when timers
// or links are used.
func New(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		wordBits: cfg.WordBits,
		bpw:      cfg.WordBits / 8,
		mem:      make([]byte, cfg.MemBytes),
	}
	m.mask = (uint64(1) << uint(cfg.WordBits)) - 1
	m.signBit = uint64(1) << uint(cfg.WordBits-1)
	m.resetSchedState()
	return m, nil
}

// MustNew is New for tests and examples with known-good configurations.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Machine) resetSchedState() {
	np := m.notProcess()
	m.Wdesc = np
	m.Iptr = 0
	m.Areg, m.Breg, m.Creg, m.Oreg = 0, 0, 0, 0
	for p := 0; p < 2; p++ {
		m.Fptr[p] = np
		m.Bptr[p] = np
		m.Tptr[p] = np
	}
	for w := 0; w < wordEvent+1; w++ {
		m.setWordIndex(m.addrOf(0), w, np)
	}
	m.savedLow.valid = false
	m.preemptPending = false
	m.pendingSwitchCycles = 0
	m.longOp = nil
	m.halted = false
	m.errorFlag = false
	m.faulted = nil
	m.eventPending = false
	m.eventWaiter = np
	m.eventArmed = nil
	m.waiting = 0
	m.blocked = m.blocked[:0]
	m.forcedHalt = ""
	m.qlen[0], m.qlen[1] = 0, 0
	m.flowSeq = 0
	m.chanFlows = nil
}

// Attach provides the simulated clock and, optionally, the link engine.
func (m *Machine) Attach(clock Clock, ext External) {
	m.clock = clock
	m.ext = ext
	m.flowExt, _ = ext.(FlowExternal)
	m.vcExt, _ = ext.(VChanExternal)
}

// OnReady registers the idle-to-ready callback used by the driver.
func (m *Machine) OnReady(fn func()) { m.onReady = fn }

// AttachProbe connects (or with nil, disconnects) the machine's probe
// bus.  With no bus attached the instrumentation is a nil check per
// scheduling event and nothing more.
func (m *Machine) AttachProbe(b *probe.Bus) { m.bus = b }

// SetFlowOrigin fixes the origin half of flow identities this machine
// allocates (see probe.PackFlow).  The network layer assigns each node
// its creation ordinal so flows are globally unique and deterministic.
func (m *Machine) SetFlowOrigin(origin uint64) { m.flowOrigin = origin }

// newFlow allocates the next flow identity.  Called only under a
// non-nil bus, so a detached run never advances the sequence.
func (m *Machine) newFlow() uint64 {
	m.flowSeq++
	return probe.PackFlow(m.flowOrigin, m.flowSeq)
}

// offerFlow allocates a flow for a message offered on an internal
// channel word and remembers it until the rendezvous completes.
func (m *Machine) offerFlow(chAddr uint64) uint64 {
	fl := m.newFlow()
	if m.chanFlows == nil {
		m.chanFlows = make(map[uint64]uint64)
	}
	m.chanFlows[chAddr] = fl
	return fl
}

// takeFlow consumes the flow offered on a channel word at rendezvous.
// A missing entry (the partner blocked before the probe attached)
// yields a fresh flow so the rendezvous still joins one.
func (m *Machine) takeFlow(chAddr uint64) uint64 {
	if fl, ok := m.chanFlows[chAddr]; ok {
		delete(m.chanFlows, chAddr)
		return fl
	}
	return m.newFlow()
}

// emit stamps and publishes a probe event.  Callers must have checked
// m.bus != nil.
//
//tvet:ignore probeguard the nil-bus fast path is the caller's contract, per the doc line above
func (m *Machine) emit(e probe.Event) {
	e.Time = m.now()
	e.Cycles = m.stats.Cycles
	e.Node = m.cfg.Name
	m.bus.Publish(e)
}

// cycleDur converts a cycle count to simulated time.
func (m *Machine) cycleDur(cycles int) sim.Time {
	return sim.Time(int64(cycles) * int64(m.cfg.CycleNs))
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Name returns the machine's label.
func (m *Machine) Name() string { return m.cfg.Name }

// WordBits returns the word length in bits.
func (m *Machine) WordBits() int { return m.wordBits }

// BytesPerWord returns the word length in bytes.
func (m *Machine) BytesPerWord() int { return m.bpw }

// Halted reports whether the machine has stopped (halt-on-error or a
// simulator-detected memory fault).
func (m *Machine) Halted() bool { return m.halted }

// ErrorFlag reports the state of the error flag.
func (m *Machine) ErrorFlag() bool { return m.errorFlag }

// Fault returns the first memory fault or forced halt, if any.
func (m *Machine) Fault() error {
	if m.faulted != nil {
		return m.faulted
	}
	if m.forcedHalt != "" {
		return fmt.Errorf("core: halted: %s", m.forcedHalt)
	}
	return nil
}

// ForceHalt stops the machine from outside the simulation — the fault
// subsystem's node-halt campaign.  The processor executes nothing
// further; the reason is reported by Fault.
func (m *Machine) ForceHalt(reason string) {
	if m.halted {
		return
	}
	m.halted = true
	m.forcedHalt = reason
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.NodeHalt})
	}
}

// ClearForcedHalt reverses a ForceHalt: the processor may execute
// again, picking up exactly the state it froze with — a battery-backed
// board whose power came back.  Only a forced halt can be cleared; a
// halt-on-error or memory-fault halt is a program's own verdict and
// stays.  Reports whether the machine was revived.
func (m *Machine) ClearForcedHalt() bool {
	if !m.halted || m.forcedHalt == "" || m.faulted != nil {
		return false
	}
	m.halted = false
	m.forcedHalt = ""
	if m.bus != nil {
		m.emit(probe.Event{Kind: probe.NodeRestart})
	}
	return true
}

// Idle reports whether no process is executing.  An idle machine may
// still be waiting on timers or links.
func (m *Machine) Idle() bool { return m.Wdesc == m.notProcess() || m.halted }

// Stats returns a copy of the machine's counters.
func (m *Machine) Stats() Stats { return m.stats }

// now returns the current simulated time, or zero when no clock is
// attached (pure cycle-counting runs).
func (m *Machine) now() sim.Time {
	if m.clock == nil {
		return 0
	}
	return m.clock.Now()
}

func (m *Machine) setError() {
	m.errorFlag = true
	if m.cfg.HaltOnError || m.haltErr {
		m.halted = true
	}
}

// signed interprets a word value as a signed integer.
func (m *Machine) signed(v uint64) int64 {
	v &= m.mask
	if v&m.signBit != 0 {
		return int64(v | ^m.mask)
	}
	return int64(v)
}

// unsigned masks a host value to a word.
func (m *Machine) unsigned(v int64) uint64 { return uint64(v) & m.mask }

// later implements the transputer's modular AFTER comparison: a AFTER b
// when (a-b) interpreted as a signed word is positive.
func (m *Machine) later(a, b uint64) bool {
	return m.signed((a-b)&m.mask) > 0
}

// Image is a loadable program produced by the assembler or the occam
// compiler.
type Image struct {
	// Code is the instruction stream, loaded at MemStart.
	Code []byte
	// Entry is the byte offset of the first instruction within Code.
	Entry int
	// DataBytes reserves zeroed space after the code image (vector
	// space for arrays placed outside workspaces).
	DataBytes int
	// WsBelow is the workspace requirement, in words, below the initial
	// workspace pointer: call frames, PAR component workspaces and the
	// five scheduler slots.
	WsBelow int
	// WsAbove is the number of local-variable words at and above the
	// initial workspace pointer.
	WsAbove int
	// Marks is the optional source map: code offsets annotated with the
	// source line they derive from, sorted by offset.  Consumers (the
	// sampling profiler) attribute an offset to the greatest mark at or
	// below it.
	Marks []SourceMark
}

// SourceMark associates a byte offset in Image.Code with a source line:
// code from Offset up to the next mark derives from Line.
type SourceMark struct {
	Offset int
	Line   int
}

// CodeStart returns the address code is loaded at.
func (m *Machine) CodeStart() uint64 { return m.MemStart() }

// DataStart returns the address of the reserved data area for the
// loaded image.
func (m *Machine) DataStart() uint64 {
	return m.index(m.MemStart(), (m.loadedCodeBytes+m.bpw-1)/m.bpw)
}

var errNoRoom = fmt.Errorf("core: program does not fit in memory")

// Load places the image in memory and creates the initial process at
// low priority, mirroring the hardware boot convention.
func (m *Machine) Load(img Image) error {
	m.resetSchedState()
	m.flushBlocks()
	codeStart := m.MemStart()
	codeWords := (len(img.Code) + m.bpw - 1) / m.bpw
	dataWords := (img.DataBytes + m.bpw - 1) / m.bpw
	wsBase := int(m.offset(codeStart))/m.bpw + codeWords + dataWords
	wptrWord := wsBase + img.WsBelow + 5 // room for scheduler slots below
	topWord := wptrWord + img.WsAbove
	if topWord*m.bpw > len(m.mem) {
		return fmt.Errorf("%w: need %d words, have %d",
			errNoRoom, topWord, len(m.mem)/m.bpw)
	}
	m.loadedCodeBytes = len(img.Code)
	m.WriteBytes(codeStart, img.Code)
	wptr := m.addrOf(uint64(wptrWord * m.bpw))
	m.entryWptr = wptr
	m.Wdesc = wptr | PriorityLow
	m.Iptr = m.index(codeStart, 0) + uint64(img.Entry)
	m.stats.CodeBytes = len(img.Code)
	return nil
}

// EntryWptr returns the initial workspace pointer established by Load;
// tests and tools use it to locate the program's local variables.
func (m *Machine) EntryWptr() uint64 { return m.entryWptr }

// Local reads local variable n of the entry workspace.
func (m *Machine) Local(n int) uint64 {
	return m.word(m.index(m.entryWptr, n))
}

// StartProcess enqueues an additional process with the given workspace
// pointer, instruction pointer and priority; used by loaders that build
// multi-process systems directly (the occam compiler instead emits
// start process instructions).
func (m *Machine) StartProcess(wptr, iptr uint64, priority int) {
	wdesc := (wptr &^ 1) | uint64(priority)
	m.setWordIndex(wptr&^1, wsIptr, iptr)
	m.schedule(wdesc)
}
