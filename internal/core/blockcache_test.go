package core_test

import (
	"reflect"
	"testing"

	"transputer/internal/core"
	"transputer/internal/sim"
)

// runSrcCache assembles and runs a program with the block cache on or
// off, failing on faults or timeout.
func runSrcCache(t *testing.T, src string, cache bool) (*core.Machine, core.RunResult) {
	t.Helper()
	cfg := core.T424().WithMemory(64 * 1024)
	cfg.NoBlockCache = !cache
	m := core.MustNew(cfg)
	if err := m.Load(assemble(t, src)); err != nil {
		t.Fatalf("load: %v", err)
	}
	res := core.Run(m, 100*sim.Millisecond)
	if err := m.Fault(); err != nil {
		t.Fatalf("fault: %v", err)
	}
	if !res.Settled {
		t.Fatalf("program did not settle in %v", res.Time)
	}
	return m, res
}

// selfModifySource patches its own code: the first pass through
// `again` stores 1, then overwrites the already-executed `ldc 1`
// (0x41) with `ldc 9` (0x49 = 73) and jumps back.  The second pass
// must fetch the new byte even though the old instruction sits in a
// decoded block — both passes enter at `again` via a jump, so the
// stale block would be re-entered at its cached key if invalidation
// failed.
const selfModifySource = `
	ldc 0
	stl 2
	j again
again:
	ldc 1
	stl 1
	ldl 2
	cj first
	stopp
first:
	ldc 1
	stl 2
	ldc 73
	ldpi again
	sb
	j again
`

func TestSelfModifyingCodeSeesNewBytes(t *testing.T) {
	for _, cache := range []bool{true, false} {
		m, _ := runSrcCache(t, selfModifySource, cache)
		if got := m.Local(1); got != 9 {
			t.Errorf("cache=%v: x = %d, want 9 (stale instruction executed)", cache, got)
		}
	}
}

// loopSource mixes straight-line arithmetic, indirect operations and
// control flow so decoded blocks are built, re-entered and interleaved
// with interpreted instructions.
const loopSource = `
	ldc 10
	stl 1
	ldc 0
	stl 2
loop:
	ldl 1
	cj done
	ldl 2
	ldl 1
	add
	ldl 1
	ldl 1
	mul
	sum
	stl 2
	ldl 1
	adc -1
	stl 1
	j loop
done:
	stopp
`

// TestBlockCacheResultEquivalence pins the cache as a pure performance
// switch: identical results, identical statistics (including the
// per-function and per-operation histograms), identical cycle totals
// and identical final times with it on or off.
func TestBlockCacheResultEquivalence(t *testing.T) {
	for _, src := range []string{loopSource, selfModifySource} {
		mOn, resOn := runSrcCache(t, src, true)
		mOff, resOff := runSrcCache(t, src, false)
		if mOn.Local(1) != mOff.Local(1) || mOn.Local(2) != mOff.Local(2) {
			t.Errorf("results differ: %d/%d vs %d/%d",
				mOn.Local(1), mOn.Local(2), mOff.Local(1), mOff.Local(2))
		}
		if resOn.Time != resOff.Time {
			t.Errorf("final times differ: %v vs %v", resOn.Time, resOff.Time)
		}
		if !reflect.DeepEqual(mOn.Stats(), mOff.Stats()) {
			t.Errorf("stats differ:\non:  %+v\noff: %+v", mOn.Stats(), mOff.Stats())
		}
	}
}

// TestBlockCacheTraceEquivalence compares full instruction traces with
// the cache on and off: every TraceEvent — time, address, registers,
// decoded instruction, cycle counter — must be byte-identical, so the
// cached dispatch is invisible to observers too.
func TestBlockCacheTraceEquivalence(t *testing.T) {
	run := func(src string, cache bool) []core.TraceEvent {
		cfg := core.T424().WithMemory(64 * 1024)
		cfg.NoBlockCache = !cache
		m := core.MustNew(cfg)
		if err := m.Load(assemble(t, src)); err != nil {
			t.Fatalf("load: %v", err)
		}
		var evs []core.TraceEvent
		m.SetTrace(func(e core.TraceEvent) { evs = append(evs, e) })
		res := core.Run(m, 100*sim.Millisecond)
		if !res.Settled {
			t.Fatalf("program did not settle in %v", res.Time)
		}
		return evs
	}
	for _, src := range []string{loopSource, selfModifySource} {
		on := run(src, true)
		off := run(src, false)
		if len(on) != len(off) {
			t.Fatalf("trace lengths differ: %d vs %d", len(on), len(off))
		}
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("trace event %d differs:\non:  %+v\noff: %+v", i, on[i], off[i])
			}
		}
	}
}
