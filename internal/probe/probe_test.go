package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"transputer/internal/sim"
)

func TestBusFanout(t *testing.T) {
	b := NewBus()
	var got []Kind
	b.Subscribe(func(e Event) { got = append(got, e.Kind) })
	b.Subscribe(func(e Event) { got = append(got, e.Kind) })
	b.Publish(Event{Kind: ChanRendezvous})
	if len(got) != 2 || got[0] != ChanRendezvous || got[1] != ChanRendezvous {
		t.Errorf("fanout = %v", got)
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind should be unknown")
	}
}

// TestTimelineChromeTrace feeds a synthetic event sequence through the
// timeline and checks the exported JSON is valid Chrome trace-event
// format with matched B/E slices and named tracks.
func TestTimelineChromeTrace(t *testing.T) {
	b := NewBus()
	tl := NewTimeline(b)
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	b.Publish(Event{Time: us(1), Node: "n0", Kind: ProcDispatch, Proc: 0x8001, Pri: 1})
	b.Publish(Event{Time: us(2), Node: "n0", Kind: ChanBlock, Proc: 0x8001, Addr: 0x100, Out: true})
	b.Publish(Event{Time: us(2), Node: "n0", Kind: ProcStop, Proc: 0x8001})
	b.Publish(Event{Time: us(2), Node: "n0", Kind: ProcDispatch, Proc: 0x9001, Pri: 1})
	b.Publish(Event{Time: us(3), Node: "n0", Kind: ChanRendezvous, Proc: 0x9001, Addr: 0x100, Bytes: 4, Arg: 0x8001})
	b.Publish(Event{Time: us(4), Node: "n1", Kind: WirePacket, Link: 2, Dur: us(1)})
	b.Publish(Event{Time: us(6), Node: "n1", Kind: AckStall, Link: 2, Dur: us(1)})
	// n0's second slice is left open: the exporter must close it.

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	nodes := map[string]bool{}
	begins, ends := 0, 0
	sawStall := false
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				nodes[e.Args["name"].(string)] = true
			}
		case "B":
			begins++
		case "E":
			ends++
		case "X":
			if e.Name == "ack.stall" {
				sawStall = true
				// The stall slice must end at the event time: ts+dur = 6µs.
				if e.Ts+e.Dur != 6 {
					t.Errorf("stall ts=%v dur=%v, want end at 6µs", e.Ts, e.Dur)
				}
			}
		}
	}
	if !nodes["n0"] || !nodes["n1"] {
		t.Errorf("missing node metadata: %v", nodes)
	}
	if begins != ends {
		t.Errorf("unbalanced slices: %d B vs %d E", begins, ends)
	}
	if begins != 2 {
		t.Errorf("begins = %d, want 2 dispatches", begins)
	}
	if !sawStall {
		t.Error("no ack.stall slice exported")
	}
}

func TestMetricsBusyAndQueues(t *testing.T) {
	b := NewBus()
	m := NewMetrics(b)
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	b.Publish(Event{Time: us(0), Node: "n0", Kind: ProcDispatch, Pri: 1})
	b.Publish(Event{Time: us(4), Node: "n0", Kind: ProcStop})
	b.Publish(Event{Time: us(5), Node: "n0", Kind: ProcReady, Pri: 1, Depth: 2})
	b.Publish(Event{Time: us(6), Node: "n0", Kind: ProcDispatch, Pri: 1, Depth: 1})
	m.Finish(us(10))

	if got := m.NodeBusy("n0"); got != us(4)+us(4) {
		t.Errorf("busy = %v, want 8µs (4 closed + 4 to end)", got)
	}
	var rep strings.Builder
	m.Report(&rep)
	if !strings.Contains(rep.String(), "n0:") {
		t.Errorf("report missing node: %s", rep.String())
	}
}

// TestSamplerQuiesces checks the sampler stops rescheduling itself once
// the rest of the system drains, so runs still end.
func TestSamplerQuiesces(t *testing.T) {
	k := sim.NewKernel()
	s := NewSampler(sim.Microsecond)
	running := true
	tgt := s.AddTarget("m", k, func() (uint64, bool) {
		if running {
			return 0x80000040, true
		}
		return 0, false
	})
	// Simulated work for 5µs, then nothing.
	k.After(5*sim.Microsecond+sim.Time(1), func() { running = false })
	s.Start()
	k.Run()
	if tgt.Running != 5 {
		t.Errorf("running samples = %d, want 5", tgt.Running)
	}
	if tgt.Idle != 1 {
		t.Errorf("idle samples = %d, want 1 (the sample after quiescence)", tgt.Idle)
	}
	if tgt.Counts[0x80000040] != 5 {
		t.Errorf("counts = %v", tgt.Counts)
	}
}

func TestResolveAndProfileRoundTrip(t *testing.T) {
	tgt := &Target{
		Name: "m",
		Counts: map[uint64]uint64{
			0x1000: 3, // line 10 (mark at 0)
			0x1004: 2, // line 12 (mark at 4)
			0x2000: 1, // outside the code image
		},
		Running: 6,
		Idle:    4,
	}
	tp := Resolve(tgt, ResolveOptions{
		CodeStart: 0x1000,
		CodeLen:   0x100,
		Marks:     []Mark{{Offset: 0, Line: 10}, {Offset: 4, Line: 12}},
		SourceLines: []string{
			"line one", "", "", "", "", "", "", "", "",
			"  x := x + 1", "", "  c ! x",
		},
		SourcePath: "prog.occ",
	})
	if tp.Attributed != 5 {
		t.Errorf("attributed = %d, want 5", tp.Attributed)
	}
	if len(tp.Buckets) != 3 {
		t.Fatalf("buckets = %+v", tp.Buckets)
	}
	if tp.Buckets[0].Where != "prog.occ:10" || tp.Buckets[0].Samples != 3 {
		t.Errorf("top bucket = %+v", tp.Buckets[0])
	}
	if tp.Buckets[0].Source != "  x := x + 1" {
		t.Errorf("source = %q", tp.Buckets[0].Source)
	}

	p := &Profile{PeriodNs: 1000, Targets: []TargetProfile{tp}}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.PeriodNs != 1000 || len(back.Targets) != 1 || back.Targets[0].Attributed != 5 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestLineFor(t *testing.T) {
	marks := []Mark{{Offset: 0, Line: 3}, {Offset: 10, Line: 7}, {Offset: 20, Line: 9}}
	cases := []struct{ off, want int }{
		{0, 3}, {9, 3}, {10, 7}, {19, 7}, {20, 9}, {1000, 9},
	}
	for _, c := range cases {
		if got := lineFor(marks, c.off); got != c.want {
			t.Errorf("lineFor(%d) = %d, want %d", c.off, got, c.want)
		}
	}
	if got := lineFor(nil, 5); got != 0 {
		t.Errorf("lineFor with no marks = %d, want 0", got)
	}
}
