package probe

import (
	"math"
	"testing"
)

// TestMetricsRunQueueDepth pins the time-weighted run-queue integration
// under a preemption scenario: depth changes carried on ProcReady and
// ProcDispatch events integrate to ∫depth dt / end, the max depth is
// tracked per priority, and switch charges (Dur on ProcDispatch and
// Preempt) accumulate separately from busy time.
func TestMetricsRunQueueDepth(t *testing.T) {
	b := NewBus()
	m := NewMetrics(b)

	// A low-priority process runs, two more become ready (depth 1 then
	// 2), then a high-priority process preempts it, runs, and stops.
	ev := func(e Event) { e.Node = "n0"; b.Publish(e) }
	ev(Event{Kind: ProcDispatch, Time: 0, Proc: 0x101, Pri: 1, Depth: 0, Dur: 0})
	ev(Event{Kind: ProcReady, Time: 1000, Pri: 1, Depth: 1})
	ev(Event{Kind: ProcReady, Time: 3000, Pri: 1, Depth: 2})
	ev(Event{Kind: Preempt, Time: 4000, Proc: 0x101, Dur: 950})
	ev(Event{Kind: ProcDispatch, Time: 4000, Proc: 0x200, Pri: 0, Depth: 0, Dur: 50})
	ev(Event{Kind: ProcReady, Time: 5000, Pri: 0, Depth: 1})
	ev(Event{Kind: ProcReady, Time: 7000, Pri: 0, Depth: 0})
	ev(Event{Kind: Timeslice, Time: 8000})
	ev(Event{Kind: ProcStop, Time: 9000, Proc: 0x200})
	m.Finish(10000)

	// Low priority: depth 0 over [0,1000), 1 over [1000,3000), 2 over
	// [3000,10000] → ∫ = 2000 + 14000 = 16000 depth·ns over 10000 ns.
	avg, max := m.QueueStats("n0", 1)
	if math.Abs(avg-1.6) > 1e-9 {
		t.Errorf("lo avg depth = %v, want 1.6", avg)
	}
	if max != 2 {
		t.Errorf("lo max depth = %d, want 2", max)
	}

	// High priority: depth 0 over [0,5000), 1 over [5000,7000), 0 after
	// → ∫ = 2000 depth·ns → avg 0.2, max 1.
	avg, max = m.QueueStats("n0", 0)
	if math.Abs(avg-0.2) > 1e-9 {
		t.Errorf("hi avg depth = %v, want 0.2", avg)
	}
	if max != 1 {
		t.Errorf("hi max depth = %d, want 1", max)
	}

	// Switch charge: 950 ns state save on the preemption plus 50 ns on
	// the following dispatch.
	if got := m.Switching("n0"); got != 1000 {
		t.Errorf("switching = %d, want 1000", got)
	}

	// Busy time: running [0,9000] (the preempting dispatch at t=4000
	// keeps the processor busy — no stop in between).
	if got := m.NodeBusy("n0"); got != 9000 {
		t.Errorf("busy = %d, want 9000", got)
	}

	// Unknown node / out-of-range priority degrade to zeros.
	if avg, max := m.QueueStats("nope", 1); avg != 0 || max != 0 {
		t.Errorf("unknown node = %v, %d", avg, max)
	}
	if avg, max := m.QueueStats("n0", 2); avg != 0 || max != 0 {
		t.Errorf("bad priority = %v, %d", avg, max)
	}
}
