package probe

import (
	"fmt"
	"io"
	"sort"

	"transputer/internal/sim"
)

// Metrics aggregates the bus stream into per-node and per-link numbers:
// processor busy/idle/switching time, time-weighted run-queue depth per
// priority, link throughput, wire occupancy and ack-stall time.
type Metrics struct {
	nodes map[string]*nodeMetrics
	order []string
	end   sim.Time
}

type nodeMetrics struct {
	busy        sim.Time
	switching   sim.Time
	runningFrom sim.Time
	running     bool
	lastSeen    sim.Time

	queues [2]queueMetrics
	links  map[int]*linkMetrics

	dispatches, preempts, timeslices uint64
	rendezvous                       uint64
	rendezvousBytes                  uint64
	halted                           bool
	deadlocked                       uint64
}

// queueMetrics integrates run-queue depth over time.
type queueMetrics struct {
	depth     int
	max       int
	weighted  float64 // ∫ depth dt, in depth·ns
	lastStamp sim.Time
}

func (q *queueMetrics) set(depth int, at sim.Time) {
	q.weighted += float64(q.depth) * float64(at-q.lastStamp)
	q.lastStamp = at
	q.depth = depth
	if depth > q.max {
		q.max = depth
	}
}

type linkMetrics struct {
	dataBytes uint64
	acks      uint64
	wireBusy  sim.Time
	ackStall  sim.Time
	bytesOut  uint64
	bytesIn   uint64
	xfers     uint64

	// Fault-injection and error-detecting-mode counters.
	drops       uint64
	corrupts    uint64
	delays      uint64
	delayed     sim.Time
	naks        uint64
	retransmits uint64
	down        bool
	severed     bool
}

// NewMetrics subscribes a fresh aggregator to the bus.
func NewMetrics(b *Bus) *Metrics {
	m := &Metrics{nodes: map[string]*nodeMetrics{}}
	b.Subscribe(m.consume)
	return m
}

func (m *Metrics) node(name string) *nodeMetrics {
	n, ok := m.nodes[name]
	if !ok {
		n = &nodeMetrics{links: map[int]*linkMetrics{}}
		m.nodes[name] = n
		m.order = append(m.order, name)
	}
	return n
}

func (n *nodeMetrics) link(i int) *linkMetrics {
	l, ok := n.links[i]
	if !ok {
		l = &linkMetrics{}
		n.links[i] = l
	}
	return l
}

func (m *Metrics) consume(e Event) {
	n := m.node(e.Node)
	n.lastSeen = e.Time
	if e.Time > m.end {
		m.end = e.Time
	}
	switch e.Kind {
	case ProcDispatch:
		if !n.running {
			n.running = true
			n.runningFrom = e.Time
		}
		n.dispatches++
		n.switching += e.Dur
		n.queues[e.Pri].set(e.Depth, e.Time)
	case ProcStop:
		if n.running {
			n.busy += e.Time - n.runningFrom
			n.running = false
		}
	case ProcReady:
		n.queues[e.Pri].set(e.Depth, e.Time)
	case Preempt:
		n.preempts++
		n.switching += e.Dur
	case Timeslice:
		n.timeslices++
	case ChanRendezvous:
		n.rendezvous++
		n.rendezvousBytes += uint64(e.Bytes)
	case LinkXferStart:
		l := n.link(e.Link)
		l.xfers++
		if e.Out {
			l.bytesOut += uint64(e.Bytes)
		} else {
			l.bytesIn += uint64(e.Bytes)
		}
	case WirePacket:
		l := n.link(e.Link)
		l.wireBusy += e.Dur
		if e.Ack {
			l.acks++
		} else {
			l.dataBytes++
		}
	case AckStall:
		n.link(e.Link).ackStall += e.Dur
	case FaultDrop:
		n.link(e.Link).drops++
	case FaultCorrupt:
		n.link(e.Link).corrupts++
	case FaultDelay:
		l := n.link(e.Link)
		l.delays++
		l.delayed += e.Dur
	case LinkNak:
		n.link(e.Link).naks++
	case LinkRetransmit:
		n.link(e.Link).retransmits++
	case LinkDown:
		n.link(e.Link).down = true
	case LinkSever:
		n.link(e.Link).severed = true
	case NodeHalt:
		n.halted = true
	case Deadlock:
		n.deadlocked++
	}
}

// Finish closes all open accounting intervals at the given end time
// (normally the simulation's final time).
func (m *Metrics) Finish(end sim.Time) {
	if end > m.end {
		m.end = end
	}
	for _, n := range m.nodes {
		if n.running {
			n.busy += m.end - n.runningFrom
			n.running = false
		}
		for p := range n.queues {
			n.queues[p].set(n.queues[p].depth, m.end)
		}
	}
}

func pct(part, whole sim.Time) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Report writes the text report.
func (m *Metrics) Report(w io.Writer) {
	fmt.Fprintf(w, "probe metrics over %v\n", m.end)
	names := append([]string(nil), m.order...)
	sort.Strings(names)
	for _, name := range names {
		n := m.nodes[name]
		total := m.end
		idle := total - n.busy
		if idle < 0 {
			idle = 0
		}
		fmt.Fprintf(w, "%s: busy %.1f%%  idle %.1f%%  switching %.2f%%\n",
			name, pct(n.busy, total), pct(idle, total), pct(n.switching, total))
		fmt.Fprintf(w, "  sched: %d dispatches, %d preemptions, %d timeslices; runq hi avg %.2f max %d, lo avg %.2f max %d\n",
			n.dispatches, n.preempts, n.timeslices,
			avgDepth(n.queues[0], total), n.queues[0].max,
			avgDepth(n.queues[1], total), n.queues[1].max)
		if n.rendezvous > 0 {
			fmt.Fprintf(w, "  channels: %d internal rendezvous, %d bytes\n",
				n.rendezvous, n.rendezvousBytes)
		}
		links := make([]int, 0, len(n.links))
		for i := range n.links {
			links = append(links, i)
		}
		sort.Ints(links)
		for _, i := range links {
			l := n.links[i]
			fmt.Fprintf(w, "  link %d: %d B out / %d B in (%d transfers), wire busy %.1f%% (%d data, %d acks), ack-stall %v\n",
				i, l.bytesOut, l.bytesIn, l.xfers,
				pct(l.wireBusy, total), l.dataBytes, l.acks, l.ackStall)
			if l.drops > 0 || l.corrupts > 0 || l.delays > 0 || l.severed {
				sever := ""
				if l.severed {
					sever = ", severed"
				}
				fmt.Fprintf(w, "  link %d faults: %d dropped, %d corrupted, %d delayed (%v)%s\n",
					i, l.drops, l.corrupts, l.delays, l.delayed, sever)
			}
			if l.retransmits > 0 || l.naks > 0 || l.down {
				state := "recovered"
				if l.down {
					state = "DOWN (retry budget exhausted)"
				}
				fmt.Fprintf(w, "  link %d reliable: %d retransmits, %d naks, %s\n",
					i, l.retransmits, l.naks, state)
			}
		}
		if n.halted {
			fmt.Fprintf(w, "  halted by fault injection\n")
		}
		if n.deadlocked > 0 {
			fmt.Fprintf(w, "  watchdog: %d process(es) blocked at end of run\n", n.deadlocked)
		}
	}
}

// Retransmits returns the error-detecting-mode retransmission count of
// one link (for tests and campaign assertions).
func (m *Metrics) Retransmits(node string, link int) uint64 {
	if n, ok := m.nodes[node]; ok {
		if l, ok := n.links[link]; ok {
			return l.retransmits
		}
	}
	return 0
}

// FaultCounts returns the injected drop/corrupt/delay totals of one
// link.
func (m *Metrics) FaultCounts(node string, link int) (drops, corrupts, delays uint64) {
	if n, ok := m.nodes[node]; ok {
		if l, ok := n.links[link]; ok {
			return l.drops, l.corrupts, l.delays
		}
	}
	return 0, 0, 0
}

func avgDepth(q queueMetrics, total sim.Time) float64 {
	if total <= 0 {
		return 0
	}
	return q.weighted / float64(total)
}

// NodeBusy returns the accumulated busy time of a node (after Finish).
func (m *Metrics) NodeBusy(name string) sim.Time {
	if n, ok := m.nodes[name]; ok {
		return n.busy
	}
	return 0
}

// QueueStats returns a node's run-queue integration for one priority
// (after Finish): the time-weighted average depth over the run and the
// maximum depth observed.
func (m *Metrics) QueueStats(name string, pri int) (avg float64, max int) {
	n, ok := m.nodes[name]
	if !ok || pri < 0 || pri > 1 {
		return 0, 0
	}
	return avgDepth(n.queues[pri], m.end), n.queues[pri].max
}

// Switching returns a node's accumulated scheduler switch charge: the
// preemption state-save and dispatch restore time carried on Preempt
// and ProcDispatch events.
func (m *Metrics) Switching(name string) sim.Time {
	if n, ok := m.nodes[name]; ok {
		return n.switching
	}
	return 0
}
