package probe

import (
	"bytes"
	"testing"

	"transputer/internal/sim"
)

func TestPackFlow(t *testing.T) {
	fl := PackFlow(5, 1234)
	if FlowOrigin(fl) != 5 || FlowSeq(fl) != 1234 {
		t.Errorf("PackFlow round trip: origin %d seq %d", FlowOrigin(fl), FlowSeq(fl))
	}
	if PackFlow(1, 1) == PackFlow(2, 1) || PackFlow(1, 1) == PackFlow(1, 2) {
		t.Errorf("flow identities collide")
	}
}

// TestFlowTableLinkFlow reconstructs one traced link transfer with a
// retry tail: the data-packet wire time must split into first
// transmission and retransmission, acks and stalls must accumulate,
// and the critical path must tile [0, end] exactly.
func TestFlowTableLinkFlow(t *testing.T) {
	b := NewBus()
	ft := NewFlowTable(b)
	fl := PackFlow(1, 1)
	ev := func(e Event) { b.Publish(e) }

	ev(Event{Kind: LinkXferStart, Node: "n0", Time: 1000, Link: 1, Bytes: 2,
		Out: true, Flow: fl, IP: 0x40})
	ev(Event{Kind: WirePacket, Node: "n0", Time: 1200, Link: 1, Bytes: 1,
		Dur: 1100, Flow: fl})
	ev(Event{Kind: FlowArrive, Node: "n1", Time: 2300, Link: 0, Flow: fl})
	ev(Event{Kind: LinkRetransmit, Node: "n0", Time: 3000, Link: 1, Arg: 1, Flow: fl})
	ev(Event{Kind: WirePacket, Node: "n0", Time: 3000, Link: 1, Bytes: 1,
		Dur: 1100, Flow: fl})
	ev(Event{Kind: WirePacket, Node: "n1", Time: 4100, Link: 0, Ack: true,
		Dur: 200, Flow: fl})
	ev(Event{Kind: AckStall, Node: "n0", Time: 4350, Link: 1, Dur: 50, Flow: fl})
	ev(Event{Kind: LinkXferEnd, Node: "n0", Time: 5000, Link: 1, Out: true, Flow: fl})
	ev(Event{Kind: LinkXferEnd, Node: "n1", Time: 5100, Link: 0, Out: false, Flow: fl})

	ft.Finish(6000)
	doc := ft.Doc()
	if len(doc.Flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(doc.Flows))
	}
	f := doc.Flows[0]
	if f.Kind != "link" || f.Src != "n0" || f.Dst != "n1" || f.Link != 1 {
		t.Errorf("flow identity = %s %s>%s L%d", f.Kind, f.Src, f.Dst, f.Link)
	}
	if f.Name != "n0.L1>n1#1" {
		t.Errorf("name = %q", f.Name)
	}
	if f.StartNs != 1000 || f.EndNs != 5100 {
		t.Errorf("span = [%d, %d]", f.StartNs, f.EndNs)
	}
	if f.QueueNs != 200 {
		t.Errorf("queue = %d, want 200", f.QueueNs)
	}
	if f.WireNs != 1100 || f.RetransNs != 1100 {
		t.Errorf("wire = %d retrans = %d, want 1100 each", f.WireNs, f.RetransNs)
	}
	if f.AckNs != 200 || f.AckStallNs != 50 {
		t.Errorf("ack = %d stall = %d", f.AckNs, f.AckStallNs)
	}
	if f.Retransmits != 1 {
		t.Errorf("retransmits = %d", f.Retransmits)
	}

	if len(doc.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(doc.Histograms))
	}
	h := doc.Histograms[0]
	if h.Key != "n0.L1>n1" || h.Count != 1 || h.MaxNs != 4100 || h.P50Ns != 4100 {
		t.Errorf("histogram = %+v", h)
	}

	assertTiled(t, doc)
	// Last event landed on n1, so the walk is: n0 computes, the flow
	// crosses to n1, n1 computes to the end.
	want := []struct {
		node string
		what string
		dur  int64
	}{
		{"n0", "compute", 1000},
		{"n0", "n0.L1>n1#1", 4100},
		{"n1", "compute", 900},
	}
	if len(doc.CriticalPath) != len(want) {
		t.Fatalf("critical path = %+v", doc.CriticalPath)
	}
	for i, w := range want {
		s := doc.CriticalPath[i]
		if s.Node != w.node || s.What != w.what || s.DurNs != w.dur {
			t.Errorf("span %d = %+v, want %+v", i, s, w)
		}
	}
}

// TestFlowTableChanFlow covers an internal channel flow: the
// rendezvous wait span and the chan-keyed histogram.
func TestFlowTableChanFlow(t *testing.T) {
	b := NewBus()
	ft := NewFlowTable(b)
	ft.Resolve = func(node string, iptr uint64) string {
		if node == "n0" && iptr == 0x44 {
			return "pipe.occ:12"
		}
		return ""
	}
	fl := PackFlow(1, 1)
	b.Publish(Event{Kind: ChanBlock, Node: "n0", Time: 100, Addr: 0x80,
		Out: true, Flow: fl, IP: 0x44})
	b.Publish(Event{Kind: ChanRendezvous, Node: "n0", Time: 400, Addr: 0x80,
		Bytes: 4, Flow: fl, IP: 0x52})
	ft.Finish(500)
	doc := ft.Doc()
	if len(doc.Flows) != 1 {
		t.Fatalf("flows = %d", len(doc.Flows))
	}
	f := doc.Flows[0]
	if f.Kind != "chan" || f.WaitNs != 300 || f.Bytes != 4 {
		t.Errorf("chan flow = %+v", f)
	}
	if f.Name != "n0 ch@0x80#1" {
		t.Errorf("name = %q", f.Name)
	}
	if f.Loc != "pipe.occ:12" {
		t.Errorf("loc = %q, want source of the offering site", f.Loc)
	}
	assertTiled(t, doc)
}

// TestFlowTableCriticalPathSums builds a three-node relay and checks
// the critical path invariant on a multi-hop chain: spans are
// contiguous from 0 to the end time and sum exactly to it.
func TestFlowTableCriticalPathSums(t *testing.T) {
	b := NewBus()
	ft := NewFlowTable(b)
	hop := func(id uint64, src, dst string, start, end sim.Time) {
		fl := PackFlow(1, id)
		b.Publish(Event{Kind: LinkXferStart, Node: src, Time: start, Link: 0,
			Bytes: 1, Out: true, Flow: fl})
		b.Publish(Event{Kind: LinkXferEnd, Node: dst, Time: end, Link: 0, Flow: fl})
	}
	hop(1, "a", "b", 100, 900)
	hop(2, "b", "c", 1000, 1700)
	hop(3, "a", "c", 200, 1500) // a slower parallel path that loses
	ft.Finish(2000)
	doc := ft.Doc()
	assertTiled(t, doc)
	// The chain must be a→b→c, not the parallel a→c hop: flow 2 is the
	// latest arrival at c, and flow 1 the latest at b before flow 2
	// starts.
	var names []string
	for _, s := range doc.CriticalPath {
		names = append(names, s.What)
	}
	want := []string{"compute", "a.L0>b#1", "compute", "b.L0>c#1", "compute"}
	if len(names) != len(want) {
		t.Fatalf("critical path = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", names, want)
		}
	}
}

// TestFlowDocRoundTrip pins the JSON round trip tflow depends on.
func TestFlowDocRoundTrip(t *testing.T) {
	b := NewBus()
	ft := NewFlowTable(b)
	fl := PackFlow(2, 9)
	b.Publish(Event{Kind: ChanBlock, Node: "n", Time: 10, Addr: 0x90, Flow: fl})
	b.Publish(Event{Kind: ChanRendezvous, Node: "n", Time: 30, Addr: 0x90,
		Bytes: 2, Flow: fl})
	ft.Finish(40)
	var buf bytes.Buffer
	if err := ft.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadFlowDoc(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if doc.EndNs != 40 || len(doc.Flows) != 1 || doc.Flows[0].ID != fl {
		t.Errorf("round trip = %+v", doc)
	}
	if doc.CriticalPathNs != doc.EndNs {
		t.Errorf("critical path sums to %d, want %d", doc.CriticalPathNs, doc.EndNs)
	}
	var rep bytes.Buffer
	doc.Report(&rep, 0)
	if !bytes.Contains(rep.Bytes(), []byte("critical path")) {
		t.Errorf("report missing critical path:\n%s", rep.String())
	}
}

// TestFlowRank pins the nearest-rank percentile used by histograms.
func TestFlowRank(t *testing.T) {
	lat := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := rank(lat, 50); got != 50 {
		t.Errorf("p50 = %d, want 50", got)
	}
	if got := rank(lat, 95); got != 100 {
		t.Errorf("p95 = %d, want 100", got)
	}
	if got := rank([]int64{7}, 99); got != 7 {
		t.Errorf("p99 of singleton = %d", got)
	}
	if got := rank(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %d", got)
	}
}

// assertTiled checks the critical-path invariant: spans are
// chronologically contiguous from time zero and their durations sum
// exactly to the run's end-to-end completion time.
func assertTiled(t *testing.T, doc *FlowDoc) {
	t.Helper()
	var at, sum int64
	for i, s := range doc.CriticalPath {
		if s.StartNs != at {
			t.Errorf("span %d starts at %d, want %d (gap or overlap)", i, s.StartNs, at)
		}
		if s.DurNs < 0 {
			t.Errorf("span %d has negative duration %d", i, s.DurNs)
		}
		at = s.StartNs + s.DurNs
		sum += s.DurNs
	}
	if sum != doc.EndNs {
		t.Errorf("critical path sums to %d, want end-to-end %d", sum, doc.EndNs)
	}
	if doc.CriticalPathNs != sum {
		t.Errorf("CriticalPathNs = %d, want %d", doc.CriticalPathNs, sum)
	}
}
