// Package probe is the system-wide observability bus: a structured
// event stream that every layer of the simulator — scheduler, channels,
// timers, link wires, host devices — publishes into, and that timeline
// exporters, metrics aggregators and the sampling profiler consume.
//
// The bus is zero-overhead when detached: publishers hold a *Bus that
// is nil until an observer attaches one, and every emit site is guarded
// by a single nil check.  Events are stamped with both simulated time
// and the publishing node's machine cycle counter, so instruction
// traces, scheduler activity and wire occupancy can all be laid on one
// timeline.
package probe

import "transputer/internal/sim"

// Kind classifies a probe event.
type Kind uint8

const (
	// ProcDispatch: a process began executing on the node's CPU.  Dur
	// carries any scheduler switch charge paid for this dispatch (e.g.
	// restoring interrupted low-priority state); Depth is the run-queue
	// depth of the process's priority after dispatch.
	ProcDispatch Kind = iota
	// ProcStop: the executing process left the CPU (blocked, stopped,
	// timesliced or preempted).
	ProcStop
	// ProcReady: a process joined a run queue.  Depth is the queue
	// depth after the enqueue.
	ProcReady
	// Preempt: a low-priority process was preempted by a high-priority
	// one; Dur is the state-save charge in simulated time.
	Preempt
	// Timeslice: the current low-priority process exhausted its slice
	// and moved to the back of its queue.
	Timeslice
	// ChanBlock: a process arrived first at an internal channel
	// rendezvous and descheduled.  Addr is the channel word; Out
	// reports the direction.
	ChanBlock
	// ChanRendezvous: both parties met on an internal channel and the
	// message was copied.  Addr is the channel word, Bytes the message
	// length, Arg the partner's process descriptor.
	ChanRendezvous
	// TimerWait: a process blocked on a timer input; Arg is the wakeup
	// clock value.
	TimerWait
	// TimerFire: a timer released a waiting process.
	TimerFire
	// EventPin: the external event pin was raised (the paper's
	// interrupt mechanism).
	EventPin
	// LinkXferStart: a process handed a message to the link engine and
	// descheduled.  Link is the link index, Bytes the length, Out the
	// direction.
	LinkXferStart
	// LinkXferEnd: the link engine completed a transfer and the process
	// was rescheduled.
	LinkXferEnd
	// WirePacket: a packet occupied a link signal line.  Link is the
	// link index at the publishing node, Ack distinguishes acknowledge
	// packets from data bytes, Dur is the wire occupancy.
	WirePacket
	// AckStall: a sender finished transmitting a byte and then waited
	// Dur for its acknowledge — dead time figure 1's overlapped acks
	// exist to eliminate.
	AckStall
	// HostCommand: a host device decoded a protocol command; Arg is the
	// command word.
	HostCommand
	// FaultDrop: an injected fault swallowed a packet on a wire.  Link is
	// the link index at the publishing node, Ack distinguishes the packet
	// class.
	FaultDrop
	// FaultCorrupt: an injected fault flipped bits of a data packet's
	// payload; Arg is the XOR mask applied.
	FaultCorrupt
	// FaultDelay: an injected fault held a packet on the wire for an
	// extra Dur before its bits went out.
	FaultDelay
	// LinkNak: a receiver in error-detecting link mode rejected a data
	// packet with a bad check trailer and asked for a retransmission.
	LinkNak
	// LinkRetransmit: a sender in error-detecting link mode resent the
	// current byte (after a NAK or an acknowledge timeout); Arg is the
	// retry number.
	LinkRetransmit
	// LinkDown: a sender in error-detecting link mode exhausted its retry
	// budget and declared the link dead; Arg is the retry limit.
	LinkDown
	// LinkSever: an injected fault cut a link's wires at this instant.
	LinkSever
	// NodeHalt: an injected fault stopped the node's processor.
	NodeHalt
	// Deadlock: the watchdog found this process blocked with simulated
	// time unable to advance.  Proc, Addr and Link describe what it was
	// waiting for; Arg encodes the core.BlockKind.
	Deadlock
	// FlowArrive: the first packet of a message flow reached this node's
	// link receiver — the instant a flow crosses the wire and joins the
	// receiving node's timeline.  Link is the receiving link index, Flow
	// the flow identity carried by the packet.
	FlowArrive
	// Heartbeat: the liveness monitor changed its verdict on a link's
	// peer.  Arg is 1 when the peer came (back) up, 0 when it was
	// declared unresponsive; Dur is the observed silence.
	Heartbeat
	// RouteChange: the routing layer recomputed this node's next-hop
	// table after a link verdict or a link-state advertisement; Arg is
	// the number of destinations currently reachable.
	RouteChange
	// NodeRestart: a restart rule revived this halted node.
	NodeRestart
	// RouteReplay: an origin re-injected an end-to-end message whose
	// acknowledgement had not arrived; Arg is the replay attempt number.
	RouteReplay
	// RouteDeliver: an end-to-end routed message reached its destination
	// and was handed to the application in order; Arg is the message
	// sequence number, Bytes the payload length.
	RouteDeliver
	// VChanChunk: the virtual-channel multiplexer put one data chunk on
	// a link's wire.  Link is the link index, Arg the virtual channel,
	// Bytes the chunk payload length, Flow the message's flow identity.
	VChanChunk
	// VChanCredit: the multiplexer granted flow-control credit back to
	// the peer's sender.  Link is the link index, Arg the virtual
	// channel, Bytes the credit granted.
	VChanCredit
	// VChanDeliver: a complete message was handed to a virtual
	// channel's consumer.  Link is the link index, Arg the virtual
	// channel, Bytes the message length, Flow the flow identity carried
	// by its chunks.
	VChanDeliver

	numKinds
)

var kindNames = [numKinds]string{
	ProcDispatch:   "proc.dispatch",
	ProcStop:       "proc.stop",
	ProcReady:      "proc.ready",
	Preempt:        "preempt",
	Timeslice:      "timeslice",
	ChanBlock:      "chan.block",
	ChanRendezvous: "chan.rendezvous",
	TimerWait:      "timer.wait",
	TimerFire:      "timer.fire",
	EventPin:       "event.pin",
	LinkXferStart:  "link.xfer.start",
	LinkXferEnd:    "link.xfer.end",
	WirePacket:     "wire.packet",
	AckStall:       "ack.stall",
	HostCommand:    "host.command",
	FaultDrop:      "fault.drop",
	FaultCorrupt:   "fault.corrupt",
	FaultDelay:     "fault.delay",
	LinkNak:        "link.nak",
	LinkRetransmit: "link.retransmit",
	LinkDown:       "link.down",
	LinkSever:      "link.sever",
	NodeHalt:       "node.halt",
	Deadlock:       "deadlock",
	FlowArrive:     "flow.arrive",
	Heartbeat:      "heartbeat",
	RouteChange:    "route.change",
	NodeRestart:    "node.restart",
	RouteReplay:    "route.replay",
	RouteDeliver:   "route.deliver",
	VChanChunk:     "vchan.chunk",
	VChanCredit:    "vchan.credit",
	VChanDeliver:   "vchan.deliver",
}

// String returns the event kind's dotted name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one observation.  Only the fields meaningful for the Kind
// are set; the rest are zero.
type Event struct {
	// Time is the simulated instant of the event.
	Time sim.Time
	// Cycles is the publishing node's machine cycle counter.
	Cycles uint64
	// Node names the publishing transputer.
	Node string
	Kind Kind

	// Proc is a process descriptor (workspace pointer | priority).
	Proc uint64
	// Pri is the priority concerned (0 high, 1 low).
	Pri int
	// Addr is a channel word address.
	Addr uint64
	// Link is a link index.
	Link int
	// Bytes is a message or packet payload length.
	Bytes int
	// Dur is a duration: wire occupancy, switch charge, stall time.
	Dur sim.Time
	// Depth is a run-queue depth after the transition.
	Depth int
	// Ack marks acknowledge packets.
	Ack bool
	// Out marks the output direction of a transfer.
	Out bool
	// Arg carries kind-specific extra data.
	Arg int64
	// Flow is the causal message-flow identity this event belongs to
	// (see FlowTable); zero when the event is not part of a flow, or
	// when no probe bus was attached at the instant the flow would have
	// been assigned.
	Flow uint64
	// IP is the publishing process's instruction pointer at the emit
	// site, set on communication events (ChanBlock, ChanRendezvous,
	// LinkXferStart/End) so flows can be annotated with occam source
	// lines.  Zero elsewhere.
	IP uint64
}

// Flow identities pack an origin (the allocating node's creation
// ordinal, assigned by the network layer) and a per-origin sequence
// number into one word, so they are globally unique, deterministic,
// and cheap to carry in packets.
const flowSeqBits = 40

// PackFlow builds a flow identity from an origin and a sequence number.
func PackFlow(origin, seq uint64) uint64 {
	return origin<<flowSeqBits | seq&(1<<flowSeqBits-1)
}

// FlowOrigin extracts the origin half of a flow identity.
func FlowOrigin(flow uint64) uint64 { return flow >> flowSeqBits }

// FlowSeq extracts the sequence half of a flow identity.
func FlowSeq(flow uint64) uint64 { return flow & (1<<flowSeqBits - 1) }

// Bus fans events out to its subscribers.  It is used from the single
// simulation goroutine only.
type Bus struct {
	subs []func(Event)
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a consumer.  Subscribers are invoked in
// subscription order, synchronously with the publisher.
func (b *Bus) Subscribe(fn func(Event)) { b.subs = append(b.subs, fn) }

// Publish delivers an event to every subscriber.
func (b *Bus) Publish(e Event) {
	for _, fn := range b.subs {
		fn(e)
	}
}
