package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"transputer/internal/sim"
)

// SampleClock is what a sampling tick needs from a target's scheduling
// domain: a way to plant the next tick and a local quiescence test.
// Both a standalone *sim.Kernel and a coordinator *sim.Shard satisfy
// it.  Pending deliberately reflects only the target's own shard —
// consulting global state from inside a window would make sampling
// depend on how far other shards had progressed.
type SampleClock interface {
	After(d sim.Time, fn func()) sim.EventID
	Pending() int
}

// Sampler is a sampling profiler: every Period of simulated time it
// reads each target's instruction pointer and accumulates a histogram.
// Each target's ticks ride that target's own event shard, so sampling
// is exact in simulated time, adds nothing to the simulated cycle
// counts, and stays deterministic at any worker count.
type Sampler struct {
	Period  sim.Time
	targets []*Target
	started bool
}

// Target is one profiled machine: Sample returns the current
// instruction pointer, or ok=false when no process is executing.
type Target struct {
	Name   string
	Sample func() (addr uint64, ok bool)
	clk    SampleClock

	// Counts maps sampled instruction addresses to hit counts.
	Counts map[uint64]uint64
	// Running and Idle count samples with and without an executing
	// process.
	Running, Idle uint64
}

// NewSampler builds a profiler with the given period.
func NewSampler(period sim.Time) *Sampler {
	if period <= 0 {
		period = 10 * sim.Microsecond
	}
	return &Sampler{Period: period}
}

// AddTarget registers a machine to sample on its clock (its shard).
func (s *Sampler) AddTarget(name string, clk SampleClock, sample func() (uint64, bool)) *Target {
	t := &Target{Name: name, Sample: sample, clk: clk, Counts: map[uint64]uint64{}}
	s.targets = append(s.targets, t)
	return t
}

// Targets returns the registered targets.
func (s *Sampler) Targets() []*Target { return s.targets }

// Start schedules each target's first sample one period from now.  A
// target stops rescheduling itself once it is the only activity left
// on its shard, so runs still quiesce.
func (s *Sampler) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, t := range s.targets {
		t.clk.After(s.Period, func() { s.tick(t) })
	}
}

func (s *Sampler) tick(t *Target) {
	if addr, ok := t.Sample(); ok {
		t.Counts[addr]++
		t.Running++
	} else {
		t.Idle++
	}
	if t.clk.Pending() == 0 {
		return // everything else on this shard has quiesced; let the run end
	}
	t.clk.After(s.Period, func() { s.tick(t) })
}

// Mark maps a code byte offset to a source line; marks are sorted by
// offset and each covers [Offset, next.Offset).
type Mark struct {
	Offset int
	Line   int
}

// ResolveOptions says how to attribute a target's sampled addresses.
type ResolveOptions struct {
	// CodeStart is the load address of the code image; CodeLen its
	// length in bytes.
	CodeStart uint64
	CodeLen   int
	// Marks is the compiler's debug info (may be empty).
	Marks []Mark
	// SourceLines holds the program source, for annotating the report.
	SourceLines []string
	// SourcePath names the source file in the report.
	SourcePath string
	// AddrLabel labels an address when no mark covers it (e.g. with a
	// disassembled instruction); may be nil.
	AddrLabel func(offset int) string
}

// Bucket is one row of a resolved profile.
type Bucket struct {
	// Where identifies the row: "file.occ:12" for a source line,
	// otherwise a code offset label.
	Where string `json:"where"`
	// Line is the source line number, 0 when unattributed.
	Line    int    `json:"line,omitempty"`
	Samples uint64 `json:"samples"`
	// Source is the source line text, when available.
	Source string `json:"source,omitempty"`
}

// TargetProfile is the resolved histogram of one machine.
type TargetProfile struct {
	Name string `json:"name"`
	// Total counts samples taken while a process was executing; Idle
	// counts samples of an idle processor.
	Total uint64 `json:"total"`
	Idle  uint64 `json:"idle"`
	// Attributed counts samples mapped to a source line.
	Attributed uint64   `json:"attributed"`
	Buckets    []Bucket `json:"buckets"`
}

// Profile is a saved profiling run.
type Profile struct {
	PeriodNs int64           `json:"period_ns"`
	Targets  []TargetProfile `json:"targets"`
}

// Resolve attributes a target's samples to source lines (via marks) or
// labelled addresses, producing one profile entry sorted by sample
// count.
func Resolve(t *Target, opt ResolveOptions) TargetProfile {
	type key struct {
		line int
		off  int
	}
	rows := map[key]uint64{}
	var attributed uint64
	for addr, count := range t.Counts {
		off := int(addr - opt.CodeStart)
		if addr >= opt.CodeStart && off < opt.CodeLen {
			if line := lineFor(opt.Marks, off); line > 0 {
				rows[key{line: line}] += count
				attributed += count
				continue
			}
		}
		rows[key{off: off, line: -1}] += count
	}
	tp := TargetProfile{Name: t.Name, Total: t.Running, Idle: t.Idle, Attributed: attributed}
	for k, count := range rows {
		b := Bucket{Samples: count}
		if k.line > 0 {
			b.Line = k.line
			b.Where = fmt.Sprintf("%s:%d", sourceName(opt.SourcePath), k.line)
			if k.line-1 < len(opt.SourceLines) {
				b.Source = strings.TrimRight(opt.SourceLines[k.line-1], " \t")
			}
		} else {
			b.Where = fmt.Sprintf("code+%#x", k.off)
			if opt.AddrLabel != nil {
				if lbl := opt.AddrLabel(k.off); lbl != "" {
					b.Source = lbl
				}
			}
		}
		tp.Buckets = append(tp.Buckets, b)
	}
	sort.Slice(tp.Buckets, func(i, j int) bool {
		if tp.Buckets[i].Samples != tp.Buckets[j].Samples {
			return tp.Buckets[i].Samples > tp.Buckets[j].Samples
		}
		return tp.Buckets[i].Where < tp.Buckets[j].Where
	})
	return tp
}

func sourceName(path string) string {
	if path == "" {
		return "src"
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// lineFor returns the source line covering a code offset, or 0.
func lineFor(marks []Mark, off int) int {
	lo, hi := 0, len(marks)
	for lo < hi {
		mid := (lo + hi) / 2
		if marks[mid].Offset <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return marks[lo-1].Line
}

// WriteJSON serialises the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProfile parses a serialised profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return &p, nil
}

// WriteFolded emits the profile as folded stacks — one
// "target;where count" line per bucket, targets and buckets in profile
// order — the input format of standard flamegraph tooling
// (flamegraph.pl, inferno, speedscope).  Idle samples fold under a
// synthetic "(idle)" frame so the graph shows total wall time.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, t := range p.Targets {
		for _, b := range t.Buckets {
			if _, err := fmt.Fprintf(w, "%s;%s %d\n", t.Name, b.Where, b.Samples); err != nil {
				return err
			}
		}
		if t.Idle > 0 {
			if _, err := fmt.Fprintf(w, "%s;(idle) %d\n", t.Name, t.Idle); err != nil {
				return err
			}
		}
	}
	return nil
}

// Report renders the profile as text, top lines first.  top <= 0 means
// every bucket.
func (p *Profile) Report(w io.Writer, top int) {
	fmt.Fprintf(w, "sampling profile, period %v\n", sim.Time(p.PeriodNs))
	for _, t := range p.Targets {
		all := t.Total + t.Idle
		fmt.Fprintf(w, "%s: %d samples (%d running, %d idle", t.Name, all, t.Total, t.Idle)
		if t.Total > 0 {
			fmt.Fprintf(w, "; %.1f%% attributed to source lines", 100*float64(t.Attributed)/float64(t.Total))
		}
		fmt.Fprintln(w, ")")
		var cum uint64
		for i, b := range t.Buckets {
			if top > 0 && i >= top {
				fmt.Fprintf(w, "  ... %d more rows\n", len(t.Buckets)-i)
				break
			}
			cum += b.Samples
			fmt.Fprintf(w, "  %6.2f%% %6.2f%%  %8d  %-16s %s\n",
				100*float64(b.Samples)/float64(t.Total),
				100*float64(cum)/float64(t.Total),
				b.Samples, b.Where, b.Source)
		}
	}
}
