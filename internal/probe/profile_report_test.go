package probe

import (
	"bytes"
	"strings"
	"testing"
)

func sampleProfile() *Profile {
	return &Profile{
		PeriodNs: 10000,
		Targets: []TargetProfile{{
			Name: "main", Total: 10, Idle: 3, Attributed: 9,
			Buckets: []Bucket{
				{Where: "a.occ:5", Line: 5, Samples: 6, Source: "x := x + 1"},
				{Where: "a.occ:9", Line: 9, Samples: 3, Source: "out ! x"},
				{Where: "code+0x12", Samples: 1, Source: "ldl 2"},
			},
		}},
	}
}

// TestProfileReportTopZero pins -top 0 ("all rows"): every bucket is
// printed and no truncation marker appears.  Negative values behave
// the same.
func TestProfileReportTopZero(t *testing.T) {
	for _, top := range []int{0, -1} {
		var buf bytes.Buffer
		sampleProfile().Report(&buf, top)
		out := buf.String()
		for _, want := range []string{"a.occ:5", "a.occ:9", "code+0x12"} {
			if !strings.Contains(out, want) {
				t.Errorf("top=%d: missing row %q:\n%s", top, want, out)
			}
		}
		if strings.Contains(out, "more rows") {
			t.Errorf("top=%d: output truncated:\n%s", top, out)
		}
	}
}

// TestProfileReportTruncates pins the bounded report: top=2 prints the
// two hottest rows and a truncation marker.
func TestProfileReportTruncates(t *testing.T) {
	var buf bytes.Buffer
	sampleProfile().Report(&buf, 2)
	out := buf.String()
	if !strings.Contains(out, "a.occ:5") || !strings.Contains(out, "a.occ:9") {
		t.Errorf("top rows missing:\n%s", out)
	}
	if strings.Contains(out, "code+0x12") {
		t.Errorf("row beyond top printed:\n%s", out)
	}
	if !strings.Contains(out, "... 1 more rows") {
		t.Errorf("truncation marker missing:\n%s", out)
	}
}

// TestProfileWriteFolded pins the folded-stacks format consumed by
// flamegraph tooling: one "target;where count" line per bucket, idle
// samples folded under "(idle)".
func TestProfileWriteFolded(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleProfile().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "main;a.occ:5 6\n" +
		"main;a.occ:9 3\n" +
		"main;code+0x12 1\n" +
		"main;(idle) 3\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%q\nwant:\n%q", buf.String(), want)
	}
}
