package probe

import (
	"bytes"
	"encoding/json"
	"testing"

	"transputer/internal/sim"
)

// TestKindExhaustive pins every declared Kind to a String() name and a
// timeline renderer case: each kind is fed through the timeline with
// plausible fields and must produce a chrome event with the expected
// name and phase at its timestamp.  Adding a Kind without extending the
// table (and the renderer) fails here instead of silently dropping the
// kind from traces.
func TestKindExhaustive(t *testing.T) {
	type want struct {
		ev   Event
		name string
		ph   string
	}
	flowChan := PackFlow(1, 1)
	flowLink := PackFlow(1, 2)
	table := map[Kind]want{
		ProcDispatch:   {Event{Proc: 0x101}, "run", "B"},
		ProcStop:       {Event{}, "run", "E"},
		ProcReady:      {Event{Pri: 1, Depth: 2}, "runq.pri1", "C"},
		Preempt:        {Event{Dur: 100}, "preempt", "i"},
		Timeslice:      {Event{}, "timeslice", "i"},
		ChanBlock:      {Event{Proc: 0x101, Addr: 0x80, Out: true, Flow: flowChan}, "chan.block", "i"},
		ChanRendezvous: {Event{Proc: 0x101, Addr: 0x80, Bytes: 4, Flow: flowChan}, "chan.rendezvous", "i"},
		TimerWait:      {Event{Proc: 0x101, Arg: 99}, "timer.wait", "i"},
		TimerFire:      {Event{Proc: 0x101}, "timer.fire", "i"},
		EventPin:       {Event{}, "event.pin", "i"},
		LinkXferStart:  {Event{Proc: 0x101, Link: 1, Bytes: 4, Out: true, Flow: flowLink}, "link.out", "B"},
		LinkXferEnd:    {Event{Proc: 0x101, Link: 1, Out: true, Flow: flowLink}, "link.out", "E"},
		WirePacket:     {Event{Link: 1, Bytes: 1, Dur: 1100}, "data", "X"},
		AckStall:       {Event{Link: 1}, "ack.stall", "X"},
		HostCommand:    {Event{Arg: 2}, "host.cmd", "i"},
		FaultDrop:      {Event{Link: 1}, "fault.drop", "i"},
		FaultCorrupt:   {Event{Link: 1, Arg: 0xFF}, "fault.corrupt", "i"},
		FaultDelay:     {Event{Link: 1, Dur: 500}, "fault.delay", "X"},
		LinkNak:        {Event{Link: 1, Flow: flowLink}, "link.nak", "i"},
		LinkRetransmit: {Event{Link: 1, Arg: 1, Flow: flowLink}, "link.retransmit", "i"},
		LinkDown:       {Event{Link: 1, Arg: 32}, "link.down", "i"},
		LinkSever:      {Event{Link: 1}, "link.sever", "i"},
		NodeHalt:       {Event{}, "node.halt", "i"},
		Deadlock:       {Event{Proc: 0x101, Addr: 0x80}, "deadlock", "i"},
		FlowArrive:     {Event{Link: 1, Flow: flowLink}, "flow.arrive", "i"},
		Heartbeat:      {Event{Link: 1, Arg: 0, Dur: 5000}, "heartbeat", "i"},
		RouteChange:    {Event{Arg: 7}, "route.change", "i"},
		NodeRestart:    {Event{}, "node.restart", "i"},
		RouteReplay:    {Event{Arg: 2}, "route.replay", "i"},
		RouteDeliver:   {Event{Arg: 3, Bytes: 16}, "route.deliver", "i"},
		VChanChunk:     {Event{Link: 1, Arg: 5, Bytes: 16, Flow: flowLink}, "vc5.chunk", "i"},
		VChanCredit:    {Event{Link: 1, Arg: 5, Bytes: 16}, "vc5.credit", "i"},
		VChanDeliver:   {Event{Link: 1, Arg: 5, Bytes: 64, Flow: flowLink}, "vc5.deliver", "i"},
	}

	b := NewBus()
	tl := NewTimeline(b)
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no String() name", k)
		}
		w, ok := table[k]
		if !ok {
			t.Fatalf("kind %v (%d) has no renderer expectation — extend the table AND the timeline renderer", k, k)
		}
		ev := w.ev
		ev.Kind = k
		ev.Node = "n"
		// One microsecond per kind keeps timestamps unique and ordered
		// (ProcDispatch precedes ProcStop, ChanBlock precedes
		// ChanRendezvous, LinkXferStart precedes LinkXferEnd).
		ev.Time = sim.Time(k+1) * sim.Microsecond
		b.Publish(ev)
	}

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for k := Kind(0); k < numKinds; k++ {
		w := table[k]
		ts := float64(k + 1) // microseconds
		if w.ev.Dur != 0 && w.name == "ack.stall" {
			ts -= float64(w.ev.Dur) / 1e3
		}
		found := false
		for _, ce := range doc.TraceEvents {
			if ce.Name == w.name && ce.Ph == w.ph && ce.Ts == ts {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("kind %v: no %q (ph %q) chrome event rendered at t=%vµs", k, w.name, w.ph, ts)
		}
	}
}

// TestTimelineFlowArrows checks the timeline draws Perfetto message
// arcs: a traced link transfer emits a flow "s" event at the sender's
// transfer start and a matching "f" (bound to the enclosing slice) at
// the receiver's transfer end, and an internal channel flow likewise
// connects block to rendezvous.
func TestTimelineFlowArrows(t *testing.T) {
	b := NewBus()
	tl := NewTimeline(b)
	fl := PackFlow(3, 7)
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	b.Publish(Event{Kind: LinkXferStart, Node: "a", Time: us(1), Proc: 0x101,
		Link: 2, Bytes: 4, Out: true, Flow: fl})
	b.Publish(Event{Kind: LinkXferEnd, Node: "b", Time: us(5), Proc: 0x201,
		Link: 0, Out: false, Flow: fl})
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Id   uint64 `json:"id"`
			Bp   string `json:"bp"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var s, f int
	for _, ce := range doc.TraceEvents {
		if ce.Name != "flow" {
			continue
		}
		switch ce.Ph {
		case "s":
			s++
			if ce.Id != fl {
				t.Errorf("flow start id = %d, want %d", ce.Id, fl)
			}
		case "f":
			f++
			if ce.Id != fl {
				t.Errorf("flow finish id = %d, want %d", ce.Id, fl)
			}
			if ce.Bp != "e" {
				t.Errorf("flow finish bp = %q, want \"e\"", ce.Bp)
			}
		}
	}
	if s != 1 || f != 1 {
		t.Errorf("flow arrows: %d starts, %d finishes, want 1 and 1", s, f)
	}
}
