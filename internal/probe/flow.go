package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"transputer/internal/sim"
)

// FlowTable reconstructs causal message flows from the probe stream: a
// flow is one message's journey — offered to a channel or link, carried
// across a wire packet by packet (with any retransmits, NAKs and drops
// on the way), and completed at a rendezvous or the receiver's transfer
// end.  The table groups every event stamped with a flow identity,
// derives per-flow span components, per-channel/per-link latency
// histograms, and the run's critical path: the chain of flow and
// compute spans whose durations sum exactly to the end-to-end
// completion time.
//
// The table consumes the deterministically merged bus stream, so its
// output is byte-identical at any worker count.
type FlowTable struct {
	byID  map[uint64]*flowRec
	order []*flowRec

	// lastNode/lastTime track the globally latest event of the run —
	// the critical path is walked backward from there.
	lastNode string
	lastTime sim.Time

	// Resolve, when set, maps (node, instruction pointer) to an occam
	// source location used to annotate flows and the critical path.
	Resolve func(node string, iptr uint64) string

	doc *FlowDoc
}

// flowRec accumulates one flow's events.
type flowRec struct {
	id        uint64
	start     sim.Time
	end       sim.Time
	startNode string
	endNode   string
	startIP   uint64

	isChan bool
	addr   uint64 // channel word (chan flows)
	link   int    // sender's link index (link flows)
	vc     int    // virtual channel on that link; -1 when unmultiplexed
	src    string // sender node
	dst    string // receiver node; "" when the far end is a host
	bytes  int

	xferStart  sim.Time // sender's LinkXferStart
	firstData  sim.Time // first data packet on the wire
	hasData    bool
	rendezvous sim.Time // ChanRendezvous (chan flows)
	hasRendez  bool

	wireNs     int64 // first-transmission data packet time
	retransNs  int64 // retransmitted data packet time
	ackNs      int64 // acknowledge/NAK packet time
	ackStallNs int64 // sender dead time waiting for acks

	pendingRetrans int
	retransmits    int
	naks           int
	drops          int
	corrupts       int
	down           bool
}

// NewFlowTable subscribes a fresh flow table to the bus.
func NewFlowTable(b *Bus) *FlowTable {
	t := &FlowTable{byID: make(map[uint64]*flowRec)}
	b.Subscribe(t.consume)
	return t
}

func (t *FlowTable) consume(e Event) {
	if e.Node != "" && e.Time >= t.lastTime {
		t.lastTime = e.Time
		t.lastNode = e.Node
	}
	if e.Flow == 0 {
		return
	}
	r, ok := t.byID[e.Flow]
	if !ok {
		r = &flowRec{id: e.Flow, start: e.Time, startNode: e.Node, link: -1, vc: -1}
		t.byID[e.Flow] = r
		t.order = append(t.order, r)
	}
	r.end = e.Time
	r.endNode = e.Node
	switch e.Kind {
	case ChanBlock:
		r.isChan = true
		r.addr = e.Addr
		r.src = e.Node
		r.dst = e.Node
		if r.startIP == 0 {
			r.startIP = e.IP
		}
	case ChanRendezvous:
		r.isChan = true
		r.addr = e.Addr
		if r.src == "" {
			r.src = e.Node
			r.dst = e.Node
		}
		if r.startIP == 0 {
			r.startIP = e.IP
		}
		r.rendezvous = e.Time
		r.hasRendez = true
		r.bytes = e.Bytes
	case LinkXferStart:
		if e.Out {
			r.src = e.Node
			r.link = e.Link
			r.bytes = e.Bytes
			r.xferStart = e.Time
			if r.startIP == 0 {
				r.startIP = e.IP
			}
		} else {
			r.dst = e.Node
		}
	case LinkXferEnd:
		if !e.Out {
			r.dst = e.Node
		}
	case FlowArrive:
		r.dst = e.Node
	case WirePacket:
		if e.Ack {
			r.ackNs += int64(e.Dur)
			break
		}
		if !r.hasData {
			r.hasData = true
			r.firstData = e.Time
		}
		if r.pendingRetrans > 0 {
			r.pendingRetrans--
			r.retransNs += int64(e.Dur)
		} else {
			r.wireNs += int64(e.Dur)
		}
	case AckStall:
		r.ackStallNs += int64(e.Dur)
	case LinkRetransmit:
		r.retransmits++
		r.pendingRetrans++
	case LinkNak:
		r.naks++
	case FaultDrop:
		r.drops++
	case FaultCorrupt:
		r.corrupts++
	case LinkDown:
		r.down = true
	case VChanChunk:
		// Attribute the flow to the logical channel, not just the wire:
		// the chunk's sender knows both the link and the vchan.
		if r.src == "" {
			r.src = e.Node
		}
		r.link = e.Link
		r.vc = int(e.Arg)
	case VChanDeliver:
		r.dst = e.Node
		r.bytes = e.Bytes
	}
}

// FlowDoc is the JSON document the table exports.  Every duration is an
// integer nanosecond count so the document is byte-stable.
type FlowDoc struct {
	// EndNs is the run's end-to-end completion time.
	EndNs int64 `json:"end_ns"`
	// Flows lists every flow in discovery (merged stream) order.
	Flows []FlowInfo `json:"flows"`
	// Histograms aggregates completion latency per channel/link key,
	// sorted by key.
	Histograms []FlowHistogram `json:"histograms"`
	// CriticalPath is the chronological chain of spans covering
	// [0, EndNs] with no gaps: its durations sum to exactly EndNs.
	CriticalPath []PathSpan `json:"critical_path"`
	// CriticalPathNs is that sum, restated for consumers.
	CriticalPathNs int64 `json:"critical_path_ns"`
}

// FlowInfo is one flow's record.
type FlowInfo struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	Kind string `json:"kind"` // "chan" or "link"
	Src  string `json:"src"`
	Dst  string `json:"dst"` // "" when the far end is a host device
	Link int    `json:"link"`
	Addr uint64 `json:"addr"`

	Bytes   int   `json:"bytes"`
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`

	// Span components.  Queue is the wait between the sender's
	// transfer start and the first bit on the wire; Wire and Retrans
	// split data-packet wire time into first transmissions and
	// retransmissions; Ack is acknowledge/NAK wire time; AckStall is
	// sender dead time waiting for acknowledges; Wait is the
	// rendezvous wait of an internal channel flow.
	QueueNs    int64 `json:"queue_ns"`
	WireNs     int64 `json:"wire_ns"`
	RetransNs  int64 `json:"retrans_ns"`
	AckNs      int64 `json:"ack_ns"`
	AckStallNs int64 `json:"ack_stall_ns"`
	WaitNs     int64 `json:"wait_ns"`

	Retransmits int    `json:"retransmits"`
	Naks        int    `json:"naks"`
	Drops       int    `json:"drops"`
	Corrupts    int    `json:"corrupts"`
	Down        bool   `json:"down"`
	Loc         string `json:"loc,omitempty"` // occam source of the send site
}

// FlowHistogram is the completion-latency distribution of one channel
// or link (nearest-rank percentiles).
type FlowHistogram struct {
	Key   string `json:"key"`
	Count int    `json:"count"`
	Bytes int64  `json:"bytes"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// PathSpan is one hop of the critical path: either a flow crossing to
// the node where the next span continues, or the compute (and idle)
// time a node spent between flows.
type PathSpan struct {
	Node    string `json:"node"`
	What    string `json:"what"` // "compute" or the flow's name
	FlowID  uint64 `json:"flow_id,omitempty"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Loc     string `json:"loc,omitempty"`
}

// key returns the grouping identity for naming and histograms.
func (r *flowRec) key() string {
	if r.isChan {
		return fmt.Sprintf("%s ch@%#x", r.src, r.addr)
	}
	dst := r.dst
	if dst == "" {
		dst = "ext"
	}
	if r.vc >= 0 {
		return fmt.Sprintf("%s.L%d.v%d>%s", r.src, r.link, r.vc, dst)
	}
	return fmt.Sprintf("%s.L%d>%s", r.src, r.link, dst)
}

// Finish freezes the table at the run's end time and builds the
// document.
func (t *FlowTable) Finish(end sim.Time) {
	doc := &FlowDoc{EndNs: int64(end)}

	// Name flows per key in discovery order, and build their records.
	ordinals := map[string]int{}
	for _, r := range t.order {
		k := r.key()
		ordinals[k]++
		name := fmt.Sprintf("%s#%d", k, ordinals[k])
		fi := FlowInfo{
			ID:   r.id,
			Name: name,
			Kind: "link",
			Src:  r.src,
			Dst:  r.dst,
			Link: r.link,
			Addr: r.addr,

			Bytes:   r.bytes,
			StartNs: int64(r.start),
			EndNs:   int64(r.end),

			WireNs:     r.wireNs,
			RetransNs:  r.retransNs,
			AckNs:      r.ackNs,
			AckStallNs: r.ackStallNs,

			Retransmits: r.retransmits,
			Naks:        r.naks,
			Drops:       r.drops,
			Corrupts:    r.corrupts,
			Down:        r.down,
		}
		if r.isChan {
			fi.Kind = "chan"
			if r.hasRendez {
				fi.WaitNs = int64(r.rendezvous - r.start)
			}
		} else if r.hasData && r.firstData > r.xferStart {
			fi.QueueNs = int64(r.firstData - r.xferStart)
		}
		if t.Resolve != nil && r.startIP != 0 {
			fi.Loc = t.Resolve(r.startNode, r.startIP)
		}
		doc.Flows = append(doc.Flows, fi)
	}

	// Latency histograms per key, sorted by key for stable output.
	group := map[string][]*flowRec{}
	var keys []string
	for _, r := range t.order {
		k := r.key()
		if _, ok := group[k]; !ok {
			keys = append(keys, k)
		}
		group[k] = append(group[k], r)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rs := group[k]
		lat := make([]int64, 0, len(rs))
		var bytes int64
		for _, r := range rs {
			lat = append(lat, int64(r.end-r.start))
			bytes += int64(r.bytes)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		doc.Histograms = append(doc.Histograms, FlowHistogram{
			Key:   k,
			Count: len(rs),
			Bytes: bytes,
			P50Ns: rank(lat, 50),
			P95Ns: rank(lat, 95),
			P99Ns: rank(lat, 99),
			MaxNs: lat[len(lat)-1],
		})
	}

	doc.CriticalPath = t.criticalPath(end)
	for _, s := range doc.CriticalPath {
		doc.CriticalPathNs += s.DurNs
	}
	t.doc = doc
}

// rank returns the nearest-rank percentile of a sorted slice.
func rank(sorted []int64, pct int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (pct*len(sorted) + 99) / 100 // ceil(pct/100 * n)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// criticalPath walks backward from the run's end at the node of the
// globally latest event.  At each step it finds the latest-ending flow
// that arrived at the current node before the current instant, charges
// the gap since that arrival to the node as compute, crosses the flow
// back to its origin, and repeats; the walk terminates with the
// origin's compute span from time zero.  The spans tile [0, end] with
// no gaps or overlaps, so their durations sum exactly to the
// end-to-end completion time.
func (t *FlowTable) criticalPath(end sim.Time) []PathSpan {
	names := map[uint64]string{}
	ordinals := map[string]int{}
	for _, r := range t.order {
		k := r.key()
		ordinals[k]++
		names[r.id] = fmt.Sprintf("%s#%d", k, ordinals[k])
	}

	// Index flows by the node their last event landed on.
	arrivals := map[string][]*flowRec{}
	for _, r := range t.order {
		arrivals[r.endNode] = append(arrivals[r.endNode], r)
	}

	var rev []PathSpan
	node := t.lastNode
	tcur := end
	for {
		var best *flowRec
		for _, r := range arrivals[node] {
			if r.end > tcur || r.start >= tcur {
				continue
			}
			if best == nil || r.end > best.end ||
				(r.end == best.end && (r.start > best.start ||
					(r.start == best.start && r.id < best.id))) {
				best = r
			}
		}
		if best == nil {
			rev = append(rev, PathSpan{Node: node, What: "compute",
				StartNs: 0, DurNs: int64(tcur)})
			break
		}
		if best.end < tcur {
			rev = append(rev, PathSpan{Node: node, What: "compute",
				StartNs: int64(best.end), DurNs: int64(tcur - best.end)})
		}
		sp := PathSpan{Node: best.startNode, What: names[best.id], FlowID: best.id,
			StartNs: int64(best.start), DurNs: int64(best.end - best.start)}
		if t.Resolve != nil && best.startIP != 0 {
			sp.Loc = t.Resolve(best.startNode, best.startIP)
		}
		rev = append(rev, sp)
		tcur = best.start
		node = best.startNode
	}
	path := make([]PathSpan, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

// Doc returns the document built by Finish.
func (t *FlowTable) Doc() *FlowDoc { return t.doc }

// WriteJSON writes the document built by Finish.
func (t *FlowTable) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.doc)
}

// Report prints the summary tables; top bounds the slowest-flows list
// (0 means all).
func (t *FlowTable) Report(w io.Writer, top int) { t.doc.Report(w, top) }

// ReadFlowDoc parses a document written by WriteJSON.
func ReadFlowDoc(r io.Reader) (*FlowDoc, error) {
	var doc FlowDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Report prints the flow summary: per-key latency histograms, the
// critical path, and the slowest flows (top bounds the list; 0 means
// all).
func (d *FlowDoc) Report(w io.Writer, top int) {
	fmt.Fprintf(w, "flow tracing: %d flows, end-to-end %v\n",
		len(d.Flows), sim.Time(d.EndNs))
	if len(d.Histograms) > 0 {
		fmt.Fprintf(w, "  latency by channel/link (count p50 p95 p99 max):\n")
		for _, h := range d.Histograms {
			fmt.Fprintf(w, "    %-24s %5d  %10v %10v %10v %10v\n", h.Key, h.Count,
				sim.Time(h.P50Ns), sim.Time(h.P95Ns), sim.Time(h.P99Ns), sim.Time(h.MaxNs))
		}
	}
	fmt.Fprintf(w, "  critical path (%d spans, sums to %v):\n",
		len(d.CriticalPath), sim.Time(d.CriticalPathNs))
	for _, s := range d.CriticalPath {
		loc := ""
		if s.Loc != "" {
			loc = "  (" + s.Loc + ")"
		}
		what := s.What
		if s.What == "compute" {
			what = "compute " + s.Node
		}
		fmt.Fprintf(w, "    %10v  %-28s %10v%s\n",
			sim.Time(s.StartNs), what, sim.Time(s.DurNs), loc)
	}
	slow := make([]FlowInfo, len(d.Flows))
	copy(slow, d.Flows)
	sort.SliceStable(slow, func(i, j int) bool {
		di := slow[i].EndNs - slow[i].StartNs
		dj := slow[j].EndNs - slow[j].StartNs
		if di != dj {
			return di > dj
		}
		return slow[i].ID < slow[j].ID
	})
	if top > 0 && len(slow) > top {
		slow = slow[:top]
	}
	if len(slow) > 0 {
		fmt.Fprintf(w, "  slowest flows (latency bytes wire retrans ack-stall):\n")
		for _, f := range slow {
			tail := ""
			if f.Retransmits > 0 || f.Naks > 0 || f.Drops > 0 {
				tail = fmt.Sprintf("  [%d retrans, %d naks, %d drops]",
					f.Retransmits, f.Naks, f.Drops)
			}
			if f.Down {
				tail += "  LINK DOWN"
			}
			loc := ""
			if f.Loc != "" {
				loc = "  (" + f.Loc + ")"
			}
			fmt.Fprintf(w, "    %-24s %10v %6d %10v %10v %10v%s%s\n",
				f.Name, sim.Time(f.EndNs-f.StartNs), f.Bytes,
				sim.Time(f.WireNs), sim.Time(f.RetransNs), sim.Time(f.AckStallNs), loc, tail)
		}
	}
}
