package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"transputer/internal/sim"
)

// Timeline records every bus event and exports them in the Chrome
// trace-event JSON format, loadable in chrome://tracing or Perfetto.
// Each node becomes a trace "process"; each transputer process gets its
// own track, as do the node's links (wire occupancy, transfers and ack
// stalls), the scheduler and the host protocol.
type Timeline struct {
	events []Event
}

// NewTimeline subscribes a fresh timeline recorder to the bus.
func NewTimeline(b *Bus) *Timeline {
	t := &Timeline{}
	b.Subscribe(t.record)
	return t
}

func (t *Timeline) record(e Event) { t.events = append(t.events, e) }

// Events returns the recorded events in publication order.
func (t *Timeline) Events() []Event { return t.events }

// Track ids within a node's trace process.  Process tracks are assigned
// ids from tidProcBase upward in order of first dispatch.
const (
	tidSched    = 1   // scheduler instants (preempt, timeslice, timer, event pin)
	tidHost     = 2   // host protocol commands
	tidWireBase = 10  // + link: wire occupancy and ack stalls
	tidXferBase = 20  // + 2*link (+1 for input): processor-side transfers
	tidProcBase = 100 // + per-process index
)

// chromeEvent is one entry of the trace-event JSON array.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Cat  string                 `json:"cat,omitempty"`
	S    string                 `json:"s,omitempty"`  // instant scope
	Id   uint64                 `json:"id,omitempty"` // flow arrow binding
	Bp   string                 `json:"bp,omitempty"` // flow binding point
	Args map[string]interface{} `json:"args,omitempty"`
}

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace renders the recorded events.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	var out []chromeEvent

	pids := map[string]int{}
	pid := func(node string) int {
		id, ok := pids[node]
		if !ok {
			id = len(pids) + 1
			pids[node] = id
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", Pid: id,
				Args: map[string]interface{}{"name": node},
			})
		}
		return id
	}
	// Per-node process-track assignment and the currently open slice.
	type nodeState struct {
		procTid map[uint64]int
		open    bool
		openTid int
		last    sim.Time
	}
	nodes := map[string]*nodeState{}
	state := func(node string) *nodeState {
		ns, ok := nodes[node]
		if !ok {
			ns = &nodeState{procTid: map[uint64]int{}}
			nodes[node] = ns
		}
		return ns
	}
	procTid := func(node string, proc uint64) int {
		ns := state(node)
		tid, ok := ns.procTid[proc]
		if !ok {
			tid = tidProcBase + len(ns.procTid)
			ns.procTid[proc] = tid
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid(node), Tid: tid,
				Args: map[string]interface{}{
					"name": fmt.Sprintf("P@%08X pri%d", proc&^1, proc&1),
				},
			})
		}
		return tid
	}
	closeSlice := func(node string, at sim.Time) {
		ns := state(node)
		if !ns.open {
			return
		}
		ns.open = false
		out = append(out, chromeEvent{
			Name: "run", Ph: "E", Ts: usec(at), Pid: pid(node), Tid: ns.openTid, Cat: "sched",
		})
	}

	var end sim.Time
	for _, e := range t.events {
		if e.Time > end {
			end = e.Time
		}
		p := pid(e.Node)
		ns := state(e.Node)
		ns.last = e.Time
		switch e.Kind {
		case ProcDispatch:
			// One CPU per node: a dispatch implicitly ends whatever was
			// running (the stop event normally arrives first).
			closeSlice(e.Node, e.Time)
			tid := procTid(e.Node, e.Proc)
			ns.open, ns.openTid = true, tid
			out = append(out, chromeEvent{
				Name: "run", Ph: "B", Ts: usec(e.Time), Pid: p, Tid: tid, Cat: "sched",
				Args: map[string]interface{}{"cycles": e.Cycles, "runq": e.Depth},
			})
		case ProcStop:
			closeSlice(e.Node, e.Time)
		case ProcReady:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("runq.pri%d", e.Pri), Ph: "C", Ts: usec(e.Time), Pid: p, Tid: 0,
				Args: map[string]interface{}{"depth": e.Depth},
			})
		case Preempt:
			out = append(out, chromeEvent{
				Name: "preempt", Ph: "i", Ts: usec(e.Time), Pid: p, Tid: tidSched, Cat: "sched", S: "t",
				Args: map[string]interface{}{"cycles": e.Cycles},
			})
		case Timeslice:
			out = append(out, chromeEvent{
				Name: "timeslice", Ph: "i", Ts: usec(e.Time), Pid: p, Tid: tidSched, Cat: "sched", S: "t",
			})
		case ChanBlock:
			tid := procTid(e.Node, e.Proc)
			out = append(out, chromeEvent{
				Name: "chan.block", Ph: "i", Ts: usec(e.Time), Pid: p,
				Tid: tid, Cat: "chan", S: "t",
				Args: map[string]interface{}{"chan": hex(e.Addr), "out": e.Out},
			})
			if e.Flow != 0 {
				out = append(out, chromeEvent{
					Name: "flow", Ph: "s", Ts: usec(e.Time), Pid: p, Tid: tid,
					Cat: "flow", Id: e.Flow,
				})
			}
		case ChanRendezvous:
			tid := procTid(e.Node, e.Proc)
			out = append(out, chromeEvent{
				Name: "chan.rendezvous", Ph: "i", Ts: usec(e.Time), Pid: p,
				Tid: tid, Cat: "chan", S: "t",
				Args: map[string]interface{}{
					"chan": hex(e.Addr), "bytes": e.Bytes, "partner": hex(uint64(e.Arg)),
				},
			})
			if e.Flow != 0 {
				out = append(out, chromeEvent{
					Name: "flow", Ph: "f", Ts: usec(e.Time), Pid: p, Tid: tid,
					Cat: "flow", Id: e.Flow, Bp: "e",
				})
			}
		case TimerWait:
			out = append(out, chromeEvent{
				Name: "timer.wait", Ph: "i", Ts: usec(e.Time), Pid: p, Tid: tidSched, Cat: "timer", S: "t",
				Args: map[string]interface{}{"proc": hex(e.Proc), "until": e.Arg},
			})
		case TimerFire:
			out = append(out, chromeEvent{
				Name: "timer.fire", Ph: "i", Ts: usec(e.Time), Pid: p, Tid: tidSched, Cat: "timer", S: "t",
				Args: map[string]interface{}{"proc": hex(e.Proc)},
			})
		case EventPin:
			out = append(out, chromeEvent{
				Name: "event.pin", Ph: "i", Ts: usec(e.Time), Pid: p, Tid: tidSched, Cat: "event", S: "t",
			})
		case LinkXferStart:
			out = append(out, chromeEvent{
				Name: xferName(e.Out), Ph: "B", Ts: usec(e.Time), Pid: p,
				Tid: xferTid(e.Link, e.Out), Cat: "link",
				Args: map[string]interface{}{"bytes": e.Bytes, "proc": hex(e.Proc)},
			})
			if e.Out && e.Flow != 0 {
				// Sender end of a cross-node message arc.
				out = append(out, chromeEvent{
					Name: "flow", Ph: "s", Ts: usec(e.Time), Pid: p,
					Tid: xferTid(e.Link, e.Out), Cat: "flow", Id: e.Flow,
				})
			}
		case LinkXferEnd:
			out = append(out, chromeEvent{
				Name: xferName(e.Out), Ph: "E", Ts: usec(e.Time), Pid: p,
				Tid: xferTid(e.Link, e.Out), Cat: "link",
			})
			if !e.Out && e.Flow != 0 {
				// Receiver end of the arc: bind to the enclosing slice so
				// Perfetto draws the arrow into the completed transfer.
				out = append(out, chromeEvent{
					Name: "flow", Ph: "f", Ts: usec(e.Time), Pid: p,
					Tid: xferTid(e.Link, e.Out), Cat: "flow", Id: e.Flow, Bp: "e",
				})
			}
		case WirePacket:
			name := "data"
			if e.Ack {
				name = "ack"
			}
			out = append(out, chromeEvent{
				Name: name, Ph: "X", Ts: usec(e.Time), Dur: usec(e.Dur),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "wire",
			})
		case AckStall:
			out = append(out, chromeEvent{
				Name: "ack.stall", Ph: "X", Ts: usec(e.Time - e.Dur), Dur: usec(e.Dur),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "wire",
			})
		case HostCommand:
			out = append(out, chromeEvent{
				Name: "host.cmd", Ph: "i", Ts: usec(e.Time), Pid: p, Tid: tidHost, Cat: "host", S: "t",
				Args: map[string]interface{}{"cmd": e.Arg},
			})
		case FaultDrop, FaultCorrupt, LinkNak, LinkRetransmit, LinkDown:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "fault", S: "t",
				Args: map[string]interface{}{"ack": e.Ack, "arg": e.Arg},
			})
		case FaultDelay:
			out = append(out, chromeEvent{
				Name: "fault.delay", Ph: "X", Ts: usec(e.Time), Dur: usec(e.Dur),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "fault",
			})
		case LinkSever:
			out = append(out, chromeEvent{
				Name: "link.sever", Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "fault", S: "p",
			})
		case NodeHalt:
			out = append(out, chromeEvent{
				Name: "node.halt", Ph: "i", Ts: usec(e.Time), Pid: p, Tid: tidSched, Cat: "fault", S: "p",
			})
		case FlowArrive:
			out = append(out, chromeEvent{
				Name: "flow.arrive", Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "flow", S: "t",
				Args: map[string]interface{}{"flow": hex(e.Flow)},
			})
		case Deadlock:
			out = append(out, chromeEvent{
				Name: "deadlock", Ph: "i", Ts: usec(e.Time), Pid: p,
				Tid: procTid(e.Node, e.Proc), Cat: "watchdog", S: "p",
				Args: map[string]interface{}{"chan": hex(e.Addr), "link": e.Link},
			})
		case Heartbeat:
			out = append(out, chromeEvent{
				Name: "heartbeat", Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "health", S: "t",
				Args: map[string]interface{}{"up": e.Arg == 1, "silence": usec(e.Dur)},
			})
		case RouteChange:
			out = append(out, chromeEvent{
				Name: "route.change", Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidSched, Cat: "route", S: "t",
				Args: map[string]interface{}{"reachable": e.Arg},
			})
		case NodeRestart:
			out = append(out, chromeEvent{
				Name: "node.restart", Ph: "i", Ts: usec(e.Time), Pid: p, Tid: tidSched, Cat: "fault", S: "p",
			})
		case RouteReplay:
			out = append(out, chromeEvent{
				Name: "route.replay", Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidSched, Cat: "route", S: "t",
				Args: map[string]interface{}{"attempt": e.Arg},
			})
		case RouteDeliver:
			out = append(out, chromeEvent{
				Name: "route.deliver", Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidSched, Cat: "route", S: "t",
				Args: map[string]interface{}{"seq": e.Arg, "bytes": e.Bytes},
			})
		case VChanChunk:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("vc%d.chunk", e.Arg), Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "vchan", S: "t",
				Args: map[string]interface{}{"vchan": e.Arg, "bytes": e.Bytes, "flow": hex(e.Flow)},
			})
		case VChanCredit:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("vc%d.credit", e.Arg), Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "vchan", S: "t",
				Args: map[string]interface{}{"vchan": e.Arg, "bytes": e.Bytes},
			})
		case VChanDeliver:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("vc%d.deliver", e.Arg), Ph: "i", Ts: usec(e.Time),
				Pid: p, Tid: tidWireBase + e.Link, Cat: "vchan", S: "t",
				Args: map[string]interface{}{"vchan": e.Arg, "bytes": e.Bytes, "flow": hex(e.Flow)},
			})
		}
	}
	// Close any slice still open at the end of the run.
	var open []string
	for node, ns := range nodes {
		if ns.open {
			open = append(open, node)
		}
	}
	sort.Strings(open)
	for _, node := range open {
		closeSlice(node, end)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}

func xferTid(link int, out bool) int {
	tid := tidXferBase + 2*link
	if !out {
		tid++
	}
	return tid
}

func xferName(out bool) string {
	if out {
		return "link.out"
	}
	return "link.in"
}

func hex(v uint64) string { return fmt.Sprintf("%#x", v) }
