package sim

import (
	"fmt"
	"testing"
)

// The tests here pin the semantics the parallel engine must preserve
// exactly: same-instant FIFO ordering across window barriers, the
// posted-cancel contract for events owned by another shard, and
// bounded runs whose limit lands in the middle of a window.  Every
// scenario is run at several worker counts and must produce an
// identical trace.

// withWorkers runs the scenario once per worker count and checks every
// run produces the same trace.  build returns the trace after running.
func withWorkers(t *testing.T, build func(workers int) []string) {
	t.Helper()
	want := build(1)
	for _, w := range []int{2, 4} {
		got := build(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d trace length %d != %d\nwant %v\ngot  %v", w, len(got), len(want), want, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d trace[%d] = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// TestShardSameInstantOrder: events due at one instant on one shard
// fire in the order they were scheduled, even when some were scheduled
// locally and others arrived through the mailbox from different source
// shards across a window barrier.  Mailbox releases are ordered by
// (time, source shard, source sequence), so the interleaving is a
// total order independent of workers.
func TestShardSameInstantOrder(t *testing.T) {
	const L = Time(100)
	withWorkers(t, func(workers int) []string {
		c := NewCoordinator(L)
		c.SetWorkers(workers)
		a, b, d := c.NewShard(), c.NewShard(), c.NewShard()
		var trace []string
		at := 5 * L
		// Local events scheduled first get the lowest kernel sequence
		// numbers and must fire first.
		a.Schedule(at, func() { trace = append(trace, "a-local-0") })
		a.Schedule(at, func() { trace = append(trace, "a-local-1") })
		// Shards b and d each post to a at the same instant from inside
		// their first window; the release order must be b before d
		// (source shard order), after a's local events (scheduled
		// earlier, hence earlier kernel sequence).
		b.Schedule(L, func() { b.Post(a, at, func() { trace = append(trace, "from-b") }) })
		d.Schedule(L, func() {
			d.Post(a, at, func() { trace = append(trace, "from-d-0") })
			d.Post(a, at, func() { trace = append(trace, "from-d-1") })
		})
		c.Run()
		return trace
	})
}

// TestShardCrossCancel: cancelling an event owned by another shard is
// a posted signal, not a retroactive revocation.  A cancel issued more
// than one lookahead before the event's due time lands in time and
// stops it; a cancel of an event that fires within the lookahead is a
// no-op, at any worker count.
func TestShardCrossCancel(t *testing.T) {
	const L = Time(100)
	withWorkers(t, func(workers int) []string {
		c := NewCoordinator(L)
		c.SetWorkers(workers)
		a, b := c.NewShard(), c.NewShard()
		var trace []string
		// Far event: due 10L out; b cancels at time L, the cancel is
		// released at 2L, well before the event.  Must not fire.
		far := a.Schedule(10*L, func() { trace = append(trace, "far-fired") })
		// Near event: due at 2L; b's cancel posted at L is released at
		// 2L, but the event is already in a's window when the cancel
		// arrives no earlier than its due time — it fires first and the
		// cancel is a no-op.
		near := a.Schedule(2*L, func() { trace = append(trace, "near-fired") })
		b.Schedule(L, func() {
			b.Cancel(far)
			b.Cancel(near)
		})
		c.Run()
		trace = append(trace, fmt.Sprintf("end@%v", c.Now()))
		return trace
	})
}

// TestShardRunUntilMidWindow: a bounded run whose limit falls between
// two events fires exactly the events at or before the limit, leaves
// the rest scheduled, parks every shard clock at the limit, and a
// continuation run picks up the remainder — the same contract a lone
// kernel's RunUntil has.
func TestShardRunUntilMidWindow(t *testing.T) {
	const L = Time(100)
	withWorkers(t, func(workers int) []string {
		c := NewCoordinator(L)
		c.SetWorkers(workers)
		a, b := c.NewShard(), c.NewShard()
		// Each shard records its own firings (shards may execute
		// concurrently); the traces are merged by time afterwards —
		// every due time is distinct, so the merge is total.
		var aTrace, bTrace []string
		for i := Time(1); i <= 6; i++ {
			at := i * L
			a.Schedule(at, func() { aTrace = append(aTrace, fmt.Sprintf("a@%v", at)) })
			b.Schedule(at+L/2, func() { bTrace = append(bTrace, fmt.Sprintf("b@%v", at+L/2)) })
		}
		limit := 3*L + L/4 // between a's 3L event and b's 3.5L event
		if done := c.RunUntil(limit); done {
			t.Errorf("workers=%d: run drained below limit unexpectedly", workers)
		}
		nA, nB := len(aTrace), len(bTrace)
		if a.Now() != limit || b.Now() != limit {
			t.Errorf("workers=%d: clocks not parked at limit: a=%v b=%v", workers, a.Now(), b.Now())
		}
		if done := c.RunUntil(10 * L); !done {
			t.Errorf("workers=%d: continuation did not drain", workers)
		}
		trace := []string{
			fmt.Sprintf("paused: fired a=%d b=%d now=%v", nA, nB, limit),
			fmt.Sprintf("end@%v", c.Now()),
		}
		for i := 0; i < len(aTrace) || i < len(bTrace); i++ {
			if i < len(aTrace) {
				trace = append(trace, aTrace[i])
			}
			if i < len(bTrace) {
				trace = append(trace, bTrace[i])
			}
		}
		return trace
	})
}

// TestShardEventAtLimitFires: an event due exactly at the limit is
// inside the bounded run.
func TestShardEventAtLimitFires(t *testing.T) {
	const L = Time(100)
	c := NewCoordinator(L)
	a := c.NewShard()
	b := c.NewShard()
	fired := false
	a.Schedule(4*L, func() { fired = true })
	b.Schedule(5*L, func() {})
	c.RunUntil(4 * L)
	if !fired {
		t.Error("event at the limit did not fire")
	}
}
