// Package sim provides the deterministic discrete-event kernel that
// drives transputer processors, link engines and timers in simulated
// time.
//
// Simulated time is measured in nanoseconds (a 20 MHz transputer cycle
// is 50 ns; a 10 Mbit/s link bit time is 100 ns).  Events at the same
// instant fire in the order they were scheduled, which makes every
// simulation run reproducible.
package sim

import "fmt"

// Time is a simulated instant in nanoseconds from the start of the run.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String renders the time with a convenient unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// MaxTime is the latest representable instant; Horizon returns it for a
// kernel that is not bounded by a coordinator window.
const MaxTime = Time(1<<63 - 1)

// EventID identifies a scheduled event so it can be cancelled.  The zero
// value is never a valid ID.
type EventID uint64

// Clock is the scheduling interface shared by a standalone Kernel and a
// coordinator Shard; machines, link engines and hosts are written
// against it so the same wiring runs single-queue or sharded.
type Clock interface {
	Now() Time
	Schedule(at Time, fn func()) EventID
	After(d Time, fn func()) EventID
	Cancel(id EventID)
}

// event is one heap entry.  It is deliberately pointer-free — the
// callback lives in the slot table — so heap sifts are pure scalar
// copies with no GC write barriers on the engine's hottest path.
type event struct {
	at   Time
	rank uint8  // same-instant class: deliveries (0) before local events (1)
	seq  uint64 // tie-break within a rank: FIFO for locals, (src, xseq) for deliveries
	slot uint32 // index into the kernel's slot table
}

// slotInfo is the liveness record of one heap entry.  An EventID packs
// the slot index with the slot's generation at scheduling time, so a
// handle held across the event's firing goes stale automatically: the
// pop bumps the generation, and any later Cancel or IsPending through
// the old handle mismatches.  This keeps per-event bookkeeping to two
// array accesses — no map insert on schedule, no map delete on fire —
// which matters because the kernel executes one of these cycles per
// instruction batch.
type slotInfo struct {
	gen       uint32
	cancelled bool
	fn        func() // the event's callback, cleared when the slot retires
}

// Kernel is a time-ordered event queue.  It is not safe for concurrent
// use by itself; a Coordinator runs disjoint kernels on parallel
// goroutines, but each individual kernel is only ever touched by one
// goroutine at a time.
type Kernel struct {
	now     Time
	heap    []event
	nextSeq uint64
	slots   []slotInfo
	free    []uint32 // recycled slot indices
	live    int      // heap entries not cancelled
	ncancel int      // heap entries cancelled but not yet reaped

	// offset is a virtual-time displacement added to Now: a batched
	// instruction runner advances it between kernel events so that
	// everything executed mid-batch (probe stamps, timer arithmetic,
	// new events) sees time move exactly as if each instruction had
	// been its own event.
	offset Time

	// stamp increments on every Schedule and Cancel, letting a batch
	// runner cheaply detect that its cached execution bound is stale.
	stamp uint64

	// horizon is the exclusive execution bound: MaxTime normally, or
	// limit+1 while RunUntil is in progress so batch runners stop at
	// the limit instead of free-running past it.
	horizon Time
}

// NewKernel returns a kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{horizon: MaxTime}
}

// EventID layout: slot+1 in bits 32..47, generation in bits 0..31.
// Bits 48 and up stay clear for the coordinator's port-rank tag, and
// slot+1 keeps the zero ID invalid.  A slot's generation advances once
// per event that lives on it; at one event per simulated microsecond a
// slot would need a century of simulated time to wrap.
const (
	slotShift = 32
	slotLimit = 1<<(portRankShift-slotShift) - 1
	genMask   = 1<<slotShift - 1
)

// alloc takes a slot for a new event and returns its index and ID.
func (k *Kernel) alloc() (uint32, EventID) {
	var s uint32
	if n := len(k.free); n > 0 {
		s = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		if len(k.slots) >= slotLimit {
			panic("sim: too many concurrent events")
		}
		k.slots = append(k.slots, slotInfo{})
		s = uint32(len(k.slots) - 1)
	}
	return s, EventID(uint64(s+1)<<slotShift | uint64(k.slots[s].gen))
}

// reap retires a popped heap entry's slot: the generation bump stales
// every outstanding handle, the callback reference is released, and
// the slot returns to the freelist.
func (k *Kernel) reap(slot uint32) {
	k.slots[slot].gen++
	k.slots[slot].fn = nil
	k.free = append(k.free, slot)
}

// lookup resolves an ID to its live slot, or -1 if the handle is
// stale, cancelled or invalid.
func (k *Kernel) lookup(id EventID) int {
	s := int(id>>slotShift) - 1
	if s < 0 || s >= len(k.slots) {
		return -1
	}
	if k.slots[s].gen != uint32(id&genMask) || k.slots[s].cancelled {
		return -1
	}
	return s
}

// Now returns the current simulated time (including any virtual-time
// offset a batch runner has applied).
func (k *Kernel) Now() Time { return k.now + k.offset }

// SetOffset sets the virtual-time displacement added to Now.  Batch
// runners raise it as they execute instructions between kernel events
// and must restore it to zero before returning to the event loop.
func (k *Kernel) SetOffset(d Time) { k.offset = d }

// Stamp returns a counter that changes whenever the schedule changes
// (an event scheduled or cancelled); batch runners use it to know when
// a cached execution bound must be recomputed.
func (k *Kernel) Stamp() uint64 { return k.stamp }

// Pending reports the number of scheduled, uncancelled events.
func (k *Kernel) Pending() int { return k.live }

// NextTime reports the time of the earliest pending event.
func (k *Kernel) NextTime() (Time, bool) {
	e, ok := k.peek()
	if !ok {
		return 0, false
	}
	return e.at, true
}

// Horizon is the exclusive bound events may run to: MaxTime for a
// free-running kernel, limit+1 during RunUntil.  (A coordinator Shard
// overrides this with its current window horizon.)
func (k *Kernel) Horizon() Time { return k.horizon }

// PromiseQuiet is the send-promise hook of the batch-runner driver
// interface.  A lone kernel has no neighbours to inform, so it ignores
// promises; a coordinator Shard records them to extend windows.
func (k *Kernel) PromiseQuiet(id EventID, until Time) {}

// IsPending reports whether an event is still scheduled and not
// cancelled.
func (k *Kernel) IsPending(id EventID) bool { return k.lookup(id) >= 0 }

// NextEvent reports the earliest pending event's time and ID — the
// coordinator's check for whether a quiet promise covers the head of
// the queue.
func (k *Kernel) NextEvent() (Time, EventID, bool) {
	e, ok := k.peek()
	if !ok {
		return 0, 0, false
	}
	return e.at, EventID(uint64(e.slot+1)<<slotShift | uint64(k.slots[e.slot].gen)), true
}

// HeadIs reports whether the earliest pending event is the one the
// handle names — the coordinator's check for whether a quiet promise
// covers the head of the queue, without materialising the head's ID.
func (k *Kernel) HeadIs(id EventID) bool {
	e, ok := k.peek()
	if !ok {
		return false
	}
	s := int(id>>slotShift) - 1
	return s == int(e.slot) && k.slots[e.slot].gen == uint32(id&genMask)
}

// NextTimeExcluding reports the time of the earliest pending event
// other than the one named — the coordinator's send-bound scan, which
// discounts a runner continuation covered by a quiet promise.  The
// scan is linear over the heap; shard heaps hold a handful of events,
// and cancelled entries are skipped by their slot flag.
func (k *Kernel) NextTimeExcluding(id EventID) (Time, bool) {
	xslot := k.lookup(id)
	best := MaxTime
	found := false
	for _, e := range k.heap {
		if int(e.slot) == xslot || (k.ncancel > 0 && k.slots[e.slot].cancelled) {
			continue
		}
		if e.at < best {
			best = e.at
			found = true
		}
	}
	return best, found
}

// Schedule runs fn at the given absolute time, which must not be in the
// past.  It returns an ID that can be passed to Cancel.
func (k *Kernel) Schedule(at Time, fn func()) EventID {
	if at < k.now+k.offset {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now+k.offset))
	}
	s, id := k.alloc()
	k.slots[s].fn = fn
	k.push(event{at: at, rank: 1, seq: k.nextSeq, slot: s})
	k.nextSeq++
	k.live++
	k.stamp++
	return id
}

// ScheduleDelivery schedules a cross-shard delivery: it runs before
// any same-instant local event, ordered among same-instant deliveries
// by key — the coordinator packs the source shard and its per-source
// sequence, a total order independent of which window barrier did the
// injecting (see less).
func (k *Kernel) ScheduleDelivery(at Time, key uint64, fn func()) EventID {
	if at < k.now+k.offset {
		panic(fmt.Sprintf("sim: delivery at %v before now %v", at, k.now+k.offset))
	}
	s, id := k.alloc()
	k.slots[s].fn = fn
	k.push(event{at: at, rank: 0, seq: key, slot: s})
	k.live++
	k.stamp++
	return id
}

// After schedules fn after a delay from the current (virtual) time.
func (k *Kernel) After(d Time, fn func()) EventID {
	return k.Schedule(k.now+k.offset+d, fn)
}

// Cancel prevents a scheduled event from firing.  Cancelling an event
// that has already fired (or was already cancelled) is a no-op: the
// slot generation in the ID goes stale the moment the event pops.
func (k *Kernel) Cancel(id EventID) {
	s := k.lookup(id)
	if s < 0 {
		return
	}
	k.slots[s].cancelled = true
	k.ncancel++
	k.live--
	k.stamp++
}

// Step fires the next event.  It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		e := k.pop()
		if k.ncancel > 0 && k.slots[e.slot].cancelled {
			k.slots[e.slot].cancelled = false
			k.ncancel--
			k.reap(e.slot)
			continue
		}
		fn := k.slots[e.slot].fn
		k.reap(e.slot)
		k.now = e.at
		k.live--
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty and returns the final time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil fires events with time <= limit.  It returns true if the
// queue drained before the limit.
func (k *Kernel) RunUntil(limit Time) bool {
	if limit < MaxTime {
		k.horizon = limit + 1
		defer func() { k.horizon = MaxTime }()
	}
	for {
		e, ok := k.peek()
		if !ok {
			return true
		}
		if e.at > limit {
			if k.now < limit {
				k.now = limit
			}
			return false
		}
		k.Step()
	}
}

// RunBefore fires events with time strictly less than the horizon —
// one coordinator window.  Unlike RunUntil it does not advance the
// clock to the bound: the kernel stays at its last-fired event so the
// next window can begin wherever this shard's activity actually is.
func (k *Kernel) RunBefore(horizon Time) {
	for {
		e, ok := k.peek()
		if !ok || e.at >= horizon {
			return
		}
		k.Step()
	}
}

// AdvanceTo moves the clock forward to t without firing anything; the
// coordinator uses it to bring every shard to the common limit of a
// bounded run, mirroring RunUntil's behaviour on a lone kernel.  It
// panics if an event earlier than t is still pending.
func (k *Kernel) AdvanceTo(t Time) {
	if e, ok := k.peek(); ok && e.at < t {
		panic(fmt.Sprintf("sim: advance to %v past pending event at %v", t, e.at))
	}
	if k.now < t {
		k.now = t
	}
}

func (k *Kernel) peek() (event, bool) {
	for len(k.heap) > 0 {
		e := k.heap[0]
		if k.ncancel > 0 && k.slots[e.slot].cancelled {
			k.pop()
			k.slots[e.slot].cancelled = false
			k.ncancel--
			k.reap(e.slot)
			continue
		}
		return e, true
	}
	return event{}, false
}

// less orders by time, then rank, then sequence.  The rank makes the
// position of a cross-shard delivery among same-instant local events
// canonical: a delivery's FIFO seq would depend on which window
// barrier injected it, and barrier placement shifts with runner quiet
// promises (which the block cache informs) — so without the rank,
// turning the cache on or off could reorder same-instant events.
// Deliveries run first, ordered among themselves by their
// mode-independent (source shard, source sequence) key.
func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.seq < b.seq
}

func (k *Kernel) push(e event) {
	k.heap = append(k.heap, e)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(k.heap[i], k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *Kernel) pop() event {
	top := k.heap[0]
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(k.heap) && less(k.heap[l], k.heap[smallest]) {
			smallest = l
		}
		if r < len(k.heap) && less(k.heap[r], k.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		k.heap[i], k.heap[smallest] = k.heap[smallest], k.heap[i]
		i = smallest
	}
	return top
}
