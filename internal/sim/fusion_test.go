package sim

import (
	"fmt"
	"testing"
)

// The fusion tests pin the partition-invariance contract: the same
// scenario run with every actor on its own shard, all actors fused
// onto one shard, or any mix, produces an identical trace — fused
// delivery replaces the mailbox and barrier but keeps every timestamp
// and every same-instant ordering decision.

// partitions describes how four actors (0..3) map onto shards.
var fourWays = [][][]int{
	{{0}, {1}, {2}, {3}}, // one shard per actor
	{{0, 1, 2, 3}},       // fully fused
	{{0, 1}, {2, 3}},     // two pairs
	{{0, 2}, {1}, {3}},   // an uneven mix
	{{0}, {1, 2, 3}},     // one loner
}

// buildPorts realises a partition: one shard per group, one port per
// actor, returned indexed by actor.  Ports are created in actor order
// — the way the network layer places nodes — so each actor's port rank
// (the delivery-key origin) is the same at every partition.
func buildPorts(c *Coordinator, groups [][]int) []*Port {
	n := 0
	shardOf := map[int]int{}
	for gi, g := range groups {
		n += len(g)
		for _, actor := range g {
			shardOf[actor] = gi
		}
	}
	ports := make([]*Port, n)
	shards := make([]*Shard, len(groups))
	for actor := 0; actor < n; actor++ {
		gi := shardOf[actor]
		if shards[gi] == nil {
			shards[gi] = c.NewShard()
			ports[actor] = shards[gi].Port()
		} else {
			ports[actor] = shards[gi].NewPort()
		}
	}
	return ports
}

// withPartitions runs the scenario once per partition and worker count
// and checks every run produces the trace of the one-shard-per-actor
// workers=1 run.
func withPartitions(t *testing.T, build func(ports []*Port, c *Coordinator) *[]string) {
	t.Helper()
	run := func(groups [][]int, workers int) []string {
		const L = Time(100)
		c := NewCoordinator(L)
		c.SetWorkers(workers)
		ports := buildPorts(c, groups)
		trace := build(ports, c)
		c.Run()
		return *trace
	}
	want := run(fourWays[0], 1)
	for _, groups := range fourWays {
		for _, w := range []int{1, 4} {
			got := run(groups, w)
			if len(got) != len(want) {
				t.Fatalf("partition %v workers=%d trace %v, want %v", groups, w, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("partition %v workers=%d trace[%d] = %q, want %q",
						groups, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFusionPartitionInvariantPingPong: a request/reply chain between
// actors — each delivery provokes the next, the exact pattern that
// bounds how far a fused member may run past its own sends.  The
// trace (actor, time) sequence must be identical at every partition.
func TestFusionPartitionInvariantPingPong(t *testing.T) {
	const L = Time(100)
	withPartitions(t, func(ports []*Port, c *Coordinator) *[]string {
		trace := &[]string{}
		var volley func(from, to int, n int) func()
		volley = func(from, to int, n int) func() {
			return func() {
				*trace = append(*trace, fmt.Sprintf("%d->%d@%v", from, to, ports[to].Now()))
				if n > 0 {
					next := (to + 1) % len(ports)
					ports[to].Post(ports[next], ports[to].Now()+L, volley(to, next, n-1))
				}
			}
		}
		ports[0].Schedule(L, func() {
			ports[0].Post(ports[1], ports[0].Now()+L, volley(0, 1, 12))
		})
		return trace
	})
}

// TestFusionPartitionInvariantSameInstant: deliveries from several
// actors landing on one actor at the same instant keep their (origin
// rank, sequence) order at every partition, interleaved after the
// destination's earlier-scheduled local events.
func TestFusionPartitionInvariantSameInstant(t *testing.T) {
	const L = Time(100)
	withPartitions(t, func(ports []*Port, c *Coordinator) *[]string {
		trace := &[]string{}
		at := 5 * L
		ports[0].Schedule(at, func() { *trace = append(*trace, "local-0") })
		ports[0].Schedule(at, func() { *trace = append(*trace, "local-1") })
		ports[1].Schedule(L, func() {
			ports[1].Post(ports[0], at, func() { *trace = append(*trace, "from-1") })
		})
		ports[2].Schedule(L, func() {
			ports[2].Post(ports[0], at, func() { *trace = append(*trace, "from-2-a") })
			ports[2].Post(ports[0], at, func() { *trace = append(*trace, "from-2-b") })
		})
		ports[3].Schedule(L, func() {
			ports[3].Post(ports[0], at, func() { *trace = append(*trace, "from-3") })
		})
		return trace
	})
}

// TestFusionPartitionInvariantCancel: the posted-cancel contract — a
// cancel issued early enough lands in time, a cancel racing the event
// loses — resolves identically whether the canceller shares the
// owner's shard or not.
func TestFusionPartitionInvariantCancel(t *testing.T) {
	const L = Time(100)
	withPartitions(t, func(ports []*Port, c *Coordinator) *[]string {
		trace := &[]string{}
		far := ports[0].Schedule(10*L, func() { *trace = append(*trace, "far-fired") })
		near := ports[0].Schedule(2*L, func() { *trace = append(*trace, "near-fired") })
		ports[1].Schedule(L, func() {
			ports[1].Cancel(far)
			ports[1].Cancel(near)
		})
		ports[2].Schedule(3*L, func() { *trace = append(*trace, "tick") })
		return trace
	})
}

// TestDistClosureAfterRewire: the coordinator's influence-distance
// closure after incremental Unwire and Wire calls must equal a
// from-scratch Floyd–Warshall over the surviving links — the horizon
// computation trusts dist, so drift here would silently widen or
// wrongly narrow windows.
func TestDistClosureAfterRewire(t *testing.T) {
	const L = Time(100)
	type edge struct {
		a, b int
		lat  Time
	}
	c := NewCoordinator(L)
	const n = 6
	for i := 0; i < n; i++ {
		c.NewShard()
	}
	// A ring with a chord, wired both ways.
	edges := []edge{}
	both := func(a, b int, lat Time) {
		c.Wire(a, b, lat)
		c.Wire(b, a, lat)
		edges = append(edges, edge{a, b, lat}, edge{b, a, lat})
	}
	for i := 0; i < n; i++ {
		both(i, (i+1)%n, L)
	}
	both(0, 3, 2*L)

	check := func(stage string) {
		t.Helper()
		// From-scratch Floyd–Warshall over the current edge set.
		want := make([][]Time, n)
		for i := range want {
			want[i] = make([]Time, n)
			for j := range want[i] {
				if i != j {
					want[i][j] = MaxTime
				}
			}
		}
		for _, e := range edges {
			if e.lat < want[e.a][e.b] {
				want[e.a][e.b] = e.lat
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if want[i][k] == MaxTime || want[k][j] == MaxTime {
						continue
					}
					if d := want[i][k] + want[k][j]; d < want[i][j] {
						want[i][j] = d
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d, connected := c.Dist(i, j)
				if want[i][j] == MaxTime {
					if connected {
						t.Errorf("%s: Dist(%d,%d) = %v, want disconnected", stage, i, j, d)
					}
					continue
				}
				if !connected || d != want[i][j] {
					t.Errorf("%s: Dist(%d,%d) = %v (connected=%v), want %v",
						stage, i, j, d, connected, want[i][j])
				}
			}
		}
	}
	check("initial")

	// Sever the chord and one ring segment (both directions, cut time
	// already passed — Dist applies pending unwires).
	drop := func(a, b int) {
		c.Unwire(a, b, 0)
		c.Unwire(b, a, 0)
		kept := edges[:0]
		for _, e := range edges {
			if (e.a == a && e.b == b) || (e.a == b && e.b == a) {
				continue
			}
			kept = append(kept, e)
		}
		edges = kept
	}
	drop(0, 3)
	drop(2, 3)
	check("after severs")

	// Re-wire the severed segment with a different latency and add a
	// new shortcut; the closure must pick the new paths up.
	both(2, 3, 3*L)
	both(1, 4, L)
	check("after rewires")

	// Sever node 5 completely: 4<->5 and 5<->0 go away, disconnecting
	// it from the rest.
	drop(4, 5)
	drop(5, 0)
	check("after isolating a shard")
}
