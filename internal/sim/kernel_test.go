package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("fired order %v, want [1 2 3]", got)
	}
	if k.Now() != 30 {
		t.Errorf("final time %v, want 30", k.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	id := k.Schedule(10, func() { fired = true })
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
	k.Cancel(id)
	if k.Pending() != 0 {
		t.Errorf("Pending after cancel = %d, want 0", k.Pending())
	}
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	k.Cancel(id) // double cancel is a no-op
	k.Cancel(0)  // zero ID is a no-op
	if k.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", k.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			k.After(7, tick)
		}
	}
	k.After(7, tick)
	k.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if k.Now() != 35 {
		t.Errorf("final time = %v, want 35", k.Now())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		k.Schedule(at, func() { got = append(got, at) })
	}
	drained := k.RunUntil(20)
	if drained {
		t.Error("RunUntil(20) reported drained with an event at 25 pending")
	}
	if len(got) != 2 {
		t.Errorf("fired %v, want two events", got)
	}
	if k.Now() != 20 {
		t.Errorf("Now = %v, want 20 (advanced to limit)", k.Now())
	}
	if !k.RunUntil(100) {
		t.Error("RunUntil(100) should drain")
	}
	if len(got) != 3 {
		t.Errorf("fired %v, want three events", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		k.Schedule(5, func() {})
	})
	k.Run()
}

// TestHeapProperty drives the kernel with random schedules and checks
// events fire in nondecreasing time order.
func TestHeapProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var times []Time
		var fired []Time
		for i := 0; i < int(n)+1; i++ {
			at := Time(rng.Intn(1000))
			times = append(times, at)
			at2 := at
			k.Schedule(at, func() { fired = append(fired, at2) })
		}
		k.Run()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != len(times) {
			return false
		}
		for i := range fired {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:                "500ns",
		6 * Microsecond:    "6.000µs",
		1300 * Microsecond: "1.300ms",
		2 * Second:         "2.000s",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(v), got, want)
		}
	}
}
